file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_analysis.dir/sensitivity_analysis.cpp.o"
  "CMakeFiles/sensitivity_analysis.dir/sensitivity_analysis.cpp.o.d"
  "sensitivity_analysis"
  "sensitivity_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
