# Empty compiler generated dependencies file for core_energy_efficiency.
# This may be replaced when dependencies are built.
