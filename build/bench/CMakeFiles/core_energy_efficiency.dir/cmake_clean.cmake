file(REMOVE_RECURSE
  "CMakeFiles/core_energy_efficiency.dir/core_energy_efficiency.cpp.o"
  "CMakeFiles/core_energy_efficiency.dir/core_energy_efficiency.cpp.o.d"
  "core_energy_efficiency"
  "core_energy_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_energy_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
