file(REMOVE_RECURSE
  "CMakeFiles/fig5_mcref_clock_constraints.dir/fig5_mcref_clock_constraints.cpp.o"
  "CMakeFiles/fig5_mcref_clock_constraints.dir/fig5_mcref_clock_constraints.cpp.o.d"
  "fig5_mcref_clock_constraints"
  "fig5_mcref_clock_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mcref_clock_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
