# Empty compiler generated dependencies file for fig5_mcref_clock_constraints.
# This may be replaced when dependencies are built.
