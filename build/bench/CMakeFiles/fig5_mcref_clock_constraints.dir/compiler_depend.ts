# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_mcref_clock_constraints.
