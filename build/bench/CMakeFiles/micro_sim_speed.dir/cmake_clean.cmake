file(REMOVE_RECURSE
  "CMakeFiles/micro_sim_speed.dir/micro_sim_speed.cpp.o"
  "CMakeFiles/micro_sim_speed.dir/micro_sim_speed.cpp.o.d"
  "micro_sim_speed"
  "micro_sim_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
