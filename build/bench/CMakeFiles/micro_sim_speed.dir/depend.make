# Empty dependencies file for micro_sim_speed.
# This may be replaced when dependencies are built.
