file(REMOVE_RECURSE
  "CMakeFiles/phase_energy_profile.dir/phase_energy_profile.cpp.o"
  "CMakeFiles/phase_energy_profile.dir/phase_energy_profile.cpp.o.d"
  "phase_energy_profile"
  "phase_energy_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_energy_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
