# Empty compiler generated dependencies file for phase_energy_profile.
# This may be replaced when dependencies are built.
