# Empty dependencies file for ext_duty_cycling.
# This may be replaced when dependencies are built.
