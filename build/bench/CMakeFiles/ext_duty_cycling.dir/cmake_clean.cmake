file(REMOVE_RECURSE
  "CMakeFiles/ext_duty_cycling.dir/ext_duty_cycling.cpp.o"
  "CMakeFiles/ext_duty_cycling.dir/ext_duty_cycling.cpp.o.d"
  "ext_duty_cycling"
  "ext_duty_cycling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_duty_cycling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
