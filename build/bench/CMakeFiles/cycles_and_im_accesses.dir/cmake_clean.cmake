file(REMOVE_RECURSE
  "CMakeFiles/cycles_and_im_accesses.dir/cycles_and_im_accesses.cpp.o"
  "CMakeFiles/cycles_and_im_accesses.dir/cycles_and_im_accesses.cpp.o.d"
  "cycles_and_im_accesses"
  "cycles_and_im_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycles_and_im_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
