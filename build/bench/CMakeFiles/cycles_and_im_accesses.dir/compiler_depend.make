# Empty compiler generated dependencies file for cycles_and_im_accesses.
# This may be replaced when dependencies are built.
