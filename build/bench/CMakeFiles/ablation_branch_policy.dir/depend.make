# Empty dependencies file for ablation_branch_policy.
# This may be replaced when dependencies are built.
