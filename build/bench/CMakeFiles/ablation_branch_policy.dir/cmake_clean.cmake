file(REMOVE_RECURSE
  "CMakeFiles/ablation_branch_policy.dir/ablation_branch_policy.cpp.o"
  "CMakeFiles/ablation_branch_policy.dir/ablation_branch_policy.cpp.o.d"
  "ablation_branch_policy"
  "ablation_branch_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_branch_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
