file(REMOVE_RECURSE
  "CMakeFiles/ext_system_energy.dir/ext_system_energy.cpp.o"
  "CMakeFiles/ext_system_energy.dir/ext_system_energy.cpp.o.d"
  "ext_system_energy"
  "ext_system_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_system_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
