file(REMOVE_RECURSE
  "CMakeFiles/fig6_proposed_clock_constraints.dir/fig6_proposed_clock_constraints.cpp.o"
  "CMakeFiles/fig6_proposed_clock_constraints.dir/fig6_proposed_clock_constraints.cpp.o.d"
  "fig6_proposed_clock_constraints"
  "fig6_proposed_clock_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_proposed_clock_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
