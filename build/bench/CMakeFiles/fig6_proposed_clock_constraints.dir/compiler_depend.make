# Empty compiler generated dependencies file for fig6_proposed_clock_constraints.
# This may be replaced when dependencies are built.
