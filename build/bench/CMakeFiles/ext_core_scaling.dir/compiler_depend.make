# Empty compiler generated dependencies file for ext_core_scaling.
# This may be replaced when dependencies are built.
