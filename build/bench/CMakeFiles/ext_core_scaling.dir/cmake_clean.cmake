file(REMOVE_RECURSE
  "CMakeFiles/ext_core_scaling.dir/ext_core_scaling.cpp.o"
  "CMakeFiles/ext_core_scaling.dir/ext_core_scaling.cpp.o.d"
  "ext_core_scaling"
  "ext_core_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_core_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
