file(REMOVE_RECURSE
  "CMakeFiles/ext_bank_sweep.dir/ext_bank_sweep.cpp.o"
  "CMakeFiles/ext_bank_sweep.dir/ext_bank_sweep.cpp.o.d"
  "ext_bank_sweep"
  "ext_bank_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bank_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
