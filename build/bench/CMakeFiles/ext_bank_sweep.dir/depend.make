# Empty dependencies file for ext_bank_sweep.
# This may be replaced when dependencies are built.
