
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/alu_property_test.cpp" "tests/CMakeFiles/core_test.dir/core/alu_property_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/alu_property_test.cpp.o.d"
  "/root/repo/tests/core/alu_test.cpp" "tests/CMakeFiles/core_test.dir/core/alu_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/alu_test.cpp.o.d"
  "/root/repo/tests/core/exec_test.cpp" "tests/CMakeFiles/core_test.dir/core/exec_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/exec_test.cpp.o.d"
  "/root/repo/tests/core/flags_test.cpp" "tests/CMakeFiles/core_test.dir/core/flags_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/flags_test.cpp.o.d"
  "/root/repo/tests/core/functional_core_test.cpp" "tests/CMakeFiles/core_test.dir/core/functional_core_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/functional_core_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_core_test.cpp" "tests/CMakeFiles/core_test.dir/core/pipeline_core_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pipeline_core_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/ulpmc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/ulpmc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ulpmc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ulpmc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/ulpmc_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/xbar/CMakeFiles/ulpmc_xbar.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ulpmc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ulpmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ulpmc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ulpmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
