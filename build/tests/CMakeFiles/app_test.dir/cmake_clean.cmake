file(REMOVE_RECURSE
  "CMakeFiles/app_test.dir/app/cs_test.cpp.o"
  "CMakeFiles/app_test.dir/app/cs_test.cpp.o.d"
  "CMakeFiles/app_test.dir/app/ecg_test.cpp.o"
  "CMakeFiles/app_test.dir/app/ecg_test.cpp.o.d"
  "CMakeFiles/app_test.dir/app/fir_test.cpp.o"
  "CMakeFiles/app_test.dir/app/fir_test.cpp.o.d"
  "CMakeFiles/app_test.dir/app/huffman_test.cpp.o"
  "CMakeFiles/app_test.dir/app/huffman_test.cpp.o.d"
  "CMakeFiles/app_test.dir/app/kernels_test.cpp.o"
  "CMakeFiles/app_test.dir/app/kernels_test.cpp.o.d"
  "CMakeFiles/app_test.dir/app/reconstruct_test.cpp.o"
  "CMakeFiles/app_test.dir/app/reconstruct_test.cpp.o.d"
  "CMakeFiles/app_test.dir/app/rpeak_test.cpp.o"
  "CMakeFiles/app_test.dir/app/rpeak_test.cpp.o.d"
  "CMakeFiles/app_test.dir/app/streaming_test.cpp.o"
  "CMakeFiles/app_test.dir/app/streaming_test.cpp.o.d"
  "app_test"
  "app_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
