file(REMOVE_RECURSE
  "CMakeFiles/isa_test.dir/isa/asm_builder_test.cpp.o"
  "CMakeFiles/isa_test.dir/isa/asm_builder_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/isa/assembler_fuzz_test.cpp.o"
  "CMakeFiles/isa_test.dir/isa/assembler_fuzz_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/isa/assembler_test.cpp.o"
  "CMakeFiles/isa_test.dir/isa/assembler_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/isa/binfmt_test.cpp.o"
  "CMakeFiles/isa_test.dir/isa/binfmt_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/isa/disassembler_test.cpp.o"
  "CMakeFiles/isa_test.dir/isa/disassembler_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/isa/encoding_test.cpp.o"
  "CMakeFiles/isa_test.dir/isa/encoding_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/isa/instruction_test.cpp.o"
  "CMakeFiles/isa_test.dir/isa/instruction_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/isa/listing_test.cpp.o"
  "CMakeFiles/isa_test.dir/isa/listing_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/isa/mnemonics_test.cpp.o"
  "CMakeFiles/isa_test.dir/isa/mnemonics_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/isa/program_test.cpp.o"
  "CMakeFiles/isa_test.dir/isa/program_test.cpp.o.d"
  "isa_test"
  "isa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
