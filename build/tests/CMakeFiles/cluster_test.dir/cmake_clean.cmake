file(REMOVE_RECURSE
  "CMakeFiles/cluster_test.dir/cluster/barrier_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/barrier_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/cluster_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/cluster_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/cosim_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/cosim_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/stats_invariants_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/stats_invariants_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/trace_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/trace_test.cpp.o.d"
  "cluster_test"
  "cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
