# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;ulpmc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(isa_test "/root/repo/build/tests/isa_test")
set_tests_properties(isa_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;ulpmc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;28;ulpmc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mem_test "/root/repo/build/tests/mem_test")
set_tests_properties(mem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;36;ulpmc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(xbar_test "/root/repo/build/tests/xbar_test")
set_tests_properties(xbar_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;39;ulpmc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mmu_test "/root/repo/build/tests/mmu_test")
set_tests_properties(mmu_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;42;ulpmc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cluster_test "/root/repo/build/tests/cluster_test")
set_tests_properties(cluster_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;46;ulpmc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(power_test "/root/repo/build/tests/power_test")
set_tests_properties(power_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;53;ulpmc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(app_test "/root/repo/build/tests/app_test")
set_tests_properties(app_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;60;ulpmc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;70;ulpmc_test;/root/repo/tests/CMakeLists.txt;0;")
