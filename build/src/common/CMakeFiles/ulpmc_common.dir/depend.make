# Empty dependencies file for ulpmc_common.
# This may be replaced when dependencies are built.
