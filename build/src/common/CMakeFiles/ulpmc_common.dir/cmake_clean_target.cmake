file(REMOVE_RECURSE
  "libulpmc_common.a"
)
