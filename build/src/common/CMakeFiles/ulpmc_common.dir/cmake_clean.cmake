file(REMOVE_RECURSE
  "CMakeFiles/ulpmc_common.dir/rng.cpp.o"
  "CMakeFiles/ulpmc_common.dir/rng.cpp.o.d"
  "CMakeFiles/ulpmc_common.dir/table.cpp.o"
  "CMakeFiles/ulpmc_common.dir/table.cpp.o.d"
  "libulpmc_common.a"
  "libulpmc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
