# Empty dependencies file for ulpmc_app.
# This may be replaced when dependencies are built.
