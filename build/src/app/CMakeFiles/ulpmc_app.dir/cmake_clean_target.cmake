file(REMOVE_RECURSE
  "libulpmc_app.a"
)
