
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/benchmark.cpp" "src/app/CMakeFiles/ulpmc_app.dir/benchmark.cpp.o" "gcc" "src/app/CMakeFiles/ulpmc_app.dir/benchmark.cpp.o.d"
  "/root/repo/src/app/cs.cpp" "src/app/CMakeFiles/ulpmc_app.dir/cs.cpp.o" "gcc" "src/app/CMakeFiles/ulpmc_app.dir/cs.cpp.o.d"
  "/root/repo/src/app/ecg.cpp" "src/app/CMakeFiles/ulpmc_app.dir/ecg.cpp.o" "gcc" "src/app/CMakeFiles/ulpmc_app.dir/ecg.cpp.o.d"
  "/root/repo/src/app/fir.cpp" "src/app/CMakeFiles/ulpmc_app.dir/fir.cpp.o" "gcc" "src/app/CMakeFiles/ulpmc_app.dir/fir.cpp.o.d"
  "/root/repo/src/app/huffman.cpp" "src/app/CMakeFiles/ulpmc_app.dir/huffman.cpp.o" "gcc" "src/app/CMakeFiles/ulpmc_app.dir/huffman.cpp.o.d"
  "/root/repo/src/app/kernels.cpp" "src/app/CMakeFiles/ulpmc_app.dir/kernels.cpp.o" "gcc" "src/app/CMakeFiles/ulpmc_app.dir/kernels.cpp.o.d"
  "/root/repo/src/app/reconstruct.cpp" "src/app/CMakeFiles/ulpmc_app.dir/reconstruct.cpp.o" "gcc" "src/app/CMakeFiles/ulpmc_app.dir/reconstruct.cpp.o.d"
  "/root/repo/src/app/rpeak.cpp" "src/app/CMakeFiles/ulpmc_app.dir/rpeak.cpp.o" "gcc" "src/app/CMakeFiles/ulpmc_app.dir/rpeak.cpp.o.d"
  "/root/repo/src/app/streaming.cpp" "src/app/CMakeFiles/ulpmc_app.dir/streaming.cpp.o" "gcc" "src/app/CMakeFiles/ulpmc_app.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ulpmc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ulpmc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ulpmc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ulpmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ulpmc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/ulpmc_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/xbar/CMakeFiles/ulpmc_xbar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
