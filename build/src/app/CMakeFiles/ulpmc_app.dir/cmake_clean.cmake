file(REMOVE_RECURSE
  "CMakeFiles/ulpmc_app.dir/benchmark.cpp.o"
  "CMakeFiles/ulpmc_app.dir/benchmark.cpp.o.d"
  "CMakeFiles/ulpmc_app.dir/cs.cpp.o"
  "CMakeFiles/ulpmc_app.dir/cs.cpp.o.d"
  "CMakeFiles/ulpmc_app.dir/ecg.cpp.o"
  "CMakeFiles/ulpmc_app.dir/ecg.cpp.o.d"
  "CMakeFiles/ulpmc_app.dir/fir.cpp.o"
  "CMakeFiles/ulpmc_app.dir/fir.cpp.o.d"
  "CMakeFiles/ulpmc_app.dir/huffman.cpp.o"
  "CMakeFiles/ulpmc_app.dir/huffman.cpp.o.d"
  "CMakeFiles/ulpmc_app.dir/kernels.cpp.o"
  "CMakeFiles/ulpmc_app.dir/kernels.cpp.o.d"
  "CMakeFiles/ulpmc_app.dir/reconstruct.cpp.o"
  "CMakeFiles/ulpmc_app.dir/reconstruct.cpp.o.d"
  "CMakeFiles/ulpmc_app.dir/rpeak.cpp.o"
  "CMakeFiles/ulpmc_app.dir/rpeak.cpp.o.d"
  "CMakeFiles/ulpmc_app.dir/streaming.cpp.o"
  "CMakeFiles/ulpmc_app.dir/streaming.cpp.o.d"
  "libulpmc_app.a"
  "libulpmc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
