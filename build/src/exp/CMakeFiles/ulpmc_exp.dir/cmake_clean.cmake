file(REMOVE_RECURSE
  "CMakeFiles/ulpmc_exp.dir/clock_constraint_figure.cpp.o"
  "CMakeFiles/ulpmc_exp.dir/clock_constraint_figure.cpp.o.d"
  "CMakeFiles/ulpmc_exp.dir/experiments.cpp.o"
  "CMakeFiles/ulpmc_exp.dir/experiments.cpp.o.d"
  "libulpmc_exp.a"
  "libulpmc_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
