file(REMOVE_RECURSE
  "libulpmc_exp.a"
)
