# Empty dependencies file for ulpmc_exp.
# This may be replaced when dependencies are built.
