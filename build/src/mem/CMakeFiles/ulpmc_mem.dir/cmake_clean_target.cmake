file(REMOVE_RECURSE
  "libulpmc_mem.a"
)
