# Empty compiler generated dependencies file for ulpmc_mem.
# This may be replaced when dependencies are built.
