file(REMOVE_RECURSE
  "CMakeFiles/ulpmc_mem.dir/memory_bank.cpp.o"
  "CMakeFiles/ulpmc_mem.dir/memory_bank.cpp.o.d"
  "libulpmc_mem.a"
  "libulpmc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
