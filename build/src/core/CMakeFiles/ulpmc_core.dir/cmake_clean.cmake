file(REMOVE_RECURSE
  "CMakeFiles/ulpmc_core.dir/alu.cpp.o"
  "CMakeFiles/ulpmc_core.dir/alu.cpp.o.d"
  "CMakeFiles/ulpmc_core.dir/exec.cpp.o"
  "CMakeFiles/ulpmc_core.dir/exec.cpp.o.d"
  "CMakeFiles/ulpmc_core.dir/flags.cpp.o"
  "CMakeFiles/ulpmc_core.dir/flags.cpp.o.d"
  "CMakeFiles/ulpmc_core.dir/functional_core.cpp.o"
  "CMakeFiles/ulpmc_core.dir/functional_core.cpp.o.d"
  "CMakeFiles/ulpmc_core.dir/pipeline_core.cpp.o"
  "CMakeFiles/ulpmc_core.dir/pipeline_core.cpp.o.d"
  "CMakeFiles/ulpmc_core.dir/state.cpp.o"
  "CMakeFiles/ulpmc_core.dir/state.cpp.o.d"
  "libulpmc_core.a"
  "libulpmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
