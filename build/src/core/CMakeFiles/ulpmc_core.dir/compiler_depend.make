# Empty compiler generated dependencies file for ulpmc_core.
# This may be replaced when dependencies are built.
