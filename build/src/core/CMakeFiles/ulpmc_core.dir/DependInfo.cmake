
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alu.cpp" "src/core/CMakeFiles/ulpmc_core.dir/alu.cpp.o" "gcc" "src/core/CMakeFiles/ulpmc_core.dir/alu.cpp.o.d"
  "/root/repo/src/core/exec.cpp" "src/core/CMakeFiles/ulpmc_core.dir/exec.cpp.o" "gcc" "src/core/CMakeFiles/ulpmc_core.dir/exec.cpp.o.d"
  "/root/repo/src/core/flags.cpp" "src/core/CMakeFiles/ulpmc_core.dir/flags.cpp.o" "gcc" "src/core/CMakeFiles/ulpmc_core.dir/flags.cpp.o.d"
  "/root/repo/src/core/functional_core.cpp" "src/core/CMakeFiles/ulpmc_core.dir/functional_core.cpp.o" "gcc" "src/core/CMakeFiles/ulpmc_core.dir/functional_core.cpp.o.d"
  "/root/repo/src/core/pipeline_core.cpp" "src/core/CMakeFiles/ulpmc_core.dir/pipeline_core.cpp.o" "gcc" "src/core/CMakeFiles/ulpmc_core.dir/pipeline_core.cpp.o.d"
  "/root/repo/src/core/state.cpp" "src/core/CMakeFiles/ulpmc_core.dir/state.cpp.o" "gcc" "src/core/CMakeFiles/ulpmc_core.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ulpmc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ulpmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
