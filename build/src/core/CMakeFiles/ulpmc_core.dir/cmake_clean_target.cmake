file(REMOVE_RECURSE
  "libulpmc_core.a"
)
