file(REMOVE_RECURSE
  "libulpmc_xbar.a"
)
