file(REMOVE_RECURSE
  "CMakeFiles/ulpmc_xbar.dir/crossbar.cpp.o"
  "CMakeFiles/ulpmc_xbar.dir/crossbar.cpp.o.d"
  "libulpmc_xbar.a"
  "libulpmc_xbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc_xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
