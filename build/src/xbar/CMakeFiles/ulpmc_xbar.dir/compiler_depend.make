# Empty compiler generated dependencies file for ulpmc_xbar.
# This may be replaced when dependencies are built.
