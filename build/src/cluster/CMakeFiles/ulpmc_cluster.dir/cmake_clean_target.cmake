file(REMOVE_RECURSE
  "libulpmc_cluster.a"
)
