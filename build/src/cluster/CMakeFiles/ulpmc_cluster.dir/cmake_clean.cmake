file(REMOVE_RECURSE
  "CMakeFiles/ulpmc_cluster.dir/cluster.cpp.o"
  "CMakeFiles/ulpmc_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/ulpmc_cluster.dir/config.cpp.o"
  "CMakeFiles/ulpmc_cluster.dir/config.cpp.o.d"
  "CMakeFiles/ulpmc_cluster.dir/trace.cpp.o"
  "CMakeFiles/ulpmc_cluster.dir/trace.cpp.o.d"
  "libulpmc_cluster.a"
  "libulpmc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
