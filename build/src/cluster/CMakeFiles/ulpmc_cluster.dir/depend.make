# Empty dependencies file for ulpmc_cluster.
# This may be replaced when dependencies are built.
