# Empty dependencies file for ulpmc_mmu.
# This may be replaced when dependencies are built.
