file(REMOVE_RECURSE
  "libulpmc_mmu.a"
)
