file(REMOVE_RECURSE
  "CMakeFiles/ulpmc_mmu.dir/mmu.cpp.o"
  "CMakeFiles/ulpmc_mmu.dir/mmu.cpp.o.d"
  "libulpmc_mmu.a"
  "libulpmc_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
