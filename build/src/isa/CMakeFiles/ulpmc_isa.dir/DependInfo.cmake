
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/asm_builder.cpp" "src/isa/CMakeFiles/ulpmc_isa.dir/asm_builder.cpp.o" "gcc" "src/isa/CMakeFiles/ulpmc_isa.dir/asm_builder.cpp.o.d"
  "/root/repo/src/isa/assembler.cpp" "src/isa/CMakeFiles/ulpmc_isa.dir/assembler.cpp.o" "gcc" "src/isa/CMakeFiles/ulpmc_isa.dir/assembler.cpp.o.d"
  "/root/repo/src/isa/binfmt.cpp" "src/isa/CMakeFiles/ulpmc_isa.dir/binfmt.cpp.o" "gcc" "src/isa/CMakeFiles/ulpmc_isa.dir/binfmt.cpp.o.d"
  "/root/repo/src/isa/disassembler.cpp" "src/isa/CMakeFiles/ulpmc_isa.dir/disassembler.cpp.o" "gcc" "src/isa/CMakeFiles/ulpmc_isa.dir/disassembler.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "src/isa/CMakeFiles/ulpmc_isa.dir/encoding.cpp.o" "gcc" "src/isa/CMakeFiles/ulpmc_isa.dir/encoding.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/isa/CMakeFiles/ulpmc_isa.dir/instruction.cpp.o" "gcc" "src/isa/CMakeFiles/ulpmc_isa.dir/instruction.cpp.o.d"
  "/root/repo/src/isa/listing.cpp" "src/isa/CMakeFiles/ulpmc_isa.dir/listing.cpp.o" "gcc" "src/isa/CMakeFiles/ulpmc_isa.dir/listing.cpp.o.d"
  "/root/repo/src/isa/mnemonics.cpp" "src/isa/CMakeFiles/ulpmc_isa.dir/mnemonics.cpp.o" "gcc" "src/isa/CMakeFiles/ulpmc_isa.dir/mnemonics.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "src/isa/CMakeFiles/ulpmc_isa.dir/program.cpp.o" "gcc" "src/isa/CMakeFiles/ulpmc_isa.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ulpmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
