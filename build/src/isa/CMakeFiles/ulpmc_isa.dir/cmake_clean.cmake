file(REMOVE_RECURSE
  "CMakeFiles/ulpmc_isa.dir/asm_builder.cpp.o"
  "CMakeFiles/ulpmc_isa.dir/asm_builder.cpp.o.d"
  "CMakeFiles/ulpmc_isa.dir/assembler.cpp.o"
  "CMakeFiles/ulpmc_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/ulpmc_isa.dir/binfmt.cpp.o"
  "CMakeFiles/ulpmc_isa.dir/binfmt.cpp.o.d"
  "CMakeFiles/ulpmc_isa.dir/disassembler.cpp.o"
  "CMakeFiles/ulpmc_isa.dir/disassembler.cpp.o.d"
  "CMakeFiles/ulpmc_isa.dir/encoding.cpp.o"
  "CMakeFiles/ulpmc_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/ulpmc_isa.dir/instruction.cpp.o"
  "CMakeFiles/ulpmc_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/ulpmc_isa.dir/listing.cpp.o"
  "CMakeFiles/ulpmc_isa.dir/listing.cpp.o.d"
  "CMakeFiles/ulpmc_isa.dir/mnemonics.cpp.o"
  "CMakeFiles/ulpmc_isa.dir/mnemonics.cpp.o.d"
  "CMakeFiles/ulpmc_isa.dir/program.cpp.o"
  "CMakeFiles/ulpmc_isa.dir/program.cpp.o.d"
  "libulpmc_isa.a"
  "libulpmc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
