file(REMOVE_RECURSE
  "libulpmc_isa.a"
)
