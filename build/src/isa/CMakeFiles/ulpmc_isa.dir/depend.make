# Empty dependencies file for ulpmc_isa.
# This may be replaced when dependencies are built.
