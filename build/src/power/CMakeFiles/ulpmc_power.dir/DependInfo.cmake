
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/area.cpp" "src/power/CMakeFiles/ulpmc_power.dir/area.cpp.o" "gcc" "src/power/CMakeFiles/ulpmc_power.dir/area.cpp.o.d"
  "/root/repo/src/power/dvfs.cpp" "src/power/CMakeFiles/ulpmc_power.dir/dvfs.cpp.o" "gcc" "src/power/CMakeFiles/ulpmc_power.dir/dvfs.cpp.o.d"
  "/root/repo/src/power/governor.cpp" "src/power/CMakeFiles/ulpmc_power.dir/governor.cpp.o" "gcc" "src/power/CMakeFiles/ulpmc_power.dir/governor.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/power/CMakeFiles/ulpmc_power.dir/power_model.cpp.o" "gcc" "src/power/CMakeFiles/ulpmc_power.dir/power_model.cpp.o.d"
  "/root/repo/src/power/radio.cpp" "src/power/CMakeFiles/ulpmc_power.dir/radio.cpp.o" "gcc" "src/power/CMakeFiles/ulpmc_power.dir/radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ulpmc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ulpmc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ulpmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ulpmc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ulpmc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/ulpmc_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/xbar/CMakeFiles/ulpmc_xbar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
