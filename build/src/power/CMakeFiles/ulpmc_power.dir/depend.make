# Empty dependencies file for ulpmc_power.
# This may be replaced when dependencies are built.
