file(REMOVE_RECURSE
  "CMakeFiles/ulpmc_power.dir/area.cpp.o"
  "CMakeFiles/ulpmc_power.dir/area.cpp.o.d"
  "CMakeFiles/ulpmc_power.dir/dvfs.cpp.o"
  "CMakeFiles/ulpmc_power.dir/dvfs.cpp.o.d"
  "CMakeFiles/ulpmc_power.dir/governor.cpp.o"
  "CMakeFiles/ulpmc_power.dir/governor.cpp.o.d"
  "CMakeFiles/ulpmc_power.dir/power_model.cpp.o"
  "CMakeFiles/ulpmc_power.dir/power_model.cpp.o.d"
  "CMakeFiles/ulpmc_power.dir/radio.cpp.o"
  "CMakeFiles/ulpmc_power.dir/radio.cpp.o.d"
  "libulpmc_power.a"
  "libulpmc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
