file(REMOVE_RECURSE
  "libulpmc_power.a"
)
