# Empty dependencies file for ulpmc-run.
# This may be replaced when dependencies are built.
