file(REMOVE_RECURSE
  "CMakeFiles/ulpmc-run.dir/ulpmc_run.cpp.o"
  "CMakeFiles/ulpmc-run.dir/ulpmc_run.cpp.o.d"
  "ulpmc-run"
  "ulpmc-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
