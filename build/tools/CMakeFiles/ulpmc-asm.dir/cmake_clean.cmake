file(REMOVE_RECURSE
  "CMakeFiles/ulpmc-asm.dir/ulpmc_asm.cpp.o"
  "CMakeFiles/ulpmc-asm.dir/ulpmc_asm.cpp.o.d"
  "ulpmc-asm"
  "ulpmc-asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpmc-asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
