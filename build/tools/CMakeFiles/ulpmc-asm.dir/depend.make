# Empty dependencies file for ulpmc-asm.
# This may be replaced when dependencies are built.
