# Empty dependencies file for ecg_pipeline.
# This may be replaced when dependencies are built.
