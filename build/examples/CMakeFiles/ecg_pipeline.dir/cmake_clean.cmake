file(REMOVE_RECURSE
  "CMakeFiles/ecg_pipeline.dir/ecg_pipeline.cpp.o"
  "CMakeFiles/ecg_pipeline.dir/ecg_pipeline.cpp.o.d"
  "ecg_pipeline"
  "ecg_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
