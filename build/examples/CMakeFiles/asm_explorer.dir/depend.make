# Empty dependencies file for asm_explorer.
# This may be replaced when dependencies are built.
