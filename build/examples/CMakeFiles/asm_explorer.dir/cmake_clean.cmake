file(REMOVE_RECURSE
  "CMakeFiles/asm_explorer.dir/asm_explorer.cpp.o"
  "CMakeFiles/asm_explorer.dir/asm_explorer.cpp.o.d"
  "asm_explorer"
  "asm_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
