# Empty dependencies file for rpeak_monitor.
# This may be replaced when dependencies are built.
