file(REMOVE_RECURSE
  "CMakeFiles/rpeak_monitor.dir/rpeak_monitor.cpp.o"
  "CMakeFiles/rpeak_monitor.dir/rpeak_monitor.cpp.o.d"
  "rpeak_monitor"
  "rpeak_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpeak_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
