// Explicit pipeline model of the TamaRISC core (paper §III-A: fetch,
// decode and execute stages; single-cycle execution "guaranteed by the
// complete data bypassing inside the core for registers as well as
// memory write-back data").
//
// Timing structure: fetch and decode are short and complete within one
// cycle (the paper stresses that the fixed-position encoding makes decode
// "very efficient"), so one instruction enters the execute stage per
// cycle and CPI == 1 — *including* taken branches, because the
// branch-redirect path steers the same-cycle fetch. That redirect path is
// exactly what the paper identifies as the critical path ("the direct
// branch instruction when the branch address is read from the DM") and
// why it accepts a 12 ns clock. The paper's cycle counts (90.1k
// instructions in 90.2k cycles over a branchy benchmark) are only
// possible with this zero-bubble redirect, which is therefore the default
// policy; the 1-/2-bubble policies quantify what a slower redirect would
// cost (see bench/ablation_branch_policy).
//
// Co-simulation tests assert that the committed-instruction stream is
// identical to the FunctionalCore under every policy and that CPI == 1
// under ZeroPenalty.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/types.hpp"
#include "core/exec.hpp"
#include "core/functional_core.hpp"
#include "core/state.hpp"

namespace ulpmc::core {

/// How many bubbles a taken branch injects.
enum class BranchPolicy : std::uint8_t {
    ZeroPenalty, ///< same-cycle fetch redirect (the paper's design point)
    OnePenalty,  ///< redirect delays the fetcher one cycle
    TwoPenalty   ///< redirect delays the fetcher two cycles
};

/// Pipeline statistics.
struct PipelineStats {
    Cycle cycles = 0;
    std::uint64_t instret = 0;
    std::uint64_t fetches = 0;        ///< instruction-memory reads issued
    std::uint64_t branch_bubbles = 0; ///< cycles lost to branch redirects
    std::uint64_t taken_branches = 0;
    std::uint64_t bypasses = 0; ///< operands served by the bypass network

    double cpi() const {
        return instret == 0 ? 0.0 : static_cast<double>(cycles) / static_cast<double>(instret);
    }
};

/// Cycle-stepped pipelined core.
class PipelineCore {
public:
    PipelineCore(std::span<const InstrWord> text, DataMemory& mem,
                 BranchPolicy policy = BranchPolicy::ZeroPenalty);

    /// Advances one clock cycle. Returns false once halted or trapped.
    bool step();

    /// Runs until halt/trap or `max_cycles`.
    Trap run(Cycle max_cycles = 100'000'000);

    const CoreState& state() const { return state_; }
    CoreState& state() { return state_; }
    bool halted() const { return halted_; }
    Trap trap() const { return trap_; }
    const PipelineStats& stats() const { return stats_; }

private:
    struct Slot {
        bool valid = false;
        bool oob = false; ///< fetched past the program (traps if executed)
        PAddr pc = 0;
        isa::Instruction decoded = {};
    };

    void stage_execute();
    void stage_fetch_decode();
    unsigned count_bypasses(const isa::Instruction& in) const;

    std::span<const InstrWord> text_;
    DataMemory& mem_;
    BranchPolicy policy_;

    CoreState state_;
    PAddr fetch_pc_ = 0;
    Slot ex_; ///< the instruction awaiting execute
    // Destination register the execute stage produced last cycle — the
    // operands the bypass network (not the register file) must serve.
    std::optional<std::uint8_t> last_ex_dst_ = std::nullopt;

    bool halted_ = false;
    Trap trap_ = Trap::None;
    unsigned fetch_hold_ = 0; ///< redirect latency still to pay (bubbles)
    bool started_ = false;    ///< first fetch pending (entry from state().pc)
    PipelineStats stats_;
};

} // namespace ulpmc::core
