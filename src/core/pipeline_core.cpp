#include "core/pipeline_core.hpp"

#include "common/assert.hpp"
#include "isa/encoding.hpp"

namespace ulpmc::core {

PipelineCore::PipelineCore(std::span<const InstrWord> text, DataMemory& mem, BranchPolicy policy)
    : text_(text), mem_(mem), policy_(policy) {}

bool PipelineCore::step() {
    if (halted_ || trap_ != Trap::None) return false;
    ++stats_.cycles;

    stage_execute();
    if (halted_ || trap_ != Trap::None) return false;

    if (fetch_hold_ > 0) {
        // A pending redirect has not reached the fetcher yet: bubble.
        --fetch_hold_;
        ++stats_.branch_bubbles;
    } else {
        stage_fetch_decode();
    }
    return trap_ == Trap::None;
}

Trap PipelineCore::run(Cycle max_cycles) {
    while (stats_.cycles < max_cycles && step()) {
    }
    return trap_;
}

unsigned PipelineCore::count_bypasses(const isa::Instruction& in) const {
    if (!last_ex_dst_) return 0;
    const std::uint8_t d = *last_ex_dst_;
    unsigned n = 0;
    const auto src_uses = [&](const isa::SrcOperand& s) {
        return s.mode != isa::SrcMode::Imm4 && s.reg == d;
    };
    switch (in.op) {
    case isa::Opcode::MOVI:
        return 0;
    case isa::Opcode::BRA:
    case isa::Opcode::JAL:
        return in.bmode == isa::BraMode::RegInd && in.treg == d ? 1u : 0u;
    case isa::Opcode::MOV:
        if (src_uses(in.srca)) ++n;
        if (in.dst.mode != isa::DstMode::Reg && in.dst.reg == d) ++n;
        return n;
    default:
        if (src_uses(in.srca)) ++n;
        if (src_uses(in.srcb)) ++n;
        if (in.dst.mode != isa::DstMode::Reg && in.dst.reg == d) ++n;
        return n;
    }
}

void PipelineCore::stage_execute() {
    if (!ex_.valid) return;
    ex_.valid = false;

    if (ex_.oob) {
        trap_ = Trap::FetchFault;
        return;
    }
    const isa::Instruction& in = ex_.decoded;
    stats_.bypasses += count_bypasses(in);

    state_.pc = ex_.pc;
    const MemPlan plan = plan_memory(in, state_);
    std::optional<Word> loaded;
    if (plan.load) {
        Word v = 0;
        if (!mem_.read(*plan.load, v)) {
            trap_ = Trap::MemoryFault;
            return;
        }
        loaded = v;
    }
    const StepEffects fx = execute(in, state_, loaded);
    if (plan.store) {
        ULPMC_ASSERT(fx.store_value.has_value());
        if (!mem_.write(*plan.store, *fx.store_value)) {
            trap_ = Trap::MemoryFault;
            return;
        }
    }

    const PAddr sequential = static_cast<PAddr>(ex_.pc + 1);
    state_ = fx.next;
    ++stats_.instret;

    // Bypass bookkeeping: which register the execute stage just produced.
    last_ex_dst_ = std::nullopt;
    if (in.op == isa::Opcode::MOVI || (in.op != isa::Opcode::BRA && in.op != isa::Opcode::JAL &&
                                       in.dst.mode == isa::DstMode::Reg)) {
        last_ex_dst_ = in.dst.reg;
    } else if (in.op == isa::Opcode::JAL) {
        last_ex_dst_ = in.link;
    }

    if (fx.halt) {
        halted_ = true;
        return;
    }
    if (fx.next.pc != sequential) {
        // Taken branch: steer the fetcher. Under ZeroPenalty the redirect
        // is combinational into this cycle's fetch (no bubble); slower
        // policies pay their latency as fetch-hold bubbles.
        ++stats_.taken_branches;
        fetch_pc_ = fx.next.pc;
        switch (policy_) {
        case BranchPolicy::ZeroPenalty:
            break;
        case BranchPolicy::OnePenalty:
            fetch_hold_ = 1;
            break;
        case BranchPolicy::TwoPenalty:
            fetch_hold_ = 2;
            break;
        }
    } else {
        fetch_pc_ = sequential;
    }
}

void PipelineCore::stage_fetch_decode() {
    ULPMC_ASSERT(!ex_.valid); // the execute stage always drains
    if (!started_) {
        // First fetch targets whatever entry point the user installed.
        fetch_pc_ = state_.pc;
        started_ = true;
    }
    ex_.valid = true;
    ex_.pc = fetch_pc_;
    if (fetch_pc_ >= text_.size()) {
        ex_.oob = true;
        return;
    }
    ex_.oob = false;
    ++stats_.fetches;
    const auto decoded = isa::decode(text_[fetch_pc_]);
    if (!decoded) {
        trap_ = Trap::IllegalInstruction;
        ex_.valid = false;
        return;
    }
    ex_.decoded = *decoded;
}

} // namespace ulpmc::core
