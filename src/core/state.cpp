#include "core/state.hpp"

#include <string_view>

namespace ulpmc::core {

const char* trap_name(Trap t) {
    switch (t) {
    case Trap::None:
        return "none";
    case Trap::IllegalInstruction:
        return "illegal-instruction";
    case Trap::MemoryFault:
        return "memory-fault";
    case Trap::FetchFault:
        return "fetch-fault";
    case Trap::EccFault:
        return "ecc-fault";
    case Trap::Watchdog:
        return "watchdog";
    case Trap::RegParityFault:
        return "reg-parity-fault";
    }
    return "?";
}

const char* reg_protection_name(RegProtection p) {
    switch (p) {
    case RegProtection::None:
        return "none";
    case RegProtection::Parity:
        return "parity";
    case RegProtection::Tmr:
        return "tmr";
    }
    return "?";
}

bool parse_reg_protection(const char* s, RegProtection& out) {
    const std::string_view v(s);
    if (v == "none") {
        out = RegProtection::None;
    } else if (v == "parity") {
        out = RegProtection::Parity;
    } else if (v == "tmr") {
        out = RegProtection::Tmr;
    } else {
        return false;
    }
    return true;
}

} // namespace ulpmc::core
