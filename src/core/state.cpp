#include "core/state.hpp"

namespace ulpmc::core {

const char* trap_name(Trap t) {
    switch (t) {
    case Trap::None:
        return "none";
    case Trap::IllegalInstruction:
        return "illegal-instruction";
    case Trap::MemoryFault:
        return "memory-fault";
    case Trap::FetchFault:
        return "fetch-fault";
    case Trap::EccFault:
        return "ecc-fault";
    case Trap::Watchdog:
        return "watchdog";
    }
    return "?";
}

} // namespace ulpmc::core
