// Architectural state of one TamaRISC core, and the trap conditions the
// simulator can raise. The state is deliberately a plain aggregate so the
// functional and the cycle-accurate core models can be compared field by
// field in co-simulation tests (DESIGN.md §2, substitution 4).
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"
#include "core/flags.hpp"

namespace ulpmc::core {

/// Everything software can observe about a core.
struct CoreState {
    std::array<Word, kNumRegisters> regs{};
    PAddr pc = 0;
    Flags flags;

    friend bool operator==(const CoreState&, const CoreState&) = default;
};

/// Abnormal conditions; None means normal execution.
enum class Trap : std::uint8_t {
    None = 0,
    IllegalInstruction, ///< reserved opcode / malformed encoding
    MemoryFault,        ///< data access outside the mapped address space
    FetchFault,         ///< PC outside the loaded program
    EccFault,           ///< uncorrectable (double-bit) memory upset detected
    Watchdog,           ///< no forward progress for the watchdog window
    RegParityFault      ///< register-file parity mismatch on operand read
};

/// Human-readable trap name (for diagnostics and tests).
const char* trap_name(Trap t);

/// Register-file protection scheme (DESIGN.md §9). Parity fail-stops on
/// the first read of a corrupted register; TMR majority-votes three
/// shadow copies on every read and masks the upset silently.
enum class RegProtection : std::uint8_t { None = 0, Parity, Tmr };

/// Human-readable protection-mode name (CLI, tables, JSON).
const char* reg_protection_name(RegProtection p);

/// Parses "none" / "parity" / "tmr"; returns false on anything else.
bool parse_reg_protection(const char* s, RegProtection& out);

} // namespace ulpmc::core
