#include "core/alu.hpp"

#include "common/assert.hpp"

namespace ulpmc::core {

namespace {

Flags zn_flags(Word r) {
    Flags f;
    f.z = r == 0;
    f.n = (r & 0x8000u) != 0;
    return f;
}

AluOut shift(Word a, Word b) {
    const auto amt = static_cast<SWord>(b);
    AluOut out;
    if (amt == 0) {
        out.value = a;
    } else if (amt > 0) {
        // Logical left shift. C holds the last bit shifted out.
        if (amt >= 16) {
            out.value = 0;
            out.flags.c = amt == 16 && (a & 0x0001u);
        } else {
            out.value = static_cast<Word>(a << amt);
            out.flags.c = (a >> (16 - amt)) & 1u;
        }
    } else {
        // Arithmetic right shift.
        const int k = -static_cast<int>(amt);
        const auto sa = static_cast<SWord>(a);
        if (k >= 16) {
            out.value = static_cast<Word>(sa < 0 ? -1 : 0);
            out.flags.c = k == 16 && sa < 0;
        } else {
            out.value = static_cast<Word>(sa >> k);
            out.flags.c = (a >> (k - 1)) & 1u;
        }
    }
    const Flags zn = zn_flags(out.value);
    out.flags.z = zn.z;
    out.flags.n = zn.n;
    out.flags.v = false;
    return out;
}

} // namespace

AluOut alu_exec(isa::Opcode op, Word a, Word b) {
    using isa::Opcode;
    ULPMC_EXPECTS(isa::is_alu(op));

    AluOut out;
    switch (op) {
    case Opcode::ADD: {
        const std::uint32_t wide = static_cast<std::uint32_t>(a) + b;
        out.value = static_cast<Word>(wide);
        out.flags = zn_flags(out.value);
        out.flags.c = wide > 0xFFFFu;
        // Signed overflow: operands share a sign the result does not.
        out.flags.v = (~(a ^ b) & (a ^ out.value) & 0x8000u) != 0;
        return out;
    }
    case Opcode::SUB: {
        out.value = static_cast<Word>(a - b);
        out.flags = zn_flags(out.value);
        out.flags.c = a >= b; // no-borrow convention
        out.flags.v = ((a ^ b) & (a ^ out.value) & 0x8000u) != 0;
        return out;
    }
    case Opcode::SFT:
        return shift(a, b);
    case Opcode::AND:
        out.value = a & b;
        out.flags = zn_flags(out.value);
        return out;
    case Opcode::OR:
        out.value = a | b;
        out.flags = zn_flags(out.value);
        return out;
    case Opcode::XOR:
        out.value = a ^ b;
        out.flags = zn_flags(out.value);
        return out;
    case Opcode::MULL: {
        const std::uint32_t wide = static_cast<std::uint32_t>(a) * b;
        out.value = static_cast<Word>(wide);
        out.flags = zn_flags(out.value);
        return out;
    }
    case Opcode::MULH: {
        const std::int32_t wide =
            static_cast<std::int32_t>(static_cast<SWord>(a)) * static_cast<SWord>(b);
        out.value = static_cast<Word>(static_cast<std::uint32_t>(wide) >> 16);
        out.flags = zn_flags(out.value);
        return out;
    }
    default:
        ULPMC_ASSERT(false);
    }
}

} // namespace ulpmc::core
