#include "core/functional_core.hpp"

#include "common/assert.hpp"
#include "isa/encoding.hpp"

namespace ulpmc::core {

FlatMemory::FlatMemory(std::size_t size_words) : mem_(size_words, 0) {}

bool FlatMemory::read(Addr addr, Word& out) {
    if (addr >= mem_.size()) return false;
    out = mem_[addr];
    return true;
}

bool FlatMemory::write(Addr addr, Word value) {
    if (addr >= mem_.size()) return false;
    mem_[addr] = value;
    return true;
}

Word FlatMemory::peek(Addr addr) const {
    ULPMC_EXPECTS(addr < mem_.size());
    return mem_[addr];
}

void FlatMemory::poke(Addr addr, Word value) {
    ULPMC_EXPECTS(addr < mem_.size());
    mem_[addr] = value;
}

void FlatMemory::load(Addr base, std::span<const Word> image) {
    ULPMC_EXPECTS(base + image.size() <= mem_.size());
    for (std::size_t i = 0; i < image.size(); ++i) mem_[base + i] = image[i];
}

FunctionalCore::FunctionalCore(std::span<const InstrWord> text, DataMemory& mem)
    : text_(text), mem_(mem), blocks_(text) {
    decoded_.resize(text.size());
    for (std::size_t pc = 0; pc < text.size(); ++pc) {
        if (const auto d = isa::decode(text[pc])) decoded_[pc] = *d;
        // Undecodable words keep the default entry: they can only sit in
        // non-memo blocks, which run() routes through step().
    }
}

void FunctionalCore::set_tracer(std::function<void(const TraceEntry&)> tracer) {
    tracer_ = std::move(tracer);
}

Trap FunctionalCore::step() {
    if (halted_ || trap_ != Trap::None) return trap_;

    if (state_.pc >= text_.size()) {
        trap_ = Trap::FetchFault;
        return trap_;
    }
    const auto decoded = isa::decode(text_[state_.pc]);
    if (!decoded) {
        trap_ = Trap::IllegalInstruction;
        return trap_;
    }

    const MemPlan plan = plan_memory(*decoded, state_);
    std::optional<Word> loaded;
    if (plan.load) {
        Word v = 0;
        if (!mem_.read(*plan.load, v)) {
            trap_ = Trap::MemoryFault;
            return trap_;
        }
        loaded = v;
    }

    const StepEffects fx = execute(*decoded, state_, loaded);
    if (plan.store) {
        ULPMC_ASSERT(fx.store_value.has_value());
        if (!mem_.write(*plan.store, *fx.store_value)) {
            trap_ = Trap::MemoryFault;
            return trap_;
        }
    }

    const PAddr pc_before = state_.pc;
    state_ = fx.next;
    halted_ = fx.halt;
    ++instret_;

    if (tracer_) tracer_(TraceEntry{instret_ - 1, pc_before, *decoded, state_});
    return Trap::None;
}

Trap FunctionalCore::run(std::uint64_t max_steps) {
    if (tracer_) { // sinks need one TraceEntry per instruction
        for (std::uint64_t i = 0; i < max_steps && !halted_ && trap_ == Trap::None; ++i) step();
        return trap_;
    }

    // Block-granular dispatch: within a memo-legal block every word
    // decodes and only the final instruction may branch, so the inner loop
    // skips the per-instruction fetch bounds check and re-decode. Blocks
    // that are not memo-legal (or a pc beyond the map) fall back to the
    // per-instruction path.
    std::uint64_t steps = 0;
    while (steps < max_steps && !halted_ && trap_ == Trap::None) {
        std::uint32_t n =
            state_.pc < blocks_.text_size() ? blocks_.run_from(state_.pc) : 0;
        if (n == 0) {
            step();
            ++steps;
            continue;
        }
        if (n > max_steps - steps) n = static_cast<std::uint32_t>(max_steps - steps);
        for (std::uint32_t i = 0; i < n; ++i) {
            const isa::Instruction& in = decoded_[state_.pc];
            const MemPlan plan = plan_memory(in, state_);
            std::optional<Word> loaded;
            if (plan.load) {
                Word v = 0;
                if (!mem_.read(*plan.load, v)) {
                    trap_ = Trap::MemoryFault;
                    break;
                }
                loaded = v;
            }
            if (plan.store) {
                // A faulting store must leave the state untouched (as in
                // step(), which commits only after the write succeeds).
                const CoreState backup = state_;
                const InplaceEffects fx = execute_inplace(in, state_, loaded);
                ULPMC_ASSERT(fx.store_value.has_value());
                if (!mem_.write(*plan.store, *fx.store_value)) {
                    state_ = backup;
                    trap_ = Trap::MemoryFault;
                    break;
                }
                halted_ = fx.halt;
            } else {
                halted_ = execute_inplace(in, state_, loaded).halt;
            }
            ++instret_;
            ++steps;
            if (halted_) break;
        }
    }
    return trap_;
}

RunResult run_program(const isa::Program& prog, std::uint64_t max_steps) {
    RunResult r;
    r.memory.load(0, prog.data);
    FunctionalCore core(prog.text, r.memory);
    core.state().pc = prog.entry;
    core.run(max_steps);
    r.state = core.state();
    r.trap = core.trap();
    r.instret = core.instret();
    return r;
}

} // namespace ulpmc::core
