// Processor status flags and branch-condition evaluation.
//
// TamaRISC exposes four status flags — carry, zero, negative, overflow —
// and the paper's "15 different condition modes" (plus 'always') are
// boolean functions of them, evaluated by cond_holds().
#pragma once

#include "isa/instruction.hpp"

namespace ulpmc::core {

/// The C/Z/N/V status flags.
struct Flags {
    bool c = false; ///< carry (SUB: no-borrow convention)
    bool z = false; ///< zero
    bool n = false; ///< negative (bit 15 of the result)
    bool v = false; ///< signed overflow

    friend bool operator==(const Flags&, const Flags&) = default;
};

/// Evaluates a branch condition against the current flags.
bool cond_holds(isa::Cond cond, const Flags& f);

} // namespace ulpmc::core
