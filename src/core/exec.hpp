// Shared instruction semantics, split into two phases so both core models
// agree by construction:
//
//   plan_memory() — computes the data addresses an instruction will touch,
//                   WITHOUT changing any state. The cycle-accurate core
//                   uses this to raise crossbar requests; grants may take
//                   several cycles under bank conflicts.
//   execute()     — applies the full architectural effect given the loaded
//                   value (if the instruction reads memory). Returns the
//                   next state plus the value to store (if it writes).
//
// Operand evaluation order is architectural: srcA, then srcB, then the
// destination; pre/post increment/decrement side effects are visible to
// later operands of the same instruction.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "core/state.hpp"
#include "isa/instruction.hpp"

namespace ulpmc::core {

/// Data-memory addresses an instruction will access (virtual addresses,
/// before MMU translation). At most one load and one store (port budget).
struct MemPlan {
    std::optional<Addr> load;
    std::optional<Addr> store;
};

/// Computes the memory plan without side effects.
MemPlan plan_memory(const isa::Instruction& in, const CoreState& s);

/// Result of executing one instruction.
struct StepEffects {
    CoreState next;                  ///< complete post-instruction state
    std::optional<Word> store_value; ///< value for MemPlan::store, if any
    bool halt = false;               ///< unconditional branch-to-self seen
};

/// Applies the instruction. `loaded` must carry the memory word when
/// plan_memory() reported a load (contract-checked).
StepEffects execute(const isa::Instruction& in, const CoreState& s, std::optional<Word> loaded);

/// Non-state effects of an in-place execution.
struct InplaceEffects {
    std::optional<Word> store_value; ///< value for MemPlan::store, if any
    bool halt = false;               ///< unconditional branch-to-self seen
};

/// In-place variant of execute(): mutates `s` directly instead of
/// returning a state copy. Architecturally identical by construction (the
/// differential test runs both engines); it exists because the simulator's
/// commit path is dominated by the two CoreState copies execute() implies.
InplaceEffects execute_inplace(const isa::Instruction& in, CoreState& s,
                               std::optional<Word> loaded);

/// Which registers an instruction reads/writes, as bitmasks over the
/// register indices. This is the register-file port activity the
/// protection layer (parity check / TMR vote) keys on: a corrupted
/// register is only observable on a read port, and a write overwrites
/// the upset before anything saw it. Pre/post increment/decrement
/// addressing modes both read and write the address register.
struct RegAccess {
    std::uint32_t read = 0;
    std::uint32_t write = 0;
};

/// Computes the read/write register masks of an instruction.
RegAccess reg_access(const isa::Instruction& in);

} // namespace ulpmc::core
