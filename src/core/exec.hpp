// Shared instruction semantics, split into two phases so both core models
// agree by construction:
//
//   plan_memory() — computes the data addresses an instruction will touch,
//                   WITHOUT changing any state. The cycle-accurate core
//                   uses this to raise crossbar requests; grants may take
//                   several cycles under bank conflicts.
//   execute()     — applies the full architectural effect given the loaded
//                   value (if the instruction reads memory). Returns the
//                   next state plus the value to store (if it writes).
//
// Operand evaluation order is architectural: srcA, then srcB, then the
// destination; pre/post increment/decrement side effects are visible to
// later operands of the same instruction.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "core/state.hpp"
#include "isa/instruction.hpp"

namespace ulpmc::core {

/// Data-memory addresses an instruction will access (virtual addresses,
/// before MMU translation). At most one load and one store (port budget).
struct MemPlan {
    std::optional<Addr> load;
    std::optional<Addr> store;
};

/// Computes the memory plan without side effects.
MemPlan plan_memory(const isa::Instruction& in, const CoreState& s);

/// Result of executing one instruction.
struct StepEffects {
    CoreState next;                  ///< complete post-instruction state
    std::optional<Word> store_value; ///< value for MemPlan::store, if any
    bool halt = false;               ///< unconditional branch-to-self seen
};

/// Applies the instruction. `loaded` must carry the memory word when
/// plan_memory() reported a load (contract-checked).
StepEffects execute(const isa::Instruction& in, const CoreState& s, std::optional<Word> loaded);

/// Non-state effects of an in-place execution.
struct InplaceEffects {
    std::optional<Word> store_value; ///< value for MemPlan::store, if any
    bool halt = false;               ///< unconditional branch-to-self seen
};

/// In-place variant of execute(): mutates `s` directly instead of
/// returning a state copy. Architecturally identical by construction (the
/// differential test runs both engines); it exists because the simulator's
/// commit path is dominated by the two CoreState copies execute() implies.
InplaceEffects execute_inplace(const isa::Instruction& in, CoreState& s,
                               std::optional<Word> loaded);

} // namespace ulpmc::core
