#include "core/exec.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "core/alu.hpp"

namespace ulpmc::core {

namespace {

using isa::DstMode;
using isa::Instruction;
using isa::Opcode;
using isa::SrcMode;
using isa::SrcOperand;

/// Effective address of a memory-mode source operand; applies the
/// pre/post increment/decrement to `regs` (sequential semantics).
Addr src_ea(const SrcOperand& s, std::array<Word, kNumRegisters>& regs, int moff) {
    switch (s.mode) {
    case SrcMode::Ind:
        return regs[s.reg];
    case SrcMode::IndPostInc: {
        const Addr ea = regs[s.reg];
        regs[s.reg] = static_cast<Word>(regs[s.reg] + 1);
        return ea;
    }
    case SrcMode::IndPostDec: {
        const Addr ea = regs[s.reg];
        regs[s.reg] = static_cast<Word>(regs[s.reg] - 1);
        return ea;
    }
    case SrcMode::IndPreInc:
        regs[s.reg] = static_cast<Word>(regs[s.reg] + 1);
        return regs[s.reg];
    case SrcMode::IndPreDec:
        regs[s.reg] = static_cast<Word>(regs[s.reg] - 1);
        return regs[s.reg];
    case SrcMode::IndOff:
        return static_cast<Addr>(regs[s.reg] + static_cast<Word>(static_cast<SWord>(moff)));
    case SrcMode::Reg:
    case SrcMode::Imm4:
        break;
    }
    ULPMC_ASSERT(false);
}

/// Effective address of a memory-mode destination; applies post-increment.
Addr dst_ea(const isa::DstOperand& d, std::array<Word, kNumRegisters>& regs, int moff) {
    switch (d.mode) {
    case DstMode::Ind:
        return regs[d.reg];
    case DstMode::IndPostInc: {
        const Addr ea = regs[d.reg];
        regs[d.reg] = static_cast<Word>(regs[d.reg] + 1);
        return ea;
    }
    case DstMode::IndOff:
        return static_cast<Addr>(regs[d.reg] + static_cast<Word>(static_cast<SWord>(moff)));
    case DstMode::Reg:
        break;
    }
    ULPMC_ASSERT(false);
}

/// True when the SFT srcB immediate must be sign-extended (-8..7).
bool signed_imm(const Instruction& in, bool is_srcb) { return in.op == Opcode::SFT && is_srcb; }

} // namespace

MemPlan plan_memory(const Instruction& in, const CoreState& s) {
    MemPlan plan;
    switch (in.op) {
    case Opcode::BRA:
    case Opcode::JAL:
    case Opcode::MOVI:
        return plan;
    case Opcode::MOV:
        if (!reads_memory(in.srca) && !writes_memory(in.dst)) return plan;
        break;
    default: // ALU
        if (!reads_memory(in.srca) && !reads_memory(in.srcb) && !writes_memory(in.dst))
            return plan;
        break;
    }

    // Only instructions with a memory operand reach the scratch register
    // copy (addressing-mode side effects are discarded).
    std::array<Word, kNumRegisters> regs = s.regs;
    if (in.op == Opcode::MOV) {
        if (reads_memory(in.srca)) plan.load = src_ea(in.srca, regs, in.moff);
        if (writes_memory(in.dst)) plan.store = dst_ea(in.dst, regs, in.moff);
    } else {
        if (reads_memory(in.srca)) plan.load = src_ea(in.srca, regs, in.moff);
        if (reads_memory(in.srcb)) {
            ULPMC_ASSERT(!plan.load); // validated: at most one memory source
            plan.load = src_ea(in.srcb, regs, in.moff);
        }
        if (writes_memory(in.dst)) plan.store = dst_ea(in.dst, regs, 0);
    }
    return plan;
}

InplaceEffects execute_inplace(const Instruction& in, CoreState& s, std::optional<Word> loaded) {
    InplaceEffects fx;
    auto& regs = s.regs;

    // Mirrors execute()'s operand evaluation exactly; regs here plays the
    // role of fx.next.regs there (identical starting contents).
    const auto src_value = [&](const SrcOperand& src, bool is_srcb) -> Word {
        switch (src.mode) {
        case SrcMode::Reg:
            return regs[src.reg];
        case SrcMode::Imm4:
            return signed_imm(in, is_srcb)
                       ? static_cast<Word>(static_cast<SWord>(sign_extend(src.reg, 4)))
                       : static_cast<Word>(src.reg);
        default:
            (void)src_ea(src, regs, in.moff); // apply addressing side effect
            ULPMC_EXPECTS(loaded.has_value());
            return *loaded;
        }
    };

    const auto write_dst = [&](Word value) {
        if (in.dst.mode == DstMode::Reg) {
            regs[in.dst.reg] = value;
        } else {
            (void)dst_ea(in.dst, regs, in.op == Opcode::MOV ? in.moff : 0);
            fx.store_value = value;
        }
    };

    switch (in.op) {
    case Opcode::ADD:
    case Opcode::SUB:
    case Opcode::SFT:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::MULL:
    case Opcode::MULH: {
        const Word a = src_value(in.srca, /*is_srcb=*/false);
        const Word b = src_value(in.srcb, /*is_srcb=*/true);
        const AluOut out = alu_exec(in.op, a, b);
        write_dst(out.value);
        s.flags = out.flags;
        s.pc = static_cast<PAddr>(s.pc + 1);
        return fx;
    }
    case Opcode::MOV:
        write_dst(src_value(in.srca, /*is_srcb=*/false));
        s.pc = static_cast<PAddr>(s.pc + 1);
        return fx;
    case Opcode::MOVI:
        regs[in.dst.reg] = in.imm16;
        s.pc = static_cast<PAddr>(s.pc + 1);
        return fx;
    case Opcode::BRA: {
        if (!cond_holds(in.cond, s.flags)) {
            s.pc = static_cast<PAddr>(s.pc + 1);
            return fx;
        }
        PAddr target = 0;
        switch (in.bmode) {
        case isa::BraMode::Rel:
            target = static_cast<PAddr>(static_cast<std::int32_t>(s.pc) + in.target);
            break;
        case isa::BraMode::Abs:
            target = static_cast<PAddr>(in.target);
            break;
        case isa::BraMode::RegInd:
            target = static_cast<PAddr>(regs[in.treg]);
            break;
        }
        // Halt (branch-to-self) compares against the pre-branch PC, so
        // test before the in-place update.
        fx.halt = in.cond == isa::Cond::AL && target == s.pc;
        s.pc = target;
        return fx;
    }
    case Opcode::JAL: {
        // execute() resolves a RegInd target from the PRE-link register
        // file; capture it before the link write to preserve link==treg.
        const Word treg_old = regs[in.treg];
        regs[in.link] = static_cast<Word>(s.pc + 1);
        switch (in.bmode) {
        case isa::BraMode::Rel:
            s.pc = static_cast<PAddr>(static_cast<std::int32_t>(s.pc) + in.target);
            break;
        case isa::BraMode::Abs:
            s.pc = static_cast<PAddr>(in.target);
            break;
        case isa::BraMode::RegInd:
            s.pc = static_cast<PAddr>(treg_old);
            break;
        }
        return fx;
    }
    }
    ULPMC_ASSERT(false);
}

RegAccess reg_access(const Instruction& in) {
    RegAccess a;
    const auto bit = [](unsigned r) { return std::uint32_t{1} << r; };
    const auto src = [&](const SrcOperand& o) {
        switch (o.mode) {
        case SrcMode::Imm4:
            return;
        case SrcMode::Reg:
        case SrcMode::Ind:
        case SrcMode::IndOff:
            a.read |= bit(o.reg);
            return;
        case SrcMode::IndPostInc:
        case SrcMode::IndPostDec:
        case SrcMode::IndPreInc:
        case SrcMode::IndPreDec:
            a.read |= bit(o.reg);
            a.write |= bit(o.reg);
            return;
        }
    };
    const auto dst = [&](const isa::DstOperand& o) {
        switch (o.mode) {
        case DstMode::Reg:
            a.write |= bit(o.reg);
            return;
        case DstMode::Ind:
        case DstMode::IndOff:
            a.read |= bit(o.reg);
            return;
        case DstMode::IndPostInc:
            a.read |= bit(o.reg);
            a.write |= bit(o.reg);
            return;
        }
    };

    switch (in.op) {
    case Opcode::MOVI:
        a.write |= bit(in.dst.reg);
        return a;
    case Opcode::BRA:
        if (in.bmode == isa::BraMode::RegInd) a.read |= bit(in.treg);
        return a;
    case Opcode::JAL:
        if (in.bmode == isa::BraMode::RegInd) a.read |= bit(in.treg);
        a.write |= bit(in.link);
        return a;
    case Opcode::MOV:
        src(in.srca);
        dst(in.dst);
        return a;
    default: // ALU
        src(in.srca);
        src(in.srcb);
        dst(in.dst);
        return a;
    }
}

StepEffects execute(const Instruction& in, const CoreState& s, std::optional<Word> loaded) {
    StepEffects fx;
    fx.next = s;
    auto& regs = fx.next.regs;

    const auto src_value = [&](const SrcOperand& src, bool is_srcb) -> Word {
        switch (src.mode) {
        case SrcMode::Reg:
            return regs[src.reg];
        case SrcMode::Imm4:
            return signed_imm(in, is_srcb)
                       ? static_cast<Word>(static_cast<SWord>(sign_extend(src.reg, 4)))
                       : static_cast<Word>(src.reg);
        default:
            (void)src_ea(src, regs, in.moff); // apply addressing side effect
            ULPMC_EXPECTS(loaded.has_value());
            return *loaded;
        }
    };

    const auto write_dst = [&](Word value) {
        if (in.dst.mode == DstMode::Reg) {
            regs[in.dst.reg] = value;
        } else {
            (void)dst_ea(in.dst, regs, in.op == Opcode::MOV ? in.moff : 0);
            fx.store_value = value;
        }
    };

    switch (in.op) {
    case Opcode::ADD:
    case Opcode::SUB:
    case Opcode::SFT:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::MULL:
    case Opcode::MULH: {
        const Word a = src_value(in.srca, /*is_srcb=*/false);
        const Word b = src_value(in.srcb, /*is_srcb=*/true);
        const AluOut out = alu_exec(in.op, a, b);
        write_dst(out.value);
        fx.next.flags = out.flags;
        fx.next.pc = static_cast<PAddr>(s.pc + 1);
        return fx;
    }
    case Opcode::MOV: {
        const Word v = src_value(in.srca, /*is_srcb=*/false);
        write_dst(v);
        fx.next.pc = static_cast<PAddr>(s.pc + 1);
        return fx;
    }
    case Opcode::MOVI:
        regs[in.dst.reg] = in.imm16;
        fx.next.pc = static_cast<PAddr>(s.pc + 1);
        return fx;
    case Opcode::BRA: {
        if (!cond_holds(in.cond, s.flags)) {
            fx.next.pc = static_cast<PAddr>(s.pc + 1);
            return fx;
        }
        PAddr target = 0;
        switch (in.bmode) {
        case isa::BraMode::Rel:
            target = static_cast<PAddr>(static_cast<std::int32_t>(s.pc) + in.target);
            break;
        case isa::BraMode::Abs:
            target = static_cast<PAddr>(in.target);
            break;
        case isa::BraMode::RegInd:
            target = static_cast<PAddr>(regs[in.treg]);
            break;
        }
        fx.next.pc = target;
        // The canonical idle idiom: unconditional branch to self. The core
        // reports halt so the cluster can clock-gate it (paper §III-A).
        fx.halt = in.cond == isa::Cond::AL && target == s.pc;
        return fx;
    }
    case Opcode::JAL: {
        regs[in.link] = static_cast<Word>(s.pc + 1);
        switch (in.bmode) {
        case isa::BraMode::Rel:
            fx.next.pc = static_cast<PAddr>(static_cast<std::int32_t>(s.pc) + in.target);
            break;
        case isa::BraMode::Abs:
            fx.next.pc = static_cast<PAddr>(in.target);
            break;
        case isa::BraMode::RegInd:
            fx.next.pc = static_cast<PAddr>(s.regs[in.treg]);
            break;
        }
        return fx;
    }
    }
    ULPMC_ASSERT(false);
}

} // namespace ulpmc::core
