// Functional instruction-set simulator for one TamaRISC core.
//
// Executes one instruction per step() against a flat virtual data memory,
// with no timing model — the reference semantics. The cycle-accurate
// cluster model (src/cluster) is checked against this ISS in lockstep
// co-simulation tests, mirroring the paper's LISA-vs-HDL regression flow.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/exec.hpp"
#include "core/state.hpp"
#include "isa/blockmap.hpp"
#include "isa/instruction.hpp"
#include "isa/program.hpp"

namespace ulpmc::core {

/// Virtual data memory the functional core runs against. Kept abstract so
/// tests can inject fault-on-access or MMU-backed memories.
class DataMemory {
public:
    virtual ~DataMemory() = default;

    /// Reads the word at `addr`; returns false on fault.
    virtual bool read(Addr addr, Word& out) = 0;

    /// Writes the word at `addr`; returns false on fault.
    virtual bool write(Addr addr, Word value) = 0;
};

/// Simple flat memory covering [0, size) words.
class FlatMemory final : public DataMemory {
public:
    explicit FlatMemory(std::size_t size_words = kDmWordsTotal);

    bool read(Addr addr, Word& out) override;
    bool write(Addr addr, Word value) override;

    /// Direct (non-faulting) accessors for loading and inspecting images.
    Word peek(Addr addr) const;
    void poke(Addr addr, Word value);
    std::size_t size() const { return mem_.size(); }

    /// Copies `image` to address `base`.
    void load(Addr base, std::span<const Word> image);

private:
    std::vector<Word> mem_;
};

/// Executed-instruction record handed to trace sinks.
struct TraceEntry {
    std::uint64_t instret = 0; ///< index of this instruction (0-based)
    PAddr pc = 0;
    isa::Instruction in;
    CoreState after;
};

/// The functional ISS.
class FunctionalCore {
public:
    /// The core fetches from `text` (not owned; must outlive the core) and
    /// accesses data through `mem` (not owned). The text contents are
    /// pre-decoded and block-mapped here, so the caller must not mutate
    /// them for the lifetime of the core.
    FunctionalCore(std::span<const InstrWord> text, DataMemory& mem);

    /// Executes one instruction. Returns the trap raised (None if fine).
    /// No-op once halted or trapped.
    Trap step();

    /// Runs until halt, trap, or `max_steps` instructions. Without a trace
    /// sink, dispatches block-at-a-time over the pre-decoded superblock map
    /// (same architectural results as step(), pinned by differential test);
    /// with a sink installed it falls back to per-instruction step().
    Trap run(std::uint64_t max_steps = 100'000'000);

    const CoreState& state() const { return state_; }
    CoreState& state() { return state_; }
    bool halted() const { return halted_; }
    Trap trap() const { return trap_; }
    std::uint64_t instret() const { return instret_; }

    /// Installs an optional per-instruction trace sink.
    void set_tracer(std::function<void(const TraceEntry&)> tracer);

private:
    std::span<const InstrWord> text_;
    DataMemory& mem_;
    isa::BlockMap blocks_;                 ///< superblock map for run()'s dispatcher
    std::vector<isa::Instruction> decoded_; ///< per-pc decode cache (memo blocks)
    CoreState state_;
    bool halted_ = false;
    Trap trap_ = Trap::None;
    std::uint64_t instret_ = 0;
    std::function<void(const TraceEntry&)> tracer_;
};

/// Convenience: run `prog` to completion on a fresh flat memory (with the
/// program's data image loaded at address 0) and return the final core.
/// Used heavily by ISA and application unit tests.
struct RunResult {
    CoreState state;
    Trap trap = Trap::None;
    std::uint64_t instret = 0;
    FlatMemory memory;
};
RunResult run_program(const isa::Program& prog, std::uint64_t max_steps = 100'000'000);

} // namespace ulpmc::core
