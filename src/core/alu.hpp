// The TamaRISC arithmetic-logic unit: the eight ALU operations of the ISA
// (paper §III-A) with their flag semantics.
//
//   ADD   a + b            C = carry out, V = signed overflow
//   SUB   a - b            C = 1 when no borrow (a >= b unsigned)
//   SFT   shift            amount > 0: logical left; < 0: arithmetic right
//   AND/OR/XOR  logical    C = V = 0
//   MULL  low 16 of a*b    (identical for signed/unsigned operands)
//   MULH  high 16 of signed a*b
//
// MULL+MULH together realize the paper's "full 16-bit by 16-bit
// multiplications". All operations set Z and N from the 16-bit result.
#pragma once

#include "common/types.hpp"
#include "core/flags.hpp"
#include "isa/instruction.hpp"

namespace ulpmc::core {

/// Result of one ALU operation.
struct AluOut {
    Word value = 0;
    Flags flags;
};

/// Executes one of the eight ALU opcodes. Precondition: is_alu(op).
/// For SFT, `b` is interpreted as a signed shift amount.
AluOut alu_exec(isa::Opcode op, Word a, Word b);

} // namespace ulpmc::core
