#include "core/flags.hpp"

#include "common/assert.hpp"

namespace ulpmc::core {

bool cond_holds(isa::Cond cond, const Flags& f) {
    using isa::Cond;
    switch (cond) {
    case Cond::AL:
        return true;
    case Cond::EQ:
        return f.z;
    case Cond::NE:
        return !f.z;
    case Cond::CS:
        return f.c;
    case Cond::CC:
        return !f.c;
    case Cond::MI:
        return f.n;
    case Cond::PL:
        return !f.n;
    case Cond::VS:
        return f.v;
    case Cond::VC:
        return !f.v;
    case Cond::HI:
        return f.c && !f.z;
    case Cond::LS:
        return !f.c || f.z;
    case Cond::GE:
        return f.n == f.v;
    case Cond::LT:
        return f.n != f.v;
    case Cond::GT:
        return !f.z && f.n == f.v;
    case Cond::LE:
        return f.z || f.n != f.v;
    case Cond::NV:
        return false;
    }
    ULPMC_ASSERT(false);
}

} // namespace ulpmc::core
