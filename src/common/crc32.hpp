// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check behind durable execution (DESIGN.md §9.6): every stored
// checkpoint payload and every journal frame carries a CRC so a torn
// write or a storage upset is *detected* rather than silently restored.
// Incremental: crc32(b, crc32(a)) == crc32(a ++ b), which is how the
// frame writer covers header + payload in one pass.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ulpmc {

/// Extends `seed` (the running CRC, 0 to start) over `len` bytes.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

} // namespace ulpmc
