// Fundamental architectural types shared by every subsystem.
//
// TamaRISC is a 16-bit machine with 24-bit instruction words. Data
// addresses are 16-bit *word* addresses (one address names one 16-bit
// word), program addresses are instruction indices. Using distinct
// aliases keeps interfaces explicit (Core Guidelines I.4).
#pragma once

#include <cstdint>
#include <cstddef>

namespace ulpmc {

/// One 16-bit data word — the machine's only data type.
using Word = std::uint16_t;

/// Signed view of a data word (for arithmetic semantics).
using SWord = std::int16_t;

/// A 24-bit instruction word, stored in the low bits of a uint32.
using InstrWord = std::uint32_t;

/// Mask selecting the 24 valid bits of an InstrWord.
inline constexpr InstrWord kInstrWordMask = 0x00FF'FFFFu;

/// Number of bytes one instruction occupies in the paper's byte accounting.
inline constexpr std::size_t kInstrBytes = 3;

/// 16-bit data-memory word address.
using Addr = std::uint16_t;

/// Program address: index of an instruction in the instruction space.
using PAddr = std::uint16_t;

/// Identifies one of the cluster's cores (the paper's PID).
using CoreId = std::uint8_t;

/// Identifies one memory bank behind a crossbar.
using BankId = std::uint8_t;

/// Simulation time in clock cycles.
using Cycle = std::uint64_t;

/// Number of general-purpose registers in a TamaRISC core.
inline constexpr unsigned kNumRegisters = 16;

/// Number of cores in the cluster studied by the paper.
inline constexpr unsigned kNumCores = 8;

/// Data memory: 64 kB total = 32768 16-bit words in 16 banks.
inline constexpr unsigned kDmBanks = 16;
inline constexpr std::size_t kDmWordsTotal = 32768;
inline constexpr std::size_t kDmWordsPerBank = kDmWordsTotal / kDmBanks; // 2048

/// Instruction memory: 96 kB total = 32768 24-bit instructions in 8 banks.
inline constexpr unsigned kImBanks = 8;
inline constexpr std::size_t kImWordsTotal = 32768;
inline constexpr std::size_t kImWordsPerBank = kImWordsTotal / kImBanks; // 4096

} // namespace ulpmc
