// CRC-framed append-only run journal (DESIGN.md §9.6).
//
// A long fleet or lifetime run appends one frame per completed unit of
// work (device, chunk, policy); after a crash, --resume replays the
// intact frames and the run continues from where durable progress ends.
// Frame format, all little-endian host order:
//
//   [u32 kind][u32 len][len payload bytes][u32 crc]
//
// with crc = crc32(kind ++ len ++ payload). The writer flushes and
// fsyncs after every frame, so a frame is either durably complete or
// absent. The reader stops at the first torn or CRC-failing frame and
// reports how many clean bytes precede it — a killed writer leaves at
// most one torn frame at the tail, which resume simply truncates away
// by re-opening the journal at the clean prefix.
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace ulpmc {

class JournalError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// One decoded frame.
struct JournalFrame {
    std::uint32_t kind = 0;
    std::vector<std::uint8_t> payload;
};

/// Everything intact in a journal file.
struct JournalContents {
    std::vector<JournalFrame> frames;
    std::uint64_t clean_bytes = 0; ///< file prefix covered by intact frames
    bool torn_tail = false;        ///< a truncated/corrupt frame follows the prefix
};

/// Reads the intact prefix of `path`. Throws JournalError only when the
/// file cannot be opened at all; torn tails are reported, not thrown.
JournalContents read_journal(const std::string& path);

/// Appends frames to a journal file, one durable (flushed + fsynced)
/// frame per append() call.
class JournalWriter {
public:
    /// Opens `path` for appending after truncating it to `keep_bytes`
    /// (the intact prefix a resume decided to keep; 0 starts fresh,
    /// pass JournalContents::clean_bytes to drop a torn tail). Throws
    /// JournalError when the file cannot be opened.
    JournalWriter(const std::string& path, std::uint64_t keep_bytes = 0);
    ~JournalWriter();

    JournalWriter(const JournalWriter&) = delete;
    JournalWriter& operator=(const JournalWriter&) = delete;

    /// Appends one frame and makes it durable. Throws JournalError on
    /// any I/O failure.
    void append(std::uint32_t kind, const std::vector<std::uint8_t>& payload);

private:
    std::FILE* f_ = nullptr;
    std::string path_;
};

} // namespace ulpmc
