#include "common/journal.hpp"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "common/crc32.hpp"

namespace ulpmc {

namespace {

/// Bound on one frame's payload: a length field beyond this is garbage
/// (a torn header read as a length), not a real frame.
constexpr std::uint32_t kMaxPayload = 64u << 20;

} // namespace

JournalContents read_journal(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) throw JournalError("journal: cannot open: " + path + ": " + std::strerror(errno));

    JournalContents jc;
    std::vector<std::uint8_t> buf;
    for (;;) {
        std::uint32_t head[2]; // kind, len
        if (std::fread(head, 1, sizeof(head), f) != sizeof(head)) break;
        if (head[1] > kMaxPayload) {
            jc.torn_tail = true;
            break;
        }
        buf.resize(head[1]);
        if (head[1] > 0 && std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
            jc.torn_tail = true;
            break;
        }
        std::uint32_t stored_crc = 0;
        if (std::fread(&stored_crc, 1, sizeof(stored_crc), f) != sizeof(stored_crc)) {
            jc.torn_tail = true;
            break;
        }
        const std::uint32_t crc = crc32(buf.data(), buf.size(), crc32(head, sizeof(head)));
        if (crc != stored_crc) {
            jc.torn_tail = true;
            break;
        }
        jc.frames.push_back({head[0], buf});
        jc.clean_bytes += sizeof(head) + buf.size() + sizeof(stored_crc);
    }
    // Bytes past the last intact frame (without even a readable header)
    // are also a torn tail.
    if (!jc.torn_tail) {
        std::fseek(f, 0, SEEK_END);
        if (static_cast<std::uint64_t>(std::ftell(f)) != jc.clean_bytes) jc.torn_tail = true;
    }
    std::fclose(f);
    return jc;
}

JournalWriter::JournalWriter(const std::string& path, std::uint64_t keep_bytes) : path_(path) {
    // "ab" would forbid the truncation; open read-write, create if
    // missing, then cut the torn tail and seek to the clean end.
    f_ = std::fopen(path.c_str(), "r+b");
    if (!f_) f_ = std::fopen(path.c_str(), "w+b");
    if (!f_)
        throw JournalError("journal: cannot open for append: " + path + ": " +
                           std::strerror(errno));
    if (ftruncate(fileno(f_), static_cast<off_t>(keep_bytes)) != 0 ||
        std::fseek(f_, 0, SEEK_END) != 0) {
        std::fclose(f_);
        f_ = nullptr;
        throw JournalError("journal: cannot truncate: " + path + ": " + std::strerror(errno));
    }
}

JournalWriter::~JournalWriter() {
    if (f_) std::fclose(f_);
}

void JournalWriter::append(std::uint32_t kind, const std::vector<std::uint8_t>& payload) {
    const std::uint32_t head[2] = {kind, static_cast<std::uint32_t>(payload.size())};
    const std::uint32_t crc = crc32(payload.data(), payload.size(), crc32(head, sizeof(head)));
    bool ok = std::fwrite(head, 1, sizeof(head), f_) == sizeof(head);
    ok = ok && (payload.empty() ||
                std::fwrite(payload.data(), 1, payload.size(), f_) == payload.size());
    ok = ok && std::fwrite(&crc, 1, sizeof(crc), f_) == sizeof(crc);
    ok = ok && std::fflush(f_) == 0;
    // fsync makes the frame durable before the caller treats the work as
    // done — the whole point of journaling ahead of a SIGKILL.
    ok = ok && fsync(fileno(f_)) == 0;
    if (!ok)
        throw JournalError("journal: append failed: " + path_ + ": " + std::strerror(errno));
}

} // namespace ulpmc
