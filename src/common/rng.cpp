#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/serial.hpp"

namespace ulpmc {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint32_t rotl(std::uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

} // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    const std::uint64_t a = splitmix64(sm);
    const std::uint64_t b = splitmix64(sm);
    s_[0] = static_cast<std::uint32_t>(a);
    s_[1] = static_cast<std::uint32_t>(a >> 32);
    s_[2] = static_cast<std::uint32_t>(b);
    s_[3] = static_cast<std::uint32_t>(b >> 32);
    // xoshiro must not be seeded with all zeroes.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint32_t Rng::next_u32() {
    const std::uint32_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint32_t t = s_[1] << 9;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 11);
    return result;
}

std::uint32_t Rng::below(std::uint32_t bound) {
    ULPMC_EXPECTS(bound > 0);
    // Lemire-style rejection-free mapping is overkill; simple modulo bias is
    // acceptable for workload synthesis, but we debias cheaply anyway.
    const std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
    return static_cast<std::uint32_t>(m >> 32);
}

std::int32_t Rng::range(std::int32_t lo, std::int32_t hi) {
    ULPMC_EXPECTS(lo <= hi);
    const std::uint32_t span = static_cast<std::uint32_t>(hi - lo) + 1u;
    return lo + static_cast<std::int32_t>(below(span));
}

double Rng::uniform() { return next_u32() * (1.0 / 4294967296.0); }

double Rng::gaussian() {
    if (have_spare_) {
        have_spare_ = false;
        return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
}

void Rng::encode(std::vector<std::uint8_t>& out) const {
    for (const std::uint32_t lane : s_) put_raw(out, lane);
    put_raw(out, static_cast<std::uint8_t>(have_spare_ ? 1 : 0));
    put_f64(out, spare_);
}

bool Rng::decode(ByteReader& in) {
    std::uint32_t lanes[4];
    for (auto& lane : lanes) lane = in.get<std::uint32_t>();
    const auto have_spare = in.get<std::uint8_t>();
    const double spare = in.get_f64();
    if (in.fail() || (lanes[0] | lanes[1] | lanes[2] | lanes[3]) == 0) return false;
    for (int i = 0; i < 4; ++i) s_[i] = lanes[i];
    have_spare_ = have_spare != 0;
    spare_ = spare;
    return true;
}

} // namespace ulpmc
