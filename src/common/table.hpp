// Fixed-width ASCII table printer shared by the experiment benches so that
// every reproduced table/figure prints in one consistent, paper-like style.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ulpmc {

/// Accumulates rows of string cells and prints them column-aligned.
///
/// Usage:
///   Table t({"arch", "power [mW]", "saving"});
///   t.add_row({"mc-ref", format_si(1.1e-3, "W"), "-"});
///   t.print(std::cout);
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Appends a data row; must have as many cells as the header.
    void add_row(std::vector<std::string> cells);

    /// Appends a horizontal separator line.
    void add_separator();

    /// Renders the table.
    void print(std::ostream& os) const;

    /// Number of data rows added so far (separators excluded).
    std::size_t rows() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty vector == separator
};

/// Formats `v` with `prec` digits after the decimal point.
std::string format_fixed(double v, int prec);

/// Formats a physical quantity with an SI prefix, e.g. 3.97e-6, "W" ->
/// "3.97 uW". Chooses from p, n, u, m, (none), k, M, G.
std::string format_si(double v, const char* unit, int prec = 3);

/// Formats a ratio as a percentage, e.g. 0.395 -> "39.5%".
std::string format_percent(double ratio, int prec = 1);

/// Formats a count with thousands separators, e.g. 720800 -> "720,800".
std::string format_count(std::uint64_t v);

} // namespace ulpmc
