// Tiny byte-exact serialization helpers (DESIGN.md §9.6).
//
// Durable-execution records (checkpoint payloads, journal frames) are
// memcpy-composed from trivially copyable scalars: integers verbatim,
// doubles as their IEEE-754 bit patterns (std::bit_cast), never through
// text — resume must reconstruct *bit-identical* state, and a decimal
// round-trip of a double is not the identity. Host-endian on purpose: a
// journal resumes the run that wrote it, on the same machine.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace ulpmc {

/// Appends the object representation of `v` to `out`.
template <typename T>
void put_raw(std::vector<std::uint8_t>& out, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), p, p + sizeof(T));
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
    put_raw(out, std::bit_cast<std::uint64_t>(v));
}

/// Sequential reader over a byte buffer. Reads past the end set fail()
/// and return zero-initialized values instead of touching out-of-range
/// memory — the caller checks fail() once at the end (a short buffer is
/// a corrupt record, not a programming error).
class ByteReader {
public:
    ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
    explicit ByteReader(const std::vector<std::uint8_t>& buf)
        : ByteReader(buf.data(), buf.size()) {}

    template <typename T>
    T get() {
        static_assert(std::is_trivially_copyable_v<T>);
        T v{};
        if (pos_ + sizeof(T) > size_) {
            fail_ = true;
            pos_ = size_;
            return v;
        }
        std::memcpy(&v, data_ + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    double get_f64() { return std::bit_cast<double>(get<std::uint64_t>()); }

    bool fail() const { return fail_; }
    std::size_t remaining() const { return size_ - pos_; }

private:
    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool fail_ = false;
};

} // namespace ulpmc
