// Small bit-manipulation helpers used by the instruction encoder/decoder.
// All helpers are constexpr and operate on unsigned values only
// (Core Guidelines ES.101: use unsigned types for bit manipulation).
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace ulpmc {

/// Extract bits [lo, lo+width) of `v`.
constexpr std::uint32_t bits(std::uint32_t v, unsigned lo, unsigned width) {
    return (v >> lo) & ((width >= 32) ? 0xFFFF'FFFFu : ((1u << width) - 1u));
}

/// Insert the low `width` bits of `field` into bits [lo, lo+width) of `v`.
constexpr std::uint32_t insert_bits(std::uint32_t v, unsigned lo, unsigned width,
                                    std::uint32_t field) {
    const std::uint32_t mask = ((width >= 32) ? 0xFFFF'FFFFu : ((1u << width) - 1u));
    return (v & ~(mask << lo)) | ((field & mask) << lo);
}

/// Sign-extend the low `width` bits of `v` to a signed 32-bit value.
constexpr std::int32_t sign_extend(std::uint32_t v, unsigned width) {
    const std::uint32_t m = 1u << (width - 1);
    const std::uint32_t x = v & ((1u << width) - 1u);
    return static_cast<std::int32_t>((x ^ m) - m);
}

/// True if `v` fits in `width` bits as an unsigned value.
constexpr bool fits_unsigned(std::uint32_t v, unsigned width) {
    return width >= 32 || v < (1u << width);
}

/// True if `v` fits in `width` bits as a signed (two's complement) value.
constexpr bool fits_signed(std::int32_t v, unsigned width) {
    const std::int32_t lo = -(1 << (width - 1));
    const std::int32_t hi = (1 << (width - 1)) - 1;
    return v >= lo && v <= hi;
}

/// Checked narrowing (Core Guidelines ES.46): aborts the operation with a
/// contract violation instead of silently truncating.
template <typename To, typename From>
constexpr To narrow(From v) {
    const To r = static_cast<To>(v);
    ULPMC_ENSURES(static_cast<From>(r) == v);
    return r;
}

} // namespace ulpmc
