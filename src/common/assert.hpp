// Contract-checking support in the spirit of the C++ Core Guidelines
// (I.5/I.7: state preconditions and postconditions; P.7: catch run-time
// errors early). Violations throw, so tests can assert on them and the
// simulator never silently corrupts architectural state.
#pragma once

#include <stdexcept>
#include <string>

namespace ulpmc {

/// Thrown when a precondition, postcondition or internal invariant of the
/// simulator is violated. Carries the failing expression and location.
class contract_violation : public std::logic_error {
public:
    contract_violation(const char* kind, const char* expr, const char* file, int line)
        : std::logic_error(std::string(kind) + " failed: " + expr + " at " + file + ":" +
                           std::to_string(line)) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr, const char* file,
                                       int line) {
    throw contract_violation{kind, expr, file, line};
}
} // namespace detail

} // namespace ulpmc

/// Precondition check: argument/state requirements at function entry.
#define ULPMC_EXPECTS(cond)                                                                        \
    do {                                                                                           \
        if (!(cond)) ::ulpmc::detail::contract_fail("precondition", #cond, __FILE__, __LINE__);    \
    } while (false)

/// Postcondition / invariant check.
#define ULPMC_ENSURES(cond)                                                                        \
    do {                                                                                           \
        if (!(cond)) ::ulpmc::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__);   \
    } while (false)

/// Internal invariant ("this cannot happen" states of the simulator).
#define ULPMC_ASSERT(cond)                                                                         \
    do {                                                                                           \
        if (!(cond)) ::ulpmc::detail::contract_fail("invariant", #cond, __FILE__, __LINE__);       \
    } while (false)
