// Atomic whole-file writes (DESIGN.md §9.6).
//
// The JSON artifacts gate CI and feed downstream merges; a run killed
// mid-write must never leave a half-written file that a check_*.py gate
// could read as valid-but-wrong. write_file_atomic writes to a
// same-directory temp file, flushes and fsyncs it, then rename()s over
// the destination — readers see the old bytes or the new bytes, never a
// prefix.
#pragma once

#include <stdexcept>
#include <string>

namespace ulpmc {

class AtomicFileError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Replaces `path`'s contents with `content` atomically. Throws
/// AtomicFileError on any I/O failure (the temp file is removed).
void write_file_atomic(const std::string& path, const std::string& content);

} // namespace ulpmc
