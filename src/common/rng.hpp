// Deterministic pseudo-random number generator for workload synthesis.
//
// Reproducibility matters more than statistical perfection here: every
// experiment in EXPERIMENTS.md must print identical numbers on every run,
// so all randomness flows through this seeded generator (xoshiro128**)
// rather than std::random_device.
#pragma once

#include <cstdint>
#include <vector>

namespace ulpmc {

class ByteReader;

/// Small, fast, seedable PRNG (xoshiro128**).
class Rng {
public:
    /// Seeds the four lanes from a single 64-bit seed via splitmix64.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /// Next raw 32-bit value.
    std::uint32_t next_u32();

    /// Uniform integer in [0, bound) — bound must be > 0.
    std::uint32_t below(std::uint32_t bound);

    /// Uniform integer in [lo, hi] inclusive.
    std::int32_t range(std::int32_t lo, std::int32_t hi);

    /// Uniform double in [0, 1).
    double uniform();

    /// Standard normal variate (Box-Muller, deterministic).
    double gaussian();

    /// Appends the complete generator state (four xoshiro lanes plus the
    /// Box-Muller spare) to `out`; decode() restores it bit-exactly, so a
    /// resumed run continues the same draw sequence. Returns false (state
    /// untouched) on a short buffer.
    void encode(std::vector<std::uint8_t>& out) const;
    bool decode(ByteReader& in);

private:
    std::uint32_t s_[4];
    bool have_spare_ = false;
    double spare_ = 0.0;
};

} // namespace ulpmc
