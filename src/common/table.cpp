#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace ulpmc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    ULPMC_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
    ULPMC_EXPECTS(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::size_t Table::rows() const {
    std::size_t n = 0;
    for (const auto& r : rows_)
        if (!r.empty()) ++n;
    return n;
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

    const auto print_sep = [&] {
        os << '+';
        for (const std::size_t w : width) os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    const auto print_cells = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ') << " |";
        }
        os << '\n';
    };

    print_sep();
    print_cells(header_);
    print_sep();
    for (const auto& row : rows_) {
        if (row.empty()) {
            print_sep();
        } else {
            print_cells(row);
        }
    }
    print_sep();
}

std::string format_fixed(double v, int prec) {
    std::ostringstream ss;
    ss.setf(std::ios::fixed);
    ss.precision(prec);
    ss << v;
    return ss.str();
}

std::string format_si(double v, const char* unit, int prec) {
    struct Prefix {
        double scale;
        const char* name;
    };
    static constexpr Prefix prefixes[] = {
        {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
        {1e-12, "p"},
    };
    if (v == 0.0) return std::string("0 ") + unit;
    const double mag = std::fabs(v);
    for (const auto& p : prefixes) {
        if (mag >= p.scale) {
            std::ostringstream ss;
            ss.precision(prec);
            ss << (v / p.scale) << ' ' << p.name << unit;
            return ss.str();
        }
    }
    std::ostringstream ss;
    ss.precision(prec);
    ss << (v / 1e-12) << " p" << unit;
    return ss.str();
}

std::string format_percent(double ratio, int prec) { return format_fixed(ratio * 100.0, prec) + "%"; }

std::string format_count(std::uint64_t v) {
    std::string digits = std::to_string(v);
    std::string out;
    int group = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (group == 3) {
            out.push_back(',');
            group = 0;
        }
        out.push_back(*it);
        ++group;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace ulpmc
