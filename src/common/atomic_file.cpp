#include "common/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

namespace ulpmc {

void write_file_atomic(const std::string& path, const std::string& content) {
    // The temp file must live in the destination's directory: rename()
    // is only atomic within one filesystem.
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw AtomicFileError("atomic write: cannot open " + tmp + ": " +
                              std::strerror(errno));
    bool ok = content.empty() ||
              std::fwrite(content.data(), 1, content.size(), f) == content.size();
    ok = ok && std::fflush(f) == 0;
    ok = ok && fsync(fileno(f)) == 0;
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        throw AtomicFileError("atomic write: write failed: " + tmp + ": " +
                              std::strerror(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int e = errno;
        std::remove(tmp.c_str());
        throw AtomicFileError("atomic write: rename to " + path + " failed: " +
                              std::strerror(e));
    }
}

} // namespace ulpmc
