#include "isa/assembler.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "isa/asm_builder.hpp"
#include "isa/encoding.hpp"
#include "isa/mnemonics.hpp"

namespace ulpmc::isa {

namespace {

// ---- lexical helpers -------------------------------------------------------

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
    return s;
}

std::string to_lower(std::string_view sv) {
    std::string s(sv);
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }

bool is_identifier(std::string_view s) {
    if (s.empty() || !is_ident_start(s.front())) return false;
    for (const char c : s)
        if (!is_ident_char(c)) return false;
    return true;
}

/// Splits a comma-separated operand list, honoring no nesting (the syntax
/// has none).
std::vector<std::string> split_operands(std::string_view s) {
    std::vector<std::string> out;
    std::size_t start = 0;
    const std::string str(s);
    for (std::size_t i = 0; i <= str.size(); ++i) {
        if (i == str.size() || str[i] == ',') {
            const auto piece = trim(std::string_view(str).substr(start, i - start));
            if (!piece.empty()) out.emplace_back(piece);
            start = i + 1;
        }
    }
    return out;
}

// ---- the assembler ---------------------------------------------------------

class TextAssembler {
public:
    explicit TextAssembler(std::string_view source) : source_(source) {}

    Program run() {
        unsigned lineno = 0;
        std::istringstream in{std::string(source_)};
        std::string raw;
        while (std::getline(in, raw)) {
            ++lineno;
            line_ = lineno;
            process_line(raw);
        }
        Program p = [&] {
            try {
                return builder_.finish();
            } catch (const contract_violation&) {
                throw AssemblyError(line_, "undefined label referenced in program");
            }
        }();
        if (!entry_label_.empty()) {
            const auto s = p.symbol(entry_label_);
            if (!s || s->space != Symbol::Space::Text)
                throw AssemblyError(entry_line_, "entry label '" + entry_label_ + "' undefined");
            p.entry = narrow<PAddr>(s->value);
        }
        return p;
    }

private:
    [[noreturn]] void fail(const std::string& msg) const { throw AssemblyError(line_, msg); }

    void process_line(std::string_view raw) {
        // Strip comment.
        const auto semi = raw.find(';');
        std::string_view s = trim(raw.substr(0, semi));
        if (s.empty()) return;

        // Leading label(s).
        while (true) {
            const auto colon = s.find(':');
            if (colon == std::string_view::npos) break;
            const std::string_view name = trim(s.substr(0, colon));
            if (!is_identifier(name)) fail("invalid label name '" + std::string(name) + "'");
            define_label(std::string(name));
            s = trim(s.substr(colon + 1));
            if (s.empty()) return;
        }

        // Split mnemonic / operands.
        std::size_t sp = 0;
        while (sp < s.size() && !std::isspace(static_cast<unsigned char>(s[sp]))) ++sp;
        const std::string mnemonic = to_lower(s.substr(0, sp));
        const std::string_view rest = trim(s.substr(sp));

        if (mnemonic.front() == '.') {
            directive(mnemonic, rest);
        } else {
            instruction(mnemonic, rest);
        }
    }

    void define_label(const std::string& name) {
        if (equs_.count(name)) fail("label '" + name + "' collides with .equ constant");
        try {
            if (in_text_) {
                builder_.label(name);
            } else {
                builder_.data_label(name);
            }
        } catch (const contract_violation&) {
            fail("duplicate label '" + name + "'");
        }
    }

    void directive(const std::string& d, std::string_view rest) {
        if (d == ".text") {
            require_empty(rest);
            in_text_ = true;
        } else if (d == ".data") {
            require_empty(rest);
            in_text_ = false;
        } else if (d == ".entry") {
            const auto ops = split_operands(rest);
            if (ops.size() != 1 || !is_identifier(ops[0])) fail(".entry expects one label");
            entry_label_ = ops[0];
            entry_line_ = line_;
        } else if (d == ".equ") {
            const auto ops = split_operands(rest);
            if (ops.size() != 2 || !is_identifier(ops[0])) fail(".equ expects: name, value");
            if (equs_.count(ops[0])) fail("duplicate .equ '" + ops[0] + "'");
            equs_[ops[0]] = expect_number(ops[1]);
        } else if (d == ".word") {
            if (in_text_) fail(".word is only valid in the data section");
            const auto ops = split_operands(rest);
            if (ops.empty()) fail(".word expects at least one value");
            for (const auto& o : ops) builder_.word(static_cast<Word>(expect_number(o) & 0xFFFF));
        } else if (d == ".space") {
            if (in_text_) fail(".space is only valid in the data section");
            const auto ops = split_operands(rest);
            if (ops.size() != 1) fail(".space expects one count");
            const std::int64_t n = expect_number(ops[0]);
            if (n < 0) fail(".space count must be non-negative");
            builder_.space(static_cast<std::size_t>(n));
        } else if (d == ".align") {
            if (in_text_) fail(".align is only valid in the data section");
            const auto ops = split_operands(rest);
            if (ops.size() != 1) fail(".align expects one alignment");
            const std::int64_t n = expect_number(ops[0]);
            if (n <= 0) fail(".align must be positive");
            builder_.align_data(static_cast<std::size_t>(n));
        } else {
            fail("unknown directive '" + d + "'");
        }
    }

    void require_empty(std::string_view rest) const {
        if (!rest.empty()) fail("unexpected operands");
    }

    void instruction(const std::string& mnemonic, std::string_view rest) {
        if (mnemonic == "hlt") {
            require_empty(rest);
            builder_.hlt();
            return;
        }
        if (mnemonic == "nop") {
            require_empty(rest);
            builder_.nop();
            return;
        }
        if (mnemonic == "ret") {
            const auto ops = split_operands(rest);
            if (ops.size() != 1) fail("ret expects one link register");
            builder_.ret(expect_reg(ops[0]));
            return;
        }

        const auto op = parse_opcode(mnemonic);
        if (!op) fail("unknown mnemonic '" + mnemonic + "'");
        const auto ops = split_operands(rest);

        try {
            dispatch(*op, ops);
        } catch (const contract_violation& cv) {
            fail(std::string("invalid instruction: ") + cv.what());
        }
    }

    void dispatch(Opcode op, const std::vector<std::string>& ops) {
        switch (op) {
        case Opcode::ADD:
        case Opcode::SUB:
        case Opcode::SFT:
        case Opcode::AND:
        case Opcode::OR:
        case Opcode::XOR:
        case Opcode::MULL:
        case Opcode::MULH: {
            if (ops.size() != 3) fail("ALU instructions expect: dst, srcA, srcB");
            int moff = 0;
            const DstOperand d = parse_dst(ops[0], moff);
            if (moff != 0 || d.mode == DstMode::IndOff)
                fail("@rN+imm destination is only available in mov");
            const SrcOperand a = parse_src(ops[1], moff, /*allow_off=*/false);
            const SrcOperand b = parse_src(ops[2], moff, /*allow_off=*/false);
            builder_.alu(op, d, a, b);
            return;
        }
        case Opcode::MOV: {
            if (ops.size() != 2) fail("mov expects: dst, src");
            int moff = 0;
            const DstOperand d = parse_dst(ops[0], moff);
            const SrcOperand s = parse_src(ops[1], moff, /*allow_off=*/true);
            builder_.mov(d, s, moff);
            return;
        }
        case Opcode::MOVI: {
            if (ops.size() != 2) fail("movi expects: rd, imm16|symbol");
            const unsigned rd = expect_reg(ops[0]);
            if (is_identifier(ops[1]) && !equs_.count(ops[1])) {
                // Forward/backward reference to a label; space decided at
                // fixup time — try data first, fall back to text.
                builder_.movi_symbol_any(rd, ops[1]);
            } else {
                builder_.movi(rd, static_cast<Word>(expect_number(ops[1]) & 0xFFFF));
            }
            return;
        }
        case Opcode::BRA: {
            std::string cond = "al";
            std::string target;
            if (ops.size() == 2) {
                cond = to_lower(ops[0]);
                target = ops[1];
            } else if (ops.size() == 1) {
                target = ops[0];
            } else {
                fail("bra expects: [cond,] target");
            }
            const auto c = parse_cond(cond);
            if (!c) fail("unknown condition '" + cond + "'");
            branch(*c, target);
            return;
        }
        case Opcode::JAL: {
            if (ops.size() != 2) fail("jal expects: rlink, target");
            const unsigned link = expect_reg(ops[0]);
            const std::string& target = ops[1];
            if (target.front() == '@') {
                builder_.emit(make_jal(link, BraMode::RegInd,
                                       static_cast<std::int32_t>(expect_reg(target.substr(1)))));
            } else if (target.front() == '=') {
                builder_.emit(make_jal(
                    link, BraMode::Abs, static_cast<std::int32_t>(expect_number(target.substr(1)))));
            } else if (is_identifier(target) && !equs_.count(target)) {
                builder_.jal(link, target);
            } else {
                builder_.emit(
                    make_jal(link, BraMode::Rel, static_cast<std::int32_t>(expect_number(target))));
            }
            return;
        }
        }
        fail("unsupported instruction");
    }

    void branch(Cond c, const std::string& target) {
        if (target.front() == '@') {
            builder_.bra_reg(c, expect_reg(target.substr(1)));
        } else if (target.front() == '=') {
            builder_.emit(make_bra(c, BraMode::Abs,
                                   static_cast<std::int32_t>(expect_number(target.substr(1)))));
        } else if (is_identifier(target) && !equs_.count(target)) {
            builder_.bra(c, target);
        } else {
            // Numeric relative offset.
            builder_.emit(make_bra(c, BraMode::Rel, static_cast<std::int32_t>(expect_number(target))));
        }
    }

    // ---- operand parsing ---------------------------------------------------

    unsigned expect_reg(std::string_view s) const {
        const std::string t = to_lower(trim(s));
        if (t.size() < 2 || t[0] != 'r') fail("expected register, got '" + std::string(s) + "'");
        unsigned v = 0;
        for (std::size_t i = 1; i < t.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(t[i])))
                fail("expected register, got '" + std::string(s) + "'");
            v = v * 10 + static_cast<unsigned>(t[i] - '0');
        }
        if (v >= kNumRegisters) fail("register index out of range: '" + std::string(s) + "'");
        return v;
    }

    std::int64_t expect_number(std::string_view sv) const {
        const std::string t(trim(sv));
        if (const auto it = equs_.find(t); it != equs_.end()) return it->second;
        bool neg = false;
        std::size_t i = 0;
        if (i < t.size() && (t[i] == '-' || t[i] == '+')) {
            neg = t[i] == '-';
            ++i;
        }
        int base = 10;
        if (t.size() >= i + 2 && t[i] == '0' && (t[i + 1] == 'x' || t[i + 1] == 'X')) {
            base = 16;
            i += 2;
        } else if (t.size() >= i + 2 && t[i] == '0' && (t[i + 1] == 'b' || t[i + 1] == 'B')) {
            base = 2;
            i += 2;
        }
        if (i >= t.size()) fail("expected number, got '" + t + "'");
        std::int64_t v = 0;
        for (; i < t.size(); ++i) {
            const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(t[i])));
            int digit = -1;
            if (c >= '0' && c <= '9') digit = c - '0';
            else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
            if (digit < 0 || digit >= base) fail("expected number, got '" + t + "'");
            v = v * base + digit;
            if (v > 0xFFFFFF) fail("number out of range: '" + t + "'");
        }
        return neg ? -v : v;
    }

    /// Parses "@rN", "@rN+", "@rN-", "@+rN", "@-rN", "@rN+imm", "@rN-imm".
    /// Returns mode + register; writes the offset (if any) to `moff`.
    SrcOperand parse_indirect(std::string_view body, int& moff, bool allow_off) const {
        // body excludes the leading '@'.
        if (body.empty()) fail("empty indirect operand");
        if (body.front() == '+') return spreinc(expect_reg(body.substr(1)));
        if (body.front() == '-') return spredec(expect_reg(body.substr(1)));
        // Find the end of the register name.
        std::size_t i = 0;
        while (i < body.size() && body[i] != '+' && body[i] != '-') ++i;
        const unsigned reg = expect_reg(body.substr(0, i));
        if (i == body.size()) return sind(reg);
        const char sign = body[i];
        const std::string_view tail = body.substr(i + 1);
        if (tail.empty()) return sign == '+' ? spostinc(reg) : spostdec(reg);
        // "@rN+imm" / "@rN-imm" offset form.
        if (!allow_off) fail("@rN+imm operands are only available in mov");
        const std::int64_t off = expect_number(tail);
        const std::int64_t signed_off = sign == '+' ? off : -off;
        if (!fits_signed(static_cast<std::int32_t>(signed_off), 7))
            fail("mov offset out of signed 7-bit range");
        moff = static_cast<int>(signed_off);
        return soff(reg);
    }

    SrcOperand parse_src(std::string_view sv, int& moff, bool allow_off) const {
        const std::string t(trim(sv));
        if (t.empty()) fail("empty operand");
        if (t.front() == '#') {
            const std::int64_t v = expect_number(std::string_view(t).substr(1));
            if (v < -8 || v > 15) fail("immediate out of imm4 range: '" + t + "'");
            return simm(static_cast<int>(v));
        }
        if (t.front() == '@') return parse_indirect(std::string_view(t).substr(1), moff, allow_off);
        return sreg(expect_reg(t));
    }

    DstOperand parse_dst(std::string_view sv, int& moff) const {
        const std::string t(trim(sv));
        if (t.empty()) fail("empty operand");
        if (t.front() != '@') return dreg(expect_reg(t));
        const SrcOperand s = parse_indirect(std::string_view(t).substr(1), moff, /*allow_off=*/true);
        switch (s.mode) {
        case SrcMode::Ind:
            return dind(s.reg);
        case SrcMode::IndPostInc:
            return dpostinc(s.reg);
        case SrcMode::IndOff:
            return doff(s.reg);
        default:
            fail("unsupported destination addressing mode '" + t + "'");
        }
    }

    std::string_view source_;
    AsmBuilder builder_;
    std::map<std::string, std::int64_t> equs_;
    bool in_text_ = true;
    unsigned line_ = 0;
    std::string entry_label_;
    unsigned entry_line_ = 0;
};

} // namespace

Program assemble(std::string_view source) { return TextAssembler(source).run(); }

} // namespace ulpmc::isa
