// Decode-once program artifact (DESIGN.md §11).
//
// A design-space sweep or fault campaign runs thousands of cluster
// instances over the SAME program: the text image, its decode and its
// basic-block map are immutable per campaign, yet every Cluster::reset()
// used to re-derive all three from the raw instruction words. ProgramImage
// splits that shared immutable half out of the per-instance mutable state:
// it is built once (text + data + per-pc decode + BlockMap), held by
// shared_ptr, and every cluster instance of the campaign copies the
// pre-derived caches instead of decoding. Mutation (im_poke, IM fault
// injection) never touches the image — the owning cluster's private decode
// caches diverge copy-on-write, exactly as before.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "isa/blockmap.hpp"
#include "isa/predecode.hpp"
#include "isa/program.hpp"

namespace ulpmc::isa {

/// Immutable-per-campaign program image: the program plus everything a
/// cluster derives from its text at load time.
class ProgramImage {
public:
    ProgramImage() = default;
    explicit ProgramImage(const Program& prog) { rebuild(prog); }

    /// Re-derives the whole image from `prog` in place, reusing buffer
    /// capacity (a same-size rebuild performs no heap allocation — this is
    /// what keeps the legacy Program-based Cluster::reset() zero-alloc).
    void rebuild(const Program& prog);

    /// Shared-ownership factory for the campaign/sweep pattern: build one
    /// image up front, hand the same shared_ptr to every instance.
    static std::shared_ptr<const ProgramImage> build(const Program& prog) {
        return std::make_shared<const ProgramImage>(prog);
    }

    /// Instruction words, index == program address.
    const std::vector<InstrWord>& text() const { return text_; }

    /// Initialized data image, index == virtual data word address.
    const std::vector<Word>& data() const { return data_; }

    PAddr entry() const { return entry_; }
    std::uint32_t text_size() const { return static_cast<std::uint32_t>(text_.size()); }

    /// Pre-derived decode of text()[pc] (pc must be < text_size()).
    const DecodedInstr& decoded(PAddr pc) const { return decoded_[pc]; }

    /// Pre-built superblock map over text() (trace/batched engines).
    const BlockMap& blockmap() const { return blockmap_; }

private:
    std::vector<InstrWord> text_;
    std::vector<Word> data_;
    PAddr entry_ = 0;
    std::vector<DecodedInstr> decoded_; ///< index == program address
    BlockMap blockmap_;
};

} // namespace ulpmc::isa
