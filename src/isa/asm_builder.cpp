#include "isa/asm_builder.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "isa/encoding.hpp"

namespace ulpmc::isa {

void AsmBuilder::label(const std::string& name) {
    ULPMC_EXPECTS(!finished_);
    ULPMC_EXPECTS(!prog_.symbol(name).has_value());
    prog_.set_symbol(name, Symbol{Symbol::Space::Text, static_cast<std::uint32_t>(prog_.text.size())});
}

PAddr AsmBuilder::here() const { return narrow<PAddr>(prog_.text.size()); }

void AsmBuilder::emit(const Instruction& in) {
    ULPMC_EXPECTS(!finished_);
    ULPMC_EXPECTS(prog_.text.size() < kImWordsTotal);
    prog_.text.push_back(encode(in));
}

void AsmBuilder::alu(Opcode op, DstOperand dst, SrcOperand a, SrcOperand b) {
    emit(make_alu(op, dst, a, b));
}
void AsmBuilder::add(DstOperand dst, SrcOperand a, SrcOperand b) { alu(Opcode::ADD, dst, a, b); }
void AsmBuilder::sub(DstOperand dst, SrcOperand a, SrcOperand b) { alu(Opcode::SUB, dst, a, b); }
void AsmBuilder::sft(DstOperand dst, SrcOperand a, SrcOperand b) { alu(Opcode::SFT, dst, a, b); }
void AsmBuilder::and_(DstOperand dst, SrcOperand a, SrcOperand b) { alu(Opcode::AND, dst, a, b); }
void AsmBuilder::or_(DstOperand dst, SrcOperand a, SrcOperand b) { alu(Opcode::OR, dst, a, b); }
void AsmBuilder::xor_(DstOperand dst, SrcOperand a, SrcOperand b) { alu(Opcode::XOR, dst, a, b); }
void AsmBuilder::mull(DstOperand dst, SrcOperand a, SrcOperand b) { alu(Opcode::MULL, dst, a, b); }
void AsmBuilder::mulh(DstOperand dst, SrcOperand a, SrcOperand b) { alu(Opcode::MULH, dst, a, b); }
void AsmBuilder::mov(DstOperand dst, SrcOperand src, int off) { emit(make_mov(dst, src, off)); }
void AsmBuilder::movi(unsigned rd, Word imm) { emit(make_movi(rd, imm)); }

void AsmBuilder::movi_data(unsigned rd, const std::string& data_symbol) {
    fixups_.push_back({FixKind::MoviData, prog_.text.size(), data_symbol});
    emit(make_movi(rd, 0));
}

void AsmBuilder::movi_text(unsigned rd, const std::string& text_label) {
    fixups_.push_back({FixKind::MoviText, prog_.text.size(), text_label});
    emit(make_movi(rd, 0));
}

void AsmBuilder::movi_symbol_any(unsigned rd, const std::string& symbol) {
    fixups_.push_back({FixKind::MoviAny, prog_.text.size(), symbol});
    emit(make_movi(rd, 0));
}

void AsmBuilder::bra(Cond c, const std::string& text_label) {
    fixups_.push_back({FixKind::BraRel, prog_.text.size(), text_label});
    emit(make_bra(c, BraMode::Rel, 0));
}

void AsmBuilder::bra_reg(Cond c, unsigned reg) {
    emit(make_bra(c, BraMode::RegInd, static_cast<std::int32_t>(reg)));
}

void AsmBuilder::jal(unsigned link, const std::string& text_label) {
    fixups_.push_back({FixKind::JalAbs, prog_.text.size(), text_label});
    emit(make_jal(link, BraMode::Abs, 0));
}

void AsmBuilder::ret(unsigned link_reg) { bra_reg(Cond::AL, link_reg); }

void AsmBuilder::hlt() { emit(make_hlt()); }
void AsmBuilder::nop() { emit(make_nop()); }

void AsmBuilder::data_label(const std::string& name) {
    ULPMC_EXPECTS(!finished_);
    ULPMC_EXPECTS(!prog_.symbol(name).has_value());
    prog_.set_symbol(name, Symbol{Symbol::Space::Data, static_cast<std::uint32_t>(prog_.data.size())});
}

Addr AsmBuilder::data_here() const { return narrow<Addr>(prog_.data.size()); }

void AsmBuilder::word(Word w) {
    ULPMC_EXPECTS(!finished_);
    ULPMC_EXPECTS(prog_.data.size() < kDmWordsTotal);
    prog_.data.push_back(w);
}

void AsmBuilder::words(std::span<const Word> ws) {
    for (const Word w : ws) word(w);
}

void AsmBuilder::space(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) word(0);
}

void AsmBuilder::align_data(std::size_t n) {
    ULPMC_EXPECTS(n > 0);
    while (prog_.data.size() % n != 0) word(0);
}

Program AsmBuilder::finish() {
    ULPMC_EXPECTS(!finished_);
    for (const Fixup& f : fixups_) {
        const auto sym = prog_.symbol(f.symbol);
        ULPMC_EXPECTS(sym.has_value()); // undefined label is a kernel bug

        auto patched = decode(prog_.text.at(f.text_index));
        ULPMC_ASSERT(patched.has_value());
        switch (f.kind) {
        case FixKind::BraRel:
            ULPMC_EXPECTS(sym->space == Symbol::Space::Text);
            patched->target =
                static_cast<std::int32_t>(sym->value) - static_cast<std::int32_t>(f.text_index);
            break;
        case FixKind::JalAbs:
            ULPMC_EXPECTS(sym->space == Symbol::Space::Text);
            patched->target = static_cast<std::int32_t>(sym->value);
            break;
        case FixKind::MoviData:
            ULPMC_EXPECTS(sym->space == Symbol::Space::Data);
            patched->imm16 = narrow<Word>(sym->value);
            break;
        case FixKind::MoviText:
            ULPMC_EXPECTS(sym->space == Symbol::Space::Text);
            patched->imm16 = narrow<Word>(sym->value);
            break;
        case FixKind::MoviAny:
            patched->imm16 = narrow<Word>(sym->value);
            break;
        }
        prog_.text.at(f.text_index) = encode(*patched);
    }
    fixups_.clear();
    finished_ = true;
    return std::move(prog_);
}

} // namespace ulpmc::isa
