// A linked TamaRISC program image: text (24-bit instruction words), an
// optional initialized data image (16-bit words) and a symbol table.
// Placement into physical IM/DM banks is the cluster loader's job
// (src/cluster/loader.*): the same Program runs on every architecture
// variant, exactly as the paper requires ("a single instance of a compiled
// application executed by all the cores").
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ulpmc::isa {

/// One named address (label) in text or data space.
struct Symbol {
    enum class Space { Text, Data };
    Space space = Space::Text;
    std::uint32_t value = 0;
};

/// A complete program image.
class Program {
public:
    /// Instruction words, index == program address of the instruction.
    std::vector<InstrWord> text;

    /// Initialized data image. Index == *virtual* data word address as seen
    /// by the program before MMU translation.
    std::vector<Word> data;

    /// Entry point (program address of the first executed instruction).
    PAddr entry = 0;

    /// Adds/overwrites a symbol.
    void set_symbol(const std::string& name, Symbol s);

    /// Looks up a symbol by name.
    std::optional<Symbol> symbol(const std::string& name) const;

    /// Address of a data symbol; contract violation if absent/wrong space.
    Addr data_addr(const std::string& name) const;

    /// Address of a text symbol; contract violation if absent/wrong space.
    PAddr text_addr(const std::string& name) const;

    /// All symbols (for listings and tests).
    const std::map<std::string, Symbol>& symbols() const { return symbols_; }

    /// Program footprint in bytes, as the paper counts it (3 B/instruction).
    std::size_t text_bytes() const { return text.size() * kInstrBytes; }

    /// Data footprint in bytes (2 B/word).
    std::size_t data_bytes() const { return data.size() * 2; }

private:
    std::map<std::string, Symbol> symbols_;
};

} // namespace ulpmc::isa
