#include "isa/program_image.hpp"

namespace ulpmc::isa {

void ProgramImage::rebuild(const Program& prog) {
    text_.assign(prog.text.begin(), prog.text.end());
    data_.assign(prog.data.begin(), prog.data.end());
    entry_ = prog.entry;
    decoded_.resize(text_.size());
    for (std::size_t pc = 0; pc < text_.size(); ++pc)
        fill_entry(decoded_[pc], text_[pc]);
    blockmap_.rebuild(text_);
}

} // namespace ulpmc::isa
