// Binary program-image format ("UPMC" format): a compact container for
// linked TamaRISC programs, so firmware images can be stored, shipped and
// reloaded without re-assembling — the artifact a sensor-node flashing
// flow would consume.
//
// Layout (all little-endian):
//   magic   "UPMC"              4 B
//   version u16                 2 B
//   entry   u16                 2 B
//   text    u32 count, then count x 3 B (24-bit words)
//   data    u32 count, then count x 2 B
//   symbols u32 count, then per symbol:
//             u8 space | u32 value | u16 name length | name bytes
//   crc32   u32 over everything before it
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace ulpmc::isa {

inline constexpr std::uint16_t kBinFormatVersion = 1;

/// Serializes a program image.
std::vector<std::uint8_t> save_program(const Program& p);

/// Parses a program image. Returns std::nullopt and an explanation via
/// `error` for malformed input (bad magic/version/bounds/CRC).
std::optional<Program> load_program(const std::vector<std::uint8_t>& bytes, std::string& error);

/// Convenience overload swallowing the error text.
std::optional<Program> load_program(const std::vector<std::uint8_t>& bytes);

/// The CRC-32 (IEEE 802.3, reflected) used by the container.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

} // namespace ulpmc::isa
