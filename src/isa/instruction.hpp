// TamaRISC instruction model.
//
// The DATE'12 paper fixes the ISA's envelope — 24-bit single-word
// instructions, 16 registers, 11 instructions (8 ALU + 2 program flow +
// 1 data move), three-operand ALU ops with identical addressing-mode
// options, register-direct / register-indirect (pre/post inc/dec) /
// register-indirect-with-offset addressing, branches in direct, register
// indirect and offset mode with 15 condition modes — but not the bit-level
// encoding. This header documents our reconstruction (see DESIGN.md §3).
//
// Encoding layout (24 bits):
//   ALU/MOV : [23:20] opcode | [19:18] dst mode | [17:14] dst reg
//             | [13:11] srcA mode | [10:7] srcA reg/imm4
//             | [6:4] srcB mode | [3:0] srcB reg/imm4   (ALU)
//             | [6:0] signed 7-bit offset               (MOV)
//   MOVI    : [23:20] opcode | [19:16] rd | [15:0] imm16
//   BRA     : [23:20] opcode | [19:16] cond | [15:14] mode | [13:0] target
//   JAL     : [23:20] opcode | [19:16] link | [15:14] mode | [13:0] target
//
// Hardware port budget (paper §III-A): one instruction fetch, one data
// read, one data write per cycle. Hence at most ONE source operand of any
// instruction may be a memory mode; the destination may independently be a
// memory mode. `validate()` enforces this.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"

namespace ulpmc::isa {

/// The 11 TamaRISC instructions. MOVI is an encoding form of MOV (both are
/// the paper's single "general data-move instruction").
enum class Opcode : std::uint8_t {
    ADD = 0,  ///< dst = srcA + srcB; sets CZNV
    SUB = 1,  ///< dst = srcA - srcB; C = no-borrow; sets CZNV
    SFT = 2,  ///< shift: amount > 0 left logical, < 0 arithmetic right
    AND = 3,  ///< bitwise and; sets ZN, clears CV
    OR = 4,   ///< bitwise or; sets ZN, clears CV
    XOR = 5,  ///< bitwise xor; sets ZN, clears CV
    MULL = 6, ///< low 16 bits of 16x16 product; sets ZN, clears CV
    MULH = 7, ///< high 16 bits of signed 16x16 product; sets ZN, clears CV
    BRA = 8,  ///< conditional branch (15 condition modes + always)
    JAL = 9,  ///< jump and link (subroutine call)
    MOV = 10, ///< data move with full addressing incl. indirect+offset
    MOVI = 11 ///< MOV encoding form carrying a 16-bit immediate
};

/// True for the eight ALU opcodes.
constexpr bool is_alu(Opcode op) { return static_cast<std::uint8_t>(op) <= 7; }

/// Source-operand addressing modes (3 bits).
enum class SrcMode : std::uint8_t {
    Reg = 0,        ///< Rn
    Ind = 1,        ///< @Rn
    IndPostInc = 2, ///< @Rn+  (use, then Rn += 1)
    IndPostDec = 3, ///< @Rn-  (use, then Rn -= 1)
    IndPreInc = 4,  ///< @+Rn  (Rn += 1, then use)
    IndPreDec = 5,  ///< @-Rn  (Rn -= 1, then use)
    Imm4 = 6,       ///< 4-bit inline immediate (unsigned; signed for SFT)
    IndOff = 7      ///< @Rn+off (MOV only; offset from the MOV offset field)
};

/// Destination-operand addressing modes (2 bits).
enum class DstMode : std::uint8_t {
    Reg = 0,        ///< Rn
    Ind = 1,        ///< @Rn
    IndPostInc = 2, ///< @Rn+
    IndOff = 3      ///< @Rn+off (MOV only)
};

/// Branch condition modes: ALWAYS plus the paper's 15 condition modes,
/// evaluated on the C/Z/N/V status flags.
enum class Cond : std::uint8_t {
    AL = 0,  ///< always
    EQ = 1,  ///< Z
    NE = 2,  ///< !Z
    CS = 3,  ///< C
    CC = 4,  ///< !C
    MI = 5,  ///< N
    PL = 6,  ///< !N
    VS = 7,  ///< V
    VC = 8,  ///< !V
    HI = 9,  ///< C && !Z (unsigned >)
    LS = 10, ///< !C || Z (unsigned <=)
    GE = 11, ///< N == V (signed >=)
    LT = 12, ///< N != V (signed <)
    GT = 13, ///< !Z && N == V (signed >)
    LE = 14, ///< Z || N != V (signed <=)
    NV = 15  ///< never (canonical NOP predicate)
};

/// Branch / jump target modes (paper: "direct and register indirect mode,
/// as well as by an offset").
enum class BraMode : std::uint8_t {
    Rel = 0,   ///< PC-relative signed 14-bit offset
    Abs = 1,   ///< absolute 14-bit instruction address
    RegInd = 2 ///< target instruction address read from a register
};

/// One source operand.
struct SrcOperand {
    SrcMode mode = SrcMode::Reg;
    std::uint8_t reg = 0; ///< register index, or raw imm4 field for Imm4

    friend bool operator==(const SrcOperand&, const SrcOperand&) = default;
};

/// The destination operand.
struct DstOperand {
    DstMode mode = DstMode::Reg;
    std::uint8_t reg = 0;

    friend bool operator==(const DstOperand&, const DstOperand&) = default;
};

/// A fully decoded TamaRISC instruction. Fields not used by the opcode are
/// value-initialized and ignored by encode/execute.
struct Instruction {
    Opcode op = Opcode::ADD;

    DstOperand dst;  ///< ALU, MOV, MOVI (MOVI: register only)
    SrcOperand srca; ///< ALU, MOV
    SrcOperand srcb; ///< ALU only

    std::int8_t moff = 0; ///< MOV: signed 7-bit offset for IndOff operands

    Cond cond = Cond::AL;         ///< BRA
    BraMode bmode = BraMode::Rel; ///< BRA, JAL
    std::int32_t target = 0;      ///< Rel: signed offset; Abs: address
    std::uint8_t treg = 0;        ///< RegInd target register
    std::uint8_t link = 0;        ///< JAL link register

    Word imm16 = 0; ///< MOVI immediate

    friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// True if the operand reads data memory.
constexpr bool reads_memory(const SrcOperand& s) {
    return s.mode != SrcMode::Reg && s.mode != SrcMode::Imm4;
}

/// True if the destination writes data memory.
constexpr bool writes_memory(const DstOperand& d) { return d.mode != DstMode::Reg; }

/// Number of data-memory read accesses the instruction performs (0 or 1).
unsigned data_reads(const Instruction& in);

/// Number of data-memory write accesses the instruction performs (0 or 1).
unsigned data_writes(const Instruction& in);

/// Checks all ISA constraints (port budget, field ranges, mode legality).
/// Returns an explanatory message on failure, std::nullopt when valid.
std::optional<std::string> validate(const Instruction& in);

// ---- Factory helpers (keep call sites short and validated) --------------

SrcOperand sreg(unsigned r);              ///< Rn
SrcOperand sind(unsigned r);              ///< @Rn
SrcOperand spostinc(unsigned r);          ///< @Rn+
SrcOperand spostdec(unsigned r);          ///< @Rn-
SrcOperand spreinc(unsigned r);           ///< @+Rn
SrcOperand spredec(unsigned r);           ///< @-Rn
SrcOperand simm(int v);                   ///< imm4 (0..15, or -8..7 for SFT)
SrcOperand soff(unsigned r);              ///< @Rn+off (MOV)
DstOperand dreg(unsigned r);              ///< Rn
DstOperand dind(unsigned r);              ///< @Rn
DstOperand dpostinc(unsigned r);          ///< @Rn+
DstOperand doff(unsigned r);              ///< @Rn+off (MOV)

Instruction make_alu(Opcode op, DstOperand dst, SrcOperand a, SrcOperand b);
Instruction make_mov(DstOperand dst, SrcOperand src, int off = 0);
Instruction make_movi(unsigned rd, Word imm);
Instruction make_bra(Cond c, BraMode m, std::int32_t target_or_reg);
Instruction make_jal(unsigned link, BraMode m, std::int32_t target_or_reg);
/// Canonical halt: BRA AL to self (offset 0); detected by the core.
Instruction make_hlt();
/// Canonical NOP: BRA NV (never taken).
Instruction make_nop();

} // namespace ulpmc::isa
