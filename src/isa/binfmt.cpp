#include "isa/binfmt.hpp"

#include <array>
#include <cstring>

#include "common/assert.hpp"

namespace ulpmc::isa {

namespace {

constexpr std::array<char, 4> kMagic = {'U', 'P', 'M', 'C'};

class Writer {
public:
    void u8(std::uint8_t v) { out_.push_back(v); }
    void u16(std::uint16_t v) {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }
    void u24(std::uint32_t v) {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
        u8(static_cast<std::uint8_t>(v >> 16));
    }
    void u32(std::uint32_t v) {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }
    void bytes(const void* p, std::size_t n) {
        const auto* b = static_cast<const std::uint8_t*>(p);
        out_.insert(out_.end(), b, b + n);
    }
    std::vector<std::uint8_t> take() { return std::move(out_); }
    const std::vector<std::uint8_t>& view() const { return out_; }

private:
    std::vector<std::uint8_t> out_;
};

class Reader {
public:
    Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

    bool u8(std::uint8_t& v) {
        if (pos_ >= bytes_.size()) return false;
        v = bytes_[pos_++];
        return true;
    }
    bool u16(std::uint16_t& v) {
        std::uint8_t a = 0;
        std::uint8_t b = 0;
        if (!u8(a) || !u8(b)) return false;
        v = static_cast<std::uint16_t>(a | (b << 8));
        return true;
    }
    bool u24(std::uint32_t& v) {
        std::uint8_t a = 0;
        std::uint8_t b = 0;
        std::uint8_t c = 0;
        if (!u8(a) || !u8(b) || !u8(c)) return false;
        v = static_cast<std::uint32_t>(a) | (static_cast<std::uint32_t>(b) << 8) |
            (static_cast<std::uint32_t>(c) << 16);
        return true;
    }
    bool u32(std::uint32_t& v) {
        std::uint16_t a = 0;
        std::uint16_t b = 0;
        if (!u16(a) || !u16(b)) return false;
        v = static_cast<std::uint32_t>(a) | (static_cast<std::uint32_t>(b) << 16);
        return true;
    }
    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return bytes_.size() - pos_; }

private:
    const std::vector<std::uint8_t>& bytes_;
    std::size_t pos_ = 0;
};

} // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
    // Bitwise reflected CRC-32 (polynomial 0xEDB88320); table-free keeps
    // the implementation obviously correct for the sizes involved here.
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i) {
        crc ^= data[i];
        for (int b = 0; b < 8; ++b) crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
    return ~crc;
}

std::vector<std::uint8_t> save_program(const Program& p) {
    Writer w;
    w.bytes(kMagic.data(), kMagic.size());
    w.u16(kBinFormatVersion);
    w.u16(p.entry);

    w.u32(static_cast<std::uint32_t>(p.text.size()));
    for (const InstrWord i : p.text) w.u24(i & kInstrWordMask);

    w.u32(static_cast<std::uint32_t>(p.data.size()));
    for (const Word d : p.data) w.u16(d);

    w.u32(static_cast<std::uint32_t>(p.symbols().size()));
    for (const auto& [name, sym] : p.symbols()) {
        w.u8(sym.space == Symbol::Space::Text ? 0 : 1);
        w.u32(sym.value);
        ULPMC_EXPECTS(name.size() <= 0xFFFF);
        w.u16(static_cast<std::uint16_t>(name.size()));
        w.bytes(name.data(), name.size());
    }

    const std::uint32_t crc = crc32(w.view().data(), w.view().size());
    w.u32(crc);
    return w.take();
}

std::optional<Program> load_program(const std::vector<std::uint8_t>& bytes, std::string& error) {
    if (bytes.size() < kMagic.size() + 2 + 2 + 4) {
        error = "image too small";
        return std::nullopt;
    }
    if (std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0) {
        error = "bad magic";
        return std::nullopt;
    }
    const std::size_t body = bytes.size() - 4;
    std::uint32_t stored_crc = 0;
    {
        // Absolute read of the trailing CRC.
        stored_crc = static_cast<std::uint32_t>(bytes[body]) |
                     (static_cast<std::uint32_t>(bytes[body + 1]) << 8) |
                     (static_cast<std::uint32_t>(bytes[body + 2]) << 16) |
                     (static_cast<std::uint32_t>(bytes[body + 3]) << 24);
    }
    if (crc32(bytes.data(), body) != stored_crc) {
        error = "CRC mismatch (corrupted image)";
        return std::nullopt;
    }

    Reader r(bytes);
    std::uint32_t skip = 0;
    r.u32(skip); // magic, already checked
    std::uint16_t version = 0;
    std::uint16_t entry = 0;
    if (!r.u16(version) || version != kBinFormatVersion) {
        error = "unsupported version";
        return std::nullopt;
    }
    r.u16(entry);

    Program p;
    p.entry = entry;

    std::uint32_t n = 0;
    if (!r.u32(n) || n > kImWordsTotal) {
        error = "bad text size";
        return std::nullopt;
    }
    p.text.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t word = 0;
        if (!r.u24(word)) {
            error = "truncated text";
            return std::nullopt;
        }
        p.text.push_back(word);
    }

    if (!r.u32(n) || n > kDmWordsTotal) {
        error = "bad data size";
        return std::nullopt;
    }
    p.data.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint16_t word = 0;
        if (!r.u16(word)) {
            error = "truncated data";
            return std::nullopt;
        }
        p.data.push_back(word);
    }

    if (!r.u32(n) || n > 100'000) {
        error = "bad symbol count";
        return std::nullopt;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint8_t space = 0;
        std::uint32_t value = 0;
        std::uint16_t len = 0;
        if (!r.u8(space) || space > 1 || !r.u32(value) || !r.u16(len) || r.remaining() < len + 4u) {
            error = "truncated symbol table";
            return std::nullopt;
        }
        std::string name(reinterpret_cast<const char*>(bytes.data() + r.pos()), len);
        for (std::uint16_t k = 0; k < len; ++k) {
            std::uint8_t ignored = 0;
            r.u8(ignored);
        }
        if (name.empty()) {
            error = "empty symbol name";
            return std::nullopt;
        }
        p.set_symbol(name, Symbol{space == 0 ? Symbol::Space::Text : Symbol::Space::Data, value});
    }

    if (r.remaining() != 4) {
        error = "trailing garbage";
        return std::nullopt;
    }
    if (p.entry != 0 && p.entry >= p.text.size()) {
        error = "entry point outside text";
        return std::nullopt;
    }
    return p;
}

std::optional<Program> load_program(const std::vector<std::uint8_t>& bytes) {
    std::string ignored;
    return load_program(bytes, ignored);
}

} // namespace ulpmc::isa
