// 24-bit binary encoding/decoding of TamaRISC instructions.
//
// The encoding is regular and fixed-position (a design point the paper
// stresses for cheap decode): the opcode always sits in [23:20] and
// operand fields at fixed offsets. encode() accepts only valid
// instructions; decode() reports malformed words so the core can raise an
// illegal-instruction trap.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace ulpmc::isa {

/// Encodes a validated instruction into a 24-bit word.
/// Precondition: validate(in) == nullopt.
InstrWord encode(const Instruction& in);

/// Decodes a 24-bit word. Returns std::nullopt for illegal encodings
/// (reserved opcodes, out-of-range modes); the core turns that into a trap.
std::optional<Instruction> decode(InstrWord w);

/// Like decode() but also reports why the word is illegal (for tools).
std::optional<Instruction> decode(InstrWord w, std::string& error);

} // namespace ulpmc::isa
