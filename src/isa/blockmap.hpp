// Basic-block / superblock map over a program's text image, feeding the
// trace-compiled execution engine (DESIGN.md §10). Block boundaries sit at
// branches (BRA/JAL terminate a block) and at static branch targets (a
// Rel/Abs target starts a new block, so a backward branch into a loop body
// lands on a block leader). Register-indirect branch targets are dynamic
// and cannot split blocks statically; entering a block mid-way (only
// possible through such a branch) is handled by the suffix query
// `run_from(pc)` instead.
//
// Each block carries the memo the trace engine replays instead of
// re-simulating cycle by cycle: instruction count and the DM-access
// footprint (loads/stores/mem_free), plus `memo_ok` — true when every word
// in the block decodes and claims at most one DM port, the precondition
// for the block's bank-conflict signature to be provably conflict-free
// with a single active core. Orthogonally, a per-pc memo-lane table
// (`memo_lane`) records the longest check-free execute+fetch run starting
// at each pc — memory-free straight-line stretches *inside* blocks that
// also contain loads or stores, which is where DSP-style kernels spend
// most of their cycles.
//
// The map is rebuilt wholesale whenever the text image changes (im_poke /
// IM fault injection): block boundaries are a global property of the text
// — a patched word can create or delete leaders anywhere — and pokes are
// orders of magnitude rarer than fetches, so per-word incremental
// invalidation would buy nothing (the invalidation rule is documented in
// DESIGN.md §10).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "isa/predecode.hpp"

namespace ulpmc::isa {

/// One basic block plus the memoized timing/footprint aggregates.
struct BlockInfo {
    std::uint32_t start = 0;  ///< address of the first instruction
    std::uint32_t len = 0;    ///< instruction count (>= 1)
    std::uint32_t loads = 0;  ///< DM read accesses across the block
    std::uint32_t stores = 0; ///< DM write accesses across the block
    bool mem_free = false;    ///< no instruction touches data memory
    bool memo_ok = false;     ///< every instr decodes and claims <= 1 DM port
};

/// Partition of a text image into basic blocks with O(1) pc lookup.
class BlockMap {
public:
    BlockMap() = default;
    explicit BlockMap(std::span<const InstrWord> text) { rebuild(text); }

    /// Rebuilds the whole map from a new text image. Call after any IM
    /// mutation (poke, injected bit flip) — see the invalidation rule in
    /// the header comment.
    void rebuild(std::span<const InstrWord> text);

    std::uint32_t text_size() const { return static_cast<std::uint32_t>(block_index_.size()); }
    std::size_t block_count() const { return blocks_.size(); }

    const BlockInfo& block(std::size_t idx) const { return blocks_[idx]; }

    /// The block containing `pc` (pc must be < text_size()).
    const BlockInfo& block_at(std::uint32_t pc) const { return blocks_[block_index_[pc]]; }

    /// Number of straight-line, memo-legal instructions from `pc`
    /// (inclusive) to the end of its block; 0 when the block is not
    /// memo-legal. A mid-block `pc` (register-indirect branch target)
    /// yields the suffix run — still straight-line by construction.
    std::uint32_t run_from(std::uint32_t pc) const {
        const BlockInfo& b = blocks_[block_index_[pc]];
        return b.memo_ok ? b.start + b.len - pc : 0;
    }

    /// Memo-lane length when arming at `pc`: the number of fused
    /// execute+fetch cycles that are provably check-free after the word at
    /// `pc` has been fetched. Each lane cycle executes the current
    /// instruction and fetches the next sequential word; the proof is that
    /// every executed instruction is legal, memory-free and non-branching
    /// (so the pc advances by exactly one and an empty MemPlan is correct),
    /// and the final fetched word is in-bounds, legal and memory-free (so
    /// the empty plan left behind stays correct for the generic engine that
    /// resumes after the lane). 0 when `pc` itself is not lane-eligible.
    std::uint32_t memo_lane(std::uint32_t pc) const { return lane_[pc]; }

private:
    std::vector<BlockInfo> blocks_;
    std::vector<std::uint32_t> block_index_; ///< pc -> blocks_ index
    std::vector<std::uint32_t> lane_;        ///< pc -> memo_lane(pc)

    // rebuild() scratch, kept as members so repeated rebuilds (cluster
    // reuse, pokes) run allocation-free once capacity is warm.
    std::vector<DecodedInstr> dec_;
    std::vector<std::uint8_t> leader_;
};

} // namespace ulpmc::isa
