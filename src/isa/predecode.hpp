// Pre-decoded instruction memory: a side array mirroring the IM banks
// with the decode result of every stored 24-bit word, so the simulator's
// fetch path costs an array lookup instead of a bit-field decode on every
// cycle. Decoding happens once when a word is loaded; the array must be
// kept coherent by routing every IM write through refresh() — per-word
// invalidation, so tools and tests that patch IM keep exact semantics.
//
// The cache carries no timing or statistics meaning: it is purely a
// simulator fast path and is cycle-for-cycle equivalent to decoding at
// fetch (guarded by tests/cluster/fastpath_diff_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace ulpmc::isa {

/// The decode of one IM word, plus decode-time metadata the per-cycle
/// engine would otherwise recompute on every fetch.
struct DecodedInstr {
    Instruction instr{}; ///< meaningful only when !illegal
    bool illegal = true; ///< word does not decode to a TamaRISC instruction
    bool has_mem = false; ///< touches data memory (load and/or store)
    bool has_load = false; ///< reads data memory
    bool has_store = false; ///< writes data memory
    bool dual_mem = false; ///< both a load and a store (two DM ports claimed)
    bool is_branch = false; ///< BRA or JAL: ends a basic block
};

/// Decodes `word` into `e` (illegal entry when it does not decode) and
/// fills all decode-time metadata flags.
void fill_entry(DecodedInstr& e, InstrWord word);

/// Side array of decoded instructions for a banked instruction memory.
class PredecodedIm {
public:
    PredecodedIm() = default;

    /// Sizes the array for `banks` banks of `words_per_bank` words each;
    /// every entry starts as the decode of an all-zero word.
    PredecodedIm(unsigned banks, std::size_t words_per_bank);

    /// Re-sizes/re-initializes in place to the freshly-constructed state
    /// of PredecodedIm(banks, words_per_bank), reusing the entry storage
    /// (no heap allocation on a same-geometry reset).
    void reset(unsigned banks, std::size_t words_per_bank);

    unsigned banks() const { return banks_; }
    std::size_t words_per_bank() const { return words_per_bank_; }

    /// Re-decodes the word now stored at (bank, offset). Call after every
    /// poke of the underlying bank cell.
    void refresh(BankId bank, std::uint32_t offset, InstrWord word);

    /// Re-decodes a whole bank image in one pass (loader use).
    void refresh_bank(BankId bank, std::span<const std::uint32_t> cells);

    /// Installs an already-decoded entry at (bank, offset) — the
    /// ProgramImage load path, where the decode was done once per campaign
    /// and each cluster instance only copies it.
    void set_entry(BankId bank, std::uint32_t offset, const DecodedInstr& e) {
        entries_[bank * words_per_bank_ + offset] = e;
    }

    /// The decoded entry at (bank, offset), or nullptr when the stored
    /// word is illegal (the core then traps, exactly as a decode at fetch
    /// would).
    const DecodedInstr* lookup(BankId bank, std::uint32_t offset) const {
        const DecodedInstr& e = entries_[bank * words_per_bank_ + offset];
        return e.illegal ? nullptr : &e;
    }

    /// Raw entry access (tests).
    const DecodedInstr& entry(BankId bank, std::uint32_t offset) const;

private:
    std::vector<DecodedInstr> entries_; ///< flat [bank][offset]
    unsigned banks_ = 0;
    std::size_t words_per_bank_ = 0;
};

} // namespace ulpmc::isa
