// Two-pass text assembler for TamaRISC.
//
// Syntax (one statement per line, ';' starts a comment):
//
//   .text                  switch to the text section (default)
//   .data                  switch to the data section
//   .entry label           set the program entry point
//   .equ name, expr        define an assembly-time constant
//   .word v [, v ...]      emit initialized data words
//   .space n               reserve n zero words
//   .align n               align the data cursor to n words
//   label:                 define a label in the current section
//
//   add  rD, srcA, srcB    (also sub/sft/and/or/xor/mull/mulh)
//   mov  dst, src          data move, incl. "@rN+imm" offset operands
//   movi rD, imm16|symbol  load 16-bit immediate or symbol address
//   bra  [cond,] target    target: label (relative), =expr (absolute),
//                          @rN (register indirect); cond defaults to al
//   jal  rL, label         call (absolute)
//   ret  rL                return (bra al, @rL)
//   hlt / nop
//
//   operands:  rN | @rN | @rN+ | @rN- | @+rN | @-rN | @rN+imm | #imm
//   numbers:   decimal, 0x hex, 0b binary, optionally negative
//
// Errors are reported with line numbers via AssemblyError.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace ulpmc::isa {

/// Reported for any syntactic or semantic error in the source.
class AssemblyError : public std::runtime_error {
public:
    AssemblyError(unsigned line, const std::string& message)
        : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}

    unsigned line() const { return line_; }

private:
    unsigned line_;
};

/// Assembles a complete source text into a Program.
/// Throws AssemblyError on the first error.
Program assemble(std::string_view source);

} // namespace ulpmc::isa
