// Program listing generation: the assembler's human-facing output
// (addresses, encodings, disassembly, interleaved labels, symbol table),
// shared by ulpmc-asm, asm_explorer and the tests.
#pragma once

#include <string>

#include "isa/program.hpp"

namespace ulpmc::isa {

/// Options for format_listing.
struct ListingOptions {
    bool with_symbols = true; ///< append the symbol table
    bool with_data = false;   ///< append a data-section hex dump
};

/// Renders a full listing of `p`.
std::string format_listing(const Program& p, const ListingOptions& opt = {});

} // namespace ulpmc::isa
