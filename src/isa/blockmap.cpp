#include "isa/blockmap.hpp"

#include "isa/predecode.hpp"

namespace ulpmc::isa {

void BlockMap::rebuild(std::span<const InstrWord> text) {
    const auto n = static_cast<std::uint32_t>(text.size());
    blocks_.clear();
    block_index_.assign(n, 0);
    lane_.clear();
    if (n == 0) return;

    // Pass 1: decode every word once and mark block leaders.
    auto& dec = dec_;
    auto& leader = leader_;
    dec.assign(n, {});
    leader.assign(n, 0);
    leader[0] = 1;
    for (std::uint32_t i = 0; i < n; ++i) {
        fill_entry(dec[i], text[i]);
        if (dec[i].illegal || !dec[i].is_branch) continue;
        // The instruction after a branch starts a block (fall-through of a
        // conditional, or dead code after an unconditional — either way a
        // potential entry point).
        if (i + 1 < n) leader[i + 1] = 1;
        // A static target starts a block. RegInd targets are dynamic; a
        // jump into the middle of a block through one is served by the
        // suffix query run_from() instead of a static split.
        const Instruction& in = dec[i].instr;
        std::int64_t target = -1;
        if (in.bmode == BraMode::Rel) {
            target = static_cast<std::int64_t>(i) + in.target;
        } else if (in.bmode == BraMode::Abs) {
            target = in.target;
        }
        if (target >= 0 && target < n) leader[static_cast<std::uint32_t>(target)] = 1;
    }

    // Pass 1b: memo-lane lengths, computed backwards. `run` counts the
    // consecutive legal, memory-free, non-branch instructions starting at
    // i; the lane may execute the whole run when the word after it is a
    // fetch-safe terminator (legal and memory-free — necessarily a branch,
    // as anything else would extend the run), and must stop one short
    // otherwise so the last *fetched* word still lies inside the run.
    lane_.assign(n, 0);
    std::uint32_t run = 0;
    for (std::uint32_t i = n; i-- > 0;) {
        const DecodedInstr& d = dec[i];
        run = (!d.illegal && !d.has_mem && !d.is_branch) ? run + 1 : 0;
        if (run == 0) continue;
        const std::uint32_t end = i + run;
        const bool term_ok = end < n && !dec[end].illegal && !dec[end].has_mem;
        lane_[i] = term_ok ? run : run - 1;
    }

    // Pass 2: emit one block per leader run and aggregate the memo.
    for (std::uint32_t start = 0; start < n;) {
        BlockInfo b;
        b.start = start;
        b.mem_free = true;
        b.memo_ok = true;
        std::uint32_t i = start;
        for (; i < n; ++i) {
            if (i != start && leader[i]) break; // next block begins
            const DecodedInstr& d = dec[i];
            if (d.illegal || d.dual_mem) b.memo_ok = false;
            if (d.has_mem) b.mem_free = false;
            if (d.has_load) ++b.loads;
            if (d.has_store) ++b.stores;
            block_index_[i] = static_cast<std::uint32_t>(blocks_.size());
            if (!d.illegal && d.is_branch) {
                ++i; // the branch terminates its block (inclusive)
                break;
            }
        }
        b.len = i - start;
        blocks_.push_back(b);
        start = i;
    }
}

} // namespace ulpmc::isa
