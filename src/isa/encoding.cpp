#include "isa/encoding.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace ulpmc::isa {

namespace {

constexpr unsigned kOpcodeLo = 20;
constexpr unsigned kDstModeLo = 18;
constexpr unsigned kDstRegLo = 14;
constexpr unsigned kSrcAModeLo = 11;
constexpr unsigned kSrcARegLo = 7;
constexpr unsigned kSrcBModeLo = 4;
constexpr unsigned kSrcBRegLo = 0;
constexpr unsigned kCondLo = 16;
constexpr unsigned kBModeLo = 14;

InstrWord encode_src(InstrWord w, const SrcOperand& s, unsigned mode_lo, unsigned reg_lo) {
    w = insert_bits(w, mode_lo, 3, static_cast<std::uint32_t>(s.mode));
    w = insert_bits(w, reg_lo, 4, s.reg);
    return w;
}

SrcOperand decode_src(InstrWord w, unsigned mode_lo, unsigned reg_lo) {
    SrcOperand s;
    s.mode = static_cast<SrcMode>(bits(w, mode_lo, 3));
    s.reg = static_cast<std::uint8_t>(bits(w, reg_lo, 4));
    return s;
}

} // namespace

InstrWord encode(const Instruction& in) {
    ULPMC_EXPECTS(!validate(in));
    InstrWord w = 0;
    w = insert_bits(w, kOpcodeLo, 4, static_cast<std::uint32_t>(in.op));
    switch (in.op) {
    case Opcode::ADD:
    case Opcode::SUB:
    case Opcode::SFT:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::MULL:
    case Opcode::MULH:
        w = insert_bits(w, kDstModeLo, 2, static_cast<std::uint32_t>(in.dst.mode));
        w = insert_bits(w, kDstRegLo, 4, in.dst.reg);
        w = encode_src(w, in.srca, kSrcAModeLo, kSrcARegLo);
        w = encode_src(w, in.srcb, kSrcBModeLo, kSrcBRegLo);
        break;
    case Opcode::MOV:
        w = insert_bits(w, kDstModeLo, 2, static_cast<std::uint32_t>(in.dst.mode));
        w = insert_bits(w, kDstRegLo, 4, in.dst.reg);
        w = encode_src(w, in.srca, kSrcAModeLo, kSrcARegLo);
        w = insert_bits(w, 0, 7, static_cast<std::uint32_t>(in.moff) & 0x7Fu);
        break;
    case Opcode::MOVI:
        w = insert_bits(w, 16, 4, in.dst.reg);
        w = insert_bits(w, 0, 16, in.imm16);
        break;
    case Opcode::BRA:
    case Opcode::JAL:
        w = insert_bits(w, kCondLo, 4,
                        in.op == Opcode::BRA ? static_cast<std::uint32_t>(in.cond)
                                             : static_cast<std::uint32_t>(in.link));
        w = insert_bits(w, kBModeLo, 2, static_cast<std::uint32_t>(in.bmode));
        if (in.bmode == BraMode::RegInd) {
            w = insert_bits(w, 0, 4, in.treg);
        } else {
            w = insert_bits(w, 0, 14, static_cast<std::uint32_t>(in.target) & 0x3FFFu);
        }
        break;
    }
    ULPMC_ENSURES((w & ~kInstrWordMask) == 0);
    return w;
}

std::optional<Instruction> decode(InstrWord w) {
    std::string ignored;
    return decode(w, ignored);
}

std::optional<Instruction> decode(InstrWord w, std::string& error) {
    if ((w & ~kInstrWordMask) != 0) {
        error = "instruction word exceeds 24 bits";
        return std::nullopt;
    }
    const std::uint32_t opfield = bits(w, kOpcodeLo, 4);
    if (opfield > static_cast<std::uint32_t>(Opcode::MOVI)) {
        error = "reserved opcode " + std::to_string(opfield);
        return std::nullopt;
    }

    Instruction in;
    in.op = static_cast<Opcode>(opfield);
    switch (in.op) {
    case Opcode::ADD:
    case Opcode::SUB:
    case Opcode::SFT:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::MULL:
    case Opcode::MULH:
        in.dst.mode = static_cast<DstMode>(bits(w, kDstModeLo, 2));
        in.dst.reg = static_cast<std::uint8_t>(bits(w, kDstRegLo, 4));
        in.srca = decode_src(w, kSrcAModeLo, kSrcARegLo);
        in.srcb = decode_src(w, kSrcBModeLo, kSrcBRegLo);
        break;
    case Opcode::MOV:
        in.dst.mode = static_cast<DstMode>(bits(w, kDstModeLo, 2));
        in.dst.reg = static_cast<std::uint8_t>(bits(w, kDstRegLo, 4));
        in.srca = decode_src(w, kSrcAModeLo, kSrcARegLo);
        in.moff = static_cast<std::int8_t>(sign_extend(bits(w, 0, 7), 7));
        break;
    case Opcode::MOVI:
        in.dst = dreg(bits(w, 16, 4));
        in.imm16 = static_cast<Word>(bits(w, 0, 16));
        break;
    case Opcode::BRA:
    case Opcode::JAL: {
        const std::uint32_t aux = bits(w, kCondLo, 4);
        if (in.op == Opcode::BRA) {
            in.cond = static_cast<Cond>(aux);
        } else {
            in.link = static_cast<std::uint8_t>(aux);
        }
        const std::uint32_t bm = bits(w, kBModeLo, 2);
        if (bm > static_cast<std::uint32_t>(BraMode::RegInd)) {
            error = "reserved branch mode";
            return std::nullopt;
        }
        in.bmode = static_cast<BraMode>(bm);
        if (in.bmode == BraMode::RegInd) {
            if (bits(w, 4, 10) != 0) {
                // Strict decoding: don't-care bits must be zero so the
                // 24-bit encoding stays a bijection (tested exhaustively).
                error = "nonzero padding in register-indirect branch";
                return std::nullopt;
            }
            in.treg = static_cast<std::uint8_t>(bits(w, 0, 4));
        } else if (in.bmode == BraMode::Rel) {
            in.target = sign_extend(bits(w, 0, 14), 14);
        } else {
            in.target = static_cast<std::int32_t>(bits(w, 0, 14));
        }
        break;
    }
    }

    if (auto e = validate(in)) {
        error = *e;
        return std::nullopt;
    }
    return in;
}

} // namespace ulpmc::isa
