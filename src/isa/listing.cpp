#include "isa/listing.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "isa/disassembler.hpp"

namespace ulpmc::isa {

std::string format_listing(const Program& p, const ListingOptions& opt) {
    std::ostringstream os;
    char buf[128];

    std::snprintf(buf, sizeof buf, "; %zu instructions (%zu bytes), %zu data words, entry %u\n",
                  p.text.size(), p.text_bytes(), p.data.size(), p.entry);
    os << buf;

    // Labels per text address.
    std::multimap<std::uint32_t, std::string> text_labels;
    for (const auto& [name, sym] : p.symbols())
        if (sym.space == Symbol::Space::Text) text_labels.emplace(sym.value, name);

    for (std::size_t pc = 0; pc < p.text.size(); ++pc) {
        for (auto [it, end] = text_labels.equal_range(static_cast<std::uint32_t>(pc)); it != end;
             ++it)
            os << it->second << ":\n";
        std::snprintf(buf, sizeof buf, "  %04zu  %06X  %s\n", pc, p.text[pc],
                      disassemble_word(p.text[pc], static_cast<PAddr>(pc)).c_str());
        os << buf;
    }

    if (opt.with_symbols && !p.symbols().empty()) {
        os << "\n; symbols\n";
        for (const auto& [name, sym] : p.symbols()) {
            std::snprintf(buf, sizeof buf, ";   %-24s %5u  (%s)\n", name.c_str(), sym.value,
                          sym.space == Symbol::Space::Text ? "text" : "data");
            os << buf;
        }
    }

    if (opt.with_data && !p.data.empty()) {
        os << "\n; data (hex words)\n";
        for (std::size_t i = 0; i < p.data.size(); i += 8) {
            std::snprintf(buf, sizeof buf, ";   %04zu:", i);
            os << buf;
            for (std::size_t j = i; j < std::min(i + 8, p.data.size()); ++j) {
                std::snprintf(buf, sizeof buf, " %04X", p.data[j]);
                os << buf;
            }
            os << '\n';
        }
    }
    return os.str();
}

} // namespace ulpmc::isa
