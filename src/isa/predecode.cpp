#include "isa/predecode.hpp"

#include "common/assert.hpp"
#include "isa/encoding.hpp"

namespace ulpmc::isa {

PredecodedIm::PredecodedIm(unsigned banks, std::size_t words_per_bank)
    : entries_(static_cast<std::size_t>(banks) * words_per_bank), banks_(banks),
      words_per_bank_(words_per_bank) {
    ULPMC_EXPECTS(banks > 0);
    ULPMC_EXPECTS(words_per_bank > 0);
    // An IM bank powers up all-zero; decode that image once so lookups are
    // valid even for never-written words (fetching them behaves exactly
    // like decoding the zero word at fetch time).
    DecodedInstr zero;
    fill_entry(zero, 0);
    for (auto& e : entries_) e = zero;
}

void PredecodedIm::reset(unsigned banks, std::size_t words_per_bank) {
    ULPMC_EXPECTS(banks > 0);
    ULPMC_EXPECTS(words_per_bank > 0);
    banks_ = banks;
    words_per_bank_ = words_per_bank;
    DecodedInstr zero;
    fill_entry(zero, 0);
    entries_.assign(static_cast<std::size_t>(banks) * words_per_bank, zero);
}

void fill_entry(DecodedInstr& e, InstrWord word) {
    if (const auto d = decode(word)) {
        e.instr = *d;
        e.illegal = false;
        e.has_load = data_reads(*d) > 0;
        e.has_store = data_writes(*d) > 0;
        e.has_mem = e.has_load || e.has_store;
        e.dual_mem = e.has_load && e.has_store;
        e.is_branch = d->op == Opcode::BRA || d->op == Opcode::JAL;
    } else {
        e = DecodedInstr{};
    }
}

void PredecodedIm::refresh(BankId bank, std::uint32_t offset, InstrWord word) {
    ULPMC_EXPECTS(bank < banks_);
    ULPMC_EXPECTS(offset < words_per_bank_);
    fill_entry(entries_[bank * words_per_bank_ + offset], word);
}

void PredecodedIm::refresh_bank(BankId bank, std::span<const std::uint32_t> cells) {
    ULPMC_EXPECTS(bank < banks_);
    ULPMC_EXPECTS(cells.size() <= words_per_bank_);
    for (std::uint32_t i = 0; i < cells.size(); ++i)
        refresh(bank, i, static_cast<InstrWord>(cells[i]));
}

const DecodedInstr& PredecodedIm::entry(BankId bank, std::uint32_t offset) const {
    ULPMC_EXPECTS(bank < banks_);
    ULPMC_EXPECTS(offset < words_per_bank_);
    return entries_[bank * words_per_bank_ + offset];
}

} // namespace ulpmc::isa
