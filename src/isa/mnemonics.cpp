#include "isa/mnemonics.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/assert.hpp"

namespace ulpmc::isa {

namespace {

constexpr std::array<std::string_view, 12> kOpcodeNames = {
    "add", "sub", "sft", "and", "or", "xor", "mull", "mulh", "bra", "jal", "mov", "movi"};

constexpr std::array<std::string_view, 16> kCondNames = {"al", "eq", "ne", "cs", "cc", "mi",
                                                         "pl", "vs", "vc", "hi", "ls", "ge",
                                                         "lt", "gt", "le", "nv"};

std::string to_lower(std::string_view sv) {
    std::string s(sv);
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

} // namespace

std::string_view opcode_name(Opcode op) {
    const auto i = static_cast<std::size_t>(op);
    ULPMC_EXPECTS(i < kOpcodeNames.size());
    return kOpcodeNames[i];
}

std::string_view cond_name(Cond c) {
    const auto i = static_cast<std::size_t>(c);
    ULPMC_EXPECTS(i < kCondNames.size());
    return kCondNames[i];
}

std::optional<Opcode> parse_opcode(std::string_view name) {
    const std::string lower = to_lower(name);
    for (std::size_t i = 0; i < kOpcodeNames.size(); ++i) {
        if (lower == kOpcodeNames[i]) return static_cast<Opcode>(i);
    }
    return std::nullopt;
}

std::optional<Cond> parse_cond(std::string_view name) {
    const std::string lower = to_lower(name);
    for (std::size_t i = 0; i < kCondNames.size(); ++i) {
        if (lower == kCondNames[i]) return static_cast<Cond>(i);
    }
    return std::nullopt;
}

std::string src_to_string(const SrcOperand& s, int moff) {
    const std::string r = "r" + std::to_string(s.reg);
    switch (s.mode) {
    case SrcMode::Reg:
        return r;
    case SrcMode::Ind:
        return "@" + r;
    case SrcMode::IndPostInc:
        return "@" + r + "+";
    case SrcMode::IndPostDec:
        return "@" + r + "-";
    case SrcMode::IndPreInc:
        return "@+" + r;
    case SrcMode::IndPreDec:
        return "@-" + r;
    case SrcMode::Imm4:
        return "#" + std::to_string(s.reg);
    case SrcMode::IndOff:
        return "@" + r + (moff >= 0 ? "+" : "") + std::to_string(moff);
    }
    return "?";
}

std::string dst_to_string(const DstOperand& d, int moff) {
    const std::string r = "r" + std::to_string(d.reg);
    switch (d.mode) {
    case DstMode::Reg:
        return r;
    case DstMode::Ind:
        return "@" + r;
    case DstMode::IndPostInc:
        return "@" + r + "+";
    case DstMode::IndOff:
        return "@" + r + (moff >= 0 ? "+" : "") + std::to_string(moff);
    }
    return "?";
}

} // namespace ulpmc::isa
