#include "isa/instruction.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace ulpmc::isa {

unsigned data_reads(const Instruction& in) {
    switch (in.op) {
    case Opcode::MOVI:
    case Opcode::BRA:
    case Opcode::JAL:
        return 0;
    case Opcode::MOV:
        return reads_memory(in.srca) ? 1u : 0u;
    default:
        return (reads_memory(in.srca) ? 1u : 0u) + (reads_memory(in.srcb) ? 1u : 0u);
    }
}

unsigned data_writes(const Instruction& in) {
    switch (in.op) {
    case Opcode::BRA:
    case Opcode::JAL:
        return 0;
    case Opcode::MOVI:
        return 0; // MOVI writes a register only
    default:
        return writes_memory(in.dst) ? 1u : 0u;
    }
}

namespace {

std::optional<std::string> validate_src(const SrcOperand& s, bool allow_off) {
    if (s.reg >= kNumRegisters) return "source register index out of range";
    if (s.mode == SrcMode::IndOff && !allow_off)
        return "@Rn+off source mode is only available in MOV";
    return std::nullopt;
}

} // namespace

std::optional<std::string> validate(const Instruction& in) {
    switch (in.op) {
    case Opcode::ADD:
    case Opcode::SUB:
    case Opcode::SFT:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::MULL:
    case Opcode::MULH: {
        if (in.dst.reg >= kNumRegisters) return "destination register index out of range";
        if (in.dst.mode == DstMode::IndOff) return "@Rn+off destination is only available in MOV";
        if (auto e = validate_src(in.srca, /*allow_off=*/false)) return e;
        if (auto e = validate_src(in.srcb, /*allow_off=*/false)) return e;
        if (data_reads(in) > 1)
            return "at most one source operand may access memory (single data-read port)";
        return std::nullopt;
    }
    case Opcode::MOV: {
        if (in.dst.reg >= kNumRegisters) return "destination register index out of range";
        if (auto e = validate_src(in.srca, /*allow_off=*/true)) return e;
        const bool src_off = in.srca.mode == SrcMode::IndOff;
        const bool dst_off = in.dst.mode == DstMode::IndOff;
        if (src_off && dst_off) return "only one MOV operand may use the offset mode";
        if (!fits_signed(in.moff, 7)) return "MOV offset out of signed 7-bit range";
        if (!src_off && !dst_off && in.moff != 0)
            return "MOV offset given but no operand uses the offset mode";
        return std::nullopt;
    }
    case Opcode::MOVI: {
        if (in.dst.mode != DstMode::Reg) return "MOVI destination must be a register";
        if (in.dst.reg >= kNumRegisters) return "destination register index out of range";
        return std::nullopt;
    }
    case Opcode::BRA:
    case Opcode::JAL: {
        if (in.op == Opcode::JAL && in.link >= kNumRegisters)
            return "link register index out of range";
        switch (in.bmode) {
        case BraMode::Rel:
            if (!fits_signed(in.target, 14)) return "branch offset out of signed 14-bit range";
            return std::nullopt;
        case BraMode::Abs:
            if (in.target < 0 || !fits_unsigned(static_cast<std::uint32_t>(in.target), 14))
                return "branch address out of 14-bit range";
            return std::nullopt;
        case BraMode::RegInd:
            if (in.treg >= kNumRegisters) return "branch target register index out of range";
            return std::nullopt;
        }
        return "invalid branch mode";
    }
    }
    return "invalid opcode";
}

SrcOperand sreg(unsigned r) {
    ULPMC_EXPECTS(r < kNumRegisters);
    return {SrcMode::Reg, static_cast<std::uint8_t>(r)};
}
SrcOperand sind(unsigned r) {
    ULPMC_EXPECTS(r < kNumRegisters);
    return {SrcMode::Ind, static_cast<std::uint8_t>(r)};
}
SrcOperand spostinc(unsigned r) {
    ULPMC_EXPECTS(r < kNumRegisters);
    return {SrcMode::IndPostInc, static_cast<std::uint8_t>(r)};
}
SrcOperand spostdec(unsigned r) {
    ULPMC_EXPECTS(r < kNumRegisters);
    return {SrcMode::IndPostDec, static_cast<std::uint8_t>(r)};
}
SrcOperand spreinc(unsigned r) {
    ULPMC_EXPECTS(r < kNumRegisters);
    return {SrcMode::IndPreInc, static_cast<std::uint8_t>(r)};
}
SrcOperand spredec(unsigned r) {
    ULPMC_EXPECTS(r < kNumRegisters);
    return {SrcMode::IndPreDec, static_cast<std::uint8_t>(r)};
}
SrcOperand simm(int v) {
    // The raw field is 4 bits; SFT interprets it as signed (-8..7), every
    // other consumer as unsigned (0..15). Accept both ranges here and let
    // the execution unit interpret per-opcode.
    ULPMC_EXPECTS(v >= -8 && v <= 15);
    return {SrcMode::Imm4, static_cast<std::uint8_t>(v & 0xF)};
}
SrcOperand soff(unsigned r) {
    ULPMC_EXPECTS(r < kNumRegisters);
    return {SrcMode::IndOff, static_cast<std::uint8_t>(r)};
}
DstOperand dreg(unsigned r) {
    ULPMC_EXPECTS(r < kNumRegisters);
    return {DstMode::Reg, static_cast<std::uint8_t>(r)};
}
DstOperand dind(unsigned r) {
    ULPMC_EXPECTS(r < kNumRegisters);
    return {DstMode::Ind, static_cast<std::uint8_t>(r)};
}
DstOperand dpostinc(unsigned r) {
    ULPMC_EXPECTS(r < kNumRegisters);
    return {DstMode::IndPostInc, static_cast<std::uint8_t>(r)};
}
DstOperand doff(unsigned r) {
    ULPMC_EXPECTS(r < kNumRegisters);
    return {DstMode::IndOff, static_cast<std::uint8_t>(r)};
}

Instruction make_alu(Opcode op, DstOperand dst, SrcOperand a, SrcOperand b) {
    ULPMC_EXPECTS(is_alu(op));
    Instruction in;
    in.op = op;
    in.dst = dst;
    in.srca = a;
    in.srcb = b;
    ULPMC_ENSURES(!validate(in));
    return in;
}

Instruction make_mov(DstOperand dst, SrcOperand src, int off) {
    Instruction in;
    in.op = Opcode::MOV;
    in.dst = dst;
    in.srca = src;
    in.moff = static_cast<std::int8_t>(off);
    ULPMC_ENSURES(!validate(in));
    return in;
}

Instruction make_movi(unsigned rd, Word imm) {
    Instruction in;
    in.op = Opcode::MOVI;
    in.dst = dreg(rd);
    in.imm16 = imm;
    ULPMC_ENSURES(!validate(in));
    return in;
}

Instruction make_bra(Cond c, BraMode m, std::int32_t target_or_reg) {
    Instruction in;
    in.op = Opcode::BRA;
    in.cond = c;
    in.bmode = m;
    if (m == BraMode::RegInd) {
        in.treg = static_cast<std::uint8_t>(target_or_reg);
    } else {
        in.target = target_or_reg;
    }
    ULPMC_ENSURES(!validate(in));
    return in;
}

Instruction make_jal(unsigned link, BraMode m, std::int32_t target_or_reg) {
    Instruction in;
    in.op = Opcode::JAL;
    in.link = static_cast<std::uint8_t>(link);
    in.bmode = m;
    if (m == BraMode::RegInd) {
        in.treg = static_cast<std::uint8_t>(target_or_reg);
    } else {
        in.target = target_or_reg;
    }
    ULPMC_ENSURES(!validate(in));
    return in;
}

Instruction make_hlt() { return make_bra(Cond::AL, BraMode::Rel, 0); }

Instruction make_nop() { return make_bra(Cond::NV, BraMode::Rel, 0); }

} // namespace ulpmc::isa
