// Programmatic assembler: the type-safe way application kernels emit
// TamaRISC code (the text assembler in assembler.hpp wraps the same
// facility for human-written sources). Supports forward references to
// text labels and data symbols via fixups resolved in finish().
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "isa/program.hpp"

namespace ulpmc::isa {

/// Incrementally builds a Program. All emit helpers validate their
/// instruction; errors are contract violations (programming errors in the
/// kernel generator, not runtime conditions).
class AsmBuilder {
public:
    // ---- text section ----------------------------------------------------

    /// Defines `name` at the current text position.
    void label(const std::string& name);

    /// Current text position (address of the next emitted instruction).
    PAddr here() const;

    /// Emits a validated instruction.
    void emit(const Instruction& in);

    void alu(Opcode op, DstOperand dst, SrcOperand a, SrcOperand b);
    void add(DstOperand dst, SrcOperand a, SrcOperand b);
    void sub(DstOperand dst, SrcOperand a, SrcOperand b);
    void sft(DstOperand dst, SrcOperand a, SrcOperand b);
    void and_(DstOperand dst, SrcOperand a, SrcOperand b);
    void or_(DstOperand dst, SrcOperand a, SrcOperand b);
    void xor_(DstOperand dst, SrcOperand a, SrcOperand b);
    void mull(DstOperand dst, SrcOperand a, SrcOperand b);
    void mulh(DstOperand dst, SrcOperand a, SrcOperand b);
    void mov(DstOperand dst, SrcOperand src, int off = 0);
    void movi(unsigned rd, Word imm);

    /// movi of a (possibly forward) data symbol's address.
    void movi_data(unsigned rd, const std::string& data_symbol);

    /// movi of a (possibly forward) text symbol's address.
    void movi_text(unsigned rd, const std::string& text_label);

    /// movi of a symbol living in either space (used by the text assembler,
    /// where the space of a forward reference is unknown at parse time).
    void movi_symbol_any(unsigned rd, const std::string& symbol);

    /// PC-relative conditional branch to a (possibly forward) label.
    void bra(Cond c, const std::string& text_label);

    /// Register-indirect branch.
    void bra_reg(Cond c, unsigned reg);

    /// Jump-and-link to a (possibly forward) label (absolute mode).
    void jal(unsigned link, const std::string& text_label);

    /// Return from subroutine: unconditional register-indirect branch.
    void ret(unsigned link_reg);

    void hlt();
    void nop();

    // ---- data section ----------------------------------------------------

    /// Defines a data symbol at the current data position.
    void data_label(const std::string& name);

    /// Current data position (virtual word address of the next data word).
    Addr data_here() const;

    void word(Word w);
    void words(std::span<const Word> ws);

    /// Reserves `n` zero-initialized words.
    void space(std::size_t n);

    /// Aligns the data cursor up to a multiple of `n` words.
    void align_data(std::size_t n);

    // ---- finalize ----------------------------------------------------------

    /// Resolves all fixups and returns the finished program.
    /// Contract violation if any referenced label stays undefined.
    Program finish();

private:
    enum class FixKind { BraRel, JalAbs, MoviData, MoviText, MoviAny };
    struct Fixup {
        FixKind kind;
        std::size_t text_index;
        std::string symbol;
    };

    Program prog_;
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace ulpmc::isa
