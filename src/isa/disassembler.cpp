#include "isa/disassembler.hpp"

#include <cstdio>

#include "isa/encoding.hpp"
#include "isa/mnemonics.hpp"

namespace ulpmc::isa {

namespace {

std::string branch_operands(const Instruction& in, PAddr pc) {
    switch (in.bmode) {
    case BraMode::Rel: {
        std::string s;
        if (in.target >= 0) s += '+';
        s += std::to_string(in.target);
        s += "  ; -> ";
        s += std::to_string(static_cast<std::int32_t>(pc) + in.target);
        return s;
    }
    case BraMode::Abs:
        return "=" + std::to_string(in.target);
    case BraMode::RegInd:
        return "@r" + std::to_string(in.treg);
    }
    return "?";
}

} // namespace

std::string disassemble(const Instruction& in, PAddr pc) {
    switch (in.op) {
    case Opcode::ADD:
    case Opcode::SUB:
    case Opcode::SFT:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::MULL:
    case Opcode::MULH:
        return std::string(opcode_name(in.op)) + " " + dst_to_string(in.dst) + ", " +
               src_to_string(in.srca) + ", " + src_to_string(in.srcb);
    case Opcode::MOV:
        return "mov " + dst_to_string(in.dst, in.moff) + ", " + src_to_string(in.srca, in.moff);
    case Opcode::MOVI:
        return "movi r" + std::to_string(in.dst.reg) + ", " + std::to_string(in.imm16);
    case Opcode::BRA:
        if (in.cond == Cond::AL && in.bmode == BraMode::Rel && in.target == 0) return "hlt";
        if (in.cond == Cond::NV && in.bmode == BraMode::Rel && in.target == 0) return "nop";
        return "bra " + std::string(cond_name(in.cond)) + ", " + branch_operands(in, pc);
    case Opcode::JAL:
        return "jal r" + std::to_string(in.link) + ", " + branch_operands(in, pc);
    }
    return "?";
}

std::string disassemble_word(InstrWord w, PAddr pc) {
    if (const auto in = decode(w)) return disassemble(*in, pc);
    char buf[32];
    std::snprintf(buf, sizeof buf, ".word 0x%06X", w & kInstrWordMask);
    return buf;
}

} // namespace ulpmc::isa
