// Textual names for opcodes, conditions and operand syntax, shared by the
// assembler and the disassembler so the two always agree.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "isa/instruction.hpp"

namespace ulpmc::isa {

/// Lower-case mnemonic for an opcode ("add", "bra", ...).
std::string_view opcode_name(Opcode op);

/// Lower-case condition name ("al", "eq", ..., "nv").
std::string_view cond_name(Cond c);

/// Parses a mnemonic; accepts any case. std::nullopt when unknown.
std::optional<Opcode> parse_opcode(std::string_view name);

/// Parses a condition name; accepts any case. std::nullopt when unknown.
std::optional<Cond> parse_cond(std::string_view name);

/// Renders a source operand in assembler syntax (e.g. "@r3+", "#5").
std::string src_to_string(const SrcOperand& s, int moff = 0);

/// Renders a destination operand in assembler syntax.
std::string dst_to_string(const DstOperand& d, int moff = 0);

} // namespace ulpmc::isa
