// Disassembler: renders decoded instructions (or raw 24-bit words) back
// into the assembler's textual syntax. Round-trips with the assembler:
//   assemble(disassemble(w)) == w   for every legal word (tested).
#pragma once

#include <string>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace ulpmc::isa {

/// Renders a decoded instruction. `pc` is used to print PC-relative branch
/// targets as absolute addresses in a trailing comment.
std::string disassemble(const Instruction& in, PAddr pc = 0);

/// Decodes and renders a raw word; illegal words render as ".word 0x...".
std::string disassemble_word(InstrWord w, PAddr pc = 0);

} // namespace ulpmc::isa
