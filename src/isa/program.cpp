#include "isa/program.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace ulpmc::isa {

void Program::set_symbol(const std::string& name, Symbol s) {
    ULPMC_EXPECTS(!name.empty());
    symbols_[name] = s;
}

std::optional<Symbol> Program::symbol(const std::string& name) const {
    const auto it = symbols_.find(name);
    if (it == symbols_.end()) return std::nullopt;
    return it->second;
}

Addr Program::data_addr(const std::string& name) const {
    const auto s = symbol(name);
    ULPMC_EXPECTS(s.has_value());
    ULPMC_EXPECTS(s->space == Symbol::Space::Data);
    return narrow<Addr>(s->value);
}

PAddr Program::text_addr(const std::string& name) const {
    const auto s = symbol(name);
    ULPMC_EXPECTS(s.has_value());
    ULPMC_EXPECTS(s->space == Symbol::Space::Text);
    return narrow<PAddr>(s->value);
}

} // namespace ulpmc::isa
