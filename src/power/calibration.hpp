// Calibration constants of the 90 nm low-leakage power/area/timing model.
//
// The paper measures power from post-layout simulation; we replace that
// flow with an event-energy model whose constants are calibrated to the
// paper's own published aggregates (DESIGN.md §4). Every constant below
// carries its derivation. Voltages in volts, energies in joules, powers
// in watts, areas in kGE (1 GE = 3.136 um^2).
//
// Primary calibration anchors:
//  * Table II  — dynamic power breakdown at 8 MOps/s, 1.2 V;
//  * §IV-C1    — TamaRISC 15.6 pJ/op at 1.0 V (= 22.5 pJ at 1.2 V);
//  * Fig. 7    — 664.5 MOps/s at 1.2 V vs ~10 MOps/s at the voltage floor;
//  * Fig. 8    — leakage == dynamic at ~50 kOps/s; ulpmc-bank leaks 38.8%
//                less than mc-ref with 7/8 IM banks gated;
//  * Table I   — component areas;
//  * Figs. 5/6 — per-clock-constraint power ratios.
#pragma once

#include <cmath>

namespace ulpmc::power::cal {

// ---- voltage / frequency ----------------------------------------------------

inline constexpr double kVnom = 1.2; ///< nominal supply [V]
inline constexpr double kVmin = 0.5; ///< scaling floor ("threshold level")
inline constexpr double kVt = 0.4;   ///< alpha-power-law threshold voltage

/// Throughput ratio between nominal and floor voltage: the paper's designs
/// deliver 664.5 MOps/s at 1.2 V and "around 10 MOps/s" at the floor.
inline constexpr double kFreqRatioNomToMin = 664.5 / 10.0;

/// Alpha-power-law exponent, solved from
///   f(V) ~ (V - Vt)^alpha / V  with  f(kVnom)/f(kVmin) = kFreqRatioNomToMin.
inline const double kAlpha =
    std::log(kFreqRatioNomToMin * (kVnom / kVmin)) / std::log((kVnom - kVt) / (kVmin - kVt));

/// Both designs are synthesized for this clock constraint in all headline
/// experiments (the paper's chosen energy/throughput sweet spot, Figs. 5/6).
inline constexpr double kDefaultClockNs = 12.0;

// ---- dynamic event energies at 1.2 V ---------------------------------------
// Table II at 8 MOps/s: mc-ref components {cores 0.18, IM 0.36, DM 0.07,
// D-Xbar 0.02, clock 0.03} mW => per-op energies = P / 8e6.

/// Core datapath energy per executed instruction (0.18 mW / 8 MOps).
/// Cross-check (§IV-C1): 22.5 pJ x (1.0/1.2)^2 = 15.6 pJ/op at 1.0 V.
inline constexpr double kCoreEnergyPerOp = 22.5e-12;

/// Extra instruction-path toggling per op when fetch flows through the
/// I-Xbar (Table II cores row: 0.25 / 0.21 mW vs 0.18 mW):
inline constexpr double kIPathExtraInterleaved = 8.75e-12; // (0.25-0.18)mW / 8 MOps
inline constexpr double kIPathExtraBanked = 3.75e-12;      // (0.21-0.18)mW / 8 MOps

/// IM bank access energy (0.36 mW / 8 MOps; one dedicated-bank fetch per
/// op in mc-ref). Cross-check: the proposed design's ~1 broadcast access
/// per cycle then yields 45 pJ/op x ~0.125 access/op ~= 0.05 mW (Table II).
inline constexpr double kImAccessEnergy = 45.0e-12;

/// DM bank access energy. Table II: 0.07 mW / 8 MOps = 8.75 pJ/op; the
/// ECG benchmark performs 0.3772 DM bank accesses per instruction on
/// mc-ref (measured by bench/table2_dynamic_power), giving 23.2 pJ per
/// access. Cross-check: the proposed designs' broadcast-merged 0.3145
/// accesses/op then yield 0.058 mW, matching Table II's 0.06 mW.
inline constexpr double kDmAccessEnergy = 8.75e-12 / 0.3772;

/// D-Xbar routing energy per served request (0.02 mW / 8 MOps / 0.3772
/// requests/op). The proposed design's broadcast/compare logic adds ~25%
/// (Table II: 0.03 mW for ulpmc-int).
inline constexpr double kDXbarEnergyPerReq = 2.5e-12 / 0.3772;
inline constexpr double kDXbarBroadcastFactor = 1.25;

/// I-Xbar routing energy per served fetch. Reading from a single packed
/// bank toggles far fewer output nets than reading from rotating banks
/// (paper §IV-C2), hence the banked organization's smaller value.
inline constexpr double kIXbarEnergyPerReqInterleaved = 3.75e-12; // 0.03 mW/8MOps
inline constexpr double kIXbarEnergyPerReqBanked = 1.25e-12;      // 0.01 mW/8MOps

/// Clock-tree energy per active core-cycle (stalled/halted cores are clock
/// gated). mc-ref 0.03 mW / 8 MOps; the proposed designs' deeper tree
/// (crossbar pipeline registers) costs 0.04 mW.
inline constexpr double kClockEnergyRef = 3.75e-12;
inline constexpr double kClockEnergyProposed = 5.0e-12;

// ---- ECC overhead (resilience extension, DESIGN.md §9) ----------------------
// SEC-DED (31,26) Hamming: 6 check bits per protected cell. Access energy
// in a word-organized SRAM scales ~linearly with the bits toggled per
// access, so the per-access factor is the codeword/data bit ratio — (16+6)
// /16 for DM cells, (24+6)/24 for IM cells. The encode/syndrome XOR trees
// are a few dozen gates and ride inside the same access, so no separate
// logic term is charged. A *correction* event additionally fires the
// write-back scrub (one extra write's worth of energy, approximated by the
// bank's access energy at the data width).

inline constexpr double kEccDmAccessFactor = 22.0 / 16.0;  ///< 1.375
inline constexpr double kEccImAccessFactor = 30.0 / 24.0;  ///< 1.25
/// Energy of one single-bit correction (syndrome decode + scrub write).
inline constexpr double kEccCorrectionEnergy = 45.0e-12;

// ---- register-file protection (robustness extension, DESIGN.md §9) ----------
// Parity: one parity flip-flop per 16-bit register (+6.25% file storage)
// plus a 16-input XOR folded into the read path — a ~2% adder on the core
// datapath energy: 22.5 pJ x 0.02 = 0.45 pJ/op.
inline constexpr double kRegParityEnergyPerOp = 0.45e-12;
/// TMR triplicates the register file (two extra writes per register write,
/// ~1/3 of instructions write a register -> ~2/3 extra write's worth) and
/// majority-votes every operand read: ~20% of the core datapath energy.
inline constexpr double kRegTmrEnergyPerOp = 4.5e-12;
/// Checkpointing streams one core's architectural state (16 registers +
/// PC + status = kCheckpointWordsPerCore words) into a protected DM
/// region: per word one register read + one ECC-widened DM write + the
/// routing toggles, ~= 32 pJ (compare kDmAccessEnergy = 23.2 pJ/access).
inline constexpr double kCheckpointWordEnergy = 32.0e-12;
inline constexpr unsigned kCheckpointWordsPerCore = 18;
/// Delta checkpointing (DESIGN.md §9.6) adds per-word dirty tracking (a
/// comparator against the base keyframe plus address bookkeeping) on top
/// of the plain save path, ~+12% per STORED word — but deltas store only
/// the dirty words, so total save energy drops whenever under ~89% of the
/// state changed between checkpoints.
inline constexpr double kCheckpointDeltaWordEnergy = 36.0e-12;
/// Idle-cycle IM scrub (DESIGN.md §9): the walker performs one background
/// bank read per idle, ungated IM bank per cycle — priced like any other
/// bank activation at the data width (the ECC codeword widening factor
/// applies on top, exactly as for demand fetches).
inline constexpr double kImScrubReadEnergy = 45.0e-12;
/// Idle-cycle DM scrub: the same background walker over the data banks,
/// priced like a demand DM bank activation at the data width (the ECC
/// codeword widening factor applies on top, exactly as for demand reads).
inline constexpr double kDmScrubReadEnergy = 8.75e-12 / 0.3772;
/// Self-checking crossbar arbiter: a shadow grant computation plus a
/// comparator per crossbar, toggling every cycle the checker is armed.
/// Sized at ~20% of the interleaved I-Xbar's per-request routing energy
/// (the checker re-evaluates the grant matrix but drives no output nets).
inline constexpr double kXbarSelfCheckEnergyPerCycle = 0.75e-12;

// ---- areas (Table I), kGE ---------------------------------------------------

inline constexpr double kAreaCorePerCore = 81.5 / 8.0;         ///< TamaRISC core
inline constexpr double kAreaMmuPerCore = (87.3 - 81.5) / 8.0; ///< + MMU (proposed)
inline constexpr double kAreaImBank = 429.4 / 8.0;  ///< 12 kB IM bank
inline constexpr double kAreaDmBank = 576.7 / 16.0; ///< 4 kB DM bank
inline constexpr double kAreaDXbarRef = 20.5;
inline constexpr double kAreaDXbarProposed = 23.0; ///< + broadcast logic
inline constexpr double kAreaIXbar = 12.4;
inline constexpr double kUm2PerGe = 3.136;

/// Two-point SRAM bank-area fit through the paper's IM (12 kB -> 53.675
/// kGE) and DM (4 kB -> 36.044 kGE) banks: area = o + c * bytes.
inline constexpr double kSramBankCellGePerByte = (53.675 - 36.044) * 1000.0 / (12288.0 - 4096.0);
inline constexpr double kSramBankOverheadGe = 36.044 * 1000.0 - kSramBankCellGePerByte * 4096.0;

// ---- leakage at 1.2 V -------------------------------------------------------
// Density ratios are the unique solution (DESIGN.md §4) that makes
// ulpmc-bank with 7/8 IM banks gated leak exactly 38.8% less than mc-ref
// while ulpmc-int leaks ~= mc-ref (+1.1%). Absolute scale: mc-ref leakage
// at kVmin equals its dynamic power at a 50 kOps/s workload (Fig. 8's
// crossover): 80 pJ/op x (0.5/1.2)^2 x 50 kOps/s = 0.694 uW
// => 4.00 uW at 1.2 V => lambda_IM = 4.00 uW / 941.76 kGE-equivalents.
inline constexpr double kLeakLogicDensityRatio = 0.5; ///< logic vs IM SRAM
inline constexpr double kLeakDmDensityRatio = 0.8;    ///< DM SRAM vs IM SRAM
inline constexpr double kLeakImPerKge = 4.00e-6 / 941.76; ///< W/kGE at 1.2 V

// ---- synthesis clock-constraint factors (Figs. 5/6) -------------------------
// Power multipliers fitted from the papers' curve annotations at the
// voltage floor, normalized to the 12 ns designs everything else is
// calibrated on. mc-ref: {7.1: 1.03, 12: 0.87, 16: 0.86, 20: 0.85} mW;
// proposed: {8.9: 0.54, 12: 0.41, 16: 0.39, 20: 0.38} mW.
struct ClockConstraintFactor {
    double clock_ns;
    double factor; ///< power multiplier relative to the 12 ns design
};
inline constexpr ClockConstraintFactor kKappaMcRef[] = {
    {7.1, 1.03 / 0.87}, {12.0, 1.0}, {16.0, 0.86 / 0.87}, {20.0, 0.85 / 0.87}};
inline constexpr ClockConstraintFactor kKappaProposed[] = {
    {8.9, 0.54 / 0.41}, {12.0, 1.0}, {16.0, 0.39 / 0.41}, {20.0, 0.38 / 0.41}};

/// The I-Xbar adds ~1.8 ns to the proposed design's critical path, so its
/// fastest synthesizable clock is 8.9 ns vs mc-ref's 7.1 ns (§IV-B).
inline constexpr double kMinClockNsMcRef = 7.1;
inline constexpr double kMinClockNsProposed = 8.9;

} // namespace ulpmc::power::cal
