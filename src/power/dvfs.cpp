#include "power/dvfs.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "power/calibration.hpp"

namespace ulpmc::power {

double VfModel::f_floor() { return (1e9 / cal::kDefaultClockNs) / cal::kFreqRatioNomToMin; }

VfModel::VfModel(double clock_ns) : clock_ns_(clock_ns) {
    ULPMC_EXPECTS(clock_ns > 0.0);
    // Solve (V-Vt)^a / V for `a` such that f(Vnom)/f(Vmin) equals this
    // design's nominal-to-floor ratio (floor frequency is common to all
    // synthesized variants; see the header comment).
    const double ratio = f_nominal() / f_floor();
    ULPMC_EXPECTS(ratio > 1.0);
    alpha_ = std::log(ratio * (cal::kVnom / cal::kVmin)) /
             std::log((cal::kVnom - cal::kVt) / (cal::kVmin - cal::kVt));
}

double VfModel::g(double v) const { return std::pow(v - cal::kVt, alpha_) / v; }

double VfModel::f_nominal() const { return 1e9 / clock_ns_; }

double VfModel::f_max(double v) const {
    ULPMC_EXPECTS(v >= cal::kVmin && v <= cal::kVnom);
    return f_nominal() * g(v) / g(cal::kVnom);
}

double VfModel::v_for_f(double f_hz) const {
    ULPMC_EXPECTS(f_hz >= 0.0);
    if (f_hz <= f_max(cal::kVmin)) return cal::kVmin;
    if (f_hz > f_max(cal::kVnom) * (1.0 + 1e-12))
        return std::numeric_limits<double>::quiet_NaN();
    // g is strictly increasing on [Vmin, Vnom]: bisect.
    double lo = cal::kVmin;
    double hi = cal::kVnom;
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (f_max(mid) < f_hz) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return hi;
}

double VfModel::energy_scale(double v) {
    ULPMC_EXPECTS(v > 0.0);
    return (v / cal::kVnom) * (v / cal::kVnom);
}

} // namespace ulpmc::power
