#include "power/area.hpp"

#include "common/assert.hpp"
#include "power/calibration.hpp"

namespace ulpmc::power {

double AreaBreakdown::total_um2() const { return total() * 1000.0 * cal::kUm2PerGe; }

AreaBreakdown area_of(cluster::ArchKind arch) {
    AreaBreakdown a;
    a.im = cal::kAreaImBank * kImBanks;
    a.dm = cal::kAreaDmBank * kDmBanks;
    switch (arch) {
    case cluster::ArchKind::McRef:
        a.cores = cal::kAreaCorePerCore * kNumCores;
        a.dxbar = cal::kAreaDXbarRef;
        a.ixbar = 0.0;
        break;
    case cluster::ArchKind::UlpmcInt:
    case cluster::ArchKind::UlpmcBank:
        a.cores = (cal::kAreaCorePerCore + cal::kAreaMmuPerCore) * kNumCores;
        a.dxbar = cal::kAreaDXbarProposed;
        a.ixbar = cal::kAreaIXbar;
        break;
    }
    return a;
}

double sram_bank_area_kge(std::size_t bytes) {
    ULPMC_EXPECTS(bytes > 0);
    return (cal::kSramBankOverheadGe + cal::kSramBankCellGePerByte * static_cast<double>(bytes)) /
           1000.0;
}

} // namespace ulpmc::power
