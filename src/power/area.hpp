// Area model reproducing the paper's Table I, plus a generic SRAM-bank
// estimator for exploring other memory organizations (extension).
#pragma once

#include <cstddef>

#include "cluster/config.hpp"

namespace ulpmc::power {

/// Component areas in kGE (1 GE = 3.136 um^2).
struct AreaBreakdown {
    double cores = 0;
    double im = 0;
    double dm = 0;
    double dxbar = 0;
    double ixbar = 0;

    double total() const { return cores + im + dm + dxbar + ixbar; }
    double logic() const { return cores + dxbar + ixbar; }
    double memories() const { return im + dm; }
    double total_um2() const;
};

/// Areas of one of the paper's three designs (ulpmc-int and ulpmc-bank are
/// identical in area — only the bank-select wiring differs, §III-C).
AreaBreakdown area_of(cluster::ArchKind arch);

/// Generic SRAM bank-area estimate: overhead + cells (two-point fit
/// through the paper's IM and DM banks; see calibration.hpp).
double sram_bank_area_kge(std::size_t bytes);

} // namespace ulpmc::power
