// Radio energy model (extension): the benchmark exists to SHRINK RADIO
// ENERGY — the paper compresses "for wireless transmission" but never
// closes the loop on what the transmission costs. This model does, with
// figures typical of the BLE-class transceivers used by the wearable
// nodes the paper cites (Sensium, PiiX): energy per transmitted bit plus
// a fixed per-packet overhead (preamble, sync, turnaround).
#pragma once

#include <cstddef>

namespace ulpmc::power {

/// Transceiver parameters (defaults: BLE-class, ~1 Mb/s, 0 dBm).
struct RadioModel {
    double energy_per_bit = 20e-9;      ///< J/bit on-air
    double packet_overhead = 4e-6;      ///< J per packet (preamble/sync/IFS)
    std::size_t packet_payload_bits = 216 * 8; ///< max payload per packet

    /// Energy to ship `bits` of payload, including packetization.
    double tx_energy(std::size_t bits) const;

    /// Number of packets `bits` of payload occupy.
    std::size_t packets(std::size_t bits) const;
};

} // namespace ulpmc::power
