// The system power model: combines event counts from a cycle-accurate run
// with the calibrated per-event energies, the leakage/area model, the
// V/f scaling model and the synthesis-constraint factors to produce the
// component power breakdowns every §IV experiment reports.
//
// Usage pattern (identical to the paper's methodology):
//   1. simulate the benchmark once on an architecture -> ClusterStats;
//   2. EventRates::from_run() condenses the run into per-operation rates;
//   3. PowerModel::power_at() answers "what does this design draw at
//      workload W?" by choosing the minimum (V, f) operating point and
//      scaling dynamic + leakage power accordingly.
#pragma once

#include "cluster/config.hpp"
#include "cluster/stats.hpp"
#include "power/area.hpp"
#include "power/dvfs.hpp"

namespace ulpmc::power {

/// Per-operation event rates measured from one benchmark execution.
struct EventRates {
    double im_bank_accesses = 0; ///< IM bank activations per op
    double ixbar_requests = 0;   ///< fetches served via the I-Xbar per op
    double dm_bank_accesses = 0; ///< DM bank activations per op
    double dxbar_requests = 0;   ///< DM requests served per op
    double ops_per_cycle = 0;    ///< aggregate throughput [ops/cycle]
    unsigned im_banks_used = kImBanks;
    unsigned im_banks_gated = 0;
    unsigned im_banks_total = kImBanks;
    bool ecc = false;                 ///< SEC-DED banks: access-energy factors apply
    double ecc_corrections = 0;       ///< single-bit scrub events per op
    /// Register-file protection mode (parity / TMR adders on the core row).
    core::RegProtection reg_protection = core::RegProtection::None;
    /// Checkpoint traffic per op (words streamed to the protected DM
    /// region). from_run() cannot know the checkpoint policy, so the
    /// caller sets this analytically: checkpoints x cores x
    /// cal::kCheckpointWordsPerCore / total ops.
    double checkpoint_words_per_op = 0;
    /// Idle-cycle IM scrub reads per op (background bank activations;
    /// the ECC widening factor applies like on demand fetches).
    double im_scrub_reads = 0;
    /// Idle-cycle DM scrub reads per op (background DM bank activations).
    double dm_scrub_reads = 0;
    /// Self-checking crossbar arbiters armed: charges a per-cycle checker
    /// adder on both interconnect rows.
    bool xbar_self_check = false;

    /// Condenses a finished run. Precondition: at least one op committed.
    static EventRates from_run(const cluster::ClusterStats& s);
};

/// Power split by the paper's components (Fig. 3 / Table II rows).
struct PowerBreakdown {
    double cores = 0;
    double im = 0;
    double dm = 0;
    double dxbar = 0;
    double ixbar = 0;
    double clock = 0;

    double total() const { return cores + im + dm + dxbar + ixbar + clock; }
    /// Fig. 8 groups: circuit logic vs memories.
    double logic() const { return cores + dxbar + ixbar + clock; }
    double memories() const { return im + dm; }
};

/// A chosen voltage/frequency operating point.
struct OperatingPoint {
    double f_hz = 0;
    double v = 0;
};

/// The calibrated per-event energies (defaults from calibration.hpp).
/// Exposed as data so sensitivity studies can perturb each constant
/// (bench/sensitivity_analysis) — the model formulas stay fixed.
struct EnergyConstants {
    double core_per_op;          ///< J per executed instruction
    double ipath_interleaved;    ///< extra J/op, interleaved IM fetch path
    double ipath_banked;         ///< extra J/op, banked IM fetch path
    double im_access;            ///< J per IM bank activation
    double dm_access;            ///< J per DM bank activation
    double dxbar_per_req;        ///< J per routed D-Xbar request
    double dxbar_broadcast_mult; ///< broadcast-logic toggling multiplier
    double ixbar_interleaved;    ///< J per I-Xbar request (interleaved)
    double ixbar_banked;         ///< J per I-Xbar request (banked)
    double clock_ref;            ///< J per active core-cycle (mc-ref)
    double clock_proposed;       ///< J per active core-cycle (proposed)
    double leak_im_per_kge;      ///< W/kGE of IM SRAM at nominal voltage
    double leak_logic_ratio;     ///< logic leakage density vs IM SRAM
    double leak_dm_ratio;        ///< DM SRAM leakage density vs IM SRAM
    double ecc_im_factor;        ///< IM access-energy multiplier with ECC on
    double ecc_dm_factor;        ///< DM access-energy multiplier with ECC on
    double ecc_correction;       ///< J per single-bit correction (scrub)
    double reg_parity_per_op;    ///< extra J/op with register parity on
    double reg_tmr_per_op;       ///< extra J/op with register TMR on
    double checkpoint_word;      ///< J per checkpointed state word
    double im_scrub_read;        ///< J per IM scrub-walker bank read
    double dm_scrub_read;        ///< J per DM scrub-walker bank read
    double xbar_selfcheck_cycle; ///< J per armed-checker cycle (per crossbar)

    /// The calibrated defaults (DESIGN.md §4).
    static EnergyConstants calibrated();
};

/// Power model for one design (architecture x synthesis clock constraint).
class PowerModel {
public:
    /// `clock_ns` must be one of the synthesis points of Figs. 5/6 for the
    /// given architecture (contract-checked); defaults to the 12 ns design
    /// used by every other experiment.
    explicit PowerModel(cluster::ArchKind arch, double clock_ns = 12.0);

    /// Sensitivity-study variant with perturbed constants.
    PowerModel(cluster::ArchKind arch, const EnergyConstants& consts, double clock_ns = 12.0);

    cluster::ArchKind arch() const { return arch_; }
    const VfModel& vf() const { return vf_; }
    /// Synthesis power factor relative to the 12 ns design.
    double kappa() const { return kappa_; }

    /// Energy per operation at nominal voltage, split by component.
    PowerBreakdown energy_per_op(const EventRates& r) const;

    /// Highest sustainable workload [ops/s] at nominal voltage.
    double max_throughput(const EventRates& r) const;

    /// Minimum-power operating point for `workload` ops/s. Voltage scaling
    /// down to the floor, then frequency-only scaling (paper §IV-C2).
    /// Contract violation if the workload exceeds max_throughput().
    OperatingPoint operating_point(const EventRates& r, double workload) const;

    /// Dynamic power at the given workload and supply.
    PowerBreakdown dynamic_power(const EventRates& r, double workload, double v) const;

    /// Leakage power at the given supply, honoring IM bank gating.
    PowerBreakdown leakage_power(const EventRates& r, double v) const;

    /// Everything at once: the minimum-power operating point plus both
    /// power contributions for `workload`.
    struct Report {
        OperatingPoint op;
        PowerBreakdown dynamic;
        PowerBreakdown leakage;
        double total = 0;
    };
    Report power_at(const EventRates& r, double workload) const;

private:
    cluster::ArchKind arch_;
    VfModel vf_;
    double kappa_;
    EnergyConstants c_;
};

} // namespace ulpmc::power
