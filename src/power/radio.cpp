#include "power/radio.hpp"

#include "common/assert.hpp"

namespace ulpmc::power {

std::size_t RadioModel::packets(std::size_t bits) const {
    ULPMC_EXPECTS(packet_payload_bits > 0);
    if (bits == 0) return 0;
    return (bits + packet_payload_bits - 1) / packet_payload_bits;
}

double RadioModel::tx_energy(std::size_t bits) const {
    return energy_per_bit * static_cast<double>(bits) +
           packet_overhead * static_cast<double>(packets(bits));
}

} // namespace ulpmc::power
