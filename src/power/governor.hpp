// Duty-cycle governor (extension): how should a periodic biosignal job be
// scheduled on the cluster?
//
// The paper's sweep implicitly uses JUST-IN-TIME scheduling: stretch the
// job across its whole period with frequency scaling (below the voltage
// floor) so the cluster never idles. The alternative is RACE-TO-IDLE:
// run at some higher operating point, finish early, and drop into an idle
// state for the remainder of the period.
//
// With the paper's power model the comparison is sharp:
//  * while both points sit at the voltage floor, dynamic energy per op is
//    identical, so the split only moves leakage-time around — idling in
//    ACTIVE leakage makes race-to-idle pointless;
//  * but give the chip a RETENTION SLEEP state (state-preserving power
//    gating, a standard ULP feature the paper does not model) and
//    race-to-idle + sleep beats just-in-time at light duty cycles.
//
// The governor quantifies this trade-off; bench/ext_duty_cycling prints it.
#pragma once

#include "power/power_model.hpp"

namespace ulpmc::power {

/// Idle-state model.
struct SleepModel {
    /// Leakage in retention sleep, as a fraction of active leakage at the
    /// same supply (state-retentive power gating; ~0.1 is typical).
    double retention_leakage_fraction = 0.10;
    /// Energy to enter+exit sleep once (PMU sequencing, rail settling).
    double transition_energy = 50e-9; // 50 nJ
    /// Minimum useful sleep interval; shorter gaps stay active-idle.
    double min_sleep_s = 100e-6;
};

/// One scheduling decision for a periodic job.
struct Schedule {
    enum class Kind { JustInTime, RaceToIdle } kind = Kind::JustInTime;
    OperatingPoint op;        ///< operating point while computing
    double busy_s = 0;        ///< compute time per period
    double sleep_s = 0;       ///< retention-sleep time per period
    double energy_per_period = 0;
    double average_power = 0;
};

/// Plans a periodic job: `ops_per_period` operations every `period_s`.
class DutyCycleGovernor {
public:
    DutyCycleGovernor(const PowerModel& model, const EventRates& rates,
                      const SleepModel& sleep = {});

    /// The paper's implicit policy: stretch the work across the period.
    Schedule just_in_time(double ops_per_period, double period_s) const;

    /// Run at the voltage floor's max frequency, then sleep.
    Schedule race_to_idle(double ops_per_period, double period_s) const;

    /// Whichever costs less energy per period.
    Schedule best(double ops_per_period, double period_s) const;

private:
    const PowerModel& model_;
    EventRates rates_;
    SleepModel sleep_;
};

} // namespace ulpmc::power
