#include "power/governor.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "power/calibration.hpp"

namespace ulpmc::power {

DutyCycleGovernor::DutyCycleGovernor(const PowerModel& model, const EventRates& rates,
                                     const SleepModel& sleep)
    : model_(model), rates_(rates), sleep_(sleep) {
    ULPMC_EXPECTS(sleep.retention_leakage_fraction >= 0.0 &&
                  sleep.retention_leakage_fraction <= 1.0);
}

Schedule DutyCycleGovernor::just_in_time(double ops_per_period, double period_s) const {
    ULPMC_EXPECTS(ops_per_period > 0 && period_s > 0);
    Schedule s;
    s.kind = Schedule::Kind::JustInTime;
    const double workload = ops_per_period / period_s;
    const auto rep = model_.power_at(rates_, workload);
    s.op = rep.op;
    s.busy_s = period_s;
    s.sleep_s = 0;
    s.energy_per_period = rep.total * period_s;
    s.average_power = rep.total;
    return s;
}

Schedule DutyCycleGovernor::race_to_idle(double ops_per_period, double period_s) const {
    ULPMC_EXPECTS(ops_per_period > 0 && period_s > 0);
    Schedule s;
    s.kind = Schedule::Kind::RaceToIdle;

    // Race at the fastest operating point that does not raise the supply:
    // above the floor the V^2 penalty always loses, so the optimal racing
    // point is f_max(Vmin) (or the deadline-required frequency if higher).
    const VfModel& vf = model_.vf();
    const double f_floor = vf.f_max(cal::kVmin);
    const double f_deadline = (ops_per_period / period_s) / rates_.ops_per_cycle;
    const double f = std::max(f_floor, f_deadline);
    s.op.f_hz = f;
    s.op.v = vf.v_for_f(f);

    s.busy_s = ops_per_period / (f * rates_.ops_per_cycle);
    const double idle_s = period_s - s.busy_s;
    ULPMC_ASSERT(idle_s >= -1e-12);

    const double busy_power = model_.dynamic_power(rates_, f * rates_.ops_per_cycle, s.op.v).total() +
                              model_.leakage_power(rates_, s.op.v).total();
    const double idle_leak = model_.leakage_power(rates_, cal::kVmin).total();

    double idle_energy = 0;
    if (idle_s > sleep_.min_sleep_s) {
        s.sleep_s = idle_s;
        idle_energy = idle_leak * sleep_.retention_leakage_fraction * idle_s +
                      sleep_.transition_energy;
    } else {
        s.sleep_s = 0;
        idle_energy = idle_leak * std::max(idle_s, 0.0);
    }

    s.energy_per_period = busy_power * s.busy_s + idle_energy;
    s.average_power = s.energy_per_period / period_s;
    return s;
}

Schedule DutyCycleGovernor::best(double ops_per_period, double period_s) const {
    const Schedule jit = just_in_time(ops_per_period, period_s);
    const Schedule race = race_to_idle(ops_per_period, period_s);
    return race.energy_per_period < jit.energy_per_period ? race : jit;
}

} // namespace ulpmc::power
