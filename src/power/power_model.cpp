#include "power/power_model.hpp"

#include <cmath>
#include <span>

#include "common/assert.hpp"
#include "power/calibration.hpp"

namespace ulpmc::power {

namespace {

using cluster::ArchKind;

bool is_proposed(ArchKind a) { return a != ArchKind::McRef; }

double ipath_extra(ArchKind a, const EnergyConstants& c) {
    switch (a) {
    case ArchKind::McRef:
        return 0.0;
    case ArchKind::UlpmcInt:
        return c.ipath_interleaved;
    case ArchKind::UlpmcBank:
        return c.ipath_banked;
    }
    ULPMC_ASSERT(false);
}

double ixbar_energy_per_req(ArchKind a, const EnergyConstants& c) {
    switch (a) {
    case ArchKind::McRef:
        return 0.0; // no I-Xbar in the reference design
    case ArchKind::UlpmcInt:
        return c.ixbar_interleaved;
    case ArchKind::UlpmcBank:
        return c.ixbar_banked;
    }
    ULPMC_ASSERT(false);
}

double lookup_kappa(ArchKind a, double clock_ns) {
    const std::span<const cal::ClockConstraintFactor> table =
        is_proposed(a) ? std::span<const cal::ClockConstraintFactor>(cal::kKappaProposed)
                       : std::span<const cal::ClockConstraintFactor>(cal::kKappaMcRef);
    for (const auto& e : table) {
        if (std::abs(e.clock_ns - clock_ns) < 1e-9) return e.factor;
    }
    ULPMC_EXPECTS(!"clock constraint not in the synthesized set (Figs. 5/6)");
    return 1.0;
}

} // namespace

EventRates EventRates::from_run(const cluster::ClusterStats& s) {
    const double ops = static_cast<double>(s.total_ops());
    ULPMC_EXPECTS(ops > 0.0);
    EventRates r;
    r.im_bank_accesses = static_cast<double>(s.im_bank_accesses) / ops;
    r.ixbar_requests = static_cast<double>(s.ixbar.grants) / ops;
    r.dm_bank_accesses = static_cast<double>(s.dm_bank_accesses()) / ops;
    r.dxbar_requests = static_cast<double>(s.dxbar.grants) / ops;
    r.ops_per_cycle = s.ops_per_cycle();
    r.im_banks_used = s.im_banks_used;
    r.im_banks_gated = s.im_banks_gated;
    r.im_banks_total = s.im_banks_total;
    r.ecc = s.ecc_enabled;
    r.ecc_corrections = static_cast<double>(s.ecc_corrected()) / ops;
    r.reg_protection = s.reg_protection;
    r.im_scrub_reads = static_cast<double>(s.im_scrub_reads) / ops;
    r.dm_scrub_reads = static_cast<double>(s.dm_scrub_reads) / ops;
    r.xbar_self_check = s.xbar_self_check;
    return r;
}

EnergyConstants EnergyConstants::calibrated() {
    return {cal::kCoreEnergyPerOp,
            cal::kIPathExtraInterleaved,
            cal::kIPathExtraBanked,
            cal::kImAccessEnergy,
            cal::kDmAccessEnergy,
            cal::kDXbarEnergyPerReq,
            cal::kDXbarBroadcastFactor,
            cal::kIXbarEnergyPerReqInterleaved,
            cal::kIXbarEnergyPerReqBanked,
            cal::kClockEnergyRef,
            cal::kClockEnergyProposed,
            cal::kLeakImPerKge,
            cal::kLeakLogicDensityRatio,
            cal::kLeakDmDensityRatio,
            cal::kEccImAccessFactor,
            cal::kEccDmAccessFactor,
            cal::kEccCorrectionEnergy,
            cal::kRegParityEnergyPerOp,
            cal::kRegTmrEnergyPerOp,
            cal::kCheckpointWordEnergy,
            cal::kImScrubReadEnergy,
            cal::kDmScrubReadEnergy,
            cal::kXbarSelfCheckEnergyPerCycle};
}

PowerModel::PowerModel(cluster::ArchKind arch, double clock_ns)
    : PowerModel(arch, EnergyConstants::calibrated(), clock_ns) {}

PowerModel::PowerModel(cluster::ArchKind arch, const EnergyConstants& consts, double clock_ns)
    : arch_(arch), vf_(clock_ns), kappa_(lookup_kappa(arch, clock_ns)), c_(consts) {
    const double min_ns = is_proposed(arch) ? cal::kMinClockNsProposed : cal::kMinClockNsMcRef;
    ULPMC_EXPECTS(clock_ns >= min_ns - 1e-9);
}

PowerBreakdown PowerModel::energy_per_op(const EventRates& r) const {
    PowerBreakdown e;
    e.cores = c_.core_per_op + ipath_extra(arch_, c_);
    // Scrub-walker reads are background IM bank activations: same row,
    // same ECC widening as demand fetches.
    e.im = c_.im_access * r.im_bank_accesses + c_.im_scrub_read * r.im_scrub_reads;
    e.dm = c_.dm_access * r.dm_bank_accesses + c_.dm_scrub_read * r.dm_scrub_reads;
    if (r.ecc) {
        // SEC-DED widens every bank access to the codeword width and
        // charges correction events their scrub energy (calibration.hpp).
        e.im *= c_.ecc_im_factor;
        e.dm *= c_.ecc_dm_factor;
        e.dm += c_.ecc_correction * r.ecc_corrections;
    }
    // Register-file protection rides on the core datapath row; checkpoint
    // traffic is DM writes to the protected state region.
    if (r.reg_protection == core::RegProtection::Parity) {
        e.cores += c_.reg_parity_per_op;
    } else if (r.reg_protection == core::RegProtection::Tmr) {
        e.cores += c_.reg_tmr_per_op;
    }
    e.dm += c_.checkpoint_word * r.checkpoint_words_per_op;
    e.dxbar = c_.dxbar_per_req * r.dxbar_requests *
              (is_proposed(arch_) ? c_.dxbar_broadcast_mult : 1.0);
    e.ixbar = ixbar_energy_per_req(arch_, c_) * r.ixbar_requests;
    if (r.xbar_self_check && r.ops_per_cycle > 0.0) {
        // The checker toggles every cycle it is armed, not per request.
        const double per_op = c_.xbar_selfcheck_cycle / r.ops_per_cycle;
        e.dxbar += per_op;
        if (is_proposed(arch_)) e.ixbar += per_op; // mc-ref has no I-Xbar
    }
    e.clock = is_proposed(arch_) ? c_.clock_proposed : c_.clock_ref;
    return e;
}

double PowerModel::max_throughput(const EventRates& r) const {
    return vf_.f_nominal() * r.ops_per_cycle;
}

OperatingPoint PowerModel::operating_point(const EventRates& r, double workload) const {
    ULPMC_EXPECTS(workload >= 0.0);
    ULPMC_EXPECTS(r.ops_per_cycle > 0.0);
    OperatingPoint op;
    op.f_hz = workload / r.ops_per_cycle;
    op.v = vf_.v_for_f(op.f_hz);
    ULPMC_ENSURES(!std::isnan(op.v)); // workload beyond the design's reach
    return op;
}

PowerBreakdown PowerModel::dynamic_power(const EventRates& r, double workload, double v) const {
    const PowerBreakdown e = energy_per_op(r);
    const double s = VfModel::energy_scale(v) * kappa_ * workload;
    PowerBreakdown p;
    p.cores = e.cores * s;
    p.im = e.im * s;
    p.dm = e.dm * s;
    p.dxbar = e.dxbar * s;
    p.ixbar = e.ixbar * s;
    p.clock = e.clock * s;
    return p;
}

PowerBreakdown PowerModel::leakage_power(const EventRates& r, double v) const {
    const AreaBreakdown a = area_of(arch_);
    const double lam_im = c_.leak_im_per_kge;
    const double lam_dm = lam_im * c_.leak_dm_ratio;
    const double lam_logic = lam_im * c_.leak_logic_ratio;
    const double s = VfModel::energy_scale(v) * kappa_;

    const double im_alive = static_cast<double>(r.im_banks_total - r.im_banks_gated) /
                            static_cast<double>(r.im_banks_total);

    PowerBreakdown p;
    p.cores = lam_logic * a.cores * s;
    p.im = lam_im * a.im * im_alive * s;
    p.dm = lam_dm * a.dm * s;
    p.dxbar = lam_logic * a.dxbar * s;
    p.ixbar = lam_logic * a.ixbar * s;
    p.clock = 0.0; // the clock tree's leakage is part of the logic above
    return p;
}

PowerModel::Report PowerModel::power_at(const EventRates& r, double workload) const {
    Report rep;
    rep.op = operating_point(r, workload);
    rep.dynamic = dynamic_power(r, workload, rep.op.v);
    rep.leakage = leakage_power(r, rep.op.v);
    rep.total = rep.dynamic.total() + rep.leakage.total();
    return rep;
}

} // namespace ulpmc::power
