// Voltage/frequency scaling model (paper §IV): alpha-power-law delay
// scaling with the supply limited to the threshold-region floor, and the
// paper's simplification that power scales with the square of the supply.
//
// Calibration detail (Figs. 5/6): the paper reports that ALL synthesized
// variants — from the speed-optimized 7.1 ns design to the area-optimized
// 20 ns one — deliver "around 10 MOps/s" once the supply reaches the
// threshold floor. Speed-optimized synthesis buys nominal-voltage speed
// but not near-threshold speed. We model this by giving each design its
// own alpha-power exponent, solved so that f(Vnom) = 1/clock_ns while
// f(Vmin) equals the common floor frequency of the 12 ns calibration
// design (83.3 MHz / 66.45).
#pragma once

namespace ulpmc::power {

/// The V/f model for one synthesized design (characterized by the clock
/// constraint it was synthesized for).
class VfModel {
public:
    /// `clock_ns` — the synthesis clock constraint; the design runs at
    /// 1/clock_ns at nominal voltage.
    explicit VfModel(double clock_ns);

    /// Maximum clock frequency [Hz] at supply `v` (clamped to the model's
    /// validity range [Vmin, Vnom]).
    double f_max(double v) const;

    /// Minimum supply able to sustain `f_hz`. Returns Vmin when the floor
    /// frequency already suffices (below it only frequency scaling is
    /// applied, per the paper), and NaN when f_hz exceeds f_max(Vnom).
    double v_for_f(double f_hz) const;

    /// Dynamic-energy / leakage scaling factor at supply `v`:
    /// (v / Vnom)^2 — the paper's stated square-law.
    static double energy_scale(double v);

    double clock_ns() const { return clock_ns_; }
    double f_nominal() const; ///< f_max at nominal voltage

    /// The common near-threshold floor frequency shared by all designs.
    static double f_floor();

    double alpha() const { return alpha_; }

private:
    double g(double v) const; ///< alpha-power law kernel (V-Vt)^a / V
    double clock_ns_;
    double alpha_;
};

} // namespace ulpmc::power
