// Deterministic synthetic multi-lead ECG generator.
//
// Substitution for the paper's clinical recordings (DESIGN.md §2): the
// benchmark's code path only needs signals with ECG-like morphology and a
// realistic amplitude distribution — the CS kernel is data-independent and
// the Huffman kernel needs a plausible symbol histogram. The generator
// synthesizes a P-QRS-T beat train (sum-of-Gaussians, McSharry-style) at
// 250 Hz with per-lead amplitude/polarity variation, baseline wander and
// additive noise, all driven by the seeded deterministic RNG.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace ulpmc::app {

/// Sampling rate used throughout the paper's benchmark.
inline constexpr double kEcgSampleRateHz = 250.0;

/// Samples per compression block per lead (paper §II).
inline constexpr std::size_t kEcgBlockSamples = 512;

/// Number of leads == number of cores (one lead per core).
inline constexpr unsigned kEcgLeads = 8;

/// Generator configuration.
struct EcgConfig {
    std::uint64_t seed = 1;
    double heart_rate_bpm = 72.0;
    double noise_rms = 4.0;          ///< additive Gaussian noise (LSBs)
    double baseline_amplitude = 20.0; ///< respiration wander (LSBs)
    int full_scale = 500;            ///< ~10-bit signed signal range
};

/// Synthesizes ECG leads. Output samples are signed and bounded by
/// +-full_scale (saturating), sized for direct use as TamaRISC data words.
class EcgGenerator {
public:
    explicit EcgGenerator(const EcgConfig& cfg = {});

    /// `n` samples of lead `lead` (0-based), starting at time 0. The same
    /// (seed, lead) pair always produces the same signal.
    std::vector<std::int16_t> lead(unsigned lead, std::size_t n) const;

    /// One full compression block for a lead.
    std::vector<std::int16_t> block(unsigned lead) const { return this->lead(lead, kEcgBlockSamples); }

    const EcgConfig& config() const { return cfg_; }

private:
    EcgConfig cfg_;
};

} // namespace ulpmc::app
