// Compressed sensing front end (paper §II, after Mamaghanian et al.,
// TBME'11): y = Phi * x with a sparse random +-1 sensing matrix achieving
// 50% compression of 512-sample blocks.
//
// The sensing matrix is stored exactly the way the TamaRISC kernel
// consumes it — a flat "random vector" of m*d 16-bit entries, each packing
// a column index (low 9 bits) and a sign (bit 15), read with a strictly
// linear access pattern. At the paper's dimensions (m=256, d=24) the
// vector is 6144 words = 12288 bytes, matching §II's footprint to the byte.
//
// The golden compressor here replicates the kernel's wrap-around 16-bit
// arithmetic bit-exactly, so host and cluster outputs can be compared
// word for word.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ulpmc::app {

/// Sensing matrix dimensions used by the paper's benchmark.
inline constexpr std::size_t kCsInputLen = 512;  ///< n: samples per block
inline constexpr std::size_t kCsOutputLen = 256; ///< m: measurements (50%)
inline constexpr std::size_t kCsTapsPerRow = 24; ///< d: nonzeros per row

/// Bit layout of one matrix entry.
inline constexpr Word kCsIndexMask = 0x01FF; ///< column index (0..511)
inline constexpr Word kCsSignBit = 0x8000;   ///< 1 => subtract the sample

/// Sparse random +-1 sensing matrix.
class CsMatrix {
public:
    /// Draws a fresh matrix: per row, `taps` distinct column indices with
    /// independent random signs. Deterministic in `seed`.
    CsMatrix(std::uint64_t seed, std::size_t rows = kCsOutputLen,
             std::size_t cols = kCsInputLen, std::size_t taps = kCsTapsPerRow);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t taps() const { return taps_; }

    /// The flat entry stream, row-major (what the kernel walks linearly).
    std::span<const Word> entries() const { return entries_; }

    /// Entry of row r, tap t.
    Word entry(std::size_t r, std::size_t t) const;

    /// Footprint in bytes (paper: 12288).
    std::size_t bytes() const { return entries_.size() * 2; }

private:
    std::size_t rows_, cols_, taps_;
    std::vector<Word> entries_;
};

/// Golden compression: y[r] = sum over taps of +-x[index], computed in
/// wrap-around 16-bit arithmetic exactly like the TamaRISC kernel.
std::vector<Word> cs_compress(const CsMatrix& m, std::span<const std::int16_t> x);

/// The benchmark's measurement-to-symbol quantizer: arithmetic shift right
/// by 6, masked to 9 bits (512 Huffman symbols).
inline constexpr int kCsSymbolShift = 6;
inline constexpr unsigned kCsSymbolCount = 512;
Word cs_quantize_symbol(Word y);

/// Quantizes a whole measurement vector.
std::vector<Word> cs_quantize(std::span<const Word> y);

} // namespace ulpmc::app
