#include "app/kernels.hpp"

#include "cluster/config.hpp"
#include "common/assert.hpp"
#include "isa/asm_builder.hpp"

namespace ulpmc::app {

using namespace ulpmc::isa;

namespace {

/// Emits the compressed-sensing kernel.
///
/// Register use: r0=0, r1=matrix ptr, r2=x base, r3=y ptr, r4=tap counter,
/// r5=accumulator, r6=matrix entry, r7=sample/temp, r8=index mask,
/// r9=sign mask, r10=row counter, r12=-15 (sign-extract shift),
/// r15=frame pointer (compiler-spill variant).
///
/// The inner loop has exactly one shared-memory read (the linear matrix
/// walk) and a period >= 8 instructions, so a 1-cycle start stagger makes
/// eight cores' shared reads hit disjoint cycles — mc-ref's conflict-free
/// schedule — while lockstep cores merge the read via broadcast on the
/// proposed designs. Control flow is fully input-independent (sign
/// handling is branchless), as the paper requires of the CS part.
///
/// In the default compiler-spill variant the loop counter lives in frame
/// slot 0 and the accumulator is written through to frame slot 1 every
/// iteration, mimicking the code the paper's CoSy-based C compiler emits;
/// this reproduces the paper's dynamic instruction count and its
/// private-dominated DM access mix (76% private / 24% shared, §III-D).
void emit_cs_kernel(AsmBuilder& b, const BenchmarkLayout& lay) {
    b.movi(8, kCsIndexMask);
    b.movi(12, 0xFFF1); // -15
    b.movi(1, lay.kMatrixBase);
    b.movi(2, lay.x_base());
    b.movi(3, lay.y_base());
    b.movi(10, static_cast<Word>(kCsOutputLen));
    if (lay.compiler_spills) b.movi(15, lay.frame_base());

    b.label("cs_row");
    b.movi(4, static_cast<Word>(kCsTapsPerRow));
    b.mov(dreg(5), sreg(0)); // acc = 0
    if (lay.compiler_spills) {
        b.mov(dind(15), sreg(4));    // frame[0] = tap counter
        b.mov(doff(15), sreg(0), 1); // frame[1] = acc
    }

    b.label("cs_tap");
    b.mov(dreg(6), spostinc(1));       // entry = *mat++          (shared)
    b.and_(dreg(7), sreg(6), sreg(8)); // column index
    b.add(dreg(7), sreg(7), sreg(2));  // &x[index]
    b.mov(dreg(7), sind(7));           // sample                  (private)
    b.sft(dreg(9), sreg(6), sreg(12)); // sign mask: 0 or 0xFFFF
    b.xor_(dreg(7), sreg(7), sreg(9)); // conditional negate...
    b.sub(dreg(7), sreg(7), sreg(9));  // ...(x ^ m) - m
    b.add(dreg(5), sreg(5), sreg(7));  // acc += value
    if (lay.compiler_spills) {
        b.mov(doff(15), sreg(5), 1); // write acc through to frame[1]
        b.mov(dreg(4), sind(15));    // reload tap counter
        b.sub(dreg(4), sreg(4), simm(1));
        b.mov(dind(15), sreg(4)); // spill tap counter
    } else {
        b.sub(dreg(4), sreg(4), simm(1));
    }
    b.bra(Cond::NE, "cs_tap");

    b.mov(dpostinc(3), sreg(5)); // y[row] = acc                  (private)
    b.sub(dreg(10), sreg(10), simm(1));
    b.bra(Cond::NE, "cs_row");
}

/// Emits the Huffman packer.
///
/// Register use: r0=0, r1=y ptr, r2=code LUT base, r3=len LUT base,
/// r4=symbol counter, r5=bit buffer (MSB-filled), r6=free bits,
/// r7=out ptr, r8=symbol, r9=0x1FF, r10=code, r11=len, r12/r14=temps,
/// r13=-6 (quantizer shift).
///
/// The fit/spill/flush decisions depend on the code lengths — the paper's
/// "short section of data-dependent program flow" that desynchronizes the
/// cores and exposes the IM organizations' different conflict behavior.
void emit_huffman_kernel(AsmBuilder& b, const BenchmarkLayout& lay) {
    b.movi(1, lay.y_base());
    b.movi(2, lay.code_lut());
    b.movi(3, lay.len_lut());
    b.movi(7, lay.out_base());
    b.movi(4, static_cast<Word>(kCsOutputLen));
    b.mov(dreg(5), sreg(0)); // bit buffer = 0
    b.movi(6, 16);           // free bits
    b.movi(9, kCsIndexMask);
    b.movi(13, 0xFFFA); // -6

    b.label("hf_sym");
    b.mov(dreg(8), spostinc(1));       // y value
    b.sft(dreg(8), sreg(8), sreg(13)); // >> 6 (arithmetic)
    b.and_(dreg(8), sreg(8), sreg(9)); // 9-bit symbol
    b.add(dreg(12), sreg(8), sreg(2));
    b.mov(dreg(10), sind(12)); // code = code_lut[sym]
    b.add(dreg(12), sreg(8), sreg(3));
    b.mov(dreg(11), sind(12)); // len = len_lut[sym]

    b.sub(dreg(12), sreg(6), sreg(11)); // free - len
    b.bra(Cond::LT, "hf_spill");
    // Fit: buffer |= code << (free - len).
    b.sft(dreg(14), sreg(10), sreg(12));
    b.or_(dreg(5), sreg(5), sreg(14));
    b.or_(dreg(6), sreg(12), simm(0)); // free -= len (sets Z)
    b.bra(Cond::NE, "hf_next");
    b.mov(dpostinc(7), sreg(5)); // word full: emit
    b.mov(dreg(5), sreg(0));
    b.movi(6, 16);
    b.bra(Cond::AL, "hf_next");

    b.label("hf_spill");
    // Spill: emit the word topped up with the code's high bits, then
    // start the next word with the remaining low bits, left-aligned.
    b.sft(dreg(14), sreg(10), sreg(12)); // code >> (len - free)
    b.or_(dreg(5), sreg(5), sreg(14));
    b.mov(dpostinc(7), sreg(5));
    b.movi(14, 16);
    b.add(dreg(6), sreg(14), sreg(12)); // free' = 16 + (free - len)
    b.sft(dreg(5), sreg(10), sreg(6));  // remainder << free'

    b.label("hf_next");
    b.sub(dreg(4), sreg(4), simm(1));
    b.bra(Cond::NE, "hf_sym");

    // Flush the partial tail word, if any.
    b.movi(14, 16);
    b.sub(dreg(12), sreg(6), sreg(14));
    b.bra(Cond::EQ, "hf_fin");
    b.mov(dpostinc(7), sreg(5));

    b.label("hf_fin");
    // Publish the produced word count for the radio/host.
    b.movi(14, lay.out_base());
    b.sub(dreg(12), sreg(7), sreg(14));
    b.movi(14, lay.out_count());
    b.mov(dind(14), sreg(12));
}

/// Emits the data image (shared matrix + LUTs, private template) common to
/// the single-shot and streaming programs.
void emit_common_data(AsmBuilder& b, const CsMatrix& matrix, const HuffmanTable& table,
                      const BenchmarkLayout& lay) {
    b.data_label("cs_matrix");
    b.words(matrix.entries());
    if (lay.luts_shared) {
        b.data_label("code_lut");
        b.words(table.code_lut());
        b.data_label("len_lut");
        const auto lens = table.len_lut();
        b.words(lens);
    }
    ULPMC_ASSERT(b.data_here() == lay.shared_words());

    // Private template: working buffers stay zero; in the private-LUT
    // variant the LUT images are linked at their private spot (the loader
    // replicates this template into every core's private banks).
    if (!lay.luts_shared) {
        b.space(lay.private_code_lut() - b.data_here());
        b.data_label("code_lut");
        b.words(table.code_lut());
        b.data_label("len_lut");
        const auto lens = table.len_lut();
        b.words(lens);
    }
}

/// Barrier arrival (store to the cluster's barrier register).
void emit_barrier(AsmBuilder& b) {
    b.movi(14, cluster::kBarrierAddr);
    b.mov(dind(14), sreg(0));
}

} // namespace

isa::Program build_ecg_program(const CsMatrix& matrix, const HuffmanTable& table,
                               const BenchmarkLayout& lay) {
    ULPMC_EXPECTS(matrix.entries().size() == BenchmarkLayout::kMatrixWords);
    ULPMC_EXPECTS(table.size() == kCsSymbolCount);

    AsmBuilder b;

    // ---- text --------------------------------------------------------------
    b.label("entry");
    emit_cs_kernel(b, lay);
    if (lay.use_barrier) {
        // Extension: hardware barrier resynchronizes the cores before the
        // data-dependent Huffman phase.
        emit_barrier(b);
    }
    emit_huffman_kernel(b, lay);
    b.hlt();

    emit_common_data(b, matrix, table, lay);

    isa::Program p = b.finish();
    p.entry = p.text_addr("entry");
    return p;
}

isa::Program build_streaming_program(const CsMatrix& matrix, const HuffmanTable& table,
                                     const BenchmarkLayout& lay, unsigned n_blocks) {
    ULPMC_EXPECTS(matrix.entries().size() == BenchmarkLayout::kMatrixWords);
    ULPMC_EXPECTS(table.size() == kCsSymbolCount);
    ULPMC_EXPECTS(n_blocks >= 1);

    AsmBuilder b;
    const Addr block_counter = static_cast<Addr>(lay.frame_base() + 2);

    b.label("entry");
    b.movi(14, block_counter);
    b.movi(13, static_cast<Word>(n_blocks));
    b.mov(dind(14), sreg(13));

    b.label("block");
    if (lay.use_barrier) emit_barrier(b); // resync at every block boundary
    emit_cs_kernel(b, lay);
    if (lay.use_barrier) emit_barrier(b);
    emit_huffman_kernel(b, lay);

    // Next block (the sensor DMA refreshing x[] between blocks is
    // abstracted: the kernel re-reads the same buffer).
    b.movi(14, block_counter);
    b.mov(dreg(13), sind(14));
    b.sub(dreg(13), sreg(13), simm(1));
    b.mov(dind(14), sreg(13));
    b.bra(Cond::NE, "block");
    b.hlt();

    emit_common_data(b, matrix, table, lay);

    isa::Program p = b.finish();
    p.entry = p.text_addr("entry");
    return p;
}

} // namespace ulpmc::app
