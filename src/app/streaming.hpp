// Streaming workload (extension): the realistic continuous-monitoring
// mode, where the node processes block after block indefinitely. The key
// architectural question it answers: does the broadcast advantage of the
// shared instruction memory survive once the data-dependent Huffman
// section has desynchronized the cores — and how much does the barrier
// (our hardware extension) help re-establish lockstep at every block
// boundary?
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "app/benchmark.hpp"
#include "cluster/ckpt_store.hpp"

namespace ulpmc::app {

/// Multi-block streaming run built on top of the single-block benchmark's
/// deterministic inputs and golden pipeline.
class StreamingBenchmark {
public:
    StreamingBenchmark(const BenchmarkOptions& opt, unsigned n_blocks);

    unsigned n_blocks() const { return n_blocks_; }
    const EcgBenchmark& base() const { return base_; }
    const isa::Program& program() const { return program_; }
    /// Shared decoded image of the multi-block program() (DESIGN.md §11).
    const std::shared_ptr<const isa::ProgramImage>& image() const { return image_; }

    struct Outcome {
        cluster::ClusterStats stats;
        bool verified = false;    ///< last block's outputs bit-exact
        double cycles_per_block = 0;
        /// Fraction of instruction fetches served without their own bank
        /// access (broadcast efficiency; 7/8 = perfect lockstep).
        double fetch_merge_ratio = 0;
    };

    Outcome run(cluster::ArchKind arch) const;
    Outcome run(const cluster::ClusterConfig& cfg) const;

    // ---- resilient mode (DESIGN.md §9) -------------------------------------
    // Block-boundary checkpoint/rollback: each ECG block is one recovery
    // unit. The monitor runs a block, verifies every live lead's output
    // against the golden pipeline (the role a firmware CRC over the block
    // result plays on silicon), and on corruption re-executes the block
    // from the checkpoint — the inputs are still in the sensor FIFO, so
    // "rollback" is simply re-running the block on a re-initialized
    // cluster. A lead that fails its retry too is treated as persistently
    // broken and dropped: the monitor degrades to the surviving leads
    // instead of dying (drop-one-lead graceful degradation).

    /// Injects faults into one block attempt. Called after the block's
    /// inputs are loaded and before it executes; it may advance the
    /// cluster partially (cl.run(cycle)) and deposit upsets through the
    /// cluster's injection hooks. `attempt` is 0 for the first execution,
    /// 1 for the rollback retry.
    using BlockFaultHook = std::function<void(cluster::Cluster& cl, unsigned block, unsigned attempt)>;

    struct ResilientOutcome {
        unsigned blocks = 0;          ///< blocks committed (all of n_blocks)
        unsigned rollbacks = 0;       ///< block re-executions from checkpoint
        unsigned leads_dropped = 0;
        std::vector<std::uint8_t> lead_alive; ///< per lead, 1 = still monitored
        bool all_surviving_verified = true;   ///< every committed block bit-exact
        Cycle total_cycles = 0;       ///< including rolled-back attempts
        Cycle clean_block_cycles = 0; ///< fault-free reference block
        std::uint64_t ecc_corrected = 0;
        std::uint64_t watchdog_trips = 0;
        /// Arbiter self-check events (grant flips suppressed + stuck RR
        /// pointers resynced) across both crossbars.
        std::uint64_t xbar_selfchecks = 0;
        std::uint64_t im_scrub_corrected = 0; ///< latent IM upsets drained by the walker

        // Filled by run_checkpointed() only (generalized checkpoint
        // service; zero in run_resilient()).
        std::uint64_t checkpoints = 0;     ///< snapshots taken by the service
        Cycle reexec_cycles = 0;           ///< cycles discarded by rollbacks
        std::uint64_t reg_parity_traps = 0;
        std::uint64_t reg_tmr_votes = 0;
        unsigned latent_reg_faults = 0;    ///< struck registers never observed

        /// Cycles credited from the memoized clean stream instead of being
        /// simulated (batched-engine campaigns; zero otherwise). Included
        /// in total_cycles — the outcome is exactly that of a full run.
        Cycle memoized_cycles = 0;

        // Filled when a durable record store backs the checkpoints
        // (run_checkpointed with DurableOptions; zero otherwise).
        std::uint64_t ckpt_stored_bytes = 0; ///< bytes the store actually wrote
        std::uint64_t ckpt_full_bytes = 0;   ///< full-snapshot-equivalent bytes
        std::uint64_t ckpt_crc_failures = 0; ///< stored records rejected on load
        std::uint64_t ckpt_fallbacks = 0;    ///< restores served by an older record
        bool storage_exhausted = false;      ///< every record failed: run fail-stopped
    };

    /// Tells the monitor which block attempts the fault hook perturbs.
    /// Contract: when it returns false for (block, attempt), `hook` is a
    /// no-op for that attempt — the attempt is then bit-identical to the
    /// fault-free reference (determinism) and may be credited instead of
    /// simulated. Strikes under the batched engine are sparse, so this is
    /// where campaign throughput comes from.
    using BlockPerturbed = std::function<bool(unsigned block, unsigned attempt)>;

    /// Runs all blocks in resilient mode under `cfg`, invoking `hook` (if
    /// set) on every block attempt.
    ResilientOutcome run_resilient(const cluster::ClusterConfig& cfg,
                                   const BlockFaultHook& hook = {}) const;
    ResilientOutcome run_resilient(cluster::ArchKind arch, const BlockFaultHook& hook = {}) const;

    /// Memoizing variant (batched engine): blocks whose first attempt is
    /// unperturbed are credited from the fault-free reference instead of
    /// simulated (run_resilient resets the cluster per block, so every
    /// unperturbed attempt IS the reference block). `known_clean_block`,
    /// when nonzero, replaces the calibration run of the reference block
    /// too (the caller has already validated it).
    ResilientOutcome run_resilient(const cluster::ClusterConfig& cfg, const BlockFaultHook& hook,
                                   const BlockPerturbed& perturbed,
                                   Cycle known_clean_block = 0) const;

    // ---- generalized checkpoint mode (DESIGN.md §9) ------------------------
    // Unlike run_resilient() — which re-initializes the cluster per block
    // and therefore only works because that firmware is block-stateless —
    // this mode runs ONE continuous cluster over the whole multi-block
    // program and recovers through the CheckpointRunner service: a
    // Cluster::save at every block boundary, Cluster::restore on a failed
    // verification. Cross-block architectural state (the firmware's block
    // counter, register files, arbitration state) survives every rollback.
    //
    // The hook contract differs in one way from run_resilient: cycles are
    // continuous, so a hook that wants to strike N cycles into the attempt
    // must advance relative to the current cycle
    // (cl.run(cl.stats().cycles + N)).

    /// Runs all blocks under the checkpoint service. Verification,
    /// rollback and drop-one-lead policy are as in run_resilient.
    ResilientOutcome run_checkpointed(const cluster::ClusterConfig& cfg,
                                      const BlockFaultHook& hook = {}) const;
    ResilientOutcome run_checkpointed(cluster::ArchKind arch,
                                      const BlockFaultHook& hook = {}) const;

    /// Durable checkpoint storage (DESIGN.md §9.6): route every boundary
    /// snapshot through a cluster::CheckpointStorage (CRC-verified
    /// keyframe+delta records) so rollbacks restore DECODED payload bytes
    /// and storage corruption becomes a real fault channel.
    struct DurableOptions {
        bool enabled = false;
        cluster::CkptStorageConfig storage{};
        /// Called after every committed checkpoint with the record store —
        /// the storage-fault campaign's strike surface.
        std::function<void(cluster::CheckpointStorage&, unsigned block)> strike;
    };

    /// run_checkpointed with a durable record store behind the service.
    /// A CRC-rejected newest record makes the rollback restore an OLDER
    /// block boundary (keyframe fallback); the monitor then rewinds its
    /// block loop and re-executes the discarded blocks — so storage loss
    /// costs re-execution, never correctness. When every stored record is
    /// corrupt, the run fail-stops (storage_exhausted).
    ResilientOutcome run_checkpointed(const cluster::ClusterConfig& cfg,
                                      const BlockFaultHook& hook,
                                      const DurableOptions& durable) const;

    /// Memoized clean stream for run_checkpointed (batched engine): one
    /// portable snapshot per block boundary of the fault-free continuous
    /// run, captured once per (campaign, thread) and then used to skip the
    /// clean prefix of every injection — and, when the injection's state
    /// converges back onto the fault-free stream (a successful rollback
    /// restores the clean checkpoint bit-exactly), its clean tail too.
    /// Opaque to callers; reusable across injections under the SAME
    /// configuration.
    class CheckpointedStreamMemo {
    public:
        CheckpointedStreamMemo() = default;
        bool valid() const { return valid_; }
        void invalidate() { valid_ = false; }

    private:
        friend class StreamingBenchmark;
        /// Cumulative clean-run outcome counters, sampled at each block's
        /// top and at the stream end — the tail credit for a rejoined
        /// injection is the difference of two of these.
        struct CleanCum {
            Cycle cycles = 0;
            std::uint64_t ecc = 0, parity = 0, tmr = 0, wd = 0, chk = 0, scrub = 0;
        };
        bool valid_ = false;
        std::vector<cluster::Cluster::Snapshot> boundary_; ///< per block, at its top
        std::vector<CleanCum> cum_;                        ///< per block, at its top
        CleanCum final_;                                   ///< after drain + commit
        unsigned final_latent_ = 0;                        ///< pending_reg_faults at end
        Cycle clean_block_cycles_ = 0;
    };

    /// Memoizing variant (batched engine): the first call under `memo`
    /// captures the fault-free stream's block-boundary snapshots; later
    /// calls restore the snapshot of the first perturbed block and only
    /// simulate from there — the skipped clean prefix is credited to
    /// memoized_cycles and the prefix's blocks/checkpoints to their
    /// counters. Exact by determinism: the clean prefix of every injection
    /// IS the fault-free stream. Symmetrically, once the last perturbed
    /// block commits and state_equals() proves the continuous state is
    /// back on the fault-free stream (rollback restored the clean
    /// checkpoint, or the upset was corrected/overwritten in place), the
    /// clean tail is credited the same way instead of being simulated.
    ResilientOutcome run_checkpointed(const cluster::ClusterConfig& cfg,
                                      const BlockFaultHook& hook, const BlockPerturbed& perturbed,
                                      CheckpointedStreamMemo& memo) const;

private:
    ResilientOutcome run_checkpointed_impl(const cluster::ClusterConfig& cfg,
                                           const BlockFaultHook& hook,
                                           const BlockPerturbed* perturbed,
                                           CheckpointedStreamMemo* memo, bool capture,
                                           const DurableOptions* durable = nullptr) const;

    EcgBenchmark base_;
    unsigned n_blocks_;
    isa::Program program_;
    std::shared_ptr<const isa::ProgramImage> image_;
};

} // namespace ulpmc::app
