// Streaming workload (extension): the realistic continuous-monitoring
// mode, where the node processes block after block indefinitely. The key
// architectural question it answers: does the broadcast advantage of the
// shared instruction memory survive once the data-dependent Huffman
// section has desynchronized the cores — and how much does the barrier
// (our hardware extension) help re-establish lockstep at every block
// boundary?
#pragma once

#include "app/benchmark.hpp"

namespace ulpmc::app {

/// Multi-block streaming run built on top of the single-block benchmark's
/// deterministic inputs and golden pipeline.
class StreamingBenchmark {
public:
    StreamingBenchmark(const BenchmarkOptions& opt, unsigned n_blocks);

    unsigned n_blocks() const { return n_blocks_; }
    const EcgBenchmark& base() const { return base_; }
    const isa::Program& program() const { return program_; }

    struct Outcome {
        cluster::ClusterStats stats;
        bool verified = false;    ///< last block's outputs bit-exact
        double cycles_per_block = 0;
        /// Fraction of instruction fetches served without their own bank
        /// access (broadcast efficiency; 7/8 = perfect lockstep).
        double fetch_merge_ratio = 0;
    };

    Outcome run(cluster::ArchKind arch) const;
    Outcome run(const cluster::ClusterConfig& cfg) const;

private:
    EcgBenchmark base_;
    unsigned n_blocks_;
    isa::Program program_;
};

} // namespace ulpmc::app
