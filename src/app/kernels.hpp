// The ECG benchmark program for TamaRISC: the compressed-sensing kernel
// followed by the Huffman packer, emitted through the AsmBuilder as one
// program image that every core executes (working addresses are virtual;
// the per-core MMU redirects them into each core's private banks).
//
// Data layout (virtual word addresses):
//   shared section:   [0, 6144)            CS matrix entry stream
//                     [6144, 7168)         Huffman LUTs (shared variant)
//   private section:  x[512] y[256] out[512] out_count pad LUTs[1024]
//
// The LUT placement is the paper's §IV-C2 experiment knob: shared LUTs
// suffer data-dependent bank conflicts from 8 cores indexing different
// symbols; private LUTs (the paper's chosen configuration) avoid them at
// the cost of replicated storage.
#pragma once

#include "app/cs.hpp"
#include "app/huffman.hpp"
#include "common/types.hpp"
#include "isa/program.hpp"
#include "mmu/mmu.hpp"

namespace ulpmc::app {

/// Address map of the benchmark (all sizes in 16-bit words).
struct BenchmarkLayout {
    bool luts_shared = false; ///< link LUTs into the shared section
    bool use_barrier = false; ///< resync cores between CS and Huffman (ext.)

    /// Emit the CS loop the way the paper's CoSy-based C compiler would —
    /// the inner-loop counter and the accumulator live in a stack-frame
    /// slot. This reproduces the paper's ~90k dynamic instructions per
    /// core and its private-heavy DM access mix; switching it off gives
    /// the hand-optimal register-allocated kernel (ablation).
    bool compiler_spills = true;

    static constexpr Addr kMatrixBase = 0;
    static constexpr Addr kMatrixWords = kCsOutputLen * kCsTapsPerRow; // 6144
    static constexpr Addr kPrivateWords = 3072;

    Addr shared_words() const {
        return kMatrixWords + (luts_shared ? 2 * kCsSymbolCount : 0);
    }
    Addr private_base() const { return shared_words(); }

    // Private-section objects (offsets chosen once, see header comment).
    Addr x_base() const { return private_base() + 0; }
    Addr y_base() const { return private_base() + 512; }
    Addr out_base() const { return private_base() + 768; }
    Addr out_count() const { return private_base() + 1280; }
    Addr frame_base() const { return private_base() + 1288; } ///< spill slots
    Addr private_code_lut() const { return private_base() + 1296; }
    Addr private_len_lut() const { return private_base() + 1808; }

    Addr code_lut() const {
        return luts_shared ? static_cast<Addr>(kMatrixWords) : private_code_lut();
    }
    Addr len_lut() const {
        return luts_shared ? static_cast<Addr>(kMatrixWords + kCsSymbolCount)
                           : private_len_lut();
    }

    /// The DmLayout handed to the cluster's MMUs.
    mmu::DmLayout dm_layout() const { return {shared_words(), kPrivateWords}; }
};

/// Emits the complete benchmark program (text + data image with the matrix
/// and the LUTs linked at their configured addresses).
isa::Program build_ecg_program(const CsMatrix& matrix, const HuffmanTable& table,
                               const BenchmarkLayout& layout);

/// Streaming variant (extension, DESIGN.md §7): processes `n_blocks`
/// consecutive blocks in a loop. With layout.use_barrier the cores
/// re-synchronize at every block boundary, so the broadcast win of the
/// proposed architectures survives the data-dependent Huffman section
/// block after block; without it, desynchronization accumulates.
/// The block counter lives in private frame slot 2; the sensor DMA
/// refreshing the x buffer between blocks is abstracted (the kernel
/// re-reads the same buffer, which is timing-equivalent).
isa::Program build_streaming_program(const CsMatrix& matrix, const HuffmanTable& table,
                                     const BenchmarkLayout& layout, unsigned n_blocks);

} // namespace ulpmc::app
