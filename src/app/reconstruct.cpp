#include "app/reconstruct.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ulpmc::app {

namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Solves the SPD system G z = b in place via Cholesky (G = L L^T).
/// G is n x n row-major and is overwritten with L. Returns false if G is
/// not (numerically) positive definite.
bool cholesky_solve(std::vector<double>& g, std::vector<double>& b, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = g[i * n + j];
            for (std::size_t k = 0; k < j; ++k) sum -= g[i * n + k] * g[j * n + k];
            if (i == j) {
                if (sum <= 1e-12) return false;
                g[i * n + i] = std::sqrt(sum);
            } else {
                g[i * n + j] = sum / g[j * n + j];
            }
        }
    }
    // Forward substitution L u = b.
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k) sum -= g[i * n + k] * b[k];
        b[i] = sum / g[i * n + i];
    }
    // Back substitution L^T z = u.
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = b[ii];
        for (std::size_t k = ii + 1; k < n; ++k) sum -= g[k * n + ii] * b[k];
        b[ii] = sum / g[ii * n + ii];
    }
    return true;
}

} // namespace

void haar_forward(std::span<double> x) {
    ULPMC_EXPECTS(is_pow2(x.size()));
    std::vector<double> tmp(x.size());
    for (std::size_t len = x.size(); len >= 2; len /= 2) {
        const std::size_t half = len / 2;
        for (std::size_t i = 0; i < half; ++i) {
            tmp[i] = (x[2 * i] + x[2 * i + 1]) * kInvSqrt2;        // approximation
            tmp[half + i] = (x[2 * i] - x[2 * i + 1]) * kInvSqrt2; // detail
        }
        std::copy(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(len), x.begin());
    }
}

void haar_inverse(std::span<double> x) {
    ULPMC_EXPECTS(is_pow2(x.size()));
    std::vector<double> tmp(x.size());
    for (std::size_t len = 2; len <= x.size(); len *= 2) {
        const std::size_t half = len / 2;
        for (std::size_t i = 0; i < half; ++i) {
            tmp[2 * i] = (x[i] + x[half + i]) * kInvSqrt2;
            tmp[2 * i + 1] = (x[i] - x[half + i]) * kInvSqrt2;
        }
        std::copy(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(len), x.begin());
    }
}

std::vector<double> dequantize_symbols(std::span<const Word> symbols) {
    std::vector<double> y;
    y.reserve(symbols.size());
    for (const Word s : symbols) {
        // Undo `sym = (y >> 6) & 0x1FF`: sign-extend the 9-bit symbol and
        // place the estimate mid-rise in the 64-wide bin.
        const int signed_sym = (s & 0x100) ? static_cast<int>(s) - 512 : static_cast<int>(s);
        y.push_back(static_cast<double>(signed_sym * 64 + 32));
    }
    return y;
}

std::vector<double> cs_reconstruct(const CsMatrix& matrix, std::span<const double> y,
                                   const OmpConfig& cfg) {
    const std::size_t m = matrix.rows();
    const std::size_t n = matrix.cols();
    ULPMC_EXPECTS(y.size() == m);
    ULPMC_EXPECTS(is_pow2(n));
    ULPMC_EXPECTS(cfg.max_support >= 1 && cfg.max_support <= m);

    // Effective dictionary A = Phi * Psi: column j is Phi applied to the
    // j-th Haar synthesis basis vector. Dense m x n, column-major.
    std::vector<double> A(m * n, 0.0);
    {
        std::vector<double> basis(n, 0.0);
        for (std::size_t j = 0; j < n; ++j) {
            std::fill(basis.begin(), basis.end(), 0.0);
            basis[j] = 1.0;
            haar_inverse(basis);
            // Sparse Phi application.
            for (std::size_t r = 0; r < m; ++r) {
                double acc = 0.0;
                for (std::size_t t = 0; t < matrix.taps(); ++t) {
                    const Word e = matrix.entry(r, t);
                    const double v = basis[e & kCsIndexMask];
                    acc += (e & kCsSignBit) ? -v : v;
                }
                A[j * m + r] = acc;
            }
        }
    }
    std::vector<double> col_norm(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t r = 0; r < m; ++r) s += A[j * m + r] * A[j * m + r];
        col_norm[j] = std::sqrt(std::max(s, 1e-12));
    }

    // --- OMP ------------------------------------------------------------
    std::vector<double> residual(y.begin(), y.end());
    double y_norm = 0.0;
    for (const double v : y) y_norm += v * v;
    y_norm = std::sqrt(std::max(y_norm, 1e-12));

    std::vector<std::size_t> support;
    std::vector<char> in_support(n, 0);
    std::vector<double> coeff;

    for (unsigned it = 0; it < cfg.max_support; ++it) {
        // Most correlated unused column.
        std::size_t best = n;
        double best_corr = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (in_support[j]) continue;
            double dot = 0.0;
            for (std::size_t r = 0; r < m; ++r) dot += A[j * m + r] * residual[r];
            const double corr = std::fabs(dot) / col_norm[j];
            if (corr > best_corr) {
                best_corr = corr;
                best = j;
            }
        }
        if (best == n || best_corr < 1e-9) break;
        support.push_back(best);
        in_support[best] = 1;

        // Least squares on the support: (A_S^T A_S) z = A_S^T y.
        const std::size_t k = support.size();
        std::vector<double> gram(k * k, 0.0);
        std::vector<double> rhs(k, 0.0);
        for (std::size_t a = 0; a < k; ++a) {
            const double* ca = &A[support[a] * m];
            for (std::size_t b = 0; b <= a; ++b) {
                const double* cb = &A[support[b] * m];
                double dot = 0.0;
                for (std::size_t r = 0; r < m; ++r) dot += ca[r] * cb[r];
                gram[a * k + b] = dot;
                gram[b * k + a] = dot;
            }
            double dot = 0.0;
            for (std::size_t r = 0; r < m; ++r) dot += ca[r] * y[r];
            rhs[a] = dot;
        }
        coeff = rhs;
        if (!cholesky_solve(gram, coeff, k)) {
            support.pop_back();
            in_support[best] = 0;
            break;
        }

        // Fresh residual.
        residual.assign(y.begin(), y.end());
        for (std::size_t a = 0; a < k; ++a) {
            const double* ca = &A[support[a] * m];
            for (std::size_t r = 0; r < m; ++r) residual[r] -= coeff[a] * ca[r];
        }
        double rn = 0.0;
        for (const double v : residual) rn += v * v;
        if (std::sqrt(rn) / y_norm < cfg.residual_tol) break;
    }

    // Synthesize x = Psi * s.
    std::vector<double> s(n, 0.0);
    for (std::size_t a = 0; a < support.size(); ++a) s[support[a]] = coeff[a];
    haar_inverse(s);
    return s;
}

double prd_percent(std::span<const std::int16_t> original, std::span<const double> recon) {
    ULPMC_EXPECTS(original.size() == recon.size());
    ULPMC_EXPECTS(!original.empty());
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < original.size(); ++i) {
        const double d = static_cast<double>(original[i]) - recon[i];
        num += d * d;
        den += static_cast<double>(original[i]) * original[i];
    }
    return 100.0 * std::sqrt(num / std::max(den, 1e-12));
}

} // namespace ulpmc::app
