#include "app/streaming.hpp"

#include <algorithm>

#include "cluster/checkpoint.hpp"
#include "cluster/pool.hpp"
#include "common/assert.hpp"

namespace ulpmc::app {

StreamingBenchmark::StreamingBenchmark(const BenchmarkOptions& opt, unsigned n_blocks)
    : base_(opt), n_blocks_(n_blocks),
      program_(build_streaming_program(base_.matrix(), base_.table(), base_.layout(), n_blocks)),
      image_(isa::ProgramImage::build(program_)) {
    ULPMC_EXPECTS(n_blocks >= 1);
}

StreamingBenchmark::Outcome StreamingBenchmark::run(cluster::ArchKind arch) const {
    return run(cluster::make_config(arch, base_.layout().dm_layout()));
}

StreamingBenchmark::Outcome StreamingBenchmark::run(const cluster::ClusterConfig& cfg_in) const {
    cluster::ClusterConfig cfg = cfg_in;
    cfg.barrier_enabled = base_.layout().use_barrier;

    cluster::Cluster& cl = cluster::pooled_cluster(cfg, image_);
    const auto& lay = base_.layout();
    base_.load_inputs(cl, cfg.cores);

    cl.run(static_cast<Cycle>(n_blocks_) * 400'000);

    Outcome out;
    out.stats = cl.stats();
    out.verified = true;
    for (unsigned p = 0; p < cfg.cores; ++p) {
        if (cl.core_trap(static_cast<CoreId>(p)) != core::Trap::None ||
            !cl.core_halted(static_cast<CoreId>(p))) {
            out.verified = false;
            continue;
        }
        // Every block recomputes the same outputs; verify the final state.
        const auto& golden = base_.golden_bitstream(p);
        const Word n_words = cl.dm_peek(static_cast<CoreId>(p), lay.out_count());
        if (n_words != golden.words.size()) {
            out.verified = false;
            continue;
        }
        for (Word i = 0; i < n_words; ++i) {
            if (cl.dm_peek(static_cast<CoreId>(p), static_cast<Addr>(lay.out_base() + i)) !=
                golden.words[i]) {
                out.verified = false;
                break;
            }
        }
    }

    out.cycles_per_block = static_cast<double>(out.stats.cycles) / n_blocks_;
    const std::uint64_t served = out.stats.ixbar.grants;
    out.fetch_merge_ratio =
        served == 0 ? 0.0
                    : static_cast<double>(out.stats.ixbar.broadcast_riders) /
                          static_cast<double>(served);
    return out;
}

StreamingBenchmark::ResilientOutcome
StreamingBenchmark::run_resilient(cluster::ArchKind arch, const BlockFaultHook& hook) const {
    return run_resilient(cluster::make_config(arch, base_.layout().dm_layout()), hook);
}

StreamingBenchmark::ResilientOutcome
StreamingBenchmark::run_resilient(const cluster::ClusterConfig& cfg_in,
                                  const BlockFaultHook& hook) const {
    return run_resilient(cfg_in, hook, {});
}

StreamingBenchmark::ResilientOutcome
StreamingBenchmark::run_resilient(const cluster::ClusterConfig& cfg_in, const BlockFaultHook& hook,
                                  const BlockPerturbed& perturbed,
                                  Cycle known_clean_block) const {
    cluster::ClusterConfig cfg = cfg_in;
    cfg.barrier_enabled = base_.layout().use_barrier;
    const auto& lay = base_.layout();

    // One block = one checkpoint interval, executed on the single-block
    // program; re-initializing the cluster from the program image IS the
    // rollback (block inputs are replayed from the sensor FIFO). One
    // cluster instance serves every attempt of every block: reset() reuses
    // its buffers, so the monitor's steady state allocates nothing.
    cluster::Cluster cl(cfg, base_.image());
    bool first_launch = true;
    const auto launch_block = [&]() -> cluster::Cluster& {
        if (!first_launch) cl.reset(cfg, base_.image());
        first_launch = false;
        base_.load_inputs(cl, cfg.cores);
        return cl;
    };
    const auto lead_ok = [&](const cluster::Cluster& c, unsigned p) {
        if (c.core_trap(static_cast<CoreId>(p)) != core::Trap::None ||
            !c.core_halted(static_cast<CoreId>(p))) {
            return false;
        }
        const auto& golden = base_.golden_bitstream(p);
        if (c.dm_peek(static_cast<CoreId>(p), lay.out_count()) != golden.words.size())
            return false;
        for (std::size_t i = 0; i < golden.words.size(); ++i) {
            if (c.dm_peek(static_cast<CoreId>(p), static_cast<Addr>(lay.out_base() + i)) !=
                golden.words[i]) {
                return false;
            }
        }
        return true;
    };

    ResilientOutcome out;
    out.lead_alive.assign(cfg.cores, 1);

    if (known_clean_block != 0) {
        // Caller has already calibrated (and validated) the reference
        // block — the batched campaign path, once per campaign.
        out.clean_block_cycles = known_clean_block;
    } else { // fault-free reference block: calibrates the per-attempt cycle budget
        cluster::Cluster& ref = launch_block();
        out.clean_block_cycles = ref.run();
        for (unsigned p = 0; p < cfg.cores; ++p) ULPMC_EXPECTS(lead_ok(ref, p));
    }
    // A wedged attempt must terminate: 4x the clean block plus the
    // watchdog window bounds every legitimate execution.
    const Cycle budget = 4 * out.clean_block_cycles + cfg.watchdog_cycles + 1000;

    for (unsigned block = 0; block < n_blocks_; ++block) {
        if (perturbed && !perturbed(block, 0)) {
            // Unperturbed first attempt: the cluster is re-initialized per
            // block, so this attempt is bit-identical to the fault-free
            // reference block — it verifies on every live lead and commits.
            // Credit it instead of simulating it (exact by determinism;
            // the clean block fires no protection events, so the
            // resilience counters gain nothing either).
            out.total_cycles += out.clean_block_cycles;
            out.memoized_cycles += out.clean_block_cycles;
            ++out.blocks;
            continue;
        }
        for (unsigned attempt = 0; attempt < 2; ++attempt) {
            cluster::Cluster& att = launch_block();
            if (hook) hook(att, block, attempt);
            att.run(budget);

            const auto& st = att.stats();
            out.total_cycles += st.cycles;
            out.ecc_corrected += st.ecc_corrected();
            out.watchdog_trips += st.watchdog_trips;
            out.xbar_selfchecks += st.ixbar.selfcheck_fixes + st.ixbar.selfcheck_resyncs +
                                   st.dxbar.selfcheck_fixes + st.dxbar.selfcheck_resyncs;
            out.im_scrub_corrected += st.im_scrub_corrected;

            std::vector<unsigned> corrupted;
            for (unsigned p = 0; p < cfg.cores; ++p) {
                if (out.lead_alive[p] && !lead_ok(att, p)) corrupted.push_back(p);
            }
            if (corrupted.empty()) break; // block verified: commit checkpoint
            if (attempt == 0) {
                ++out.rollbacks; // roll back to the checkpoint, re-execute
                continue;
            }
            // Retry failed too: the corruption is persistent — degrade by
            // dropping the broken leads, keep monitoring the rest.
            for (const unsigned p : corrupted) {
                out.lead_alive[p] = 0;
                ++out.leads_dropped;
            }
        }
        ++out.blocks;
    }

    // The final committed state must be bit-exact on every surviving lead;
    // re-verify via the last attempt's semantics: any lead still alive had
    // lead_ok() true when its block committed, so corruption can only show
    // as zero survivors.
    bool any_alive = false;
    for (const auto a : out.lead_alive) any_alive = any_alive || a != 0;
    out.all_surviving_verified = any_alive;
    return out;
}

StreamingBenchmark::ResilientOutcome
StreamingBenchmark::run_checkpointed(cluster::ArchKind arch, const BlockFaultHook& hook) const {
    return run_checkpointed(cluster::make_config(arch, base_.layout().dm_layout()), hook);
}

StreamingBenchmark::ResilientOutcome
StreamingBenchmark::run_checkpointed(const cluster::ClusterConfig& cfg_in,
                                     const BlockFaultHook& hook) const {
    return run_checkpointed_impl(cfg_in, hook, nullptr, nullptr, false);
}

StreamingBenchmark::ResilientOutcome
StreamingBenchmark::run_checkpointed(const cluster::ClusterConfig& cfg_in,
                                     const BlockFaultHook& hook,
                                     const DurableOptions& durable) const {
    return run_checkpointed_impl(cfg_in, hook, nullptr, nullptr, false, &durable);
}

StreamingBenchmark::ResilientOutcome
StreamingBenchmark::run_checkpointed(const cluster::ClusterConfig& cfg_in,
                                     const BlockFaultHook& hook, const BlockPerturbed& perturbed,
                                     CheckpointedStreamMemo& memo) const {
    if (!memo.valid_) {
        // Capture pass: one fault-free continuous run, snapshotted at
        // every block boundary. Amortized over the whole campaign shard
        // this thread processes.
        memo.boundary_.resize(n_blocks_);
        memo.cum_.resize(n_blocks_);
        const ResilientOutcome clean = run_checkpointed_impl(cfg_in, {}, nullptr, &memo, true);
        ULPMC_EXPECTS(clean.rollbacks == 0 && clean.leads_dropped == 0);
        memo.clean_block_cycles_ = clean.clean_block_cycles;
        memo.valid_ = true;
    }
    return run_checkpointed_impl(cfg_in, hook, &perturbed, &memo, false);
}

StreamingBenchmark::ResilientOutcome
StreamingBenchmark::run_checkpointed_impl(const cluster::ClusterConfig& cfg_in,
                                          const BlockFaultHook& hook,
                                          const BlockPerturbed* perturbed,
                                          CheckpointedStreamMemo* memo, bool capture,
                                          const DurableOptions* durable) const {
    const bool durable_on = durable != nullptr && durable->enabled;
    // The memoized clean stream assumes every rollback restores the block
    // being retried; keyframe fallback breaks that, so durable storage is
    // a trace-path feature.
    ULPMC_EXPECTS(!(durable_on && (memo != nullptr || capture)));
    cluster::ClusterConfig cfg = cfg_in;
    cfg.barrier_enabled = base_.layout().use_barrier;
    const auto& lay = base_.layout();

    ResilientOutcome out;
    out.lead_alive.assign(cfg.cores, 1);

    if (memo && memo->valid_) {
        out.clean_block_cycles = memo->clean_block_cycles_;
    } else { // fault-free single-block reference: calibrates the attempt budget
        cluster::Cluster& ref = cluster::pooled_cluster(cfg, base_.image());
        base_.load_inputs(ref, cfg.cores);
        out.clean_block_cycles = ref.run();
    }
    const Cycle budget = 4 * out.clean_block_cycles + cfg.watchdog_cycles + 1000;
    // Completion is polled at slice granularity. The slice must be much
    // shorter than the CS kernel: after the last lead finishes block b the
    // cluster overshoots by at most one slice into block b+1, and block
    // b's outputs are only safe to verify while b+1 is still inside CS
    // (Huffman is what rewrites the output window). The first slice also
    // guarantees the firmware has initialized its block counter before
    // the counter is ever consulted.
    const Cycle slice = std::max<Cycle>(out.clean_block_cycles / 64, 64);
    const auto counter_addr = static_cast<Addr>(lay.frame_base() + 2);

    // ONE cluster instance runs the whole multi-block program; the
    // checkpoint service snapshots it at every block boundary.
    cluster::Cluster cl(cfg, image_);
    base_.load_inputs(cl, cfg.cores);
    cluster::CheckpointRunner runner(cl);
    // Explicit block-boundary checkpoints; per-lead verification and the
    // drop policy live here, so the runner's global parity guard is off
    // (a latent parity upset is attributed to its lead below instead).
    runner.reset({.interval = 0,
                  .max_retries = 2,
                  .parity_guard = false,
                  .delta_store = durable_on,
                  .storage = durable_on ? durable->storage : cluster::CkptStorageConfig{}});
    // Maps each block boundary to its checkpoint cycle, so a keyframe
    // fallback (which restores an OLDER boundary) can be translated back
    // into the block index to rewind to.
    std::vector<Cycle> boundary_cycle(durable_on ? n_blocks_ : 0, 0);

    // Block `block` is finished on lead p once its countdown dropped to
    // n_blocks - (block+1) (or the core halted after the last block).
    const auto block_remaining = [&](unsigned block) {
        return static_cast<Word>(n_blocks_ - (block + 1));
    };
    const auto lead_failed = [&](unsigned p, unsigned block) {
        const auto pid = static_cast<CoreId>(p);
        if (cl.core_trap(pid) != core::Trap::None) return true;
        if (cl.reg_parity_pending(pid)) return true; // latched detectable upset
        const bool last = block + 1 == n_blocks_;
        if (cl.core_halted(pid)) {
            if (!last) return true; // halted early: control flow corrupted
        } else if (cl.dm_peek(pid, counter_addr) > block_remaining(block)) {
            return true; // never finished the block inside the budget
        }
        const auto& golden = base_.golden_bitstream(p);
        if (cl.dm_peek(pid, lay.out_count()) != golden.words.size()) return true;
        for (std::size_t i = 0; i < golden.words.size(); ++i) {
            if (cl.dm_peek(pid, static_cast<Addr>(lay.out_base() + i)) != golden.words[i])
                return true;
        }
        return false;
    };
    const auto settled = [&](unsigned block) {
        for (unsigned p = 0; p < cfg.cores; ++p) {
            if (!out.lead_alive[p]) continue;
            const auto pid = static_cast<CoreId>(p);
            if (cl.core_trap(pid) != core::Trap::None || cl.core_halted(pid)) continue;
            if (cl.dm_peek(pid, counter_addr) > block_remaining(block)) return false;
        }
        return true;
    };
    const auto any_active = [&] {
        for (unsigned p = 0; p < cfg.cores; ++p) {
            const auto pid = static_cast<CoreId>(p);
            if (cl.core_trap(pid) == core::Trap::None && !cl.core_halted(pid)) return true;
        }
        return false;
    };

    // Resilience counters accumulate across attempts, but restore() rolls
    // the cluster's own statistics back with everything else — so each
    // attempt's delta is banked against a baseline sampled at its start.
    std::uint64_t base_ecc = 0, base_parity = 0, base_tmr = 0, base_wd = 0;
    std::uint64_t base_chk = 0, base_scrub = 0;
    const auto selfchecks = [&] {
        const auto& st = cl.stats();
        return st.ixbar.selfcheck_fixes + st.ixbar.selfcheck_resyncs + st.dxbar.selfcheck_fixes +
               st.dxbar.selfcheck_resyncs;
    };
    const auto sample_base = [&] {
        const auto& st = cl.stats();
        base_ecc = st.ecc_corrected();
        base_parity = st.reg_parity_traps;
        base_tmr = st.reg_tmr_votes;
        base_wd = st.watchdog_trips;
        base_chk = selfchecks();
        base_scrub = st.im_scrub_corrected;
    };
    const auto bank_deltas = [&] {
        const auto& st = cl.stats();
        out.ecc_corrected += st.ecc_corrected() - base_ecc;
        out.reg_parity_traps += st.reg_parity_traps - base_parity;
        out.reg_tmr_votes += st.reg_tmr_votes - base_tmr;
        out.watchdog_trips += st.watchdog_trips - base_wd;
        out.xbar_selfchecks += selfchecks() - base_chk;
        out.im_scrub_corrected += st.im_scrub_corrected - base_scrub;
    };

    // Memoized replay: the injection's clean prefix — every block before
    // the first perturbed one — IS the fault-free stream, so restore that
    // block's boundary snapshot (stats and all) instead of simulating the
    // prefix. Exact: the restored state, the committed-block count and the
    // later lead_failed() block arithmetic all line up by determinism.
    const bool memoized = !capture && memo && memo->valid_ && perturbed && *perturbed;
    unsigned start_block = 0;
    if (memoized) {
        while (start_block + 1 < n_blocks_ && !(*perturbed)(start_block, 0)) ++start_block;
        if (start_block > 0) {
            cl.restore(memo->boundary_[start_block]);
            out.memoized_cycles = cl.stats().cycles;
            out.blocks = start_block;
        }
    }

    // Tail rejoin (DESIGN.md §11): after the last perturbed block commits,
    // the remaining attempts are by contract a no-op for the hook — so if
    // the continuous state has converged back onto the fault-free stream
    // (a rollback restored the clean checkpoint, or the upset was ECC-
    // corrected / overwritten in place), the tail IS the memoized clean
    // run. state_equals() at the next boundary is the proof; divergent
    // state (latent upsets, dropped leads) simulates the tail as before.
    unsigned last_perturbed = 0;
    if (memoized) {
        for (unsigned b = 0; b < n_blocks_; ++b)
            if ((*perturbed)(b, 0) || (*perturbed)(b, 1)) last_perturbed = b;
    }
    const auto clean_cum_now = [&] {
        return CheckpointedStreamMemo::CleanCum{
            cl.stats().cycles,        out.ecc_corrected,   out.reg_parity_traps,
            out.reg_tmr_votes,        out.watchdog_trips,  out.xbar_selfchecks,
            out.im_scrub_corrected};
    };
    Cycle tail_cycles = 0;
    std::uint64_t tail_checkpoints = 0;
    bool tail_skipped = false;

    std::vector<unsigned> corrupted;
    for (unsigned block = start_block; block < n_blocks_;) {
        if (capture) {
            cl.save(memo->boundary_[block]);
            memo->cum_[block] = clean_cum_now();
        }
        // Block boundary = recovery point. The runner owns the pre-save
        // register scrub (checkpoint() sweeps the files through the
        // protection layer before saving — DESIGN.md §9), so the base is
        // sampled first: the scrub's TMR votes belong to this block's
        // banked delta, exactly like the per-attempt repairs used to.
        sample_base();
        runner.checkpoint();
        if (durable_on) {
            boundary_cycle[block] = runner.checkpoint_cycle();
            if (durable->strike) durable->strike(runner.storage(), block);
        }
        // Tail rejoin is tested AFTER the checkpoint: the service's sweep
        // is what repairs a protected register (TMR vote, parity scrub),
        // so a corrected strike converges exactly here — and on clean
        // state the sweep is architecturally a no-op, which is what makes
        // the pre-checkpoint boundary snapshot the right reference.
        if (memoized && block > last_perturbed && cl.state_equals(memo->boundary_[block])) {
            bank_deltas(); // the sweep's own repairs belong to this injection
            const auto& at = memo->cum_[block];
            const auto& end = memo->final_;
            tail_cycles = end.cycles - at.cycles;
            out.memoized_cycles += tail_cycles;
            out.ecc_corrected += end.ecc - at.ecc;
            out.reg_parity_traps += end.parity - at.parity;
            out.reg_tmr_votes += end.tmr - at.tmr;
            out.watchdog_trips += end.wd - at.wd;
            out.xbar_selfchecks += end.chk - at.chk;
            out.im_scrub_corrected += end.scrub - at.scrub;
            // Clean tail: one checkpoint per remaining block plus the
            // final stream-commit checkpoint; no rollbacks, no drops.
            tail_checkpoints = n_blocks_ - block;
            out.blocks = n_blocks_;
            tail_skipped = true;
            break;
        }
        bool rewound = false;
        for (unsigned attempt = 0; attempt < 2; ++attempt) {
            if (attempt > 0) sample_base(); // rollback rewound the counters
            if (hook) hook(cl, block, attempt);
            const Cycle limit = runner.checkpoint_cycle() + budget;
            do {
                cl.run(std::min(limit, cl.stats().cycles + slice));
            } while (cl.stats().cycles < limit && any_active() && !settled(block));

            bank_deltas();
            corrupted.clear();
            for (unsigned p = 0; p < cfg.cores; ++p) {
                if (out.lead_alive[p] && lead_failed(p, block)) corrupted.push_back(p);
            }
            if (corrupted.empty()) break; // block verified: commit
            if (attempt == 0) {
                const std::uint64_t fb0 =
                    durable_on ? runner.storage().stats().keyframe_fallbacks : 0;
                runner.rollback(); // re-execute the block from its checkpoint
                if (durable_on && runner.stats().gave_up) {
                    // Every stored record failed verification: a detected,
                    // unrecoverable storage loss. Fail stop.
                    out.storage_exhausted = true;
                    break;
                }
                if (durable_on && runner.storage().stats().keyframe_fallbacks > fb0) {
                    // CRC rejected the newest record(s): the restore landed
                    // on an OLDER boundary. Rewind the block loop there and
                    // re-execute — the discarded commits come off the count
                    // and are re-earned.
                    unsigned b = block;
                    while (b > 0 && boundary_cycle[b] != runner.checkpoint_cycle()) --b;
                    out.blocks -= block - b;
                    block = b;
                    rewound = true;
                    break;
                }
                continue;
            }
            // Retry failed too: persistent corruption — degrade by dropping
            // the broken leads, keep monitoring the rest.
            for (const unsigned p : corrupted) {
                out.lead_alive[p] = 0;
                ++out.leads_dropped;
            }
        }
        if (out.storage_exhausted) break;
        if (rewound) continue; // loop top re-checkpoints the restored state
        ++out.blocks;
        ++block;
    }

    if (!tail_skipped && !out.storage_exhausted) {
        // Drain: let the last block's stragglers reach their hlt (a dropped
        // lead that diverged is reined in by the watchdog).
        const Cycle drain_limit = cl.stats().cycles + cfg.watchdog_cycles + 1000;
        sample_base();
        while (any_active() && cl.stats().cycles < drain_limit)
            cl.run(std::min(drain_limit, cl.stats().cycles + slice));
        // Stream commit point: one final checkpoint scrubs (and under TMR
        // vote-repairs) upsets deposited during the last block, so the run
        // ends with clean architectural state — previously the job of the
        // now-removed per-attempt scrub call.
        runner.checkpoint();
        bank_deltas();
    }

    out.rollbacks = static_cast<unsigned>(runner.stats().rollbacks);
    // The skipped prefix took one (clean) checkpoint per block boundary,
    // the credited tail one per remaining block plus the commit point.
    out.checkpoints = runner.stats().checkpoints + start_block + tail_checkpoints;
    out.reexec_cycles = runner.stats().reexec_cycles;
    // restore() brought the prefix's cycle counter along, so the total
    // already includes the memoized prefix; the credited tail is added.
    out.total_cycles = cl.stats().cycles + runner.stats().reexec_cycles + tail_cycles;
    out.latent_reg_faults = tail_skipped ? memo->final_latent_ : cl.pending_reg_faults();
    if (durable_on) {
        const cluster::CkptStorageStats& ss = runner.storage().stats();
        out.ckpt_stored_bytes = ss.stored_bytes;
        out.ckpt_full_bytes = ss.full_equiv_bytes;
        out.ckpt_crc_failures = ss.crc_failures;
        out.ckpt_fallbacks = ss.keyframe_fallbacks;
    }

    if (capture) {
        memo->final_ = clean_cum_now();
        memo->final_latent_ = cl.pending_reg_faults();
    }

    bool any_alive = false;
    for (const auto a : out.lead_alive) any_alive = any_alive || a != 0;
    out.all_surviving_verified = any_alive && !out.storage_exhausted;
    return out;
}

} // namespace ulpmc::app
