#include "app/streaming.hpp"

#include "cluster/pool.hpp"
#include "common/assert.hpp"

namespace ulpmc::app {

StreamingBenchmark::StreamingBenchmark(const BenchmarkOptions& opt, unsigned n_blocks)
    : base_(opt), n_blocks_(n_blocks),
      program_(build_streaming_program(base_.matrix(), base_.table(), base_.layout(), n_blocks)) {
    ULPMC_EXPECTS(n_blocks >= 1);
}

StreamingBenchmark::Outcome StreamingBenchmark::run(cluster::ArchKind arch) const {
    return run(cluster::make_config(arch, base_.layout().dm_layout()));
}

StreamingBenchmark::Outcome StreamingBenchmark::run(const cluster::ClusterConfig& cfg_in) const {
    cluster::ClusterConfig cfg = cfg_in;
    cfg.barrier_enabled = base_.layout().use_barrier;

    cluster::Cluster& cl = cluster::pooled_cluster(cfg, program_);
    const auto& lay = base_.layout();
    base_.load_inputs(cl, cfg.cores);

    cl.run(static_cast<Cycle>(n_blocks_) * 400'000);

    Outcome out;
    out.stats = cl.stats();
    out.verified = true;
    for (unsigned p = 0; p < cfg.cores; ++p) {
        if (cl.core_trap(static_cast<CoreId>(p)) != core::Trap::None ||
            !cl.core_halted(static_cast<CoreId>(p))) {
            out.verified = false;
            continue;
        }
        // Every block recomputes the same outputs; verify the final state.
        const auto& golden = base_.golden_bitstream(p);
        const Word n_words = cl.dm_peek(static_cast<CoreId>(p), lay.out_count());
        if (n_words != golden.words.size()) {
            out.verified = false;
            continue;
        }
        for (Word i = 0; i < n_words; ++i) {
            if (cl.dm_peek(static_cast<CoreId>(p), static_cast<Addr>(lay.out_base() + i)) !=
                golden.words[i]) {
                out.verified = false;
                break;
            }
        }
    }

    out.cycles_per_block = static_cast<double>(out.stats.cycles) / n_blocks_;
    const std::uint64_t served = out.stats.ixbar.grants;
    out.fetch_merge_ratio =
        served == 0 ? 0.0
                    : static_cast<double>(out.stats.ixbar.broadcast_riders) /
                          static_cast<double>(served);
    return out;
}

StreamingBenchmark::ResilientOutcome
StreamingBenchmark::run_resilient(cluster::ArchKind arch, const BlockFaultHook& hook) const {
    return run_resilient(cluster::make_config(arch, base_.layout().dm_layout()), hook);
}

StreamingBenchmark::ResilientOutcome
StreamingBenchmark::run_resilient(const cluster::ClusterConfig& cfg_in,
                                  const BlockFaultHook& hook) const {
    cluster::ClusterConfig cfg = cfg_in;
    cfg.barrier_enabled = base_.layout().use_barrier;
    const auto& lay = base_.layout();

    // One block = one checkpoint interval, executed on the single-block
    // program; re-initializing the cluster from the program image IS the
    // rollback (block inputs are replayed from the sensor FIFO). One
    // cluster instance serves every attempt of every block: reset() reuses
    // its buffers, so the monitor's steady state allocates nothing.
    cluster::Cluster cl(cfg, base_.program());
    bool first_launch = true;
    const auto launch_block = [&]() -> cluster::Cluster& {
        if (!first_launch) cl.reset(cfg, base_.program());
        first_launch = false;
        base_.load_inputs(cl, cfg.cores);
        return cl;
    };
    const auto lead_ok = [&](const cluster::Cluster& c, unsigned p) {
        if (c.core_trap(static_cast<CoreId>(p)) != core::Trap::None ||
            !c.core_halted(static_cast<CoreId>(p))) {
            return false;
        }
        const auto& golden = base_.golden_bitstream(p);
        if (c.dm_peek(static_cast<CoreId>(p), lay.out_count()) != golden.words.size())
            return false;
        for (std::size_t i = 0; i < golden.words.size(); ++i) {
            if (c.dm_peek(static_cast<CoreId>(p), static_cast<Addr>(lay.out_base() + i)) !=
                golden.words[i]) {
                return false;
            }
        }
        return true;
    };

    ResilientOutcome out;
    out.lead_alive.assign(cfg.cores, 1);

    { // fault-free reference block: calibrates the per-attempt cycle budget
        cluster::Cluster& ref = launch_block();
        out.clean_block_cycles = ref.run();
        for (unsigned p = 0; p < cfg.cores; ++p) ULPMC_EXPECTS(lead_ok(ref, p));
    }
    // A wedged attempt must terminate: 4x the clean block plus the
    // watchdog window bounds every legitimate execution.
    const Cycle budget = 4 * out.clean_block_cycles + cfg.watchdog_cycles + 1000;

    for (unsigned block = 0; block < n_blocks_; ++block) {
        for (unsigned attempt = 0; attempt < 2; ++attempt) {
            cluster::Cluster& att = launch_block();
            if (hook) hook(att, block, attempt);
            att.run(budget);

            const auto& st = att.stats();
            out.total_cycles += st.cycles;
            out.ecc_corrected += st.ecc_corrected();
            out.watchdog_trips += st.watchdog_trips;

            std::vector<unsigned> corrupted;
            for (unsigned p = 0; p < cfg.cores; ++p) {
                if (out.lead_alive[p] && !lead_ok(att, p)) corrupted.push_back(p);
            }
            if (corrupted.empty()) break; // block verified: commit checkpoint
            if (attempt == 0) {
                ++out.rollbacks; // roll back to the checkpoint, re-execute
                continue;
            }
            // Retry failed too: the corruption is persistent — degrade by
            // dropping the broken leads, keep monitoring the rest.
            for (const unsigned p : corrupted) {
                out.lead_alive[p] = 0;
                ++out.leads_dropped;
            }
        }
        ++out.blocks;
    }

    // The final committed state must be bit-exact on every surviving lead;
    // re-verify via the last attempt's semantics: any lead still alive had
    // lead_ok() true when its block committed, so corruption can only show
    // as zero survivors.
    bool any_alive = false;
    for (const auto a : out.lead_alive) any_alive = any_alive || a != 0;
    out.all_surviving_verified = any_alive;
    return out;
}

} // namespace ulpmc::app
