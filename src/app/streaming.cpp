#include "app/streaming.hpp"

#include "common/assert.hpp"

namespace ulpmc::app {

StreamingBenchmark::StreamingBenchmark(const BenchmarkOptions& opt, unsigned n_blocks)
    : base_(opt), n_blocks_(n_blocks),
      program_(build_streaming_program(base_.matrix(), base_.table(), base_.layout(), n_blocks)) {
    ULPMC_EXPECTS(n_blocks >= 1);
}

StreamingBenchmark::Outcome StreamingBenchmark::run(cluster::ArchKind arch) const {
    return run(cluster::make_config(arch, base_.layout().dm_layout()));
}

StreamingBenchmark::Outcome StreamingBenchmark::run(const cluster::ClusterConfig& cfg_in) const {
    cluster::ClusterConfig cfg = cfg_in;
    cfg.barrier_enabled = base_.layout().use_barrier;

    cluster::Cluster cl(cfg, program_);
    const auto& lay = base_.layout();
    for (unsigned p = 0; p < cfg.cores; ++p) {
        const auto& x = base_.lead_samples(p);
        for (std::size_t i = 0; i < x.size(); ++i) {
            cl.dm_poke(static_cast<CoreId>(p), static_cast<Addr>(lay.x_base() + i),
                       static_cast<Word>(x[i]));
        }
    }

    cl.run(static_cast<Cycle>(n_blocks_) * 400'000);

    Outcome out;
    out.stats = cl.stats();
    out.verified = true;
    for (unsigned p = 0; p < cfg.cores; ++p) {
        if (cl.core_trap(static_cast<CoreId>(p)) != core::Trap::None ||
            !cl.core_halted(static_cast<CoreId>(p))) {
            out.verified = false;
            continue;
        }
        // Every block recomputes the same outputs; verify the final state.
        const auto& golden = base_.golden_bitstream(p);
        const Word n_words = cl.dm_peek(static_cast<CoreId>(p), lay.out_count());
        if (n_words != golden.words.size()) {
            out.verified = false;
            continue;
        }
        for (Word i = 0; i < n_words; ++i) {
            if (cl.dm_peek(static_cast<CoreId>(p), static_cast<Addr>(lay.out_base() + i)) !=
                golden.words[i]) {
                out.verified = false;
                break;
            }
        }
    }

    out.cycles_per_block = static_cast<double>(out.stats.cycles) / n_blocks_;
    const std::uint64_t served = out.stats.ixbar.grants;
    out.fetch_merge_ratio =
        served == 0 ? 0.0
                    : static_cast<double>(out.stats.ixbar.broadcast_riders) /
                          static_cast<double>(served);
    return out;
}

} // namespace ulpmc::app
