#include "app/benchmark.hpp"

#include <array>

#include "cluster/pool.hpp"
#include "common/assert.hpp"

namespace ulpmc::app {

namespace {

std::vector<std::vector<std::int16_t>> make_leads(std::uint64_t seed) {
    EcgConfig cfg;
    cfg.seed = seed;
    const EcgGenerator gen(cfg);
    std::vector<std::vector<std::int16_t>> leads;
    leads.reserve(kEcgLeads);
    for (unsigned l = 0; l < kEcgLeads; ++l) leads.push_back(gen.block(l));
    return leads;
}

std::vector<std::vector<Word>> compress_all(const CsMatrix& m,
                                            const std::vector<std::vector<std::int16_t>>& leads) {
    std::vector<std::vector<Word>> y;
    y.reserve(leads.size());
    for (const auto& x : leads) y.push_back(cs_compress(m, x));
    return y;
}

std::vector<std::vector<Word>> quantize_all(const std::vector<std::vector<Word>>& ys) {
    std::vector<std::vector<Word>> out;
    out.reserve(ys.size());
    for (const auto& y : ys) out.push_back(cs_quantize(y));
    return out;
}

HuffmanTable train_table(const std::vector<std::vector<Word>>& symbol_sets) {
    // Train the code on the benchmark's own symbol statistics — the role
    // the paper's offline profiling plays when the LUT ROMs are generated.
    std::vector<std::uint64_t> freqs(kCsSymbolCount, 0);
    for (const auto& syms : symbol_sets)
        for (const Word s : syms) ++freqs[s];
    return HuffmanTable(freqs);
}

std::vector<BitStream> encode_all(const HuffmanTable& t,
                                  const std::vector<std::vector<Word>>& symbol_sets) {
    std::vector<BitStream> out;
    out.reserve(symbol_sets.size());
    for (const auto& syms : symbol_sets) out.push_back(huffman_encode(t, syms));
    return out;
}

} // namespace

EcgBenchmark::EcgBenchmark(const BenchmarkOptions& opt)
    : opt_(opt), layout_{.luts_shared = opt.luts_shared, .use_barrier = opt.use_barrier,
                         .compiler_spills = opt.compiler_spills},
      matrix_(opt.seed), leads_(make_leads(opt.seed)), golden_y_(compress_all(matrix_, leads_)),
      golden_sym_(quantize_all(golden_y_)), table_(train_table(golden_sym_)),
      golden_bits_(encode_all(table_, golden_sym_)),
      program_(build_ecg_program(matrix_, table_, layout_)),
      image_(isa::ProgramImage::build(program_)) {}

const std::vector<std::int16_t>& EcgBenchmark::lead_samples(unsigned lead) const {
    ULPMC_EXPECTS(lead < leads_.size());
    return leads_[lead];
}

const std::vector<Word>& EcgBenchmark::golden_measurements(unsigned lead) const {
    ULPMC_EXPECTS(lead < golden_y_.size());
    return golden_y_[lead];
}

const std::vector<Word>& EcgBenchmark::golden_symbols(unsigned lead) const {
    ULPMC_EXPECTS(lead < golden_sym_.size());
    return golden_sym_[lead];
}

const BitStream& EcgBenchmark::golden_bitstream(unsigned lead) const {
    ULPMC_EXPECTS(lead < golden_bits_.size());
    return golden_bits_[lead];
}

EcgBenchmark::Outcome EcgBenchmark::run(cluster::ArchKind arch) const {
    return run(cluster::make_config(arch, layout_.dm_layout()));
}

void EcgBenchmark::load_inputs(cluster::Cluster& cl, unsigned cores) const {
    for (unsigned p = 0; p < cores; ++p) {
        const auto& x = leads_[p];
        for (std::size_t i = 0; i < x.size(); ++i) {
            cl.dm_poke(static_cast<CoreId>(p), static_cast<Addr>(layout_.x_base() + i),
                       static_cast<Word>(x[i]));
        }
    }
}

EcgBenchmark::Outcome EcgBenchmark::run(const cluster::ClusterConfig& cfg_in) const {
    cluster::ClusterConfig cfg = cfg_in;
    cfg.barrier_enabled = layout_.use_barrier; // program and hardware agree

    cluster::Cluster& cl = cluster::pooled_cluster(cfg, image_);
    load_inputs(cl, cfg.cores);
    cl.run();

    Outcome out;
    out.stats = cl.stats();
    out.verified = true;

    std::size_t total_bits = 0;
    for (unsigned p = 0; p < cfg.cores; ++p) {
        if (cl.core_trap(static_cast<CoreId>(p)) != core::Trap::None ||
            !cl.core_halted(static_cast<CoreId>(p))) {
            out.verified = false;
        }

        // Radio back end: drain the per-lead results.
        const Word n_words = cl.dm_peek(static_cast<CoreId>(p), layout_.out_count());
        BitStream bs;
        bs.words.reserve(n_words);
        for (Word i = 0; i < n_words; ++i) {
            bs.words.push_back(
                cl.dm_peek(static_cast<CoreId>(p), static_cast<Addr>(layout_.out_base() + i)));
        }
        bs.bits = golden_bits_[p].bits; // bit count verified via word count

        // Verify measurements and bitstream against the golden pipeline.
        for (std::size_t i = 0; i < golden_y_[p].size(); ++i) {
            if (cl.dm_peek(static_cast<CoreId>(p), static_cast<Addr>(layout_.y_base() + i)) !=
                golden_y_[p][i]) {
                out.verified = false;
            }
        }
        if (bs.words != golden_bits_[p].words) out.verified = false;
        total_bits += golden_bits_[p].bits;
        out.bitstreams.push_back(std::move(bs));
    }

    out.bits_per_sample =
        static_cast<double>(total_bits) / static_cast<double>(cfg.cores * kEcgBlockSamples);
    return out;
}

} // namespace ulpmc::app
