// Generic FIR filtering kernel for TamaRISC — the "mostly signal
// filtering" workload class the paper's introduction attributes to
// commercial monitoring nodes (Sensium, PiiX). Provided as a reusable
// kernel builder: coefficients are Q16 fixed point (65536 would be +1.0,
// so a single coefficient reaches at most ~0.5), the multiply uses MULH
// (the signed high half): each tap contributes (c * x) >> 16 — the
// idiomatic 16-bit DSP MAC on this ISA.
//
// As with every kernel in this repository, the host golden filter is
// bit-exact with the generated TamaRISC code.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "isa/program.hpp"
#include "mmu/mmu.hpp"

namespace ulpmc::app {

/// Data layout of the FIR kernel (all per-core private).
struct FirLayout {
    static constexpr Addr kXBase = 0;      ///< input samples
    static constexpr Addr kYBase = 1024;   ///< output samples
    static constexpr Addr kCoeffBase = 2048; ///< Q16 coefficients
    static constexpr std::size_t kMaxSamples = 1024;
    static constexpr std::size_t kMaxTaps = 64;

    static mmu::DmLayout dm_layout() { return {0, 2368}; }
};

/// A Q16 FIR filter.
class FirKernel {
public:
    /// `coeffs` are Q16 (32767 ~= +0.5). 1..kMaxTaps entries.
    explicit FirKernel(std::vector<std::int16_t> coeffs);

    /// Symmetric moving-average lowpass of `taps` points (DC gain ~1).
    static FirKernel moving_average(unsigned taps);

    const std::vector<std::int16_t>& coeffs() const { return coeffs_; }

    /// Golden filter, bit-exact with the kernel: for n >= taps-1,
    /// y[n] = sum_k mulh(c[k], x[n-k]) in wrap-around Word arithmetic;
    /// the first taps-1 outputs are 0 (no history).
    std::vector<Word> apply(std::span<const std::int16_t> x) const;

    /// Emits the TamaRISC program filtering `n_samples` from the layout's
    /// x buffer into its y buffer (coefficients are linked into the data
    /// image).
    isa::Program build_program(std::size_t n_samples) const;

private:
    std::vector<std::int16_t> coeffs_;
};

} // namespace ulpmc::app
