// Host-side compressed-sensing reconstruction (the paper's base station):
// recovers the ECG block from the transmitted measurements, closing the
// scientific loop the paper leaves open (it only ever measures the node).
//
// Method: the ECG block is sparse in an orthonormal Haar wavelet basis;
// with y = Phi * x and x = Psi * s this is the classic sparse-recovery
// problem, solved here by Orthogonal Matching Pursuit over the effective
// dictionary A = Phi * Psi (greedy support growth + least squares on the
// support via Cholesky).
//
// Fidelity is reported as PRD (percentage root-mean-square difference),
// the standard metric of the CS-ECG literature the paper builds on
// (Mamaghanian et al., TBME'11).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "app/cs.hpp"

namespace ulpmc::app {

/// Orthonormal Haar wavelet analysis (in place, length must be 2^k).
void haar_forward(std::span<double> x);

/// Orthonormal Haar synthesis (inverse of haar_forward).
void haar_inverse(std::span<double> x);

/// Dequantizes a transmitted symbol stream back to measurement estimates
/// (mid-rise reconstruction of the kernel's >>6 quantizer).
std::vector<double> dequantize_symbols(std::span<const Word> symbols);

/// Reconstruction configuration.
struct OmpConfig {
    unsigned max_support = 64;     ///< sparsity budget
    double residual_tol = 1e-3;    ///< stop when ||r||/||y|| drops below
};

/// Reconstructs a block from (possibly dequantized) measurements.
/// `y` has matrix.rows() entries. Returns matrix.cols() samples.
std::vector<double> cs_reconstruct(const CsMatrix& matrix, std::span<const double> y,
                                   const OmpConfig& cfg = {});

/// PRD [%] between the original samples and a reconstruction.
double prd_percent(std::span<const std::int16_t> original, std::span<const double> recon);

} // namespace ulpmc::app
