#include "app/rpeak.hpp"

#include "common/assert.hpp"
#include "isa/asm_builder.hpp"

namespace ulpmc::app {

namespace {

/// 16-bit arithmetic right shift with the kernel's SFT semantics.
Word asr(Word v, int k) { return static_cast<Word>(static_cast<SWord>(v) >> k); }

} // namespace

std::vector<Word> rpeak_detect(std::span<const std::int16_t> x, const RpeakParams& p) {
    ULPMC_EXPECTS((p.window & (p.window - 1)) == 0); // power of two
    std::vector<Word> win(p.window, 0);
    std::vector<Word> peaks;
    Word prev = 0;
    Word acc = 0;
    Word thr = 0;
    Word refr = 0;
    unsigned wi = 0;

    for (std::size_t n = 0; n < x.size(); ++n) {
        const Word xn = static_cast<Word>(x[n]);
        const Word d = static_cast<Word>(xn - prev);
        prev = xn;
        const Word d2 = asr(d, p.derivative_shift);
        const Word e = asr(static_cast<Word>(d2 * d2), p.energy_shift);
        acc = static_cast<Word>(acc + e - win[wi]);
        win[wi] = e;
        wi = (wi + 1) % p.window;

        if (refr > 0) {
            refr = static_cast<Word>(refr - 1);
        } else if (acc > thr && acc > p.min_threshold) {
            if (peaks.size() < RpeakLayout::kOutIdxMax) peaks.push_back(static_cast<Word>(n));
            thr = acc;
            refr = p.refractory;
        }
        thr = static_cast<Word>(thr - asr(thr, p.decay_shift));
    }
    return peaks;
}

isa::Program build_rpeak_program(const RpeakParams& p) {
    using namespace ulpmc::isa;
    ULPMC_EXPECTS(p.window == 16); // the kernel hard-codes the wrap check
    ULPMC_EXPECTS(p.derivative_shift <= 8 && p.energy_shift <= 8 && p.decay_shift <= 8);

    AsmBuilder b;
    // r1=x ptr, r2=prev, r3=acc, r4=thr, r5=refr, r6=n, r7=count,
    // r8=window ptr, r9/r10=temps, r11=samples left, r12=index out ptr.
    b.label("entry");
    b.movi(1, RpeakLayout::kXBase);
    b.movi(2, 0);
    b.movi(3, 0);
    b.movi(4, 0);
    b.movi(5, 0);
    b.movi(6, 0);
    b.movi(7, 0);
    b.movi(8, RpeakLayout::kWinBase);
    b.movi(12, RpeakLayout::kOutIdx);
    b.movi(11, static_cast<Word>(RpeakLayout::kSamples));

    b.label("loop");
    b.mov(dreg(9), spostinc(1));                // xn
    b.sub(dreg(10), sreg(9), sreg(2));          // d = xn - prev
    b.mov(dreg(2), sreg(9));                    // prev = xn
    b.sft(dreg(10), sreg(10), simm(-p.derivative_shift));
    b.mull(dreg(10), sreg(10), sreg(10));       // d2*d2 (fits 15 bits)
    b.sft(dreg(10), sreg(10), simm(-p.energy_shift)); // e
    b.add(dreg(3), sreg(3), sreg(10));          // acc += e
    b.sub(dreg(3), sreg(3), sind(8));           // acc -= win[wi]
    b.mov(dind(8), sreg(10));                   // win[wi] = e
    b.add(dreg(8), sreg(8), simm(1));
    b.movi(9, static_cast<Word>(RpeakLayout::kWinBase + 16));
    b.sub(dreg(9), sreg(9), sreg(8));           // window wrap?
    b.bra(Cond::NE, "nowrap");
    b.movi(8, RpeakLayout::kWinBase);
    b.label("nowrap");

    b.or_(dreg(5), sreg(5), simm(0)); // refractory active?
    b.bra(Cond::EQ, "armed");
    b.sub(dreg(5), sreg(5), simm(1));
    b.bra(Cond::AL, "decay");

    b.label("armed");
    b.sub(dreg(9), sreg(3), sreg(4)); // acc vs thr (unsigned)
    b.bra(Cond::LS, "decay");         // acc <= thr
    b.movi(9, p.min_threshold);
    b.sub(dreg(9), sreg(3), sreg(9));
    b.bra(Cond::LS, "decay"); // acc <= floor
    // Peak detected.
    b.mov(dpostinc(12), sreg(6)); // record the sample index
    b.add(dreg(7), sreg(7), simm(1));
    b.mov(dreg(4), sreg(3)); // thr = acc
    b.movi(5, p.refractory);

    b.label("decay");
    b.sft(dreg(9), sreg(4), simm(-p.decay_shift));
    b.sub(dreg(4), sreg(4), sreg(9)); // thr -= thr >> k
    b.add(dreg(6), sreg(6), simm(1)); // ++n
    b.sub(dreg(11), sreg(11), simm(1));
    b.bra(Cond::NE, "loop");

    b.movi(9, RpeakLayout::kOutCount);
    b.mov(dind(9), sreg(7));
    b.hlt();

    Program prog = b.finish();
    prog.entry = prog.text_addr("entry");
    return prog;
}

} // namespace ulpmc::app
