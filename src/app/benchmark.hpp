// End-to-end ECG benchmark orchestration: builds the deterministic inputs
// (ECG leads, CS matrix, Huffman tables), compiles the TamaRISC program,
// runs it on a configured cluster, verifies the cluster's outputs against
// the bit-exact golden pipeline, and hands the run statistics to the
// power model. Every §IV experiment goes through this class.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "app/cs.hpp"
#include "app/ecg.hpp"
#include "app/huffman.hpp"
#include "app/kernels.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "isa/program.hpp"
#include "isa/program_image.hpp"

namespace ulpmc::app {

/// Benchmark configuration knobs (the §IV-C2 experiment axes).
struct BenchmarkOptions {
    std::uint64_t seed = 1;
    bool luts_shared = false;    ///< Huffman LUTs in the shared DM section
    bool use_barrier = false;    ///< extension: resync before Huffman
    bool compiler_spills = true; ///< CoSy-compiler-style CS loop (see kernels.hpp)
};

/// One full 8-lead benchmark instance.
class EcgBenchmark {
public:
    explicit EcgBenchmark(const BenchmarkOptions& opt = {});

    const BenchmarkOptions& options() const { return opt_; }
    const isa::Program& program() const { return program_; }
    /// Shared decoded image of program(): built once at construction so
    /// campaigns and sweeps load clusters without re-decoding (DESIGN.md §11).
    const std::shared_ptr<const isa::ProgramImage>& image() const { return image_; }
    const BenchmarkLayout& layout() const { return layout_; }
    const CsMatrix& matrix() const { return matrix_; }
    const HuffmanTable& table() const { return table_; }

    /// Input samples of one lead.
    const std::vector<std::int16_t>& lead_samples(unsigned lead) const;

    /// Golden (host-computed) CS measurements / symbols / bitstream.
    const std::vector<Word>& golden_measurements(unsigned lead) const;
    const std::vector<Word>& golden_symbols(unsigned lead) const;
    const BitStream& golden_bitstream(unsigned lead) const;

    /// Result of one cluster run.
    struct Outcome {
        cluster::ClusterStats stats;
        bool verified = false;             ///< all outputs bit-exact vs golden
        std::vector<BitStream> bitstreams; ///< per lead, read back from DM
        double bits_per_sample = 0;        ///< achieved compression
    };

    /// Runs the benchmark on one of the paper's architectures.
    Outcome run(cluster::ArchKind arch) const;

    /// Runs with an explicit configuration (ablations). The configuration's
    /// dm_layout and barrier flag must match this benchmark's layout.
    Outcome run(const cluster::ClusterConfig& cfg) const;

    /// Sensor front end: injects each lead's sample block into its core's
    /// x buffer. Shared by run(), the streaming monitor and the fault
    /// campaigns (which pause the simulation mid-flight and so drive the
    /// cluster themselves).
    void load_inputs(cluster::Cluster& cl, unsigned cores) const;

private:
    BenchmarkOptions opt_;
    BenchmarkLayout layout_;
    CsMatrix matrix_;
    std::vector<std::vector<std::int16_t>> leads_;
    std::vector<std::vector<Word>> golden_y_;
    std::vector<std::vector<Word>> golden_sym_;
    HuffmanTable table_;
    std::vector<BitStream> golden_bits_;
    isa::Program program_;
    std::shared_ptr<const isa::ProgramImage> image_;
};

} // namespace ulpmc::app
