#include "app/huffman.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace ulpmc::app {

namespace {

/// Package-merge: optimal code lengths under a hard length limit
/// (Larmore & Hirschberg's coin-collector formulation).
std::vector<std::uint8_t> package_merge(std::span<const std::uint64_t> freqs, unsigned max_len) {
    const std::size_t n = freqs.size();
    ULPMC_EXPECTS(n >= 2);
    ULPMC_EXPECTS((1ull << max_len) >= n); // limit must be feasible

    struct Item {
        std::uint64_t weight;
        std::vector<std::uint32_t> syms; // leaves contained in the package
    };

    // Leaves sorted by weight (stable on symbol index for determinism).
    std::vector<Item> leaves;
    leaves.reserve(n);
    for (std::size_t s = 0; s < n; ++s)
        leaves.push_back({std::max<std::uint64_t>(freqs[s], 1), {static_cast<std::uint32_t>(s)}});
    std::stable_sort(leaves.begin(), leaves.end(),
                     [](const Item& a, const Item& b) { return a.weight < b.weight; });

    std::vector<Item> prev; // the list for the previous level
    for (unsigned level = 0; level < max_len; ++level) {
        // Package pairs from the previous level...
        std::vector<Item> packages;
        for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
            Item pkg;
            pkg.weight = prev[i].weight + prev[i + 1].weight;
            pkg.syms = prev[i].syms;
            pkg.syms.insert(pkg.syms.end(), prev[i + 1].syms.begin(), prev[i + 1].syms.end());
            packages.push_back(std::move(pkg));
        }
        // ...and merge with the fresh leaves.
        std::vector<Item> merged;
        merged.reserve(leaves.size() + packages.size());
        std::merge(leaves.begin(), leaves.end(), std::make_move_iterator(packages.begin()),
                   std::make_move_iterator(packages.end()), std::back_inserter(merged),
                   [](const Item& a, const Item& b) { return a.weight < b.weight; });
        prev = std::move(merged);
    }

    // The first 2n-2 items of the final list define the code: each leaf
    // occurrence adds one to the symbol's code length.
    std::vector<std::uint8_t> lens(n, 0);
    const std::size_t take = 2 * n - 2;
    ULPMC_ASSERT(prev.size() >= take);
    for (std::size_t i = 0; i < take; ++i)
        for (const std::uint32_t s : prev[i].syms) ++lens[s];

    for (const auto l : lens) ULPMC_ENSURES(l >= 1 && l <= max_len);
    return lens;
}

} // namespace

HuffmanTable::HuffmanTable(std::span<const std::uint64_t> freqs, unsigned max_len) {
    ULPMC_EXPECTS(max_len >= 1 && max_len <= kHuffMaxLen);
    len_ = package_merge(freqs, max_len);

    // Canonical code assignment: symbols ordered by (length, index).
    const std::size_t n = len_.size();
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return len_[a] != len_[b] ? len_[a] < len_[b] : a < b;
    });

    code_.assign(n, 0);
    std::uint32_t code = 0;
    unsigned prev_len = len_[order[0]];
    for (const std::uint32_t s : order) {
        code <<= (len_[s] - prev_len);
        prev_len = len_[s];
        ULPMC_ASSERT(code < (1u << len_[s]));
        code_[s] = static_cast<Word>(code);
        ++code;
    }
}

Word HuffmanTable::code(std::size_t sym) const {
    ULPMC_EXPECTS(sym < code_.size());
    return code_[sym];
}

unsigned HuffmanTable::length(std::size_t sym) const {
    ULPMC_EXPECTS(sym < len_.size());
    return len_[sym];
}

std::vector<Word> HuffmanTable::len_lut() const {
    std::vector<Word> lut(len_.size());
    for (std::size_t s = 0; s < len_.size(); ++s) lut[s] = len_[s];
    return lut;
}

std::uint64_t HuffmanTable::kraft_scaled(unsigned max_len) const {
    std::uint64_t sum = 0;
    for (const auto l : len_) sum += 1ull << (max_len - l);
    return sum;
}

BitStream huffman_encode(const HuffmanTable& t, std::span<const Word> symbols) {
    BitStream bs;
    Word buffer = 0;   // current word, filled from the MSB
    unsigned free = 16; // free bits remaining in `buffer`
    for (const Word sym : symbols) {
        const Word code = t.code(sym);
        const unsigned len = t.length(sym);
        bs.bits += len;
        if (len <= free) {
            buffer = static_cast<Word>(buffer | static_cast<Word>(code << (free - len)));
            free -= len;
            if (free == 0) {
                bs.words.push_back(buffer);
                buffer = 0;
                free = 16;
            }
        } else {
            const unsigned spill = len - free; // low bits for the next word
            buffer = static_cast<Word>(buffer | static_cast<Word>(code >> spill));
            bs.words.push_back(buffer);
            buffer = static_cast<Word>(code << (16 - spill));
            free = 16 - spill;
        }
    }
    if (free != 16) bs.words.push_back(buffer);
    return bs;
}

std::optional<std::vector<Word>> huffman_decode(const HuffmanTable& t, const BitStream& bs,
                                                std::size_t count) {
    // Canonical decode via per-length first-code boundaries.
    std::vector<std::uint32_t> first_code(kHuffMaxLen + 2, 0);
    std::vector<std::uint32_t> first_index(kHuffMaxLen + 2, 0);
    std::vector<std::uint32_t> order;
    order.resize(t.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return t.length(a) != t.length(b) ? t.length(a) < t.length(b) : a < b;
    });
    std::vector<std::uint32_t> count_by_len(kHuffMaxLen + 1, 0);
    for (std::size_t s = 0; s < t.size(); ++s) ++count_by_len[t.length(s)];
    {
        std::uint32_t code = 0;
        std::uint32_t index = 0;
        for (unsigned l = 1; l <= kHuffMaxLen; ++l) {
            first_code[l] = code;
            first_index[l] = index;
            code = (code + count_by_len[l]) << 1;
            index += count_by_len[l];
        }
    }

    const auto bit_at = [&](std::size_t i) -> int {
        const std::size_t w = i / 16;
        if (w >= bs.words.size()) return -1;
        return (bs.words[w] >> (15 - (i % 16))) & 1;
    };

    std::vector<Word> out;
    out.reserve(count);
    std::size_t pos = 0;
    while (out.size() < count) {
        std::uint32_t code = 0;
        unsigned len = 0;
        while (true) {
            const int b = bit_at(pos);
            if (b < 0 || pos >= bs.bits) return std::nullopt;
            ++pos;
            code = (code << 1) | static_cast<std::uint32_t>(b);
            ++len;
            if (len > kHuffMaxLen) return std::nullopt;
            if (count_by_len[len] != 0 &&
                code - first_code[len] < count_by_len[len]) {
                out.push_back(static_cast<Word>(order[first_index[len] + (code - first_code[len])]));
                break;
            }
        }
    }
    return out;
}

} // namespace ulpmc::app
