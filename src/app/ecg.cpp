#include "app/ecg.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ulpmc::app {

namespace {

/// One Gaussian wave component of the beat morphology.
struct WaveComponent {
    double center_s;   ///< offset from beat onset [s]
    double width_s;    ///< Gaussian sigma [s]
    double amplitude;  ///< relative to the R peak
};

/// Canonical single-beat P-QRS-T morphology (relative amplitudes).
constexpr WaveComponent kBeat[] = {
    {0.10, 0.025, 0.15},  // P
    {0.23, 0.010, -0.12}, // Q
    {0.25, 0.011, 1.00},  // R
    {0.27, 0.010, -0.25}, // S
    {0.42, 0.045, 0.30},  // T
};

} // namespace

EcgGenerator::EcgGenerator(const EcgConfig& cfg) : cfg_(cfg) {
    ULPMC_EXPECTS(cfg.heart_rate_bpm > 20.0 && cfg.heart_rate_bpm < 250.0);
    ULPMC_EXPECTS(cfg.full_scale > 0 && cfg.full_scale <= 32767);
}

std::vector<std::int16_t> EcgGenerator::lead(unsigned lead, std::size_t n) const {
    ULPMC_EXPECTS(lead < kEcgLeads);

    // Per-lead deterministic variation: projection gain/polarity and a
    // small conduction delay, as seen across real electrode placements.
    Rng rng(cfg_.seed * 0x9E37u + lead * 0xC2B2u + 1);
    const double gain = 0.6 + 0.4 * rng.uniform();
    const double polarity = (lead == 3 || lead == 6) ? -1.0 : 1.0; // aVR-like leads
    const double delay_s = 0.002 * lead;
    const double wander_phase = rng.uniform() * 2.0 * 3.14159265358979;
    const double beat_period_s = 60.0 / cfg_.heart_rate_bpm;
    const double r_amp = cfg_.full_scale * 0.85;

    std::vector<std::int16_t> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / kEcgSampleRateHz + delay_s;
        const double phase = std::fmod(t, beat_period_s);

        double v = 0.0;
        for (const auto& w : kBeat) {
            const double d = phase - w.center_s;
            v += w.amplitude * std::exp(-(d * d) / (2.0 * w.width_s * w.width_s));
        }
        v *= r_amp * gain * polarity;

        // Respiration baseline wander (~0.3 Hz) and sensor noise.
        v += cfg_.baseline_amplitude * std::sin(2.0 * 3.14159265358979 * 0.3 * t + wander_phase);
        v += cfg_.noise_rms * rng.gaussian();

        const double clamped =
            std::clamp(v, -static_cast<double>(cfg_.full_scale), static_cast<double>(cfg_.full_scale));
        out[i] = static_cast<std::int16_t>(std::lround(clamped));
    }
    return out;
}

} // namespace ulpmc::app
