#include "app/cs.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ulpmc::app {

CsMatrix::CsMatrix(std::uint64_t seed, std::size_t rows, std::size_t cols, std::size_t taps)
    : rows_(rows), cols_(cols), taps_(taps) {
    ULPMC_EXPECTS(rows > 0 && cols > 0);
    ULPMC_EXPECTS(taps > 0 && taps <= cols);
    ULPMC_EXPECTS(cols <= kCsIndexMask + 1u);

    Rng rng(seed);
    entries_.reserve(rows * taps);
    std::vector<std::uint32_t> columns(cols);
    for (std::size_t c = 0; c < cols; ++c) columns[c] = static_cast<std::uint32_t>(c);

    for (std::size_t r = 0; r < rows; ++r) {
        // Partial Fisher-Yates: pick `taps` distinct columns for this row.
        for (std::size_t t = 0; t < taps; ++t) {
            const std::size_t j = t + rng.below(static_cast<std::uint32_t>(cols - t));
            std::swap(columns[t], columns[j]);
            const Word sign = (rng.next_u32() & 1u) ? kCsSignBit : 0;
            entries_.push_back(static_cast<Word>(columns[t]) | sign);
        }
        // Sort the row's taps by column so the x[] accesses stride forward
        // (friendlier to real memories; irrelevant to correctness).
        std::sort(entries_.end() - static_cast<std::ptrdiff_t>(taps), entries_.end(),
                  [](Word a, Word b) { return (a & kCsIndexMask) < (b & kCsIndexMask); });
    }
}

Word CsMatrix::entry(std::size_t r, std::size_t t) const {
    ULPMC_EXPECTS(r < rows_ && t < taps_);
    return entries_[r * taps_ + t];
}

std::vector<Word> cs_compress(const CsMatrix& m, std::span<const std::int16_t> x) {
    ULPMC_EXPECTS(x.size() == m.cols());
    std::vector<Word> y(m.rows());
    std::size_t p = 0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
        Word acc = 0; // wrap-around 16-bit, exactly like the kernel
        for (std::size_t t = 0; t < m.taps(); ++t) {
            const Word e = m.entries()[p++];
            const Word sample = static_cast<Word>(x[e & kCsIndexMask]);
            acc = (e & kCsSignBit) ? static_cast<Word>(acc - sample)
                                   : static_cast<Word>(acc + sample);
        }
        y[r] = acc;
    }
    return y;
}

Word cs_quantize_symbol(Word y) {
    const auto sy = static_cast<SWord>(y);
    return static_cast<Word>((sy >> kCsSymbolShift) & static_cast<int>(kCsSymbolCount - 1));
}

std::vector<Word> cs_quantize(std::span<const Word> y) {
    std::vector<Word> out(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) out[i] = cs_quantize_symbol(y[i]);
    return out;
}

} // namespace ulpmc::app
