// Second biosignal application: real-time R-peak detection (heart-rate
// monitoring), an integer Pan-Tompkins-style pipeline:
//
//   derivative -> scale -> square -> 16-sample moving-window integration
//   -> adaptive threshold (peak-tracking with exponential decay) with a
//   160 ms refractory period.
//
// The paper's intro motivates exactly this class of "simple signal
// analysis" workloads; architecturally it is the antithesis of the CS
// kernel — three data-dependent branches per sample — so it stresses the
// instruction-memory organizations where the ECG benchmark is gentle
// (see bench/ablation_workloads and examples/rpeak_monitor).
//
// As everywhere: the host golden detector is bit-exact with the TamaRISC
// kernel (wrap-around 16-bit arithmetic, identical shifts/thresholds).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "isa/program.hpp"
#include "mmu/mmu.hpp"

namespace ulpmc::app {

/// Detector tuning (defaults chosen for 250 Hz ECG).
struct RpeakParams {
    unsigned window = 16;       ///< integration window (power of two)
    int derivative_shift = 2;   ///< d >>= 2 before squaring
    int energy_shift = 4;       ///< e >>= 4 after squaring
    int decay_shift = 6;        ///< thr -= thr >> 6 per sample (~256 ms)
    Word min_threshold = 64;    ///< absolute noise floor
    Word refractory = 40;       ///< samples (~160 ms at 250 Hz)
};

/// Golden host detector; returns the sample indices of detected peaks.
std::vector<Word> rpeak_detect(std::span<const std::int16_t> x,
                               const RpeakParams& p = {});

/// Data layout of the R-peak kernel. Everything is per-core private
/// (there is no shared data in this application).
struct RpeakLayout {
    static constexpr Addr kXBase = 0;       ///< x[512]
    static constexpr Addr kWinBase = 512;   ///< win[16]
    static constexpr Addr kOutCount = 528;  ///< number of peaks found
    static constexpr Addr kOutIdx = 529;    ///< peak indices
    static constexpr Addr kOutIdxMax = 64;  ///< capacity
    static constexpr std::size_t kSamples = 512;

    static mmu::DmLayout dm_layout() { return {0, 1024}; }
};

/// Emits the TamaRISC R-peak kernel for one 512-sample block.
isa::Program build_rpeak_program(const RpeakParams& p = {});

} // namespace ulpmc::app
