#include "app/fir.hpp"

#include "common/assert.hpp"
#include "core/alu.hpp"
#include "isa/asm_builder.hpp"

namespace ulpmc::app {

FirKernel::FirKernel(std::vector<std::int16_t> coeffs) : coeffs_(std::move(coeffs)) {
    ULPMC_EXPECTS(!coeffs_.empty());
    ULPMC_EXPECTS(coeffs_.size() <= FirLayout::kMaxTaps);
}

FirKernel FirKernel::moving_average(unsigned taps) {
    ULPMC_EXPECTS(taps >= 1 && taps <= FirLayout::kMaxTaps);
    // Q16 (MULH >>16): DC gain = taps * c / 65536, so c = 65536 / taps
    // gives unity; c fits int16 for taps >= 3 (clamped to ~0.5 below).
    const int c = std::min(32767, static_cast<int>(65536 / taps));
    return FirKernel(std::vector<std::int16_t>(taps, static_cast<std::int16_t>(c)));
}

std::vector<Word> FirKernel::apply(std::span<const std::int16_t> x) const {
    ULPMC_EXPECTS(x.size() <= FirLayout::kMaxSamples);
    const std::size_t taps = coeffs_.size();
    std::vector<Word> y(x.size(), 0);
    for (std::size_t n = taps - 1; n < x.size(); ++n) {
        Word acc = 0;
        for (std::size_t k = 0; k < taps; ++k) {
            const Word prod = core::alu_exec(isa::Opcode::MULH,
                                             static_cast<Word>(coeffs_[k]),
                                             static_cast<Word>(x[n - k]))
                                  .value;
            acc = static_cast<Word>(acc + prod);
        }
        y[n] = acc;
    }
    return y;
}

isa::Program FirKernel::build_program(std::size_t n_samples) const {
    using namespace ulpmc::isa;
    ULPMC_EXPECTS(n_samples >= coeffs_.size());
    ULPMC_EXPECTS(n_samples <= FirLayout::kMaxSamples);
    const std::size_t taps = coeffs_.size();

    AsmBuilder b;
    // r1 = &x[n], r2 = &y[n], r3 = tap counter, r4 = acc, r5 = sample
    // cursor (walks backwards), r6/r7 = temps, r8 = coeff cursor,
    // r11 = samples left.
    b.label("entry");
    b.movi(1, static_cast<Word>(FirLayout::kXBase + taps - 1));
    b.movi(2, static_cast<Word>(FirLayout::kYBase + taps - 1));
    b.movi(11, static_cast<Word>(n_samples - (taps - 1)));

    b.label("sample");
    b.mov(dreg(5), sreg(1)); // cursor = &x[n]
    b.movi(8, FirLayout::kCoeffBase);
    b.movi(3, static_cast<Word>(taps));
    b.mov(dreg(4), sreg(0)); // acc = 0

    b.label("tap");
    b.mov(dreg(6), spostdec(5));       // x[n-k], cursor walks back
    b.mov(dreg(7), spostinc(8));       // c[k]
    b.mulh(dreg(7), sreg(7), sreg(6)); // (c * x) >> 16
    b.add(dreg(4), sreg(4), sreg(7));
    b.sub(dreg(3), sreg(3), simm(1));
    b.bra(Cond::NE, "tap");

    b.mov(dpostinc(2), sreg(4)); // y[n] = acc
    b.add(dreg(1), sreg(1), simm(1));
    b.sub(dreg(11), sreg(11), simm(1));
    b.bra(Cond::NE, "sample");
    b.hlt();

    // Coefficient ROM in the private template.
    b.space(FirLayout::kCoeffBase - b.data_here());
    b.data_label("coeffs");
    for (const std::int16_t c : coeffs_) b.word(static_cast<Word>(c));

    isa::Program p = b.finish();
    p.entry = p.text_addr("entry");
    return p;
}

} // namespace ulpmc::app
