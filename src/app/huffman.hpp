// Huffman coding stage (paper §II): entropy-codes the quantized CS
// measurements for wireless transmission.
//
// The code is canonical and length-limited to 15 bits (so a code always
// fits a 16-bit word with bit 15 clear — a property the TamaRISC packer
// exploits for its arithmetic-shift trick). It is materialized as the two
// 512-entry lookup tables the paper describes — a code LUT and a length
// LUT, 1024 bytes each — which are linked into either the shared or the
// private DM section depending on the experiment (§IV-C2).
//
// The host-side encoder is bit-exact with the TamaRISC kernel (MSB-first
// packing into 16-bit words); the decoder exists for end-to-end
// verification of the cluster's output bitstream.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace ulpmc::app {

/// Maximum code length: keeps bit 15 of every code word zero.
inline constexpr unsigned kHuffMaxLen = 15;

/// A canonical, length-limited Huffman code over `size()` symbols.
class HuffmanTable {
public:
    /// Builds the optimal length-limited code for `freqs` (package-merge).
    /// Zero frequencies are floored to 1 so every symbol stays encodable.
    explicit HuffmanTable(std::span<const std::uint64_t> freqs,
                          unsigned max_len = kHuffMaxLen);

    std::size_t size() const { return code_.size(); }

    /// Right-aligned code bits of `sym`.
    Word code(std::size_t sym) const;
    /// Code length in bits (1..max_len).
    unsigned length(std::size_t sym) const;

    /// The two ROM images the benchmark links into data memory.
    std::span<const Word> code_lut() const { return code_; }
    std::vector<Word> len_lut() const;

    /// Kraft sum numerator scaled by 2^max_len (== 2^max_len for a
    /// complete code); exposed for property tests.
    std::uint64_t kraft_scaled(unsigned max_len = kHuffMaxLen) const;

private:
    std::vector<Word> code_;
    std::vector<std::uint8_t> len_;
};

/// An encoded bitstream: 16-bit words, MSB-first fill, plus the exact bit
/// count (the last word is zero-padded).
struct BitStream {
    std::vector<Word> words;
    std::size_t bits = 0;
};

/// Encodes `symbols` — bit-exact with the TamaRISC packer.
BitStream huffman_encode(const HuffmanTable& t, std::span<const Word> symbols);

/// Decodes exactly `count` symbols; std::nullopt if the stream is invalid
/// or too short.
std::optional<std::vector<Word>> huffman_decode(const HuffmanTable& t, const BitStream& bs,
                                                std::size_t count);

} // namespace ulpmc::app
