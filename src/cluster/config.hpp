// Cluster architecture configurations: the paper's reference design and
// the two proposed variants, plus the individual feature switches so the
// benches can run ablations (broadcast on/off, gating on/off, stagger).
#pragma once

#include <string>

#include "common/types.hpp"
#include "core/state.hpp"
#include "mmu/mmu.hpp"

namespace ulpmc::cluster {

/// The three architectures compared throughout the paper's §IV.
enum class ArchKind : std::uint8_t {
    McRef,    ///< reference: dedicated IM banks, no broadcast (PATMOS'11)
    UlpmcInt, ///< proposed, interleaved IM bank selection
    UlpmcBank ///< proposed, packed IM banks + power gating
};

/// Display name used in every reproduced table ("mc-ref", ...).
std::string arch_name(ArchKind k);

/// Simulator engine tiers (DESIGN.md §10). All tiers are cycle-for-cycle
/// and stat-for-stat identical; they differ only in how much work the
/// simulator does per simulated cycle.
enum class SimEngine : std::uint8_t {
    Reference, ///< decode-every-fetch, full round-robin arbitration
    Fast,      ///< PR 1: pre-decoded IM + conflict-free crossbar fast path
    Trace,     ///< PR 3: Fast + superblock dispatch with memoized timing
    Batched    ///< PR 6: Trace inside one instance, plus campaign-level
               ///< lockstep sharing across instances (DESIGN.md §11)
};

/// Display / CLI name: "reference", "fast", "trace", "batched".
std::string engine_name(SimEngine e);

/// Parse a --engine value. Returns false on unknown names.
bool parse_engine(const std::string& s, SimEngine& out);

/// Full cluster parameterization. Use make_config() for the paper's three
/// designs; individual fields exist so ablation benches can deviate.
struct ClusterConfig {
    ArchKind arch = ArchKind::UlpmcBank;
    unsigned cores = kNumCores;

    mmu::DmLayout dm_layout;
    mmu::ImPolicy im_policy = mmu::ImPolicy::Banked;

    /// Memory geometry. Defaults are the paper's (16x4kB DM, 8x12kB IM);
    /// the bank-sweep extension (bench/ext_bank_sweep) varies them.
    unsigned im_banks = kImBanks;
    unsigned dm_banks = kDmBanks;
    std::size_t im_bank_words = kImWordsPerBank;
    std::size_t dm_bank_words = kDmWordsPerBank;

    /// Read broadcast in the data / instruction crossbars (§III-B).
    bool dm_broadcast = true;
    bool im_broadcast = true;

    /// Power-gate IM banks that hold no program content (§III-C;
    /// meaningful for the Banked policy only).
    bool gate_unused_im_banks = false;

    /// Start core p at cycle p. Our reconstruction of how mc-ref avoids
    /// lockstep same-address conflicts on the shared CS vector without
    /// broadcast support (DESIGN.md §2, substitution 5).
    bool stagger_start = false;

    /// Extension (not in the paper): memory-mapped barrier register at
    /// virtual address 0xFFFF that resynchronizes the cores.
    bool barrier_enabled = false;

    /// Resilience extension (DESIGN.md §9): SEC-DED ECC on every IM and DM
    /// bank. Single-bit upsets are corrected on read (and scrubbed),
    /// double-bit upsets raise Trap::EccFault on the consuming core. The
    /// encode/check energy is charged by the power model (calibration.hpp
    /// ECC constants).
    bool ecc_enabled = false;

    /// Resilience extension (DESIGN.md §9): register-file protection.
    /// Parity fail-stops the striken core with Trap::RegParityFault on
    /// the first read of a corrupted register; TMR majority-votes three
    /// shadow copies on every read and silently repairs it. Both are
    /// charged by the power model (calibration.hpp protection constants).
    core::RegProtection reg_protection = core::RegProtection::None;

    /// Resilience extension (DESIGN.md §9): idle-cycle IM scrubbing. On
    /// every cycle in which an ungated IM bank serves no fetch, a per-bank
    /// scrub walker reads-and-corrects one word (wrapping through the
    /// bank), draining latent single-bit upsets before a second strike
    /// makes them uncorrectable. Requires ecc_enabled to actually repair;
    /// each scrub read is priced by the power model.
    bool im_scrub = false;

    /// Resilience extension (DESIGN.md §9): idle-cycle DM scrubbing — the
    /// IM walker generalized to the data banks. On every cycle in which a
    /// DM bank serves no granted request, its walker reads-and-corrects
    /// one word. Long-lifetime runs need this: a latent DM upset that sits
    /// unread for hours is one more strike away from an uncorrectable
    /// double-bit word. Requires ecc_enabled to actually repair; each
    /// scrub read is priced by the power model (cal::kDmScrubReadEnergy).
    bool dm_scrub = false;

    /// Resilience extension (DESIGN.md §9): self-checking crossbar
    /// arbiters (both I- and D-side). Duplicate-and-compare on the grant
    /// vector and the rotating-priority head: a flipped grant register is
    /// suppressed (the master stalls and retries) and a stuck head is
    /// resynchronized from the cycle counter. Charged per cycle by the
    /// power model.
    bool xbar_self_check = false;

    /// Resilience extension: watchdog window in cycles. A core that
    /// commits no instruction for this many consecutive cycles (barrier
    /// parking included — legitimate waits are orders of magnitude
    /// shorter) is stopped with Trap::Watchdog so the cluster degrades
    /// instead of hanging. 0 disables the watchdog.
    Cycle watchdog_cycles = 0;

    /// Simulator engine tier (no architectural meaning). Results and
    /// statistics are cycle-for-cycle identical across all tiers — the
    /// lower tiers exist so any discrepancy can be bisected from the CLI
    /// (--engine=reference|fast|trace|batched) and pinned by differential
    /// tests.
    SimEngine engine = SimEngine::Trace;

    /// True for every tier above Reference: pre-decoded IM and the
    /// crossbars' conflict-free fast path are enabled.
    bool fast_path() const { return engine != SimEngine::Reference; }

    /// True for the trace-compiled tiers (Trace and Batched): superblock
    /// dispatch, memo lanes and the text-image/blockmap caches are active.
    /// A Batched cluster behaves exactly like a Trace cluster inside one
    /// instance; the batching itself lives above Cluster (DESIGN.md §11).
    bool trace_path() const {
        return engine == SimEngine::Trace || engine == SimEngine::Batched;
    }
};

/// Virtual data address of the barrier register (extension).
inline constexpr Addr kBarrierAddr = 0xFFFF;

/// The paper's three designs with a given data layout.
ClusterConfig make_config(ArchKind k, mmu::DmLayout layout);

} // namespace ulpmc::cluster
