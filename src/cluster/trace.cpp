#include "cluster/trace.hpp"

#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace ulpmc::cluster {

const char* event_kind_name(EventKind k) {
    switch (k) {
    case EventKind::Fetch:
        return "fetch";
    case EventKind::FetchBroadcast:
        return "fetch-bcast";
    case EventKind::FetchStall:
        return "fetch-stall";
    case EventKind::Commit:
        return "commit";
    case EventKind::DataStall:
        return "data-stall";
    case EventKind::BarrierArrive:
        return "barrier-arrive";
    case EventKind::BarrierRelease:
        return "barrier-release";
    case EventKind::Halt:
        return "halt";
    case EventKind::Trap:
        return "trap";
    }
    return "?";
}

RingTrace::RingTrace(std::size_t capacity) : capacity_(capacity) {
    ULPMC_EXPECTS(capacity > 0);
    ring_.reserve(capacity);
}

void RingTrace::on_event(const TraceEvent& e) {
    if (ring_.size() < capacity_) {
        ring_.push_back(e);
    } else {
        ring_[head_] = e;
        head_ = (head_ + 1) % capacity_;
    }
    ++total_;
}

std::vector<TraceEvent> RingTrace::events() const {
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::string RingTrace::render(const TraceEvent& e) {
    std::ostringstream ss;
    ss << '[' << e.cycle << "] ";
    if (e.kind == EventKind::BarrierRelease) {
        ss << "all    ";
    } else {
        ss << "core" << static_cast<int>(e.core) << ' ';
    }
    ss << event_kind_name(e.kind);
    switch (e.kind) {
    case EventKind::Fetch:
    case EventKind::FetchBroadcast:
    case EventKind::FetchStall:
        ss << " pc=" << e.a << " bank=" << e.b;
        break;
    case EventKind::Commit:
    case EventKind::DataStall:
        ss << " pc=" << e.a;
        break;
    case EventKind::Trap:
        ss << " code=" << e.a;
        break;
    default:
        break;
    }
    return ss.str();
}

void RingTrace::print(std::ostream& os) const {
    for (const auto& e : events()) os << render(e) << '\n';
}

void CountingTrace::on_event(const TraceEvent& e) { ++counts_[static_cast<unsigned>(e.kind)]; }

std::uint64_t CountingTrace::count(EventKind k) const {
    return counts_[static_cast<unsigned>(k)];
}

} // namespace ulpmc::cluster
