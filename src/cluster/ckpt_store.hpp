// Durable checkpoint storage with delta encoding (DESIGN.md §9.6).
//
// A Cluster::Snapshot splits into two halves with different trust:
//
//   * the PAYLOAD — the bytes real checkpoint hardware would stream into
//     a retention SRAM / NVM region: every core's architectural words
//     (16 GPRs + PC + packed flags), the DM bank cells + ECC check
//     bytes, and the dirty IM cells. This is the corruptible surface:
//     fault::CkptBitFlip strikes land here, a CRC32 over it is verified
//     before any restore applies it, and silent corruption of it (CRC
//     verification off) flows through restore into real SDC.
//   * the METADATA — simulator observability (statistics, microarch
//     latches, scrub pointers, per-bank geometry). It has no silicon
//     counterpart and is modeled as protected control state: kept
//     verbatim per record, never a fault target.
//
// Delta encoding (the same spirit as the dirty-PC IM dedup, DESIGN.md
// §11): most saves change a handful of registers and DM words, so a
// record normally stores only the words that differ from the current
// base KEYFRAME — a dirty-word bitmap per register file plus a dirty
// (bank, offset) cell list for DM. Every keyframe_interval saves (or
// whenever the delta would not actually be smaller) a full keyframe is
// stored instead and becomes the new base. The store keeps at most
// three records — newest delta, current keyframe, previous keyframe —
// and load() falls back along that chain when CRC verification rejects
// a record, so one storage strike costs re-execution, never silent
// corruption.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"

namespace ulpmc::cluster {

struct CkptStorageConfig {
    /// Delta-encode against the base keyframe (false: every record is a
    /// full keyframe).
    bool delta = true;
    /// Saves between full keyframes (1 = keyframes only).
    unsigned keyframe_interval = 8;
    /// Verify each record's CRC32 before a restore applies it; a failing
    /// record falls back to the next older one. Off, corruption flows
    /// through restore undetected (the campaign contrast arm).
    bool crc_verify = true;
};

struct CkptStorageStats {
    std::uint64_t keyframes = 0;
    std::uint64_t delta_saves = 0;
    std::uint64_t stored_bytes = 0;     ///< payload + record framing actually stored
    std::uint64_t full_equiv_bytes = 0; ///< what full keyframes would have stored
    std::uint64_t dirty_words = 0;      ///< payload words written by delta saves
    std::uint64_t crc_failures = 0;     ///< records rejected by verification
    std::uint64_t keyframe_fallbacks = 0; ///< restores served by an older record
};

/// The record store. Owns the encoded records; snapshots pass through by
/// value on store() and are reconstructed on load(). Buffers are reused
/// across saves, so steady state allocates nothing new.
class CheckpointStorage {
public:
    void reset(const CkptStorageConfig& cfg);

    /// Encodes `snap` as the newest record (delta against the current
    /// keyframe, or a new keyframe per the keyframe policy).
    void store(const Cluster::Snapshot& snap);

    /// Reconstructs the newest intact record into `out`, walking the
    /// fallback chain (delta -> current keyframe -> previous keyframe)
    /// past CRC-failing or structurally-corrupt records. Returns false
    /// when no intact record remains (detected, unrecoverable).
    bool load(Cluster::Snapshot& out);

    bool has_record() const { return delta_.valid || cur_key_.valid || prev_key_.valid; }

    /// Number of stored records (newest first: 0 = newest). Fault
    /// targets address (record, payload word).
    unsigned record_count() const;
    /// 32-bit payload words in record `slot` (slot < record_count()).
    std::uint64_t payload_words(unsigned slot);
    /// Flips `flip_mask` bits of payload word `word` of record `slot`
    /// WITHOUT updating the CRC — a storage strike, not a write.
    void corrupt(unsigned slot, std::uint64_t word, std::uint32_t flip_mask);

    const CkptStorageStats& stats() const { return stats_; }

private:
    struct Record {
        bool valid = false;
        bool keyframe = false;
        std::vector<std::uint8_t> payload;
        std::uint32_t crc = 0;
        Cluster::Snapshot meta; ///< protected control state (see header comment)
        /// Trusted payload geometry — structure is control state, only
        /// the data words in `payload` are the fault surface: per-DM-bank
        /// (cells, has_check), per-core dirty-word bitmaps and the dirty
        /// DM addresses (deltas), and the dirty-IM addresses (kept in
        /// meta.im_cells with their cell data zeroed).
        std::vector<std::uint32_t> dm_cells;
        std::vector<std::uint8_t> dm_has_check;
        std::vector<std::uint32_t> reg_masks; ///< bit i: arch word i differs from base
        struct DmAddr {
            std::uint8_t bank = 0;
            std::uint32_t offset = 0;
        };
        std::vector<DmAddr> dm_addrs;
    };

    void encode_keyframe(const Cluster::Snapshot& snap, Record& rec);
    /// Encodes `snap` as a delta against base_full_. Returns false when
    /// the delta payload would be no smaller than a keyframe's.
    bool encode_delta(const Cluster::Snapshot& snap, Record& rec);
    void copy_meta(const Cluster::Snapshot& snap, Record& rec) const;
    /// Decodes `rec` into `out`; for deltas, `out` must already hold the
    /// reconstructed base keyframe. Returns false on structural
    /// corruption (payload too short / geometry mismatch).
    bool decode(const Record& rec, Cluster::Snapshot& out) const;
    bool crc_ok(const Record& rec) const;
    std::uint64_t keyframe_payload_size(const Cluster::Snapshot& snap) const;

    Record* slot_ptr(unsigned slot);

    CkptStorageConfig cfg_;
    CkptStorageStats stats_;
    Record delta_;    ///< newest delta since the current keyframe
    Record cur_key_;  ///< the delta's base
    Record prev_key_; ///< last-resort fallback
    /// Pristine copy of the snapshot behind cur_key_, kept only to diff
    /// delta saves against (restores always re-decode from payload bytes
    /// so stored corruption genuinely propagates).
    Cluster::Snapshot base_full_;
    unsigned saves_since_key_ = 0;
};

} // namespace ulpmc::cluster
