// Run statistics collected by the cycle-accurate cluster. These counts are
// the only inputs the energy model needs (power = calibrated energy per
// event x event rate), and they directly feed the paper's §IV-C2
// cycle-count / IM-access-count comparison.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/state.hpp"
#include "xbar/crossbar.hpp"

namespace ulpmc::cluster {

/// Why a batched-tier lane left lockstep (DESIGN.md §11). Lives here, not
/// in batched.hpp, because the per-reason counters are part of
/// ClusterStats.
enum class PeelReason : std::uint8_t {
    FaultStrike,   ///< a memory/register fault was injected into the lane
    CrossbarUpset, ///< an arbiter glitch/state upset was injected
    Trap,          ///< the lane trapped while its siblings kept running
    Watchdog,      ///< the lane's watchdog fired off-lockstep
    MemoBail       ///< rejoin comparison failed; lane ran out privately
};
inline constexpr unsigned kPeelReasonCount = 5;

/// Display name ("fault_strike", ...): JSON artifact keys.
const char* peel_reason_name(PeelReason r);

/// Per-core counters.
struct CoreRunStats {
    std::uint64_t instret = 0;       ///< committed instructions ("ops")
    std::uint64_t stall_cycles = 0;  ///< cycles stalled on a denied grant
    std::uint64_t bubble_cycles = 0; ///< cycles with no instruction in EX
    std::uint64_t dm_loads = 0;      ///< committed data reads
    std::uint64_t dm_stores = 0;     ///< committed data writes
    std::uint64_t im_fetches = 0;    ///< instruction fetches served
    Cycle halted_at = 0;             ///< cycle the core halted (0 if never)
    core::Trap trap = core::Trap::None;

    friend bool operator==(const CoreRunStats&, const CoreRunStats&) = default;
};

/// Whole-cluster counters.
struct ClusterStats {
    Cycle cycles = 0; ///< total cycles until the last core halted
    std::vector<CoreRunStats> core;

    xbar::XbarStats ixbar; ///< instruction-side interconnect
    xbar::XbarStats dxbar; ///< data-side interconnect

    std::uint64_t im_bank_accesses = 0; ///< physical IM bank activations
    std::uint64_t dm_bank_reads = 0;
    std::uint64_t dm_bank_writes = 0;

    unsigned im_banks_used = 0;  ///< banks holding program content
    unsigned im_banks_gated = 0; ///< banks power gated for the whole run
    unsigned im_banks_total = kImBanks;

    // Resilience counters (DESIGN.md §9). Zero on every run without ECC /
    // injected faults, so the paper-reproduction statistics are unchanged.
    bool ecc_enabled = false;
    std::uint64_t ecc_im_corrected = 0;   ///< IM single-bit upsets fixed on read
    std::uint64_t ecc_dm_corrected = 0;   ///< DM single-bit upsets fixed on read
    std::uint64_t ecc_uncorrectable = 0;  ///< double-bit upsets detected (trap)
    std::uint64_t faults_injected = 0;    ///< SEU/glitch injections applied
    std::uint64_t watchdog_trips = 0;     ///< cores stopped by the watchdog

    // Register-file protection counters (DESIGN.md §9). Like the ECC
    // counters these stay zero on unprotected fault-free runs.
    core::RegProtection reg_protection = core::RegProtection::None;
    std::uint64_t reg_parity_traps = 0; ///< parity mismatches -> RegParityFault
    std::uint64_t reg_tmr_votes = 0;    ///< upset registers repaired by majority vote

    // Idle-cycle IM scrubbing counters (DESIGN.md §9). Zero unless
    // ClusterConfig::im_scrub is on.
    bool im_scrub_enabled = false;            ///< walker armed (from config)
    bool xbar_self_check = false;             ///< self-checking arbiters armed
    std::uint64_t im_scrub_reads = 0;         ///< scrub-walker bank reads
    std::uint64_t im_scrub_corrected = 0;     ///< latent upsets repaired by the walker
    std::uint64_t im_scrub_uncorrectable = 0; ///< double-bit words the walker found

    // Idle-cycle DM scrubbing counters (DESIGN.md §9). Zero unless
    // ClusterConfig::dm_scrub is on.
    bool dm_scrub_enabled = false;            ///< DM walker armed (from config)
    std::uint64_t dm_scrub_reads = 0;         ///< DM scrub-walker bank reads
    std::uint64_t dm_scrub_corrected = 0;     ///< latent DM upsets repaired by the walker
    std::uint64_t dm_scrub_uncorrectable = 0; ///< double-bit DM words the walker found

    // Batched-tier lane-divergence counters (DESIGN.md §11). A plain
    // Cluster never touches these; BatchedCluster::lane_stats() fills them
    // in so batched-tier efficiency is observable per lane: how many cycles
    // the lane rode the shared lockstep representative instead of being
    // simulated privately, how often it peeled off, and why.
    std::uint64_t batch_lockstep_cycles = 0;
    std::uint64_t batch_lane_peels = 0;
    std::array<std::uint64_t, kPeelReasonCount> batch_peel_reasons{};

    /// Observable correction/trap events — everything the hardware can
    /// count that indicates a particle actually struck (hijacked grants
    /// are deliberately absent: those are the SILENT corruption channel).
    /// The online upset-rate estimator (fault::UpsetRateEstimator)
    /// differences this across windows to track lambda without ground
    /// truth.
    std::uint64_t upset_events() const {
        return ecc_im_corrected + ecc_dm_corrected + ecc_uncorrectable + reg_parity_traps +
               reg_tmr_votes + im_scrub_corrected + im_scrub_uncorrectable +
               dm_scrub_corrected + dm_scrub_uncorrectable + watchdog_trips +
               ixbar.selfcheck_fixes + ixbar.selfcheck_resyncs + dxbar.selfcheck_fixes +
               dxbar.selfcheck_resyncs;
    }

    /// Total committed instructions over all cores (the paper's "Ops").
    std::uint64_t total_ops() const {
        std::uint64_t n = 0;
        for (const auto& c : core) n += c.instret;
        return n;
    }

    /// Aggregate useful throughput in operations per cycle, the quantity
    /// that converts a workload requirement [Ops/s] into a clock frequency.
    double ops_per_cycle() const {
        return cycles == 0 ? 0.0 : static_cast<double>(total_ops()) / static_cast<double>(cycles);
    }

    std::uint64_t dm_bank_accesses() const { return dm_bank_reads + dm_bank_writes; }

    /// Cores that ended in a trap (any kind). Nonzero means the run must
    /// not be reported as a success.
    unsigned cores_trapped() const {
        unsigned n = 0;
        for (const auto& c : core) n += c.trap != core::Trap::None;
        return n;
    }

    std::uint64_t ecc_corrected() const { return ecc_im_corrected + ecc_dm_corrected; }

    friend bool operator==(const ClusterStats&, const ClusterStats&) = default;
};

/// One-word status of core p: "halted", "running" (hit the cycle bound),
/// or "TRAP:<name>" — used by every bench/example summary so trapped runs
/// are impossible to miss.
std::string core_status(const CoreRunStats& c);

/// Prints the standard per-core run summary table (state, instructions,
/// stalls) plus one line of cluster-level resilience counters when any are
/// nonzero. Shared by the tools, examples and benches.
void print_run_summary(std::ostream& os, const ClusterStats& s);

} // namespace ulpmc::cluster
