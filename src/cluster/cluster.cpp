#include "cluster/cluster.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "isa/encoding.hpp"

namespace ulpmc::cluster {

// The data crossbar sees two master ports per core — the core's data-read
// and data-write ports (paper §III-A: three memory ports usable in the
// same cycle; the third is the instruction port on the I-Xbar).
static unsigned read_port(unsigned pid) { return 2 * pid; }
static unsigned write_port(unsigned pid) { return 2 * pid + 1; }

Cluster::Cluster(const ClusterConfig& cfg, const isa::Program& prog)
    : cfg_(cfg), im_map_(cfg.im_policy, cfg.im_banks, cfg.im_bank_words),
      ixbar_(cfg.cores, cfg.im_banks, cfg.im_broadcast),
      dxbar_(2 * cfg.cores, cfg.dm_banks, cfg.dm_broadcast) {
    reset(cfg, prog);
}

Cluster::Cluster(const ClusterConfig& cfg, std::shared_ptr<const isa::ProgramImage> image)
    : cfg_(cfg), im_map_(cfg.im_policy, cfg.im_banks, cfg.im_bank_words),
      ixbar_(cfg.cores, cfg.im_banks, cfg.im_broadcast),
      dxbar_(2 * cfg.cores, cfg.dm_banks, cfg.dm_broadcast) {
    reset(cfg, std::move(image));
}

void Cluster::reset(const ClusterConfig& cfg, const isa::Program& prog) {
    ULPMC_EXPECTS(!prog.text.empty());
    // Legacy single-instance path: derive the image in place (buffers are
    // reused, so a same-program reset stays allocation-free). Campaign and
    // sweep loops pass a shared image instead and skip this entirely.
    own_image_.rebuild(prog);
    shared_image_.reset();
    image_ptr_ = &own_image_;
    cfg_ = cfg;
    reset_from_image();
}

void Cluster::reset(const ClusterConfig& cfg, std::shared_ptr<const isa::ProgramImage> image) {
    ULPMC_EXPECTS(image != nullptr);
    ULPMC_EXPECTS(!image->text().empty());
    shared_image_ = std::move(image);
    image_ptr_ = shared_image_.get();
    cfg_ = cfg;
    reset_from_image();
}

void Cluster::reset_from_image() {
    const ClusterConfig& cfg = cfg_;
    const isa::ProgramImage& img = *image_ptr_;
    ULPMC_EXPECTS(cfg.cores > 0 && cfg.cores <= kNumCores);
    im_map_ = mmu::ImMap(cfg.im_policy, cfg.im_banks, cfg.im_bank_words);
    text_size_ = img.text_size();
    cycle_ = 0;
    trace_ = nullptr;
    direct_faults_ = 0;
    im_dirty_.clear();
    ixbar_.reset(cfg.cores, cfg.im_banks, cfg.im_broadcast);
    dxbar_.reset(2 * cfg.cores, cfg.dm_banks, cfg.dm_broadcast);
    ixbar_.set_fast_path(cfg.fast_path());
    dxbar_.set_fast_path(cfg.fast_path());
    ixbar_.set_self_check(cfg.xbar_self_check);
    dxbar_.set_self_check(cfg.xbar_self_check);
    im_scrub_ptr_.assign(cfg.im_banks, 0);
    dm_scrub_ptr_.assign(cfg.dm_banks, 0);
    dm_busy_banks_ = 0;
    predecoded_.reset(cfg.im_banks, cfg.im_bank_words);

    // --- (re)construct memories ---------------------------------------------
    im_banks_.resize(cfg.im_banks);
    for (auto& b : im_banks_) b.reset(cfg.im_bank_words, 24, cfg.ecc_enabled);
    dm_banks_.resize(cfg.dm_banks);
    for (auto& b : dm_banks_) b.reset(cfg.dm_bank_words, 16, cfg.ecc_enabled);

    // --- statistics (scalar fields reset, per-core vector storage reused) ---
    {
        std::vector<CoreRunStats> keep = std::move(stats_.core);
        stats_ = {};
        stats_.core = std::move(keep);
        stats_.core.assign(cfg.cores, {});
        stats_.ecc_enabled = cfg.ecc_enabled;
        stats_.reg_protection = cfg.reg_protection;
        stats_.im_scrub_enabled = cfg.im_scrub;
        stats_.dm_scrub_enabled = cfg.dm_scrub;
        stats_.xbar_self_check = cfg.xbar_self_check;
    }

    // --- (re)construct cores ------------------------------------------------
    cores_.clear();
    cores_.reserve(cfg.cores);
    for (unsigned p = 0; p < cfg.cores; ++p) {
        CoreCtx c{.state = {}, .mmu = mmu::DataMmu(cfg.dm_layout, static_cast<CoreId>(p),
                                                    cfg.dm_banks, cfg.dm_bank_words)};
        c.start_cycle = cfg.stagger_start ? static_cast<Cycle>(p) : 0;
        c.state.pc = img.entry();
        cores_.push_back(std::move(c));
    }
    active_cores_.clear();
    active_cores_.reserve(cfg.cores);
    for (unsigned p = 0; p < cfg.cores; ++p) active_cores_.push_back(static_cast<CoreId>(p));
    active_dirty_ = false;

    // --- per-cycle scratch --------------------------------------------------
    dm_req_.assign(2 * cfg.cores, {});
    dm_grant_.assign(2 * cfg.cores, {});
    im_req_.assign(cfg.cores, {});
    im_grant_.assign(cfg.cores, {});
    fetch_pc_.assign(cfg.cores, 0);

    // --- load text ----------------------------------------------------------
    // The decode was done once when the ProgramImage was built; each
    // instance only pokes the words into its banks and copies the
    // pre-derived entries into its side array (DESIGN.md §11). Under the
    // Dedicated policy that turns N-replica re-decoding into N copies.
    const auto& text = img.text();
    if (cfg.im_policy == mmu::ImPolicy::Dedicated) {
        ULPMC_EXPECTS(text.size() <= cfg.im_bank_words);
        for (unsigned b = 0; b < cfg.im_banks; ++b) {
            for (std::size_t i = 0; i < text.size(); ++i) {
                im_banks_[b].poke(i, text[i]);
                predecoded_.set_entry(static_cast<BankId>(b), static_cast<std::uint32_t>(i),
                                      img.decoded(static_cast<PAddr>(i)));
            }
        }
    } else {
        for (std::size_t i = 0; i < text.size(); ++i) {
            const auto pa = im_map_.translate(static_cast<PAddr>(i), 0);
            ULPMC_EXPECTS(pa.has_value());
            im_banks_[pa->bank].poke(pa->offset, text[i]);
            predecoded_.set_entry(pa->bank, pa->offset, img.decoded(static_cast<PAddr>(i)));
        }
    }

    // --- PC-indexed fetch table ---------------------------------------------
    // For PID-independent policies, resolve every reachable PC once:
    // translate + predecode-lookup collapse into a single indexed read on
    // the per-cycle fetch path. Built via the ImMap itself, so the mapping
    // (and the set of faulting PCs) is identical by construction.
    if (cfg_.fast_path() && cfg_.im_policy != mmu::ImPolicy::Dedicated) {
        // Sized to the loaded text, not the full IM capacity: every fetch
        // beyond text_size_ traps before the table is consulted, so the
        // out-of-text entries were dead weight (32k slots per reset).
        const std::size_t words = std::min<std::size_t>(
            text_size_, static_cast<std::size_t>(cfg_.im_banks) * cfg_.im_bank_words);
        fetch_table_.resize(words);
        for (std::size_t pc = 0; pc < words; ++pc) {
            const auto pa = im_map_.translate(static_cast<PAddr>(pc), 0);
            ULPMC_ASSERT(pa.has_value());
            fetch_table_[pc] = {.pre = predecoded_.lookup(pa->bank, pa->offset),
                                .bank = pa->bank,
                                .offset = pa->offset};
        }
    } else {
        fetch_table_.clear();
    }

    // --- superblock map (trace/batched engines) ------------------------------
    if (cfg_.trace_path()) {
        // Copy the image's pre-built map instead of re-deriving it; the
        // copy-assignments reuse this instance's buffer capacity.
        text_image_.assign(text.begin(), text.end());
        blockmap_ = img.blockmap();
    } else {
        text_image_.clear();
        blockmap_.rebuild(text_image_);
    }

    stats_.im_banks_used = im_map_.banks_used(text.size());
    if (cfg.gate_unused_im_banks) {
        for (unsigned b = stats_.im_banks_used; b < cfg.im_banks; ++b)
            im_banks_[b].set_power_gated(true);
        stats_.im_banks_gated = cfg.im_banks - stats_.im_banks_used;
    }
    stats_.im_banks_total = cfg.im_banks;

    // --- load data image ----------------------------------------------------
    const auto& data = img.data();
    ULPMC_EXPECTS(data.size() <= cfg.dm_layout.limit());
    const std::size_t shared_end = std::min<std::size_t>(data.size(), cfg.dm_layout.shared_words);
    for (std::size_t v = 0; v < shared_end; ++v) {
        const auto pa = cores_[0].mmu.translate(static_cast<Addr>(v));
        ULPMC_ASSERT(pa.has_value());
        dm_banks_[pa->bank].poke(pa->offset, data[v]);
    }
    for (std::size_t v = cfg.dm_layout.shared_words; v < data.size(); ++v) {
        for (auto& c : cores_) {
            const auto pa = c.mmu.translate(static_cast<Addr>(v));
            ULPMC_ASSERT(pa.has_value());
            dm_banks_[pa->bank].poke(pa->offset, data[v]);
        }
    }
}

const core::CoreState& Cluster::core_state(CoreId pid) const {
    ULPMC_EXPECTS(pid < cores_.size());
    return cores_[pid].state;
}

bool Cluster::core_halted(CoreId pid) const {
    ULPMC_EXPECTS(pid < cores_.size());
    return cores_[pid].halted;
}

core::Trap Cluster::core_trap(CoreId pid) const {
    ULPMC_EXPECTS(pid < cores_.size());
    return cores_[pid].trap;
}

Word Cluster::dm_peek(CoreId pid, Addr vaddr) const {
    ULPMC_EXPECTS(pid < cores_.size());
    const auto pa = cores_[pid].mmu.translate(vaddr);
    ULPMC_EXPECTS(pa.has_value());
    return static_cast<Word>(dm_banks_[pa->bank].peek(pa->offset));
}

void Cluster::dm_poke(CoreId pid, Addr vaddr, Word value) {
    ULPMC_EXPECTS(pid < cores_.size());
    const auto pa = cores_[pid].mmu.translate(vaddr);
    ULPMC_EXPECTS(pa.has_value());
    dm_banks_[pa->bank].poke(pa->offset, value);
}

InstrWord Cluster::im_peek(PAddr pc, CoreId pid) const {
    ULPMC_EXPECTS(pid < cores_.size());
    const auto pa = im_map_.translate(pc, pid);
    ULPMC_EXPECTS(pa.has_value());
    return static_cast<InstrWord>(im_banks_[pa->bank].peek(pa->offset));
}

void Cluster::im_poke(PAddr pc, InstrWord word) {
    // Mirrors the loader: the Dedicated policy replicates text per core,
    // so a patch must reach every replica. Each poke re-decodes exactly
    // the poked word, keeping the fast path coherent.
    const unsigned replicas = cfg_.im_policy == mmu::ImPolicy::Dedicated ? cfg_.cores : 1;
    for (unsigned p = 0; p < replicas; ++p) {
        const auto pa = im_map_.translate(pc, static_cast<CoreId>(p));
        ULPMC_EXPECTS(pa.has_value());
        // A core whose EX slot aliases the refreshed entry keeps the
        // instruction it latched at fetch (what the hardware — and the
        // slow path, which copies at decode — would execute).
        const isa::DecodedInstr& old = predecoded_.entry(pa->bank, pa->offset);
        for (auto& c : cores_) {
            if (c.ex == &old.instr) {
                c.ex_buf = old.instr;
                c.ex = &c.ex_buf;
            }
        }
        im_banks_[pa->bank].poke(pa->offset, word);
        predecoded_.refresh(pa->bank, pa->offset, word);
        if (pc < fetch_table_.size())
            fetch_table_[pc].pre = predecoded_.lookup(pa->bank, pa->offset);
    }
    refresh_blockmap(pc, word);
}

void Cluster::refresh_blockmap(PAddr pc, InstrWord readback) {
    if (std::find(im_dirty_.begin(), im_dirty_.end(), pc) == im_dirty_.end())
        im_dirty_.push_back(pc);
    if (!cfg_.trace_path() || pc >= text_image_.size()) return;
    text_image_[pc] = readback & kInstrWordMask;
    blockmap_.rebuild(text_image_);
}

void Cluster::save(Snapshot& out) const {
    out.cycle = cycle_;
    // Through the accessor: the crossbar / resilience aggregates sync
    // lazily, and saved_stats() consumers (rejoin-tail materialization)
    // need the fully materialized view.
    out.stats = stats();
    out.direct_faults = direct_faults_;
    out.cores = cores_;
    // Materialize every live EX slot into its ex_buf so the snapshot is
    // self-contained: a slot aliasing this instance's predecoded_ array
    // would otherwise pin the snapshot to this instance (the batched tier
    // restores a representative's rung into per-lane clusters). Content is
    // identical either way — the re-latch in im_poke/inject_im_fault just
    // becomes a no-op for restored cores.
    out.ex_in_buf.assign(cores_.size(), 0);
    for (std::size_t p = 0; p < cores_.size(); ++p) {
        const CoreCtx& c = cores_[p];
        out.ex_in_buf[p] = c.ex != nullptr ? 1 : 0;
        if (c.ex != nullptr && c.ex != &c.ex_buf) out.cores[p].ex_buf = *c.ex;
    }
    // Deduplicated IM capture: per-bank stats/flags plus the raw state of
    // exactly the dirty cells (see the Snapshot class comment).
    out.im_dirty = im_dirty_;
    out.im_cells.clear();
    const unsigned replicas = cfg_.im_policy == mmu::ImPolicy::Dedicated ? cfg_.cores : 1;
    for (const PAddr pc : im_dirty_) {
        for (unsigned p = 0; p < replicas; ++p) {
            const auto pa = im_map_.translate(pc, static_cast<CoreId>(p));
            ULPMC_EXPECTS(pa.has_value());
            out.im_cells.push_back(
                {pc, pa->bank, pa->offset, im_banks_[pa->bank].cell_state(pa->offset)});
        }
    }
    out.im_stats.resize(im_banks_.size());
    out.im_uncorrectable.resize(im_banks_.size());
    for (std::size_t b = 0; b < im_banks_.size(); ++b) {
        out.im_stats[b] = im_banks_[b].stats();
        out.im_uncorrectable[b] = im_banks_[b].uncorrectable_pending() ? 1 : 0;
    }
    out.dm_banks.resize(dm_banks_.size());
    for (std::size_t b = 0; b < dm_banks_.size(); ++b) dm_banks_[b].save(out.dm_banks[b]);
    ixbar_.save(out.ixbar);
    dxbar_.save(out.dxbar);
    out.im_scrub_ptr = im_scrub_ptr_;
    out.dm_scrub_ptr = dm_scrub_ptr_;
}

void Cluster::restore(const Snapshot& s) {
    ULPMC_EXPECTS(s.cores.size() == cores_.size());
    ULPMC_EXPECTS(s.im_stats.size() == im_banks_.size());
    ULPMC_EXPECTS(s.dm_banks.size() == dm_banks_.size());
    cycle_ = s.cycle;
    stats_ = s.stats;
    direct_faults_ = s.direct_faults;
    cores_ = s.cores;
    // save() materialized every live EX slot into its ex_buf; re-aim the
    // pointers at THIS instance's copies (the copied pointer values may
    // reference the source instance).
    for (std::size_t p = 0; p < cores_.size(); ++p)
        cores_[p].ex = s.ex_in_buf[p] ? &cores_[p].ex_buf : nullptr;

    // IM roll-back from the deduplicated capture: cells can disagree with
    // the snapshot only at PCs dirty now or dirty at save time. Return the
    // union to pristine (poke re-encodes check bits exactly as the loader
    // did), then lay the saved raw cells back down.
    im_dirty_union_.assign(im_dirty_.begin(), im_dirty_.end());
    for (const PAddr pc : s.im_dirty)
        if (std::find(im_dirty_union_.begin(), im_dirty_union_.end(), pc) ==
            im_dirty_union_.end())
            im_dirty_union_.push_back(pc);
    const auto& text = image_ptr_->text();
    const unsigned replicas = cfg_.im_policy == mmu::ImPolicy::Dedicated ? cfg_.cores : 1;
    for (const PAddr pc : im_dirty_union_) {
        const InstrWord pristine = pc < text.size() ? text[pc] : 0;
        for (unsigned p = 0; p < replicas; ++p) {
            const auto pa = im_map_.translate(pc, static_cast<CoreId>(p));
            ULPMC_EXPECTS(pa.has_value());
            im_banks_[pa->bank].poke(pa->offset, pristine);
        }
    }
    for (const Snapshot::ImCell& c : s.im_cells) im_banks_[c.bank].set_cell_state(c.offset, c.cell);
    for (std::size_t b = 0; b < im_banks_.size(); ++b) {
        im_banks_[b].set_stats(s.im_stats[b]);
        im_banks_[b].set_uncorrectable_pending(s.im_uncorrectable[b] != 0);
    }
    im_dirty_ = s.im_dirty;
    for (std::size_t b = 0; b < dm_banks_.size(); ++b) dm_banks_[b].restore(s.dm_banks[b]);
    ixbar_.restore(s.ixbar);
    dxbar_.restore(s.dxbar);
    im_scrub_ptr_ = s.im_scrub_ptr;
    dm_scrub_ptr_ = s.dm_scrub_ptr;

    // Decode caches: rolling the cells back can strand the cache entries of
    // any word that was dirty on either side; re-derive exactly those from
    // the restored cells (the readback view, as inject_im_fault would).
    if (!im_dirty_union_.empty()) {
        for (const PAddr pc : im_dirty_union_) {
            InstrWord readback = 0;
            for (unsigned p = 0; p < replicas; ++p) {
                const auto pa = im_map_.translate(pc, static_cast<CoreId>(p));
                ULPMC_EXPECTS(pa.has_value());
                readback =
                    static_cast<InstrWord>(im_banks_[pa->bank].peek(pa->offset)) & kInstrWordMask;
                predecoded_.refresh(pa->bank, pa->offset, readback);
                if (pc < fetch_table_.size())
                    fetch_table_[pc].pre = predecoded_.lookup(pa->bank, pa->offset);
            }
            if (cfg_.trace_path() && pc < text_image_.size()) text_image_[pc] = readback;
        }
        if (cfg_.trace_path()) blockmap_.rebuild(text_image_);
    }

    // Arbitration scratch and the active-core list are derived state.
    for (auto& r : im_req_) r = {};
    for (auto& r : dm_req_) r = {};
    active_cores_.clear();
    for (unsigned p = 0; p < cores_.size(); ++p)
        if (!core_done(cores_[p])) active_cores_.push_back(static_cast<CoreId>(p));
    active_dirty_ = false;
}

bool Cluster::state_equals(const Snapshot& s) const {
    if (cycle_ != s.cycle || cores_.size() != s.cores.size()) return false;
    for (std::size_t p = 0; p < cores_.size(); ++p) {
        const CoreCtx& a = cores_[p];
        const CoreCtx& b = s.cores[p];
        if (!(a.state == b.state)) return false;
        if (a.halted != b.halted || a.in_barrier != b.in_barrier || a.trap != b.trap ||
            a.last_commit != b.last_commit || a.reg_bad != b.reg_bad ||
            a.reg_parity_bad != b.reg_parity_bad)
            return false;
        // EX slot by content (the snapshot materialized it into ex_buf).
        if ((a.ex != nullptr) != (s.ex_in_buf[p] != 0)) return false;
        if (a.ex != nullptr && !(*a.ex == b.ex_buf)) return false;
        if (a.plan.load != b.plan.load || a.plan.store != b.plan.store) return false;
        if (a.has_load != b.has_load || a.has_store != b.has_store ||
            a.load_done != b.load_done || a.loaded != b.loaded)
            return false;
        if (a.has_load && !(a.load_pa == b.load_pa)) return false;
        if (a.has_store && !(a.store_pa == b.store_pa)) return false;
    }
    // IM cells: both sides are pristine off their dirty lists, so only the
    // union needs comparing. Expected state of a PC on the snapshot's
    // dirty list is its saved raw cell; off it, the pristine image word.
    const auto& text = image_ptr_->text();
    const unsigned replicas = cfg_.im_policy == mmu::ImPolicy::Dedicated ? cfg_.cores : 1;
    const auto pc_matches = [&](PAddr pc) {
        for (unsigned p = 0; p < replicas; ++p) {
            const auto pa = im_map_.translate(pc, static_cast<CoreId>(p));
            ULPMC_EXPECTS(pa.has_value());
            const auto actual = im_banks_[pa->bank].cell_state(pa->offset);
            mem::MemoryBank::CellState expected;
            bool saved = false;
            for (const Snapshot::ImCell& c : s.im_cells) {
                if (c.pc == pc && c.bank == pa->bank && c.offset == pa->offset) {
                    expected = c.cell;
                    saved = true;
                    break;
                }
            }
            if (!saved) {
                const InstrWord pristine = pc < text.size() ? text[pc] : 0;
                expected.cell = pristine;
                expected.check =
                    cfg_.ecc_enabled ? mem::ecc::encode(pristine, 24) : std::uint8_t{0};
            }
            if (!(actual == expected)) return false;
        }
        return true;
    };
    for (const PAddr pc : im_dirty_)
        if (!pc_matches(pc)) return false;
    for (const PAddr pc : s.im_dirty) {
        if (std::find(im_dirty_.begin(), im_dirty_.end(), pc) != im_dirty_.end()) continue;
        if (!pc_matches(pc)) return false;
    }
    for (std::size_t b = 0; b < im_banks_.size(); ++b)
        if (im_banks_[b].uncorrectable_pending() != (s.im_uncorrectable[b] != 0)) return false;
    for (std::size_t b = 0; b < dm_banks_.size(); ++b)
        if (!dm_banks_[b].state_equals(s.dm_banks[b])) return false;
    if (!ixbar_.state_equals(s.ixbar) || !dxbar_.state_equals(s.dxbar)) return false;
    return im_scrub_ptr_ == s.im_scrub_ptr && dm_scrub_ptr_ == s.dm_scrub_ptr;
}

void Cluster::inject_dm_fault(CoreId pid, Addr vaddr, Word flip_mask) {
    ULPMC_EXPECTS(pid < cores_.size());
    const auto pa = cores_[pid].mmu.translate(vaddr);
    ULPMC_EXPECTS(pa.has_value());
    dm_banks_[pa->bank].corrupt(pa->offset, flip_mask);
}

void Cluster::inject_im_fault(PAddr pc, InstrWord flip_mask) {
    // Same structure as im_poke — the strike reaches every replica under
    // the Dedicated policy — but the bank cell is corrupted in place
    // (check bits untouched) and the pre-decoded side array is refreshed
    // from the bank's *readback* view: the corrected word when ECC heals
    // the flip, the corrupted word when it doesn't.
    const unsigned replicas = cfg_.im_policy == mmu::ImPolicy::Dedicated ? cfg_.cores : 1;
    InstrWord readback = 0;
    for (unsigned p = 0; p < replicas; ++p) {
        const auto pa = im_map_.translate(pc, static_cast<CoreId>(p));
        ULPMC_EXPECTS(pa.has_value());
        const isa::DecodedInstr& old = predecoded_.entry(pa->bank, pa->offset);
        for (auto& c : cores_) {
            if (c.ex == &old.instr) {
                c.ex_buf = old.instr;
                c.ex = &c.ex_buf;
            }
        }
        im_banks_[pa->bank].corrupt(pa->offset, flip_mask & kInstrWordMask);
        readback = static_cast<InstrWord>(im_banks_[pa->bank].peek(pa->offset)) & kInstrWordMask;
        predecoded_.refresh(pa->bank, pa->offset, readback);
        if (pc < fetch_table_.size())
            fetch_table_[pc].pre = predecoded_.lookup(pa->bank, pa->offset);
    }
    refresh_blockmap(pc, readback);
}

void Cluster::inject_reg_fault(CoreId pid, unsigned reg, Word flip_mask) {
    ULPMC_EXPECTS(pid < cores_.size());
    ULPMC_EXPECTS(reg < kNumRegisters);
    CoreCtx& c = cores_[pid];
    const Word bit = static_cast<Word>(Word{1} << reg);
    if (cfg_.reg_protection == core::RegProtection::Tmr) {
        // The strike lands in one of the three TMR copies: the voted
        // (architectural) value stays correct, and the next read's
        // majority vote repairs the struck copy (counted in the guard).
        c.reg_bad |= bit;
    } else {
        c.state.regs[reg] ^= flip_mask;
        c.reg_bad |= bit;
        // The parity checker only sees an odd number of flipped bits;
        // repeated strikes on the same register toggle the mismatch.
        if (std::popcount(static_cast<unsigned>(flip_mask)) % 2 != 0) c.reg_parity_bad ^= bit;
    }
    ++direct_faults_;
}

bool Cluster::reg_fault_guard(CoreCtx& c, const isa::Instruction& in) {
    const core::RegAccess a = core::reg_access(in);
    const Word touched = static_cast<Word>(a.read & c.reg_bad);
    if (touched != 0) {
        switch (cfg_.reg_protection) {
        case core::RegProtection::Tmr:
            // Every read port votes 2-of-3 and writes the repaired value
            // back into the struck copy: the upset is masked in place.
            stats_.reg_tmr_votes += static_cast<unsigned>(std::popcount(touched));
            break;
        case core::RegProtection::Parity:
            if ((touched & c.reg_parity_bad) != 0) {
                ++stats_.reg_parity_traps;
                c.reg_bad &= static_cast<Word>(~touched);
                c.reg_parity_bad &= static_cast<Word>(~touched);
                raise_trap(c, core::Trap::RegParityFault);
                return false;
            }
            break; // even-parity corruption slips past the checker
        case core::RegProtection::None:
            break; // the corrupted value flows into the datapath
        }
        c.reg_bad &= static_cast<Word>(~touched);
        c.reg_parity_bad &= static_cast<Word>(~touched);
    }
    // A write overwrites the upset before anything could observe it.
    c.reg_bad &= static_cast<Word>(~a.write);
    c.reg_parity_bad &= static_cast<Word>(~a.write);
    return true;
}

unsigned Cluster::pending_reg_faults() const {
    unsigned n = 0;
    for (const auto& c : cores_) n += static_cast<unsigned>(std::popcount(c.reg_bad));
    return n;
}

Word Cluster::pending_reg_faults(CoreId pid) const {
    ULPMC_EXPECTS(pid < cores_.size());
    return cores_[pid].reg_bad;
}

bool Cluster::reg_parity_pending() const {
    if (cfg_.reg_protection != core::RegProtection::Parity) return false;
    for (const auto& c : cores_)
        if (c.reg_parity_bad != 0) return true;
    return false;
}

bool Cluster::reg_parity_pending(CoreId pid) const {
    ULPMC_EXPECTS(pid < cores_.size());
    return cfg_.reg_protection == core::RegProtection::Parity &&
           cores_[pid].reg_parity_bad != 0;
}

void Cluster::scrub_registers() {
    if (cfg_.reg_protection != core::RegProtection::Tmr) return;
    for (auto& c : cores_) {
        if (c.reg_bad == 0) continue;
        stats_.reg_tmr_votes += static_cast<unsigned>(std::popcount(c.reg_bad));
        c.reg_bad = 0;
        c.reg_parity_bad = 0;
    }
}

void Cluster::inject_xbar_glitch(bool instruction_side, const xbar::Glitch& g) {
    (instruction_side ? ixbar_ : dxbar_).inject_glitch(g);
    ++direct_faults_;
}

void Cluster::inject_xbar_state(bool instruction_side, const xbar::ArbiterUpset& u) {
    (instruction_side ? ixbar_ : dxbar_).inject_arbiter_upset(u);
    ++direct_faults_;
}

std::size_t Cluster::dm_latent_upsets() const {
    std::size_t n = 0;
    for (const auto& b : dm_banks_) n += b.latent_upsets();
    return n;
}

std::size_t Cluster::im_latent_upsets() const {
    std::size_t n = 0;
    for (const auto& b : im_banks_)
        if (!b.power_gated()) n += b.latent_upsets();
    return n;
}

void Cluster::sync_resilience_stats() const {
    std::uint64_t im_corr = 0, dm_corr = 0, uncorr = 0, injected = direct_faults_;
    for (const auto& b : im_banks_) {
        im_corr += b.stats().ecc_corrected;
        uncorr += b.stats().ecc_uncorrectable;
        injected += b.stats().faults_injected;
    }
    for (const auto& b : dm_banks_) {
        dm_corr += b.stats().ecc_corrected;
        uncorr += b.stats().ecc_uncorrectable;
        injected += b.stats().faults_injected;
    }
    stats_.ecc_im_corrected = im_corr;
    stats_.ecc_dm_corrected = dm_corr;
    stats_.ecc_uncorrectable = uncorr;
    stats_.faults_injected = injected;
}

void Cluster::raise_trap(CoreCtx& c, core::Trap t) {
    c.trap = t;
    c.ex = nullptr;
    const auto pid = static_cast<std::size_t>(&c - cores_.data());
    emit(static_cast<CoreId>(pid), EventKind::Trap, static_cast<std::uint32_t>(t));
    stats_.core[pid].trap = t;
    stats_.core[pid].halted_at = cycle_;
    stats_.cycles = std::max(stats_.cycles, cycle_);
    retire_core(static_cast<CoreId>(pid));
}

void Cluster::retire_core(CoreId pid) {
    im_req_[pid] = {};
    dm_req_[read_port(pid)] = {};
    dm_req_[write_port(pid)] = {};
    active_dirty_ = true;
}

bool Cluster::step() {
    if (active_dirty_) {
        std::erase_if(active_cores_, [this](CoreId p) { return core_done(cores_[p]); });
        active_dirty_ = false;
    }
    if (active_cores_.empty()) return false;

    ++cycle_;
    execute_phase();
    if (cfg_.dm_scrub) scrub_dm_phase(dm_busy_banks_);
    const std::uint32_t fetched_banks = fetch_phase();
    if (cfg_.im_scrub) scrub_im_phase(fetched_banks);
    if (cfg_.watchdog_cycles > 0) watchdog_phase();

    // Keep the cycle counter live every cycle, so a run that hits its
    // max_cycles bound while cores still execute reports the cycles it
    // actually simulated (not the last halt/trap bookkeeping point). The
    // crossbar aggregates are synced lazily in stats() instead of copied
    // here every cycle.
    stats_.cycles = cycle_;
    return true;
}

Cycle Cluster::run(Cycle max_cycles) {
    if (cfg_.trace_path()) {
        // Alternate between superblock bursts (whenever the state is
        // burst-eligible) and generic cycles (multi-core phases, dual-port
        // instructions, armed glitches, staggered warm-up).
        while (cycle_ < max_cycles) {
            if (trace_burst(max_cycles)) continue;
            if (!step()) break;
        }
        return stats_.cycles;
    }
    while (cycle_ < max_cycles && step()) {
    }
    return stats_.cycles;
}

bool Cluster::trace_burst(Cycle max_cycles) {
    // ---- burst eligibility (DESIGN.md §10: engine-tier legality) -----------
    // The conflict-free proof needs a sole active core: every crossbar
    // request is then the only one raised, so each cycle grants fully and
    // commits in one cycle — no stall, bubble, denial, or broadcast ride
    // can occur, and the block memo's cycle count is exact.
    if (trace_ != nullptr) return false; // event sinks need per-cycle phases
    if (active_dirty_) {
        std::erase_if(active_cores_, [this](CoreId p) { return core_done(cores_[p]); });
        active_dirty_ = false;
    }
    if (active_cores_.size() != 1) return false;
    const CoreId p = active_cores_[0];
    CoreCtx& c = cores_[p];
    if (c.in_barrier) return false;
    // A pending register upset needs the per-cycle protection guard
    // (vote/trap on the first consuming read); the generic engine takes
    // over until the tracking mask clears.
    if (c.reg_bad != 0) return false;
    if (cycle_ < c.start_cycle) return false; // staggered warm-up: generic
    // A dual-port instruction (load + store in one cycle) can conflict
    // with itself on the D-Xbar; its timing belongs to the full arbiter.
    // (load_done can only be pending for such an instruction.)
    if (c.ex && ((c.has_load && c.has_store) || c.load_done)) return false;
    // An armed one-shot glitch must be consumed by a real arbitration.
    if (ixbar_.glitch_pending() || dxbar_.glitch_pending()) return false;
    // A pending arbiter-state upset (stuck RR pointer / flipped grant
    // register) changes per-cycle arbitration outcomes: the generic
    // engine's full arbiter must run until it is consumed or repaired.
    if (ixbar_.arbiter_upset_pending() || dxbar_.arbiter_upset_pending()) return false;
    // The scrub walkers advance one word per idle bank per cycle — state
    // the burst cannot replay in batch.
    if (cfg_.im_scrub || cfg_.dm_scrub) return false;

    // ---- batched statistics ------------------------------------------------
    // Bank reads/writes and per-commit counters go through the same calls
    // as the generic engine (exact per-bank parity); the per-cycle crossbar
    // and fetch aggregates are accumulated locally and flushed once.
    std::uint64_t fetches = 0;   // stats_.core[p].im_fetches
    std::uint64_t xbar_im = 0;   // uncontended I-Xbar grant cycles
    std::uint64_t xbar_dm = 0;   // uncontended D-Xbar grant cycles
    std::uint64_t lane_instret = 0; // commits made by the memo lane
    std::uint32_t lane = 0;      // mem-free straight-line instructions ahead
    const bool use_table = !fetch_table_.empty();

    // Fetches the instruction at c.state.pc into EX — the same cycle as
    // the commit that preceded it, exactly like fetch_phase. Returns false
    // when the burst must end: a trap was raised here, or the fetched
    // instruction needs the generic engine (dual-port). Arms the memo lane
    // when the pc opens a mem-free straight-line run.
    const auto fetch_step = [&]() -> bool {
        const PAddr pc = c.state.pc;
        if (pc >= text_size_) {
            raise_trap(c, core::Trap::FetchFault);
            return false;
        }
        const isa::DecodedInstr* pre;
        BankId bank_id;
        std::uint32_t offset;
        if (use_table) {
            const FetchSlot& fs = fetch_table_[pc];
            pre = fs.pre;
            bank_id = fs.bank;
            offset = fs.offset;
        } else {
            const auto pa = im_map_.translate(pc, p);
            if (!pa) {
                raise_trap(c, core::Trap::FetchFault);
                return false;
            }
            pre = predecoded_.lookup(pa->bank, pa->offset);
            bank_id = pa->bank;
            offset = pa->offset;
        }
        auto& ibank = im_banks_[bank_id];
        if (ibank.power_gated()) {
            raise_trap(c, core::Trap::FetchFault);
            return false;
        }
        (void)ibank.read(offset); // keeps per-bank access stats identical
        ++stats_.im_bank_accesses;
        ++xbar_im;
        if (cfg_.ecc_enabled && ibank.take_uncorrectable()) {
            raise_trap(c, core::Trap::EccFault);
            return false;
        }
        ++fetches;
        if (!pre) {
            raise_trap(c, core::Trap::IllegalInstruction);
            return false;
        }
        c.ex = &pre->instr;
        c.has_load = false;
        c.has_store = false;
        c.load_done = false;
        c.loaded.reset();
        if (!pre->has_mem) {
            c.plan = {};
            // Memo lane: the block map proved a straight-line memory-free
            // run ahead of pc (with a fetch-safe word after it) — replay
            // its timing without per-cycle checks. (Needs the PC-indexed
            // fetch table, so not under Dedicated.)
            if (use_table) lane = blockmap_.memo_lane(pc);
            return true;
        }
        c.plan = core::plan_memory(*c.ex, c.state);
        if (c.plan.load) {
            const auto lpa = c.mmu.translate(*c.plan.load);
            if (!lpa) {
                raise_trap(c, core::Trap::MemoryFault);
                return false;
            }
            c.load_pa = *lpa;
            c.has_load = true;
        }
        if (c.plan.store) {
            if (cfg_.barrier_enabled && *c.plan.store == kBarrierAddr) {
                // Barrier register: completes without touching data memory.
            } else {
                const auto spa = c.mmu.translate(*c.plan.store);
                if (!spa) {
                    raise_trap(c, core::Trap::MemoryFault);
                    return false;
                }
                c.store_pa = *spa;
                c.has_store = true;
            }
        }
        return !(c.has_load && c.has_store);
    };

    // ---- prime: cold EX slot — a fetch-only cycle, like the reference ------
    if (!c.ex) {
        ++cycle_;
        const bool ok = fetch_step();
        // No commit happened this cycle, so the watchdog check is live
        // (reference: watchdog_phase runs every cycle).
        if (ok && cfg_.watchdog_cycles > 0) {
            const Cycle anchor = std::max(c.last_commit, c.start_cycle);
            if (cycle_ >= anchor && cycle_ - anchor >= cfg_.watchdog_cycles) {
                ++stats_.watchdog_trips;
                raise_trap(c, core::Trap::Watchdog);
            }
        }
    }

    // ---- fused commit+fetch cycles -----------------------------------------
    while (c.ex && cycle_ < max_cycles) {
        if (lane > 0) {
            // Memo lane: every instruction ahead is decoded, legal, memory-
            // free and non-branching (the block terminator is left to the
            // generic path below), so each cycle is execute + sequential
            // fetch with nothing to check. `plan` stays empty, set by the
            // fetch that armed the lane.
            const Cycle budget = max_cycles - cycle_;
            std::uint32_t n = lane;
            if (budget < n) n = static_cast<std::uint32_t>(budget);
            lane -= n;
            bool ecc_trap = false;
            for (std::uint32_t i = 0; i < n; ++i) {
                ++cycle_;
                (void)core::execute_inplace(*c.ex, c.state, c.loaded);
                const FetchSlot& fs = fetch_table_[c.state.pc];
                (void)im_banks_[fs.bank].read(fs.offset);
                if (cfg_.ecc_enabled && im_banks_[fs.bank].take_uncorrectable()) {
                    // i + 1 commits happened; i fetches completed and the
                    // faulting one still occupied its bank port (the
                    // reference counts the access before the ECC check).
                    c.last_commit = cycle_;
                    lane_instret += i + 1;
                    stats_.im_bank_accesses += i + 1;
                    xbar_im += i + 1;
                    fetches += i;
                    raise_trap(c, core::Trap::EccFault);
                    ecc_trap = true;
                    break;
                }
                c.ex = &fs.pre->instr;
            }
            if (ecc_trap) break;
            c.last_commit = cycle_;
            lane_instret += n;
            stats_.im_bank_accesses += n;
            xbar_im += n;
            fetches += n;
            continue;
        }

        ++cycle_;
        // Execute: the sole master's requests are granted by construction.
        if (c.has_load) {
            auto& bank = dm_banks_[c.load_pa.bank];
            c.loaded = static_cast<Word>(bank.read(c.load_pa.offset));
            ++stats_.dm_bank_reads;
            ++xbar_dm;
            if (cfg_.ecc_enabled && bank.take_uncorrectable()) {
                raise_trap(c, core::Trap::EccFault);
                break;
            }
            c.load_done = true;
        }
        if (c.has_store) ++xbar_dm; // the write grant (commit clears the flag)
        commit(c, p);
        if (core_done(c)) break; // halted: bookkeeping done by commit()
        if (c.in_barrier) {
            release_barrier_if_complete();
            if (c.in_barrier) break; // parked: generic phases take over
        }
        // Fetch the next instruction in the same cycle as the commit.
        if (!fetch_step()) break;
    }

    // ---- flush batched aggregates ------------------------------------------
    stats_.core[p].im_fetches += fetches;
    stats_.core[p].instret += lane_instret;
    ixbar_.account_uncontended(xbar_im);
    dxbar_.account_uncontended(xbar_dm);
    stats_.cycles = cycle_;
    return true;
}

void Cluster::watchdog_phase() {
    // Progress means a committed instruction. A core parked at the barrier
    // is deliberately NOT exempt: legitimate barrier waits are bounded by
    // one block's desynchronization (hundreds of cycles), so a watchdog
    // window orders of magnitude above that only fires when a peer is
    // wedged — stopping the parked core is what lets the rest of the
    // cluster degrade gracefully instead of hanging with it.
    for (const CoreId p : active_cores_) {
        CoreCtx& c = cores_[p];
        if (core_done(c)) continue;
        // A staggered core that has not started yet cannot make progress
        // by definition; its window opens at start_cycle.
        const Cycle anchor = std::max(c.last_commit, c.start_cycle);
        if (cycle_ >= anchor && cycle_ - anchor >= cfg_.watchdog_cycles) {
            ++stats_.watchdog_trips;
            raise_trap(c, core::Trap::Watchdog);
        }
    }
}

void Cluster::execute_phase() {
    // Raise data-memory requests for every core with an instruction in EX.
    // The read port goes first logically (within the cycle, the loaded
    // value feeds the ALU and the write happens with the result), but both
    // ports arbitrate in the same cycle, as in the hardware.
    std::uint32_t req_mask = 0; ///< bit per D-Xbar master port with a request
    dm_busy_banks_ = 0;
    for (const CoreId p : active_cores_) {
        CoreCtx& c = cores_[p];
        // Deactivating the slots is enough: arbitration and the grant
        // checks below read bank/offset only behind the `active` flag.
        dm_req_[read_port(p)].active = false;
        dm_req_[write_port(p)].active = false;
        if (core_done(c) || c.in_barrier || !c.ex) continue;

        if (c.has_load && !c.load_done) {
            dm_req_[read_port(p)] = {.active = true,
                                     .is_write = false,
                                     .bank = c.load_pa.bank,
                                     .offset = c.load_pa.offset};
            req_mask |= std::uint32_t{1} << read_port(p);
        }
        if (c.has_store) {
            dm_req_[write_port(p)] = {.active = true,
                                      .is_write = true,
                                      .bank = c.store_pa.bank,
                                      .offset = c.store_pa.offset};
            req_mask |= std::uint32_t{1} << write_port(p);
        }
    }

    // With no request raised, arbitration is a no-op on stats and every
    // grant slot is guarded by its request's `active` flag, so the fast
    // path skips the crossbar entirely. The mask of raised ports lets the
    // arbiter visit only them. A pending one-shot glitch or arbiter-state
    // upset must still reach the arbiter on request-free cycles (the
    // reference engine arbitrates every cycle, so a strike it would
    // consume harmlessly must be consumed here too).
    if (req_mask || !cfg_.fast_path() || dxbar_.glitch_pending() ||
        dxbar_.arbiter_upset_pending())
        dxbar_.arbitrate_into(dm_req_, cycle_, dm_grant_, req_mask);

    for (const CoreId p : active_cores_) {
        CoreCtx& c = cores_[p];
        if (core_done(c) || c.in_barrier || !c.ex) continue;

        if (dm_req_[read_port(p)].active && dm_grant_[read_port(p)].granted) {
            const auto& rq = dm_req_[read_port(p)];
            const auto& gr = dm_grant_[read_port(p)];
            auto& bank = dm_banks_[rq.bank];
            if (rq.bank < 32) dm_busy_banks_ |= std::uint32_t{1} << rq.bank;
            // A hijacked grant (flipped grant register, DESIGN.md §9)
            // latches whatever is on the bank port — the winner's word at
            // the wrong offset. No port activation of its own, no ECC
            // consultation: the corruption is silent by construction.
            c.loaded = gr.hijacked ? static_cast<Word>(bank.peek(gr.hijack_offset))
                       : gr.broadcast ? static_cast<Word>(bank.peek(rq.offset))
                                      : static_cast<Word>(bank.read(rq.offset));
            if (!gr.broadcast && !gr.hijacked) {
                ++stats_.dm_bank_reads;
                // A double-bit upset is detected by the bank's SEC-DED
                // check but cannot be healed: escalate to a trap instead
                // of letting the corrupted word flow into the datapath.
                if (cfg_.ecc_enabled && bank.take_uncorrectable()) {
                    raise_trap(c, core::Trap::EccFault);
                    continue;
                }
            }
            c.load_done = true;
        }

        // A hijacked WRITE grant: the grant register reads as granted but
        // the winner holds the port, so the store never reaches the bank —
        // the instruction commits believing it stored (a lost update).
        if (c.has_store && dm_req_[write_port(p)].active &&
            dm_grant_[write_port(p)].granted && dm_grant_[write_port(p)].hijacked) {
            c.has_store = false;
        }

        // A granted write port holds its bank this cycle whether or not the
        // store lands (a wasted grant still drives the port).
        if (dm_req_[write_port(p)].active && dm_grant_[write_port(p)].granted) {
            const BankId wb = dm_req_[write_port(p)].bank;
            if (wb < 32) dm_busy_banks_ |= std::uint32_t{1} << wb;
        }

        const bool load_ok = !c.has_load || c.load_done;
        // A granted write is only usable once the loaded value is in hand
        // (this cycle's read grant counts); otherwise the grant is wasted
        // and the store retries.
        const bool store_ok =
            !c.has_store ||
            (dm_req_[write_port(p)].active && dm_grant_[write_port(p)].granted && load_ok);

        if (load_ok && store_ok) {
            commit(c, static_cast<CoreId>(p));
        } else {
            ++stats_.core[p].stall_cycles;
            emit(static_cast<CoreId>(p), EventKind::DataStall, c.state.pc);
        }
    }

    release_barrier_if_complete();
}

void Cluster::commit(CoreCtx& c, CoreId pid) {
    // A register struck while this instruction sat in EX is consumed by
    // its operand reads right here (fetched-then-struck ordering; the
    // fetch-time guard covers struck-then-fetched).
    if (c.reg_bad != 0 && !reg_fault_guard(c, *c.ex)) return;
    const PAddr pc_before = c.state.pc;
    std::optional<Word> store_value;
    bool halt = false;
    if (cfg_.fast_path()) {
        // In-place semantics: identical architectural effect, without the
        // two CoreState copies the functional execute() implies (measurably
        // the hottest part of commit).
        const core::InplaceEffects fx = core::execute_inplace(*c.ex, c.state, c.loaded);
        store_value = fx.store_value;
        halt = fx.halt;
    } else {
        const core::StepEffects fx = core::execute(*c.ex, c.state, c.loaded);
        store_value = fx.store_value;
        halt = fx.halt;
        c.state = fx.next;
    }

    if (c.has_store) {
        ULPMC_ASSERT(store_value.has_value());
        dm_banks_[c.store_pa.bank].write(c.store_pa.offset, *store_value);
        ++stats_.dm_bank_writes;
        ++stats_.core[pid].dm_stores;
    }
    if (c.has_load) ++stats_.core[pid].dm_loads;

    const bool is_barrier =
        cfg_.barrier_enabled && c.plan.store && *c.plan.store == kBarrierAddr;

    emit(pid, EventKind::Commit, pc_before);
    c.last_commit = cycle_;
    c.ex = nullptr;
    c.has_load = false;
    c.has_store = false;
    c.load_done = false;
    c.loaded.reset();
    ++stats_.core[pid].instret;

    if (halt) {
        c.halted = true;
        stats_.core[pid].halted_at = cycle_;
        stats_.cycles = std::max(stats_.cycles, cycle_);
        emit(pid, EventKind::Halt);
        retire_core(pid);
    } else if (is_barrier) {
        c.in_barrier = true;
        emit(pid, EventKind::BarrierArrive);
    }
}

void Cluster::release_barrier_if_complete() {
    if (!cfg_.barrier_enabled) return;
    bool any_waiting = false;
    for (const auto& c : cores_) {
        if (core_done(c)) continue;
        if (!c.in_barrier) return; // someone still running: keep waiting
        any_waiting = true;
    }
    if (!any_waiting) return;
    // All arrived: release everyone in the same cycle, so the subsequent
    // fetches happen in lockstep again (this is what re-synchronizes the
    // cores after a data-dependent section).
    for (auto& c : cores_)
        if (!core_done(c)) c.in_barrier = false;
    emit(0xFF, EventKind::BarrierRelease);
}

std::uint32_t Cluster::fetch_phase() {
    const bool use_table = !fetch_table_.empty();
    std::uint32_t fetched_banks = 0; ///< banks with a demand port activation
    std::uint32_t req_mask = 0; ///< bit per core with a fetch request
    for (const CoreId p : active_cores_) {
        CoreCtx& c = cores_[p];
        im_req_[p].active = false;
        if (core_done(c) || c.in_barrier || c.ex) continue;
        if (cycle_ < c.start_cycle + 1) continue; // staggered start

        if (c.state.pc >= text_size_) {
            // Off the end of the loaded program (or a wild branch): fault
            // at the text boundary like the functional ISS, instead of
            // executing the zero-filled remainder of the bank.
            raise_trap(c, core::Trap::FetchFault);
            continue;
        }
        if (use_table) {
            if (c.state.pc >= fetch_table_.size()) {
                raise_trap(c, core::Trap::FetchFault);
                continue;
            }
            const FetchSlot& fs = fetch_table_[c.state.pc];
            fetch_pc_[p] = c.state.pc;
            im_req_[p] = {.active = true, .is_write = false, .bank = fs.bank, .offset = fs.offset};
        } else {
            const auto pa = im_map_.translate(c.state.pc, static_cast<CoreId>(p));
            if (!pa) {
                raise_trap(c, core::Trap::FetchFault);
                continue;
            }
            fetch_pc_[p] = c.state.pc;
            im_req_[p] = {
                .active = true, .is_write = false, .bank = pa->bank, .offset = pa->offset};
        }
        req_mask |= std::uint32_t{1} << p;
    }

    if (req_mask || !cfg_.fast_path() || ixbar_.glitch_pending() ||
        ixbar_.arbiter_upset_pending())
        ixbar_.arbitrate_into(im_req_, cycle_, im_grant_, req_mask);

    for (const CoreId p : active_cores_) {
        CoreCtx& c = cores_[p];
        if (!im_req_[p].active) {
            if (!core_done(c) && !c.in_barrier && cycle_ >= c.start_cycle + 1 && !c.ex)
                ++stats_.core[p].bubble_cycles;
            continue;
        }
        if (!im_grant_[p].granted) {
            ++stats_.core[p].stall_cycles;
            emit(static_cast<CoreId>(p), EventKind::FetchStall, fetch_pc_[p], im_req_[p].bank);
            continue;
        }

        auto& bank = im_banks_[im_req_[p].bank];
        if (bank.power_gated()) {
            raise_trap(c, core::Trap::FetchFault);
            continue;
        }
        // A hijacked fetch grant latches the winner's word off the bank
        // port — the broken-read-broadcast corruption channel: the core
        // decodes and executes an instruction from the WRONG address.
        const InstrWord w =
            im_grant_[p].hijacked
                ? static_cast<InstrWord>(bank.peek(im_grant_[p].hijack_offset))
            : im_grant_[p].broadcast ? static_cast<InstrWord>(bank.peek(im_req_[p].offset))
                                     : static_cast<InstrWord>(bank.read(im_req_[p].offset));
        if (!im_grant_[p].broadcast && !im_grant_[p].hijacked) {
            ++stats_.im_bank_accesses;
            if (im_req_[p].bank < 32) fetched_banks |= std::uint32_t{1} << im_req_[p].bank;
            if (cfg_.ecc_enabled && bank.take_uncorrectable()) {
                raise_trap(c, core::Trap::EccFault);
                continue;
            }
        }
        ++stats_.core[p].im_fetches;
        emit(static_cast<CoreId>(p),
             im_grant_[p].broadcast ? EventKind::FetchBroadcast : EventKind::Fetch, fetch_pc_[p],
             im_req_[p].bank);

        // `needs_plan` is a fast-path-only shortcut: for an instruction
        // with no memory operand the plan below is the empty plan, so the
        // address computation and MMU translations can be skipped outright.
        bool needs_plan = true;
        if (cfg_.fast_path() && !im_grant_[p].hijacked) {
            // Fast path: the decode happened once at load; `w` was still
            // read above so the bank/crossbar statistics stay identical.
            // (A hijacked grant latched a different word than the request
            // addressed, so it must take the decode-what-you-latched slow
            // branch below — same as the reference engine.)
            const isa::DecodedInstr* pre =
                use_table ? fetch_table_[fetch_pc_[p]].pre
                          : predecoded_.lookup(im_req_[p].bank, im_req_[p].offset);
            if (!pre) {
                raise_trap(c, core::Trap::IllegalInstruction);
                continue;
            }
            c.ex = &pre->instr;
            needs_plan = pre->has_mem;
        } else {
            const auto decoded = isa::decode(w);
            if (!decoded) {
                raise_trap(c, core::Trap::IllegalInstruction);
                continue;
            }
            c.ex_buf = *decoded;
            c.ex = &c.ex_buf;
        }

        // Protection guard before the plan: a corrupted address register
        // must be voted/trapped here, not used to compute data addresses
        // (a parity trap takes precedence over the MemoryFault the bad
        // address might raise below).
        if (c.reg_bad != 0 && !reg_fault_guard(c, *c.ex)) continue;

        // Pre-compute the data-access plan; architectural state cannot
        // change between this fetch and the execute phase (in-order,
        // single issue), so the plan stays valid across stall cycles.
        c.has_load = false;
        c.has_store = false;
        c.load_done = false;
        c.loaded.reset();
        if (!needs_plan) {
            c.plan = {};
            continue;
        }
        c.plan = core::plan_memory(*c.ex, c.state);
        if (c.plan.load) {
            const auto lpa = c.mmu.translate(*c.plan.load);
            if (!lpa) {
                raise_trap(c, core::Trap::MemoryFault);
                continue;
            }
            c.load_pa = *lpa;
            c.has_load = true;
        }
        if (c.plan.store) {
            if (cfg_.barrier_enabled && *c.plan.store == kBarrierAddr) {
                // Barrier register (extension): the store completes without
                // touching the data memory; commit() parks the core.
            } else {
                const auto spa = c.mmu.translate(*c.plan.store);
                if (!spa) {
                    raise_trap(c, core::Trap::MemoryFault);
                    continue;
                }
                c.store_pa = *spa;
                c.has_store = true;
            }
        }
    }
    return fetched_banks;
}

void Cluster::scrub_dm_phase(std::uint32_t busy_banks) {
    // One word per idle bank per cycle, exactly like the IM walker: a bank
    // that served a granted request this cycle is busy (single-ported
    // SRAM); everyone else donates the idle cycle to background scrubbing.
    for (std::size_t b = 0; b < dm_banks_.size(); ++b) {
        auto& bank = dm_banks_[b];
        if (bank.power_gated()) continue;
        if (b < 32 && (busy_banks & (std::uint32_t{1} << b))) continue;
        std::uint32_t& ptr = dm_scrub_ptr_[b];
        const mem::MemoryBank::ScrubResult r = bank.scrub_step(ptr);
        ptr = ptr + 1 == bank.size() ? 0 : ptr + 1;
        ++stats_.dm_scrub_reads;
        stats_.dm_scrub_corrected += r.corrected;
        stats_.dm_scrub_uncorrectable += r.uncorrectable;
    }
}

void Cluster::scrub_im_phase(std::uint32_t fetched_banks) {
    // One word per idle bank per cycle: a bank whose port served a demand
    // fetch is busy (single-ported SRAM); everyone else donates the idle
    // cycle to background scrubbing. Gated banks hold no live content.
    for (std::size_t b = 0; b < im_banks_.size(); ++b) {
        auto& bank = im_banks_[b];
        if (bank.power_gated()) continue;
        if (b < 32 && (fetched_banks & (std::uint32_t{1} << b))) continue;
        std::uint32_t& ptr = im_scrub_ptr_[b];
        const mem::MemoryBank::ScrubResult r = bank.scrub_step(ptr);
        ptr = ptr + 1 == bank.size() ? 0 : ptr + 1;
        ++stats_.im_scrub_reads;
        stats_.im_scrub_corrected += r.corrected;
        stats_.im_scrub_uncorrectable += r.uncorrectable;
    }
}

} // namespace ulpmc::cluster
