// Thread-local cluster reuse (DESIGN.md §10).
//
// Design-space sweeps and fault campaigns simulate thousands of
// independent points, each of which used to construct (and tear down) a
// full Cluster — banks, decode caches, fetch table — per point. A
// persistent worker thread only ever runs one simulation at a time, so
// one Cluster instance per thread, re-initialized in place with
// Cluster::reset(), serves every point that thread executes with zero
// steady-state heap allocation.
#pragma once

#include <memory>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "isa/program.hpp"
#include "isa/program_image.hpp"

namespace ulpmc::cluster {

/// Returns this thread's pooled Cluster, re-initialized to the state a
/// freshly constructed Cluster(cfg, prog) would have. The first call on a
/// thread constructs the instance; later calls reuse its buffers (a
/// same-geometry reuse performs no heap allocation).
///
/// Contract: the returned reference stays valid for the calling thread's
/// lifetime, but every call re-initializes the SAME instance — finish with
/// one simulation before requesting the next, and never interleave two
/// pooled uses on one thread. Callers needing two live clusters at once
/// (differential tests) must construct their own.
Cluster& pooled_cluster(const ClusterConfig& cfg, const isa::Program& prog);

/// Shared-image flavor (DESIGN.md §11): the campaign/sweep pattern decodes
/// the program once into an isa::ProgramImage and re-initializes the
/// pooled instance from it, skipping the per-reset decode entirely.
Cluster& pooled_cluster(const ClusterConfig& cfg,
                        std::shared_ptr<const isa::ProgramImage> image);

} // namespace ulpmc::cluster
