// Thread-local cluster reuse (DESIGN.md §10, §13).
//
// Design-space sweeps and fault campaigns simulate thousands of
// independent points, each of which used to construct (and tear down) a
// full Cluster — banks, decode caches, fetch table — per point. A
// persistent worker thread only ever runs one simulation at a time, so a
// per-thread Cluster instance, re-initialized in place with
// Cluster::reset(), serves every point that thread executes with zero
// steady-state heap allocation.
//
// Fleet runs (DESIGN.md §13) interleave HETEROGENEOUS device shapes on
// one worker: a ulpmc-bank 8-core device followed by an mc-ref 4-core
// one. A single pooled instance would re-allocate on every shape switch,
// so the pool keeps one bucket per configuration shape (the geometry- and
// engine-defining fields below), bounded at kPoolMaxBuckets per thread
// with least-recently-used eviction when a cold shape must make room.
// Same-shape reuse therefore stays heap-free after warm-up no matter how
// many shapes a worker cycles through, as long as the working set fits
// the bucket bound (pinned by tests/cluster/alloc_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "isa/program.hpp"
#include "isa/program_image.hpp"

namespace ulpmc::cluster {

/// Per-thread bucket bound: one bucket per live config shape. Sized for
/// the fleet's heterogeneity axes (3 arches x ladder core counts) with
/// headroom; a worker cycling through more shapes than this thrashes
/// (visible in PoolStats::evictions) but stays correct.
inline constexpr std::size_t kPoolMaxBuckets = 8;

/// Instrumentation for this thread's pool (cumulative since thread start).
struct PoolStats {
    std::uint64_t hits = 0;      ///< same-shape reuse (reset in place)
    std::uint64_t misses = 0;    ///< new shape: full construction
    std::uint64_t evictions = 0; ///< cold bucket destroyed to make room
    std::size_t buckets = 0;     ///< live buckets right now
};

/// Returns this thread's pooled Cluster for the configuration's shape,
/// re-initialized to the state a freshly constructed Cluster(cfg, prog)
/// would have. The first call with a new shape constructs the instance;
/// later same-shape calls reuse its buffers (no heap allocation).
///
/// Contract: the returned reference stays valid until a LATER
/// pooled_cluster() call on the same thread (which may evict it) — finish
/// with one simulation before requesting the next, and never interleave
/// two pooled uses on one thread. Callers needing two live clusters at
/// once (differential tests) must construct their own.
Cluster& pooled_cluster(const ClusterConfig& cfg, const isa::Program& prog);

/// Shared-image flavor (DESIGN.md §11): the campaign/sweep/fleet pattern
/// decodes the program once into an isa::ProgramImage and re-initializes
/// the pooled instance from it, skipping the per-reset decode entirely.
Cluster& pooled_cluster(const ClusterConfig& cfg,
                        std::shared_ptr<const isa::ProgramImage> image);

/// This thread's pool counters (hits/misses/evictions/live buckets).
PoolStats pooled_cluster_stats();

/// Drops every bucket this thread holds (tests; frees the memory).
void pooled_cluster_clear();

} // namespace ulpmc::cluster
