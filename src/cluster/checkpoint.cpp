#include "cluster/checkpoint.hpp"

#include "common/assert.hpp"

namespace ulpmc::cluster {

void CheckpointRunner::reset(const CheckpointConfig& cfg) {
    cfg_ = cfg;
    stats_ = {};
    has_ckpt_ = false;
    snap_cycle_ = 0;
    retries_ = 0;
}

bool CheckpointRunner::checkpoint() {
    cl_.scrub_registers();
    if (cfg_.parity_guard && cl_.reg_parity_pending() && has_ckpt_) {
        // The parity sweep found a latched (detectable) upset: the state
        // about to be saved is corrupt. Recover from the previous good
        // checkpoint rather than immortalizing the corruption.
        rollback();
        return false;
    }
    cl_.save(snap_);
    snap_cycle_ = cl_.stats().cycles;
    has_ckpt_ = true;
    retries_ = 0;
    ++stats_.checkpoints;
    return true;
}

void CheckpointRunner::rollback() {
    ULPMC_EXPECTS(has_ckpt_);
    const Cycle now = cl_.stats().cycles;
    if (now > snap_cycle_) stats_.reexec_cycles += now - snap_cycle_;
    ++stats_.rollbacks;
    ++retries_;
    cl_.restore(snap_);
}

bool CheckpointRunner::any_trap() const {
    for (unsigned p = 0; p < cl_.config().cores; ++p)
        if (cl_.core_trap(static_cast<CoreId>(p)) != core::Trap::None) return true;
    return false;
}

bool CheckpointRunner::any_running() const {
    for (unsigned p = 0; p < cl_.config().cores; ++p) {
        const auto pid = static_cast<CoreId>(p);
        if (cl_.core_trap(pid) == core::Trap::None && !cl_.core_halted(pid)) return true;
    }
    return false;
}

Cycle CheckpointRunner::run(Cycle bound) {
    if (!has_ckpt_) checkpoint();
    for (;;) {
        const Cycle now = cl_.stats().cycles;
        if (now >= bound) break;
        Cycle target = bound;
        if (cfg_.interval > 0) {
            const Cycle next = snap_cycle_ + cfg_.interval;
            if (next > now && next < target) target = next;
        }
        cl_.run(target);
        if (any_trap()) {
            if (retries_ >= cfg_.max_retries) {
                // Deterministic fault (it re-trapped through every retry):
                // leave the cluster in its trapped state for the caller.
                stats_.gave_up = true;
                break;
            }
            rollback();
            continue;
        }
        const Cycle after = cl_.stats().cycles;
        if (!any_running()) break;     // quiescent: every core halted cleanly
        if (after <= now) break;       // no forward progress (all parked)
        if (cfg_.interval > 0 && after >= snap_cycle_ + cfg_.interval) {
            if (!checkpoint()) continue; // detect-before-save rolled back
        }
    }
    return cl_.stats().cycles;
}

} // namespace ulpmc::cluster
