#include "cluster/checkpoint.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ulpmc::cluster {

void CheckpointRunner::reset(const CheckpointConfig& cfg) {
    cfg_ = cfg;
    stats_ = {};
    has_ckpt_ = false;
    snap_cycle_ = 0;
    retries_ = 0;
    est_.reset(cfg.alpha);
    cur_interval_ = cfg.adaptive && cfg.interval == 0 ? cfg.max_interval : cfg.interval;
    if (cfg.adaptive) stats_.current_interval = cur_interval_;
    if (cfg.delta_store) storage_.reset(cfg.storage);
    base_events_ = 0;
    base_cycle_ = 0;
    replay_debt_ = 0;
}

bool CheckpointRunner::checkpoint() {
    // Anchor the next observation window BEFORE the scrub: the repairs the
    // scrub itself performs (TMR vote-outs of latent upsets) are upset
    // events, and anchoring after them would absorb them into the new base
    // so the estimator never hears about that whole detection channel.
    // Time does not advance inside checkpoint(), so the anchor cycle is
    // the same either way.
    rebase_window();
    cl_.scrub_registers();
    if (cfg_.parity_guard && cl_.reg_parity_pending() && has_ckpt_) {
        // The parity sweep found a latched (detectable) upset: the state
        // about to be saved is corrupt. Recover from the previous good
        // checkpoint rather than immortalizing the corruption. No
        // protection counter ever sees this upset (the trap would only
        // fire on a read), yet it costs a full rollback — report it to
        // the rate estimator as one event at the current silence.
        if (cfg_.adaptive) est_.observe(1, 0);
        rollback();
        return false;
    }
    cl_.save(snap_);
    if (cfg_.delta_store) storage_.store(snap_);
    snap_cycle_ = cl_.stats().cycles;
    has_ckpt_ = true;
    retries_ = 0;
    ++stats_.checkpoints;
    return true;
}

void CheckpointRunner::rollback() {
    ULPMC_EXPECTS(has_ckpt_);
    if (cfg_.delta_store) {
        // Restore what the STORE holds, not the in-memory snapshot: the
        // newest intact record, decoded from its payload bytes, possibly
        // an older keyframe when CRC verification rejected the newest.
        if (!storage_.load(snap_)) {
            // Every record failed verification — a detected, unrecoverable
            // storage loss. Fail stop: leave the cluster for the caller to
            // classify rather than restore known-corrupt state.
            stats_.storage_exhausted = true;
            stats_.gave_up = true;
            ++retries_;
            return;
        }
        // A fallback restore lands at an OLDER cycle than the in-memory
        // snapshot; charge the re-execution from there.
        snap_cycle_ = snap_.saved_cycle();
    }
    const Cycle now = cl_.stats().cycles;
    if (now > snap_cycle_) {
        stats_.reexec_cycles += now - snap_cycle_;
        // The discarded span re-executes and would be measured twice by
        // the observation windows; the debt discounts it as it replays.
        replay_debt_ += now - snap_cycle_;
    }
    ++stats_.rollbacks;
    ++retries_;
    cl_.restore(snap_);
    // restore() rewound the counters the observation window differences;
    // re-anchor it at the restored state (observe_and_retune() has already
    // consumed the pre-rollback delta when the controller is adaptive).
    rebase_window();
}

bool CheckpointRunner::any_trap() const {
    for (unsigned p = 0; p < cl_.config().cores; ++p)
        if (cl_.core_trap(static_cast<CoreId>(p)) != core::Trap::None) return true;
    return false;
}

bool CheckpointRunner::any_running() const {
    for (unsigned p = 0; p < cl_.config().cores; ++p) {
        const auto pid = static_cast<CoreId>(p);
        if (cl_.core_trap(pid) == core::Trap::None && !cl_.core_halted(pid)) return true;
    }
    return false;
}

void CheckpointRunner::rebase_window() {
    if (!cfg_.adaptive) return;
    const ClusterStats& s = cl_.stats();
    base_events_ = s.upset_events();
    base_cycle_ = s.cycles;
}

Cycle CheckpointRunner::solve_interval(double lambda) const {
    // DESIGN.md §9: the expected energy per checkpoint period is the save
    // cost (cores * words_per_core words at e_word each) plus the expected
    // re-execution loss (lambda * T * T/2 cycles at E_cycle each, for
    // upsets uniform in the interval). d/dT = 0 gives
    //   T* = sqrt(2 * cores * words_per_core * e_word / (lambda * E_cycle))
    // with E_cycle = cores * e_cycle_per_core. lambda -> 0 pushes T* to
    // infinity; the clamp keeps detection latency bounded.
    if (lambda <= 0.0) return cfg_.max_interval;
    const double cores = static_cast<double>(cl_.config().cores);
    double save_words = cores * cfg_.words_per_core;
    double e_word = cfg_.e_word;
    if (cfg_.delta_store) {
        // Deltas store only the dirty words; scale the save cost by the
        // observed stored/full byte ratio so the solve sees the cheaper
        // saves (DESIGN.md §9.6 revised T* math).
        const CkptStorageStats& ss = storage_.stats();
        if (ss.full_equiv_bytes > 0)
            save_words *= static_cast<double>(ss.stored_bytes) /
                          static_cast<double>(ss.full_equiv_bytes);
        e_word = cfg_.e_word_delta;
    }
    const double save_energy = 2.0 * save_words * e_word;
    const double e_cycle = cores * cfg_.e_cycle_per_core;
    const double t = std::sqrt(save_energy / (lambda * e_cycle));
    if (t <= static_cast<double>(cfg_.min_interval)) return cfg_.min_interval;
    if (t >= static_cast<double>(cfg_.max_interval)) return cfg_.max_interval;
    return static_cast<Cycle>(t);
}

void CheckpointRunner::observe_and_retune() {
    if (!cfg_.adaptive) return;
    const ClusterStats& s = cl_.stats();
    const std::uint64_t events = s.upset_events() - base_events_;
    Cycle elapsed = s.cycles - base_cycle_;
    // Replayed cycles re-measure program time a previous window already
    // consumed; lambda lives in program time, so discount them.
    const Cycle discount = std::min(replay_debt_, elapsed);
    elapsed -= discount;
    replay_debt_ -= discount;
    est_.observe(events, elapsed);
    const Cycle solved = solve_interval(est_.lambda_hat());
    const auto cur = static_cast<double>(cur_interval_);
    if (std::abs(static_cast<double>(solved) - cur) > cfg_.hysteresis * cur) {
        cur_interval_ = solved;
        ++stats_.interval_updates;
    }
    stats_.current_interval = cur_interval_;
    stats_.lambda_hat = est_.lambda_hat();
}

Cycle CheckpointRunner::run(Cycle bound) {
    if (!has_ckpt_) checkpoint();
    for (;;) {
        const Cycle now = cl_.stats().cycles;
        if (now >= bound) break;
        Cycle target = bound;
        const Cycle interval = effective_interval();
        if (interval > 0) {
            const Cycle next = snap_cycle_ + interval;
            if (next > now && next < target) target = next;
        }
        cl_.run(target);
        if (any_trap()) {
            // The trap and everything the protection layer counted on the
            // way to it are this window's observation; consume it before
            // restore rewinds the counters.
            observe_and_retune();
            if (retries_ >= cfg_.max_retries) {
                // Deterministic fault (it re-trapped through every retry):
                // leave the cluster in its trapped state for the caller.
                stats_.gave_up = true;
                break;
            }
            rollback();
            if (stats_.gave_up) break; // storage exhausted: fail stop
            continue;
        }
        const Cycle after = cl_.stats().cycles;
        if (!any_running()) break;     // quiescent: every core halted cleanly
        if (after <= now) break;       // no forward progress (all parked)
        if (interval > 0 && after >= snap_cycle_ + interval) {
            observe_and_retune();
            if (!checkpoint()) continue; // detect-before-save rolled back
        }
    }
    return cl_.stats().cycles;
}

} // namespace ulpmc::cluster
