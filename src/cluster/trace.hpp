// Cluster event tracing: a structured log of the microarchitectural
// events (fetches, commits, stalls, broadcast merges, barrier traffic,
// traps) for debugging kernels and for teaching — the textual analogue of
// the waveforms the paper's RTL flow would produce.
//
// Tracing is opt-in (a null sink costs one pointer test per event) and
// the bundled RingTrace keeps the most recent N events, so attaching it
// to a million-cycle run is safe.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ulpmc::cluster {

/// What happened.
enum class EventKind : std::uint8_t {
    Fetch,          ///< instruction fetch granted (a = pc, b = bank)
    FetchBroadcast, ///< fetch served as a broadcast rider (a = pc, b = bank)
    FetchStall,     ///< fetch denied by an IM conflict (a = pc, b = bank)
    Commit,         ///< instruction retired (a = pc)
    DataStall,      ///< execute stalled on a DM conflict (a = pc)
    BarrierArrive,  ///< core parked at the barrier
    BarrierRelease, ///< all cores released (core = 0xFF)
    Halt,           ///< core executed the idle idiom
    Trap            ///< abnormal termination (a = trap code)
};

/// Human-readable event-kind name.
const char* event_kind_name(EventKind k);

/// One trace record.
struct TraceEvent {
    Cycle cycle = 0;
    CoreId core = 0;
    EventKind kind = EventKind::Fetch;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
};

/// Receiver interface; implement to stream events elsewhere.
class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void on_event(const TraceEvent& e) = 0;
};

/// Keeps the most recent `capacity` events.
class RingTrace final : public TraceSink {
public:
    explicit RingTrace(std::size_t capacity = 4096);

    void on_event(const TraceEvent& e) override;

    /// Events in chronological order (oldest first).
    std::vector<TraceEvent> events() const;

    /// Total events observed (including evicted ones).
    std::uint64_t total() const { return total_; }

    /// Renders one event as text, e.g. "[123] core2 commit pc=45".
    static std::string render(const TraceEvent& e);

    /// Dumps the retained window.
    void print(std::ostream& os) const;

private:
    std::vector<TraceEvent> ring_;
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::uint64_t total_ = 0;
};

/// Counts events per kind (cheap aggregate checks in tests).
class CountingTrace final : public TraceSink {
public:
    void on_event(const TraceEvent& e) override;
    std::uint64_t count(EventKind k) const;

private:
    std::uint64_t counts_[9] = {};
};

} // namespace ulpmc::cluster
