// The cycle-accurate multi-core cluster model (paper Fig. 1): eight
// TamaRISC cores, a 16-bank data memory behind the D-Xbar, an 8-bank
// instruction memory behind the I-Xbar (or dedicated IM banks for mc-ref),
// per-core MMUs, round-robin arbitration with clock-gated stalls, read
// broadcast, and IM power gating.
//
// Timing model. The 3-stage core sustains one instruction per cycle with
// full bypassing (paper §III-A); we model the pipeline at cycle accuracy
// with two overlapped activities per core and cycle:
//
//   phase 1 (execute): the instruction in EX raises its data-memory
//     requests; the D-Xbar arbitrates; if every needed port is granted the
//     instruction commits (architectural state updates), otherwise the
//     core stalls clock-gated and retries next cycle.
//   phase 2 (fetch): cores whose EX slot is empty or just committed raise
//     an instruction fetch for the next PC; the I-Xbar arbitrates; a
//     granted fetch fills EX for the next cycle, a denied one leaves a
//     bubble.
//
// Branches resolve with the target fetched in the commit cycle (zero
// penalty), consistent with the paper's CPI ~= 1 cycle counts (90.1k
// instructions in 90.2k cycles). Stage-level effects below cycle
// granularity are not modeled.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/stats.hpp"
#include "cluster/trace.hpp"
#include "common/types.hpp"
#include "core/exec.hpp"
#include "core/state.hpp"
#include "isa/blockmap.hpp"
#include "isa/predecode.hpp"
#include "isa/program.hpp"
#include "isa/program_image.hpp"
#include "mem/memory_bank.hpp"
#include "mmu/mmu.hpp"
#include "xbar/crossbar.hpp"

namespace ulpmc::cluster {

class CheckpointStorage;

/// The cluster simulator.
class Cluster {
public:
    /// Builds the memories and loads `prog`: text into the IM banks
    /// according to the IM policy (replicated per core for mc-ref), the
    /// data image's shared section once and its private-template section
    /// into every core's private banks.
    Cluster(const ClusterConfig& cfg, const isa::Program& prog);

    /// Shared-image flavor (DESIGN.md §11): the campaign/sweep pattern
    /// builds one isa::ProgramImage up front and hands the same shared_ptr
    /// to every instance, so the program is decoded once per campaign
    /// instead of once per reset. Semantically identical to the Program
    /// overload.
    Cluster(const ClusterConfig& cfg, std::shared_ptr<const isa::ProgramImage> image);

    /// Re-initializes this instance to the state a freshly constructed
    /// Cluster(cfg, prog) would have — memories reloaded, statistics and
    /// cycle counter cleared, any trace sink detached. All internal
    /// buffers are reused: resetting to the same geometry performs zero
    /// heap allocations, which is what lets sweep and fault-campaign inner
    /// loops run allocation-free on pooled instances (DESIGN.md §10).
    void reset(const ClusterConfig& cfg, const isa::Program& prog);
    void reset(const ClusterConfig& cfg, std::shared_ptr<const isa::ProgramImage> image);

    /// The program image this instance was loaded from (the shared one, or
    /// the internally owned rebuild for the Program overloads).
    const isa::ProgramImage& image() const { return *image_ptr_; }

    /// Advances one clock cycle. Returns false once every core has halted
    /// or trapped (the cluster is then quiescent).
    bool step();

    /// Runs until quiescent or `max_cycles`. Returns the cycle count.
    Cycle run(Cycle max_cycles = 50'000'000);

    const ClusterConfig& config() const { return cfg_; }

    /// Run statistics. The crossbar and bank aggregates are synced on
    /// access rather than every cycle (they accumulate inside the
    /// crossbars / banks).
    const ClusterStats& stats() const {
        stats_.ixbar = ixbar_.stats();
        stats_.dxbar = dxbar_.stats();
        sync_resilience_stats();
        return stats_;
    }

    const core::CoreState& core_state(CoreId pid) const;
    bool core_halted(CoreId pid) const;
    core::Trap core_trap(CoreId pid) const;

    /// Attaches an event-trace sink (nullptr detaches). Not owned.
    void set_trace(TraceSink* sink) { trace_ = sink; }

    /// Reads/writes core `pid`'s view of data memory (virtual address),
    /// without touching statistics. Models the sensor front-end injecting
    /// per-lead samples and the radio draining results.
    Word dm_peek(CoreId pid, Addr vaddr) const;
    void dm_poke(CoreId pid, Addr vaddr, Word value);

    /// Reads/patches the instruction at program address `pc` without
    /// touching statistics (debuggers, self-test tools). A poke updates
    /// every replica under the Dedicated policy and keeps the pre-decoded
    /// side array coherent (per-word invalidation).
    InstrWord im_peek(PAddr pc, CoreId pid = 0) const;
    void im_poke(PAddr pc, InstrWord word);

    // ---- fault-injection hooks (src/fault, DESIGN.md §9) -------------------
    // All hooks model single-event upsets: they flip stored/architectural
    // bits without re-encoding ECC check bits, so the protection layer sees
    // exactly what a particle strike would leave behind.

    /// Flips `flip_mask` bits of the DM word at core `pid`'s virtual
    /// address `vaddr` (the fault lands in the physical bank cell).
    void inject_dm_fault(CoreId pid, Addr vaddr, Word flip_mask);

    /// Flips bits of the instruction word at `pc` — every replica under
    /// the Dedicated policy, mirroring a strike on each copy's bank cell —
    /// and keeps the pre-decoded side array / fetch table coherent with
    /// what a fetch would now return (the ECC-corrected view when ECC is
    /// on).
    void inject_im_fault(PAddr pc, InstrWord flip_mask);

    /// Flips bits of architectural register `reg` of core `pid`.
    void inject_reg_fault(CoreId pid, unsigned reg, Word flip_mask);

    /// Arms a one-shot arbitration glitch on the I-Xbar (instruction_side)
    /// or D-Xbar for the next arbitration cycle.
    void inject_xbar_glitch(bool instruction_side, const xbar::Glitch& g);

    /// Upsets the arbiter's sequential state (stuck round-robin pointer /
    /// flipped grant register) in the I-Xbar or D-Xbar. Unlike a glitch
    /// these are NOT absorbed by stall/retry: a stuck pointer can starve
    /// masters, a flipped grant register silently corrupts data
    /// (DESIGN.md §9). ClusterConfig::xbar_self_check hardens against both.
    void inject_xbar_state(bool instruction_side, const xbar::ArbiterUpset& u);

    /// Latent-upset population across the ungated IM banks: cells whose
    /// stored bits currently disagree with their ECC check bits. The drain
    /// metric for idle-cycle IM scrubbing (ClusterConfig::im_scrub) — a
    /// population held near zero cannot accumulate into double-bit
    /// uncorrectables. Non-counting; 0 without ECC.
    std::size_t im_latent_upsets() const;

    /// Same population across the DM banks: the drain metric for the DM
    /// scrub walker (ClusterConfig::dm_scrub). Non-counting; 0 without ECC.
    std::size_t dm_latent_upsets() const;

    // ---- register-file protection (DESIGN.md §9) ---------------------------

    /// Registers struck by inject_reg_fault that no instruction has read
    /// or overwritten yet, summed over all cores. A nonzero count after a
    /// run means the upsets are still *latent* — classifying them as
    /// "masked" would overstate the architecture's inherent masking.
    unsigned pending_reg_faults() const;

    /// Per-core variant: bitmask of core `pid`'s registers with a pending
    /// (unobserved) upset.
    Word pending_reg_faults(CoreId pid) const;

    /// Per-core variant of reg_parity_pending().
    bool reg_parity_pending(CoreId pid) const;

    /// True when the parity checker would flag a register on its next
    /// read: an odd-parity upset is latched in some core's register file
    /// and has not been consumed. Only meaningful under
    /// RegProtection::Parity (always false otherwise). The checkpoint
    /// service uses this as its pre-save scrub: saving now would
    /// checkpoint corrupted state.
    bool reg_parity_pending() const;

    /// Checkpoint-time sweep of every register file through the
    /// protection layer. Under TMR this majority-votes (and repairs) every
    /// struck copy so the checkpoint is clean; a no-op in other modes
    /// (parity detection is reported by reg_parity_pending() instead —
    /// parity can detect but not heal).
    void scrub_registers();

private:
    // The checkpoint-storage codec (cluster/ckpt_store) serializes
    // snapshot internals into durable delta records.
    friend class CheckpointStorage;

    // CoreCtx precedes the public Snapshot class so snapshots can store
    // core contexts by value.
    struct CoreCtx {
        core::CoreState state;
        mmu::DataMmu mmu;
        Cycle start_cycle = 0;

        // EX slot: decoded instruction awaiting/performing data access.
        // On the fast path `ex` points into the pre-decode array (stable
        // storage; im_poke re-latches an aliased EX into ex_buf so the
        // instruction latched at fetch is what executes, exactly as on the
        // slow path). The slow path decodes into ex_buf.
        const isa::Instruction* ex = nullptr;
        isa::Instruction ex_buf{};
        core::MemPlan plan = {};          // virtual addresses
        bool has_load = false;            // translated load/store, valid
        bool has_store = false;           // when the flag is set
        mmu::BankedAddr load_pa{};
        mmu::BankedAddr store_pa{};
        bool load_done = false;
        std::optional<Word> loaded = std::nullopt;

        bool halted = false;
        bool in_barrier = false;
        core::Trap trap = core::Trap::None;
        Cycle last_commit = 0; ///< watchdog progress marker

        // Register-protection tracking (DESIGN.md §9): bit r set in
        // reg_bad = register r holds an unobserved upset; reg_parity_bad
        // additionally marks the upsets the parity checker can see (odd
        // number of flipped bits). Cleared by the first read (vote/trap/
        // silent consumption) or overwrite of the register.
        Word reg_bad = 0;
        Word reg_parity_bad = 0;
    };

public:
    /// A saved execution state (fault campaigns replay the clean-run
    /// prefix from a snapshot ladder instead of re-simulating it per
    /// injection). Opaque; buffers keep their capacity across save()
    /// calls, so re-saving into the same snapshot allocates nothing.
    ///
    /// The IM is captured deduplicated (DESIGN.md §11): the text is
    /// immutable per campaign and IM cells can differ from the pristine
    /// program image only at the PCs on the cluster's dirty list (pokes
    /// and injected faults record themselves there; ECC scrubbing only
    /// repairs already-dirty cells back toward pristine), so a snapshot
    /// stores per-bank statistics/flags plus the raw cell state of the
    /// dirty PCs — not kImWordsTotal cells per ladder rung. DM banks,
    /// whose contents are genuinely per-instance, are captured in full.
    ///
    /// Contract: a snapshot is portable across instances sharing the same
    /// configuration and program image (batched-tier lane peeling restores
    /// the representative's rung into a private lane cluster). Restore
    /// into a different geometry or program is undefined. Restoring undoes
    /// everything after the save point, including injected faults and IM
    /// patches.
    class Snapshot {
        friend class Cluster;
        friend class CheckpointStorage;

        /// Raw stored state of one dirty IM cell (one bank replica).
        struct ImCell {
            PAddr pc = 0;
            BankId bank = 0;
            std::uint32_t offset = 0;
            mem::MemoryBank::CellState cell;
        };

        Cycle cycle = 0;
        ClusterStats stats;
        std::uint64_t direct_faults = 0;
        std::vector<CoreCtx> cores;
        std::vector<std::uint8_t> ex_in_buf; ///< per core: EX aliased its own ex_buf
        std::vector<PAddr> im_dirty;         ///< dirty-PC list at save time
        std::vector<ImCell> im_cells;        ///< raw cells of every dirty PC
        std::vector<mem::BankStats> im_stats;
        std::vector<std::uint8_t> im_uncorrectable; ///< per-bank sticky flag
        std::vector<mem::BankSnapshot> dm_banks;
        xbar::XbarSnapshot ixbar;
        xbar::XbarSnapshot dxbar;
        std::vector<std::uint32_t> im_scrub_ptr;
        std::vector<std::uint32_t> dm_scrub_ptr;

    public:
        /// Read-only views for the batched tier's rejoin bookkeeping.
        Cycle saved_cycle() const { return cycle; }
        const ClusterStats& saved_stats() const { return stats; }
        /// Raw IM cells captured — one per dirty-PC bank replica, NOT
        /// kImWordsTotal (the dedup contract above, pinned by reuse_test).
        std::size_t saved_im_cells() const { return im_cells.size(); }
    };

    /// Copies the full mutable execution state into `out` / back. restore()
    /// leaves the cluster exactly as it was at save() — cycle counter,
    /// statistics, memories, decode caches and arbitration state included —
    /// so continuing the run reproduces the original execution bit-exactly.
    void save(Snapshot& out) const;
    void restore(const Snapshot& s);

    /// True when this cluster's future-determining state — architectural
    /// and microarchitectural state, memories, arbitration and pending
    /// fault machinery, but NOT statistics or event counters — is
    /// bit-identical to the state captured in `s` (same config + image).
    /// The batched tier's lane-rejoin test: the simulator is deterministic,
    /// so two executions in this relation produce identical futures, and a
    /// peeled lane whose divergence has washed out can ride the shared
    /// representative again (DESIGN.md §11).
    bool state_equals(const Snapshot& s) const;

private:
    void execute_phase();
    /// Returns the bitmask of IM banks that served a demand fetch (a
    /// physical port activation, not a broadcast ride) this cycle — the
    /// input to scrub_im_phase's idle-bank selection.
    std::uint32_t fetch_phase();
    void watchdog_phase();
    /// Idle-cycle IM scrubbing (DESIGN.md §9): every ungated IM bank whose
    /// port served no demand fetch this cycle (`fetched_banks` bit clear)
    /// advances its scrub walker by one word, correcting a latent
    /// single-bit upset in place. Runs after fetch_phase when
    /// cfg_.im_scrub; each step is priced by the power model.
    void scrub_im_phase(std::uint32_t fetched_banks);
    /// Idle-cycle DM scrubbing (DESIGN.md §9): every DM bank that served no
    /// granted request this cycle (`busy_banks` bit clear) advances its
    /// scrub walker by one word. Runs after execute_phase when
    /// cfg_.dm_scrub; each step is priced by the power model.
    void scrub_dm_phase(std::uint32_t busy_banks);
    /// Trace-engine burst (DESIGN.md §10): with a single active core the
    /// cluster's timing is conflict-free by construction, so run() advances
    /// through whole superblocks here — committing and fetching in a fused
    /// per-cycle loop and replaying memoized block stats — instead of
    /// paying the generic two-phase machinery every cycle. Returns true
    /// when it advanced at least one cycle (it then left the cluster
    /// exactly where the generic engine would have); false when the
    /// current state is not burst-eligible.
    bool trace_burst(Cycle max_cycles);
    /// Re-derives the trace engine's text image word + block map after an
    /// IM mutation (im_poke / inject_im_fault): `readback` is what a fetch
    /// at `pc` now returns. No-op unless the trace engine is active.
    void refresh_blockmap(PAddr pc, InstrWord readback);
    void commit(CoreCtx& c, CoreId pid);
    /// Register-protection check on the instruction about to enter EX /
    /// commit: applies the configured scheme to the registers it reads
    /// (TMR vote, parity trap, or silent consumption) and clears the
    /// tracking bits its writes overwrite. Returns false when a parity
    /// mismatch fail-stopped the core (the instruction must not execute).
    /// Call only while c.reg_bad != 0 — the common case costs one test.
    bool reg_fault_guard(CoreCtx& c, const isa::Instruction& in);
    void raise_trap(CoreCtx& c, core::Trap t);
    void sync_resilience_stats() const;
    bool core_done(const CoreCtx& c) const { return c.halted || c.trap != core::Trap::None; }
    void release_barrier_if_complete();
    /// Takes a finished core off the active list (lazily, at the next
    /// step()) and clears its request slots so the crossbars never see a
    /// stale claim from it.
    void retire_core(CoreId pid);

    /// One PC's fetch fully resolved: physical IM location plus the
    /// pre-decoded entry stored there (nullptr = illegal word). Built once
    /// at load for PID-independent IM policies; the fetch path then costs
    /// one indexed read instead of an MMU translate plus a decode lookup.
    struct FetchSlot {
        const isa::DecodedInstr* pre = nullptr;
        BankId bank = 0;
        std::uint32_t offset = 0;
    };

    /// Loads banks/caches from *image_ptr_ under the current cfg_ — the
    /// single body behind both reset() overloads.
    void reset_from_image();

    ClusterConfig cfg_;
    /// The immutable program half (DESIGN.md §11): either the campaign's
    /// shared image (shared_image_ set, image_ptr_ aliases it) or the
    /// instance-owned rebuild of a raw Program (own_image_, rebuilt in
    /// place per reset so the legacy path stays zero-alloc).
    std::shared_ptr<const isa::ProgramImage> shared_image_;
    isa::ProgramImage own_image_;
    const isa::ProgramImage* image_ptr_ = nullptr;
    mmu::ImMap im_map_;
    std::vector<CoreCtx> cores_;
    std::vector<mem::MemoryBank> im_banks_;
    std::vector<mem::MemoryBank> dm_banks_;
    xbar::Crossbar ixbar_;
    xbar::Crossbar dxbar_;
    isa::PredecodedIm predecoded_; ///< side array mirroring im_banks_
    /// PC-indexed fetch table (fast path, Interleaved/Banked policies —
    /// their PC->bank mapping is the same for every core). Empty when the
    /// slow path or the Dedicated policy is in use; im_poke keeps it
    /// coherent. Indexing it beyond size() is exactly the set of PCs the
    /// ImMap refuses, so a miss raises the same FetchFault.
    std::vector<FetchSlot> fetch_table_;
    /// Trace engine only: the program text as a fetch would read it back,
    /// plus its basic-block partition with memoized per-block timing.
    /// Rebuilt wholesale on every IM mutation (DESIGN.md §10 invalidation
    /// rule: boundaries are a global property of the text, and pokes are
    /// orders of magnitude rarer than fetches).
    std::vector<InstrWord> text_image_;
    isa::BlockMap blockmap_;
    /// Every PC whose IM word was mutated (im_poke / inject_im_fault) since
    /// the last reset(). restore() re-derives the decode caches for exactly
    /// these words from the restored bank cells — the only words whose
    /// cache entries can disagree after rolling the cells back. Also the
    /// basis of the deduplicated IM snapshot: cells off this list are
    /// provably pristine.
    std::vector<PAddr> im_dirty_;
    std::vector<PAddr> im_dirty_union_; ///< restore()/state_equals() scratch
    /// Per-IM-bank scrub-walker position (next word to check); advances on
    /// every idle cycle of its bank when cfg_.im_scrub is on.
    std::vector<std::uint32_t> im_scrub_ptr_;
    /// Per-DM-bank scrub-walker position; advances on every idle cycle of
    /// its bank when cfg_.dm_scrub is on.
    std::vector<std::uint32_t> dm_scrub_ptr_;
    /// DM banks that served a granted request this cycle (set during
    /// execute_phase, consumed by scrub_dm_phase).
    std::uint32_t dm_busy_banks_ = 0;
    mutable ClusterStats stats_;   ///< mutable: stats() syncs xbar aggregates
    /// Loaded program length: fetching at or beyond it is a FetchFault
    /// (same boundary as the functional ISS), not a walk through the
    /// zero-filled remainder of the bank.
    std::uint32_t text_size_ = 0;
    Cycle cycle_ = 0;
    TraceSink* trace_ = nullptr;
    std::uint64_t direct_faults_ = 0; ///< reg/xbar injections (banks count their own)

    /// Cores that are neither halted nor trapped: the per-cycle phases
    /// iterate only these, so finished cores cost zero work per cycle.
    std::vector<CoreId> active_cores_;
    bool active_dirty_ = false; ///< a core finished since the last compaction

    void emit(CoreId core, EventKind kind, std::uint32_t a = 0, std::uint32_t b = 0) {
        if (trace_) trace_->on_event(TraceEvent{cycle_, core, kind, a, b});
    }

    // scratch buffers reused every cycle
    std::vector<xbar::Request> dm_req_;
    std::vector<xbar::Grant> dm_grant_;
    std::vector<xbar::Request> im_req_;
    std::vector<xbar::Grant> im_grant_;
    std::vector<PAddr> fetch_pc_;
};

} // namespace ulpmc::cluster
