#include "cluster/ckpt_store.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "common/serial.hpp"

namespace ulpmc::cluster {

namespace {

/// Architectural words per core in payload order: 16 GPRs, PC, packed
/// flags (mirrors power::cal::kCheckpointWordsPerCore).
constexpr unsigned kArchWords = kNumRegisters + 2;

/// Stored framing per record besides the payload (kind + cycle + length
/// + CRC) — bookkeeping for the byte accounting, not a wire format.
constexpr std::uint64_t kRecordOverhead = 16;

Word pack_flags(const core::Flags& f) {
    return static_cast<Word>((f.c ? 1 : 0) | (f.z ? 2 : 0) | (f.n ? 4 : 0) | (f.v ? 8 : 0));
}

core::Flags unpack_flags(Word w) {
    core::Flags f;
    f.c = (w & 1) != 0;
    f.z = (w & 2) != 0;
    f.n = (w & 4) != 0;
    f.v = (w & 8) != 0;
    return f;
}

Word arch_word(const core::CoreState& st, unsigned i) {
    if (i < kNumRegisters) return st.regs[i];
    if (i == kNumRegisters) return static_cast<Word>(st.pc);
    return pack_flags(st.flags);
}

void set_arch_word(core::CoreState& st, unsigned i, Word v) {
    if (i < kNumRegisters)
        st.regs[i] = v;
    else if (i == kNumRegisters)
        st.pc = static_cast<PAddr>(v);
    else
        st.flags = unpack_flags(v);
}

} // namespace

void CheckpointStorage::reset(const CkptStorageConfig& cfg) {
    cfg_ = cfg;
    if (cfg_.keyframe_interval < 1) cfg_.keyframe_interval = 1;
    stats_ = {};
    delta_.valid = false;
    cur_key_.valid = false;
    prev_key_.valid = false;
    saves_since_key_ = 0;
}

std::uint64_t CheckpointStorage::keyframe_payload_size(const Cluster::Snapshot& snap) const {
    std::uint64_t bytes = snap.cores.size() * kArchWords * sizeof(Word);
    for (const mem::BankSnapshot& b : snap.dm_banks)
        bytes += b.cells.size() * sizeof(std::uint32_t) + b.check.size();
    bytes += snap.im_cells.size() * (sizeof(std::uint32_t) + 1);
    return bytes;
}

void CheckpointStorage::copy_meta(const Cluster::Snapshot& snap, Record& rec) const {
    Cluster::Snapshot& m = rec.meta;
    m.cycle = snap.cycle;
    m.stats = snap.stats;
    m.direct_faults = snap.direct_faults;
    m.cores = snap.cores;
    for (auto& c : m.cores) c.state = {}; // arch state lives in the payload
    m.ex_in_buf = snap.ex_in_buf;
    m.im_dirty = snap.im_dirty;
    m.im_cells = snap.im_cells;
    for (auto& ic : m.im_cells) ic.cell = {}; // cell data lives in the payload
    m.im_stats = snap.im_stats;
    m.im_uncorrectable = snap.im_uncorrectable;
    m.dm_banks.resize(snap.dm_banks.size());
    rec.dm_cells.resize(snap.dm_banks.size());
    rec.dm_has_check.resize(snap.dm_banks.size());
    for (std::size_t b = 0; b < snap.dm_banks.size(); ++b) {
        mem::BankSnapshot& dst = m.dm_banks[b];
        const mem::BankSnapshot& src = snap.dm_banks[b];
        dst.cells.clear(); // cell data lives in the payload
        dst.check.clear();
        dst.stats = src.stats;
        dst.gated = src.gated;
        dst.uncorrectable_pending = src.uncorrectable_pending;
        rec.dm_cells[b] = static_cast<std::uint32_t>(src.cells.size());
        rec.dm_has_check[b] = src.check.empty() ? 0 : 1;
    }
    m.ixbar = snap.ixbar;
    m.dxbar = snap.dxbar;
    m.im_scrub_ptr = snap.im_scrub_ptr;
    m.dm_scrub_ptr = snap.dm_scrub_ptr;
}

void CheckpointStorage::encode_keyframe(const Cluster::Snapshot& snap, Record& rec) {
    copy_meta(snap, rec);
    rec.reg_masks.clear();
    rec.dm_addrs.clear();
    rec.payload.clear();
    for (const auto& c : snap.cores)
        for (unsigned i = 0; i < kArchWords; ++i) put_raw(rec.payload, arch_word(c.state, i));
    for (const mem::BankSnapshot& b : snap.dm_banks) {
        for (std::uint32_t cell : b.cells) put_raw(rec.payload, cell);
        for (std::uint8_t chk : b.check) put_raw(rec.payload, chk);
    }
    for (const auto& ic : snap.im_cells) {
        put_raw(rec.payload, ic.cell.cell);
        put_raw(rec.payload, ic.cell.check);
    }
    rec.crc = crc32(rec.payload.data(), rec.payload.size());
    rec.keyframe = true;
    rec.valid = true;
}

bool CheckpointStorage::encode_delta(const Cluster::Snapshot& snap, Record& rec) {
    // Same-geometry base required; a config change means a fresh store.
    if (snap.cores.size() != base_full_.cores.size() ||
        snap.dm_banks.size() != base_full_.dm_banks.size())
        return false;

    copy_meta(snap, rec);
    rec.reg_masks.clear();
    rec.dm_addrs.clear();
    rec.payload.clear();
    std::uint64_t words = 0;
    for (std::size_t c = 0; c < snap.cores.size(); ++c) {
        std::uint32_t mask = 0;
        for (unsigned i = 0; i < kArchWords; ++i)
            if (arch_word(snap.cores[c].state, i) != arch_word(base_full_.cores[c].state, i))
                mask |= 1u << i;
        rec.reg_masks.push_back(mask);
        for (unsigned i = 0; i < kArchWords; ++i)
            if (mask & (1u << i)) {
                put_raw(rec.payload, arch_word(snap.cores[c].state, i));
                ++words;
            }
    }
    for (std::size_t b = 0; b < snap.dm_banks.size(); ++b) {
        const mem::BankSnapshot& now = snap.dm_banks[b];
        const mem::BankSnapshot& base = base_full_.dm_banks[b];
        if (now.cells.size() != base.cells.size() || now.check.size() != base.check.size())
            return false;
        for (std::size_t i = 0; i < now.cells.size(); ++i) {
            const bool chk_diff = !now.check.empty() && now.check[i] != base.check[i];
            if (now.cells[i] == base.cells[i] && !chk_diff) continue;
            rec.dm_addrs.push_back({static_cast<std::uint8_t>(b),
                                    static_cast<std::uint32_t>(i)});
            put_raw(rec.payload, now.cells[i]);
            put_raw(rec.payload, now.check.empty() ? std::uint8_t{0} : now.check[i]);
            words += 2;
        }
    }
    for (const auto& ic : snap.im_cells) {
        put_raw(rec.payload, ic.cell.cell);
        put_raw(rec.payload, ic.cell.check);
        words += 2;
    }
    // Every-word-dirty degenerates to a keyframe: the delta must never
    // store more than a full snapshot would.
    if (rec.payload.size() >= keyframe_payload_size(snap)) return false;
    stats_.dirty_words += words;
    rec.crc = crc32(rec.payload.data(), rec.payload.size());
    rec.keyframe = false;
    rec.valid = true;
    return true;
}

void CheckpointStorage::store(const Cluster::Snapshot& snap) {
    if (cfg_.delta && cur_key_.valid && saves_since_key_ < cfg_.keyframe_interval &&
        encode_delta(snap, delta_)) {
        ++stats_.delta_saves;
        ++saves_since_key_;
        stats_.stored_bytes += delta_.payload.size() + kRecordOverhead;
    } else {
        // Rotate: the current keyframe becomes the last-resort fallback
        // (swap, not move — the retired record's buffers are reused by
        // the next rotation).
        std::swap(prev_key_, cur_key_);
        encode_keyframe(snap, cur_key_);
        base_full_ = snap;
        delta_.valid = false;
        saves_since_key_ = 1;
        ++stats_.keyframes;
        stats_.stored_bytes += cur_key_.payload.size() + kRecordOverhead;
    }
    stats_.full_equiv_bytes += keyframe_payload_size(snap) + kRecordOverhead;
}

bool CheckpointStorage::crc_ok(const Record& rec) const {
    return crc32(rec.payload.data(), rec.payload.size()) == rec.crc;
}

bool CheckpointStorage::decode(const Record& rec, Cluster::Snapshot& out) const {
    ByteReader r(rec.payload);
    if (rec.keyframe) {
        out = rec.meta;
        for (auto& c : out.cores)
            for (unsigned i = 0; i < kArchWords; ++i) set_arch_word(c.state, i, r.get<Word>());
        for (std::size_t b = 0; b < out.dm_banks.size(); ++b) {
            mem::BankSnapshot& bank = out.dm_banks[b];
            bank.cells.resize(rec.dm_cells[b]);
            for (auto& cell : bank.cells) cell = r.get<std::uint32_t>();
            bank.check.resize(rec.dm_has_check[b] ? rec.dm_cells[b] : 0);
            for (auto& chk : bank.check) chk = r.get<std::uint8_t>();
        }
        for (auto& ic : out.im_cells) {
            ic.cell.cell = r.get<std::uint32_t>();
            ic.cell.check = r.get<std::uint8_t>();
        }
        return !r.fail() && r.remaining() == 0;
    }

    // Delta: `out` holds the reconstructed base keyframe. Overlay the
    // record's control state first (keeping the base's payload-backed
    // state), then apply the dirty words.
    if (out.cores.size() != rec.meta.cores.size() ||
        out.dm_banks.size() != rec.meta.dm_banks.size())
        return false;
    out.cycle = rec.meta.cycle;
    out.stats = rec.meta.stats;
    out.direct_faults = rec.meta.direct_faults;
    for (std::size_t c = 0; c < out.cores.size(); ++c) {
        const core::CoreState base_state = out.cores[c].state;
        out.cores[c] = rec.meta.cores[c];
        out.cores[c].state = base_state;
    }
    out.ex_in_buf = rec.meta.ex_in_buf;
    out.im_dirty = rec.meta.im_dirty;
    out.im_cells = rec.meta.im_cells;
    out.im_stats = rec.meta.im_stats;
    out.im_uncorrectable = rec.meta.im_uncorrectable;
    for (std::size_t b = 0; b < out.dm_banks.size(); ++b) {
        out.dm_banks[b].stats = rec.meta.dm_banks[b].stats;
        out.dm_banks[b].gated = rec.meta.dm_banks[b].gated;
        out.dm_banks[b].uncorrectable_pending = rec.meta.dm_banks[b].uncorrectable_pending;
    }
    out.ixbar = rec.meta.ixbar;
    out.dxbar = rec.meta.dxbar;
    out.im_scrub_ptr = rec.meta.im_scrub_ptr;
    out.dm_scrub_ptr = rec.meta.dm_scrub_ptr;

    if (rec.reg_masks.size() != out.cores.size()) return false;
    for (std::size_t c = 0; c < out.cores.size(); ++c)
        for (unsigned i = 0; i < kArchWords; ++i)
            if (rec.reg_masks[c] & (1u << i)) set_arch_word(out.cores[c].state, i, r.get<Word>());
    for (const Record::DmAddr& a : rec.dm_addrs) {
        if (a.bank >= out.dm_banks.size()) return false;
        mem::BankSnapshot& bank = out.dm_banks[a.bank];
        if (a.offset >= bank.cells.size()) return false;
        bank.cells[a.offset] = r.get<std::uint32_t>();
        const std::uint8_t chk = r.get<std::uint8_t>();
        if (!bank.check.empty()) bank.check[a.offset] = chk;
    }
    for (auto& ic : out.im_cells) {
        ic.cell.cell = r.get<std::uint32_t>();
        ic.cell.check = r.get<std::uint8_t>();
    }
    return !r.fail() && r.remaining() == 0;
}

bool CheckpointStorage::load(Cluster::Snapshot& out) {
    const bool ok_delta = delta_.valid && (!cfg_.crc_verify || crc_ok(delta_));
    if (delta_.valid && !ok_delta) ++stats_.crc_failures;
    bool ok_cur = cur_key_.valid && (!cfg_.crc_verify || crc_ok(cur_key_));
    if (cur_key_.valid && !ok_cur) ++stats_.crc_failures;

    if (ok_cur && decode(cur_key_, out)) {
        if (ok_delta) {
            if (decode(delta_, out)) return true;
            ++stats_.crc_failures; // structurally corrupt delta
            if (decode(cur_key_, out)) {
                ++stats_.keyframe_fallbacks;
                return true;
            }
        } else if (delta_.valid) {
            ++stats_.keyframe_fallbacks; // newest record rejected, serving its base
            return true;
        } else {
            return true; // the keyframe is the newest record
        }
    } else if (ok_cur) {
        ++stats_.crc_failures; // structurally corrupt keyframe
        ok_cur = false;
    }

    const bool ok_prev = prev_key_.valid && (!cfg_.crc_verify || crc_ok(prev_key_));
    if (prev_key_.valid && !ok_prev) ++stats_.crc_failures;
    if (ok_prev && decode(prev_key_, out)) {
        ++stats_.keyframe_fallbacks;
        return true;
    }
    if (ok_prev) ++stats_.crc_failures;
    return false;
}

CheckpointStorage::Record* CheckpointStorage::slot_ptr(unsigned slot) {
    Record* order[3] = {&delta_, &cur_key_, &prev_key_};
    unsigned n = 0;
    for (Record* r : order)
        if (r->valid && n++ == slot) return r;
    return nullptr;
}

unsigned CheckpointStorage::record_count() const {
    return (delta_.valid ? 1 : 0) + (cur_key_.valid ? 1 : 0) + (prev_key_.valid ? 1 : 0);
}

std::uint64_t CheckpointStorage::payload_words(unsigned slot) {
    const Record* r = slot_ptr(slot);
    return r ? (r->payload.size() + 3) / 4 : 0;
}

void CheckpointStorage::corrupt(unsigned slot, std::uint64_t word, std::uint32_t flip_mask) {
    Record* r = slot_ptr(slot);
    if (!r || r->payload.empty()) return;
    const std::uint64_t words = (r->payload.size() + 3) / 4;
    const std::size_t base = static_cast<std::size_t>((word % words) * 4);
    for (unsigned byte = 0; byte < 4 && base + byte < r->payload.size(); ++byte)
        r->payload[base + byte] ^= static_cast<std::uint8_t>(flip_mask >> (8 * byte));
}

} // namespace ulpmc::cluster
