#include "cluster/pool.hpp"

#include <memory>

namespace ulpmc::cluster {

namespace {
thread_local std::unique_ptr<Cluster> t_instance;
} // namespace

Cluster& pooled_cluster(const ClusterConfig& cfg, const isa::Program& prog) {
    if (!t_instance) {
        t_instance = std::make_unique<Cluster>(cfg, prog);
    } else {
        t_instance->reset(cfg, prog);
    }
    return *t_instance;
}

Cluster& pooled_cluster(const ClusterConfig& cfg,
                        std::shared_ptr<const isa::ProgramImage> image) {
    if (!t_instance) {
        t_instance = std::make_unique<Cluster>(cfg, std::move(image));
    } else {
        t_instance->reset(cfg, std::move(image));
    }
    return *t_instance;
}

} // namespace ulpmc::cluster
