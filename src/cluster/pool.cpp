#include "cluster/pool.hpp"

#include <memory>

namespace ulpmc::cluster {

Cluster& pooled_cluster(const ClusterConfig& cfg, const isa::Program& prog) {
    thread_local std::unique_ptr<Cluster> instance;
    if (!instance) {
        instance = std::make_unique<Cluster>(cfg, prog);
    } else {
        instance->reset(cfg, prog);
    }
    return *instance;
}

} // namespace ulpmc::cluster
