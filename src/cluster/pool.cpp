#include "cluster/pool.hpp"

#include <array>
#include <utility>

namespace ulpmc::cluster {

namespace {

/// The fields whose change forces Cluster::reset() to re-allocate (memory
/// geometry, core count, decode-cache layout). Two configs with equal
/// shape can share one bucket: reset() handles every remaining field
/// (protection flags, watchdog, broadcast, ...) allocation-free.
struct Shape {
    ArchKind arch;
    SimEngine engine;
    unsigned cores;
    mmu::ImPolicy im_policy;
    unsigned im_banks, dm_banks;
    std::size_t im_bank_words, dm_bank_words;
    Addr dm_shared, dm_private;

    static Shape of(const ClusterConfig& cfg) {
        return {cfg.arch,          cfg.engine,        cfg.cores,
                cfg.im_policy,     cfg.im_banks,      cfg.dm_banks,
                cfg.im_bank_words, cfg.dm_bank_words, cfg.dm_layout.shared_words,
                cfg.dm_layout.private_words_per_core};
    }

    bool operator==(const Shape& o) const {
        return arch == o.arch && engine == o.engine && cores == o.cores &&
               im_policy == o.im_policy && im_banks == o.im_banks && dm_banks == o.dm_banks &&
               im_bank_words == o.im_bank_words && dm_bank_words == o.dm_bank_words &&
               dm_shared == o.dm_shared && dm_private == o.dm_private;
    }
};

struct Bucket {
    Shape shape;
    std::unique_ptr<Cluster> cluster;
    std::uint64_t last_use = 0;
};

struct Pool {
    std::array<Bucket, kPoolMaxBuckets> buckets;
    std::size_t live = 0;
    std::uint64_t tick = 0;
    PoolStats stats;

    /// Finds the bucket for `shape`, constructing (or evicting the
    /// least-recently-used bucket) as needed. Returns the slot; the
    /// caller resets/constructs the cluster.
    Bucket& acquire(const Shape& shape) {
        ++tick;
        for (std::size_t i = 0; i < live; ++i) {
            if (buckets[i].shape == shape) {
                ++stats.hits;
                buckets[i].last_use = tick;
                return buckets[i];
            }
        }
        ++stats.misses;
        std::size_t slot = live;
        if (live == kPoolMaxBuckets) {
            slot = 0;
            for (std::size_t i = 1; i < live; ++i)
                if (buckets[i].last_use < buckets[slot].last_use) slot = i;
            buckets[slot].cluster.reset();
            ++stats.evictions;
        } else {
            ++live;
        }
        buckets[slot].shape = shape;
        buckets[slot].last_use = tick;
        return buckets[slot];
    }
};

thread_local Pool t_pool;

} // namespace

Cluster& pooled_cluster(const ClusterConfig& cfg, const isa::Program& prog) {
    Bucket& b = t_pool.acquire(Shape::of(cfg));
    if (!b.cluster) {
        b.cluster = std::make_unique<Cluster>(cfg, prog);
    } else {
        b.cluster->reset(cfg, prog);
    }
    return *b.cluster;
}

Cluster& pooled_cluster(const ClusterConfig& cfg,
                        std::shared_ptr<const isa::ProgramImage> image) {
    Bucket& b = t_pool.acquire(Shape::of(cfg));
    if (!b.cluster) {
        b.cluster = std::make_unique<Cluster>(cfg, std::move(image));
    } else {
        b.cluster->reset(cfg, std::move(image));
    }
    return *b.cluster;
}

PoolStats pooled_cluster_stats() {
    PoolStats s = t_pool.stats;
    s.buckets = t_pool.live;
    return s;
}

void pooled_cluster_clear() {
    for (std::size_t i = 0; i < t_pool.live; ++i) t_pool.buckets[i].cluster.reset();
    t_pool.live = 0;
    t_pool.stats.buckets = 0;
}

} // namespace ulpmc::cluster
