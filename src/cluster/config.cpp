#include "cluster/config.hpp"

#include "common/assert.hpp"

namespace ulpmc::cluster {

std::string arch_name(ArchKind k) {
    switch (k) {
    case ArchKind::McRef:
        return "mc-ref";
    case ArchKind::UlpmcInt:
        return "ulpmc-int";
    case ArchKind::UlpmcBank:
        return "ulpmc-bank";
    }
    ULPMC_ASSERT(false);
}

std::string engine_name(SimEngine e) {
    switch (e) {
    case SimEngine::Reference:
        return "reference";
    case SimEngine::Fast:
        return "fast";
    case SimEngine::Trace:
        return "trace";
    case SimEngine::Batched:
        return "batched";
    }
    ULPMC_ASSERT(false);
}

bool parse_engine(const std::string& s, SimEngine& out) {
    if (s == "reference") {
        out = SimEngine::Reference;
    } else if (s == "fast") {
        out = SimEngine::Fast;
    } else if (s == "trace") {
        out = SimEngine::Trace;
    } else if (s == "batched") {
        out = SimEngine::Batched;
    } else {
        return false;
    }
    return true;
}

ClusterConfig make_config(ArchKind k, mmu::DmLayout layout) {
    ClusterConfig c;
    c.arch = k;
    c.dm_layout = layout;
    switch (k) {
    case ArchKind::McRef:
        c.im_policy = mmu::ImPolicy::Dedicated;
        c.dm_broadcast = false;
        c.im_broadcast = false; // no I-Xbar at all in mc-ref
        c.gate_unused_im_banks = false;
        c.stagger_start = true;
        break;
    case ArchKind::UlpmcInt:
        c.im_policy = mmu::ImPolicy::Interleaved;
        c.dm_broadcast = true;
        c.im_broadcast = true;
        c.gate_unused_im_banks = false;
        c.stagger_start = false;
        break;
    case ArchKind::UlpmcBank:
        c.im_policy = mmu::ImPolicy::Banked;
        c.dm_broadcast = true;
        c.im_broadcast = true;
        c.gate_unused_im_banks = true;
        c.stagger_start = false;
        break;
    }
    return c;
}

} // namespace ulpmc::cluster
