#include "cluster/stats.hpp"

#include <ostream>

#include "common/table.hpp"

namespace ulpmc::cluster {

const char* peel_reason_name(PeelReason r) {
    switch (r) {
    case PeelReason::FaultStrike:
        return "fault_strike";
    case PeelReason::CrossbarUpset:
        return "crossbar_upset";
    case PeelReason::Trap:
        return "trap";
    case PeelReason::Watchdog:
        return "watchdog";
    case PeelReason::MemoBail:
        return "memo_bail";
    }
    return "?";
}

std::string core_status(const CoreRunStats& c) {
    if (c.trap != core::Trap::None) return std::string("TRAP:") + core::trap_name(c.trap);
    return c.halted_at > 0 ? "halted" : "running";
}

void print_run_summary(std::ostream& os, const ClusterStats& s) {
    Table t({"core", "state", "instructions", "stalls", "bubbles"});
    for (std::size_t p = 0; p < s.core.size(); ++p) {
        const auto& c = s.core[p];
        t.add_row({std::to_string(p), core_status(c), format_count(c.instret),
                   format_count(c.stall_cycles), format_count(c.bubble_cycles)});
    }
    t.print(os);
    if (s.cores_trapped() > 0)
        os << "WARNING: " << s.cores_trapped() << " core(s) trapped ("
           << s.watchdog_trips << " by watchdog)\n";
    if (s.ecc_enabled || s.faults_injected > 0)
        os << "resilience: " << format_count(s.faults_injected) << " fault(s) injected, ECC "
           << (s.ecc_enabled ? "on" : "off") << ", " << format_count(s.ecc_corrected())
           << " corrected (" << format_count(s.ecc_im_corrected) << " IM / "
           << format_count(s.ecc_dm_corrected) << " DM), "
           << format_count(s.ecc_uncorrectable) << " uncorrectable\n";
    if (s.reg_protection != core::RegProtection::None)
        os << "reg protection: " << core::reg_protection_name(s.reg_protection) << ", "
           << format_count(s.reg_parity_traps) << " parity trap(s), "
           << format_count(s.reg_tmr_votes) << " TMR repair(s)\n";
    if (s.im_scrub_enabled || s.dm_scrub_enabled)
        os << "scrub: IM " << (s.im_scrub_enabled ? "on" : "off") << " ("
           << format_count(s.im_scrub_reads) << " reads, "
           << format_count(s.im_scrub_corrected) << " repaired), DM "
           << (s.dm_scrub_enabled ? "on" : "off") << " (" << format_count(s.dm_scrub_reads)
           << " reads, " << format_count(s.dm_scrub_corrected) << " repaired)\n";
}

} // namespace ulpmc::cluster
