// Generalized checkpoint/rollback service (DESIGN.md §9).
//
// PR 2's rollback was streaming-specific: the block boundary was the
// checkpoint and "rollback" was a cluster reset plus input replay, which
// only works because that workload keeps no state across blocks. This
// service generalizes it on top of Cluster::save/restore: checkpoints can
// be taken on a cycle interval or at explicit program points (the caller
// decides), they capture the FULL cluster state — register files, PC,
// flags, memories, arbitration state — so cross-checkpoint state (e.g.
// the streaming firmware's block counter) survives a rollback, and any
// detected-but-unhealable trap (ECC double-bit, register parity,
// watchdog) re-executes from the last checkpoint instead of fail-stopping
// the whole run. Re-execution cost is accounted (reexec_cycles) so the
// energy model can bound it.
#pragma once

#include "cluster/ckpt_store.hpp"
#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "fault/estimator.hpp"

namespace ulpmc::cluster {

struct CheckpointConfig {
    /// Cycles between automatic checkpoints inside run(). 0 = explicit
    /// checkpoints only (the caller marks recovery points itself). Under
    /// `adaptive` this is only the STARTING interval (0 = start at
    /// max_interval); the controller re-solves it online.
    Cycle interval = 0;
    /// Rollbacks attempted since the last successful checkpoint before
    /// the runner gives up (a deterministic fault re-traps forever; the
    /// bound turns that into a detected, reported failure).
    unsigned max_retries = 2;
    /// Detect-before-save: checkpoint() rolls back instead of saving when
    /// the parity sweep finds a latched upset. Drivers that verify and
    /// recover per-core themselves (the streaming monitor, which must not
    /// sacrifice a whole checkpoint to a lead it already dropped) turn
    /// this off and query reg_parity_pending(pid) directly.
    bool parity_guard = true;

    // ---- adaptive interval control (DESIGN.md §9) ----------------------
    /// Re-solve the optimal-interval formula
    ///   T* = sqrt(2 * cores * words_per_core * e_word / (lambda * E_cycle))
    /// at every window boundary, with lambda from an online
    /// fault::UpsetRateEstimator over observed correction/trap events
    /// (ClusterStats::upset_events()). E_cycle = cores * e_cycle_per_core.
    bool adaptive = false;
    /// Clamp for the solved interval: below min_interval checkpoint
    /// traffic dominates, above max_interval detection latency does.
    Cycle min_interval = 200;
    Cycle max_interval = 100'000;
    /// Relative-change threshold before a newly solved interval is
    /// adopted — re-tuning on every estimator wiggle thrashes the
    /// schedule for nothing.
    double hysteresis = 0.25;
    /// EWMA weight of the upset-rate estimator (per observation window).
    double alpha = 0.3;
    /// Energy constants for the solve. Defaults mirror power::cal
    /// (kCheckpointWordEnergy, kCoreEnergyPerOp at 1.0 V); campaign
    /// drivers may override to match a different operating point.
    double e_word = 32e-12;
    double e_cycle_per_core = 22.5e-12;
    /// Architectural words saved per core (16 GPRs + PC + flags).
    unsigned words_per_core = 18;

    // ---- durable delta storage (DESIGN.md §9.6) ------------------------
    /// Route every snapshot through the delta CheckpointStorage (keyframe
    /// + dirty-word delta records with CRC32). rollback() then restores
    /// by DECODING stored payload bytes — storage corruption becomes a
    /// real fault channel, detected by the CRC and absorbed by the
    /// keyframe fallback chain (or flowing into SDC when verification is
    /// off, which is what the storage-fault campaigns measure).
    bool delta_store = false;
    CkptStorageConfig storage{};
    /// Per-stored-word save energy under delta_store: slightly above
    /// e_word (power::cal::kCheckpointDeltaWordEnergy) for the dirty
    /// tracking, but paid only on the words a delta actually stores —
    /// the adaptive T* solve scales its save cost by the observed
    /// stored/full byte ratio, so cheap deltas buy shorter intervals.
    double e_word_delta = 36e-12;
};

struct CheckpointStats {
    std::uint64_t checkpoints = 0;   ///< snapshots taken
    std::uint64_t rollbacks = 0;     ///< restores after a detected error
    Cycle reexec_cycles = 0;         ///< simulated cycles thrown away by rollbacks
    bool gave_up = false;            ///< retry budget exhausted on one checkpoint
    /// delta_store only: every stored record failed verification on a
    /// rollback — a detected, unrecoverable storage loss (sets gave_up).
    bool storage_exhausted = false;
    // Adaptive-control telemetry (stay zero for fixed-interval runs).
    std::uint64_t interval_updates = 0; ///< re-solves that changed the interval
    Cycle current_interval = 0;      ///< interval in force (adaptive runs)
    double lambda_hat = 0.0;         ///< estimator rate at the last re-solve
};

/// Drives one Cluster with checkpoint/rollback semantics. The runner owns
/// the snapshot buffer (reused across checkpoints — steady state
/// allocates nothing) but not the cluster.
class CheckpointRunner {
public:
    explicit CheckpointRunner(Cluster& cl) : cl_(cl) {}

    /// Re-arms the runner for a fresh run of the (possibly reset) cluster:
    /// statistics cleared, no checkpoint held. Snapshot buffers are kept.
    void reset(const CheckpointConfig& cfg);

    /// Takes a checkpoint at the current cycle. First scrubs the register
    /// files through the protection layer: under TMR every pending upset
    /// is vote-repaired so the snapshot is clean; under parity a pending
    /// (detectable) upset means the CURRENT state is corrupt — saving it
    /// would poison the recovery point, so the runner rolls back to the
    /// previous checkpoint instead (detect-before-save) and returns false.
    bool checkpoint();

    /// Restores the last checkpoint, charging the discarded cycles to
    /// reexec_cycles. Requires a prior successful checkpoint().
    void rollback();

    /// Runs the cluster until it quiesces or reaches `bound`, taking
    /// interval checkpoints (cfg.interval > 0) and rolling back on any
    /// trap. A trap that survives cfg.max_retries rollbacks sets gave_up
    /// and stops (the caller classifies the failure). Returns the final
    /// cycle count (monotonic simulated time, rollbacks included in
    /// stats().reexec_cycles, not in the cluster's own cycle counter).
    Cycle run(Cycle bound);

    const CheckpointStats& stats() const { return stats_; }
    bool has_checkpoint() const { return has_ckpt_; }
    Cycle checkpoint_cycle() const { return snap_cycle_; }

    /// The interval currently in force: the adaptive controller's latest
    /// solution, or cfg.interval on fixed-interval runs.
    Cycle effective_interval() const { return cfg_.adaptive ? cur_interval_ : cfg_.interval; }

    /// The durable record store (cfg.delta_store runs). Mutable access is
    /// the checkpoint-storage fault injector's strike surface.
    CheckpointStorage& storage() { return storage_; }
    const CheckpointStorage& storage() const { return storage_; }

private:
    bool any_trap() const;
    bool any_running() const;
    /// Feeds the estimator the correction/trap events since the last
    /// observation point and re-solves the interval (adaptive runs only).
    /// Must run BEFORE a rollback: restore rewinds the statistics the
    /// window delta is computed from.
    void observe_and_retune();
    /// Re-bases the observation window on the cluster's current counters
    /// (after a save or a restore moved them).
    void rebase_window();
    Cycle solve_interval(double lambda) const;

    Cluster& cl_;
    CheckpointConfig cfg_;
    CheckpointStats stats_;
    Cluster::Snapshot snap_;
    CheckpointStorage storage_;
    bool has_ckpt_ = false;
    Cycle snap_cycle_ = 0;
    unsigned retries_ = 0;
    // Adaptive-control state.
    fault::UpsetRateEstimator est_;
    Cycle cur_interval_ = 0;
    std::uint64_t base_events_ = 0;
    Cycle base_cycle_ = 0;
    /// Cycles a rollback scheduled for re-execution. The strike process
    /// (and hence lambda) lives in PROGRAM time; replayed cycles would
    /// inflate the measured inter-event gaps, so observation windows
    /// discount them as they are re-executed.
    Cycle replay_debt_ = 0;
};

} // namespace ulpmc::cluster
