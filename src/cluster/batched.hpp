// Batched lockstep execution engine (DESIGN.md §11).
//
// Fault campaigns and fleet sweeps run B cluster *instances* that share
// everything — configuration, program image, inputs — and differ only in
// when (and whether) a fault strikes. The simulator is deterministic, so
// all B lanes are bit-identical until their first divergent event: one
// representative Trace-tier cluster can execute the shared decoded program
// once per dispatch and stand in for every lane still in lockstep. A lane
// diverges (fault strike, crossbar upset, trap, watchdog, memo bail) by
// PEELING: its architectural + microarchitectural state is seeded into a
// private per-lane cluster from a portable snapshot of the representative,
// and only that lane pays per-cycle simulation. Once the divergence has
// washed out (the fault was corrected or overwritten), the lane REJOINS at
// the next snapshot boundary: an exact comparison of future-determining
// state (Cluster::state_equals) proves the lane's remaining execution is
// identical to the representative's, so the shared tail is credited
// instead of simulated.
//
// The engine is exact, not approximate: every lane's cycle counts and
// statistics are bit-identical to a standalone Trace-tier run of that lane
// (pinned by tests/cluster/batched_diff_test.cpp). Speed comes purely from
// not re-simulating work that determinism proves is shared.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "cluster/stats.hpp"
#include "common/types.hpp"
#include "isa/program_image.hpp"

namespace ulpmc::cluster {

/// B lanes in lockstep over one shared representative cluster.
class BatchedCluster {
public:
    /// `cfg.engine` should be SimEngine::Batched (each underlying cluster
    /// then runs the trace path); `lanes` is the batch width B.
    BatchedCluster(const ClusterConfig& cfg, std::shared_ptr<const isa::ProgramImage> image,
                   unsigned lanes);

    /// Re-initializes in place (pooled reuse): representative reset, every
    /// lane back to lockstep, accumulators cleared. Per-lane peel clusters
    /// are kept warm, so a same-geometry reset performs no steady-state
    /// heap allocation.
    void reset(const ClusterConfig& cfg, std::shared_ptr<const isa::ProgramImage> image,
               unsigned lanes);

    unsigned lanes() const { return static_cast<unsigned>(lanes_.size()); }
    const ClusterConfig& config() const { return rep_.config(); }

    /// The shared lockstep representative. Campaigns build their snapshot
    /// ladder on it; it must stay CLEAN (never inject into rep() — peel
    /// the lane and inject there).
    Cluster& rep() { return rep_; }
    const Cluster& rep() const { return rep_; }

    /// Advances every lane to min(quiesce, max_cycles): the representative
    /// runs once and every lockstep/rejoined lane rides it (accruing
    /// batch_lockstep_cycles), then each peeled lane advances privately.
    /// Returns the representative's cycle counter.
    Cycle run_lockstep(Cycle max_cycles);

    bool in_lockstep(unsigned lane) const {
        return lanes_[lane].mode != LaneMode::Peeled;
    }

    /// Peels `lane` off the shared representative at its CURRENT state /
    /// at a saved boundary `at` (a snapshot of the representative, e.g. a
    /// campaign ladder rung). The lane's private cluster is seeded from
    /// the portable snapshot; the shared prefix it rode is back-credited
    /// to its lockstep-cycle accumulator. Returns the private cluster —
    /// inject the divergent event there. One peel per lane per reset/
    /// reset_lanes cycle.
    Cluster& peel(unsigned lane, PeelReason why);
    Cluster& peel_at(unsigned lane, const Cluster::Snapshot& at, PeelReason why);

    /// Records a secondary divergence cause observed after the peel (the
    /// lane later trapped, watchdogged, or failed every rejoin attempt).
    /// Counts a reason without counting another peel.
    void add_peel_reason(unsigned lane, PeelReason why) {
        soa_.reasons[lane * kPeelReasonCount + static_cast<unsigned>(why)] += 1;
    }

    /// The private cluster of a peeled lane (peel first).
    Cluster& lane_cluster(unsigned lane);

    /// Read-only view of the cluster currently embodying `lane`: its
    /// private cluster when peeled, the representative otherwise.
    const Cluster& lane_view(unsigned lane) const;

    /// Exact-state rejoin at `boundary` (a snapshot of the representative
    /// at a cycle the peeled lane has reached). If the lane's future-
    /// determining state matches the boundary bit-for-bit, the lane's
    /// remaining execution is provably identical to the representative's:
    /// the lane goes back to riding the shared tail (every cycle the
    /// representative is past the boundary is credited as lockstep) and
    /// its final statistics are materialized as
    ///     stats(lane at boundary) + [stats(rep now) - stats(rep at boundary)].
    /// Returns false (and changes nothing) when the states still differ.
    bool try_rejoin(unsigned lane, const Cluster::Snapshot& boundary);

    /// Returns every lane to lockstep on the representative and clears the
    /// per-lane accumulators — the start of the next injection group in a
    /// campaign. The representative itself is NOT reset (it stays wherever
    /// the clean run left it; campaign lanes re-seed from ladder rungs).
    void reset_lanes();

    /// Final per-lane statistics, exact per the class contract, with the
    /// batch_* observability counters filled in. Out-param flavor so hot
    /// campaign loops reuse one buffer (heap-free after warm-up).
    void lane_stats_into(unsigned lane, ClusterStats& out) const;
    ClusterStats lane_stats(unsigned lane) const {
        ClusterStats s;
        lane_stats_into(lane, s);
        return s;
    }

    // ---- SoA state views (DESIGN.md §11) -----------------------------------
    // Structure-of-arrays mirror of per-lane architectural state,
    // lane-major: refreshed whenever a lane's state materializes (peel,
    // rejoin, end of run_lockstep) and lazily on read, so a peeled lane
    // advanced directly through its Cluster& is still reported exactly.
    // Diagnostics and tools read B lanes' registers/PCs as contiguous rows
    // instead of B pointer-chased cluster objects.

    /// Registers of `lane`, cores*kNumRegisters contiguous words.
    std::span<const Word> lane_regs(unsigned lane) const;
    /// PC of core `c` in `lane`.
    PAddr lane_pc(unsigned lane, unsigned c) const;
    /// Packed C/Z/N/V status word of core `c` in `lane` (bit 0 = C ... bit 3 = V).
    Word lane_flags(unsigned lane, unsigned c) const;
    /// Cycle counter of `lane`.
    Cycle lane_cycle(unsigned lane) const;

private:
    enum class LaneMode : std::uint8_t { Lockstep, Peeled, Rejoined };

    struct LaneSlot {
        LaneMode mode = LaneMode::Lockstep;
        std::unique_ptr<Cluster> cl; ///< lazily built on first peel, kept warm
        ClusterStats base;           ///< lane stats at its rejoin boundary
        ClusterStats rep_base;       ///< representative stats at that boundary
    };

    /// Lane-major SoA arrays; `stride` rows of cores entries each.
    struct BatchedState {
        std::vector<Word> regs;   ///< [lane][core][reg]
        std::vector<PAddr> pc;    ///< [lane][core]
        std::vector<Word> flags;  ///< [lane][core], packed C/Z/N/V
        std::vector<Cycle> cycle; ///< [lane]
        // Per-lane stat accumulators (lane-major): shared-representative
        // cycles ridden, peel count, and the per-reason breakdown.
        std::vector<std::uint64_t> lockstep_cycles; ///< [lane]
        std::vector<std::uint64_t> peels;           ///< [lane]
        std::vector<std::uint64_t> reasons;         ///< [lane][kPeelReasonCount]
    };

    void refresh_soa(unsigned lane) const;
    const Cluster& source_of(unsigned lane) const;

    Cluster rep_;
    std::shared_ptr<const isa::ProgramImage> image_;
    std::vector<LaneSlot> lanes_;
    mutable BatchedState soa_;
    Cluster::Snapshot xfer_; ///< peel() transfer buffer, reused
};

} // namespace ulpmc::cluster
