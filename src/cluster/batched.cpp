#include "cluster/batched.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ulpmc::cluster {

namespace {

Word pack_flags(const core::Flags& f) {
    return static_cast<Word>((f.c ? 1u : 0u) | (f.z ? 2u : 0u) | (f.n ? 4u : 0u) |
                             (f.v ? 8u : 0u));
}

void add_xbar_tail(xbar::XbarStats& dst, const xbar::XbarStats& now,
                   const xbar::XbarStats& base) {
    dst.requests += now.requests - base.requests;
    dst.grants += now.grants - base.grants;
    dst.bank_accesses += now.bank_accesses - base.bank_accesses;
    dst.broadcast_riders += now.broadcast_riders - base.broadcast_riders;
    dst.denied += now.denied - base.denied;
    dst.conflict_cycles += now.conflict_cycles - base.conflict_cycles;
    dst.hijacked_grants += now.hijacked_grants - base.hijacked_grants;
    dst.selfcheck_fixes += now.selfcheck_fixes - base.selfcheck_fixes;
    dst.selfcheck_resyncs += now.selfcheck_resyncs - base.selfcheck_resyncs;
}

// dst += (now - base) on every event counter: the representative's tail
// from the rejoin boundary to `now` is, by the exact-state rejoin proof,
// precisely what the lane would have executed. Config-derived fields
// (flags, bank totals) keep dst's values; halted_at/trap are taken from
// the tail when the lane had not ended yet — determinism puts the lane's
// halt at exactly the representative's cycle.
void add_tail(ClusterStats& dst, const ClusterStats& now, const ClusterStats& base) {
    dst.cycles += now.cycles - base.cycles;
    for (std::size_t p = 0; p < dst.core.size(); ++p) {
        CoreRunStats& d = dst.core[p];
        const CoreRunStats& n = now.core[p];
        const CoreRunStats& b = base.core[p];
        d.instret += n.instret - b.instret;
        d.stall_cycles += n.stall_cycles - b.stall_cycles;
        d.bubble_cycles += n.bubble_cycles - b.bubble_cycles;
        d.dm_loads += n.dm_loads - b.dm_loads;
        d.dm_stores += n.dm_stores - b.dm_stores;
        d.im_fetches += n.im_fetches - b.im_fetches;
        if (d.halted_at == 0) d.halted_at = n.halted_at;
        if (d.trap == core::Trap::None) d.trap = n.trap;
    }
    add_xbar_tail(dst.ixbar, now.ixbar, base.ixbar);
    add_xbar_tail(dst.dxbar, now.dxbar, base.dxbar);
    dst.im_bank_accesses += now.im_bank_accesses - base.im_bank_accesses;
    dst.dm_bank_reads += now.dm_bank_reads - base.dm_bank_reads;
    dst.dm_bank_writes += now.dm_bank_writes - base.dm_bank_writes;
    dst.ecc_im_corrected += now.ecc_im_corrected - base.ecc_im_corrected;
    dst.ecc_dm_corrected += now.ecc_dm_corrected - base.ecc_dm_corrected;
    dst.ecc_uncorrectable += now.ecc_uncorrectable - base.ecc_uncorrectable;
    dst.faults_injected += now.faults_injected - base.faults_injected;
    dst.watchdog_trips += now.watchdog_trips - base.watchdog_trips;
    dst.reg_parity_traps += now.reg_parity_traps - base.reg_parity_traps;
    dst.reg_tmr_votes += now.reg_tmr_votes - base.reg_tmr_votes;
    dst.im_scrub_reads += now.im_scrub_reads - base.im_scrub_reads;
    dst.im_scrub_corrected += now.im_scrub_corrected - base.im_scrub_corrected;
    dst.im_scrub_uncorrectable += now.im_scrub_uncorrectable - base.im_scrub_uncorrectable;
    dst.dm_scrub_reads += now.dm_scrub_reads - base.dm_scrub_reads;
    dst.dm_scrub_corrected += now.dm_scrub_corrected - base.dm_scrub_corrected;
    dst.dm_scrub_uncorrectable += now.dm_scrub_uncorrectable - base.dm_scrub_uncorrectable;
}

} // namespace

BatchedCluster::BatchedCluster(const ClusterConfig& cfg,
                               std::shared_ptr<const isa::ProgramImage> image, unsigned lanes)
    : rep_(cfg, image) {
    image_ = std::move(image);
    reset(cfg, image_, lanes);
}

void BatchedCluster::reset(const ClusterConfig& cfg,
                           std::shared_ptr<const isa::ProgramImage> image, unsigned lanes) {
    ULPMC_EXPECTS(lanes >= 1);
    ULPMC_EXPECTS(image != nullptr);
    rep_.reset(cfg, image);
    image_ = std::move(image);
    lanes_.resize(lanes);
    for (LaneSlot& s : lanes_) {
        s.mode = LaneMode::Lockstep;
        // Keep peel clusters warm but re-seed their geometry so a later
        // restore() lands on a matching instance.
        if (s.cl) s.cl->reset(cfg, image_);
    }
    const unsigned cores = cfg.cores;
    soa_.regs.assign(std::size_t{lanes} * cores * kNumRegisters, 0);
    soa_.pc.assign(std::size_t{lanes} * cores, 0);
    soa_.flags.assign(std::size_t{lanes} * cores, 0);
    soa_.cycle.assign(lanes, 0);
    soa_.lockstep_cycles.assign(lanes, 0);
    soa_.peels.assign(lanes, 0);
    soa_.reasons.assign(std::size_t{lanes} * kPeelReasonCount, 0);
    for (unsigned l = 0; l < lanes; ++l) refresh_soa(l);
}

const Cluster& BatchedCluster::source_of(unsigned lane) const {
    const LaneSlot& s = lanes_[lane];
    return s.mode == LaneMode::Peeled ? *s.cl : rep_;
}

void BatchedCluster::refresh_soa(unsigned lane) const {
    const Cluster& src = source_of(lane);
    const unsigned cores = rep_.config().cores;
    for (unsigned c = 0; c < cores; ++c) {
        const core::CoreState& st = src.core_state(static_cast<CoreId>(c));
        std::copy(st.regs.begin(), st.regs.end(),
                  soa_.regs.begin() + (std::size_t{lane} * cores + c) * kNumRegisters);
        soa_.pc[std::size_t{lane} * cores + c] = st.pc;
        soa_.flags[std::size_t{lane} * cores + c] = pack_flags(st.flags);
    }
    soa_.cycle[lane] = src.stats().cycles;
}

Cycle BatchedCluster::run_lockstep(Cycle max_cycles) {
    const Cycle before = rep_.stats().cycles;
    const Cycle end = rep_.run(max_cycles);
    const Cycle ridden = end - before;
    for (unsigned l = 0; l < lanes(); ++l) {
        if (lanes_[l].mode != LaneMode::Peeled) {
            soa_.lockstep_cycles[l] += ridden;
        } else {
            lanes_[l].cl->run(max_cycles);
        }
        refresh_soa(l);
    }
    return end;
}

Cluster& BatchedCluster::peel(unsigned lane, PeelReason why) {
    rep_.save(xfer_);
    return peel_at(lane, xfer_, why);
}

Cluster& BatchedCluster::peel_at(unsigned lane, const Cluster::Snapshot& at, PeelReason why) {
    ULPMC_EXPECTS(lane < lanes());
    LaneSlot& slot = lanes_[lane];
    ULPMC_EXPECTS(slot.mode == LaneMode::Lockstep);
    if (!slot.cl) slot.cl = std::make_unique<Cluster>(rep_.config(), image_);
    slot.cl->restore(at);
    slot.mode = LaneMode::Peeled;
    // Back-credit the shared prefix the lane rode before diverging (a
    // no-op when peeling at the representative's current state after
    // run_lockstep already accounted for it).
    if (at.saved_cycle() > soa_.lockstep_cycles[lane])
        soa_.lockstep_cycles[lane] = at.saved_cycle();
    soa_.peels[lane] += 1;
    soa_.reasons[lane * kPeelReasonCount + static_cast<unsigned>(why)] += 1;
    refresh_soa(lane);
    return *slot.cl;
}

Cluster& BatchedCluster::lane_cluster(unsigned lane) {
    ULPMC_EXPECTS(lane < lanes());
    ULPMC_EXPECTS(lanes_[lane].mode == LaneMode::Peeled);
    return *lanes_[lane].cl;
}

const Cluster& BatchedCluster::lane_view(unsigned lane) const {
    ULPMC_EXPECTS(lane < lanes());
    return source_of(lane);
}

bool BatchedCluster::try_rejoin(unsigned lane, const Cluster::Snapshot& boundary) {
    ULPMC_EXPECTS(lane < lanes());
    LaneSlot& slot = lanes_[lane];
    ULPMC_EXPECTS(slot.mode == LaneMode::Peeled);
    if (!slot.cl->state_equals(boundary)) return false;
    slot.base = slot.cl->stats();           // lane history up to the boundary
    slot.rep_base = boundary.saved_stats(); // representative history at it
    slot.mode = LaneMode::Rejoined;
    // Every representative cycle past the boundary is now ridden, not
    // simulated: the whole remaining tail in campaign use (the rep already
    // finished its clean run), zero in pure lockstep use (the rep is AT
    // the boundary and run_lockstep accrues from here).
    soa_.lockstep_cycles[lane] += rep_.stats().cycles - boundary.saved_cycle();
    refresh_soa(lane);
    return true;
}

void BatchedCluster::reset_lanes() {
    for (LaneSlot& s : lanes_) s.mode = LaneMode::Lockstep;
    std::fill(soa_.lockstep_cycles.begin(), soa_.lockstep_cycles.end(), 0);
    std::fill(soa_.peels.begin(), soa_.peels.end(), 0);
    std::fill(soa_.reasons.begin(), soa_.reasons.end(), 0);
    for (unsigned l = 0; l < lanes(); ++l) refresh_soa(l);
}

void BatchedCluster::lane_stats_into(unsigned lane, ClusterStats& out) const {
    ULPMC_EXPECTS(lane < lanes());
    const LaneSlot& slot = lanes_[lane];
    switch (slot.mode) {
    case LaneMode::Lockstep:
        out = rep_.stats();
        break;
    case LaneMode::Peeled:
        out = slot.cl->stats();
        break;
    case LaneMode::Rejoined:
        out = slot.base;
        add_tail(out, rep_.stats(), slot.rep_base);
        break;
    }
    out.batch_lockstep_cycles = soa_.lockstep_cycles[lane];
    out.batch_lane_peels = soa_.peels[lane];
    for (unsigned r = 0; r < kPeelReasonCount; ++r)
        out.batch_peel_reasons[r] = soa_.reasons[lane * kPeelReasonCount + r];
}

std::span<const Word> BatchedCluster::lane_regs(unsigned lane) const {
    refresh_soa(lane);
    const std::size_t row = std::size_t{rep_.config().cores} * kNumRegisters;
    return {soa_.regs.data() + lane * row, row};
}

PAddr BatchedCluster::lane_pc(unsigned lane, unsigned c) const {
    refresh_soa(lane);
    return soa_.pc[std::size_t{lane} * rep_.config().cores + c];
}

Word BatchedCluster::lane_flags(unsigned lane, unsigned c) const {
    refresh_soa(lane);
    return soa_.flags[std::size_t{lane} * rep_.config().cores + c];
}

Cycle BatchedCluster::lane_cycle(unsigned lane) const {
    refresh_soa(lane);
    return soa_.cycle[lane];
}

} // namespace ulpmc::cluster
