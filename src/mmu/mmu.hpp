// Memory management units (paper §III, Fig. 2).
//
// Data side: the DM is split into a SHARED section (read-only lookup
// tables, interleaved word-wise across all banks so linear walks spread
// over banks) and per-core PRIVATE sections (working data, placed in
// disjoint banks so private traffic is conflict-free by construction).
// The MMU translates the single compiled program's virtual addresses into
// (bank, offset) pairs using the core's PID — this is what lets one
// program image serve all eight cores.
//
// Instruction side: three bank-selection policies —
//   Dedicated   (mc-ref):     core p fetches from its own IM bank p;
//   Interleaved (ulpmc-int):  bank = PC mod #banks  (LSB selection);
//   Banked      (ulpmc-bank): bank = PC div bank-size (MSB selection),
// the last packing the program into the fewest banks so the rest can be
// power gated.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"

namespace ulpmc::mmu {

/// A physical location behind a crossbar.
struct BankedAddr {
    BankId bank = 0;
    std::uint32_t offset = 0;

    friend bool operator==(const BankedAddr&, const BankedAddr&) = default;
};

/// Sizing of the data memory's virtual layout. Fixed at application link
/// time ("the size of the private and shared sections are configurable and
/// determined during compilation" — §III-D).
struct DmLayout {
    Addr shared_words = 0;           ///< virtual [0, shared_words): shared
    Addr private_words_per_core = 0; ///< virtual [shared, shared+priv): private

    /// Virtual address of the first private word.
    Addr private_base() const { return shared_words; }

    /// One-past-the-last valid virtual address.
    std::uint32_t limit() const {
        return static_cast<std::uint32_t>(shared_words) + private_words_per_core;
    }
};

/// Per-core data-side MMU.
class DataMmu {
public:
    /// Layout legality (sections must fit the physical banks without
    /// overlap) is contract-checked here.
    DataMmu(DmLayout layout, CoreId pid, unsigned banks = kDmBanks,
            std::size_t words_per_bank = kDmWordsPerBank);

    /// Translates a virtual word address. std::nullopt on fault
    /// (address beyond the mapped sections).
    std::optional<BankedAddr> translate(Addr vaddr) const;

    /// True when the address falls in the shared section.
    bool is_shared(Addr vaddr) const { return vaddr < layout_.shared_words; }

    const DmLayout& layout() const { return layout_; }
    CoreId pid() const { return pid_; }

    /// Words of private data each of the core's banks must reserve
    /// (= private_words_per_core / banks-per-core, rounded up).
    std::size_t private_words_per_bank() const { return priv_per_bank_; }

    /// Banks owned by each core (the paper's geometry: two).
    unsigned banks_per_core() const { return banks_per_core_; }

private:
    DmLayout layout_;
    CoreId pid_;
    unsigned banks_;
    std::size_t words_per_bank_;
    std::size_t priv_per_bank_;
    unsigned banks_per_core_;
    // Shift forms of the divisions in translate(), valid when the divisor
    // is a power of two (every paper geometry); -1 otherwise.
    int bank_shift_ = -1;
    int priv_shift_ = -1;
};

/// Instruction-side bank selection.
enum class ImPolicy : std::uint8_t {
    Dedicated,   ///< mc-ref: per-core IM bank, no I-Xbar
    Interleaved, ///< ulpmc-int: LSB bank select
    Banked       ///< ulpmc-bank: MSB bank select (enables gating)
};

/// Maps a program counter to a physical IM location.
class ImMap {
public:
    ImMap(ImPolicy policy, unsigned banks = kImBanks,
          std::size_t words_per_bank = kImWordsPerBank);

    /// Translates a PC for core `pid`. std::nullopt when the PC exceeds
    /// the instruction space reachable under the policy.
    std::optional<BankedAddr> translate(PAddr pc, CoreId pid) const;

    /// Number of banks a program of `text_words` instructions occupies
    /// under this policy (the complement may be power gated).
    unsigned banks_used(std::size_t text_words) const;

    ImPolicy policy() const { return policy_; }

private:
    ImPolicy policy_;
    unsigned banks_;
    std::size_t words_per_bank_;
    std::uint32_t limit_; ///< banks_ * words_per_bank_
    // Shift forms of the translate() divisions (power-of-two geometries).
    int bank_shift_ = -1;
    int word_shift_ = -1;
};

} // namespace ulpmc::mmu
