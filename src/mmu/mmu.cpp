#include "mmu/mmu.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"

namespace ulpmc::mmu {

DataMmu::DataMmu(DmLayout layout, CoreId pid, unsigned banks, std::size_t words_per_bank)
    : layout_(layout), pid_(pid), banks_(banks), words_per_bank_(words_per_bank) {
    ULPMC_EXPECTS(pid < kNumCores);
    ULPMC_EXPECTS(banks >= 2 * kNumCores); // at least two private banks per core
    ULPMC_EXPECTS(banks % kNumCores == 0);
    // Each core owns banks [B*p, B*(p+1)) with B = banks/cores (the paper's
    // geometry: two). Its private section is split evenly among them and
    // placed at the TOP of each bank, below the interleaved shared section
    // growing from offset 0.
    banks_per_core_ = banks / kNumCores;
    priv_per_bank_ =
        (layout.private_words_per_core + banks_per_core_ - 1) / banks_per_core_;
    const std::size_t shared_per_bank = (layout.shared_words + banks - 1) / banks;
    ULPMC_EXPECTS(shared_per_bank + priv_per_bank_ <= words_per_bank);
    if (std::has_single_bit(banks_)) bank_shift_ = std::countr_zero(banks_);
    if (priv_per_bank_ > 0 && std::has_single_bit(priv_per_bank_))
        priv_shift_ = std::countr_zero(priv_per_bank_);
}

std::optional<BankedAddr> DataMmu::translate(Addr vaddr) const {
    if (vaddr < layout_.shared_words) {
        // Shared section: word-interleaved so linear walks rotate through
        // the banks ("shared data is interleaved across the memory banks
        // to minimize conflicts" — §III-D).
        if (bank_shift_ >= 0)
            return BankedAddr{static_cast<BankId>(vaddr & (banks_ - 1)),
                              static_cast<std::uint32_t>(vaddr) >> bank_shift_};
        return BankedAddr{static_cast<BankId>(vaddr % banks_),
                          static_cast<std::uint32_t>(vaddr / banks_)};
    }
    const std::uint32_t v = static_cast<std::uint32_t>(vaddr) - layout_.shared_words;
    if (v >= layout_.private_words_per_core) return std::nullopt;
    // Private section: PID-based translation into the core's own banks.
    const std::uint32_t per_bank = static_cast<std::uint32_t>(priv_per_bank_);
    const std::uint32_t in_bank = priv_shift_ >= 0 ? v >> priv_shift_ : v / per_bank;
    const std::uint32_t within = priv_shift_ >= 0 ? v & (per_bank - 1) : v % per_bank;
    const BankId bank = static_cast<BankId>(banks_per_core_ * pid_ + in_bank);
    const std::uint32_t offset = static_cast<std::uint32_t>(words_per_bank_) - per_bank + within;
    return BankedAddr{bank, offset};
}

ImMap::ImMap(ImPolicy policy, unsigned banks, std::size_t words_per_bank)
    : policy_(policy), banks_(banks), words_per_bank_(words_per_bank),
      limit_(static_cast<std::uint32_t>(banks * words_per_bank)) {
    ULPMC_EXPECTS(banks > 0);
    ULPMC_EXPECTS(words_per_bank > 0);
    if (std::has_single_bit(banks_)) bank_shift_ = std::countr_zero(banks_);
    if (std::has_single_bit(words_per_bank_))
        word_shift_ = std::countr_zero(words_per_bank_);
}

std::optional<BankedAddr> ImMap::translate(PAddr pc, CoreId pid) const {
    switch (policy_) {
    case ImPolicy::Dedicated:
        // mc-ref: the program is replicated into every core's own bank.
        if (pc >= words_per_bank_) return std::nullopt;
        return BankedAddr{static_cast<BankId>(pid), pc};
    case ImPolicy::Interleaved:
        if (pc >= limit_) return std::nullopt;
        if (bank_shift_ >= 0)
            return BankedAddr{static_cast<BankId>(pc & (banks_ - 1)), pc >> bank_shift_};
        return BankedAddr{static_cast<BankId>(pc % banks_),
                          static_cast<std::uint32_t>(pc / banks_)};
    case ImPolicy::Banked:
        if (pc >= limit_) return std::nullopt;
        if (word_shift_ >= 0)
            return BankedAddr{static_cast<BankId>(pc >> word_shift_),
                              pc & (static_cast<std::uint32_t>(words_per_bank_) - 1)};
        return BankedAddr{static_cast<BankId>(pc / words_per_bank_),
                          static_cast<std::uint32_t>(pc % words_per_bank_)};
    }
    ULPMC_ASSERT(false);
}

unsigned ImMap::banks_used(std::size_t text_words) const {
    if (text_words == 0) return 0;
    switch (policy_) {
    case ImPolicy::Dedicated:
        return banks_; // one copy per core: every bank holds the program
    case ImPolicy::Interleaved:
        // Instructions are spread across all banks from word 0 on.
        return static_cast<unsigned>(std::min<std::size_t>(banks_, text_words));
    case ImPolicy::Banked:
        return static_cast<unsigned>((text_words + words_per_bank_ - 1) / words_per_bank_);
    }
    ULPMC_ASSERT(false);
}

} // namespace ulpmc::mmu
