// One physical SRAM bank of the multi-banked memory hierarchy.
//
// Banks are the unit of arbitration (one access per cycle each), of
// energy accounting (every granted access is counted), and of power
// gating (the paper's ulpmc-bank organization gates unused IM banks to
// cut leakage — §III-C). A bank stores generic 32-bit cells so the same
// class backs 16-bit data banks and 24-bit instruction banks.
//
// Resilience extension (DESIGN.md §9): a bank can carry a SEC-DED
// (single-error-correct, double-error-detect) Hamming code over each
// cell. Check bits are computed on every write/poke; every counted read
// recomputes the syndrome, silently corrects single-bit upsets in place
// (write-back scrub) and flags double-bit upsets as uncorrectable. Fault
// campaigns flip stored bits through corrupt(), which — unlike poke() —
// does NOT re-encode the check bits, exactly like a particle strike.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace ulpmc::mem {

/// Per-bank access statistics (inputs to the energy model).
struct BankStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t ecc_corrected = 0;     ///< single-bit upsets fixed on read
    std::uint64_t ecc_uncorrectable = 0; ///< double-bit upsets flagged on read
    std::uint64_t faults_injected = 0;   ///< corrupt() calls

    std::uint64_t accesses() const { return reads + writes; }
};

/// SEC-DED code over one <=26-bit cell: 5 Hamming check bits + 1 overall
/// parity bit. Exposed for tests and for the predecode coherence path.
namespace ecc {
/// Check bits for `data` (the low `data_bits` bits are protected).
std::uint8_t encode(std::uint32_t data, unsigned data_bits);

/// Outcome of one syndrome decode.
struct Decode {
    std::uint32_t corrected;  ///< data with a single-bit error fixed
    bool had_error = false;   ///< any mismatch between data and check bits
    bool uncorrectable = false; ///< >=2 bits flipped: detection only
};
Decode check(std::uint32_t data, std::uint8_t stored_check, unsigned data_bits);
} // namespace ecc

/// Saved state of one bank (Cluster snapshots, DESIGN.md §10): contents,
/// check bits, statistics and status flags. Opaque to everything but
/// MemoryBank; reused buffers keep their capacity across save() calls so a
/// snapshot ladder allocates only on first use.
struct BankSnapshot {
    std::vector<std::uint32_t> cells;
    std::vector<std::uint8_t> check;
    BankStats stats;
    bool gated = false;
    bool uncorrectable_pending = false;
};

/// A single SRAM bank.
class MemoryBank {
public:
    /// An unconfigured bank (zero cells); reset() before use. Exists so
    /// pooled clusters can resize their bank arrays without constructing
    /// throwaway storage.
    MemoryBank() = default;

    /// Creates a bank of `size` cells of `cell_bits` each (bookkeeping for
    /// area/energy; storage is uint32 regardless).
    MemoryBank(std::size_t size, unsigned cell_bits);

    /// Reconfigures the bank in place to the freshly-constructed state of
    /// MemoryBank(size, cell_bits) with ECC set to `ecc`: cells zeroed,
    /// statistics cleared, gating off. Reuses the existing buffers, so a
    /// same-geometry reset performs no heap allocation.
    void reset(std::size_t size, unsigned cell_bits, bool ecc);

    /// Copies the bank's full mutable state into `out` / back. The
    /// configuration (size, cell bits, ECC) must match between save and
    /// restore; restore() contract-checks it.
    void save(BankSnapshot& out) const;
    void restore(const BankSnapshot& s);

    std::size_t size() const { return cells_.size(); }
    unsigned cell_bits() const { return cell_bits_; }

    /// Reads one cell. Precondition: offset in range, bank powered. With
    /// ECC enabled the returned value is syndrome-checked: a single-bit
    /// upset is corrected (and scrubbed back into the array), a double-bit
    /// upset raises the sticky uncorrectable flag (take_uncorrectable()).
    std::uint32_t read(std::size_t offset);

    /// Writes one cell. Precondition: offset in range, bank powered.
    void write(std::size_t offset, std::uint32_t value);

    /// Non-counting accessors for loaders and tests. With ECC enabled,
    /// peek() returns the corrected view of a single-bit-upset cell (no
    /// scrub, no counting) so verification reads what a fetch would.
    std::uint32_t peek(std::size_t offset) const;
    void poke(std::size_t offset, std::uint32_t value);

    /// Whole-array view for bulk consumers (the pre-decode pass); does not
    /// count as an access. Raw cells: no ECC correction applied.
    std::span<const std::uint32_t> cells() const { return cells_; }

    /// Raw stored state of one cell: bits as deposited (no ECC correction)
    /// plus the stored check byte (0 without ECC). This is the unit of the
    /// deduplicated IM snapshot (DESIGN.md §11): only cells on a cluster's
    /// dirty list are captured/replayed, everything else is provably still
    /// the pristine program image.
    struct CellState {
        std::uint32_t cell = 0;
        std::uint8_t check = 0;
        friend bool operator==(const CellState&, const CellState&) = default;
    };
    CellState cell_state(std::size_t offset) const;
    void set_cell_state(std::size_t offset, CellState s);

    /// True when the bank's future-determining state — cells, check bits,
    /// gating and the sticky uncorrectable flag, but NOT statistics —
    /// matches the snapshot. The batched tier's lane-rejoin comparator.
    bool state_equals(const BankSnapshot& s) const;

    /// Statistics restore for deduplicated snapshots (full restores go
    /// through restore()).
    void set_stats(const BankStats& s) { stats_ = s; }

    bool uncorrectable_pending() const { return uncorrectable_pending_; }
    void set_uncorrectable_pending(bool u) { uncorrectable_pending_ = u; }

    /// SEC-DED protection. Enabling (re)encodes check bits for the whole
    /// array; disabling keeps the data but stops checking.
    void set_ecc(bool enabled);
    bool ecc_enabled() const { return ecc_; }

    /// Soft-error injection: XORs `flip_mask` into the stored cell without
    /// touching the check bits (a strike flips cells, not the code).
    /// Counted in stats().faults_injected.
    void corrupt(std::size_t offset, std::uint32_t flip_mask);

    /// Outcome of one idle-cycle scrub step (DESIGN.md §9).
    struct ScrubResult {
        bool corrected = false;     ///< a latent single-bit upset was repaired
        bool uncorrectable = false; ///< the word is already past SEC-DED's reach
    };

    /// Idle-cycle scrub: syndrome-checks the cell at `offset` and repairs
    /// a single-bit upset in place. Unlike read() it does NOT touch the
    /// demand-access statistics or the sticky uncorrectable flag — a scrub
    /// engine walking the array is background maintenance, not a consuming
    /// access (the cluster counts scrub reads separately and prices them
    /// in power::cal). No-op without ECC (nothing to check against).
    ScrubResult scrub_step(std::size_t offset);

    /// Latent-upset population: cells whose stored bits disagree with
    /// their check bits right now (upsets deposited but not yet read or
    /// scrubbed). The drain metric for the IM scrub walker. Non-counting;
    /// 0 without ECC.
    std::size_t latent_upsets() const;

    /// Returns and clears the uncorrectable-error flag raised by the most
    /// recent read()s. The caller (the cluster) turns it into a trap.
    bool take_uncorrectable() {
        const bool u = uncorrectable_pending_;
        uncorrectable_pending_ = false;
        return u;
    }

    /// Power gating (retention is NOT modeled: gating wipes contents, so
    /// the simulator faults on any access to a gated bank — matching the
    /// hardware reality that only *unused* banks may be gated).
    void set_power_gated(bool gated);
    bool power_gated() const { return gated_; }

    const BankStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

private:
    std::vector<std::uint32_t> cells_;
    std::vector<std::uint8_t> check_; ///< SEC-DED check bits, sized when ECC on
    unsigned cell_bits_ = 0;
    bool gated_ = false;
    bool ecc_ = false;
    bool uncorrectable_pending_ = false;
    BankStats stats_;
};

} // namespace ulpmc::mem
