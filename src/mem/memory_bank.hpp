// One physical SRAM bank of the multi-banked memory hierarchy.
//
// Banks are the unit of arbitration (one access per cycle each), of
// energy accounting (every granted access is counted), and of power
// gating (the paper's ulpmc-bank organization gates unused IM banks to
// cut leakage — §III-C). A bank stores generic 32-bit cells so the same
// class backs 16-bit data banks and 24-bit instruction banks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace ulpmc::mem {

/// Per-bank access statistics (inputs to the energy model).
struct BankStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    std::uint64_t accesses() const { return reads + writes; }
};

/// A single SRAM bank.
class MemoryBank {
public:
    /// Creates a bank of `size` cells of `cell_bits` each (bookkeeping for
    /// area/energy; storage is uint32 regardless).
    MemoryBank(std::size_t size, unsigned cell_bits);

    std::size_t size() const { return cells_.size(); }
    unsigned cell_bits() const { return cell_bits_; }

    /// Reads one cell. Precondition: offset in range, bank powered.
    std::uint32_t read(std::size_t offset);

    /// Writes one cell. Precondition: offset in range, bank powered.
    void write(std::size_t offset, std::uint32_t value);

    /// Non-counting accessors for loaders and tests.
    std::uint32_t peek(std::size_t offset) const;
    void poke(std::size_t offset, std::uint32_t value);

    /// Whole-array view for bulk consumers (the pre-decode pass); does not
    /// count as an access.
    std::span<const std::uint32_t> cells() const { return cells_; }

    /// Power gating (retention is NOT modeled: gating wipes contents, so
    /// the simulator faults on any access to a gated bank — matching the
    /// hardware reality that only *unused* banks may be gated).
    void set_power_gated(bool gated);
    bool power_gated() const { return gated_; }

    const BankStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

private:
    std::vector<std::uint32_t> cells_;
    unsigned cell_bits_;
    bool gated_ = false;
    BankStats stats_;
};

} // namespace ulpmc::mem
