#include "mem/memory_bank.hpp"

#include <array>
#include <bit>

#include "common/assert.hpp"

namespace ulpmc::mem {

namespace ecc {

namespace {

/// Widest cell the (31,26) SEC-DED code protects. Both bank flavors fit:
/// 16-bit data cells and 24-bit instruction cells.
constexpr unsigned kMaxDataBits = 26;

/// Codeword position (1-based, Hamming numbering) of data bit k: data
/// bits occupy the non-power-of-two positions in order.
constexpr std::array<std::uint8_t, kMaxDataBits> make_positions() {
    std::array<std::uint8_t, kMaxDataBits> pos{};
    unsigned p = 1;
    unsigned k = 0;
    while (k < kMaxDataBits) {
        if (!std::has_single_bit(p)) pos[k++] = static_cast<std::uint8_t>(p);
        ++p;
    }
    return pos;
}
constexpr auto kDataPos = make_positions();

bool parity32(std::uint32_t v) { return std::popcount(v) & 1; }

} // namespace

std::uint8_t encode(std::uint32_t data, unsigned data_bits) {
    ULPMC_EXPECTS(data_bits <= kMaxDataBits);
    std::uint32_t syn = 0;
    for (unsigned k = 0; k < data_bits; ++k)
        if ((data >> k) & 1) syn ^= kDataPos[k];
    // Overall parity makes the whole codeword (data + check + parity) even.
    const std::uint32_t dmask = data_bits < 32 ? (1u << data_bits) - 1u : 0xFFFFFFFFu;
    const bool p = parity32(data & dmask) ^ parity32(syn & 0x1Fu);
    return static_cast<std::uint8_t>((syn & 0x1Fu) | (p ? 0x20u : 0u));
}

Decode check(std::uint32_t data, std::uint8_t stored_check, unsigned data_bits) {
    const std::uint8_t expect = encode(data, data_bits);
    const std::uint8_t diff = stored_check ^ expect;
    const std::uint32_t syn = diff & 0x1Fu;
    // Overall parity of the received codeword: even for the expected word
    // by construction, so it reduces to the parity of the check-bit diff.
    const bool parity_odd = parity32(diff);

    Decode d{.corrected = data, .had_error = false, .uncorrectable = false};
    if (diff == 0) return d;
    d.had_error = true;
    if (!parity_odd) {
        // Even number of flipped bits (>= 2): detection only.
        d.uncorrectable = true;
        return d;
    }
    // Odd flip count: assume one. syn == 0 means the parity bit itself
    // flipped; a power-of-two syndrome points at a check bit — data is
    // intact either way. Otherwise the syndrome is the flipped codeword
    // position; map it back to the data bit.
    if (syn != 0 && !std::has_single_bit(syn)) {
        bool found = false;
        for (unsigned k = 0; k < data_bits; ++k) {
            if (kDataPos[k] == syn) {
                d.corrected = data ^ (1u << k);
                found = true;
                break;
            }
        }
        // A syndrome pointing beyond the used data positions cannot come
        // from a single flip: flag it rather than miscorrect.
        if (!found) d.uncorrectable = true;
    }
    return d;
}

} // namespace ecc

MemoryBank::MemoryBank(std::size_t size, unsigned cell_bits)
    : cells_(size, 0), cell_bits_(cell_bits) {
    ULPMC_EXPECTS(size > 0);
    ULPMC_EXPECTS(cell_bits > 0 && cell_bits <= 32);
}

void MemoryBank::reset(std::size_t size, unsigned cell_bits, bool ecc) {
    ULPMC_EXPECTS(size > 0);
    ULPMC_EXPECTS(cell_bits > 0 && cell_bits <= 32);
    cells_.assign(size, 0);
    cell_bits_ = cell_bits;
    gated_ = false;
    uncorrectable_pending_ = false;
    stats_ = {};
    ecc_ = ecc;
    if (ecc) {
        ULPMC_EXPECTS(cell_bits <= 26); // the (31,26) code's capacity
        check_.assign(size, ecc::encode(0, cell_bits));
    } else {
        check_.clear(); // capacity kept for the next ECC-enabled reset
    }
}

void MemoryBank::save(BankSnapshot& out) const {
    out.cells = cells_;
    out.check = check_;
    out.stats = stats_;
    out.gated = gated_;
    out.uncorrectable_pending = uncorrectable_pending_;
}

void MemoryBank::restore(const BankSnapshot& s) {
    ULPMC_EXPECTS(s.cells.size() == cells_.size());
    ULPMC_EXPECTS(s.check.size() == check_.size());
    cells_ = s.cells;
    check_ = s.check;
    stats_ = s.stats;
    gated_ = s.gated;
    uncorrectable_pending_ = s.uncorrectable_pending;
}

MemoryBank::CellState MemoryBank::cell_state(std::size_t offset) const {
    ULPMC_EXPECTS(offset < cells_.size());
    return {cells_[offset], ecc_ ? check_[offset] : std::uint8_t{0}};
}

void MemoryBank::set_cell_state(std::size_t offset, CellState s) {
    ULPMC_EXPECTS(offset < cells_.size());
    ULPMC_EXPECTS(!gated_);
    cells_[offset] = s.cell;
    if (ecc_) check_[offset] = s.check;
}

bool MemoryBank::state_equals(const BankSnapshot& s) const {
    return cells_ == s.cells && check_ == s.check && gated_ == s.gated &&
           uncorrectable_pending_ == s.uncorrectable_pending;
}

std::uint32_t MemoryBank::read(std::size_t offset) {
    ULPMC_EXPECTS(offset < cells_.size());
    ULPMC_EXPECTS(!gated_);
    ++stats_.reads;
    if (!ecc_) return cells_[offset];
    const ecc::Decode d = ecc::check(cells_[offset], check_[offset], cell_bits_);
    if (d.uncorrectable) {
        ++stats_.ecc_uncorrectable;
        uncorrectable_pending_ = true;
        return cells_[offset];
    }
    if (d.had_error) {
        ++stats_.ecc_corrected;
        // Write-back scrub: the upset is gone after the first read.
        cells_[offset] = d.corrected;
        check_[offset] = ecc::encode(d.corrected, cell_bits_);
    }
    return d.corrected;
}

void MemoryBank::write(std::size_t offset, std::uint32_t value) {
    ULPMC_EXPECTS(offset < cells_.size());
    ULPMC_EXPECTS(!gated_);
    ++stats_.writes;
    cells_[offset] = value;
    if (ecc_) check_[offset] = ecc::encode(value, cell_bits_);
}

std::uint32_t MemoryBank::peek(std::size_t offset) const {
    ULPMC_EXPECTS(offset < cells_.size());
    if (!ecc_) return cells_[offset];
    const ecc::Decode d = ecc::check(cells_[offset], check_[offset], cell_bits_);
    return d.uncorrectable ? cells_[offset] : d.corrected;
}

void MemoryBank::poke(std::size_t offset, std::uint32_t value) {
    ULPMC_EXPECTS(offset < cells_.size());
    ULPMC_EXPECTS(!gated_);
    cells_[offset] = value;
    if (ecc_) check_[offset] = ecc::encode(value, cell_bits_);
}

void MemoryBank::set_ecc(bool enabled) {
    if (enabled == ecc_) return;
    if (enabled) {
        ULPMC_EXPECTS(cell_bits_ <= 26); // the (31,26) code's capacity
        check_.resize(cells_.size());
        for (std::size_t i = 0; i < cells_.size(); ++i)
            check_[i] = ecc::encode(cells_[i], cell_bits_);
    } else {
        check_.clear();
        check_.shrink_to_fit();
    }
    ecc_ = enabled;
}

void MemoryBank::corrupt(std::size_t offset, std::uint32_t flip_mask) {
    ULPMC_EXPECTS(offset < cells_.size());
    ULPMC_EXPECTS(!gated_);
    const std::uint32_t mask = cell_bits_ < 32 ? (1u << cell_bits_) - 1u : 0xFFFFFFFFu;
    cells_[offset] ^= flip_mask & mask;
    ++stats_.faults_injected;
}

MemoryBank::ScrubResult MemoryBank::scrub_step(std::size_t offset) {
    ULPMC_EXPECTS(offset < cells_.size());
    ULPMC_EXPECTS(!gated_);
    if (!ecc_) return {};
    const ecc::Decode d = ecc::check(cells_[offset], check_[offset], cell_bits_);
    if (d.uncorrectable) return {.corrected = false, .uncorrectable = true};
    if (d.had_error) {
        cells_[offset] = d.corrected;
        check_[offset] = ecc::encode(d.corrected, cell_bits_);
        return {.corrected = true, .uncorrectable = false};
    }
    return {};
}

std::size_t MemoryBank::latent_upsets() const {
    if (!ecc_) return 0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < cells_.size(); ++i)
        n += ecc::check(cells_[i], check_[i], cell_bits_).had_error;
    return n;
}

void MemoryBank::set_power_gated(bool gated) {
    if (gated && !gated_) {
        // Gating drops state: make any stale-data bug loud, not silent.
        for (auto& c : cells_) c = 0xDEADBEEFu;
        if (ecc_)
            for (std::size_t i = 0; i < cells_.size(); ++i)
                check_[i] = ecc::encode(cells_[i], cell_bits_);
    }
    gated_ = gated;
}

} // namespace ulpmc::mem
