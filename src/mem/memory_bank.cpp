#include "mem/memory_bank.hpp"

#include "common/assert.hpp"

namespace ulpmc::mem {

MemoryBank::MemoryBank(std::size_t size, unsigned cell_bits)
    : cells_(size, 0), cell_bits_(cell_bits) {
    ULPMC_EXPECTS(size > 0);
    ULPMC_EXPECTS(cell_bits > 0 && cell_bits <= 32);
}

std::uint32_t MemoryBank::read(std::size_t offset) {
    ULPMC_EXPECTS(offset < cells_.size());
    ULPMC_EXPECTS(!gated_);
    ++stats_.reads;
    return cells_[offset];
}

void MemoryBank::write(std::size_t offset, std::uint32_t value) {
    ULPMC_EXPECTS(offset < cells_.size());
    ULPMC_EXPECTS(!gated_);
    ++stats_.writes;
    cells_[offset] = value;
}

std::uint32_t MemoryBank::peek(std::size_t offset) const {
    ULPMC_EXPECTS(offset < cells_.size());
    return cells_[offset];
}

void MemoryBank::poke(std::size_t offset, std::uint32_t value) {
    ULPMC_EXPECTS(offset < cells_.size());
    ULPMC_EXPECTS(!gated_);
    cells_[offset] = value;
}

void MemoryBank::set_power_gated(bool gated) {
    if (gated && !gated_) {
        // Gating drops state: make any stale-data bug loud, not silent.
        for (auto& c : cells_) c = 0xDEADBEEFu;
    }
    gated_ = gated;
}

} // namespace ulpmc::mem
