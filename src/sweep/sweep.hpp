// Parallel design-space sweep runner.
//
// The paper's methodology is a design-space exploration: the same
// application is simulated across architecture variants (IM policy, bank
// counts, core counts, voltage/frequency operating points) and the
// resulting cycle/access statistics feed the power model. Every point is
// an independent simulation, so the sweep is embarrassingly parallel —
// this runner fans the points out over a persistent thread pool, one
// Cluster instance per point, and returns results in INPUT ORDER
// regardless of which thread finished first, so sweep output (tables,
// figures) is deterministic.
//
// The pool is general-purpose: run() covers the common program-vs-configs
// sweep, map()/for_each_index() cover callers that build their own per-
// point work (e.g. whole EcgBenchmark runs, power-model evaluation).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "cluster/stats.hpp"
#include "common/types.hpp"
#include "core/state.hpp"
#include "isa/program.hpp"

namespace ulpmc::sweep {

/// One configuration point of a design-space sweep.
struct SweepPoint {
    std::string label;          ///< identifies the point in result tables
    cluster::ClusterConfig cfg; ///< full architecture configuration
    Cycle max_cycles = 50'000'000;
};

/// Everything a sweep consumer needs from one simulated point.
struct SweepOutcome {
    std::string label;
    cluster::ClusterConfig cfg;
    cluster::ClusterStats stats;
    std::vector<core::CoreState> final_states; ///< one per core
    bool all_halted = false; ///< false: hit max_cycles or a core trapped
    Cycle cycles = 0;
};

/// A persistent pool of worker threads executing index-parallel batches.
/// The calling thread participates in every batch, so a runner built with
/// `threads == 1` degenerates to plain sequential execution (no pool
/// threads at all) — useful as the deterministic reference in tests.
class SweepRunner {
public:
    /// `threads == 0` uses the hardware concurrency.
    explicit SweepRunner(unsigned threads = 0);
    ~SweepRunner();

    SweepRunner(const SweepRunner&) = delete;
    SweepRunner& operator=(const SweepRunner&) = delete;

    /// Total workers per batch, the caller included.
    unsigned threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

    /// Invokes `fn(i)` for every i in [0, n), distributed over the pool.
    /// Blocks until all calls returned. The first exception thrown by any
    /// call is rethrown here (the batch still drains fully). Not
    /// reentrant: `fn` must not call back into the same runner.
    void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Parallel transform preserving input order: out[i] = fn(items[i]).
    template <typename T, typename Fn>
    auto map(std::span<const T> items, Fn&& fn) {
        using R = std::invoke_result_t<Fn&, const T&>;
        std::vector<R> out(items.size());
        for_each_index(items.size(),
                       [&](std::size_t i) { out[i] = fn(items[i]); });
        return out;
    }

    /// Simulates `prog` under every configuration point. Results are in
    /// the same order as `points`.
    std::vector<SweepOutcome> run(const isa::Program& prog,
                                  std::span<const SweepPoint> points);

private:
    /// One in-flight batch; lives on for_each_index()'s stack. `next` is
    /// the lock-free work-stealing cursor; the rest is guarded by m_.
    struct Batch {
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t count = 0;
        std::atomic<std::size_t> next{0};
        std::size_t done = 0;      ///< indices fully executed
        unsigned attached = 0;     ///< threads currently draining
        std::exception_ptr error;  ///< first failure, rethrown by caller
    };

    void worker_loop();
    void drain(Batch& b);

    std::vector<std::thread> workers_;
    std::mutex m_;
    std::condition_variable work_cv_; ///< signals a new batch (or stop)
    std::condition_variable done_cv_; ///< signals batch fully drained
    Batch* current_ = nullptr;
    std::uint64_t batch_id_ = 0;
    bool stop_ = false;
};

} // namespace ulpmc::sweep
