#include "sweep/sweep.hpp"

#include "cluster/pool.hpp"
#include "common/assert.hpp"

namespace ulpmc::sweep {

SweepRunner::SweepRunner(unsigned threads) {
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    // The caller participates in every batch, so spawn one fewer.
    workers_.reserve(threads - 1);
    for (unsigned t = 0; t + 1 < threads; ++t)
        workers_.emplace_back([this] { worker_loop(); });
}

SweepRunner::~SweepRunner() {
    {
        std::lock_guard lk(m_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void SweepRunner::worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
        Batch* b = nullptr;
        {
            std::unique_lock lk(m_);
            work_cv_.wait(lk, [&] { return stop_ || (current_ && batch_id_ != seen); });
            if (stop_) return;
            seen = batch_id_;
            b = current_;
            ++b->attached;
        }
        drain(*b);
    }
}

void SweepRunner::drain(Batch& b) {
    for (;;) {
        const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= b.count) break;
        std::exception_ptr err;
        try {
            (*b.fn)(i);
        } catch (...) {
            err = std::current_exception();
        }
        std::lock_guard lk(m_);
        if (err && !b.error) b.error = err;
        ++b.done;
    }
    std::lock_guard lk(m_);
    ULPMC_ASSERT(b.attached > 0);
    --b.attached;
    if (b.done == b.count && b.attached == 0) done_cv_.notify_all();
}

void SweepRunner::for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    Batch b;
    b.fn = &fn;
    b.count = n;
    {
        std::lock_guard lk(m_);
        ULPMC_EXPECTS(current_ == nullptr); // not reentrant
        current_ = &b;
        ++batch_id_;
        ++b.attached; // the caller drains too
    }
    work_cv_.notify_all();
    drain(b);
    {
        // Wait for stragglers: a worker may still be inside its last
        // iteration (or between claiming the batch and finding it empty).
        // `attached == 0` guarantees no thread still touches `b`, which
        // lives on this stack frame.
        std::unique_lock lk(m_);
        done_cv_.wait(lk, [&] { return b.done == b.count && b.attached == 0; });
        current_ = nullptr;
    }
    if (b.error) std::rethrow_exception(b.error);
}

std::vector<SweepOutcome> SweepRunner::run(const isa::Program& prog,
                                           std::span<const SweepPoint> points) {
    // Decode once per sweep: every point (on every worker) loads from the
    // same shared image instead of re-deriving decode caches per reset
    // (DESIGN.md §11).
    const auto image = isa::ProgramImage::build(prog);
    std::vector<SweepOutcome> out(points.size());
    // Per-point result storage is laid out up front, so the parallel inner
    // loop below is free of heap allocation (pooled clusters + preallocated
    // outcome slots) once each worker's pooled instance is warm.
    for (std::size_t i = 0; i < points.size(); ++i) {
        out[i].label = points[i].label;
        out[i].cfg = points[i].cfg;
        out[i].final_states.resize(points[i].cfg.cores);
    }
    for_each_index(points.size(), [&](std::size_t i) {
        const SweepPoint& p = points[i];
        cluster::Cluster& cl = cluster::pooled_cluster(p.cfg, image);
        const Cycle cycles = cl.run(p.max_cycles);

        SweepOutcome& o = out[i];
        o.stats = cl.stats();
        o.cycles = cycles;
        bool all = true;
        for (unsigned c = 0; c < p.cfg.cores; ++c) {
            o.final_states[c] = cl.core_state(static_cast<CoreId>(c));
            all = all && cl.core_halted(static_cast<CoreId>(c));
        }
        o.all_halted = all;
    });
    return out;
}

} // namespace ulpmc::sweep
