// Deterministic single-event-upset (SEU) injection for the cluster.
//
// The paper operates the cluster near the threshold voltage — exactly the
// regime where soft-error rates explode — so the reproduction grows a
// dependability axis (DESIGN.md §9): seeded fault campaigns quantify how
// the three memory organizations behave under injected upsets, and what
// SEC-DED protection costs in the calibrated energy model.
//
// Everything here is reproducible bit-for-bit: all randomness flows
// through common/rng (xoshiro128**), and a (seed, stream) pair fully
// determines every drawn fault. The injector itself is stateless apart
// from its RNG; faults are applied through the Cluster's injection hooks,
// which model the physical upset faithfully (stored bits flip, ECC check
// bits do not re-encode).
#pragma once

#include <cstdint>
#include <string>

#include "cluster/ckpt_store.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "xbar/crossbar.hpp"

namespace ulpmc::fault {

/// Where the upset strikes.
enum class FaultKind : std::uint8_t {
    ImBitFlip,  ///< instruction-memory bank cell
    DmBitFlip,  ///< data-memory bank cell
    RegUpset,   ///< architectural register of one core
    IXbarGlitch, ///< I-Xbar arbitration upset (dropped grant / spurious denial)
    DXbarGlitch, ///< D-Xbar arbitration upset
    IXbarStateUpset, ///< I-Xbar arbiter STATE upset (stuck RR pointer / grant-register flip)
    DXbarStateUpset, ///< D-Xbar arbiter state upset
    CkptBitFlip      ///< stored checkpoint payload word (DESIGN.md §9.6)
};

const char* fault_kind_name(FaultKind k);

/// Bitmask helpers for FaultUniverse::kinds.
inline constexpr unsigned fault_bit(FaultKind k) { return 1u << static_cast<unsigned>(k); }
/// The legacy universe. Deliberately EXCLUDES the arbiter-state kinds so
/// that every committed campaign baseline (bench/BENCH_fault_coverage.json)
/// reproduces its draw sequence bit-exactly; opt in via kArbiterFaultKinds.
inline constexpr unsigned kAllFaultKinds =
    fault_bit(FaultKind::ImBitFlip) | fault_bit(FaultKind::DmBitFlip) |
    fault_bit(FaultKind::RegUpset) | fault_bit(FaultKind::IXbarGlitch) |
    fault_bit(FaultKind::DXbarGlitch);
/// Arbiter sequential-state upsets (DESIGN.md §9): starvation via a stuck
/// round-robin pointer, double-grant corruption via a flipped grant
/// register, in either crossbar.
inline constexpr unsigned kArbiterFaultKinds =
    fault_bit(FaultKind::IXbarStateUpset) | fault_bit(FaultKind::DXbarStateUpset);
/// Checkpoint-STORAGE upsets (DESIGN.md §9.6): bits flip inside a stored
/// snapshot record, so the strike surfaces only when a rollback decodes
/// it — the recovery path itself is under test. Opt-in for the same
/// draw-sequence-stability reason as the arbiter kinds.
inline constexpr unsigned kCkptFaultKinds = fault_bit(FaultKind::CkptBitFlip);

/// One fully-resolved injection: kind, strike cycle, target, flipped bits.
struct FaultSpec {
    FaultKind kind = FaultKind::DmBitFlip;
    Cycle cycle = 1;               ///< applied when the simulation reaches it
    PAddr pc = 0;                  ///< ImBitFlip target
    CoreId core = 0;               ///< DmBitFlip address space / RegUpset / glitch master
    Addr vaddr = 0;                ///< DmBitFlip target (virtual, core's view)
    unsigned reg = 0;              ///< RegUpset target
    std::uint32_t flip_mask = 1;   ///< XORed into the target
    unsigned burst = 1;            ///< RegUpset: registers struck (spatial MBU)
    xbar::Glitch::Kind glitch = xbar::Glitch::Kind::DroppedGrant;
    // ---- arbiter-state upsets (XbarStateUpset kinds) ------------------
    xbar::ArbiterUpset::Kind arb_kind = xbar::ArbiterUpset::Kind::GrantFlip;
    unsigned arb_head = 0;         ///< RrStuck frozen priority head
    bool arb_write_port = false;   ///< D-Xbar: strike the core's write port
    // ---- checkpoint-storage upsets (CkptBitFlip) ----------------------
    unsigned ckpt_record = 0;      ///< stored record, newest-first (mod record count)
    std::uint64_t ckpt_word = 0;   ///< 32-bit payload word (mod payload words)

    /// One-line rendering, e.g. "dm-bit-flip core3 @0x12a bit5 cycle 4711".
    std::string describe() const;
};

/// The sampling space one campaign draws from.
struct FaultUniverse {
    std::size_t text_words = 0;  ///< IM strikes land in [0, text_words)
    Addr dm_words = 0;           ///< DM strikes land in [0, dm_words) (virtual)
    unsigned cores = kNumCores;
    Cycle window = 100'000;      ///< strike cycle drawn uniform in [1, window]
    unsigned kinds = kAllFaultKinds; ///< bitmask of fault_bit(FaultKind)
    unsigned flip_bits = 1;      ///< bits flipped per strike (1 = SEU, 2 = MBU)

    // ---- multi-bit / burst models (DESIGN.md §9) ----------------------
    // Scaled-down SRAM cells are small enough that one particle track
    // spans neighbours, so realistic MBUs are SPATIALLY CORRELATED — and
    // correlation is exactly what interleaving-free SEC-DED assumes away:
    // an adjacent-bit burst of odd length has odd overall parity, so the
    // (31,26) decoder "corrects" it into a different wrong codeword.
    /// >1: memory strikes flip `burst_len` ADJACENT bits (replaces the
    /// independent flip_bits draw for ImBitFlip/DmBitFlip).
    unsigned burst_len = 1;
    /// >1: a register strike hits this many consecutive registers of the
    /// same core with the same bit column (one track across the file).
    unsigned reg_burst = 1;

    /// CkptBitFlip: payload-word index drawn uniform in [0, ckpt_words)
    /// (the applier wraps it into the struck record's actual size, which
    /// is not known at draw time). Must be > 0 when the kind is enabled.
    std::uint64_t ckpt_words = 0;
};

/// Derives the per-stream seed of injection `stream` from a campaign seed
/// (one splitmix64 step — stable across platforms and runs).
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

/// Draws and applies faults deterministically.
class FaultInjector {
public:
    explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

    /// Draws one fault uniformly from `u`. Consecutive calls on the same
    /// injector yield a reproducible sequence.
    FaultSpec draw(const FaultUniverse& u);

    /// Applies `f` to the cluster through its injection hooks.
    /// CkptBitFlip does not strike the cluster; route it through the
    /// storage overload below (a no-op here).
    static void apply(cluster::Cluster& cl, const FaultSpec& f);

    /// Applies a CkptBitFlip to a durable checkpoint store: flips
    /// f.flip_mask bits of payload word f.ckpt_word (wrapped into the
    /// record's size) of stored record f.ckpt_record (wrapped into the
    /// record count, newest first). No-op while the store is empty or
    /// for other fault kinds.
    static void apply(cluster::CheckpointStorage& store, const FaultSpec& f);

    /// Runs `cl` until `f.cycle`, applies `f`, then runs to completion
    /// (bounded by `max_cycles`). Returns the final cycle count.
    static Cycle run_with_fault(cluster::Cluster& cl, const FaultSpec& f, Cycle max_cycles);

    Rng& rng() { return rng_; }

private:
    Rng rng_;
};

} // namespace ulpmc::fault
