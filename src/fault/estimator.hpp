// Online upset-rate estimation (DESIGN.md §9).
//
// The checkpoint interval that minimizes expected energy depends on the
// upset rate lambda — but a wearable's lambda is anything but constant
// (altitude, shielding, solar activity). The hardware cannot observe
// upsets directly; what it CAN count are the correction/trap events its
// protection layers emit: ECC corrections, parity traps, TMR votes,
// scrub repairs, watchdog trips, arbiter self-check fixes
// (ClusterStats::upset_events()).
//
// The estimator smooths INTER-ARRIVAL GAPS, not per-window rates. Its
// observation windows are one checkpoint interval long, so at any
// plausible rate most windows hold zero events; an EWMA over raw
// per-window rates collapses geometrically between events and spikes at
// each one, thrashing the controller. Gap smoothing has no such failure
// mode: a window with k > 0 events contributes its mean gap (the silent
// lead-in plus the window, over k) exactly once, and an ongoing silent
// stretch only BOUNDS the reported rate at read time (the true mean gap
// is at least the current silence), never entering the EWMA — feeding
// partial silences would count the same gap twice when the event finally
// lands. Rate drops therefore decay lambda_hat as ~1/t instead of
// stepping it to zero. Deterministic and allocation-free so it can sit
// inside the checkpoint service's hot loop.
//
// Header-only on purpose: cluster::CheckpointRunner consumes it, and
// ulpmc_fault links against ulpmc_cluster (not the reverse), so this
// header must not drag in any fault-library object code.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"

namespace ulpmc::fault {

/// EWMA over observed inter-event gaps. Feed it one observation per
/// window with observe(); read the smoothed rate from lambda_hat().
class UpsetRateEstimator {
public:
    /// `alpha` is the per-observation smoothing weight: higher tracks
    /// rate changes faster, lower rejects noise harder. The first
    /// event-bearing window primes the estimate directly.
    explicit UpsetRateEstimator(double alpha = 0.3) : alpha_(alpha) {}

    /// One observation window: `events` correction/trap events counted
    /// over `elapsed` cycles. Empty zero-length windows are ignored (a
    /// rollback can make two observations coincide).
    void observe(std::uint64_t events, Cycle elapsed) {
        if (events == 0) {
            silence_ += elapsed;
            return;
        }
        update(static_cast<double>(silence_ + elapsed) / static_cast<double>(events));
        silence_ = 0;
    }

    /// Smoothed upset rate in events per cycle (0 until the first event),
    /// bounded above by the reciprocal of the current silent stretch: a
    /// long silence is evidence the rate dropped even before the EWMA
    /// hears about it.
    double lambda_hat() const {
        if (!primed_) return 0.0;
        return 1.0 / std::max(gap_hat_, static_cast<double>(silence_));
    }
    /// Smoothed inter-event gap in cycles (0 until the first event).
    double gap_hat() const { return primed_ ? gap_hat_ : 0.0; }
    bool primed() const { return primed_; }
    /// Cycles accumulated since the last event-bearing window.
    Cycle silence() const { return silence_; }
    /// EWMA updates absorbed so far (= observation windows with events).
    std::uint64_t updates() const { return updates_; }
    double alpha() const { return alpha_; }

    /// Durable-execution state round-trip (DESIGN.md §9.6): reinstates a
    /// previously observed trajectory bit-exactly (alpha comes from the
    /// resuming run's own config, not the snapshot).
    void restore(double gap_hat, Cycle silence, bool primed, std::uint64_t updates) {
        gap_hat_ = gap_hat;
        silence_ = silence;
        primed_ = primed;
        updates_ = updates;
    }

    void reset(double alpha) {
        alpha_ = alpha;
        gap_hat_ = 0.0;
        silence_ = 0;
        primed_ = false;
        updates_ = 0;
    }

private:
    void update(double gap) {
        if (gap <= 0.0) return;
        gap_hat_ = primed_ ? alpha_ * gap + (1.0 - alpha_) * gap_hat_ : gap;
        primed_ = true;
        ++updates_;
    }

    double alpha_;
    double gap_hat_ = 0.0;
    Cycle silence_ = 0;
    bool primed_ = false;
    std::uint64_t updates_ = 0;
};

} // namespace ulpmc::fault
