// Seeded fault-injection campaigns (DESIGN.md §9).
//
// A campaign runs thousands of independent, seeded injections of the ECG
// benchmark, one simulated particle strike each, and classifies every run
// by how the architecture absorbed the upset. The classification follows
// the standard dependability taxonomy:
//
//   Masked      — outputs bit-exact, no protection mechanism fired, no
//                 corrupted state left behind;
//   Latent      — outputs bit-exact but a struck register was never read
//                 or overwritten: the upset is still architecturally live
//                 and would corrupt whatever reads it next. Counting these
//                 as Masked would overstate the architecture's intrinsic
//                 masking, so they get their own bucket;
//   Corrected   — outputs bit-exact, SEC-DED corrected >= 1 single-bit
//                 upset or register TMR out-voted >= 1 read;
//   RolledBack  — streaming monitor re-executed the struck block from its
//                 checkpoint and the retry verified (streaming campaigns);
//   LeadDropped — a persistently-corrupted lead was dropped; the surviving
//                 leads stayed bit-exact (streaming campaigns);
//   Trapped     — a core detected the upset and fail-stopped (ECC
//                 double-bit trap, illegal fetch, watchdog, ...);
//   Hang        — cores still running at the cycle bound (silent livelock);
//   Sdc         — silent data corruption: run completed, outputs wrong.
//
// Reproducibility contract: the per-injection RNG seed is
// mix_seed(cfg.seed, i) with i the GLOBAL injection index, so the i-th
// injection of a campaign is the same fault with the same classification
// on every run, every thread count, every platform — and a campaign
// sharded over N machines (shard k runs the indices congruent to k mod N)
// aggregates to exactly the unsharded result (tools/merge_campaign.py).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "app/benchmark.hpp"
#include "app/streaming.hpp"
#include "cluster/config.hpp"
#include "core/state.hpp"
#include "fault/fault.hpp"
#include "sweep/sweep.hpp"

namespace ulpmc::fault {

enum class Outcome : std::uint8_t {
    Masked, Latent, Corrected, RolledBack, LeadDropped, Trapped, Hang, Sdc
};
inline constexpr unsigned kOutcomeCount = 8;

const char* outcome_name(Outcome o);

struct CampaignConfig {
    std::uint64_t seed = 1;
    unsigned injections = 256;
    bool ecc = false;               ///< SEC-DED on every IM/DM bank
    Cycle watchdog_cycles = 20'000; ///< 0 disables stuck-core detection
    unsigned kinds = kAllFaultKinds;
    unsigned flip_bits = 1;         ///< 1 = SEU; 2 exercises double-bit detection
    unsigned burst_len = 1;         ///< >1: adjacent-bit memory MBU bursts
    unsigned reg_burst = 1;         ///< >1: multi-register spatial upsets
    /// Register-file protection mode of every injected cluster.
    core::RegProtection reg_protection = core::RegProtection::None;
    /// One-shot campaigns: drive every injection through the generalized
    /// CheckpointRunner (interval checkpoints + trap-driven rollback).
    /// Streaming campaigns: recover via run_checkpointed() (one continuous
    /// cluster, block-boundary checkpoints) instead of run_resilient().
    bool checkpoint = false;
    /// Interval between one-shot checkpoints; 0 = clean_cycles / 8.
    Cycle checkpoint_interval = 0;
    /// Idle-cycle IM scrub walker on every injected cluster.
    bool im_scrub = false;
    /// Self-checking crossbar arbiters (suppress grant flips, resync a
    /// stuck round-robin pointer) on every injected cluster.
    bool xbar_self_check = false;
    // ---- run_adaptive_campaign only -----------------------------------
    /// Self-tuning checkpoint interval (DESIGN.md §9) instead of the fixed
    /// checkpoint_interval above (which then only seeds the start).
    bool adaptive_checkpoint = false;
    /// Two-phase strike environment: expected upsets per cycle over the
    /// quiet lead (the first lambda_split of the fault-free schedule) and
    /// the burst tail (the rest) — a mostly-benign wearable that walks
    /// into a high-flux episode.
    double lambda_low = 0.0;
    double lambda_high = 0.0;
    double lambda_split = 0.75;
    /// Hang bound as a multiple of the fault-free run's cycle count.
    double max_cycles_factor = 4.0;
    /// Simulator tier (no effect on outcomes — differential-tested).
    /// SimEngine::Batched additionally turns on campaign-level lockstep
    /// sharing: one-shot injections run as batches of `batch` lanes over a
    /// shared representative (peel on strike, rejoin on convergence), and
    /// streaming injections memoize the fault-free stream. Outcome tables
    /// stay byte-identical to Trace; only wall-clock changes.
    cluster::SimEngine engine = cluster::SimEngine::Trace;
    /// Lanes per batch group under the batched engine (ignored otherwise).
    unsigned batch = 8;
    /// Shard selector: this invocation runs the global injection indices
    /// congruent to shard_index mod shard_count. (1, 0) = everything.
    unsigned shard_count = 1;
    unsigned shard_index = 0;
};

/// One injection, fully described and classified.
struct InjectionRecord {
    FaultSpec fault;
    Outcome outcome = Outcome::Masked;
    core::Trap trap = core::Trap::None; ///< first trap observed when Trapped
    Cycle cycles = 0;
    std::uint64_t ecc_corrected = 0;
    std::uint64_t rollbacks = 0;     ///< checkpoint restores in this run
    std::uint64_t checkpoints = 0;   ///< snapshots taken in this run
    Cycle reexec_cycles = 0;         ///< cycles re-executed after rollbacks
    std::uint64_t strikes = 1;       ///< upsets deposited (adaptive runs: many)
    // ---- batched-engine observability (zero under other engines) ------
    /// Cycles this injection rode on shared/memoized execution instead of
    /// simulating privately (lockstep prefix + rejoined tail, or the
    /// memoized clean stream).
    std::uint64_t batch_lockstep_cycles = 0;
    std::uint64_t batch_lane_peels = 0; ///< divergences from the representative
    /// Per-PeelReason divergence breakdown of this injection's lane.
    std::array<std::uint64_t, cluster::kPeelReasonCount> batch_peel_reasons{};
};

struct CampaignResult {
    cluster::ArchKind arch{};
    CampaignConfig cfg;
    Cycle clean_cycles = 0;   ///< fault-free reference run
    double energy_per_op = 0; ///< clean-run J/op under this protection tier
    std::vector<InjectionRecord> runs;
    std::array<unsigned, kOutcomeCount> counts{};
    std::uint64_t checkpoints = 0;   ///< total snapshots over all injections
    Cycle reexec_cycles = 0;         ///< total re-executed cycles (rollback cost)
    // Adaptive-campaign aggregates (zero elsewhere).
    std::uint64_t strikes = 0;          ///< total upsets deposited
    std::uint64_t interval_updates = 0; ///< controller re-solves that changed the interval
    double overhead_energy = 0;         ///< checkpoint-save + re-execution energy [J]
    // Batched-engine aggregates (zero elsewhere).
    std::uint64_t batch_lockstep_cycles = 0; ///< total shared/memoized cycles
    std::uint64_t batch_lane_peels = 0;      ///< total lane divergences
    std::array<std::uint64_t, cluster::kPeelReasonCount> batch_peel_reasons{};
    // Storage-campaign aggregates (run_storage_campaign only, zero elsewhere).
    std::uint64_t ckpt_stored_bytes = 0;  ///< checkpoint bytes actually persisted
    std::uint64_t ckpt_full_bytes = 0;    ///< full-keyframe-equivalent bytes
    std::uint64_t ckpt_crc_failures = 0;  ///< stored records rejected by CRC
    std::uint64_t ckpt_fallbacks = 0;     ///< restores served by an older keyframe

    unsigned count(Outcome o) const { return counts[static_cast<unsigned>(o)]; }
    /// Fraction of injections that did NOT end in silent data corruption —
    /// the headline detection/recovery coverage number.
    double coverage() const;
};

/// Runs cfg.injections seeded strikes of the single-block ECG benchmark
/// on `arch`, parallelized over `pool`. Without cfg.checkpoint the
/// outcomes are Masked / Latent / Corrected / Trapped / Hang / Sdc; with
/// it, a trap inside one checkpoint interval of the strike rolls back and
/// re-executes (RolledBack). When sharded, only this shard's injections
/// are in `runs`/`counts`.
CampaignResult run_campaign(const app::EcgBenchmark& bench, cluster::ArchKind arch,
                            const CampaignConfig& cfg, sweep::SweepRunner& pool);

/// Streaming variant: every injection strikes one resilient streaming run
/// (block-boundary checkpoint/rollback + drop-one-lead, app/streaming) and
/// is classified by how the monitor recovered. A quarter of the IM/DM
/// strikes are drawn *persistent* (latched upsets re-deposited on every
/// attempt), which is what exercises the lead-drop path.
CampaignResult run_streaming_campaign(const app::StreamingBenchmark& bench,
                                      cluster::ArchKind arch, const CampaignConfig& cfg,
                                      sweep::SweepRunner& pool);

/// Adaptive-vs-fixed checkpoint study (DESIGN.md §9). Every "injection" is
/// one full multi-block streaming run on ONE continuous cluster driven by
/// the CheckpointRunner; seeded strikes arrive at rate cfg.lambda_low over
/// the first cfg.lambda_split of the fault-free schedule and
/// cfg.lambda_high over the rest (exponential inter-arrival times).
/// cfg.adaptive_checkpoint
/// selects the self-tuning controller (starting from
/// cfg.checkpoint_interval; 0 = max_interval), otherwise
/// cfg.checkpoint_interval is the fixed interval under test. Strikes are
/// transient: a rollback re-executes WITHOUT re-depositing them, so the
/// interesting outputs are the policy's overhead — checkpoints taken,
/// cycles re-executed, and their combined energy (overhead_energy) — at
/// equal (ideally zero-SDC) coverage.
CampaignResult run_adaptive_campaign(const app::StreamingBenchmark& bench,
                                     cluster::ArchKind arch, const CampaignConfig& cfg,
                                     sweep::SweepRunner& pool);

/// Checkpoint-STORAGE campaign knobs (DESIGN.md §9.6): the record-store
/// layout under test and whether the stored records themselves are a
/// fault target on top of the execution strikes.
struct StorageCampaignOptions {
    cluster::CkptStorageConfig storage{};
    /// Pair every execution strike with one CkptBitFlip deposited into
    /// the record store at the struck block's boundary checkpoint — the
    /// very record the rollback then tries to consume.
    bool storage_strikes = false;
};

/// Durable-storage variant of the streaming campaign: every injection is
/// one run_checkpointed() stream whose block-boundary snapshots persist
/// through a CheckpointStorage (cfg.checkpoint must be set). Each
/// injection deposits one execution strike inside one block; with
/// opts.storage_strikes it ALSO corrupts a stored record at that block's
/// checkpoint, so the rollback exercises CRC verification and the
/// keyframe fallback chain. Outcomes: a fallback-assisted recovery is
/// RolledBack, an unrecoverable record loss fail-stops as Trapped, and
/// corruption that flows through an unverified restore shows up as
/// LeadDropped / Hang / Sdc — never silently with crc_verify on.
CampaignResult run_storage_campaign(const app::StreamingBenchmark& bench,
                                    cluster::ArchKind arch, const CampaignConfig& cfg,
                                    const StorageCampaignOptions& opts,
                                    sweep::SweepRunner& pool);

} // namespace ulpmc::fault
