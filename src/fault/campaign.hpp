// Seeded fault-injection campaigns (DESIGN.md §9).
//
// A campaign runs thousands of independent, seeded injections of the ECG
// benchmark, one simulated particle strike each, and classifies every run
// by how the architecture absorbed the upset. The classification follows
// the standard dependability taxonomy:
//
//   Masked      — outputs bit-exact, no protection mechanism fired;
//   Corrected   — outputs bit-exact, SEC-DED corrected >= 1 single-bit upset;
//   RolledBack  — streaming monitor re-executed the struck block from its
//                 checkpoint and the retry verified (streaming campaigns);
//   LeadDropped — a persistently-corrupted lead was dropped; the surviving
//                 leads stayed bit-exact (streaming campaigns);
//   Trapped     — a core detected the upset and fail-stopped (ECC
//                 double-bit trap, illegal fetch, watchdog, ...);
//   Hang        — cores still running at the cycle bound (silent livelock);
//   Sdc         — silent data corruption: run completed, outputs wrong.
//
// Reproducibility contract: the per-injection RNG seed is
// mix_seed(cfg.seed, i), so the i-th injection of a campaign is the same
// fault with the same classification on every run, every thread count,
// every platform.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "app/benchmark.hpp"
#include "app/streaming.hpp"
#include "cluster/config.hpp"
#include "core/state.hpp"
#include "fault/fault.hpp"
#include "sweep/sweep.hpp"

namespace ulpmc::fault {

enum class Outcome : std::uint8_t { Masked, Corrected, RolledBack, LeadDropped, Trapped, Hang, Sdc };
inline constexpr unsigned kOutcomeCount = 7;

const char* outcome_name(Outcome o);

struct CampaignConfig {
    std::uint64_t seed = 1;
    unsigned injections = 256;
    bool ecc = false;               ///< SEC-DED on every IM/DM bank
    Cycle watchdog_cycles = 20'000; ///< 0 disables stuck-core detection
    unsigned kinds = kAllFaultKinds;
    unsigned flip_bits = 1;         ///< 1 = SEU; 2 exercises double-bit detection
    /// Hang bound as a multiple of the fault-free run's cycle count.
    double max_cycles_factor = 4.0;
    /// Simulator tier (no effect on outcomes — differential-tested).
    cluster::SimEngine engine = cluster::SimEngine::Trace;
};

/// One injection, fully described and classified.
struct InjectionRecord {
    FaultSpec fault;
    Outcome outcome = Outcome::Masked;
    core::Trap trap = core::Trap::None; ///< first trap observed when Trapped
    Cycle cycles = 0;
    std::uint64_t ecc_corrected = 0;
};

struct CampaignResult {
    cluster::ArchKind arch{};
    CampaignConfig cfg;
    Cycle clean_cycles = 0;   ///< fault-free reference run
    double energy_per_op = 0; ///< clean-run J/op under this ECC setting
    std::vector<InjectionRecord> runs;
    std::array<unsigned, kOutcomeCount> counts{};

    unsigned count(Outcome o) const { return counts[static_cast<unsigned>(o)]; }
    /// Fraction of injections that did NOT end in silent data corruption —
    /// the headline detection/recovery coverage number.
    double coverage() const;
};

/// Runs cfg.injections seeded strikes of the single-block ECG benchmark
/// on `arch`, parallelized over `pool`. Outcomes here are Masked /
/// Corrected / Trapped / Hang / Sdc (no checkpointing in one-shot mode).
CampaignResult run_campaign(const app::EcgBenchmark& bench, cluster::ArchKind arch,
                            const CampaignConfig& cfg, sweep::SweepRunner& pool);

/// Streaming variant: every injection strikes one resilient streaming run
/// (block-boundary checkpoint/rollback + drop-one-lead, app/streaming) and
/// is classified by how the monitor recovered. A quarter of the IM/DM
/// strikes are drawn *persistent* (latched upsets re-deposited on every
/// attempt), which is what exercises the lead-drop path.
CampaignResult run_streaming_campaign(const app::StreamingBenchmark& bench,
                                      cluster::ArchKind arch, const CampaignConfig& cfg,
                                      sweep::SweepRunner& pool);

} // namespace ulpmc::fault
