#include "fault/fault.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace ulpmc::fault {

const char* fault_kind_name(FaultKind k) {
    switch (k) {
    case FaultKind::ImBitFlip: return "im-bit-flip";
    case FaultKind::DmBitFlip: return "dm-bit-flip";
    case FaultKind::RegUpset: return "reg-upset";
    case FaultKind::IXbarGlitch: return "ixbar-glitch";
    case FaultKind::DXbarGlitch: return "dxbar-glitch";
    case FaultKind::IXbarStateUpset: return "ixbar-state-upset";
    case FaultKind::DXbarStateUpset: return "dxbar-state-upset";
    case FaultKind::CkptBitFlip: return "ckpt-bit-flip";
    }
    return "?";
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
    // One splitmix64 step over seed + odd-constant * (stream + 1): distinct
    // streams of the same campaign land in well-separated RNG states.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::string FaultSpec::describe() const {
    std::ostringstream os;
    os << fault_kind_name(kind);
    switch (kind) {
    case FaultKind::ImBitFlip:
        os << " pc=" << pc;
        break;
    case FaultKind::DmBitFlip:
        os << " core" << static_cast<unsigned>(core) << " @" << vaddr;
        break;
    case FaultKind::RegUpset:
        os << " core" << static_cast<unsigned>(core) << " r" << reg;
        if (burst > 1) os << "x" << burst;
        break;
    case FaultKind::IXbarGlitch:
    case FaultKind::DXbarGlitch:
        os << " master" << static_cast<unsigned>(core)
           << (glitch == xbar::Glitch::Kind::DroppedGrant ? " dropped-grant" : " spurious-denial");
        break;
    case FaultKind::IXbarStateUpset:
    case FaultKind::DXbarStateUpset:
        if (arb_kind == xbar::ArbiterUpset::Kind::RrStuck) {
            os << " rr-stuck head=" << arb_head;
        } else {
            os << " grant-flip core" << static_cast<unsigned>(core);
            if (kind == FaultKind::DXbarStateUpset) os << (arb_write_port ? " wport" : " rport");
        }
        break;
    case FaultKind::CkptBitFlip:
        os << " rec" << ckpt_record << " word=" << ckpt_word << " mask=0x" << std::hex
           << flip_mask << std::dec;
        break;
    }
    if (kind == FaultKind::ImBitFlip || kind == FaultKind::DmBitFlip ||
        kind == FaultKind::RegUpset) {
        os << " mask=0x" << std::hex << flip_mask << std::dec;
    }
    os << " cycle=" << cycle;
    return os.str();
}

namespace {

/// `bits` distinct flipped bits inside a `width`-bit word.
std::uint32_t draw_mask(Rng& rng, unsigned width, unsigned bits) {
    std::uint32_t mask = 0;
    unsigned set = 0;
    while (set < bits) {
        const std::uint32_t bit = 1u << rng.below(width);
        if (mask & bit) continue;
        mask |= bit;
        ++set;
    }
    return mask;
}

/// `len` ADJACENT flipped bits inside a `width`-bit word (burst MBU).
/// Kept on a separate RNG path so burst_len == 1 universes reproduce the
/// exact draw sequence of earlier campaigns.
std::uint32_t draw_burst_mask(Rng& rng, unsigned width, unsigned len) {
    if (len >= width) return (width >= 32) ? ~0u : ((1u << width) - 1);
    const unsigned start = rng.below(width - len + 1);
    return ((1u << len) - 1) << start;
}

} // namespace

FaultSpec FaultInjector::draw(const FaultUniverse& u) {
    ULPMC_EXPECTS(u.kinds != 0);
    ULPMC_EXPECTS(u.cores >= 1);
    ULPMC_EXPECTS(u.flip_bits >= 1 && u.flip_bits <= 16);
    ULPMC_EXPECTS(u.burst_len >= 1 && u.burst_len <= 16);
    ULPMC_EXPECTS(u.reg_burst >= 1 && u.reg_burst <= kNumRegisters);

    FaultKind enabled[8];
    unsigned n = 0;
    for (unsigned k = 0; k < 8; ++k) {
        if (u.kinds & (1u << k)) enabled[n++] = static_cast<FaultKind>(k);
    }

    FaultSpec f;
    f.kind = enabled[rng_.below(n)];
    f.cycle = 1 + rng_.below(static_cast<std::uint32_t>(u.window));
    switch (f.kind) {
    case FaultKind::ImBitFlip:
        ULPMC_EXPECTS(u.text_words > 0);
        f.pc = static_cast<PAddr>(rng_.below(static_cast<std::uint32_t>(u.text_words)));
        f.flip_mask = u.burst_len > 1 ? draw_burst_mask(rng_, 24, u.burst_len)
                                      : draw_mask(rng_, 24, u.flip_bits);
        break;
    case FaultKind::DmBitFlip:
        ULPMC_EXPECTS(u.dm_words > 0);
        f.core = static_cast<CoreId>(rng_.below(u.cores));
        f.vaddr = static_cast<Addr>(rng_.below(u.dm_words));
        f.flip_mask = u.burst_len > 1 ? draw_burst_mask(rng_, 16, u.burst_len)
                                      : draw_mask(rng_, 16, u.flip_bits);
        break;
    case FaultKind::RegUpset:
        f.core = static_cast<CoreId>(rng_.below(u.cores));
        f.reg = rng_.below(kNumRegisters);
        f.flip_mask = draw_mask(rng_, 16, u.flip_bits);
        f.burst = u.reg_burst; // same column across adjacent registers: no extra draw
        break;
    case FaultKind::IXbarGlitch:
    case FaultKind::DXbarGlitch:
        f.core = static_cast<CoreId>(rng_.below(u.cores));
        f.glitch = rng_.below(2) == 0 ? xbar::Glitch::Kind::DroppedGrant
                                      : xbar::Glitch::Kind::SpuriousDenial;
        break;
    case FaultKind::IXbarStateUpset:
    case FaultKind::DXbarStateUpset:
        f.arb_kind = rng_.below(2) == 0 ? xbar::ArbiterUpset::Kind::RrStuck
                                        : xbar::ArbiterUpset::Kind::GrantFlip;
        f.core = static_cast<CoreId>(rng_.below(u.cores));
        f.arb_head = rng_.below(u.cores);
        f.arb_write_port = rng_.below(2) != 0;
        break;
    case FaultKind::CkptBitFlip:
        ULPMC_EXPECTS(u.ckpt_words > 0);
        // The store holds at most 3 records (delta + two keyframes); the
        // applier wraps both draws into whatever actually exists when the
        // strike lands.
        f.ckpt_record = rng_.below(3);
        f.ckpt_word = rng_.below(static_cast<std::uint32_t>(u.ckpt_words));
        f.flip_mask = u.burst_len > 1 ? draw_burst_mask(rng_, 32, u.burst_len)
                                      : draw_mask(rng_, 32, u.flip_bits);
        break;
    }
    return f;
}

void FaultInjector::apply(cluster::Cluster& cl, const FaultSpec& f) {
    switch (f.kind) {
    case FaultKind::ImBitFlip:
        cl.inject_im_fault(f.pc, f.flip_mask);
        break;
    case FaultKind::DmBitFlip:
        cl.inject_dm_fault(f.core, f.vaddr, static_cast<Word>(f.flip_mask));
        break;
    case FaultKind::RegUpset:
        for (unsigned r = 0; r < f.burst; ++r) {
            cl.inject_reg_fault(f.core, (f.reg + r) % kNumRegisters,
                                static_cast<Word>(f.flip_mask));
        }
        break;
    case FaultKind::IXbarGlitch:
        cl.inject_xbar_glitch(true, xbar::Glitch{f.glitch, f.core});
        break;
    case FaultKind::DXbarGlitch:
        cl.inject_xbar_glitch(false, xbar::Glitch{f.glitch, f.core});
        break;
    case FaultKind::IXbarStateUpset:
        cl.inject_xbar_state(true, xbar::ArbiterUpset{.kind = f.arb_kind,
                                                      .master = f.core,
                                                      .head = f.arb_head});
        break;
    case FaultKind::DXbarStateUpset:
        // D-Xbar masters are port-numbered: core c owns read port 2c and
        // write port 2c+1 (cluster::Cluster port mapping).
        cl.inject_xbar_state(
            false, xbar::ArbiterUpset{.kind = f.arb_kind,
                                      .master = 2u * f.core + (f.arb_write_port ? 1u : 0u),
                                      .head = f.arb_head});
        break;
    case FaultKind::CkptBitFlip:
        // Strikes storage, not the cluster: see the CheckpointStorage
        // overload. Deliberately silent here so mixed-kind campaigns can
        // route every spec through both appliers.
        break;
    }
}

void FaultInjector::apply(cluster::CheckpointStorage& store, const FaultSpec& f) {
    if (f.kind != FaultKind::CkptBitFlip) return;
    const unsigned records = store.record_count();
    if (records == 0) return;
    store.corrupt(f.ckpt_record % records, f.ckpt_word, f.flip_mask);
}

Cycle FaultInjector::run_with_fault(cluster::Cluster& cl, const FaultSpec& f, Cycle max_cycles) {
    ULPMC_EXPECTS(f.cycle <= max_cycles);
    // If the cluster quiesces before the strike cycle, the particle hits a
    // finished machine: the fault is still deposited (state flips) but no
    // execution consumes it — a masked outcome, as in a real campaign.
    cl.run(f.cycle);
    apply(cl, f);
    return cl.run(max_cycles);
}

} // namespace ulpmc::fault
