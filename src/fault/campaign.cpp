#include "fault/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "cluster/batched.hpp"
#include "cluster/checkpoint.hpp"
#include "cluster/ckpt_store.hpp"
#include "cluster/pool.hpp"
#include "common/assert.hpp"
#include "power/calibration.hpp"
#include "power/power_model.hpp"

namespace ulpmc::fault {

const char* outcome_name(Outcome o) {
    switch (o) {
    case Outcome::Masked: return "masked";
    case Outcome::Latent: return "latent";
    case Outcome::Corrected: return "corrected";
    case Outcome::RolledBack: return "rolled-back";
    case Outcome::LeadDropped: return "lead-dropped";
    case Outcome::Trapped: return "trapped";
    case Outcome::Hang: return "hang";
    case Outcome::Sdc: return "SDC";
    }
    return "?";
}

double CampaignResult::coverage() const {
    if (runs.empty()) return 1.0;
    return 1.0 - static_cast<double>(count(Outcome::Sdc)) / static_cast<double>(runs.size());
}

namespace {

cluster::ClusterConfig resilient_config(const app::EcgBenchmark& bench, cluster::ArchKind arch,
                                        const CampaignConfig& cfg) {
    cluster::ClusterConfig c = cluster::make_config(arch, bench.layout().dm_layout());
    c.barrier_enabled = bench.layout().use_barrier;
    c.ecc_enabled = cfg.ecc;
    c.reg_protection = cfg.reg_protection;
    c.watchdog_cycles = cfg.watchdog_cycles;
    c.engine = cfg.engine;
    c.im_scrub = cfg.im_scrub;
    c.xbar_self_check = cfg.xbar_self_check;
    return c;
}

/// The global injection indices this shard owns, in global order.
std::vector<std::uint64_t> shard_indices(const CampaignConfig& cfg) {
    ULPMC_EXPECTS(cfg.shard_count >= 1 && cfg.shard_index < cfg.shard_count);
    std::vector<std::uint64_t> idx;
    for (std::uint64_t g = cfg.shard_index; g < cfg.injections; g += cfg.shard_count)
        idx.push_back(g);
    return idx;
}

/// Per-thread campaign workspace: one reusable cluster plus a snapshot
/// ladder of the fault-free run. Restoring the highest rung at or below
/// the strike cycle replaces re-simulating the (deterministic) clean
/// prefix of every injection — on average half the run — and the reused
/// buffers make the injection loop allocation-free once warm. Keyed by a
/// campaign nonce so a thread rebuilds its ladder exactly once per
/// campaign.
struct Workspace {
    std::uint64_t key = 0; ///< nonce of the campaign the ladder belongs to
    std::unique_ptr<cluster::Cluster> cl;
    std::unique_ptr<cluster::CheckpointRunner> runner; ///< bound to *cl
    std::vector<cluster::Cluster::Snapshot> ladder;
    std::vector<Cycle> rung_cycle;
    // ---- batched engine ----------------------------------------------
    std::unique_ptr<cluster::BatchedCluster> bc; ///< lanes + clean representative
    cluster::ClusterStats stats_buf;             ///< lane_stats_into scratch
    /// Memoized clean stream of the checkpointed streaming campaign.
    std::uint64_t stream_key = 0;
    app::StreamingBenchmark::CheckpointedStreamMemo stream_memo;
};

Workspace& workspace() {
    thread_local Workspace ws;
    return ws;
}

std::uint64_t next_campaign_nonce() {
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
}

constexpr unsigned kLadderRungs = 12;

/// Mirrors EcgBenchmark::run()'s end-of-run verification (we cannot reuse
/// run() itself because the campaign pauses the simulation mid-flight to
/// deposit the fault).
bool outputs_verified(const cluster::Cluster& cl, const app::EcgBenchmark& bench,
                      unsigned cores) {
    const auto& lay = bench.layout();
    for (unsigned p = 0; p < cores; ++p) {
        const auto pid = static_cast<CoreId>(p);
        if (cl.core_trap(pid) != core::Trap::None || !cl.core_halted(pid)) return false;
        const auto& y = bench.golden_measurements(p);
        for (std::size_t i = 0; i < y.size(); ++i) {
            if (cl.dm_peek(pid, static_cast<Addr>(lay.y_base() + i)) != y[i]) return false;
        }
        const auto& bits = bench.golden_bitstream(p);
        if (cl.dm_peek(pid, lay.out_count()) != bits.words.size()) return false;
        for (std::size_t i = 0; i < bits.words.size(); ++i) {
            if (cl.dm_peek(pid, static_cast<Addr>(lay.out_base() + i)) != bits.words[i])
                return false;
        }
    }
    return true;
}

/// One-shot outcome classification, shared by the Trace and Batched paths
/// so their tables are byte-identical by construction. `view` is the
/// cluster embodying the injection's final state; `st` its (materialized)
/// statistics — the same object for a plain run, base+tail for a rejoined
/// batch lane.
void classify_oneshot(const cluster::Cluster& view, const cluster::ClusterStats& st,
                      const app::EcgBenchmark& bench, unsigned cores, InjectionRecord& rec) {
    rec.ecc_corrected = st.ecc_corrected();
    bool any_running = false;
    for (unsigned p = 0; p < cores; ++p) {
        const auto pid = static_cast<CoreId>(p);
        const core::Trap t = view.core_trap(pid);
        if (t != core::Trap::None && rec.trap == core::Trap::None) rec.trap = t;
        if (t == core::Trap::None && !view.core_halted(pid)) any_running = true;
    }

    const std::uint64_t selfchecks = st.ixbar.selfcheck_fixes + st.ixbar.selfcheck_resyncs +
                                     st.dxbar.selfcheck_fixes + st.dxbar.selfcheck_resyncs;
    if (any_running) {
        rec.outcome = Outcome::Hang;
    } else if (rec.trap != core::Trap::None) {
        rec.outcome = Outcome::Trapped;
    } else if (outputs_verified(view, bench, cores)) {
        if (rec.rollbacks > 0) {
            rec.outcome = Outcome::RolledBack;
        } else if (rec.ecc_corrected > 0 || st.reg_tmr_votes > 0 || st.im_scrub_corrected > 0 ||
                   selfchecks > 0) {
            rec.outcome = Outcome::Corrected;
        } else if (view.pending_reg_faults() > 0) {
            rec.outcome = Outcome::Latent; // struck register never consumed
        } else {
            rec.outcome = Outcome::Masked;
        }
    } else {
        rec.outcome = Outcome::Sdc;
    }
}

/// The divergence bucket a fault kind peels a batch lane into.
cluster::PeelReason peel_reason_of(FaultKind k) {
    switch (k) {
    case FaultKind::IXbarGlitch:
    case FaultKind::DXbarGlitch:
    case FaultKind::IXbarStateUpset:
    case FaultKind::DXbarStateUpset: return cluster::PeelReason::CrossbarUpset;
    default: return cluster::PeelReason::FaultStrike;
    }
}

double clean_energy_per_op(cluster::ArchKind arch, const cluster::ClusterStats& stats,
                           double checkpoint_words_per_op = 0.0) {
    const power::PowerModel model(arch);
    auto rates = power::EventRates::from_run(stats);
    rates.checkpoint_words_per_op = checkpoint_words_per_op;
    return model.energy_per_op(rates).total();
}

/// Analytic checkpoint traffic per op: `checkpoints` full-cluster saves of
/// `cores` x kCheckpointWordsPerCore state words amortized over the run.
double checkpoint_words_per_op(double checkpoints, unsigned cores, std::uint64_t ops) {
    if (ops == 0) return 0.0;
    return checkpoints * static_cast<double>(cores) *
           static_cast<double>(power::cal::kCheckpointWordsPerCore) / static_cast<double>(ops);
}

} // namespace

CampaignResult run_campaign(const app::EcgBenchmark& bench, cluster::ArchKind arch,
                            const CampaignConfig& cfg, sweep::SweepRunner& pool) {
    ULPMC_EXPECTS(cfg.injections >= 1);
    CampaignResult res;
    res.arch = arch;
    res.cfg = cfg;

    const cluster::ClusterConfig ccfg = resilient_config(bench, arch, cfg);

    Cycle interval = cfg.checkpoint_interval;
    { // fault-free reference: cycle count, energy, and injection window
        cluster::Cluster& cl = cluster::pooled_cluster(ccfg, bench.image());
        bench.load_inputs(cl, ccfg.cores);
        res.clean_cycles = cl.run();
        ULPMC_EXPECTS(outputs_verified(cl, bench, ccfg.cores));
        if (interval == 0) interval = std::max<Cycle>(1, res.clean_cycles / 8);
        const double ckpts_per_run =
            cfg.checkpoint ? static_cast<double>(res.clean_cycles) / static_cast<double>(interval)
                           : 0.0;
        res.energy_per_op = clean_energy_per_op(
            arch, cl.stats(),
            checkpoint_words_per_op(ckpts_per_run, ccfg.cores, cl.stats().total_ops()));
    }

    FaultUniverse universe;
    universe.text_words = bench.program().text.size();
    universe.dm_words = bench.layout().dm_layout().limit();
    universe.cores = ccfg.cores;
    universe.window = res.clean_cycles;
    universe.kinds = cfg.kinds;
    universe.flip_bits = cfg.flip_bits;
    universe.burst_len = cfg.burst_len;
    universe.reg_burst = cfg.reg_burst;

    const auto bound =
        static_cast<Cycle>(cfg.max_cycles_factor * static_cast<double>(res.clean_cycles)) +
        cfg.watchdog_cycles + 1000;

    const std::uint64_t nonce = next_campaign_nonce();
    const Cycle ladder_stride = std::max<Cycle>(1, res.clean_cycles / kLadderRungs);

    const std::vector<std::uint64_t> globals = shard_indices(cfg);
    res.runs.resize(globals.size());

    // Batched engine, one-shot recovery: lanes share the clean
    // representative (DESIGN.md §11). Each injection peels off the ladder
    // rung below its strike, simulates privately only while divergent, and
    // rejoins the clean run at the first boundary where its state matches
    // — the entire remaining tail is then credited, not simulated. The
    // checkpointed one-shot mode keeps the per-lane path below (rollback
    // re-execution makes lanes diverge from the clean schedule for good).
    const bool lockstep = cfg.engine == cluster::SimEngine::Batched && !cfg.checkpoint;
    const unsigned B = std::max(1u, cfg.batch);
    const std::size_t groups = lockstep ? (globals.size() + B - 1) / B : 0;

    if (lockstep) {
        pool.for_each_index(groups, [&](std::size_t g) {
            Workspace& ws = workspace();
            if (ws.key != nonce) {
                // Replay the fault-free run once per thread: ladder rungs
                // are both peel seeds and rejoin boundaries, and the
                // representative parks at the verified final state.
                if (!ws.bc) {
                    ws.bc = std::make_unique<cluster::BatchedCluster>(ccfg, bench.image(), B);
                } else {
                    ws.bc->reset(ccfg, bench.image(), B);
                }
                cluster::Cluster& rep = ws.bc->rep();
                bench.load_inputs(rep, ccfg.cores);
                ws.ladder.resize(kLadderRungs + 1);
                ws.rung_cycle.resize(kLadderRungs + 1);
                for (unsigned r = 0; r < kLadderRungs; ++r) {
                    rep.run(static_cast<Cycle>(r) * ladder_stride);
                    ws.rung_cycle[r] = rep.stats().cycles;
                    rep.save(ws.ladder[r]);
                }
                rep.run(); // clean completion = the shared tail every rejoined lane rides
                ws.rung_cycle[kLadderRungs] = rep.stats().cycles;
                rep.save(ws.ladder[kLadderRungs]);
                ws.key = nonce;
            }

            cluster::BatchedCluster& bc = *ws.bc;
            bc.reset_lanes();
            const std::size_t lane0 = g * B;
            const auto nlanes =
                static_cast<unsigned>(std::min<std::size_t>(B, globals.size() - lane0));
            for (unsigned j = 0; j < nlanes; ++j) {
                const std::size_t i = lane0 + j;
                FaultInjector inj(mix_seed(cfg.seed, globals[i]));
                InjectionRecord rec;
                rec.fault = inj.draw(universe);

                unsigned rung = 0;
                for (unsigned r = 1; r < kLadderRungs; ++r)
                    if (ws.rung_cycle[r] <= rec.fault.cycle) rung = r;
                cluster::Cluster& lane =
                    bc.peel_at(j, ws.ladder[rung], peel_reason_of(rec.fault.kind));
                lane.run(rec.fault.cycle);
                FaultInjector::apply(lane, rec.fault);

                // Ladder walk: advance to each later clean boundary and try
                // to prove the divergence has washed out.
                bool joined = false;
                for (unsigned r = rung + 1; r <= kLadderRungs && !joined; ++r) {
                    lane.run(ws.rung_cycle[r]);
                    joined = bc.try_rejoin(j, ws.ladder[r]);
                }
                if (!joined) {
                    lane.run(bound); // divergent to the end: pay full simulation
                    if (lane.stats().watchdog_trips > 0) {
                        bc.add_peel_reason(j, cluster::PeelReason::Watchdog);
                    } else {
                        bc.add_peel_reason(j, cluster::PeelReason::MemoBail);
                    }
                }

                bc.lane_stats_into(j, ws.stats_buf);
                rec.cycles = ws.stats_buf.cycles;
                rec.batch_lockstep_cycles = ws.stats_buf.batch_lockstep_cycles;
                rec.batch_lane_peels = ws.stats_buf.batch_lane_peels;
                rec.batch_peel_reasons = ws.stats_buf.batch_peel_reasons;
                // A rejoined lane's view is the representative at the
                // verified clean end — classification sees exactly the
                // final state a standalone run would have reached.
                classify_oneshot(bc.lane_view(j), ws.stats_buf, bench, ccfg.cores, rec);
                res.runs[i] = std::move(rec);
            }
        });
    } else {
        pool.for_each_index(globals.size(), [&](std::size_t i) {
            Workspace& ws = workspace();
            if (ws.key != nonce) {
                // First injection this thread sees: replay the fault-free run
                // once, snapshotting it at kLadderRungs evenly spaced cycles.
                if (!ws.cl) ws.cl = std::make_unique<cluster::Cluster>(ccfg, bench.image());
                else ws.cl->reset(ccfg, bench.image());
                bench.load_inputs(*ws.cl, ccfg.cores);
                ws.ladder.resize(kLadderRungs);
                ws.rung_cycle.resize(kLadderRungs);
                for (unsigned r = 0; r < kLadderRungs; ++r) {
                    ws.cl->run(static_cast<Cycle>(r) * ladder_stride);
                    ws.rung_cycle[r] = ws.cl->stats().cycles;
                    ws.cl->save(ws.ladder[r]);
                }
                if (!ws.runner) ws.runner = std::make_unique<cluster::CheckpointRunner>(*ws.cl);
                ws.key = nonce;
            }

            FaultInjector inj(mix_seed(cfg.seed, globals[i]));
            InjectionRecord rec;
            rec.fault = inj.draw(universe);

            // Resume the deterministic clean run from the highest rung at or
            // below the strike cycle instead of re-simulating its prefix.
            cluster::Cluster& cl = *ws.cl;
            unsigned rung = 0;
            for (unsigned r = 1; r < kLadderRungs; ++r)
                if (ws.rung_cycle[r] <= rec.fault.cycle) rung = r;
            cl.restore(ws.ladder[rung]);
            if (cfg.checkpoint) {
                // Generalized recovery: interval checkpoints, and any trap
                // (ECC double-bit, register parity, watchdog) re-executes from
                // the last one. Deterministic: the restored rung state and the
                // strike cycle fully determine every checkpoint.
                cluster::CheckpointRunner& runner = *ws.runner;
                runner.reset({.interval = interval, .max_retries = 2, .parity_guard = true});
                runner.checkpoint(); // recovery point at the rung (pre-fault)
                runner.run(rec.fault.cycle);
                FaultInjector::apply(cl, rec.fault);
                rec.cycles = runner.run(bound);
                rec.rollbacks = runner.stats().rollbacks;
                rec.checkpoints = runner.stats().checkpoints;
                rec.reexec_cycles = runner.stats().reexec_cycles;
            } else {
                rec.cycles = FaultInjector::run_with_fault(cl, rec.fault, bound);
            }

            classify_oneshot(cl, cl.stats(), bench, ccfg.cores, rec);
            res.runs[i] = std::move(rec);
        });
    }

    for (const auto& r : res.runs) {
        ++res.counts[static_cast<unsigned>(r.outcome)];
        res.checkpoints += r.checkpoints;
        res.reexec_cycles += r.reexec_cycles;
        res.batch_lockstep_cycles += r.batch_lockstep_cycles;
        res.batch_lane_peels += r.batch_lane_peels;
        for (unsigned b = 0; b < cluster::kPeelReasonCount; ++b)
            res.batch_peel_reasons[b] += r.batch_peel_reasons[b];
    }
    return res;
}

CampaignResult run_streaming_campaign(const app::StreamingBenchmark& bench,
                                      cluster::ArchKind arch, const CampaignConfig& cfg,
                                      sweep::SweepRunner& pool) {
    ULPMC_EXPECTS(cfg.injections >= 1);
    CampaignResult res;
    res.arch = arch;
    res.cfg = cfg;

    const cluster::ClusterConfig ccfg = resilient_config(bench.base(), arch, cfg);

    Cycle clean_block = 0;
    std::uint64_t clean_checkpoints = 0;
    { // fault-free resilient reference
        const auto clean =
            cfg.checkpoint ? bench.run_checkpointed(ccfg) : bench.run_resilient(ccfg);
        ULPMC_EXPECTS(clean.rollbacks == 0 && clean.leads_dropped == 0);
        res.clean_cycles = clean.total_cycles;
        clean_block = clean.clean_block_cycles;
        clean_checkpoints = clean.checkpoints;
    }
    { // energy from the one-shot benchmark (same firmware inner loop)
        cluster::Cluster& cl = cluster::pooled_cluster(ccfg, bench.base().image());
        bench.base().load_inputs(cl, ccfg.cores);
        cl.run();
        // Block-boundary checkpoints amortize over the whole stream: the
        // one-shot run stands in for one block's worth of ops.
        const double ckpts_per_block =
            static_cast<double>(clean_checkpoints) / static_cast<double>(bench.n_blocks());
        res.energy_per_op = clean_energy_per_op(
            arch, cl.stats(),
            checkpoint_words_per_op(ckpts_per_block, ccfg.cores, cl.stats().total_ops()));
    }

    FaultUniverse universe;
    universe.text_words = bench.base().program().text.size();
    universe.dm_words = bench.base().layout().dm_layout().limit();
    universe.cores = ccfg.cores;
    universe.window = clean_block; // within-block strike cycle
    universe.kinds = cfg.kinds;
    universe.flip_bits = cfg.flip_bits;
    universe.burst_len = cfg.burst_len;
    universe.reg_burst = cfg.reg_burst;

    const std::uint64_t nonce = next_campaign_nonce();
    // Batched engine: the fault-free stream is memoized (DESIGN.md §11) —
    // unperturbed blocks are credited from it instead of re-simulated. The
    // perturbed() predicate below mirrors the hook's early-return exactly,
    // which is what makes the credit sound.
    const bool batched = cfg.engine == cluster::SimEngine::Batched;

    const std::vector<std::uint64_t> globals = shard_indices(cfg);
    res.runs.resize(globals.size());
    pool.for_each_index(globals.size(), [&](std::size_t i) {
        FaultInjector inj(mix_seed(cfg.seed, globals[i]));
        InjectionRecord rec;
        rec.fault = inj.draw(universe);
        const unsigned target_block = inj.rng().below(bench.n_blocks());
        // A quarter of the memory strikes model latched (hard) upsets: the
        // rollback retry re-hits them, which is what exercises lead-drop.
        const bool memory_fault = rec.fault.kind == FaultKind::ImBitFlip ||
                                  rec.fault.kind == FaultKind::DmBitFlip;
        const bool persistent = memory_fault && inj.rng().below(4) == 0;

        const auto perturbs = [&](unsigned block, unsigned attempt) {
            return (block == target_block && attempt == 0) ||
                   (persistent && block >= target_block);
        };
        const auto hook = [&](cluster::Cluster& cl, unsigned block, unsigned attempt) {
            if (!perturbs(block, attempt)) return;
            // run_resilient resets the cluster per attempt (cycle restarts
            // at 0); run_checkpointed's clock is continuous, so the strike
            // cycle is applied relative to the attempt's start.
            cl.run(cfg.checkpoint ? cl.stats().cycles + rec.fault.cycle : rec.fault.cycle);
            FaultInjector::apply(cl, rec.fault);
        };
        app::StreamingBenchmark::ResilientOutcome ro;
        if (batched && cfg.checkpoint) {
            Workspace& ws = workspace();
            if (ws.stream_key != nonce) { // new campaign: recapture lazily
                ws.stream_memo.invalidate();
                ws.stream_key = nonce;
            }
            ro = bench.run_checkpointed(ccfg, hook, perturbs, ws.stream_memo);
        } else if (batched) {
            ro = bench.run_resilient(ccfg, hook, perturbs, clean_block);
        } else if (cfg.checkpoint) {
            ro = bench.run_checkpointed(ccfg, hook);
        } else {
            ro = bench.run_resilient(ccfg, hook);
        }

        rec.cycles = ro.total_cycles;
        rec.batch_lockstep_cycles = ro.memoized_cycles;
        if (batched) { // one "peel" = the struck block actually simulated
            rec.batch_lane_peels = 1;
            rec.batch_peel_reasons[static_cast<unsigned>(peel_reason_of(rec.fault.kind))] = 1;
        }
        rec.ecc_corrected = ro.ecc_corrected;
        rec.rollbacks = ro.rollbacks;
        rec.checkpoints = ro.checkpoints;
        rec.reexec_cycles = ro.reexec_cycles;
        // LeadDropped before Sdc: a zero-survivor outage is a DETECTED
        // fail-stop (the monitor dropped every lead after failed retries),
        // not a silent corruption.
        if (ro.leads_dropped > 0) {
            rec.outcome = Outcome::LeadDropped;
        } else if (!ro.all_surviving_verified) {
            rec.outcome = Outcome::Sdc;
        } else if (ro.rollbacks > 0) {
            rec.outcome = Outcome::RolledBack;
        } else if (rec.ecc_corrected > 0 || ro.reg_tmr_votes > 0 || ro.xbar_selfchecks > 0 ||
                   ro.im_scrub_corrected > 0) {
            rec.outcome = Outcome::Corrected;
        } else if (ro.latent_reg_faults > 0) {
            rec.outcome = Outcome::Latent;
        } else {
            rec.outcome = Outcome::Masked;
        }
        res.runs[i] = std::move(rec);
    });

    for (const auto& r : res.runs) {
        ++res.counts[static_cast<unsigned>(r.outcome)];
        res.checkpoints += r.checkpoints;
        res.reexec_cycles += r.reexec_cycles;
        res.batch_lockstep_cycles += r.batch_lockstep_cycles;
        res.batch_lane_peels += r.batch_lane_peels;
        for (unsigned b = 0; b < cluster::kPeelReasonCount; ++b)
            res.batch_peel_reasons[b] += r.batch_peel_reasons[b];
    }
    return res;
}

namespace {

/// End-of-stream verification, mirroring StreamingBenchmark::run(): every
/// block recomputes the same outputs, so the final committed state must
/// match the single-block golden bitstream on every core.
bool stream_verified(const cluster::Cluster& cl, const app::StreamingBenchmark& bench,
                     unsigned cores) {
    const auto& lay = bench.base().layout();
    for (unsigned p = 0; p < cores; ++p) {
        const auto pid = static_cast<CoreId>(p);
        if (cl.core_trap(pid) != core::Trap::None || !cl.core_halted(pid)) return false;
        const auto& golden = bench.base().golden_bitstream(p);
        if (cl.dm_peek(pid, lay.out_count()) != golden.words.size()) return false;
        for (std::size_t i = 0; i < golden.words.size(); ++i) {
            if (cl.dm_peek(pid, static_cast<Addr>(lay.out_base() + i)) != golden.words[i])
                return false;
        }
    }
    return true;
}

} // namespace

CampaignResult run_adaptive_campaign(const app::StreamingBenchmark& bench,
                                     cluster::ArchKind arch, const CampaignConfig& cfg,
                                     sweep::SweepRunner& pool) {
    ULPMC_EXPECTS(cfg.injections >= 1);
    ULPMC_EXPECTS(cfg.lambda_low >= 0.0 && cfg.lambda_high >= 0.0);
    CampaignResult res;
    res.arch = arch;
    res.cfg = cfg;

    const cluster::ClusterConfig ccfg = resilient_config(bench.base(), arch, cfg);

    { // fault-free continuous reference: cycle count and energy
        cluster::Cluster& cl = cluster::pooled_cluster(ccfg, bench.image());
        bench.base().load_inputs(cl, ccfg.cores);
        res.clean_cycles = cl.run(static_cast<Cycle>(bench.n_blocks()) * 400'000);
        ULPMC_EXPECTS(stream_verified(cl, bench, ccfg.cores));
        res.energy_per_op = clean_energy_per_op(arch, cl.stats());
    }

    FaultUniverse universe;
    universe.text_words = bench.program().text.size();
    universe.dm_words = bench.base().layout().dm_layout().limit();
    universe.cores = ccfg.cores;
    universe.window = res.clean_cycles;
    universe.kinds = cfg.kinds;
    universe.flip_bits = cfg.flip_bits;
    universe.burst_len = cfg.burst_len;
    universe.reg_burst = cfg.reg_burst;

    const auto bound =
        static_cast<Cycle>(cfg.max_cycles_factor * static_cast<double>(res.clean_cycles)) +
        cfg.watchdog_cycles + 1000;
    ULPMC_EXPECTS(cfg.lambda_split >= 0.0 && cfg.lambda_split <= 1.0);
    const auto phase_split =
        static_cast<Cycle>(cfg.lambda_split * static_cast<double>(res.clean_cycles));

    const cluster::CheckpointConfig rcfg{
        .interval = cfg.checkpoint_interval,
        // A high-rate phase can land several detectable strikes inside one
        // (long) interval; each rolls back individually, so the retry
        // budget must cover the burst rather than flag it deterministic.
        .max_retries = 8,
        .parity_guard = true,
        .adaptive = cfg.adaptive_checkpoint,
        // A rollback can never discard more than one interval; the default
        // 100k-cycle ceiling is longer than a whole burst phase of this
        // stream, so bound detection latency (and the interval the
        // controller parks at while the environment is quiet) to ~1% of
        // the run instead.
        .max_interval = std::min<Cycle>(4000, std::max<Cycle>(1000, res.clean_cycles / 32)),
    };

    const std::vector<std::uint64_t> globals = shard_indices(cfg);
    res.runs.resize(globals.size());
    std::vector<std::uint64_t> updates(globals.size(), 0);
    pool.for_each_index(globals.size(), [&](std::size_t i) {
        FaultInjector inj(mix_seed(cfg.seed, globals[i]));
        InjectionRecord rec;
        rec.strikes = 0;

        cluster::Cluster cl(ccfg, bench.image());
        bench.base().load_inputs(cl, ccfg.cores);
        cluster::CheckpointRunner runner(cl);
        runner.reset(rcfg);

        // Piecewise-constant Poisson process on the strike schedule (not
        // the rollback-rewound clock). A draw that crosses the phase
        // boundary is redrawn FROM the boundary at the new rate —
        // memorylessness makes that exact; carrying a quiet-phase gap
        // (mean 1/lambda_low) into the burst would thin its strikes.
        const auto draw_gap = [&](double lam) -> Cycle {
            if (lam <= 0.0) return bound; // pushes the next strike past the end
            const double u = 1.0 - inj.rng().uniform(); // (0, 1]
            return std::max<Cycle>(1, static_cast<Cycle>(-std::log(u) / lam));
        };
        const auto next_strike = [&](Cycle now) -> Cycle {
            if (now < phase_split) {
                const Cycle t = now + draw_gap(cfg.lambda_low);
                if (t < phase_split) return t;
                now = phase_split; // crossed into the burst: redraw there
            }
            return now + draw_gap(cfg.lambda_high);
        };

        bool first = true;
        for (Cycle next = next_strike(0); next < bound; next = next_strike(next)) {
            runner.run(next);
            if (runner.stats().gave_up) break;
            if (cl.stats().cycles < next) break; // stream quiesced early
            // Strikes are TRANSIENT: deposited once at their scheduled
            // cycle; a rollback that rewinds past one does not re-apply it
            // (the re-execution is the clean, particle-free replay).
            FaultSpec f = inj.draw(universe);
            f.cycle = next;
            FaultInjector::apply(cl, f);
            if (first) rec.fault = f;
            first = false;
            ++rec.strikes;
        }
        if (!runner.stats().gave_up) runner.run(bound);

        const auto& st = cl.stats();
        rec.cycles = st.cycles;
        rec.ecc_corrected = st.ecc_corrected();
        rec.rollbacks = runner.stats().rollbacks;
        rec.checkpoints = runner.stats().checkpoints;
        rec.reexec_cycles = runner.stats().reexec_cycles;
        updates[i] = runner.stats().interval_updates;

        bool any_running = false;
        for (unsigned p = 0; p < ccfg.cores; ++p) {
            const auto pid = static_cast<CoreId>(p);
            const core::Trap t = cl.core_trap(pid);
            if (t != core::Trap::None && rec.trap == core::Trap::None) rec.trap = t;
            if (t == core::Trap::None && !cl.core_halted(pid)) any_running = true;
        }
        const std::uint64_t selfchecks = st.ixbar.selfcheck_fixes + st.ixbar.selfcheck_resyncs +
                                         st.dxbar.selfcheck_fixes + st.dxbar.selfcheck_resyncs;
        if (runner.stats().gave_up || rec.trap != core::Trap::None) {
            rec.outcome = Outcome::Trapped;
        } else if (any_running) {
            rec.outcome = Outcome::Hang;
        } else if (stream_verified(cl, bench, ccfg.cores)) {
            if (rec.rollbacks > 0) {
                rec.outcome = Outcome::RolledBack;
            } else if (rec.ecc_corrected > 0 || st.reg_tmr_votes > 0 ||
                       st.im_scrub_corrected > 0 || selfchecks > 0) {
                rec.outcome = Outcome::Corrected;
            } else if (cl.pending_reg_faults() > 0) {
                rec.outcome = Outcome::Latent;
            } else {
                rec.outcome = Outcome::Masked;
            }
        } else {
            rec.outcome = Outcome::Sdc;
        }
        res.runs[i] = std::move(rec);
    });

    for (std::size_t i = 0; i < res.runs.size(); ++i) {
        const auto& r = res.runs[i];
        ++res.counts[static_cast<unsigned>(r.outcome)];
        res.checkpoints += r.checkpoints;
        res.reexec_cycles += r.reexec_cycles;
        res.strikes += r.strikes;
        res.interval_updates += updates[i];
    }
    // The policy's overhead in the calibrated energy model: every save
    // streams cores x kCheckpointWordsPerCore words at kCheckpointWordEnergy
    // each, every re-executed cycle burns the cluster's core energy — the
    // exact two cost terms the adaptive controller optimizes (DESIGN.md
    // §9), evaluated on what actually happened.
    const double save_energy = ccfg.cores *
                               static_cast<double>(power::cal::kCheckpointWordsPerCore) *
                               power::cal::kCheckpointWordEnergy;
    const double cycle_energy =
        static_cast<double>(ccfg.cores) * power::cal::kCoreEnergyPerOp;
    res.overhead_energy = static_cast<double>(res.checkpoints) * save_energy +
                          static_cast<double>(res.reexec_cycles) * cycle_energy;
    return res;
}

CampaignResult run_storage_campaign(const app::StreamingBenchmark& bench,
                                    cluster::ArchKind arch, const CampaignConfig& cfg,
                                    const StorageCampaignOptions& opts,
                                    sweep::SweepRunner& pool) {
    ULPMC_EXPECTS(cfg.injections >= 1);
    ULPMC_EXPECTS(cfg.checkpoint);
    CampaignResult res;
    res.arch = arch;
    res.cfg = cfg;

    const cluster::ClusterConfig ccfg = resilient_config(bench.base(), arch, cfg);

    app::StreamingBenchmark::DurableOptions clean_durable;
    clean_durable.enabled = true;
    clean_durable.storage = opts.storage;

    Cycle clean_block = 0;
    double stored_ratio = 1.0;
    { // fault-free durable reference: cycles, byte ratio, injection window
        const auto clean = bench.run_checkpointed(ccfg, {}, clean_durable);
        ULPMC_EXPECTS(clean.rollbacks == 0 && clean.leads_dropped == 0);
        res.clean_cycles = clean.total_cycles;
        clean_block = clean.clean_block_cycles;
        if (clean.ckpt_full_bytes > 0) {
            stored_ratio = static_cast<double>(clean.ckpt_stored_bytes) /
                           static_cast<double>(clean.ckpt_full_bytes);
        }
        // Energy from the one-shot benchmark (same firmware inner loop);
        // the checkpoint traffic term is scaled by the bytes the store
        // ACTUALLY persists, which is where delta encoding pays off.
        cluster::Cluster& cl = cluster::pooled_cluster(ccfg, bench.base().image());
        bench.base().load_inputs(cl, ccfg.cores);
        cl.run();
        const double ckpts_per_block =
            static_cast<double>(clean.checkpoints) / static_cast<double>(bench.n_blocks());
        res.energy_per_op = clean_energy_per_op(
            arch, cl.stats(),
            checkpoint_words_per_op(ckpts_per_block, ccfg.cores, cl.stats().total_ops()) *
                stored_ratio);
    }

    // The storage fault target: payload words of one full keyframe record
    // of this exact cluster geometry (delta records are smaller; draws are
    // wrapped into the struck record's extent by corrupt()).
    std::uint64_t keyframe_words = 0;
    {
        cluster::Cluster& cl = cluster::pooled_cluster(ccfg, bench.base().image());
        bench.base().load_inputs(cl, ccfg.cores);
        cluster::Cluster::Snapshot snap;
        cl.save(snap);
        cluster::CheckpointStorage probe;
        probe.reset({.delta = false, .keyframe_interval = 1});
        probe.store(snap);
        keyframe_words = probe.payload_words(0);
    }

    FaultUniverse universe;
    universe.text_words = bench.base().program().text.size();
    universe.dm_words = bench.base().layout().dm_layout().limit();
    universe.cores = ccfg.cores;
    universe.window = clean_block; // within-block strike cycle
    universe.kinds = cfg.kinds;
    universe.flip_bits = cfg.flip_bits;
    universe.burst_len = cfg.burst_len;
    universe.reg_burst = cfg.reg_burst;

    FaultUniverse storage_universe;
    storage_universe.cores = 1;
    storage_universe.window = 1; // strike lands at the boundary, not a cycle
    storage_universe.kinds = kCkptFaultKinds;
    storage_universe.ckpt_words = keyframe_words;
    storage_universe.flip_bits = cfg.flip_bits;
    storage_universe.burst_len = cfg.burst_len;

    const std::vector<std::uint64_t> globals = shard_indices(cfg);
    res.runs.resize(globals.size());
    struct StoreAgg {
        std::uint64_t stored = 0, full = 0, crc = 0, fallbacks = 0;
    };
    std::vector<StoreAgg> aggs(globals.size());
    pool.for_each_index(globals.size(), [&](std::size_t i) {
        FaultInjector inj(mix_seed(cfg.seed, globals[i]));
        InjectionRecord rec;
        rec.fault = inj.draw(universe);
        const unsigned target_block = inj.rng().below(bench.n_blocks());
        FaultSpec storage_fault{};
        if (opts.storage_strikes) storage_fault = inj.draw(storage_universe);

        // Both strikes are single particles: deposited exactly once, even
        // when a keyframe fallback rewinds the stream back over the
        // struck block (the rewound re-execution is the clean replay).
        bool exec_struck = false;
        bool storage_struck = false;
        const auto hook = [&](cluster::Cluster& cl, unsigned block, unsigned attempt) {
            if (block != target_block || attempt != 0 || exec_struck) return;
            exec_struck = true;
            cl.run(cl.stats().cycles + rec.fault.cycle);
            FaultInjector::apply(cl, rec.fault);
        };
        app::StreamingBenchmark::DurableOptions durable;
        durable.enabled = true;
        durable.storage = opts.storage;
        if (opts.storage_strikes) {
            durable.strike = [&](cluster::CheckpointStorage& store, unsigned block) {
                // The record strike lands the moment the struck block's
                // boundary checkpoint is persisted — the very record the
                // execution strike's rollback then tries to consume.
                if (block != target_block || storage_struck) return;
                storage_struck = true;
                FaultInjector::apply(store, storage_fault);
            };
        }
        const auto ro = bench.run_checkpointed(ccfg, hook, durable);

        rec.cycles = ro.total_cycles;
        rec.ecc_corrected = ro.ecc_corrected;
        rec.rollbacks = ro.rollbacks;
        rec.checkpoints = ro.checkpoints;
        rec.reexec_cycles = ro.reexec_cycles;
        aggs[i] = {ro.ckpt_stored_bytes, ro.ckpt_full_bytes, ro.ckpt_crc_failures,
                   ro.ckpt_fallbacks};
        if (ro.storage_exhausted) {
            // Every stored record rejected: a DETECTED, fail-stop loss
            // (the run refuses to restore garbage), not silent corruption.
            rec.outcome = Outcome::Trapped;
        } else if (ro.leads_dropped > 0) {
            rec.outcome = Outcome::LeadDropped;
        } else if (!ro.all_surviving_verified) {
            rec.outcome = Outcome::Sdc;
        } else if (ro.rollbacks > 0 || ro.ckpt_fallbacks > 0) {
            rec.outcome = Outcome::RolledBack;
        } else if (rec.ecc_corrected > 0 || ro.reg_tmr_votes > 0 || ro.xbar_selfchecks > 0 ||
                   ro.im_scrub_corrected > 0) {
            rec.outcome = Outcome::Corrected;
        } else if (ro.latent_reg_faults > 0) {
            rec.outcome = Outcome::Latent;
        } else {
            rec.outcome = Outcome::Masked;
        }
        res.runs[i] = std::move(rec);
    });

    for (std::size_t i = 0; i < res.runs.size(); ++i) {
        const auto& r = res.runs[i];
        ++res.counts[static_cast<unsigned>(r.outcome)];
        res.checkpoints += r.checkpoints;
        res.reexec_cycles += r.reexec_cycles;
        res.ckpt_stored_bytes += aggs[i].stored;
        res.ckpt_full_bytes += aggs[i].full;
        res.ckpt_crc_failures += aggs[i].crc;
        res.ckpt_fallbacks += aggs[i].fallbacks;
    }
    return res;
}

} // namespace ulpmc::fault
