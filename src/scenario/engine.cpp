#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <sstream>
#include <unordered_map>

#include "cluster/pool.hpp"
#include "common/assert.hpp"
#include "common/serial.hpp"
#include "fault/estimator.hpp"
#include "fault/fault.hpp"
#include "power/calibration.hpp"
#include "power/governor.hpp"
#include "power/power_model.hpp"

namespace ulpmc::scenario {

const char* policy_name(Policy p) {
    return p == Policy::Ladder ? "ladder" : "baseline";
}

namespace {

/// Mirrors the campaign layer's end-of-run verification (campaign.cpp):
/// golden CS measurements and the golden bitstream, bit-exact, from every
/// active core, which must have halted untrapped.
bool verified_against_golden(const cluster::Cluster& cl, const app::EcgBenchmark& bench,
                             unsigned cores) {
    const auto& lay = bench.layout();
    for (unsigned p = 0; p < cores; ++p) {
        const auto pid = static_cast<CoreId>(p);
        if (cl.core_trap(pid) != core::Trap::None || !cl.core_halted(pid)) return false;
        const auto& y = bench.golden_measurements(p);
        for (std::size_t i = 0; i < y.size(); ++i) {
            if (cl.dm_peek(pid, static_cast<Addr>(lay.y_base() + i)) != y[i]) return false;
        }
        const auto& bits = bench.golden_bitstream(p);
        if (cl.dm_peek(pid, lay.out_count()) != bits.words.size()) return false;
        for (std::size_t i = 0; i < bits.words.size(); ++i) {
            if (cl.dm_peek(pid, static_cast<Addr>(lay.out_base() + i)) != bits.words[i])
                return false;
        }
    }
    return true;
}

/// RNG stream allocation per global block index `gbi`: stream 2*gbi draws
/// the strike decision, stream 2*gbi+1 seeds the injection. The link owns
/// one further stream (kLinkStream). Keeping every draw keyed by gbi —
/// never by execution order — is what makes the run independent of the
/// SweepRunner thread count.
constexpr std::uint64_t kLinkStream = 0xB1E00000u;

} // namespace

const LevelCalibration& CalibrationCache::get(
    const std::string& key, const std::function<LevelCalibration()>& compute) {
    Entry* e;
    {
        std::lock_guard lock(m_);
        auto& slot = map_[key];
        if (!slot) slot = std::make_unique<Entry>();
        e = slot.get();
    }
    std::call_once(e->once, [&] { e->cal = compute(); });
    return e->cal;
}

std::size_t CalibrationCache::size() const {
    std::lock_guard lock(m_);
    return map_.size();
}

LifetimeEngine::LifetimeEngine(const Timeline& tl, const DeviceConfig& dc)
    : LifetimeEngine(tl, dc,
                     std::make_shared<const app::EcgBenchmark>(
                         app::BenchmarkOptions{.seed = dc.seed})) {}

LifetimeEngine::LifetimeEngine(const Timeline& tl, const DeviceConfig& dc,
                               std::shared_ptr<const app::EcgBenchmark> bench,
                               CalibrationCache* cache)
    : tl_(tl), dc_(dc), bench_(std::move(bench)), cache_(cache) {
    ULPMC_EXPECTS(bench_ != nullptr);
    ULPMC_EXPECTS(dc_.chunk_blocks >= 1);
    ULPMC_EXPECTS(dc_.derate_lambda_on > dc_.derate_lambda_off);
    ULPMC_EXPECTS(dc_.derate_margin_v >= 0 && dc_.derate_ser_factor > 0 &&
                  dc_.derate_ser_factor <= 1);
}

LifetimeEngine::~LifetimeEngine() = default;

cluster::ClusterConfig LifetimeEngine::config_for(DegradeLevel level) const {
    cluster::ClusterConfig c = cluster::make_config(dc_.arch, bench_->layout().dm_layout());
    c.barrier_enabled = bench_->layout().use_barrier;
    c.engine = dc_.engine;
    c.watchdog_cycles = dc_.watchdog_cycles;
    if (dc_.policy == Policy::Baseline) return c; // no-resilience device
    // Ladder protection floor: SEC-DED + IM scrub + register parity; the
    // TightProtect rung escalates to TMR, DM scrub and self-checking
    // arbiters on top.
    c.ecc_enabled = true;
    c.im_scrub = true;
    c.reg_protection = core::RegProtection::Parity;
    if (level >= DegradeLevel::ShedLeads) c.cores = kNumCores / 2;
    if (level >= DegradeLevel::TightProtect) {
        c.reg_protection = core::RegProtection::Tmr;
        c.dm_scrub = true;
        c.xbar_self_check = true;
    }
    return c;
}

LevelCalibration LifetimeEngine::compute_calibration(DegradeLevel level) const {
    LevelCalibration c;
    c.cfg = config_for(level);

    cluster::Cluster& cl = cluster::pooled_cluster(c.cfg, bench_->image());
    bench_->load_inputs(cl, c.cfg.cores);
    c.clean_cycles = cl.run();
    ULPMC_EXPECTS(verified_against_golden(cl, *bench_, c.cfg.cores));
    c.ops = cl.stats().total_ops();

    const power::PowerModel model(dc_.arch);
    const auto rates = power::EventRates::from_run(cl.stats());
    c.energy_cycle_j = model.energy_per_op(rates).total() * cl.stats().ops_per_cycle();

    const power::DutyCycleGovernor governor(model, rates);
    const power::Schedule sched =
        governor.best(static_cast<double>(c.ops), tl_.block_period_s);
    c.energy_block_j = sched.energy_per_period;
    c.v_op = sched.op.v;

    c.tx_bits = 0;
    for (unsigned p = 0; p < c.cfg.cores; ++p) c.tx_bits += bench_->golden_bitstream(p).bits;

    return c;
}

const LevelCalibration& LifetimeEngine::calibrate(DegradeLevel level) {
    const auto idx = static_cast<unsigned>(level);
    if (calib_[idx]) return *calib_[idx];
    if (cache_) {
        // Key: everything a calibration is a function of — the workload
        // cohort (benchmark seed + layout knobs), the level's cluster
        // configuration (arch/policy/level/watchdog) and the governor's
        // scheduling period. The engine tier is deliberately absent: the
        // tiers are stat-identical, so it must not split the cache.
        std::ostringstream key;
        const app::BenchmarkOptions& bo = bench_->options();
        key << "seed=" << bo.seed << "|luts=" << bo.luts_shared << "|bar=" << bo.use_barrier
            << "|spill=" << bo.compiler_spills << "|arch=" << static_cast<int>(dc_.arch)
            << "|policy=" << static_cast<int>(dc_.policy) << "|level=" << idx
            << "|wd=" << dc_.watchdog_cycles << "|period=" << tl_.block_period_s;
        calib_[idx] = &cache_->get(key.str(), [&] { return compute_calibration(level); });
    } else {
        own_calib_[idx] = std::make_unique<LevelCalibration>(compute_calibration(level));
        calib_[idx] = own_calib_[idx].get();
    }
    return *calib_[idx];
}

LifetimeReport LifetimeEngine::run(sweep::SweepRunner& pool) {
    return run(pool, LifeResume{});
}

LifetimeReport LifetimeEngine::run(sweep::SweepRunner& pool, const LifeResume& resume) {
    const double period = tl_.block_period_s;
    const double sim_s = dc_.max_days > 0 ? dc_.max_days * 86400.0 : tl_.total_s();
    const auto total_blocks =
        static_cast<std::uint64_t>(std::floor(sim_s / period + 1e-9));
    ULPMC_EXPECTS(total_blocks >= 1);

    LifetimeReport rep;
    rep.policy = dc_.policy;
    rep.seed = dc_.seed;
    rep.arch = cluster::arch_name(dc_.arch);
    rep.simulated_s = static_cast<double>(total_blocks) * period;
    rep.block_period_s = period;
    rep.battery_capacity_j = tl_.battery_j;
    rep.total_blocks = total_blocks;
    rep.samples_total = total_blocks * kNumCores * app::kEcgBlockSamples;
    rep.phases.resize(tl_.phases.size());
    for (std::size_t i = 0; i < tl_.phases.size(); ++i) rep.phases[i].name = tl_.phases[i].name;

    BatteryConfig bat_cfg = dc_.battery;
    bat_cfg.capacity_j = tl_.battery_j;
    Battery battery(bat_cfg);
    BleLink link(dc_.link, fault::mix_seed(dc_.seed, kLinkStream));
    fault::UpsetRateEstimator estimator;
    bool derated = false;

    rep.battery_trace.push_back({0.0, battery.charge_fraction()});
    std::size_t prev_phase = tl_.phase_index_at(0.0);

    // ---- durable-execution snapshot codec (DESIGN.md §9.6) -------------
    // Everything mutated across chunks, encoded at a chunk boundary. The
    // field order below IS the wire format; decode mirrors it exactly.
    const auto encode_state = [&](std::uint64_t next_chunk, std::vector<std::uint8_t>& out) {
        out.clear();
        put_raw(out, next_chunk);
        battery.encode(out);
        link.encode(out);
        put_f64(out, estimator.gap_hat());
        put_raw(out, estimator.silence());
        put_raw(out, static_cast<std::uint8_t>(estimator.primed() ? 1 : 0));
        put_raw(out, estimator.updates());
        put_raw(out, static_cast<std::uint8_t>(derated ? 1 : 0));
        put_raw(out, static_cast<std::uint64_t>(prev_phase));
        put_f64(out, rep.first_brownout_s);
        put_raw(out, static_cast<std::uint64_t>(rep.battery_trace.size()));
        for (const BatterySample& s : rep.battery_trace) {
            put_f64(out, s.t_s);
            put_f64(out, s.fraction);
        }
        put_raw(out, static_cast<std::uint64_t>(rep.phases.size()));
        for (const PhaseReport& pr : rep.phases) {
            put_raw(out, pr.blocks);
            put_raw(out, pr.brownout_blocks);
            put_raw(out, pr.struck_blocks);
            put_raw(out, pr.rollbacks);
            put_raw(out, pr.sdc_blocks);
            put_raw(out, pr.trapped_blocks);
            put_raw(out, pr.derated_blocks);
            put_raw(out, pr.samples_sensed);
            put_raw(out, pr.samples_shed);
            put_f64(out, pr.energy_compute_j);
            put_f64(out, pr.energy_checkpoint_j);
            put_f64(out, pr.energy_reexec_j);
            put_f64(out, pr.energy_radio_j);
            put_f64(out, pr.harvest_j);
            put_f64(out, pr.battery_end);
            put_f64(out, pr.lambda_hat_end);
            put_raw(out, static_cast<std::uint32_t>(pr.deepest_level));
        }
    };

    std::uint64_t start_chunk = 0;
    if (!resume.state.empty()) {
        // The journal layer already CRC-verified these bytes and bound
        // them to this run's options, so anything structurally wrong here
        // is a caller bug, not bad input: assert, don't limp.
        ByteReader in(resume.state);
        const auto next = in.get<std::uint64_t>();
        bool ok = battery.decode(in);
        ok = link.decode(in) && ok;
        const double gap = in.get_f64();
        const auto silence = in.get<Cycle>();
        const auto primed = in.get<std::uint8_t>();
        const auto updates = in.get<std::uint64_t>();
        const auto der = in.get<std::uint8_t>();
        const auto prev = in.get<std::uint64_t>();
        const double first_bo = in.get_f64();
        const auto n_trace = in.get<std::uint64_t>();
        ok = ok && !in.fail() && n_trace >= 1 && n_trace <= total_blocks + 2;
        std::vector<BatterySample> trace;
        if (ok) {
            trace.resize(n_trace);
            for (BatterySample& s : trace) {
                s.t_s = in.get_f64();
                s.fraction = in.get_f64();
            }
        }
        const auto n_phases = in.get<std::uint64_t>();
        ok = ok && n_phases == rep.phases.size();
        if (ok) {
            for (PhaseReport& pr : rep.phases) {
                pr.blocks = in.get<std::uint64_t>();
                pr.brownout_blocks = in.get<std::uint64_t>();
                pr.struck_blocks = in.get<std::uint64_t>();
                pr.rollbacks = in.get<std::uint64_t>();
                pr.sdc_blocks = in.get<std::uint64_t>();
                pr.trapped_blocks = in.get<std::uint64_t>();
                pr.derated_blocks = in.get<std::uint64_t>();
                pr.samples_sensed = in.get<std::uint64_t>();
                pr.samples_shed = in.get<std::uint64_t>();
                pr.energy_compute_j = in.get_f64();
                pr.energy_checkpoint_j = in.get_f64();
                pr.energy_reexec_j = in.get_f64();
                pr.energy_radio_j = in.get_f64();
                pr.harvest_j = in.get_f64();
                pr.battery_end = in.get_f64();
                pr.lambda_hat_end = in.get_f64();
                pr.deepest_level = in.get<std::uint32_t>();
            }
        }
        ok = ok && !in.fail() && in.remaining() == 0 && next <= total_blocks &&
             (next % dc_.chunk_blocks == 0 || next == total_blocks) &&
             prev < tl_.phases.size();
        ULPMC_EXPECTS(ok);
        start_chunk = next;
        estimator.restore(gap, silence, primed != 0, updates);
        derated = der != 0;
        prev_phase = static_cast<std::size_t>(prev);
        rep.first_brownout_s = first_bo;
        rep.battery_trace = std::move(trace);
    }
    std::vector<std::uint8_t> state_buf;

    struct Plan {
        std::size_t phase;
        DegradeLevel level;
        bool struck;
    };
    struct StruckJob {
        std::uint64_t gbi;
        DegradeLevel level;
    };
    struct StruckOutcome {
        std::uint64_t events = 0;
        bool ok = false;
        bool trapped = false;
    };

    for (std::uint64_t chunk_start = start_chunk; chunk_start < total_blocks;
         chunk_start += dc_.chunk_blocks) {
        const std::uint64_t chunk_end =
            std::min<std::uint64_t>(chunk_start + dc_.chunk_blocks, total_blocks);

        // ---- governor tick: freeze the ladder level and the derating
        // decision for this chunk ---------------------------------------
        const DegradeLevel base_level = dc_.policy == Policy::Ladder
                                            ? level_for_charge(battery.charge_fraction(), dc_.thresholds)
                                            : DegradeLevel::Full;
        if (dc_.policy == Policy::Ladder) {
            const double lam = estimator.lambda_hat();
            if (!derated && lam > dc_.derate_lambda_on) derated = true;
            if (derated && lam < dc_.derate_lambda_off) derated = false;
        }
        const double ser = derated ? dc_.derate_ser_factor : 1.0;

        // ---- plan the chunk: per-block phase, effective level, and the
        // seeded strike decision (independent of device state, so it can
        // be drawn up front) ---------------------------------------------
        std::vector<Plan> plan(chunk_end - chunk_start);
        std::vector<StruckJob> jobs;
        for (std::uint64_t gbi = chunk_start; gbi < chunk_end; ++gbi) {
            Plan& pl = plan[gbi - chunk_start];
            const double t = static_cast<double>(gbi) * period;
            pl.phase = tl_.phase_index_at(t);
            const Phase& ph = tl_.phases[pl.phase];
            // Clinical override: an arrhythmia episode is monitored at
            // full fidelity no matter what the battery says.
            pl.level = (dc_.policy == Policy::Ladder && ph.arrhythmia) ? DegradeLevel::Full
                                                                       : base_level;
            const LevelCalibration& cal = calibrate(pl.level);
            const double p_strike =
                ph.lambda > 0
                    ? 1.0 - std::exp(-ph.lambda * static_cast<double>(cal.clean_cycles) * ser)
                    : 0.0;
            pl.struck = p_strike > 0 &&
                        Rng(fault::mix_seed(dc_.seed, 2 * gbi)).uniform() < p_strike;
            if (pl.struck) jobs.push_back({gbi, pl.level});
        }

        // ---- simulate the struck blocks in parallel (each is seeded by
        // its global block index, so the outcome set is order-free) ------
        const auto outcomes =
            pool.map(std::span<const StruckJob>(jobs), [&](const StruckJob& job) {
                const LevelCalibration& cal = *calib_[static_cast<unsigned>(job.level)];
                cluster::Cluster& cl = cluster::pooled_cluster(cal.cfg, bench_->image());
                bench_->load_inputs(cl, cal.cfg.cores);

                fault::FaultInjector inj(fault::mix_seed(dc_.seed, 2 * job.gbi + 1));
                fault::FaultUniverse u;
                u.text_words = bench_->program().text.size();
                u.dm_words = bench_->layout().dm_layout().limit();
                u.cores = cal.cfg.cores;
                u.window = cal.clean_cycles;
                const fault::FaultSpec spec = inj.draw(u);
                const Cycle bound = 4 * cal.clean_cycles + dc_.watchdog_cycles + 1000;
                fault::FaultInjector::run_with_fault(cl, spec, bound);

                StruckOutcome out;
                out.events = cl.stats().upset_events();
                bool any_running = false, any_trap = false;
                for (unsigned p = 0; p < cal.cfg.cores; ++p) {
                    const auto pid = static_cast<CoreId>(p);
                    if (cl.core_trap(pid) != core::Trap::None) any_trap = true;
                    else if (!cl.core_halted(pid)) any_running = true;
                }
                out.trapped = any_trap || any_running;
                out.ok = !out.trapped && verified_against_golden(cl, *bench_, cal.cfg.cores);
                return out;
            });
        std::unordered_map<std::uint64_t, const StruckOutcome*> by_gbi;
        for (std::size_t i = 0; i < jobs.size(); ++i) by_gbi[jobs[i].gbi] = &outcomes[i];

        // ---- apply the chunk in strict block order ---------------------
        for (std::uint64_t gbi = chunk_start; gbi < chunk_end; ++gbi) {
            const Plan& pl = plan[gbi - chunk_start];
            const Phase& ph = tl_.phases[pl.phase];
            PhaseReport& pr = rep.phases[pl.phase];
            const double t = static_cast<double>(gbi) * period;

            if (pl.phase != prev_phase) {
                rep.battery_trace.push_back({t, battery.charge_fraction()});
                prev_phase = pl.phase;
            }
            ++pr.blocks;

            if (battery.browned_out()) {
                // Regulator out: the device is dark. All samples of the
                // period are lost at the sensor; only harvest runs.
                ++pr.brownout_blocks;
                pr.samples_shed += kNumCores * app::kEcgBlockSamples;
                battery.harvest(ph.harvest_uw * 1e-6, period);
                pr.harvest_j += ph.harvest_uw * 1e-6 * period;
                pr.battery_end = battery.charge_fraction();
                continue;
            }

            const LevelCalibration& cal = *calib_[static_cast<unsigned>(pl.level)];
            pr.deepest_level = std::max(pr.deepest_level, static_cast<unsigned>(pl.level));

            // Compute energy, with the quadratic cost of the derating
            // margin when it is engaged.
            double derate_factor = 1.0;
            if (derated) {
                const double v = cal.v_op;
                derate_factor = ((v + dc_.derate_margin_v) / v) * ((v + dc_.derate_margin_v) / v);
                ++pr.derated_blocks;
            }
            double e_compute = cal.energy_block_j * derate_factor;

            // Checkpoint traffic: one end-of-block commit normally; at
            // TightProtect and deeper the interval follows the first-order
            // optimum T* = sqrt(2 C e_w / (lambda E_cycle)) from the
            // estimator's current rate.
            double e_ckpt = 0;
            if (dc_.policy == Policy::Ladder) {
                const double c_words = static_cast<double>(cal.cfg.cores) *
                                       power::cal::kCheckpointWordsPerCore;
                double n_ckpt = 1.0;
                const double lam = estimator.lambda_hat();
                if (pl.level >= DegradeLevel::TightProtect && lam > 0) {
                    const double t_star =
                        std::sqrt(2.0 * c_words * power::cal::kCheckpointWordEnergy /
                                  (lam * cal.energy_cycle_j));
                    n_ckpt = std::max(1.0, static_cast<double>(cal.clean_cycles) / t_star);
                }
                e_ckpt = n_ckpt * c_words * power::cal::kCheckpointWordEnergy;
            }

            // Struck-block outcome.
            double e_reexec = 0;
            bool ship = true;
            TxQuality quality =
                pl.level >= DegradeLevel::CoarseTx ? TxQuality::Degraded : TxQuality::Full;
            std::uint64_t events = 0;
            Cycle observed_cycles = cal.clean_cycles;
            if (pl.struck) {
                ++pr.struck_blocks;
                const StruckOutcome& out = *by_gbi.at(gbi);
                events = out.events;
                if (dc_.policy == Policy::Ladder) {
                    if (!out.ok) {
                        // Verification failed (or the block fail-stopped):
                        // roll back and re-execute; the retry is clean by
                        // construction (the strike already happened).
                        ++pr.rollbacks;
                        e_reexec = cal.energy_block_j * derate_factor;
                        observed_cycles += cal.clean_cycles;
                    }
                } else {
                    if (out.trapped) {
                        // Fail-stop with nobody to roll back: the block is
                        // lost and the device reboots into the next one.
                        ++pr.trapped_blocks;
                        ship = false;
                    } else if (!out.ok) {
                        // Corrupted outputs shipped as if they were good —
                        // the silent-data-corruption channel.
                        ++pr.sdc_blocks;
                        quality = TxQuality::Corrupt;
                    }
                }
            }
            estimator.observe(events, observed_cycles);

            // Sense + enqueue. Shed leads never sample; RadioSilence still
            // enqueues (buffer-and-hold) but keeps the modem off.
            const std::uint64_t sensed =
                static_cast<std::uint64_t>(cal.cfg.cores) * app::kEcgBlockSamples;
            pr.samples_sensed += sensed;
            pr.samples_shed +=
                static_cast<std::uint64_t>(kNumCores - cal.cfg.cores) * app::kEcgBlockSamples;
            if (ship) {
                std::size_t bits = cal.tx_bits;
                if (pl.level >= DegradeLevel::CoarseTx) bits /= 2;
                link.enqueue(bits, sensed, quality);
            } else {
                pr.samples_shed += sensed;
            }

            const double radio_before = link.stats().tx_energy_j;
            const bool radio_up = ph.ble_up && pl.level != DegradeLevel::RadioSilence;
            link.step(period, radio_up, ph.ble_loss);
            const double e_radio = link.stats().tx_energy_j - radio_before;

            battery.drain(e_compute + e_ckpt + e_reexec + e_radio);
            battery.harvest(ph.harvest_uw * 1e-6, period);

            pr.energy_compute_j += e_compute;
            pr.energy_checkpoint_j += e_ckpt;
            pr.energy_reexec_j += e_reexec;
            pr.energy_radio_j += e_radio;
            pr.harvest_j += ph.harvest_uw * 1e-6 * period;
            pr.battery_end = battery.charge_fraction();
            pr.lambda_hat_end = estimator.lambda_hat();

            if (battery.browned_out() && rep.first_brownout_s < 0)
                rep.first_brownout_s = t + period;
        }

        if (resume.on_chunk) {
            encode_state(chunk_end, state_buf);
            resume.on_chunk(state_buf);
        }
    }

    rep.battery_trace.push_back({rep.simulated_s, battery.charge_fraction()});
    rep.link = link.stats();
    for (const PhaseReport& pr : rep.phases) rep.sdc_blocks += pr.sdc_blocks;
    const auto st = static_cast<double>(rep.samples_total);
    rep.delivered_fraction =
        static_cast<double>(rep.link.samples_delivered + rep.link.samples_delivered_degraded) /
        st;
    rep.full_fidelity_fraction = static_cast<double>(rep.link.samples_delivered) / st;
    return rep;
}

} // namespace ulpmc::scenario
