#include "scenario/battery.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/serial.hpp"

namespace ulpmc::scenario {

Battery::Battery(const BatteryConfig& cfg)
    : cfg_(cfg), charge_j_(cfg.capacity_j * cfg.initial_fraction) {
    ULPMC_EXPECTS(cfg_.capacity_j > 0);
    ULPMC_EXPECTS(cfg_.initial_fraction >= 0 && cfg_.initial_fraction <= 1);
    ULPMC_EXPECTS(cfg_.brownout_fraction >= 0 && cfg_.restart_fraction >= cfg_.brownout_fraction);
}

void Battery::drain(double j) {
    ULPMC_EXPECTS(j >= 0);
    charge_j_ = std::max(0.0, charge_j_ - j);
    if (charge_fraction() < cfg_.brownout_fraction) browned_out_ = true;
}

void Battery::harvest(double w, double dt_s) {
    ULPMC_EXPECTS(w >= 0 && dt_s >= 0);
    charge_j_ = std::min(cfg_.capacity_j, charge_j_ + w * dt_s);
    if (browned_out_ && charge_fraction() >= cfg_.restart_fraction) browned_out_ = false;
}

void Battery::encode(std::vector<std::uint8_t>& out) const {
    put_f64(out, charge_j_);
    put_raw(out, static_cast<std::uint8_t>(browned_out_ ? 1 : 0));
}

bool Battery::decode(ByteReader& in) {
    const double charge = in.get_f64();
    const auto browned = in.get<std::uint8_t>();
    if (in.fail() || charge < 0 || charge > cfg_.capacity_j) return false;
    charge_j_ = charge;
    browned_out_ = browned != 0;
    return true;
}

const char* level_name(DegradeLevel l) {
    switch (l) {
    case DegradeLevel::Full:
        return "full";
    case DegradeLevel::ShedLeads:
        return "shed-leads";
    case DegradeLevel::CoarseTx:
        return "coarse-tx";
    case DegradeLevel::TightProtect:
        return "tight-protect";
    case DegradeLevel::RadioSilence:
        return "radio-silence";
    }
    return "?";
}

DegradeLevel level_for_charge(double charge_fraction, const LadderThresholds& t) {
    ULPMC_EXPECTS(t.shed >= t.coarse && t.coarse >= t.tight && t.tight >= t.silence);
    if (charge_fraction > t.shed) return DegradeLevel::Full;
    if (charge_fraction > t.coarse) return DegradeLevel::ShedLeads;
    if (charge_fraction > t.tight) return DegradeLevel::CoarseTx;
    if (charge_fraction > t.silence) return DegradeLevel::TightProtect;
    return DegradeLevel::RadioSilence;
}

} // namespace ulpmc::scenario
