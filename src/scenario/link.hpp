// Stateful BLE link (DESIGN.md §12): power::RadioModel prices a transfer,
// but a device lifetime needs the protocol around it — a bounded transmit
// buffer fed block by block, per-packet loss, ack timeouts, exponential
// backoff with seeded jitter, and a drop policy when the buffer saturates
// during a drought. The link tracks WHAT the buffered bits represent
// (sample counts and their fidelity), so the lifetime report can state
// exactly which samples reached the peer, which arrived degraded and
// which were lost — the delivered-sample fraction the degradation ladder
// is judged on.
//
// Determinism: all randomness flows through one seeded xoshiro stream
// owned by the link, consumed in strict block order by step(). Two links
// built with the same seed and stepped with the same schedule are
// bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/rng.hpp"
#include "power/radio.hpp"

namespace ulpmc::scenario {

/// Fidelity of a buffered block's samples, decided by the producer.
enum class TxQuality : std::uint8_t {
    Full,     ///< full-fidelity compressed block
    Degraded, ///< ladder-coarsened block (reduced bit budget)
    Corrupt   ///< SDC block shipped by an unverified device
};

struct LinkConfig {
    power::RadioModel radio{};
    /// Transmit-buffer bound in bits. Enqueues past it evict the OLDEST
    /// buffered blocks (freshest-data-wins: during a drought the clinical
    /// value is in the most recent samples).
    std::size_t buffer_bits = 256 * 1024;
    /// First retry delay after a lost packet; doubles per consecutive
    /// loss up to backoff_max_s, with +-25% seeded jitter.
    double backoff_base_s = 0.25;
    double backoff_max_s = 8.0;
    /// Packets attempted per step() at most (modem drain-rate bound).
    unsigned max_packets_per_step = 64;
};

/// Cumulative link counters (monotonic; the engine reads deltas).
struct LinkStats {
    std::uint64_t packets_sent = 0;  ///< on-air attempts (losses included)
    std::uint64_t packets_lost = 0;  ///< attempts that drew a loss
    std::uint64_t bits_delivered = 0;
    std::uint64_t bits_dropped = 0;  ///< evicted by the buffer bound
    std::uint64_t backoffs = 0;      ///< backoff windows entered
    double max_backoff_s = 0;        ///< longest window entered
    double tx_energy_j = 0;          ///< radio energy, losses included
    std::uint64_t samples_delivered = 0;          ///< TxQuality::Full
    std::uint64_t samples_delivered_degraded = 0; ///< TxQuality::Degraded
    std::uint64_t samples_delivered_corrupt = 0;  ///< TxQuality::Corrupt
    std::uint64_t samples_dropped = 0;            ///< evicted, any quality
};

class BleLink {
public:
    BleLink(const LinkConfig& cfg, std::uint64_t seed);

    /// Buffers one block's compressed payload. Evicts oldest blocks when
    /// the bound is exceeded (counted in bits_dropped/samples_dropped).
    void enqueue(std::size_t bits, std::uint64_t samples, TxQuality quality);

    /// One control tick of `dt_s` seconds. While the link is `up` and not
    /// backing off, drains buffered blocks packet by packet; each packet
    /// is lost with probability `loss` (energy still spent), and a loss
    /// enters an exponential backoff window. While down, the buffer holds
    /// (a drought is not a loss — no backoff, no retries).
    void step(double dt_s, bool up, double loss);

    std::size_t buffered_bits() const { return buffered_bits_; }
    double backoff_remaining_s() const { return backoff_remaining_s_; }
    unsigned consecutive_losses() const { return consecutive_losses_; }
    const LinkStats& stats() const { return stats_; }

    /// Durable-execution state round-trip (DESIGN.md §9.6): RNG stream,
    /// transmit queue with partial-packet progress, backoff window and the
    /// cumulative counters — everything step() mutates, bit-exact. The
    /// config is reconstructed by the resuming run, not serialized.
    void encode(std::vector<std::uint8_t>& out) const;
    bool decode(ByteReader& in);

private:
    /// One buffered block with partial-transmission progress.
    struct Pending {
        std::size_t bits;
        std::size_t sent_bits = 0;
        std::uint64_t samples;
        TxQuality quality;
    };

    void deliver_credit(const Pending& p);
    void enter_backoff();

    LinkConfig cfg_;
    Rng rng_;
    std::deque<Pending> queue_;
    std::size_t buffered_bits_ = 0;
    double backoff_remaining_s_ = 0;
    unsigned consecutive_losses_ = 0;
    LinkStats stats_;
};

} // namespace ulpmc::scenario
