// Device lifetime scenario engine (DESIGN.md §12).
//
// Composes the pieces every earlier extension built — the streaming ECG
// benchmark (workload), the duty-cycle governor (energy per block
// period), the BLE link (scenario/link), the battery/brownout model
// (scenario/battery), the fault injector (struck blocks) and the online
// upset-rate estimator (lambda-aware adaptation) — into one continuously
// running device walking a scripted timeline (scenario/timeline).
//
// Two policies are compared:
//  * Ladder   — the graceful-degradation device: every block is verified
//               against the golden pipeline (rollback on corruption), and
//               the battery level drives the degradation ladder (shed
//               leads -> coarsen transmission -> tighten protection with
//               lambda-tuned checkpoints + DVFS derating -> radio
//               silence). Arrhythmia phases override the ladder: clinical
//               episodes are monitored at full fidelity regardless of
//               charge.
//  * Baseline — the no-resilience, no-degradation device (watchdog only,
//               so hangs still end): nothing is verified, corrupted
//               blocks ship silently (the SDC channel) and the device
//               burns full power until it browns out.
//
// Affordability and determinism: simulating days of wall time cycle-by-
// cycle is impossible, so the engine simulates the CLUSTER only where it
// matters — once per degradation level to calibrate (cycles, event rates,
// verified outputs), and once per struck block (seeded injection,
// classification against the golden outputs). Unstruck blocks are
// credited from the calibration, which is exact: the firmware is
// block-stateless, so every unperturbed block IS the calibration run
// (the same crediting argument as the campaign layer's memoization).
// Device time advances in fixed chunks of `chunk_blocks` block periods;
// the ladder level and derating decision freeze at each chunk boundary
// (the governor's control tick), struck blocks within a chunk simulate in
// parallel (seeded per block index), and all device state (battery, link,
// estimator) applies strictly in block order. Results are therefore
// bit-identical across engine tiers AND SweepRunner thread counts.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "app/benchmark.hpp"
#include "cluster/config.hpp"
#include "common/types.hpp"
#include "scenario/battery.hpp"
#include "scenario/link.hpp"
#include "scenario/timeline.hpp"
#include "sweep/sweep.hpp"

namespace ulpmc::scenario {

enum class Policy : std::uint8_t { Ladder, Baseline };
const char* policy_name(Policy p);

struct DeviceConfig {
    cluster::ArchKind arch = cluster::ArchKind::UlpmcBank;
    /// Simulator tier for calibration and struck-block runs. No effect on
    /// any reported number (the tiers are stat-identical; pinned by test).
    cluster::SimEngine engine = cluster::SimEngine::Trace;
    std::uint64_t seed = 1;
    Policy policy = Policy::Ladder;
    /// Governor tick: ladder level and derating freeze for this many
    /// block periods; struck blocks inside a chunk simulate in parallel.
    unsigned chunk_blocks = 32;
    /// Simulated lifetime in days; 0 = one pass of the timeline.
    double max_days = 0;
    LinkConfig link{};
    /// Battery thresholds; capacity_j is overridden by the timeline.
    BatteryConfig battery{};
    /// Lambda-aware DVFS derating (ladder only): when the estimated upset
    /// rate crosses `derate_lambda_on` [events/cycle], the device adds
    /// `derate_margin_v` of supply margin — near-threshold SER falls
    /// steeply with voltage, modeled as a `derate_ser_factor` multiplier
    /// on the strike probability — at the quadratic dynamic-energy cost
    /// the V/f model prescribes. Hysteresis via `derate_lambda_off`.
    double derate_lambda_on = 2e-7;
    double derate_lambda_off = 5e-8;
    double derate_margin_v = 0.05;
    double derate_ser_factor = 0.3;
    /// State-of-charge rungs of the degradation ladder (ladder policy
    /// only). Defaults are the hand-set thresholds every pre-fleet
    /// experiment used; bench/ext_fleet_ladder sweeps them.
    LadderThresholds thresholds{};
    /// Watchdog window for every simulated cluster (hangs become traps).
    Cycle watchdog_cycles = 20'000;
};

/// Accumulated over every block a timeline phase governed (cycled passes
/// of the script merge into the same entry).
struct PhaseReport {
    std::string name;
    std::uint64_t blocks = 0;          ///< block periods under this phase
    std::uint64_t brownout_blocks = 0; ///< device was off (regulator out)
    std::uint64_t struck_blocks = 0;   ///< blocks that drew >= 1 upset
    std::uint64_t rollbacks = 0;       ///< verified-and-retried blocks (ladder)
    std::uint64_t sdc_blocks = 0;      ///< corrupted blocks shipped (baseline)
    std::uint64_t trapped_blocks = 0;  ///< blocks lost to a fail-stop (baseline)
    std::uint64_t derated_blocks = 0;  ///< blocks run with SER-derating margin
    std::uint64_t samples_sensed = 0;  ///< samples acquired by live leads
    std::uint64_t samples_shed = 0;    ///< samples not acquired (leads shed / device off)
    double energy_compute_j = 0;    ///< governor-scheduled compute (+ sleep)
    double energy_checkpoint_j = 0; ///< checkpoint traffic
    double energy_reexec_j = 0;     ///< rollback re-execution
    double energy_radio_j = 0;      ///< transmit energy (losses included)
    double harvest_j = 0;           ///< energy harvested during the phase
    double battery_end = 0;         ///< charge fraction after the phase's last block
    double lambda_hat_end = 0;      ///< estimator state after the last block
    unsigned deepest_level = 0;     ///< deepest DegradeLevel entered
};

/// One point of the battery state-of-charge trace.
struct BatterySample {
    double t_s = 0;
    double fraction = 0;
};

struct LifetimeReport {
    Policy policy = Policy::Ladder;
    std::uint64_t seed = 0;
    std::string arch;
    double simulated_s = 0;
    double block_period_s = 0;
    double battery_capacity_j = 0;
    /// Time of the first brownout, -1 if the battery never gave out.
    double first_brownout_s = -1;
    std::uint64_t total_blocks = 0;
    /// Every sample the sensor COULD have acquired (8 leads, all blocks).
    std::uint64_t samples_total = 0;
    /// Good samples at the peer (full + degraded fidelity) / samples_total.
    double delivered_fraction = 0;
    /// Full-fidelity samples only.
    double full_fidelity_fraction = 0;
    std::uint64_t sdc_blocks = 0;
    LinkStats link;
    std::vector<PhaseReport> phases;        ///< one per timeline phase
    std::vector<BatterySample> battery_trace; ///< sampled at phase transitions
};

/// Durable-execution hooks for a lifetime run (DESIGN.md §9.6). The
/// engine's complete mutable state — battery, link, estimator, derating
/// latch, phase reports and battery trace — is encoded at every chunk
/// boundary (the governor tick, the only point where nothing is in
/// flight); a run restarted from such a snapshot replays zero blocks and
/// finishes bit-identical to the uninterrupted run. Integrity (CRC) and
/// config binding are the journal layer's job: the engine only checks
/// structural sanity and asserts on a state that cannot be its own.
struct LifeResume {
    /// Encoded chunk-boundary state to restart from; empty = fresh run.
    std::vector<std::uint8_t> state;
    /// Called after every applied chunk with the state encoded at that
    /// boundary — the bytes a journal should persist. May be empty.
    std::function<void(const std::vector<std::uint8_t>&)> on_chunk;
};

/// Everything the engine needs to credit an unstruck block at one
/// degradation level, measured from a single verified cluster run.
/// Deterministic for a fixed (benchmark, config, block period) — which is
/// what makes the fleet-wide CalibrationCache sound.
struct LevelCalibration {
    cluster::ClusterConfig cfg;
    Cycle clean_cycles = 0;
    std::uint64_t ops = 0;
    /// Governor-scheduled energy for one block period (compute + sleep,
    /// leakage included; checkpoints and radio are charged separately).
    double energy_block_j = 0;
    double v_op = 0;           ///< supply while computing (derating base)
    double energy_cycle_j = 0; ///< compute energy per cluster cycle (T* input)
    std::size_t tx_bits = 0;   ///< compressed payload bits per block
};

/// Thread-safe, shared store of LevelCalibrations for a whole device
/// fleet. Devices sharing a workload cohort and an architecture pay the
/// per-level calibration run exactly once per process; concurrent fleet
/// workers hitting the same key dedupe on a per-key once_flag (distinct
/// keys calibrate in parallel). Cached values are pure functions of their
/// key, so WHICH worker computes one can never leak into any result.
class CalibrationCache {
public:
    /// Returns the calibration stored under `key`, invoking `compute`
    /// exactly once per key across all threads. The reference stays valid
    /// for the cache's lifetime.
    const LevelCalibration& get(const std::string& key,
                                const std::function<LevelCalibration()>& compute);

    std::size_t size() const;

private:
    struct Entry {
        std::once_flag once;
        LevelCalibration cal;
    };
    mutable std::mutex m_;
    std::unordered_map<std::string, std::unique_ptr<Entry>> map_;
};

/// Runs one device lifetime. The per-level calibrations are cached inside
/// the engine, so running both policies through one instance shares them;
/// the fleet layer shares one benchmark and one CalibrationCache across
/// thousands of engine instances instead.
class LifetimeEngine {
public:
    LifetimeEngine(const Timeline& tl, const DeviceConfig& dc);
    /// Fleet flavor: share a prebuilt benchmark (decode-once ProgramImage
    /// included) and optionally a cross-device calibration cache. The
    /// benchmark's own seed governs the patient/workload data; `dc.seed`
    /// governs only strikes and the link — decoupled so one cohort's
    /// benchmark serves many devices.
    LifetimeEngine(const Timeline& tl, const DeviceConfig& dc,
                   std::shared_ptr<const app::EcgBenchmark> bench,
                   CalibrationCache* cache = nullptr);
    ~LifetimeEngine();

    const Timeline& timeline() const { return tl_; }
    const DeviceConfig& device() const { return dc_; }
    const app::EcgBenchmark& benchmark() const { return *bench_; }

    /// Simulates the lifetime. Deterministic for a fixed (timeline, seed):
    /// bit-identical across engine tiers and `pool` thread counts.
    LifetimeReport run(sweep::SweepRunner& pool);
    /// Durable flavor: optionally restarts from an encoded chunk-boundary
    /// snapshot and/or emits one after every chunk (LifeResume above).
    /// Resuming from the final boundary re-runs zero blocks and still
    /// returns the complete report.
    LifetimeReport run(sweep::SweepRunner& pool, const LifeResume& resume);

private:
    const LevelCalibration& calibrate(DegradeLevel level);
    LevelCalibration compute_calibration(DegradeLevel level) const;
    cluster::ClusterConfig config_for(DegradeLevel level) const;

    Timeline tl_;
    DeviceConfig dc_;
    std::shared_ptr<const app::EcgBenchmark> bench_;
    CalibrationCache* cache_ = nullptr; ///< nullptr: own_calib_ only
    /// Resolved per-level calibrations (own or cache-backed), lazily filled.
    std::array<const LevelCalibration*, kDegradeLevelCount> calib_{};
    std::array<std::unique_ptr<LevelCalibration>, kDegradeLevelCount> own_calib_;
};

} // namespace ulpmc::scenario
