#include "scenario/timeline.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace ulpmc::scenario {

namespace {

[[noreturn]] void fail(unsigned line, const std::string& what) {
    throw TimelineError("line " + std::to_string(line) + ": " + what);
}

double parse_double(unsigned line, const std::string& key, const std::string& value) {
    double v = 0;
    const char* begin = value.data();
    const char* end = begin + value.size();
    const auto [p, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || p != end || !std::isfinite(v))
        fail(line, key + ": '" + value + "' is not a number");
    return v;
}

bool parse_bool01(unsigned line, const std::string& key, const std::string& value) {
    if (value == "0") return false;
    if (value == "1") return true;
    fail(line, key + ": '" + value + "' is not 0 or 1");
}

} // namespace

double Timeline::total_s() const {
    double t = 0;
    for (const Phase& p : phases) t += p.duration_s;
    return t;
}

std::size_t Timeline::phase_index_at(double t_s) const {
    const double total = total_s();
    double t = std::fmod(t_s, total);
    if (t < 0) t = 0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
        if (t < phases[i].duration_s) return i;
        t -= phases[i].duration_s;
    }
    return phases.size() - 1; // fmod rounding at the pass boundary
}

Timeline parse_timeline(std::istream& in) {
    Timeline tl;
    bool saw_period = false;
    bool saw_battery = false;
    std::string raw;
    unsigned line = 0;
    while (std::getline(in, raw)) {
        ++line;
        const auto hash = raw.find('#');
        if (hash != std::string::npos) raw.erase(hash);
        std::istringstream ls(raw);
        std::string word;
        if (!(ls >> word)) continue; // blank / comment-only line
        if (word == "block_period_s") {
            if (saw_period) fail(line, "duplicate block_period_s");
            std::string v;
            if (!(ls >> v)) fail(line, "block_period_s needs a value");
            tl.block_period_s = parse_double(line, "block_period_s", v);
            if (tl.block_period_s <= 0) fail(line, "block_period_s must be > 0");
            saw_period = true;
        } else if (word == "battery_j") {
            if (saw_battery) fail(line, "duplicate battery_j");
            std::string v;
            if (!(ls >> v)) fail(line, "battery_j needs a value");
            tl.battery_j = parse_double(line, "battery_j", v);
            if (tl.battery_j <= 0) fail(line, "battery_j must be > 0");
            saw_battery = true;
        } else if (word == "phase") {
            Phase ph;
            std::string dur;
            if (!(ls >> ph.name >> dur)) fail(line, "phase needs NAME and DURATION_S");
            ph.duration_s = parse_double(line, "duration", dur);
            if (ph.duration_s <= 0) fail(line, "phase duration must be > 0");
            std::string kv;
            while (ls >> kv) {
                const auto eq = kv.find('=');
                if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size())
                    fail(line, "'" + kv + "' is not key=value");
                const std::string key = kv.substr(0, eq);
                const std::string value = kv.substr(eq + 1);
                if (key == "lambda") {
                    ph.lambda = parse_double(line, key, value);
                    if (ph.lambda < 0) fail(line, "lambda must be >= 0");
                } else if (key == "ble") {
                    if (value == "up") {
                        ph.ble_up = true;
                    } else if (value == "down") {
                        ph.ble_up = false;
                    } else {
                        fail(line, "ble: '" + value + "' is not up or down");
                    }
                } else if (key == "ble_loss") {
                    ph.ble_loss = parse_double(line, key, value);
                    if (ph.ble_loss < 0 || ph.ble_loss > 1)
                        fail(line, "ble_loss must be in [0, 1]");
                } else if (key == "harvest_uw") {
                    ph.harvest_uw = parse_double(line, key, value);
                    if (ph.harvest_uw < 0) fail(line, "harvest_uw must be >= 0");
                } else if (key == "arrhythmia") {
                    ph.arrhythmia = parse_bool01(line, key, value);
                } else {
                    fail(line, "unknown phase key '" + key + "'");
                }
            }
            tl.phases.push_back(std::move(ph));
        } else {
            fail(line, "unknown directive '" + word + "'");
        }
    }
    if (tl.phases.empty()) throw TimelineError("timeline has no phases");
    return tl;
}

Timeline load_timeline(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw TimelineError(path + ": cannot open");
    return parse_timeline(in);
}

} // namespace ulpmc::scenario
