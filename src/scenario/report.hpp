// Lifetime report emission: the JSON consumed by tools/check_lifetime.py
// and the determinism test, plus the human-readable phase table the
// ulpmc-life driver prints.
//
// The JSON is hand-written with default ostream float formatting (the
// BENCH_fault_coverage.json idiom): identical reports serialize to
// byte-identical text, which is exactly what the cross-engine/cross-
// thread-count determinism test pins. Deliberately ABSENT from the JSON:
// the simulator engine tier and the thread count — they must not be able
// to leak into the bytes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/engine.hpp"

namespace ulpmc::scenario {

/// Writes `{"timeline": ..., "runs": [...]}` for a set of lifetime runs
/// (typically the ladder/baseline pair over one timeline).
void write_json(std::ostream& os, const std::string& timeline_name,
                const std::vector<LifetimeReport>& runs);

/// Human-readable summary: headline numbers plus the per-phase table.
void print_summary(std::ostream& os, const LifetimeReport& rep);

} // namespace ulpmc::scenario
