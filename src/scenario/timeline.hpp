// Scripted lifetime timelines (DESIGN.md §12): the environment a wearable
// device lives through, as a sequence of named phases. Each phase fixes
// the upset rate (radiation environment), the BLE link condition (up/down
// and per-packet loss), the harvest input and the clinical context
// (arrhythmia episodes force full-fidelity monitoring). The lifetime
// engine (scenario/engine.hpp) walks this script block period by block
// period; everything downstream of the parse is deterministic, so one
// timeline file plus one seed fully determines a device lifetime.
//
// File format (one directive per line, '#' comments, blank lines ignored):
//
//   block_period_s 2.0           # seconds of wall time per ECG block
//   battery_j 4.0                # battery capacity in joules
//   phase NAME DURATION_S [key=value ...]
//
// Phase keys: lambda (upsets per simulated cycle, default 0), ble
// (up|down, default up), ble_loss (per-packet loss probability, default
// 0), harvest_uw (harvester input in microwatts, default 0), arrhythmia
// (0|1, default 0). Unknown directives/keys, malformed numbers and
// out-of-range values are rejected with the offending line number —
// a corrupt timeline must never silently configure a device.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace ulpmc::scenario {

/// Parse failure: what was wrong, and on which line.
class TimelineError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// One scripted environment phase.
struct Phase {
    std::string name;
    double duration_s = 0;
    double lambda = 0;      ///< expected upsets per simulated cluster cycle
    bool ble_up = true;     ///< false: BLE drought (peer out of range)
    double ble_loss = 0;    ///< per-packet loss probability while up
    double harvest_uw = 0;  ///< energy-harvester input [uW]
    bool arrhythmia = false; ///< clinical episode: full fidelity required
};

/// A parsed timeline: header knobs plus the phase script.
struct Timeline {
    double block_period_s = 2.0;
    double battery_j = 4.0;
    std::vector<Phase> phases;

    /// Sum of the phase durations (one pass of the script).
    double total_s() const;

    /// Phase index active at time `t_s`, cycling the script for lifetimes
    /// longer than one pass (--days runs the schedule on repeat).
    std::size_t phase_index_at(double t_s) const;
};

/// Parses a timeline from a stream. Throws TimelineError on any defect.
Timeline parse_timeline(std::istream& in);

/// Loads and parses `path`. Throws TimelineError (including for an
/// unreadable or empty file).
Timeline load_timeline(const std::string& path);

} // namespace ulpmc::scenario
