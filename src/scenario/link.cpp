#include "scenario/link.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/serial.hpp"

namespace ulpmc::scenario {

BleLink::BleLink(const LinkConfig& cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {
    ULPMC_EXPECTS(cfg_.radio.packet_payload_bits > 0);
    ULPMC_EXPECTS(cfg_.buffer_bits > 0);
    ULPMC_EXPECTS(cfg_.backoff_base_s > 0 && cfg_.backoff_max_s >= cfg_.backoff_base_s);
}

void BleLink::deliver_credit(const Pending& p) {
    switch (p.quality) {
    case TxQuality::Full:
        stats_.samples_delivered += p.samples;
        break;
    case TxQuality::Degraded:
        stats_.samples_delivered_degraded += p.samples;
        break;
    case TxQuality::Corrupt:
        stats_.samples_delivered_corrupt += p.samples;
        break;
    }
}

void BleLink::enqueue(std::size_t bits, std::uint64_t samples, TxQuality quality) {
    if (bits == 0) return;
    queue_.push_back({bits, 0, samples, quality});
    buffered_bits_ += bits;
    // Freshest-data-wins eviction: during a drought the clinically useful
    // samples are the most recent ones, so saturation sheds the oldest
    // blocks whole (partial blocks are useless to the decoder anyway).
    while (buffered_bits_ > cfg_.buffer_bits && queue_.size() > 1) {
        const Pending& victim = queue_.front();
        stats_.bits_dropped += victim.bits - victim.sent_bits;
        stats_.samples_dropped += victim.samples;
        buffered_bits_ -= victim.bits - victim.sent_bits;
        queue_.pop_front();
    }
}

void BleLink::enter_backoff() {
    ++consecutive_losses_;
    ++stats_.backoffs;
    const unsigned exp = std::min(consecutive_losses_ - 1, 16u);
    const double nominal =
        std::min(cfg_.backoff_max_s, cfg_.backoff_base_s * static_cast<double>(1u << exp));
    // +-25% seeded jitter, the standard desynchronizer for contending
    // transmitters; capped AFTER jitter so backoff_max_s is a hard bound.
    const double jittered = nominal * (0.75 + 0.5 * rng_.uniform());
    backoff_remaining_s_ = std::min(jittered, cfg_.backoff_max_s);
    stats_.max_backoff_s = std::max(stats_.max_backoff_s, backoff_remaining_s_);
}

void BleLink::step(double dt_s, bool up, double loss) {
    if (!up) {
        // Drought: the peer is out of range. Pending backoff does not
        // tick down either — the modem is not even listening for acks.
        return;
    }
    if (backoff_remaining_s_ > 0) {
        backoff_remaining_s_ -= dt_s;
        if (backoff_remaining_s_ > 0) return;
        backoff_remaining_s_ = 0;
    }
    for (unsigned n = 0; n < cfg_.max_packets_per_step && !queue_.empty(); ++n) {
        Pending& head = queue_.front();
        const std::size_t chunk =
            std::min(head.bits - head.sent_bits, cfg_.radio.packet_payload_bits);
        // One packet on air: payload energy plus the per-packet overhead,
        // spent whether or not the packet survives.
        stats_.tx_energy_j += cfg_.radio.tx_energy(chunk);
        ++stats_.packets_sent;
        if (rng_.uniform() < loss) {
            ++stats_.packets_lost;
            enter_backoff();
            return; // ack timeout consumed the rest of this tick
        }
        consecutive_losses_ = 0;
        head.sent_bits += chunk;
        buffered_bits_ -= chunk;
        stats_.bits_delivered += chunk;
        if (head.sent_bits == head.bits) {
            deliver_credit(head);
            queue_.pop_front();
        }
    }
}

void BleLink::encode(std::vector<std::uint8_t>& out) const {
    rng_.encode(out);
    put_raw(out, static_cast<std::uint64_t>(queue_.size()));
    for (const Pending& p : queue_) {
        put_raw(out, static_cast<std::uint64_t>(p.bits));
        put_raw(out, static_cast<std::uint64_t>(p.sent_bits));
        put_raw(out, p.samples);
        put_raw(out, static_cast<std::uint8_t>(p.quality));
    }
    put_f64(out, backoff_remaining_s_);
    put_raw(out, static_cast<std::uint32_t>(consecutive_losses_));
    put_raw(out, stats_.packets_sent);
    put_raw(out, stats_.packets_lost);
    put_raw(out, stats_.bits_delivered);
    put_raw(out, stats_.bits_dropped);
    put_raw(out, stats_.backoffs);
    put_f64(out, stats_.max_backoff_s);
    put_f64(out, stats_.tx_energy_j);
    put_raw(out, stats_.samples_delivered);
    put_raw(out, stats_.samples_delivered_degraded);
    put_raw(out, stats_.samples_delivered_corrupt);
    put_raw(out, stats_.samples_dropped);
}

bool BleLink::decode(ByteReader& in) {
    Rng rng = rng_;
    if (!rng.decode(in)) return false;
    const auto count = in.get<std::uint64_t>();
    // Sanity bound: a genuine queue never holds more blocks than the
    // buffer bound admits one-bit blocks (plus the freshest overflow one).
    if (in.fail() || count > cfg_.buffer_bits + 1) return false;
    std::deque<Pending> queue;
    std::size_t buffered = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        Pending p{};
        p.bits = static_cast<std::size_t>(in.get<std::uint64_t>());
        p.sent_bits = static_cast<std::size_t>(in.get<std::uint64_t>());
        p.samples = in.get<std::uint64_t>();
        const auto q = in.get<std::uint8_t>();
        if (in.fail() || p.bits == 0 || p.sent_bits >= p.bits ||
            q > static_cast<std::uint8_t>(TxQuality::Corrupt))
            return false;
        p.quality = static_cast<TxQuality>(q);
        buffered += p.bits - p.sent_bits;
        queue.push_back(p);
    }
    const double backoff = in.get_f64();
    const auto losses = in.get<std::uint32_t>();
    LinkStats stats;
    stats.packets_sent = in.get<std::uint64_t>();
    stats.packets_lost = in.get<std::uint64_t>();
    stats.bits_delivered = in.get<std::uint64_t>();
    stats.bits_dropped = in.get<std::uint64_t>();
    stats.backoffs = in.get<std::uint64_t>();
    stats.max_backoff_s = in.get_f64();
    stats.tx_energy_j = in.get_f64();
    stats.samples_delivered = in.get<std::uint64_t>();
    stats.samples_delivered_degraded = in.get<std::uint64_t>();
    stats.samples_delivered_corrupt = in.get<std::uint64_t>();
    stats.samples_dropped = in.get<std::uint64_t>();
    if (in.fail() || backoff < 0) return false;
    rng_ = rng;
    queue_ = std::move(queue);
    buffered_bits_ = buffered;
    backoff_remaining_s_ = backoff;
    consecutive_losses_ = losses;
    stats_ = stats;
    return true;
}

} // namespace ulpmc::scenario
