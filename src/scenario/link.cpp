#include "scenario/link.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ulpmc::scenario {

BleLink::BleLink(const LinkConfig& cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {
    ULPMC_EXPECTS(cfg_.radio.packet_payload_bits > 0);
    ULPMC_EXPECTS(cfg_.buffer_bits > 0);
    ULPMC_EXPECTS(cfg_.backoff_base_s > 0 && cfg_.backoff_max_s >= cfg_.backoff_base_s);
}

void BleLink::deliver_credit(const Pending& p) {
    switch (p.quality) {
    case TxQuality::Full:
        stats_.samples_delivered += p.samples;
        break;
    case TxQuality::Degraded:
        stats_.samples_delivered_degraded += p.samples;
        break;
    case TxQuality::Corrupt:
        stats_.samples_delivered_corrupt += p.samples;
        break;
    }
}

void BleLink::enqueue(std::size_t bits, std::uint64_t samples, TxQuality quality) {
    if (bits == 0) return;
    queue_.push_back({bits, 0, samples, quality});
    buffered_bits_ += bits;
    // Freshest-data-wins eviction: during a drought the clinically useful
    // samples are the most recent ones, so saturation sheds the oldest
    // blocks whole (partial blocks are useless to the decoder anyway).
    while (buffered_bits_ > cfg_.buffer_bits && queue_.size() > 1) {
        const Pending& victim = queue_.front();
        stats_.bits_dropped += victim.bits - victim.sent_bits;
        stats_.samples_dropped += victim.samples;
        buffered_bits_ -= victim.bits - victim.sent_bits;
        queue_.pop_front();
    }
}

void BleLink::enter_backoff() {
    ++consecutive_losses_;
    ++stats_.backoffs;
    const unsigned exp = std::min(consecutive_losses_ - 1, 16u);
    const double nominal =
        std::min(cfg_.backoff_max_s, cfg_.backoff_base_s * static_cast<double>(1u << exp));
    // +-25% seeded jitter, the standard desynchronizer for contending
    // transmitters; capped AFTER jitter so backoff_max_s is a hard bound.
    const double jittered = nominal * (0.75 + 0.5 * rng_.uniform());
    backoff_remaining_s_ = std::min(jittered, cfg_.backoff_max_s);
    stats_.max_backoff_s = std::max(stats_.max_backoff_s, backoff_remaining_s_);
}

void BleLink::step(double dt_s, bool up, double loss) {
    if (!up) {
        // Drought: the peer is out of range. Pending backoff does not
        // tick down either — the modem is not even listening for acks.
        return;
    }
    if (backoff_remaining_s_ > 0) {
        backoff_remaining_s_ -= dt_s;
        if (backoff_remaining_s_ > 0) return;
        backoff_remaining_s_ = 0;
    }
    for (unsigned n = 0; n < cfg_.max_packets_per_step && !queue_.empty(); ++n) {
        Pending& head = queue_.front();
        const std::size_t chunk =
            std::min(head.bits - head.sent_bits, cfg_.radio.packet_payload_bits);
        // One packet on air: payload energy plus the per-packet overhead,
        // spent whether or not the packet survives.
        stats_.tx_energy_j += cfg_.radio.tx_energy(chunk);
        ++stats_.packets_sent;
        if (rng_.uniform() < loss) {
            ++stats_.packets_lost;
            enter_backoff();
            return; // ack timeout consumed the rest of this tick
        }
        consecutive_losses_ = 0;
        head.sent_bits += chunk;
        buffered_bits_ -= chunk;
        stats_.bits_delivered += chunk;
        if (head.sent_bits == head.bits) {
            deliver_credit(head);
            queue_.pop_front();
        }
    }
}

} // namespace ulpmc::scenario
