#include "scenario/report.hpp"

#include <iomanip>
#include <ostream>

namespace ulpmc::scenario {

namespace {

void write_link(std::ostream& os, const LinkStats& l, const char* indent) {
    os << indent << "\"packets_sent\": " << l.packets_sent << ",\n";
    os << indent << "\"packets_lost\": " << l.packets_lost << ",\n";
    os << indent << "\"bits_delivered\": " << l.bits_delivered << ",\n";
    os << indent << "\"bits_dropped\": " << l.bits_dropped << ",\n";
    os << indent << "\"backoffs\": " << l.backoffs << ",\n";
    os << indent << "\"max_backoff_s\": " << l.max_backoff_s << ",\n";
    os << indent << "\"tx_energy_j\": " << l.tx_energy_j << ",\n";
    os << indent << "\"samples_delivered\": " << l.samples_delivered << ",\n";
    os << indent << "\"samples_delivered_degraded\": " << l.samples_delivered_degraded << ",\n";
    os << indent << "\"samples_delivered_corrupt\": " << l.samples_delivered_corrupt << ",\n";
    os << indent << "\"samples_dropped\": " << l.samples_dropped << "\n";
}

void write_run(std::ostream& os, const LifetimeReport& r) {
    os << "    {\n";
    os << "      \"policy\": \"" << policy_name(r.policy) << "\",\n";
    os << "      \"seed\": " << r.seed << ",\n";
    os << "      \"arch\": \"" << r.arch << "\",\n";
    os << "      \"simulated_s\": " << r.simulated_s << ",\n";
    os << "      \"block_period_s\": " << r.block_period_s << ",\n";
    os << "      \"battery_j\": " << r.battery_capacity_j << ",\n";
    os << "      \"first_brownout_s\": " << r.first_brownout_s << ",\n";
    os << "      \"total_blocks\": " << r.total_blocks << ",\n";
    os << "      \"samples_total\": " << r.samples_total << ",\n";
    os << "      \"delivered_fraction\": " << r.delivered_fraction << ",\n";
    os << "      \"full_fidelity_fraction\": " << r.full_fidelity_fraction << ",\n";
    os << "      \"sdc_blocks\": " << r.sdc_blocks << ",\n";
    os << "      \"link\": {\n";
    write_link(os, r.link, "        ");
    os << "      },\n";
    os << "      \"phases\": [\n";
    for (std::size_t i = 0; i < r.phases.size(); ++i) {
        const PhaseReport& p = r.phases[i];
        os << "        {\n";
        os << "          \"name\": \"" << p.name << "\",\n";
        os << "          \"blocks\": " << p.blocks << ",\n";
        os << "          \"brownout_blocks\": " << p.brownout_blocks << ",\n";
        os << "          \"struck_blocks\": " << p.struck_blocks << ",\n";
        os << "          \"rollbacks\": " << p.rollbacks << ",\n";
        os << "          \"sdc_blocks\": " << p.sdc_blocks << ",\n";
        os << "          \"trapped_blocks\": " << p.trapped_blocks << ",\n";
        os << "          \"derated_blocks\": " << p.derated_blocks << ",\n";
        os << "          \"samples_sensed\": " << p.samples_sensed << ",\n";
        os << "          \"samples_shed\": " << p.samples_shed << ",\n";
        os << "          \"energy_compute_j\": " << p.energy_compute_j << ",\n";
        os << "          \"energy_checkpoint_j\": " << p.energy_checkpoint_j << ",\n";
        os << "          \"energy_reexec_j\": " << p.energy_reexec_j << ",\n";
        os << "          \"energy_radio_j\": " << p.energy_radio_j << ",\n";
        os << "          \"harvest_j\": " << p.harvest_j << ",\n";
        os << "          \"battery_end\": " << p.battery_end << ",\n";
        os << "          \"lambda_hat_end\": " << p.lambda_hat_end << ",\n";
        os << "          \"deepest_level\": \""
           << level_name(static_cast<DegradeLevel>(p.deepest_level)) << "\"\n";
        os << "        }" << (i + 1 < r.phases.size() ? "," : "") << "\n";
    }
    os << "      ],\n";
    os << "      \"battery_trace\": [\n";
    for (std::size_t i = 0; i < r.battery_trace.size(); ++i) {
        const BatterySample& b = r.battery_trace[i];
        os << "        {\"t_s\": " << b.t_s << ", \"fraction\": " << b.fraction << "}"
           << (i + 1 < r.battery_trace.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }";
}

} // namespace

void write_json(std::ostream& os, const std::string& timeline_name,
                const std::vector<LifetimeReport>& runs) {
    os << "{\n";
    os << "  \"timeline\": \"" << timeline_name << "\",\n";
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        write_run(os, runs[i]);
        os << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

void print_summary(std::ostream& os, const LifetimeReport& rep) {
    os << "policy " << policy_name(rep.policy) << "  seed " << rep.seed << "  arch " << rep.arch
       << "  " << rep.simulated_s << " s simulated (" << rep.total_blocks << " blocks of "
       << rep.block_period_s << " s)\n";
    os << "battery " << rep.battery_capacity_j << " J";
    if (rep.first_brownout_s >= 0)
        os << ", first brownout at " << rep.first_brownout_s << " s";
    else
        os << ", never browned out";
    os << "\n";
    os << "delivered " << std::fixed << std::setprecision(2) << 100.0 * rep.delivered_fraction
       << "% of samples (" << 100.0 * rep.full_fidelity_fraction << "% full fidelity), "
       << rep.sdc_blocks << " SDC blocks\n";
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
    os << "link: " << rep.link.packets_sent << " packets (" << rep.link.packets_lost
       << " lost, " << rep.link.backoffs << " backoffs, max backoff " << rep.link.max_backoff_s
       << " s), " << rep.link.samples_dropped << " samples evicted\n\n";

    os << std::left << std::setw(14) << "phase" << std::right << std::setw(8) << "blocks"
       << std::setw(8) << "struck" << std::setw(8) << "rollbk" << std::setw(6) << "sdc"
       << std::setw(8) << "brown" << std::setw(10) << "E_cmp[J]" << std::setw(10) << "E_rad[J]"
       << std::setw(9) << "batt%" << std::setw(15) << "deepest\n";
    for (const PhaseReport& p : rep.phases) {
        if (p.blocks == 0) continue;
        os << std::left << std::setw(14) << p.name << std::right << std::setw(8) << p.blocks
           << std::setw(8) << p.struck_blocks << std::setw(8) << p.rollbacks << std::setw(6)
           << p.sdc_blocks << std::setw(8) << p.brownout_blocks << std::setw(10)
           << std::setprecision(3) << p.energy_compute_j << std::setw(10) << p.energy_radio_j
           << std::setw(9) << std::setprecision(1) << std::fixed << 100.0 * p.battery_end;
        os.unsetf(std::ios::fixed);
        os << std::setprecision(6) << std::setw(14)
           << level_name(static_cast<DegradeLevel>(p.deepest_level)) << "\n";
    }
}

} // namespace ulpmc::scenario
