// Battery and brownout model (DESIGN.md §12), plus the graceful-
// degradation ladder it drives. The battery is a simple charge reservoir
// (ULP wearables draw far below the rate where coin-cell efficiency
// curves matter) with a brownout/restart hysteresis: below the brownout
// threshold the regulator drops out and the device is off until harvest
// refills it past the restart threshold — monitoring gaps, not crashes.
//
// The ladder maps state-of-charge to a degradation level; the lifetime
// engine translates levels into device configuration (leads, transmit
// fidelity, protection tier, radio policy). Thresholds deliberately have
// no hysteresis of their own: the engine only evaluates the ladder at
// chunk boundaries (its governor tick), which bounds oscillation.
#pragma once

#include <cstdint>
#include <vector>

namespace ulpmc {
class ByteReader;
}

namespace ulpmc::scenario {

struct BatteryConfig {
    double capacity_j = 4.0;
    double initial_fraction = 1.0;
    /// Below this fraction the regulator browns out (device off).
    double brownout_fraction = 0.02;
    /// Charge fraction required to restart after a brownout (hysteresis).
    double restart_fraction = 0.05;
};

class Battery {
public:
    explicit Battery(const BatteryConfig& cfg);

    /// Removes `j` joules (clamped at empty); may enter brownout.
    void drain(double j);
    /// Adds `w` watts for `dt_s` seconds (clamped at capacity); may clear
    /// a brownout once the restart threshold is reached.
    void harvest(double w, double dt_s);

    double charge_j() const { return charge_j_; }
    double charge_fraction() const { return charge_j_ / cfg_.capacity_j; }
    bool browned_out() const { return browned_out_; }

    /// Durable-execution state round-trip (DESIGN.md §9.6): charge and
    /// brownout latch, bit-exact. The config is NOT serialized — a resume
    /// reconstructs it from the run's own options and must match.
    void encode(std::vector<std::uint8_t>& out) const;
    bool decode(ByteReader& in);

private:
    BatteryConfig cfg_;
    double charge_j_;
    bool browned_out_ = false;
};

/// The graceful-degradation ladder, shallowest to deepest. Each level
/// includes every shallower level's measures.
enum class DegradeLevel : std::uint8_t {
    Full = 0,     ///< > 60% charge: 8 leads, full fidelity
    ShedLeads,    ///< <= 60%: shed half the ECG leads (8 -> 4 cores)
    CoarseTx,     ///< <= 40%: halve the transmitted bit budget per block
    TightProtect, ///< <= 25%: TMR + DM scrub + lambda-tuned checkpoints
    RadioSilence  ///< <= 10%: buffer-and-hold, radio off until recovery
};
inline constexpr unsigned kDegradeLevelCount = 5;

/// Display name ("full", "shed-leads", ...): JSON/report keys.
const char* level_name(DegradeLevel l);

/// State-of-charge thresholds driving the ladder: the device degrades to a
/// level once the charge fraction drops to (or below) its threshold. Must
/// be non-increasing shallow-to-deep. The defaults are the hand-set rungs
/// every earlier experiment used; the fleet threshold-sweep bench
/// (bench/ext_fleet_ladder) explores the space around them.
struct LadderThresholds {
    double shed = 0.60;    ///< <= shed: ShedLeads
    double coarse = 0.40;  ///< <= coarse: CoarseTx
    double tight = 0.25;   ///< <= tight: TightProtect
    double silence = 0.10; ///< <= silence: RadioSilence
};

/// Level the ladder prescribes at `charge_fraction` state-of-charge.
DegradeLevel level_for_charge(double charge_fraction,
                              const LadderThresholds& t = LadderThresholds{});

} // namespace ulpmc::scenario
