// Mesh-of-Trees crossbar interconnect (paper §III-B, after Rahimi et al.,
// DATE'11): connects N processor ports to M memory banks with one-cycle
// access, per-bank round-robin arbitration under conflicts, and an
// optional read-broadcast that serves all same-address readers with a
// single bank access (the paper's key energy feature).
//
// The class is purely combinational-per-cycle: callers present one request
// per master and call arbitrate(); granted accesses are then applied to
// the banks by the caller (the cluster). Fairness is implemented as a
// rotating-priority scheme — the highest-priority master index advances
// every cycle — which distributes grants round-robin over time while
// guaranteeing forward progress for multi-port instructions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace ulpmc::xbar {

/// What a master asks of the interconnect this cycle.
struct Request {
    bool active = false;
    bool is_write = false;
    BankId bank = 0;
    std::uint32_t offset = 0; ///< cell offset within the bank
};

/// Per-master outcome of one arbitration round.
struct Grant {
    bool granted = false;
    /// True when this grant rode along on another master's bank access
    /// (read broadcast) instead of occupying the bank port itself.
    bool broadcast = false;
    /// Fault model only (DESIGN.md §9): the grant register flipped high for
    /// a master the arbiter actually denied. The master latches whatever is
    /// on the bank port — the WINNER's word at `hijack_offset` — for a
    /// read, and a hijacked write is silently lost (the winner holds the
    /// port). Never set in fault-free operation.
    bool hijacked = false;
    std::uint32_t hijack_offset = 0;
};

/// Aggregate statistics over the run (inputs to the energy model and the
/// §IV-C2 access-count experiment).
struct XbarStats {
    std::uint64_t requests = 0;       ///< master-cycles with an active request
    std::uint64_t grants = 0;         ///< requests served (incl. broadcast riders)
    std::uint64_t bank_accesses = 0;  ///< physical bank port activations
    std::uint64_t broadcast_riders = 0; ///< grants served without a bank access
    std::uint64_t denied = 0;         ///< master-cycles stalled by a conflict
    std::uint64_t conflict_cycles = 0; ///< cycles in which >=1 master was denied
    std::uint64_t hijacked_grants = 0; ///< grant-register upsets that corrupted a master
    std::uint64_t selfcheck_fixes = 0; ///< spurious grants suppressed by the self-check
    std::uint64_t selfcheck_resyncs = 0; ///< stuck RR pointers repaired by the self-check

    friend bool operator==(const XbarStats&, const XbarStats&) = default;
};

/// A one-shot arbitration upset (fault-injection extension, DESIGN.md §9).
/// Armed with Crossbar::inject_glitch(), applied to the next arbitration
/// round, then cleared. Both flavors are absorbed by the stall/retry
/// protocol — the denied master simply re-arbitrates next cycle — so the
/// architectural outcome is a stall, never corruption.
struct Glitch {
    enum class Kind : std::uint8_t {
        DroppedGrant,   ///< grant signal glitches low after arbitration:
                        ///< the bank port fires but the master latches
                        ///< nothing and must retry
        SpuriousDenial  ///< the request never reaches the arbiter this
                        ///< cycle (a competing master may win instead)
    };
    Kind kind = Kind::DroppedGrant;
    unsigned master = 0;
};

/// An upset of the arbiter's own sequential state (DESIGN.md §9). Unlike a
/// Glitch — which the stall/retry protocol absorbs — arbiter-state upsets
/// can corrupt data or starve masters:
///   RrStuck: the rotating-priority head register freezes at `head`; under
///     persistent conflict the low-priority masters starve (watchdog/hang).
///     Persists until repaired (self-checking arbiter) or rolled back.
///   GrantFlip: the grant register of `master` flips high on the next
///     conflict cycle that actually denies it. The master latches the bank
///     port mid-transfer — the winner's word, wrong offset — i.e. a broken
///     read-broadcast / double-grant, a silent-corruption channel. A
///     hijacked write grant loses the store (the winner holds the port).
///     One-shot: consumed at the next full arbitration round.
struct ArbiterUpset {
    enum class Kind : std::uint8_t { RrStuck, GrantFlip };
    Kind kind = Kind::GrantFlip;
    unsigned master = 0; ///< GrantFlip target (ignored for RrStuck)
    unsigned head = 0;   ///< RrStuck frozen priority head (ignored for GrantFlip)
};

/// Saved mutable state of one crossbar (Cluster snapshots): statistics,
/// the denial-hysteresis bit, and any armed one-shot glitch.
struct XbarSnapshot {
    XbarStats stats;
    bool last_denied = false;
    bool glitch_armed = false;
    Glitch glitch;
    bool rr_stuck = false;
    unsigned rr_head = 0;
    bool flip_armed = false;
    unsigned flip_master = 0;
};

/// One crossbar instance (I-Xbar: 8x8, D-Xbar: 8x16 in the paper).
class Crossbar {
public:
    /// `broadcast` enables same-address read merging (the proposed
    /// architecture); the mc-ref baseline interconnect disables it.
    Crossbar(unsigned masters, unsigned banks, bool broadcast);

    /// Reconfigures in place to the freshly-constructed state of
    /// Crossbar(masters, banks, broadcast): statistics cleared, hysteresis
    /// and glitch disarmed, fast path back to its default. Scratch buffers
    /// are reused, so a same-geometry reset performs no heap allocation.
    void reset(unsigned masters, unsigned banks, bool broadcast);

    /// Copies the mutable state (stats, hysteresis, armed glitch) out /
    /// back; the geometry is configuration and is not part of a snapshot.
    void save(XbarSnapshot& out) const {
        out.stats = stats_;
        out.last_denied = last_denied_;
        out.glitch_armed = glitch_armed_;
        out.glitch = glitch_;
        out.rr_stuck = rr_stuck_;
        out.rr_head = rr_head_;
        out.flip_armed = flip_armed_;
        out.flip_master = flip_master_;
    }
    void restore(const XbarSnapshot& s) {
        stats_ = s.stats;
        last_denied_ = s.last_denied;
        glitch_armed_ = s.glitch_armed;
        glitch_ = s.glitch;
        rr_stuck_ = s.rr_stuck;
        rr_head_ = s.rr_head;
        flip_armed_ = s.flip_armed;
        flip_master_ = s.flip_master;
    }

    /// True when the future-determining state (everything save() captures
    /// EXCEPT the statistics) matches the snapshot. The batched tier's
    /// lane-rejoin comparator: two crossbars in this relation arbitrate
    /// identically forever given identical request streams.
    bool state_equals(const XbarSnapshot& s) const {
        return last_denied_ == s.last_denied && glitch_armed_ == s.glitch_armed &&
               glitch_.kind == s.glitch.kind && glitch_.master == s.glitch.master &&
               rr_stuck_ == s.rr_stuck && rr_head_ == s.rr_head &&
               flip_armed_ == s.flip_armed && flip_master_ == s.flip_master;
    }

    unsigned masters() const { return masters_; }
    unsigned banks() const { return static_cast<unsigned>(banks_); }
    bool broadcast_enabled() const { return broadcast_; }

    /// Arbitrates one cycle. `reqs.size()` must equal masters().
    /// `cycle` drives the rotating round-robin priority.
    /// Returns one Grant per master.
    std::vector<Grant> arbitrate(std::span<const Request> reqs, Cycle cycle);

    /// In-place variant that avoids per-cycle allocation (hot path).
    /// `active_hint` is an optional bitmask of masters that MAY have an
    /// active request (bit m = master m); it lets the fast path skip idle
    /// masters without touching their request slots. It may overestimate
    /// (the default claims everyone) but must never omit an active master.
    /// Postcondition: grant slots of masters without an active request are
    /// left unmodified on the fast path — read a grant only behind its
    /// request's `active` flag, or use arbitrate(), which starts from
    /// default-initialized slots.
    void arbitrate_into(std::span<const Request> reqs, Cycle cycle, std::span<Grant> out,
                        std::uint32_t active_hint = 0xFFFFFFFFu);

    /// Enables/disables the conflict-free fast path (default on). The fast
    /// path is exactly result- and statistics-equivalent to the full
    /// round-robin arbiter; turning it off forces the reference arbiter on
    /// every cycle (differential testing).
    void set_fast_path(bool on) { fast_path_ = on; }
    bool fast_path() const { return fast_path_; }

    /// Batched accounting for `n` arbitration cycles in which exactly one
    /// master raised a request (the trace engine's single-active-core
    /// burst, DESIGN.md §10). A sole requester is always granted its bank
    /// port — no conflict, no denial, no broadcast ride is possible — so
    /// each such cycle contributes requests+1, grants+1, bank_accesses+1,
    /// identically to running either arbiter tier. Must not be used while
    /// a glitch is armed (the burst checks glitch_pending() first).
    void account_uncontended(std::uint64_t n) {
        if (n == 0) return;
        stats_.requests += n;
        stats_.grants += n;
        stats_.bank_accesses += n;
        last_denied_ = false;
    }

    /// Arms a one-shot arbitration glitch for the next cycle. If the
    /// targeted master raises no request that cycle the glitch dissipates
    /// without effect (strikes don't wait for traffic).
    void inject_glitch(const Glitch& g);
    bool glitch_pending() const { return glitch_armed_; }

    /// Upsets the arbiter's sequential state (RR pointer / grant register).
    /// RrStuck persists until the self-check repairs it or a snapshot is
    /// restored; GrantFlip is one-shot, consumed at the next full round.
    void inject_arbiter_upset(const ArbiterUpset& u);
    bool arbiter_upset_pending() const { return rr_stuck_ || flip_armed_; }

    /// Self-checking arbiter (DESIGN.md §9): duplicate-and-compare on the
    /// grant vector and priority head. A spurious grant is suppressed
    /// (the master stalls and retries, selfcheck_fixes); a stuck priority
    /// head is resynchronized from the cycle counter (selfcheck_resyncs).
    /// Configuration, not snapshot state — priced per-cycle in power::cal.
    void set_self_check(bool on) { self_check_ = on; }
    bool self_check() const { return self_check_; }

    const XbarStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

private:
    /// The original full arbiter: rotating-priority winner per bank, then
    /// the read-broadcast ride-along pass. Also the conflict fallback.
    /// Returns true when at least one master was denied.
    bool arbitrate_full(std::span<const Request> reqs, Cycle cycle, std::span<Grant> out);

    unsigned masters_;
    std::uint32_t banks_;
    bool broadcast_;
    bool fast_path_ = true;
    /// Denial hysteresis: after a conflict cycle the fast attempt is
    /// skipped once (conflicts cluster in time; attempting and bailing
    /// pays for both arbiters). Purely a tier-selection hint — grants and
    /// statistics are identical whichever tier runs.
    bool last_denied_ = false;
    Glitch glitch_;              ///< one-shot upset, valid while armed
    bool glitch_armed_ = false;
    bool self_check_ = false;    ///< configuration: self-checking arbiter
    bool rr_stuck_ = false;      ///< priority head frozen at rr_head_
    unsigned rr_head_ = 0;
    bool flip_armed_ = false;    ///< grant register of flip_master_ upset
    unsigned flip_master_ = 0;
    std::uint32_t master_mask_ = 0; ///< masters_-1 when a power of two, else 0
    XbarStats stats_;
    std::vector<std::uint8_t> bank_taken_; // scratch, sized banks_
    std::vector<std::uint8_t> winner_;     // scratch: winning master per bank
};

/// Pipeline depth of a Mesh-of-Trees routing network (levels of 2:1
/// switches); used by the area model and documented for completeness —
/// the paper's network still completes an access in a single cycle.
unsigned mot_levels(unsigned fanout);

} // namespace ulpmc::xbar
