#include "xbar/crossbar.hpp"

#include <bit>

#include "common/assert.hpp"

namespace ulpmc::xbar {

Crossbar::Crossbar(unsigned masters, unsigned banks, bool broadcast)
    : masters_(masters), banks_(banks), broadcast_(broadcast), bank_taken_(banks, 0),
      winner_(banks, 0) {
    ULPMC_EXPECTS(masters > 0);
    ULPMC_EXPECTS(banks > 0);
    if (std::has_single_bit(masters_)) master_mask_ = masters_ - 1;
}

void Crossbar::reset(unsigned masters, unsigned banks, bool broadcast) {
    ULPMC_EXPECTS(masters > 0);
    ULPMC_EXPECTS(banks > 0);
    masters_ = masters;
    banks_ = banks;
    broadcast_ = broadcast;
    bank_taken_.assign(banks, 0);
    winner_.assign(banks, 0);
    master_mask_ = std::has_single_bit(masters_) ? masters_ - 1 : 0;
    fast_path_ = true;
    last_denied_ = false;
    glitch_armed_ = false;
    self_check_ = false;
    rr_stuck_ = false;
    rr_head_ = 0;
    flip_armed_ = false;
    flip_master_ = 0;
    stats_ = {};
}

std::vector<Grant> Crossbar::arbitrate(std::span<const Request> reqs, Cycle cycle) {
    std::vector<Grant> out(masters_);
    arbitrate_into(reqs, cycle, out);
    return out;
}

void Crossbar::arbitrate_into(std::span<const Request> reqs, Cycle cycle, std::span<Grant> out,
                              std::uint32_t active_hint) {
    ULPMC_EXPECTS(reqs.size() == masters_);
    ULPMC_EXPECTS(out.size() == masters_);

    // Fast path: one pass over the hinted masters from the rotating
    // priority head, with a per-bank claim bitmask (no scratch-array
    // clearing, no grant pre-clearing — every served master's grant is
    // written whole). It serves every cycle in which no request is denied
    // — conflict-free private traffic, the lockstep-SPMD broadcast case,
    // and mixed cycles where each bank's contenders are same-word reads
    // (staggered SPMD: cores a loop-length apart fetch the same PC).
    // Winner choice, broadcast flags, and every statistic are identical to
    // the full arbiter by construction — splitting the hint mask at the
    // head visits masters in exactly the rotated order, so the first
    // claimant of a bank IS pass 1's winner, and a ride-along that would
    // lose pass 1 wins pass 2. Any would-be denial bails to the full
    // arbiter, which alone updates denied/conflict_cycles. The bitmasks
    // bound it to 32 banks/masters; larger geometries (not used by any
    // configuration here) always take the full path.
    if (fast_path_ && !last_denied_ && !glitch_armed_ && !rr_stuck_ && !flip_armed_ &&
        banks_ <= 32 && masters_ <= 32) {
        std::uint32_t pending = active_hint;
        if (masters_ < 32) pending &= (std::uint32_t{1} << masters_) - 1;
        std::uint32_t claimed = 0;
        unsigned active = 0;
        unsigned winners = 0;
        unsigned riders = 0;
        bool denial = false;
        // The rotating head without the 64-bit division (masters counts
        // are powers of two in every configuration).
        const unsigned head = master_mask_ ? static_cast<unsigned>(cycle & master_mask_)
                                           : static_cast<unsigned>(cycle % masters_);
        // Visit hinted masters m >= head first, then those below the head:
        // ascending within each part = the rotated priority order.
        const std::uint32_t below = (std::uint32_t{1} << head) - 1;
        std::uint32_t part = pending & ~below;
        std::uint32_t rest = pending & below;
        while (part | rest) {
            if (!part) {
                part = rest;
                rest = 0;
                continue;
            }
            const unsigned m = static_cast<unsigned>(std::countr_zero(part));
            part &= part - 1;
            const Request& r = reqs[m];
            if (!r.active) continue; // the hint may overestimate
            ULPMC_EXPECTS(r.bank < banks_);
            ++active;
            const std::uint32_t bit = std::uint32_t{1} << r.bank;
            if (!(claimed & bit)) {
                claimed |= bit;
                winner_[r.bank] = static_cast<std::uint8_t>(m);
                out[m] = Grant{.granted = true, .broadcast = false};
                ++winners;
            } else {
                const Request& w = reqs[winner_[r.bank]];
                if (broadcast_ && !r.is_write && !w.is_write && w.offset == r.offset) {
                    out[m] = Grant{.granted = true, .broadcast = true};
                    ++riders;
                } else {
                    denial = true;
                    break;
                }
            }
        }
        if (!denial) {
            stats_.requests += active;
            stats_.grants += active;
            stats_.bank_accesses += winners;
            stats_.broadcast_riders += riders;
            return;
        }
    }

    last_denied_ = arbitrate_full(reqs, cycle, out);
}

void Crossbar::inject_glitch(const Glitch& g) {
    ULPMC_EXPECTS(g.master < masters_);
    glitch_ = g;
    glitch_armed_ = true;
}

void Crossbar::inject_arbiter_upset(const ArbiterUpset& u) {
    if (u.kind == ArbiterUpset::Kind::RrStuck) {
        rr_stuck_ = true;
        rr_head_ = u.head % masters_;
    } else {
        ULPMC_EXPECTS(u.master < masters_);
        flip_armed_ = true;
        flip_master_ = u.master;
    }
}

bool Crossbar::arbitrate_full(std::span<const Request> reqs, Cycle cycle, std::span<Grant> out) {
    for (unsigned m = 0; m < masters_; ++m) out[m] = Grant{};
    for (auto& t : bank_taken_) t = 0;

    // Consume a pending arbitration glitch (one-shot).
    const bool glitched = glitch_armed_;
    const Glitch g = glitch_;
    glitch_armed_ = false;
    const bool suppress = glitched && g.kind == Glitch::Kind::SpuriousDenial;

    // Consume a pending grant-register flip (one-shot, even when it finds
    // no denied transfer to hijack — strikes don't wait for traffic).
    const bool flip = flip_armed_;
    const unsigned flip_m = flip_master_;
    flip_armed_ = false;

    bool any_denied = false;

    // Pass 1: pick one winner per bank, scanning masters from the rotating
    // priority head. The head advances every cycle, which yields
    // round-robin fairness over time and — because one master is globally
    // top priority each cycle — guarantees that multi-port instructions
    // eventually receive all their grants in a single cycle.
    // A stuck priority-head register breaks exactly that guarantee: the
    // same master stays top priority forever, so under persistent conflict
    // the others starve. The self-checking arbiter compares the head
    // register against the cycle counter and resynchronizes on mismatch.
    unsigned head = static_cast<unsigned>(cycle % masters_);
    if (rr_stuck_) {
        if (self_check_) {
            rr_stuck_ = false;
            ++stats_.selfcheck_resyncs;
        } else {
            head = rr_head_ % masters_;
        }
    }
    for (unsigned i = 0; i < masters_; ++i) {
        const unsigned m = (head + i) % masters_;
        const Request& r = reqs[m];
        if (!r.active) continue;
        ++stats_.requests;
        ULPMC_EXPECTS(r.bank < banks_);
        if (suppress && m == g.master) continue; // request never arrives
        if (!bank_taken_[r.bank]) {
            bank_taken_[r.bank] = 1;
            winner_[r.bank] = static_cast<std::uint8_t>(m);
            out[m].granted = true;
            ++stats_.grants;
            ++stats_.bank_accesses;
        }
    }

    // Pass 2: read broadcast — same-bank same-offset reads ride along with
    // the winner's access for free (no extra bank activation, no extra
    // cycle: paper §III-B).
    for (unsigned m = 0; m < masters_; ++m) {
        const Request& r = reqs[m];
        if (!r.active || out[m].granted) continue;
        const Request& w = reqs[winner_[r.bank]];
        if ((!suppress || m != g.master) && bank_taken_[r.bank] && broadcast_ && !r.is_write &&
            !w.is_write && w.offset == r.offset) {
            out[m].granted = true;
            out[m].broadcast = true;
            ++stats_.grants;
            ++stats_.broadcast_riders;
        } else if (flip && m == flip_m && bank_taken_[r.bank]) {
            // The denied master's grant register flipped high while the
            // bank port carries the winner's transfer. A self-checking
            // arbiter re-votes, spots the inconsistent grant vector and
            // suppresses the spurious grant — the master just stalls and
            // retries like any denial. Without it the master latches the
            // winner's word (wrong offset) on a read, or silently loses
            // its store on a write: the double-grant corruption channel.
            if (self_check_) {
                ++stats_.selfcheck_fixes;
                ++stats_.denied;
                any_denied = true;
            } else {
                out[m].granted = true;
                out[m].hijacked = true;
                out[m].hijack_offset = w.offset;
                ++stats_.grants;
                ++stats_.hijacked_grants;
            }
        } else {
            ++stats_.denied;
            any_denied = true;
        }
    }

    // A dropped grant revokes the winner's (or rider's) grant after the
    // fact: the bank port has already fired — the activation energy is
    // spent — but the master latches nothing and retries next cycle.
    if (glitched && g.kind == Glitch::Kind::DroppedGrant && reqs[g.master].active &&
        out[g.master].granted) {
        --stats_.grants;
        if (out[g.master].broadcast) --stats_.broadcast_riders;
        out[g.master] = Grant{};
        ++stats_.denied;
        any_denied = true;
    }

    if (any_denied) ++stats_.conflict_cycles;
    return any_denied;
}

unsigned mot_levels(unsigned fanout) {
    unsigned levels = 0;
    unsigned n = 1;
    while (n < fanout) {
        n *= 2;
        ++levels;
    }
    return levels;
}

} // namespace ulpmc::xbar
