#include "xbar/crossbar.hpp"

#include "common/assert.hpp"

namespace ulpmc::xbar {

Crossbar::Crossbar(unsigned masters, unsigned banks, bool broadcast)
    : masters_(masters), banks_(banks), broadcast_(broadcast), bank_taken_(banks, 0),
      winner_(banks, 0) {
    ULPMC_EXPECTS(masters > 0);
    ULPMC_EXPECTS(banks > 0);
}

std::vector<Grant> Crossbar::arbitrate(std::span<const Request> reqs, Cycle cycle) {
    std::vector<Grant> out(masters_);
    arbitrate_into(reqs, cycle, out);
    return out;
}

void Crossbar::arbitrate_into(std::span<const Request> reqs, Cycle cycle, std::span<Grant> out) {
    ULPMC_EXPECTS(reqs.size() == masters_);
    ULPMC_EXPECTS(out.size() == masters_);

    for (unsigned m = 0; m < masters_; ++m) out[m] = Grant{};
    for (auto& t : bank_taken_) t = 0;

    bool any_denied = false;

    // Pass 1: pick one winner per bank, scanning masters from the rotating
    // priority head. The head advances every cycle, which yields
    // round-robin fairness over time and — because one master is globally
    // top priority each cycle — guarantees that multi-port instructions
    // eventually receive all their grants in a single cycle.
    const unsigned head = static_cast<unsigned>(cycle % masters_);
    for (unsigned i = 0; i < masters_; ++i) {
        const unsigned m = (head + i) % masters_;
        const Request& r = reqs[m];
        if (!r.active) continue;
        ++stats_.requests;
        ULPMC_EXPECTS(r.bank < banks_);
        if (!bank_taken_[r.bank]) {
            bank_taken_[r.bank] = 1;
            winner_[r.bank] = static_cast<std::uint8_t>(m);
            out[m].granted = true;
            ++stats_.grants;
            ++stats_.bank_accesses;
        }
    }

    // Pass 2: read broadcast — same-bank same-offset reads ride along with
    // the winner's access for free (no extra bank activation, no extra
    // cycle: paper §III-B).
    for (unsigned m = 0; m < masters_; ++m) {
        const Request& r = reqs[m];
        if (!r.active || out[m].granted) continue;
        const Request& w = reqs[winner_[r.bank]];
        if (broadcast_ && !r.is_write && !w.is_write && w.offset == r.offset) {
            out[m].granted = true;
            out[m].broadcast = true;
            ++stats_.grants;
            ++stats_.broadcast_riders;
        } else {
            ++stats_.denied;
            any_denied = true;
        }
    }

    if (any_denied) ++stats_.conflict_cycles;
}

unsigned mot_levels(unsigned fanout) {
    unsigned levels = 0;
    unsigned n = 1;
    while (n < fanout) {
        n *= 2;
        ++levels;
    }
    return levels;
}

} // namespace ulpmc::xbar
