#include "exp/experiments.hpp"

#include <array>
#include <iostream>

#include "common/assert.hpp"
#include "sweep/sweep.hpp"

namespace ulpmc::exp {

DesignPoint characterize(cluster::ArchKind arch, const app::EcgBenchmark& bench) {
    DesignPoint dp{.arch = arch, .outcome = bench.run(arch), .rates = {}};
    ULPMC_ENSURES(dp.outcome.verified); // power numbers require correct runs
    dp.rates = power::EventRates::from_run(dp.outcome.stats);
    return dp;
}

std::vector<DesignPoint> characterize_all(const app::EcgBenchmark& bench) {
    // The three designs are independent full-benchmark simulations — fan
    // them out over the sweep pool (sequential when single-core).
    static constexpr std::array archs = {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                                         cluster::ArchKind::UlpmcBank};
    sweep::SweepRunner pool;
    return pool.map(std::span<const cluster::ArchKind>(archs),
                    [&](cluster::ArchKind a) { return characterize(a, bench); });
}

std::string vs_paper_percent(double measured_ratio, double paper_percent) {
    return format_percent(measured_ratio) + " (paper " + format_fixed(paper_percent, 1) + "%)";
}

std::string vs_paper_count(std::uint64_t measured, double paper_value) {
    return format_count(measured) + " (paper " + format_count(static_cast<std::uint64_t>(paper_value)) +
           ")";
}

void print_experiment_header(const std::string& title, const std::string& paper_ref) {
    std::cout << "\n=== " << title << " ===\n"
              << "Reproduces: " << paper_ref << " of Dogan et al., DATE 2012\n\n";
}

} // namespace ulpmc::exp
