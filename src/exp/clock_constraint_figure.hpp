// Shared implementation of the Figs. 5/6 clock-constraint exploration:
// one design, several synthesis clock constraints, power vs throughput
// with voltage scaling down to the floor.
#pragma once

#include <vector>

#include "cluster/config.hpp"

namespace ulpmc::exp {

/// Prints the Fig. 5/6 style exploration for `arch`.
/// `clocks` — the synthesis constraints [ns], fastest first;
/// `paper_floor_mw` — the paper's annotations at the voltage floor
/// (same order), used for ratio comparison;
/// `paper_saving_pct` — the paper's quoted saving of the 12 ns design
/// vs the speed-optimized one.
void clock_constraint_figure(cluster::ArchKind arch, const std::vector<double>& clocks,
                             const std::vector<double>& paper_floor_mw, double paper_saving_pct);

} // namespace ulpmc::exp
