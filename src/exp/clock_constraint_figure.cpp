#include "exp/clock_constraint_figure.hpp"

#include <iostream>

#include "common/assert.hpp"
#include "exp/experiments.hpp"
#include "power/calibration.hpp"

namespace ulpmc::exp {

void clock_constraint_figure(cluster::ArchKind arch, const std::vector<double>& clocks,
                             const std::vector<double>& paper_floor_mw, double paper_saving_pct) {
    ULPMC_EXPECTS(clocks.size() == paper_floor_mw.size());
    ULPMC_EXPECTS(clocks.size() >= 2);

    const app::EcgBenchmark bench{};
    const auto dp = characterize(arch, bench);

    std::vector<double> floor_power;
    Table t({"clock [ns]", "f_nom [MHz]", "max thr [MOps/s]", "P @ voltage floor",
             "floor ratio (paper)", "P @ 1 MOps/s", "P @ max thr"});
    for (std::size_t i = 0; i < clocks.size(); ++i) {
        const power::PowerModel model(arch, clocks[i]);
        const double max_thr = model.max_throughput(dp.rates);
        const double floor_thr = model.vf().f_max(power::cal::kVmin) * dp.rates.ops_per_cycle;
        floor_power.push_back(model.power_at(dp.rates, floor_thr).total);
        t.add_row({format_fixed(clocks[i], 1), format_fixed(model.vf().f_nominal() / 1e6, 1),
                   format_fixed(max_thr / 1e6, 1), format_si(floor_power[i], "W"),
                   format_fixed(floor_power[i] / floor_power[0], 3) + " (" +
                       format_fixed(paper_floor_mw[i] / paper_floor_mw[0], 3) + ")",
                   format_si(model.power_at(dp.rates, 1e6).total, "W"),
                   format_si(model.power_at(dp.rates, max_thr).total, "W")});
    }
    t.print(std::cout);

    // The paper's quoted saving: the 12 ns design (index of 12.0) vs the
    // speed-optimized (first) design, both at the voltage floor.
    std::size_t idx12 = 1;
    for (std::size_t i = 0; i < clocks.size(); ++i)
        if (clocks[i] == 12.0) idx12 = i;
    const double saving = 1.0 - floor_power[idx12] / floor_power[0];
    std::cout << "\nPower saving of the 12 ns design vs the speed-optimized design at the\n"
              << "voltage floor: " << vs_paper_percent(saving, paper_saving_pct) << '\n';

    // Samples along the 12 ns design's full curve (the figure's log axis
    // spans 1e-3 .. ~1 GOps/s).
    const power::PowerModel model(arch, 12.0);
    Table c({"throughput [GOps/s]", "supply [V]", "power"});
    for (const double thr : {1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 0.3, 0.6}) {
        const double w = thr * 1e9;
        if (w > model.max_throughput(dp.rates)) continue;
        const auto rep = model.power_at(dp.rates, w);
        c.add_row({format_fixed(thr, 3), format_fixed(rep.op.v, 3), format_si(rep.total, "W")});
    }
    std::cout << "\n12 ns design, curve samples:\n";
    c.print(std::cout);
    std::cout << "\nAbsolute scale note: the paper's floor annotations are in its Fig. 7\n"
                 "scale (see EXPERIMENTS.md); the ratios across constraints are the\n"
                 "reproduction target here.\n";
}

} // namespace ulpmc::exp
