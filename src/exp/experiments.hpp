// Shared experiment harness glue: standard benchmark runs, per-design
// power-model construction, and paper-vs-measured row formatting used by
// every bench binary (one binary per table/figure, see DESIGN.md §5).
#pragma once

#include <string>
#include <vector>

#include "app/benchmark.hpp"
#include "cluster/config.hpp"
#include "common/table.hpp"
#include "power/power_model.hpp"

namespace ulpmc::exp {

/// A fully characterized design point: the architecture, its benchmark
/// execution, and the condensed event rates driving the power model.
struct DesignPoint {
    cluster::ArchKind arch;
    app::EcgBenchmark::Outcome outcome;
    power::EventRates rates;
};

/// Runs the paper's default benchmark configuration (private Huffman
/// LUTs, no barrier) on one architecture. Contract-checks that the
/// cluster's outputs verified bit-exactly against the golden pipeline —
/// every power number in the repo is backed by a correct execution.
DesignPoint characterize(cluster::ArchKind arch, const app::EcgBenchmark& bench);

/// The three paper designs characterized on the same benchmark instance.
std::vector<DesignPoint> characterize_all(const app::EcgBenchmark& bench);

/// "measured vs paper" cell, e.g. "39.4% (paper 39.5%)".
std::string vs_paper_percent(double measured_ratio, double paper_percent);

/// "measured vs paper" cell for counts, e.g. "90,180 (paper 90,200)".
std::string vs_paper_count(std::uint64_t measured, double paper_value);

/// Standard header printed by every bench binary.
void print_experiment_header(const std::string& title, const std::string& paper_ref);

} // namespace ulpmc::exp
