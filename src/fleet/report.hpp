// Fleet JSON artifact and human summary (DESIGN.md §13).
//
// The JSON is a DETERMINISTIC artifact: it contains only quantities that
// are pure functions of (timeline, FleetOptions) — integer totals,
// integer-derived floats and sketch payloads — never wall time, thread
// counts, scheduler stats or the simulator tier. CI diffs the bytes
// across thread counts, engine tiers and shard merges, and
// tools/merge_fleet.py reproduces the unsharded bytes from shard
// artifacts, so every float here must render identically from C++
// (default ostream formatting, 6 significant digits) and Python ("%g").
// Host-dependent numbers (wall time, device-hours/sec, steals) go to the
// human summary on stdout only.
#pragma once

#include <iosfwd>
#include <string>

#include "fleet/fleet.hpp"

namespace ulpmc::fleet {

/// Writes the deterministic fleet artifact. `records` is the device count
/// the artifact covers (this shard's; the fleet total once merged); the
/// "shard" key appears only when opt.shard_n > 1, so a merged artifact is
/// byte-identical to an unsharded run's.
void write_json(std::ostream& os, const std::string& timeline_name, const FleetOptions& opt,
                double block_period_s, const FleetAggregate& agg, std::uint64_t records);

/// Human summary (stdout): aggregate highlights plus the host-dependent
/// throughput and scheduler numbers the JSON deliberately omits.
void print_summary(std::ostream& os, const FleetOptions& opt, const FleetResult& res);

} // namespace ulpmc::fleet
