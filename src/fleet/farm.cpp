#include "fleet/farm.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/atomic_file.hpp"
#include "common/crc32.hpp"
#include "fault/fault.hpp"
#include "fleet/report.hpp"
#include "fleet/store.hpp"

namespace ulpmc::fleet {

namespace {

/// Same bound as common/journal.cpp: a length beyond this is a torn
/// header read as a length, not a real frame.
constexpr std::uint32_t kMaxPayload = 64u << 20;

double now_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string basename_of(const std::string& path) {
    const auto slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// %.17g rendering for doubles crossing the CLI boundary: enough digits
/// that the worker's strtod recovers the exact value.
std::string f64_arg(double v) {
    std::ostringstream ss;
    ss << std::setprecision(17) << v;
    return ss.str();
}

void mkdirs(const std::string& dir) {
    std::string path;
    for (std::size_t i = 0; i <= dir.size(); ++i) {
        if (i < dir.size() && dir[i] != '/') continue;
        path = dir.substr(0, i == dir.size() ? i : i + 1);
        if (path.empty() || path == "/") continue;
        if (mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
            throw FarmError("farm: cannot create directory: " + path + ": " +
                            std::strerror(errno));
    }
}

} // namespace

std::vector<ChaosEvent> chaos_schedule(const FarmOptions& opt) {
    std::vector<ChaosEvent> events;
    const unsigned total = opt.chaos_kills + opt.chaos_stalls;
    if (total == 0 || opt.workers == 0) return events;
    Rng rng(fault::mix_seed(opt.chaos_seed, 0xFA12Cull));
    std::vector<std::uint64_t> last(opt.workers, 0);
    for (unsigned i = 0; i < total; ++i) {
        ChaosEvent ev;
        ev.shard = rng.below(opt.workers);
        ev.stall = i >= opt.chaos_kills;
        const std::uint64_t n =
            shard_device_count(opt.fleet.devices, ev.shard, opt.workers);
        // Land the disruption strictly before the worker can finish: the
        // trigger sits in [1, ~60%] of the shard's device count, bumped
        // past the shard's previous trigger so restarts make progress
        // between consecutive events.
        const double frac = 0.10 + 0.50 * rng.uniform();
        ev.at_records = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(frac * static_cast<double>(n)));
        if (ev.at_records <= last[ev.shard]) ev.at_records = last[ev.shard] + 1;
        last[ev.shard] = ev.at_records;
        events.push_back(ev);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const ChaosEvent& a, const ChaosEvent& b) {
                         return a.shard != b.shard ? a.shard < b.shard
                                                   : a.at_records < b.at_records;
                     });
    return events;
}

double farm_backoff_s(double base_s, double max_s, unsigned restart, Rng& rng) {
    const unsigned exp = std::min(restart > 0 ? restart - 1 : 0u, 16u);
    const double nominal = std::min(max_s, base_s * static_cast<double>(1u << exp));
    // +-25% seeded jitter, capped AFTER jitter so max_s is a hard bound —
    // the BleLink::enter_backoff discipline (scenario/link.cpp).
    const double jittered = nominal * (0.75 + 0.5 * rng.uniform());
    return std::min(jittered, max_s);
}

void scan_journal(const std::string& path, JournalProgress& p) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) return; // no journal yet: no progress, not an error
    std::fseek(f, 0, SEEK_END);
    const std::uint64_t size = static_cast<std::uint64_t>(std::ftell(f));
    if (size < p.offset) {
        // The journal shrank (a restart truncated a torn tail past our
        // scan point — possible only if our last head-read raced a
        // partial append). Rescan from scratch; the set dedups.
        p = JournalProgress{};
    }
    p.bytes = size;
    if (std::fseek(f, static_cast<long>(p.offset), SEEK_SET) != 0) {
        std::fclose(f);
        return;
    }
    std::vector<std::uint8_t> buf;
    for (;;) {
        std::uint32_t head[2]; // kind, len
        if (std::fread(head, 1, sizeof(head), f) != sizeof(head)) break;
        if (head[1] > kMaxPayload) break; // garbage tail: wait, do not advance
        buf.resize(head[1]);
        if (head[1] > 0 && std::fread(buf.data(), 1, buf.size(), f) != buf.size()) break;
        std::uint32_t stored_crc = 0;
        if (std::fread(&stored_crc, 1, sizeof(stored_crc), f) != sizeof(stored_crc)) break;
        if (crc32(buf.data(), buf.size(), crc32(head, sizeof(head))) != stored_crc) break;
        // Only a complete, CRC-valid frame advances the offset; a frame
        // still being appended stays in the tail for the next poll.
        p.offset += sizeof(head) + buf.size() + sizeof(stored_crc);
        if (head[0] == kFleetRecordFrame && buf.size() == sizeof(DeviceRecord)) {
            ++p.record_frames;
            std::uint64_t gdi = 0;
            std::memcpy(&gdi, buf.data(), sizeof(gdi)); // gdi is the record's first field
            if (!p.gdis.insert(gdi).second) ++p.duplicate_records;
        } else if (head[0] == kFleetHeartbeatFrame && buf.size() == 16) {
            ++p.heartbeats;
            std::memcpy(&p.heartbeat_devices, buf.data() + 8, 8);
        }
        // Unknown kinds (META included) advance the offset and nothing else.
    }
    std::fclose(f);
}

MergedFleet merge_stores(const FleetOptions& fleet, const std::string& timeline_name,
                         double block_period_s, const std::vector<std::string>& store_paths) {
    const unsigned n = static_cast<unsigned>(store_paths.size());
    if (n == 0) throw FarmError("merge: no shard stores");
    MergedFleet merged;
    merged.records.resize(fleet.devices);
    std::vector<bool> placed(fleet.devices, false);
    for (unsigned k = 0; k < n; ++k) {
        const LoadedStore s = read_store(store_paths[k]);
        const StoreHeader& h = s.header;
        if (h.seed != fleet.seed || h.devices != fleet.devices || h.cohorts != fleet.cohorts ||
            h.shard_k != k || h.shard_n != n) {
            std::ostringstream ss;
            ss << "merge: " << store_paths[k] << ": header (seed " << h.seed << ", devices "
               << h.devices << ", cohorts " << h.cohorts << ", shard " << h.shard_k << "/"
               << h.shard_n << ") disagrees with the farm spec (seed " << fleet.seed
               << ", devices " << fleet.devices << ", cohorts " << fleet.cohorts << ", shard "
               << k << "/" << n << ")";
            throw FarmError(ss.str());
        }
        for (const DeviceRecord& r : s.records) {
            if (r.gdi >= fleet.devices || placed[r.gdi])
                throw FarmError("merge: " + store_paths[k] + ": record for device " +
                                std::to_string(r.gdi) + " is out of range or duplicated");
            merged.records[r.gdi] = r;
            placed[r.gdi] = true;
        }
    }
    for (std::uint64_t gdi = 0; gdi < fleet.devices; ++gdi)
        if (!placed[gdi])
            throw FarmError("merge: device " + std::to_string(gdi) +
                            " missing from every shard store");
    // Ascending-gdi aggregation over the full fleet: the exact code path
    // an unsharded run takes, which is what makes the merged JSON
    // byte-identical by construction rather than by porting effort.
    for (const DeviceRecord& r : merged.records) merged.aggregate.add(r);
    FleetOptions unsharded = fleet;
    unsharded.shard_k = 0;
    unsharded.shard_n = 1;
    std::ostringstream out;
    write_json(out, timeline_name, unsharded, block_period_s, merged.aggregate,
               merged.records.size());
    merged.json = out.str();
    return merged;
}

Farm::Farm(const FarmOptions& opt, std::ostream* log) : opt_(opt), log_(log) {
    if (opt_.workers < 1) throw FarmError("farm: need at least one worker");
    if (opt_.workers > opt_.fleet.devices)
        throw FarmError("farm: more workers than devices leaves empty shards");
    if (opt_.heartbeat_s <= 0 || opt_.timeout_s <= 0 || opt_.term_grace_s < 0 ||
        opt_.poll_s <= 0)
        throw FarmError("farm: heartbeat/timeout/grace/poll periods must be positive");
    if (opt_.timeout_s <= opt_.heartbeat_s)
        throw FarmError("farm: timeout must exceed the heartbeat period, or every "
                        "healthy worker looks hung");
    if (opt_.backoff_base_s <= 0 || opt_.backoff_max_s < opt_.backoff_base_s)
        throw FarmError("farm: backoff base/max must be positive and ordered");
    if (opt_.fleet_bin.empty() || access(opt_.fleet_bin.c_str(), X_OK) != 0)
        throw FarmError("farm: worker binary not executable: " + opt_.fleet_bin);
    try {
        tl_ = scenario::load_timeline(opt_.timeline_path);
    } catch (const scenario::TimelineError& e) {
        throw FarmError(opt_.timeline_path + ": " + e.what());
    }
    timeline_name_ = basename_of(opt_.timeline_path);
}

namespace {

enum class ShardState { Waiting, Running, Done, Dead };

struct ShardSlot {
    ShardState state = ShardState::Waiting;
    pid_t pid = -1;
    JournalProgress prog;
    std::uint64_t last_bytes = 0;
    double last_growth_t = 0;
    bool term_sent = false;
    double term_t = 0;
    bool stopped = false; ///< a chaos SIGSTOP is in flight
    double restart_at_t = 0;
    unsigned attempts = 0;
    std::size_t next_chaos = 0; ///< index into this shard's chaos queue
    Rng backoff_rng{0};
    ShardOutcome out;
};

} // namespace

FarmReport Farm::run() {
    mkdirs(opt_.dir);
    const double t0 = now_s();
    FarmReport rep;
    rep.shards.resize(opt_.workers);

    auto log = [&](const std::string& line) {
        if (log_) *log_ << "farm: " << line << "\n" << std::flush;
    };
    auto jnl_path = [&](unsigned k) {
        return opt_.dir + "/shard_" + std::to_string(k) + ".jnl";
    };
    auto shard_path = [&](unsigned k, const char* ext) {
        return opt_.dir + "/shard_" + std::to_string(k) + ext;
    };

    const std::vector<ChaosEvent> chaos = chaos_schedule(opt_);
    std::vector<std::vector<ChaosEvent>> chaos_by_shard(opt_.workers);
    for (const ChaosEvent& ev : chaos) chaos_by_shard[ev.shard].push_back(ev);

    std::vector<ShardSlot> slots(opt_.workers);
    for (unsigned k = 0; k < opt_.workers; ++k) {
        slots[k].backoff_rng = Rng(fault::mix_seed(opt_.chaos_seed, 0xB0FFull + k));
        slots[k].out.devices = shard_device_count(opt_.fleet.devices, k, opt_.workers);
        slots[k].restart_at_t = t0; // first launch is immediate
        slots[k].last_growth_t = t0;
    }

    auto spawn = [&](unsigned k) {
        ShardSlot& s = slots[k];
        std::vector<std::string> args = {
            opt_.fleet_bin,
            "--timeline", opt_.timeline_path,
            "--devices",  std::to_string(opt_.fleet.devices),
            "--seed",     std::to_string(opt_.fleet.seed),
            "--cohorts",  std::to_string(opt_.fleet.cohorts),
            "--baseline", f64_arg(opt_.fleet.baseline_fraction),
            "--engine",   cluster::engine_name(opt_.fleet.engine),
            "--threads",  std::to_string(opt_.worker_threads),
            "--shard",    std::to_string(k) + "/" + std::to_string(opt_.workers),
            "--json",     shard_path(k, ".json"),
            "--store",    shard_path(k, ".ulpf"),
            "--heartbeat", f64_arg(opt_.heartbeat_s),
            // Every attempt resumes: the first finds no journal and starts
            // fresh; a restart replays and skips every completed device.
            "--resume",   jnl_path(k),
        };
        if (opt_.fleet.days > 0) {
            args.push_back("--days");
            args.push_back(f64_arg(opt_.fleet.days));
        }
        std::vector<char*> argv;
        for (std::string& a : args) argv.push_back(a.data());
        argv.push_back(nullptr);
        const std::string log_path = shard_path(k, ".log");
        const pid_t pid = fork();
        if (pid < 0) throw FarmError(std::string("farm: fork failed: ") + std::strerror(errno));
        if (pid == 0) {
            const int fd =
                open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
            if (fd >= 0) {
                dup2(fd, 1);
                dup2(fd, 2);
                if (fd > 2) close(fd);
            }
            execv(argv[0], argv.data());
            _exit(127); // exec failed: a distinct, restartable exit
        }
        s.pid = pid;
        s.state = ShardState::Running;
        s.term_sent = false;
        s.stopped = false;
        s.last_growth_t = now_s();
        ++s.attempts;
        if (s.attempts > 1) ++rep.restarts;
        log("shard " + std::to_string(k) + ": worker pid " + std::to_string(pid) +
            " (attempt " + std::to_string(s.attempts) + ")");
    };

    auto kill_all = [&]() {
        for (ShardSlot& s : slots) {
            if (s.state != ShardState::Running || s.pid < 0) continue;
            kill(s.pid, SIGKILL);
            int st = 0;
            waitpid(s.pid, &st, 0);
            s.pid = -1;
        }
    };

    try {
        for (;;) {
            bool all_settled = true;
            const double now = now_s();
            for (unsigned k = 0; k < opt_.workers; ++k) {
                ShardSlot& s = slots[k];
                if (s.state == ShardState::Done || s.state == ShardState::Dead) continue;
                all_settled = false;

                if (s.state == ShardState::Waiting) {
                    if (now >= s.restart_at_t) spawn(k);
                    continue;
                }

                // ---- reap ------------------------------------------------
                int status = 0;
                const pid_t r = waitpid(s.pid, &status, WNOHANG);
                if (r == s.pid) {
                    s.pid = -1;
                    scan_journal(jnl_path(k), s.prog);
                    int code;
                    if (WIFEXITED(status)) {
                        code = WEXITSTATUS(status);
                    } else {
                        code = -WTERMSIG(status);
                    }
                    s.out.last_status = code;
                    if (code == 0) {
                        s.state = ShardState::Done;
                        log("shard " + std::to_string(k) + ": complete after " +
                            std::to_string(s.attempts) + " attempt(s)");
                        continue;
                    }
                    if (code == 2) {
                        // Usage / journal-meta disagreement: deterministic,
                        // no restart can fix it.
                        s.state = ShardState::Dead;
                        log("shard " + std::to_string(k) +
                            ": worker rejected the spec (exit 2); shard is dead");
                        continue;
                    }
                    if (code == 3) {
                        ++s.out.preempted_exits;
                        log("shard " + std::to_string(k) +
                            ": worker preempted politely (exit 3)");
                    } else if (code < 0) {
                        log("shard " + std::to_string(k) + ": worker killed by signal " +
                            std::to_string(-code));
                    } else {
                        log("shard " + std::to_string(k) + ": worker exit " +
                            std::to_string(code));
                    }
                    if (s.attempts > opt_.retries) {
                        s.state = ShardState::Dead;
                        log("shard " + std::to_string(k) + ": retry budget (" +
                            std::to_string(opt_.retries) + ") exhausted; shard is dead");
                        continue;
                    }
                    const double back = farm_backoff_s(opt_.backoff_base_s, opt_.backoff_max_s,
                                                       s.attempts, s.backoff_rng);
                    s.restart_at_t = now + back;
                    s.state = ShardState::Waiting;
                    {
                        std::ostringstream ss;
                        ss << "shard " << k << ": restarting in " << std::setprecision(3)
                           << back << " s (" << s.prog.gdis.size() << "/" << s.out.devices
                           << " devices journaled)";
                        log(ss.str());
                    }
                    continue;
                }

                // ---- liveness + chaos ------------------------------------
                scan_journal(jnl_path(k), s.prog);
                if (s.prog.bytes > s.last_bytes) {
                    s.last_bytes = s.prog.bytes;
                    s.last_growth_t = now;
                }

                auto& queue = chaos_by_shard[k];
                if (s.next_chaos < queue.size() && !s.stopped &&
                    s.prog.record_frames >= queue[s.next_chaos].at_records) {
                    const ChaosEvent& ev = queue[s.next_chaos++];
                    if (ev.stall) {
                        kill(s.pid, SIGSTOP);
                        s.stopped = true;
                        ++s.out.chaos_stalls;
                        log("shard " + std::to_string(k) + ": chaos SIGSTOP at " +
                            std::to_string(s.prog.record_frames) +
                            " records (timeout path)");
                    } else {
                        kill(s.pid, SIGKILL);
                        ++s.out.chaos_kills;
                        log("shard " + std::to_string(k) + ": chaos SIGKILL at " +
                            std::to_string(s.prog.record_frames) + " records");
                    }
                    continue; // reap on the next poll
                }

                if (!s.term_sent && now - s.last_growth_t > opt_.timeout_s) {
                    kill(s.pid, SIGTERM);
                    s.term_sent = true;
                    s.term_t = now;
                    ++s.out.timeout_terms;
                    log("shard " + std::to_string(k) + ": no journal growth for " +
                        std::to_string(opt_.timeout_s) + " s; SIGTERM");
                } else if (s.term_sent && now - s.term_t > opt_.term_grace_s) {
                    // SIGTERM stays pending on a SIGSTOPped worker; SIGKILL
                    // does not care.
                    kill(s.pid, SIGKILL);
                    s.term_sent = false;
                    ++s.out.timeout_kills;
                    log("shard " + std::to_string(k) + ": grace expired; SIGKILL");
                }
            }
            if (all_settled) break;
            std::this_thread::sleep_for(std::chrono::duration<double>(opt_.poll_s));
        }
    } catch (...) {
        kill_all();
        throw;
    }

    // ---- final accounting ----------------------------------------------
    for (unsigned k = 0; k < opt_.workers; ++k) {
        ShardSlot& s = slots[k];
        scan_journal(jnl_path(k), s.prog);
        s.out.attempts = s.attempts;
        s.out.journaled = s.prog.gdis.size();
        s.out.record_frames = s.prog.record_frames;
        s.out.duplicate_records = s.prog.duplicate_records;
        s.out.done = s.state == ShardState::Done;
        s.out.dead = s.state == ShardState::Dead;
        rep.shards[k] = s.out;
        rep.chaos_kills += s.out.chaos_kills;
        rep.chaos_stalls += s.out.chaos_stalls;
        rep.chaos_undelivered +=
            static_cast<unsigned>(chaos_by_shard[k].size() - s.next_chaos);
        rep.timeout_terms += s.out.timeout_terms;
        rep.timeout_kills += s.out.timeout_kills;
        rep.preempted_exits += s.out.preempted_exits;
        rep.devices_simulated += s.out.record_frames;
        rep.devices_journaled += s.out.journaled;
        rep.duplicate_records += s.out.duplicate_records;
        if (s.out.dead) rep.dead_shards.push_back(k);
    }

    if (rep.dead_shards.empty()) {
        std::vector<std::string> stores;
        for (unsigned k = 0; k < opt_.workers; ++k) stores.push_back(shard_path(k, ".ulpf"));
        const MergedFleet merged =
            merge_stores(opt_.fleet, timeline_name_, tl_.block_period_s, stores);
        rep.merged_json = merged.json;
        rep.complete = true;
        if (!opt_.json_path.empty()) write_file_atomic(opt_.json_path, merged.json);
        if (!opt_.store_path.empty()) {
            StoreHeader hdr;
            hdr.cohorts = opt_.fleet.cohorts;
            hdr.seed = opt_.fleet.seed;
            hdr.devices = opt_.fleet.devices;
            hdr.shard_k = 0;
            hdr.shard_n = 1;
            write_store(opt_.store_path, hdr, merged.records);
        }
        log("merged " + std::to_string(merged.records.size()) + " devices from " +
            std::to_string(opt_.workers) + " shard stores");
    }
    rep.wall_s = now_s() - t0;
    return rep;
}

void print_farm_summary(std::ostream& os, const FarmOptions& opt, const FarmReport& rep) {
    os << "farm: " << opt.fleet.devices << " devices over " << opt.workers
       << " shard workers, seed " << opt.fleet.seed << ", "
       << (rep.complete ? "complete" : "PARTIAL FAILURE") << "\n";
    os << "supervision: " << rep.restarts << " restarts, " << rep.chaos_kills
       << " chaos kills, " << rep.chaos_stalls << " chaos stalls, " << rep.timeout_terms
       << " timeout SIGTERMs, " << rep.timeout_kills << " escalations, "
       << rep.preempted_exits << " polite preemptions\n";
    os << "work: " << rep.devices_simulated << " device simulations for "
       << rep.devices_journaled << " journaled devices (" << rep.duplicate_records
       << " re-simulated)\n";
    if (!rep.dead_shards.empty()) {
        os << "dead shards:";
        for (unsigned k : rep.dead_shards)
            os << " " << k << " (last status " << rep.shards[k].last_status << ")";
        os << "\n";
    }
    os << std::setprecision(3) << "wall: " << rep.wall_s << " s\n" << std::setprecision(6);
}

void write_farm_report(std::ostream& os, const FarmOptions& opt, const FarmReport& rep) {
    os << "{\n";
    os << "  \"farm\": {\n";
    os << "    \"workers\": " << opt.workers << ",\n";
    os << "    \"devices\": " << opt.fleet.devices << ",\n";
    os << "    \"seed\": " << opt.fleet.seed << ",\n";
    os << "    \"heartbeat_s\": " << opt.heartbeat_s << ",\n";
    os << "    \"timeout_s\": " << opt.timeout_s << ",\n";
    os << "    \"retries\": " << opt.retries << ",\n";
    os << "    \"chaos\": {\"kills\": " << opt.chaos_kills << ", \"stalls\": "
       << opt.chaos_stalls << ", \"seed\": " << opt.chaos_seed << "},\n";
    os << "    \"complete\": " << (rep.complete ? "true" : "false") << "\n";
    os << "  },\n";
    os << "  \"supervision\": {\n";
    os << "    \"restarts\": " << rep.restarts << ",\n";
    os << "    \"chaos_kills\": " << rep.chaos_kills << ",\n";
    os << "    \"chaos_stalls\": " << rep.chaos_stalls << ",\n";
    os << "    \"chaos_undelivered\": " << rep.chaos_undelivered << ",\n";
    os << "    \"timeout_terms\": " << rep.timeout_terms << ",\n";
    os << "    \"timeout_kills\": " << rep.timeout_kills << ",\n";
    os << "    \"preempted_exits\": " << rep.preempted_exits << ",\n";
    os << "    \"devices_simulated\": " << rep.devices_simulated << ",\n";
    os << "    \"devices_journaled\": " << rep.devices_journaled << ",\n";
    os << "    \"duplicate_records\": " << rep.duplicate_records << ",\n";
    os << "    \"dead_shards\": [";
    for (std::size_t i = 0; i < rep.dead_shards.size(); ++i)
        os << rep.dead_shards[i] << (i + 1 < rep.dead_shards.size() ? ", " : "");
    os << "]\n";
    os << "  },\n";
    os << "  \"shards\": [\n";
    for (std::size_t k = 0; k < rep.shards.size(); ++k) {
        const ShardOutcome& s = rep.shards[k];
        os << "    {\"shard\": " << k << ", \"devices\": " << s.devices << ", \"attempts\": "
           << s.attempts << ", \"journaled\": " << s.journaled << ", \"record_frames\": "
           << s.record_frames << ", \"duplicates\": " << s.duplicate_records
           << ", \"chaos_kills\": " << s.chaos_kills << ", \"chaos_stalls\": "
           << s.chaos_stalls << ", \"timeout_terms\": " << s.timeout_terms
           << ", \"timeout_kills\": " << s.timeout_kills << ", \"preempted\": "
           << s.preempted_exits << ", \"done\": " << (s.done ? "true" : "false")
           << ", \"dead\": " << (s.dead ? "true" : "false") << ", \"last_status\": "
           << s.last_status << "}" << (k + 1 < rep.shards.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

} // namespace ulpmc::fleet
