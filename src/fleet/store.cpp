#include "fleet/store.hpp"

#include <cstring>
#include <fstream>

#include "common/atomic_file.hpp"

namespace ulpmc::fleet {

void write_store(const std::string& path, const StoreHeader& hdr,
                 const std::vector<DeviceRecord>& records) {
    // Composed in memory and published with a fsync+rename so a killed
    // writer leaves the old store (or none), never a truncated one — the
    // same durability contract as the JSON artifacts (DESIGN.md §9.6).
    std::string content;
    content.reserve(sizeof(hdr) + records.size() * sizeof(DeviceRecord));
    content.append(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
    content.append(reinterpret_cast<const char*>(records.data()),
                   records.size() * sizeof(DeviceRecord));
    try {
        write_file_atomic(path, content);
    } catch (const AtomicFileError& e) {
        throw FleetStoreError(std::string("fleet store: ") + e.what());
    }
}

LoadedStore read_store(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw FleetStoreError("fleet store: cannot open: " + path);
    in.seekg(0, std::ios::end);
    const auto size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);
    if (size < sizeof(StoreHeader))
        throw FleetStoreError("fleet store: file shorter than the header: " + path);

    LoadedStore ls;
    in.read(reinterpret_cast<char*>(&ls.header), sizeof(StoreHeader));
    if (!in) throw FleetStoreError("fleet store: header read failed: " + path);
    if (std::memcmp(ls.header.magic, "ULPF", 4) != 0)
        throw FleetStoreError("fleet store: bad magic (not a fleet store): " + path);
    if (ls.header.version != 1)
        throw FleetStoreError("fleet store: unsupported version " +
                              std::to_string(ls.header.version) + ": " + path);
    if (ls.header.record_size != sizeof(DeviceRecord))
        throw FleetStoreError("fleet store: record size mismatch (file " +
                              std::to_string(ls.header.record_size) + ", expected " +
                              std::to_string(sizeof(DeviceRecord)) + "): " + path);
    if (ls.header.shard_n < 1 || ls.header.shard_k >= ls.header.shard_n)
        throw FleetStoreError("fleet store: invalid shard header: " + path);

    const std::uint64_t payload = size - sizeof(StoreHeader);
    if (payload % sizeof(DeviceRecord) != 0)
        throw FleetStoreError("fleet store: truncated record tail: " + path);
    const std::uint64_t n = payload / sizeof(DeviceRecord);
    const std::uint64_t expected =
        shard_device_count(ls.header.devices, ls.header.shard_k, ls.header.shard_n);
    if (n != expected)
        throw FleetStoreError("fleet store: " + std::to_string(n) + " records but header "
                              "implies " + std::to_string(expected) + ": " + path);

    ls.records.resize(n);
    in.read(reinterpret_cast<char*>(ls.records.data()),
            static_cast<std::streamsize>(n * sizeof(DeviceRecord)));
    if (!in) throw FleetStoreError("fleet store: record read failed: " + path);

    // Records must be this shard's devices in ascending gdi order.
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t want = ls.header.shard_k + i * ls.header.shard_n;
        if (ls.records[i].gdi != want)
            throw FleetStoreError("fleet store: record " + std::to_string(i) +
                                  " has gdi " + std::to_string(ls.records[i].gdi) +
                                  ", expected " + std::to_string(want) + ": " + path);
    }
    return ls;
}

} // namespace ulpmc::fleet
