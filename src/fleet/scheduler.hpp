// Work-stealing device scheduler (DESIGN.md §13).
//
// A fleet run is index-parallel like a sweep, but the per-index cost is
// wildly non-uniform: a device that browns out early finishes in
// microseconds while a high-lambda full-lifetime device simulates
// thousands of struck blocks. The sweep runner's single shared cursor
// serializes every claim through one cache line; at fleet scale (a
// thousand-plus claims per second per worker, with the caller also
// touching shared calibration state) the contended cursor and the
// convoying behind long devices both show up. This pool instead deals
// each worker a contiguous range of the index space up front — preserving
// cohort locality, since neighboring devices share benchmarks — and lets
// idle workers steal HALF of a victim's remaining ranges, so load
// balances without any shared cursor in the common path.
//
// Determinism: the scheduler never influences results. Workers claim
// single indices (one device) at a time from their own deque, every
// device's work is a pure function of its global index, and callers
// aggregate by index order afterwards — so which worker ran a device, and
// in what order, can never leak into an artifact. Stats are
// instrumentation only (printed to stderr/summary, never JSON).
#pragma once

#include <cstdint>
#include <functional>

namespace ulpmc::fleet {

class WorkStealingPool {
public:
    struct Stats {
        std::uint64_t executed = 0;     ///< indices run (== n on success)
        std::uint64_t steals = 0;       ///< successful steal operations
        std::uint64_t stolen_tasks = 0; ///< indices moved by those steals
        unsigned workers = 0;
    };

    /// `threads == 0` uses the hardware concurrency.
    explicit WorkStealingPool(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /// Invokes `fn(i, worker)` for every i in [0, n) across `threads()`
    /// workers (the calling thread is worker 0). Blocks until all indices
    /// ran; the first exception thrown by any call is rethrown (remaining
    /// work is abandoned, already-claimed calls finish).
    Stats run(std::uint64_t n, const std::function<void(std::uint64_t, unsigned)>& fn);

private:
    unsigned threads_;
};

} // namespace ulpmc::fleet
