#include "fleet/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace ulpmc::fleet {

namespace {

struct Range {
    std::uint64_t begin = 0, end = 0; ///< half-open
    std::uint64_t size() const { return end - begin; }
};

/// One worker's deque of unclaimed ranges. The owner claims single
/// indices from the FRONT range (device granularity, so one long device
/// never holds later indices hostage); thieves split off whole ranges
/// from the BACK, which keeps the owner's locality streak intact.
struct WorkerDeque {
    std::mutex m;
    std::deque<Range> ranges;
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t stolen_tasks = 0;
};

} // namespace

WorkStealingPool::WorkStealingPool(unsigned threads)
    : threads_(threads != 0 ? threads : std::max(1u, std::thread::hardware_concurrency())) {}

WorkStealingPool::Stats
WorkStealingPool::run(std::uint64_t n, const std::function<void(std::uint64_t, unsigned)>& fn) {
    const unsigned w = threads_;
    std::vector<WorkerDeque> deques(w);

    // Initial deal: contiguous slices, remainder spread over the leaders.
    const std::uint64_t base = n / w, extra = n % w;
    std::uint64_t next = 0;
    for (unsigned i = 0; i < w; ++i) {
        const std::uint64_t take = base + (i < extra ? 1 : 0);
        if (take > 0) deques[i].ranges.push_back({next, next + take});
        next += take;
    }
    ULPMC_EXPECTS(next == n);

    std::atomic<std::uint64_t> remaining{n};
    std::atomic<bool> abort{false};
    std::mutex err_m;
    std::exception_ptr error;

    auto worker = [&](unsigned self) {
        WorkerDeque& mine = deques[self];
        while (!abort.load(std::memory_order_relaxed)) {
            // Claim one index from my own front range.
            std::uint64_t idx = 0;
            bool have = false;
            {
                std::lock_guard lock(mine.m);
                if (!mine.ranges.empty()) {
                    Range& r = mine.ranges.front();
                    idx = r.begin++;
                    if (r.begin == r.end) mine.ranges.pop_front();
                    have = true;
                }
            }
            if (!have) {
                // Steal: take half of the richest-looking victim's ranges
                // (back half, so the victim keeps its locality streak).
                if (remaining.load(std::memory_order_acquire) == 0) return;
                bool stole = false;
                for (unsigned hop = 1; hop < w && !stole; ++hop) {
                    WorkerDeque& victim = deques[(self + hop) % w];
                    std::lock_guard lock(victim.m);
                    const std::size_t nr = victim.ranges.size();
                    if (nr == 0) continue;
                    std::uint64_t moved = 0;
                    std::lock_guard mylock(mine.m);
                    if (nr == 1) {
                        // Split the lone range in half; steal the top half.
                        Range& r = victim.ranges.front();
                        if (r.size() < 2) continue;
                        const std::uint64_t mid = r.begin + r.size() / 2;
                        mine.ranges.push_back({mid, r.end});
                        moved = r.end - mid;
                        r.end = mid;
                    } else {
                        for (std::size_t k = 0; k < (nr + 1) / 2; ++k) {
                            mine.ranges.push_back(victim.ranges.back());
                            moved += victim.ranges.back().size();
                            victim.ranges.pop_back();
                        }
                    }
                    ++mine.steals;
                    mine.stolen_tasks += moved;
                    stole = true;
                }
                if (!stole) {
                    if (remaining.load(std::memory_order_acquire) == 0) return;
                    std::this_thread::yield();
                }
                continue;
            }
            try {
                fn(idx, self);
            } catch (...) {
                {
                    std::lock_guard lock(err_m);
                    if (!error) error = std::current_exception();
                }
                abort.store(true, std::memory_order_relaxed);
            }
            ++mine.executed;
            remaining.fetch_sub(1, std::memory_order_release);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(w - 1);
    for (unsigned i = 1; i < w; ++i) pool.emplace_back(worker, i);
    worker(0);
    for (auto& t : pool) t.join();

    if (error) std::rethrow_exception(error);

    Stats s;
    s.workers = w;
    for (const WorkerDeque& d : deques) {
        s.executed += d.executed;
        s.steals += d.steals;
        s.stolen_tasks += d.stolen_tasks;
    }
    return s;
}

} // namespace ulpmc::fleet
