// Compact append-only binary result store (DESIGN.md §13).
//
// One fixed-size DeviceRecord per device, preceded by a small header
// binding the records to their fleet (seed, global size, shard split).
// The format exists for offline analysis and shard hand-off: the JSON
// artifact carries only the streaming aggregate, so the store is the one
// place per-device results survive. Append-only by construction — the
// writer emits the header then streams records in ascending gdi order,
// and the reader validates structure hard: bad magic, version skew,
// record-size skew, a truncated tail or a record count that contradicts
// the header's shard arithmetic all throw FleetStoreError. A corrupt
// store must never silently feed an aggregation.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"

namespace ulpmc::fleet {

class FleetStoreError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// On-disk header (little-endian, packed; 40 bytes).
struct StoreHeader {
    char magic[4] = {'U', 'L', 'P', 'F'};
    std::uint32_t version = 1;
    std::uint32_t record_size = sizeof(DeviceRecord);
    std::uint32_t cohorts = 0;
    std::uint64_t seed = 0;
    std::uint64_t devices = 0; ///< GLOBAL fleet size (all shards)
    std::uint32_t shard_k = 0;
    std::uint32_t shard_n = 1;
};
static_assert(sizeof(StoreHeader) == 40, "store format: keep the header packed");

/// Writes header + records to `path` (overwrites). Throws FleetStoreError
/// on any I/O failure.
void write_store(const std::string& path, const StoreHeader& hdr,
                 const std::vector<DeviceRecord>& records);

struct LoadedStore {
    StoreHeader header;
    std::vector<DeviceRecord> records; ///< ascending gdi, one per shard device
};

/// Reads and validates `path`. Throws FleetStoreError on unreadable
/// files, bad magic/version/record size, truncation, or a record count
/// that does not match the header's (devices, shard) arithmetic.
LoadedStore read_store(const std::string& path);

} // namespace ulpmc::fleet
