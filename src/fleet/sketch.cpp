#include "fleet/sketch.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ulpmc::fleet {

std::int32_t QuantileSketch::bin_of(double x) {
    ULPMC_EXPECTS(x > 0 && std::isfinite(x));
    int e = 0;
    const double m = std::frexp(x, &e); // x = m * 2^e, m in [0.5, 1)
    int sub = static_cast<int>((m - 0.5) * (2.0 * kSketchBinsPerOctave));
    if (sub >= kSketchBinsPerOctave) sub = kSketchBinsPerOctave - 1;
    return static_cast<std::int32_t>(e) * kSketchBinsPerOctave + sub;
}

double QuantileSketch::bin_lo(std::int32_t b) {
    // Floor division: e may be negative for values below 1.0.
    std::int32_t e = b / kSketchBinsPerOctave;
    std::int32_t sub = b % kSketchBinsPerOctave;
    if (sub < 0) {
        sub += kSketchBinsPerOctave;
        --e;
    }
    const double m = 0.5 + static_cast<double>(sub) * (0.5 / kSketchBinsPerOctave);
    return std::ldexp(m, e);
}

void QuantileSketch::add(double x, std::uint64_t count) {
    if (count == 0) return;
    if (total_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    total_ += count;
    if (!(x > 0)) {
        zero_ += count;
        return;
    }
    const std::int32_t b = bin_of(x);
    auto it = std::lower_bound(bins_.begin(), bins_.end(), b,
                               [](const auto& p, std::int32_t v) { return p.first < v; });
    if (it != bins_.end() && it->first == b)
        it->second += count;
    else
        bins_.insert(it, {b, count});
}

void QuantileSketch::merge(const QuantileSketch& o) {
    if (o.total_ == 0) return;
    if (total_ == 0) {
        min_ = o.min_;
        max_ = o.max_;
    } else {
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }
    total_ += o.total_;
    zero_ += o.zero_;
    std::vector<std::pair<std::int32_t, std::uint64_t>> out;
    out.reserve(bins_.size() + o.bins_.size());
    std::size_t i = 0, j = 0;
    while (i < bins_.size() || j < o.bins_.size()) {
        if (j == o.bins_.size() || (i < bins_.size() && bins_[i].first < o.bins_[j].first)) {
            out.push_back(bins_[i++]);
        } else if (i == bins_.size() || o.bins_[j].first < bins_[i].first) {
            out.push_back(o.bins_[j++]);
        } else {
            out.push_back({bins_[i].first, bins_[i].second + o.bins_[j].second});
            ++i;
            ++j;
        }
    }
    bins_ = std::move(out);
}

double QuantileSketch::quantile(double q) const {
    if (total_ == 0) return 0.0;
    ULPMC_EXPECTS(q >= 0.0 && q <= 1.0);
    // Nearest-rank (0-based): the value whose cumulative count first
    // exceeds rank, reported as its bin's midpoint. Deliberately a pure
    // function of the integer state (bins, zero, total) — never of the
    // float extrema — so tools/merge_fleet.py reproduces every quantile
    // bit-exactly from the merged integer payload alone.
    const auto rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
    std::uint64_t cum = zero_;
    if (rank < cum) return 0.0;
    for (const auto& [b, c] : bins_) {
        cum += c;
        if (rank < cum) return (bin_lo(b) + bin_lo(b + 1)) * 0.5;
    }
    return 0.0; // unreachable when counts are consistent
}

} // namespace ulpmc::fleet
