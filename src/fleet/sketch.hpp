// Deterministic mergeable quantile sketch (DESIGN.md §13).
//
// Fleet aggregation needs per-metric percentiles over thousands of
// devices WITHOUT holding per-device values (memory O(sketch), not
// O(devices)), and shard merges must be byte-identical to the unsharded
// run. Streaming estimators like P² or t-digest fail the second
// requirement: their state depends on insertion order, so shard merges
// cannot reproduce the unsharded artifact. This sketch is a log-binned
// histogram instead — bin counts are integers, so merging is a
// commutative, associative integer sum and every aggregation order
// produces the same bytes.
//
// Binning is pure integer/frexp arithmetic (no libm log, whose last-ulp
// behavior varies across libms): a positive value x = m * 2^e with
// m in [0.5, 1) lands in bin 32*e + floor((m - 0.5) * 64), i.e. 32
// geometric sub-bins per octave, bounding the relative quantile error at
// one sub-bin width (~2.2%). Non-positive values (a device that delivered
// nothing, zero SDC blocks) get an exact dedicated zero bucket.
// tools/merge_fleet.py mirrors the math via math.frexp/math.ldexp.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace ulpmc::fleet {

/// Sub-bins per octave: error/size trade-off. 32 keeps a whole-fleet
/// energy sketch under ~1 kB while pinning quantiles to ~2.2%.
inline constexpr int kSketchBinsPerOctave = 32;

class QuantileSketch {
public:
    /// Bin index of a positive value (log-binned, see header comment).
    static std::int32_t bin_of(double x);
    /// Lower edge of bin `b`; the upper edge is bin_lo(b + 1).
    static double bin_lo(std::int32_t b);

    /// Records `count` observations of `x`. x <= 0 goes to the exact
    /// zero bucket (the metrics sketched are all non-negative).
    void add(double x, std::uint64_t count = 1);

    /// Integer-sums the other sketch in: commutative and associative, so
    /// any shard-merge order reproduces the unsharded sketch exactly.
    void merge(const QuantileSketch& o);

    /// Quantile estimate for q in [0, 1]: nearest-rank walk over the zero
    /// bucket and the ascending bins, returning the matched bin's
    /// midpoint clamped to the observed [min, max]. Deterministic, and
    /// exactly reproduced by tools/merge_fleet.py. Returns 0 when empty.
    double quantile(double q) const;

    std::uint64_t count() const { return total_; }
    std::uint64_t zero_count() const { return zero_; }
    double min() const { return total_ ? min_ : 0.0; }
    double max() const { return total_ ? max_ : 0.0; }
    /// Sparse (bin, count) pairs in ascending bin order (JSON payload).
    const std::vector<std::pair<std::int32_t, std::uint64_t>>& bins() const { return bins_; }

private:
    std::vector<std::pair<std::int32_t, std::uint64_t>> bins_; ///< ascending, unique
    std::uint64_t zero_ = 0;
    std::uint64_t total_ = 0;
    double min_ = 0.0, max_ = 0.0; ///< exact observed extrema (valid when total_ > 0)
};

} // namespace ulpmc::fleet
