#include "fleet/report.hpp"

#include <iomanip>
#include <ostream>

#include "cluster/config.hpp"

namespace ulpmc::fleet {

namespace {

void write_slice(std::ostream& os, const SliceTotals& s, const char* indent, bool more) {
    const double frac = s.samples_total > 0 ? static_cast<double>(s.samples_delivered) /
                                                  static_cast<double>(s.samples_total)
                                            : 0.0;
    os << indent << "\"devices\": " << s.devices << ",\n";
    os << indent << "\"energy_nj\": " << s.energy_nj << ",\n";
    os << indent << "\"samples_total\": " << s.samples_total << ",\n";
    os << indent << "\"samples_delivered\": " << s.samples_delivered << ",\n";
    os << indent << "\"delivered_fraction\": " << frac << ",\n";
    os << indent << "\"sdc_blocks\": " << s.sdc_blocks << ",\n";
    os << indent << "\"brownouts\": " << s.brownouts << ",\n";
    os << indent << "\"total_blocks\": " << s.total_blocks << (more ? "," : "") << "\n";
}

void write_sketch(std::ostream& os, const QuantileSketch& sk, const char* indent) {
    os << indent << "\"count\": " << sk.count() << ",\n";
    os << indent << "\"zero\": " << sk.zero_count() << ",\n";
    os << indent << "\"min\": " << sk.min() << ",\n";
    os << indent << "\"max\": " << sk.max() << ",\n";
    os << indent << "\"p50\": " << sk.quantile(0.50) << ",\n";
    os << indent << "\"p90\": " << sk.quantile(0.90) << ",\n";
    os << indent << "\"p99\": " << sk.quantile(0.99) << ",\n";
    os << indent << "\"bins\": [";
    const auto& bins = sk.bins();
    for (std::size_t i = 0; i < bins.size(); ++i) {
        os << "[" << bins[i].first << ", " << bins[i].second << "]"
           << (i + 1 < bins.size() ? ", " : "");
    }
    os << "]\n";
}

} // namespace

void write_json(std::ostream& os, const std::string& timeline_name, const FleetOptions& opt,
                double block_period_s, const FleetAggregate& agg, std::uint64_t records) {
    os << "{\n";
    os << "  \"fleet\": {\n";
    os << "    \"timeline\": \"" << timeline_name << "\",\n";
    os << "    \"seed\": " << opt.seed << ",\n";
    os << "    \"devices\": " << opt.devices << ",\n";
    os << "    \"cohorts\": " << opt.cohorts << ",\n";
    os << "    \"days\": " << opt.days << ",\n";
    os << "    \"baseline_fraction\": " << opt.baseline_fraction << ",\n";
    os << "    \"block_period_s\": " << block_period_s << ",\n";
    os << "    \"thresholds\": {\"shed\": " << opt.thresholds.shed
       << ", \"coarse\": " << opt.thresholds.coarse << ", \"tight\": " << opt.thresholds.tight
       << ", \"silence\": " << opt.thresholds.silence << "},\n";
    if (opt.shard_n > 1) os << "    \"shard\": \"" << opt.shard_k << "/" << opt.shard_n << "\",\n";
    os << "    \"records\": " << records << "\n";
    os << "  },\n";
    os << "  \"aggregate\": {\n";
    write_slice(os, agg.total, "    ", /*more=*/true);
    os << "    \"by_policy\": {\n";
    for (int p = 0; p < 2; ++p) {
        os << "      \"" << scenario::policy_name(static_cast<scenario::Policy>(p))
           << "\": {\n";
        write_slice(os, agg.by_policy[p], "        ", /*more=*/false);
        os << "      }" << (p == 0 ? "," : "") << "\n";
    }
    os << "    },\n";
    os << "    \"by_arch\": {\n";
    for (int a = 0; a < 3; ++a) {
        os << "      \"" << cluster::arch_name(static_cast<cluster::ArchKind>(a)) << "\": {\n";
        write_slice(os, agg.by_arch[a], "        ", /*more=*/false);
        os << "      }" << (a < 2 ? "," : "") << "\n";
    }
    os << "    },\n";
    os << "    \"metrics\": {\n";
    const struct {
        const char* name;
        const QuantileSketch* sk;
    } metrics[] = {{"energy_j", &agg.energy_j},
                   {"delivered_fraction", &agg.delivered_fraction},
                   {"sdc_blocks", &agg.sdc_blocks},
                   {"max_backoff_s", &agg.max_backoff_s}};
    for (std::size_t i = 0; i < 4; ++i) {
        os << "      \"" << metrics[i].name << "\": {\n";
        write_sketch(os, *metrics[i].sk, "        ");
        os << "      }" << (i + 1 < 4 ? "," : "") << "\n";
    }
    os << "    }\n";
    os << "  }\n";
    os << "}\n";
}

void print_summary(std::ostream& os, const FleetOptions& opt, const FleetResult& res) {
    const SliceTotals& t = res.aggregate.total;
    const double frac = t.samples_total > 0 ? static_cast<double>(t.samples_delivered) /
                                                  static_cast<double>(t.samples_total)
                                            : 0.0;
    os << "fleet: " << t.devices << " devices";
    if (opt.shard_n > 1) os << " (shard " << opt.shard_k << "/" << opt.shard_n << ")";
    os << ", " << opt.cohorts << " cohorts, seed " << opt.seed << "\n";
    os << "delivered " << std::fixed << std::setprecision(2) << 100.0 * frac
       << "% of samples, energy " << std::setprecision(3)
       << static_cast<double>(t.energy_nj) * 1e-9 << " J total, " << t.sdc_blocks
       << " SDC blocks, " << t.brownouts << " devices browned out\n";
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
    os << "p50/p90/p99 energy [J]: " << res.aggregate.energy_j.quantile(0.5) << " / "
       << res.aggregate.energy_j.quantile(0.9) << " / " << res.aggregate.energy_j.quantile(0.99)
       << "\n";
    os << "throughput: " << res.device_hours << " device-hours in " << std::setprecision(3)
       << res.wall_s << " s wall (" << res.device_hours / (res.wall_s > 0 ? res.wall_s : 1.0)
       << " device-hours/sec), " << res.sched.workers << " workers, " << res.sched.steals
       << " steals (" << res.sched.stolen_tasks << " devices moved), " << res.calibrations
       << " calibrations\n";
    os << std::setprecision(6);
}

} // namespace ulpmc::fleet
