// Fleet simulation layer (DESIGN.md §13).
//
// Scales the single-device lifetime engine (scenario/engine) to
// thousands of heterogeneous device instances: per-device architecture,
// resilience policy, workload cohort (patient), initial state of charge
// and strike seed are all pure functions of the GLOBAL device index, so a
// fleet is fully specified by (timeline, FleetOptions) — independent of
// thread count, shard split and execution order.
//
// What makes a fleet affordable is what it shares. Devices in one
// workload cohort share a single EcgBenchmark (the patient's CS matrix,
// Huffman table and decode-once ProgramImage); every (cohort, arch,
// policy, level) calibration is computed once per process through the
// shared scenario::CalibrationCache; and each worker re-uses per-shape
// pooled clusters (cluster/pool) across the devices it runs. A naive
// loop of ulpmc-life processes pays benchmark construction + five
// calibrations per device; the fleet pays them once per cohort.
//
// Aggregation is streaming: per-device results collapse into integer
// totals plus mergeable quantile sketches (fleet/sketch), so memory is
// O(devices) records + O(1) aggregate, never O(devices x blocks).
// Energy is quantized to integer nanojoules at the device boundary, so
// cross-shard sums are integer sums — commutative, which is what makes
// merged shard artifacts byte-identical to the unsharded run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/config.hpp"
#include "fleet/scheduler.hpp"
#include "fleet/sketch.hpp"
#include "scenario/engine.hpp"
#include "scenario/timeline.hpp"

namespace ulpmc::fleet {

/// Fleet run-journal frame kinds ("META"/"RECD"/"HRTB" in ASCII, read as
/// little-endian u32). Shared by the ulpmc-fleet worker that writes them
/// and the farm supervisor that scans them: META binds the journal to the
/// run's options + timeline bytes, RECD carries one finished DeviceRecord,
/// HRTB is a liveness heartbeat carrying [u64 seq][u64 devices-complete].
/// Consumers skip kinds they do not recognize (forward compatibility), so
/// a heartbeat-bearing journal still resumes under an older binary.
inline constexpr std::uint32_t kFleetMetaFrame = 0x4154454Du;
inline constexpr std::uint32_t kFleetRecordFrame = 0x44434552u;
inline constexpr std::uint32_t kFleetHeartbeatFrame = 0x42545248u;

struct FleetOptions {
    std::uint64_t seed = 1;      ///< fleet master seed (everything derives)
    std::uint64_t devices = 1000; ///< GLOBAL fleet size (all shards)
    unsigned cohorts = 8;        ///< workload cohorts (patients)
    unsigned shard_k = 0;        ///< this shard's index in [0, shard_n)
    unsigned shard_n = 1;        ///< total shards
    unsigned threads = 0;        ///< 0: hardware concurrency
    double days = 0;             ///< per-device lifetime; 0 = one timeline pass
    /// Fraction of devices running the no-resilience Baseline policy (the
    /// control arm); the rest run the degradation Ladder.
    double baseline_fraction = 0.25;
    cluster::SimEngine engine = cluster::SimEngine::Trace;
    scenario::LadderThresholds thresholds{};
};

/// Everything about one device that is decided before it runs — derived
/// from the global device index alone (see device_spec).
struct DeviceSpec {
    std::uint64_t gdi = 0;  ///< global device index in [0, devices)
    std::uint64_t seed = 0; ///< strike/link seed (decoupled from workload)
    std::uint32_t cohort = 0;
    cluster::ArchKind arch = cluster::ArchKind::UlpmcBank;
    scenario::Policy policy = scenario::Policy::Ladder;
    double initial_charge = 1.0; ///< state of charge at deployment
};

/// Derives device `gdi`'s spec. Pure function of (opt.seed, opt.devices,
/// opt.cohorts, opt.baseline_fraction, gdi): the same device in a shard
/// run and the unsharded run is byte-identical by construction.
DeviceSpec device_spec(const FleetOptions& opt, std::uint64_t gdi);

/// Number of devices in shard k of n: gdi belongs to shard gdi % n.
std::uint64_t shard_device_count(std::uint64_t devices, unsigned k, unsigned n);

/// Compact per-device result (the append-only store's record, fixed
/// 64 bytes). Quantities that feed cross-shard sums are integers
/// (energy in nanojoules, backoff in microseconds): integer sums are
/// order-free where float sums are not.
struct DeviceRecord {
    std::uint64_t gdi = 0;
    std::uint64_t energy_nj = 0;         ///< total drain: compute+ckpt+reexec+radio
    std::uint64_t samples_total = 0;
    std::uint64_t samples_delivered = 0; ///< full + degraded fidelity at the peer
    std::uint64_t sdc_blocks = 0;
    std::uint32_t total_blocks = 0;
    std::uint32_t max_backoff_us = 0;
    std::uint32_t cohort = 0;
    std::uint8_t arch = 0;     ///< cluster::ArchKind
    std::uint8_t policy = 0;   ///< scenario::Policy
    std::uint8_t browned_out = 0;
    std::uint8_t pad = 0;
};
static_assert(sizeof(DeviceRecord) == 56, "store format: keep the record packed");

/// Integer sub-totals for one slice of the fleet (a policy or an arch).
struct SliceTotals {
    std::uint64_t devices = 0;
    std::uint64_t energy_nj = 0;
    std::uint64_t samples_total = 0;
    std::uint64_t samples_delivered = 0;
    std::uint64_t sdc_blocks = 0;
    std::uint64_t brownouts = 0;
    std::uint64_t total_blocks = 0;

    void add(const DeviceRecord& r);
    void merge(const SliceTotals& o);
};

/// Streaming fleet aggregate: integer totals + quantile sketches. add()
/// and merge() are both commutative in effect (integer sums and sketch
/// bin sums), so shards merged in any order reproduce the unsharded
/// aggregate exactly — pinned by tests and the CI shard-merge diff.
struct FleetAggregate {
    SliceTotals total;
    SliceTotals by_policy[2]; ///< indexed by scenario::Policy
    SliceTotals by_arch[3];   ///< indexed by cluster::ArchKind
    QuantileSketch energy_j;
    QuantileSketch delivered_fraction;
    QuantileSketch sdc_blocks;
    QuantileSketch max_backoff_s;

    void add(const DeviceRecord& r);
    void merge(const FleetAggregate& o);
};

/// Collapses one lifetime report into the store record for device `spec`.
DeviceRecord make_record(const DeviceSpec& spec, const scenario::LifetimeReport& rep);

/// Durable-execution hooks for a fleet shard (DESIGN.md §9.6). Devices
/// are independent, so the unit of progress is one finished DeviceRecord:
/// `lookup` short-circuits a device whose record a journal already holds
/// (its simulation is skipped entirely), and `on_complete` hands over each
/// freshly computed record for persistence — invoked in COMPLETION order,
/// serialized under an internal mutex. Artifacts stay deterministic
/// because they are built from the gdi-ordered result vector, never from
/// the journal's arrival order.
struct FleetResume {
    std::function<bool(std::uint64_t gdi, DeviceRecord& out)> lookup;
    std::function<void(const DeviceRecord&)> on_complete;
};

struct FleetResult {
    /// This shard's records, ascending gdi (the store payload).
    std::vector<DeviceRecord> records;
    FleetAggregate aggregate;
    WorkStealingPool::Stats sched;
    std::size_t calibrations = 0; ///< distinct cache entries computed
    double wall_s = 0;            ///< host wall time (never in JSON artifacts)
    double device_hours = 0;      ///< simulated device-hours executed
};

/// Runs this shard of the fleet. Construction builds the cohort
/// benchmarks (sequential, deterministic); run() executes the shard's
/// devices over the work-stealing pool and aggregates in gdi order.
class FleetEngine {
public:
    FleetEngine(const scenario::Timeline& tl, const FleetOptions& opt);
    ~FleetEngine();

    const FleetOptions& options() const { return opt_; }

    FleetResult run();
    /// Durable flavor: replays journaled devices through resume.lookup and
    /// reports fresh completions through resume.on_complete (FleetResume
    /// above). A shard whose devices all replay re-simulates nothing and
    /// still returns the complete, byte-identical result.
    FleetResult run(const FleetResume& resume);

private:
    scenario::Timeline tl_;
    FleetOptions opt_;
    std::vector<std::shared_ptr<const app::EcgBenchmark>> benches_; ///< per cohort
    scenario::CalibrationCache cache_;
};

} // namespace ulpmc::fleet
