// Fault-tolerant fleet farm (DESIGN.md §13 "Farming").
//
// `--shard K/N` merges are byte-exact and every shard run is
// crash-resumable from its CRC-framed journal, so scattering shards over
// worker PROCESSES is plumbing — but plumbing that loses a worker loses
// the run unless the supervisor is dependable. fleet::Farm is that
// supervisor: it fork/execs one `ulpmc-fleet --shard k/N --resume
// shard_k.jnl` worker per shard, watches each worker's journal for
// progress (device records and periodic heartbeat frames both grow the
// file; a worker whose journal stops growing is hung, whatever its
// process state says), and recovers failures:
//
//   * liveness timeout -> SIGTERM (the worker's graceful-preemption
//     handler finishes in-flight frames and exits with the polite code
//     3) -> SIGKILL after a grace period if the worker stays silent;
//   * any non-zero death -> restart the shard with `--resume` after a
//     truncated-exponential backoff with ±25% seeded jitter (the BleLink
//     retry discipline from scenario/link.cpp) — the journal guarantees
//     no completed device is ever re-simulated;
//   * a bounded per-shard retry budget turns permanent failures into a
//     clean partial-failure report naming the dead shard (a worker that
//     exits 2 — bad usage / journal-meta mismatch — is declared dead
//     immediately: no restart can fix a disagreeing spec).
//
// When every shard completes, the farm merges the shard stores
// IN-PROCESS into the same JSON artifact and ULPF store an unsharded
// `ulpmc-fleet` run would have written, byte for byte (the C++ twin of
// tools/merge_fleet.py; CI cross-checks the two with --verify-against).
//
// A seeded chaos mode SIGKILLs (or SIGSTOPs, to exercise the timeout
// escalation) the farm's own workers at deterministic progress points;
// bench/ext_farm and the CI farm job prove merged output stays
// byte-identical to the unsharded reference despite every kill.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "fleet/fleet.hpp"
#include "scenario/timeline.hpp"

namespace ulpmc::fleet {

class FarmError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct FarmOptions {
    /// Global fleet spec (shard_k/shard_n are ignored: the farm owns the
    /// split — shard k of `workers` goes to worker k).
    FleetOptions fleet;
    std::string timeline_path;
    std::string fleet_bin;     ///< worker binary (ulpmc-fleet)
    std::string dir = "farm";  ///< scratch dir: shard_K.{jnl,json,ulpf,log}
    std::string json_path;     ///< merged JSON artifact ("" = skip)
    std::string store_path;    ///< merged ULPF store ("" = skip)
    unsigned workers = 4;      ///< shard count N (one process per shard)
    unsigned worker_threads = 0; ///< --threads passed to each worker
    double heartbeat_s = 0.5;  ///< worker heartbeat period (--heartbeat)
    double timeout_s = 10.0;   ///< no-journal-growth window before SIGTERM
    double term_grace_s = 2.0; ///< SIGTERM -> SIGKILL escalation grace
    double backoff_base_s = 0.25; ///< restart backoff (BleLink discipline)
    double backoff_max_s = 8.0;
    unsigned retries = 8;      ///< restarts allowed per shard before it is dead
    unsigned chaos_kills = 0;  ///< seeded chaos: direct SIGKILLs to deliver
    unsigned chaos_stalls = 0; ///< seeded chaos: SIGSTOPs (hang -> timeout path)
    std::uint64_t chaos_seed = 1;
    double poll_s = 0.05;      ///< supervisor poll period
};

/// One scheduled chaos disruption: fire once shard `shard`'s journal
/// holds `at_records` device records.
struct ChaosEvent {
    unsigned shard = 0;
    std::uint64_t at_records = 0;
    bool stall = false; ///< SIGSTOP (exercises timeout escalation) vs SIGKILL
};

/// Seeded chaos schedule — a pure function of (workers, devices,
/// chaos_kills, chaos_stalls, chaos_seed), so a campaign is reproducible.
/// Per-shard trigger points are strictly increasing, each within
/// [1, ~60% of the shard's device count] so the kill lands before the
/// worker can finish.
std::vector<ChaosEvent> chaos_schedule(const FarmOptions& opt);

/// Restart backoff for the `restart`-th restart (1-based): truncated
/// binary exponential with ±25% seeded jitter, capped at `max_s` AFTER
/// jitter — exactly the BleLink::enter_backoff discipline.
double farm_backoff_s(double base_s, double max_s, unsigned restart, Rng& rng);

/// Incremental shard-journal scan state. The farm never re-reads a
/// journal from the start while a worker runs: it keeps the byte offset
/// of the last complete frame and parses only the new tail each poll.
struct JournalProgress {
    std::uint64_t offset = 0;  ///< bytes covered by complete, CRC-valid frames
    std::uint64_t bytes = 0;   ///< file size at the last scan (liveness signal)
    std::uint64_t record_frames = 0; ///< RECD frames (appended only for fresh sims)
    std::uint64_t heartbeats = 0;    ///< HRTB frames
    std::uint64_t heartbeat_devices = 0; ///< completed count piggybacked on last HRTB
    std::uint64_t duplicate_records = 0; ///< a gdi journaled twice = a re-simulated device
    std::unordered_set<std::uint64_t> gdis; ///< distinct journaled devices
};

/// Parses complete frames from `p.offset` onward, updating counts. A
/// torn or mid-append tail is left alone (the offset only advances past
/// CRC-valid frames); a missing file is simply "no progress yet".
void scan_journal(const std::string& path, JournalProgress& p);

struct ShardOutcome {
    std::uint64_t devices = 0;  ///< shard device count
    unsigned attempts = 0;      ///< worker processes launched
    unsigned chaos_kills = 0;   ///< chaos SIGKILLs delivered
    unsigned chaos_stalls = 0;  ///< chaos SIGSTOPs delivered
    unsigned timeout_terms = 0; ///< SIGTERMs sent on liveness timeout
    unsigned timeout_kills = 0; ///< SIGKILL escalations after the grace
    unsigned preempted_exits = 0; ///< polite exit-3 deaths (graceful preemption)
    std::uint64_t journaled = 0;       ///< distinct devices in the final journal
    std::uint64_t record_frames = 0;   ///< total RECD frames (== journaled proves no re-sim)
    std::uint64_t duplicate_records = 0;
    bool done = false;
    bool dead = false; ///< retry budget exhausted or permanent (exit 2) failure
    int last_status = 0; ///< last exit code, or -signo for signal deaths
};

struct FarmReport {
    std::vector<ShardOutcome> shards;
    unsigned restarts = 0; ///< worker launches beyond each shard's first
    unsigned chaos_kills = 0;
    unsigned chaos_stalls = 0;
    unsigned chaos_undelivered = 0; ///< scheduled events the worker outran
    unsigned timeout_terms = 0;
    unsigned timeout_kills = 0;
    unsigned preempted_exits = 0;
    std::uint64_t devices_simulated = 0; ///< total RECD frames across shards
    std::uint64_t devices_journaled = 0; ///< distinct journaled devices
    std::uint64_t duplicate_records = 0; ///< must be 0: no journaled device re-simulated
    std::vector<unsigned> dead_shards;
    double wall_s = 0;
    bool complete = false;  ///< all shards done and the merge succeeded
    std::string merged_json; ///< merged artifact text (only when complete)
};

/// A complete shard-store set merged back into the unsharded shape.
struct MergedFleet {
    std::vector<DeviceRecord> records; ///< ascending gdi, all shards
    FleetAggregate aggregate;
    std::string json; ///< byte-identical to the unsharded ulpmc-fleet artifact
};

/// Merges the shard stores `store_paths[k]` (shard k of store_paths.size())
/// into the unsharded artifact. Validates every header against the fleet
/// spec (seed/devices/cohorts/shard arithmetic); throws FarmError or
/// FleetStoreError on any disagreement. `fleet`'s shard fields are ignored.
MergedFleet merge_stores(const FleetOptions& fleet, const std::string& timeline_name,
                         double block_period_s, const std::vector<std::string>& store_paths);

/// The supervisor. Construction validates options and loads the timeline
/// (throws FarmError on unusable options, an unreadable timeline, or a
/// non-executable worker binary); run() supervises to completion.
class Farm {
public:
    explicit Farm(const FarmOptions& opt, std::ostream* log = nullptr);

    const scenario::Timeline& timeline() const { return tl_; }

    /// Runs all shards to completion (or death), merges, and writes the
    /// merged artifacts when json_path/store_path are set. Never throws
    /// for worker failures — those are the report's job; throws FarmError
    /// only for supervisor-level impossibilities (spawn failure, scratch
    /// dir not creatable) and FleetStoreError for a corrupt final store.
    FarmReport run();

private:
    FarmOptions opt_;
    scenario::Timeline tl_;
    std::string timeline_name_;
    std::ostream* log_;
};

/// Human summary of a supervision run (stdout of ulpmc-farm).
void print_farm_summary(std::ostream& os, const FarmOptions& opt, const FarmReport& rep);

/// Machine-readable supervision report (--report artifact; counters and
/// outcomes only, never byte-gated — the merged JSON is the gated one).
void write_farm_report(std::ostream& os, const FarmOptions& opt, const FarmReport& rep);

} // namespace ulpmc::fleet
