#include "fleet/fleet.hpp"

#include <chrono>
#include <cmath>
#include <mutex>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"

namespace ulpmc::fleet {

namespace {

/// Seed-stream prefixes inside the FLEET seed domain (the per-device
/// engine owns its own domain under the device seed). High-byte prefixes
/// keep the gdi-indexed streams disjoint for any fleet below 2^40.
constexpr std::uint64_t kSpecStream = 0xF1EE7A00'00000000ull;   ///< spec draws
constexpr std::uint64_t kDeviceStream = 0xF1EE7B00'00000000ull; ///< strike/link seed
constexpr std::uint64_t kCohortStream = 0xF1EE7C00'00000000ull; ///< workload seed

} // namespace

DeviceSpec device_spec(const FleetOptions& opt, std::uint64_t gdi) {
    ULPMC_EXPECTS(gdi < opt.devices);
    ULPMC_EXPECTS(opt.cohorts >= 1);
    DeviceSpec s;
    s.gdi = gdi;
    s.seed = fault::mix_seed(opt.seed, kDeviceStream + gdi);
    s.cohort = static_cast<std::uint32_t>(gdi % opt.cohorts);

    // Every draw comes from a generator keyed by the global index, never
    // by execution order — the same discipline as the campaign layer.
    Rng r(fault::mix_seed(opt.seed, kSpecStream + gdi));
    const double ua = r.uniform();
    s.arch = ua < 0.5   ? cluster::ArchKind::UlpmcBank
             : ua < 0.8 ? cluster::ArchKind::UlpmcInt
                        : cluster::ArchKind::McRef;
    s.policy = r.uniform() < opt.baseline_fraction ? scenario::Policy::Baseline
                                                   : scenario::Policy::Ladder;
    // Deployed anywhere from freshly charged to 60%: staggers where each
    // device enters the degradation ladder.
    s.initial_charge = 0.6 + 0.4 * r.uniform();
    return s;
}

std::uint64_t shard_device_count(std::uint64_t devices, unsigned k, unsigned n) {
    ULPMC_EXPECTS(n >= 1 && k < n);
    // Devices with gdi % n == k: gdi = k, k + n, k + 2n, ...
    return devices > k ? (devices - k - 1) / n + 1 : 0;
}

void SliceTotals::add(const DeviceRecord& r) {
    ++devices;
    energy_nj += r.energy_nj;
    samples_total += r.samples_total;
    samples_delivered += r.samples_delivered;
    sdc_blocks += r.sdc_blocks;
    brownouts += r.browned_out;
    total_blocks += r.total_blocks;
}

void SliceTotals::merge(const SliceTotals& o) {
    devices += o.devices;
    energy_nj += o.energy_nj;
    samples_total += o.samples_total;
    samples_delivered += o.samples_delivered;
    sdc_blocks += o.sdc_blocks;
    brownouts += o.brownouts;
    total_blocks += o.total_blocks;
}

void FleetAggregate::add(const DeviceRecord& r) {
    total.add(r);
    by_policy[r.policy].add(r);
    by_arch[r.arch].add(r);
    // Sketch inputs derive from the record's INTEGER fields, so a merged
    // shard sees bit-identical doubles to the unsharded run.
    energy_j.add(static_cast<double>(r.energy_nj) * 1e-9);
    delivered_fraction.add(r.samples_total > 0
                               ? static_cast<double>(r.samples_delivered) /
                                     static_cast<double>(r.samples_total)
                               : 0.0);
    sdc_blocks.add(static_cast<double>(r.sdc_blocks));
    max_backoff_s.add(static_cast<double>(r.max_backoff_us) * 1e-6);
}

void FleetAggregate::merge(const FleetAggregate& o) {
    total.merge(o.total);
    for (int i = 0; i < 2; ++i) by_policy[i].merge(o.by_policy[i]);
    for (int i = 0; i < 3; ++i) by_arch[i].merge(o.by_arch[i]);
    energy_j.merge(o.energy_j);
    delivered_fraction.merge(o.delivered_fraction);
    sdc_blocks.merge(o.sdc_blocks);
    max_backoff_s.merge(o.max_backoff_s);
}

DeviceRecord make_record(const DeviceSpec& spec, const scenario::LifetimeReport& rep) {
    DeviceRecord r;
    r.gdi = spec.gdi;
    r.cohort = spec.cohort;
    r.arch = static_cast<std::uint8_t>(spec.arch);
    r.policy = static_cast<std::uint8_t>(spec.policy);
    double energy = 0;
    for (const scenario::PhaseReport& p : rep.phases)
        energy += p.energy_compute_j + p.energy_checkpoint_j + p.energy_reexec_j +
                  p.energy_radio_j;
    // Quantize floats at the device boundary: every cross-device /
    // cross-shard reduction downstream is an integer sum.
    r.energy_nj = static_cast<std::uint64_t>(std::llround(energy * 1e9));
    r.samples_total = rep.samples_total;
    r.samples_delivered = rep.link.samples_delivered + rep.link.samples_delivered_degraded;
    r.sdc_blocks = rep.sdc_blocks;
    r.total_blocks = static_cast<std::uint32_t>(rep.total_blocks);
    r.max_backoff_us =
        static_cast<std::uint32_t>(std::llround(rep.link.max_backoff_s * 1e6));
    r.browned_out = rep.first_brownout_s >= 0 ? 1 : 0;
    return r;
}

FleetEngine::FleetEngine(const scenario::Timeline& tl, const FleetOptions& opt)
    : tl_(tl), opt_(opt) {
    ULPMC_EXPECTS(opt_.devices >= 1);
    ULPMC_EXPECTS(opt_.cohorts >= 1);
    ULPMC_EXPECTS(opt_.shard_n >= 1 && opt_.shard_k < opt_.shard_n);
    ULPMC_EXPECTS(opt_.baseline_fraction >= 0 && opt_.baseline_fraction <= 1);
    // One benchmark per workload cohort (the patient): built once here,
    // sequentially, and shared read-only by every device in the cohort.
    benches_.reserve(opt_.cohorts);
    for (unsigned c = 0; c < opt_.cohorts; ++c) {
        benches_.push_back(std::make_shared<const app::EcgBenchmark>(app::BenchmarkOptions{
            .seed = fault::mix_seed(opt_.seed, kCohortStream + c)}));
    }
}

FleetEngine::~FleetEngine() = default;

FleetResult FleetEngine::run() { return run(FleetResume{}); }

FleetResult FleetEngine::run(const FleetResume& resume) {
    const std::uint64_t count = shard_device_count(opt_.devices, opt_.shard_k, opt_.shard_n);
    FleetResult res;
    res.records.resize(count);

    WorkStealingPool pool(opt_.threads);
    // One sequential SweepRunner per worker: the lifetime engine's
    // struck-block fan-out runs caller-only inside a fleet worker (the
    // fleet already saturates the machine at device granularity).
    std::vector<std::unique_ptr<sweep::SweepRunner>> runners;
    runners.reserve(pool.threads());
    for (unsigned i = 0; i < pool.threads(); ++i)
        runners.push_back(std::make_unique<sweep::SweepRunner>(1));

    const auto t0 = std::chrono::steady_clock::now();
    std::mutex complete_m;
    res.sched = pool.run(count, [&](std::uint64_t i, unsigned worker) {
        const std::uint64_t gdi = opt_.shard_k + i * opt_.shard_n;
        if (resume.lookup) {
            DeviceRecord replayed;
            if (resume.lookup(gdi, replayed)) {
                // Journal replay: the record was persisted by a previous
                // attempt of this exact run — adopt it, simulate nothing.
                ULPMC_EXPECTS(replayed.gdi == gdi);
                res.records[i] = replayed;
                return;
            }
        }
        const DeviceSpec spec = device_spec(opt_, gdi);
        scenario::DeviceConfig dc;
        dc.arch = spec.arch;
        dc.engine = opt_.engine;
        dc.seed = spec.seed;
        dc.policy = spec.policy;
        dc.max_days = opt_.days;
        dc.thresholds = opt_.thresholds;
        dc.battery.initial_fraction = spec.initial_charge;
        scenario::LifetimeEngine eng(tl_, dc, benches_[spec.cohort], &cache_);
        res.records[i] = make_record(spec, eng.run(*runners[worker]));
        if (resume.on_complete) {
            std::lock_guard lock(complete_m);
            resume.on_complete(res.records[i]);
        }
    });
    res.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    // Aggregate strictly in ascending gdi order — the scheduler's
    // execution order never reaches the artifact.
    for (const DeviceRecord& r : res.records) res.aggregate.add(r);
    res.calibrations = cache_.size();
    res.device_hours =
        static_cast<double>(res.aggregate.total.total_blocks) * tl_.block_period_s / 3600.0;
    return res;
}

} // namespace ulpmc::fleet
