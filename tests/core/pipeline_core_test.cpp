#include "core/pipeline_core.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace ulpmc::core {
namespace {

/// Runs `source` on the pipeline with the given policy; returns the core.
struct PipeRun {
    CoreState state;
    PipelineStats stats;
    Trap trap;
    FlatMemory mem;
};

PipeRun run_pipe(const char* source, BranchPolicy policy) {
    const auto prog = isa::assemble(source);
    PipeRun r{.state = {}, .stats = {}, .trap = Trap::None, .mem = FlatMemory(4096)};
    r.mem.load(0, prog.data);
    PipelineCore core(prog.text, r.mem, policy);
    core.state().pc = prog.entry;
    core.run();
    r.state = core.state();
    r.stats = core.stats();
    r.trap = core.trap();
    return r;
}

RunResult run_gold(const char* source) {
    return run_program(isa::assemble(source));
}

const char* kBranchy = R"(
        movi r1, 50
        movi r2, 0
    loop:
        add  r2, r2, r1
        sub  r1, r1, #1
        bra  ne, loop
        movi r3, 64
        mov  @r3, r2
        hlt
)";

class PipelinePolicies : public ::testing::TestWithParam<BranchPolicy> {};

TEST_P(PipelinePolicies, ArchitecturalStateMatchesISS) {
    const auto gold = run_gold(kBranchy);
    const auto pipe = run_pipe(kBranchy, GetParam());
    EXPECT_EQ(pipe.trap, Trap::None);
    EXPECT_EQ(pipe.state.regs, gold.state.regs);
    EXPECT_EQ(pipe.state.flags, gold.state.flags);
    EXPECT_EQ(pipe.stats.instret, gold.instret);
    EXPECT_EQ(pipe.mem.peek(64), gold.memory.peek(64));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PipelinePolicies,
                         ::testing::Values(BranchPolicy::ZeroPenalty, BranchPolicy::OnePenalty,
                                           BranchPolicy::TwoPenalty),
                         [](const auto& info) {
                             switch (info.param) {
                             case BranchPolicy::ZeroPenalty:
                                 return "Zero";
                             case BranchPolicy::OnePenalty:
                                 return "One";
                             default:
                                 return "Two";
                             }
                         });

TEST(PipelineCoreTest, ZeroPenaltyHasUnitCpi) {
    // The paper's claim: all instructions execute in one cycle. Beyond the
    // single pipeline-fill cycle, cycles == instructions even across the
    // benchmark-style backward branches.
    const auto pipe = run_pipe(kBranchy, BranchPolicy::ZeroPenalty);
    EXPECT_EQ(pipe.stats.cycles, pipe.stats.instret + 1);
    EXPECT_EQ(pipe.stats.branch_bubbles, 0u);
}

TEST(PipelineCoreTest, BranchPenaltiesCostExactlyTheirBubbles) {
    const auto zero = run_pipe(kBranchy, BranchPolicy::ZeroPenalty);
    const auto one = run_pipe(kBranchy, BranchPolicy::OnePenalty);
    const auto two = run_pipe(kBranchy, BranchPolicy::TwoPenalty);
    ASSERT_EQ(zero.stats.taken_branches, one.stats.taken_branches);
    EXPECT_EQ(one.stats.cycles, zero.stats.cycles + one.stats.taken_branches);
    EXPECT_EQ(two.stats.cycles, zero.stats.cycles + 2 * two.stats.taken_branches);
}

TEST(PipelineCoreTest, PaperCycleCountsRequireZeroPenalty) {
    // With ~1 taken branch per 5 instructions (the CS inner loop shape),
    // CPI under the slower policies drifts far from the paper's ~1.001.
    const auto zero = run_pipe(kBranchy, BranchPolicy::ZeroPenalty);
    const auto two = run_pipe(kBranchy, BranchPolicy::TwoPenalty);
    EXPECT_LT(zero.stats.cpi(), 1.02);
    EXPECT_GT(two.stats.cpi(), 1.3);
}

TEST(PipelineCoreTest, BubbleAccounting) {
    const auto one = run_pipe(kBranchy, BranchPolicy::OnePenalty);
    EXPECT_EQ(one.stats.branch_bubbles, one.stats.taken_branches);
    const auto two = run_pipe(kBranchy, BranchPolicy::TwoPenalty);
    EXPECT_EQ(two.stats.branch_bubbles, 2 * two.stats.taken_branches);
}

TEST(PipelineCoreTest, CountsBypassedOperands) {
    // r2 is produced and consumed by back-to-back instructions in every
    // iteration: one bypass per loop trip.
    const char* src = R"(
        movi r1, 50
    loop:
        add  r2, r2, #1
        add  r3, r2, #2     ; consumes r2 the very next cycle
        sub  r1, r1, #1
        bra  ne, loop
        hlt
    )";
    const auto pipe = run_pipe(src, BranchPolicy::ZeroPenalty);
    EXPECT_GE(pipe.stats.bypasses, 50u);
}

TEST(PipelineCoreTest, BackToBackDependencyIsCorrect) {
    // The tightest hazard: consumer immediately follows producer, plus a
    // memory write-back consumed by the next instruction ("complete data
    // bypassing ... for registers as well as memory write-back data").
    const char* src = R"(
        movi r1, 100
        movi r2, 7
        add  r3, r2, r2     ; r3 = 14
        mull r4, r3, r3     ; r4 = 196 (uses r3 immediately)
        mov  @r1, r4
        mov  r5, @r1        ; reads the word written the cycle before
        add  r6, r5, #1     ; r6 = 197
        hlt
    )";
    const auto pipe = run_pipe(src, BranchPolicy::ZeroPenalty);
    EXPECT_EQ(pipe.state.regs[6], 197);
    EXPECT_GE(pipe.stats.bypasses, 2u);
}

TEST(PipelineCoreTest, BackwardBranchAtProgramEndIsHarmless) {
    const char* src = R"(
        movi r1, 3
    l:  sub  r1, r1, #1
        bra  ne, l
        hlt
    )";
    for (const auto pol :
         {BranchPolicy::ZeroPenalty, BranchPolicy::OnePenalty, BranchPolicy::TwoPenalty}) {
        const auto pipe = run_pipe(src, pol);
        EXPECT_EQ(pipe.trap, Trap::None);
        EXPECT_EQ(pipe.state.regs[1], 0);
    }
}

TEST(PipelineCoreTest, RunningOffTheEndTraps) {
    const auto pipe = run_pipe("nop\nnop\n", BranchPolicy::ZeroPenalty);
    EXPECT_EQ(pipe.trap, Trap::FetchFault);
}

TEST(PipelineCoreTest, IllegalInstructionTrapsFromDecode) {
    isa::Program prog;
    prog.text = {0xF00000u};
    FlatMemory mem(64);
    PipelineCore core(prog.text, mem);
    core.run(100);
    EXPECT_EQ(core.trap(), Trap::IllegalInstruction);
    EXPECT_EQ(core.stats().instret, 0u);
}

TEST(PipelineCoreTest, MemoryFaultSurfaces) {
    const char* src = R"(
        movi r1, 0x2000     ; beyond the 4096-word test memory
        mov  r2, @r1
        hlt
    )";
    const auto pipe = run_pipe(src, BranchPolicy::ZeroPenalty);
    EXPECT_EQ(pipe.trap, Trap::MemoryFault);
}

TEST(PipelineCoreTest, SubroutinesWork) {
    const char* src = R"(
        movi r1, 10
        jal  r14, twice
        jal  r14, twice
        hlt
    twice:
        add  r1, r1, r1
        ret  r14
    )";
    const auto pipe = run_pipe(src, BranchPolicy::ZeroPenalty);
    EXPECT_EQ(pipe.state.regs[1], 40);
    const auto gold = run_gold(src);
    EXPECT_EQ(pipe.state.regs, gold.state.regs);
}

TEST(PipelineCoreTest, OneFetchPerCommittedInstruction) {
    // No wrong-path fetches exist in this microarchitecture: redirects
    // either steer the same-cycle fetch or hold the fetcher.
    for (const auto pol :
         {BranchPolicy::ZeroPenalty, BranchPolicy::OnePenalty, BranchPolicy::TwoPenalty}) {
        const auto pipe = run_pipe(kBranchy, pol);
        EXPECT_EQ(pipe.stats.fetches, pipe.stats.instret);
    }
}

} // namespace
} // namespace ulpmc::core
