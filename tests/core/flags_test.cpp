#include "core/flags.hpp"

#include <gtest/gtest.h>

namespace ulpmc::core {
namespace {

using isa::Cond;

/// Exhaustive truth table over all 16 flag states for every condition
/// (TEST_P sweep — the "15 condition modes" of the paper plus AL).
struct CondCase {
    Cond cond;
    /// expected(c, z, n, v)
    bool (*expected)(bool, bool, bool, bool);
};

class CondTruthTable : public ::testing::TestWithParam<CondCase> {};

TEST_P(CondTruthTable, MatchesDefinition) {
    const auto& tc = GetParam();
    for (int bitsv = 0; bitsv < 16; ++bitsv) {
        Flags f;
        f.c = bitsv & 1;
        f.z = bitsv & 2;
        f.n = bitsv & 4;
        f.v = bitsv & 8;
        EXPECT_EQ(cond_holds(tc.cond, f), tc.expected(f.c, f.z, f.n, f.v))
            << "cond " << static_cast<int>(tc.cond) << " flags " << bitsv;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, CondTruthTable,
    ::testing::Values(
        CondCase{Cond::AL, [](bool, bool, bool, bool) { return true; }},
        CondCase{Cond::EQ, [](bool, bool z, bool, bool) { return z; }},
        CondCase{Cond::NE, [](bool, bool z, bool, bool) { return !z; }},
        CondCase{Cond::CS, [](bool c, bool, bool, bool) { return c; }},
        CondCase{Cond::CC, [](bool c, bool, bool, bool) { return !c; }},
        CondCase{Cond::MI, [](bool, bool, bool n, bool) { return n; }},
        CondCase{Cond::PL, [](bool, bool, bool n, bool) { return !n; }},
        CondCase{Cond::VS, [](bool, bool, bool, bool v) { return v; }},
        CondCase{Cond::VC, [](bool, bool, bool, bool v) { return !v; }},
        CondCase{Cond::HI, [](bool c, bool z, bool, bool) { return c && !z; }},
        CondCase{Cond::LS, [](bool c, bool z, bool, bool) { return !c || z; }},
        CondCase{Cond::GE, [](bool, bool, bool n, bool v) { return n == v; }},
        CondCase{Cond::LT, [](bool, bool, bool n, bool v) { return n != v; }},
        CondCase{Cond::GT, [](bool, bool z, bool n, bool v) { return !z && n == v; }},
        CondCase{Cond::LE, [](bool, bool z, bool n, bool v) { return z || n != v; }},
        CondCase{Cond::NV, [](bool, bool, bool, bool) { return false; }}));

TEST(Flags, ComplementaryPairs) {
    // Every condition 1..14 has its complement; NV complements AL.
    for (int bitsv = 0; bitsv < 16; ++bitsv) {
        Flags f;
        f.c = bitsv & 1;
        f.z = bitsv & 2;
        f.n = bitsv & 4;
        f.v = bitsv & 8;
        EXPECT_NE(cond_holds(Cond::EQ, f), cond_holds(Cond::NE, f));
        EXPECT_NE(cond_holds(Cond::CS, f), cond_holds(Cond::CC, f));
        EXPECT_NE(cond_holds(Cond::MI, f), cond_holds(Cond::PL, f));
        EXPECT_NE(cond_holds(Cond::VS, f), cond_holds(Cond::VC, f));
        EXPECT_NE(cond_holds(Cond::HI, f), cond_holds(Cond::LS, f));
        EXPECT_NE(cond_holds(Cond::GE, f), cond_holds(Cond::LT, f));
        EXPECT_NE(cond_holds(Cond::GT, f), cond_holds(Cond::LE, f));
        EXPECT_NE(cond_holds(Cond::AL, f), cond_holds(Cond::NV, f));
    }
}

} // namespace
} // namespace ulpmc::core
