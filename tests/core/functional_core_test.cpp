#include "core/functional_core.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace ulpmc::core {
namespace {

TEST(FunctionalCore, RunsToHalt) {
    const auto p = isa::assemble(R"(
        movi r1, 41
        add  r1, r1, #1
        hlt
    )");
    const auto r = run_program(p);
    EXPECT_EQ(r.trap, Trap::None);
    EXPECT_EQ(r.state.regs[1], 42);
    EXPECT_EQ(r.instret, 3u);
}

TEST(FunctionalCore, SumLoop) {
    // Sum 1..100 into r2.
    const auto p = isa::assemble(R"(
        movi r1, 100
        movi r2, 0
    loop:
        add  r2, r2, r1
        sub  r1, r1, #1
        bra  ne, loop
        hlt
    )");
    const auto r = run_program(p);
    EXPECT_EQ(r.state.regs[2], 5050);
}

TEST(FunctionalCore, MemoryCopyWithPostIncrement) {
    const auto p = isa::assemble(R"(
        movi r1, src
        movi r2, dst
        movi r3, 4
    loop:
        mov  @r2+, @r1+
        sub  r3, r3, #1
        bra  ne, loop
        hlt
        .data
    src:  .word 10, 20, 30, 40
    dst:  .space 4
    )");
    const auto r = run_program(p);
    const Addr dst = p.data_addr("dst");
    EXPECT_EQ(r.memory.peek(dst), 10);
    EXPECT_EQ(r.memory.peek(dst + 3), 40);
}

TEST(FunctionalCore, SubroutineCallAndReturn) {
    const auto p = isa::assemble(R"(
        movi r1, 5
        jal  r14, double
        jal  r14, double
        hlt
    double:
        add  r1, r1, r1
        ret  r14
    )");
    const auto r = run_program(p);
    EXPECT_EQ(r.state.regs[1], 20);
}

TEST(FunctionalCore, Fibonacci) {
    // fib(16) = 987 via iteration.
    const auto p = isa::assemble(R"(
        movi r1, 0
        movi r2, 1
        movi r3, 15
    loop:
        add  r4, r1, r2
        mov  r1, r2
        mov  r2, r4
        sub  r3, r3, #1
        bra  ne, loop
        hlt
    )");
    const auto r = run_program(p);
    EXPECT_EQ(r.state.regs[2], 987);
}

TEST(FunctionalCore, LoadWithOffsetAddressing) {
    const auto p = isa::assemble(R"(
        movi r1, table
        mov  r2, @r1+2
        mov  r3, @r1+0
        hlt
        .data
    table: .word 7, 8, 9
    )");
    const auto r = run_program(p);
    EXPECT_EQ(r.state.regs[2], 9);
    EXPECT_EQ(r.state.regs[3], 7);
}

TEST(FunctionalCore, IllegalInstructionTraps) {
    isa::Program p;
    p.text = {0xF00000u}; // reserved opcode 15
    FlatMemory mem;
    FunctionalCore c(p.text, mem);
    EXPECT_EQ(c.step(), Trap::IllegalInstruction);
    EXPECT_EQ(c.trap(), Trap::IllegalInstruction);
    // Further steps stay trapped and execute nothing.
    EXPECT_EQ(c.step(), Trap::IllegalInstruction);
    EXPECT_EQ(c.instret(), 0u);
}

TEST(FunctionalCore, FetchBeyondProgramTraps) {
    const auto p = isa::assemble("nop"); // falls off the end
    const auto r = run_program(p);
    EXPECT_EQ(r.trap, Trap::FetchFault);
}

TEST(FunctionalCore, MemoryFaultOnOutOfRangeAccess) {
    const auto p = isa::assemble(R"(
        movi r1, 0xFFFF
        mov  r2, @r1
        hlt
    )");
    // Flat memory is 32768 words; 0xFFFF faults.
    const auto r = run_program(p);
    EXPECT_EQ(r.trap, Trap::MemoryFault);
}

TEST(FunctionalCore, HaltStopsCounting) {
    const auto p = isa::assemble("hlt");
    const auto r = run_program(p, 1000);
    EXPECT_EQ(r.instret, 1u);
    EXPECT_EQ(r.trap, Trap::None);
}

TEST(FunctionalCore, TracerSeesEveryInstruction) {
    const auto p = isa::assemble(R"(
        movi r1, 1
        movi r2, 2
        hlt
    )");
    FlatMemory mem;
    FunctionalCore c(p.text, mem);
    std::vector<PAddr> pcs;
    c.set_tracer([&](const TraceEntry& e) { pcs.push_back(e.pc); });
    c.run();
    EXPECT_EQ(pcs, (std::vector<PAddr>{0, 1, 2}));
}

TEST(FunctionalCore, EntryPointRespected) {
    const auto p = isa::assemble(R"(
        .entry main
        movi r1, 111
        hlt
    main:
        movi r1, 222
        hlt
    )");
    const auto r = run_program(p);
    EXPECT_EQ(r.state.regs[1], 222);
}

TEST(FunctionalCore, BlockDispatchMatchesStepLoop) {
    // Mixed workload — loops, memory traffic, a register-indirect branch
    // re-entering mid-block — run through run()'s block dispatcher (in two
    // chunks, so a block is split by the step budget) and through a pure
    // step() loop. State, trap, instret and memory must be identical.
    const auto p = isa::assemble(R"(
            movi r1, 3
            movi r5, 5
            add  r2, r2, #1
            add  r3, r3, #1
            movi r6, 100
            mov  @r6+, r3
            add  r4, r4, #1
            sub  r1, r1, #1
            bra  ne, @r5
            hlt
    )");
    FlatMemory m1, m2;
    FunctionalCore a(p.text, m1);
    FunctionalCore b(p.text, m2);
    a.run(7); // stop mid-block: the dispatcher must resume exactly there
    a.run();
    while (!b.halted() && b.trap() == Trap::None) b.step();
    EXPECT_EQ(a.state(), b.state());
    EXPECT_EQ(a.trap(), b.trap());
    EXPECT_EQ(a.instret(), b.instret());
    for (Addr i = 95; i < 110; ++i) EXPECT_EQ(m1.peek(i), m2.peek(i)) << "addr " << i;
}

TEST(FunctionalCore, BlockDispatchStoreFaultLeavesStateIntact) {
    // A store past the end of memory inside a memo-legal block: the block
    // dispatcher must raise MemoryFault with the faulting instruction NOT
    // committed, exactly like step().
    const auto p = isa::assemble(R"(
            movi r1, 100
            add  r3, r3, #1
            mov  @r1, r3
            hlt
    )");
    FlatMemory m1(16);
    FlatMemory m2(16);
    FunctionalCore a(p.text, m1);
    FunctionalCore b(p.text, m2);
    EXPECT_EQ(a.run(), Trap::MemoryFault);
    while (!b.halted() && b.trap() == Trap::None) b.step();
    EXPECT_EQ(b.trap(), Trap::MemoryFault);
    EXPECT_EQ(a.state(), b.state());
    EXPECT_EQ(a.instret(), b.instret());
}

TEST(FlatMemoryTest, ReadWriteAndBounds) {
    FlatMemory m(16);
    EXPECT_TRUE(m.write(3, 99));
    Word v = 0;
    EXPECT_TRUE(m.read(3, v));
    EXPECT_EQ(v, 99);
    EXPECT_FALSE(m.read(16, v));
    EXPECT_FALSE(m.write(16, 1));
}

} // namespace
} // namespace ulpmc::core
