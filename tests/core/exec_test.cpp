#include "core/exec.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace ulpmc::core {
namespace {

using namespace ulpmc::isa;

CoreState state_with(std::initializer_list<std::pair<int, Word>> regs, PAddr pc = 0) {
    CoreState s;
    s.pc = pc;
    for (const auto& [r, v] : regs) s.regs[static_cast<std::size_t>(r)] = v;
    return s;
}

// ---- plan_memory ------------------------------------------------------------

TEST(PlanMemory, RegisterOnlyHasNoAccesses) {
    const auto plan = plan_memory(make_alu(Opcode::ADD, dreg(0), sreg(1), sreg(2)), CoreState{});
    EXPECT_FALSE(plan.load);
    EXPECT_FALSE(plan.store);
}

TEST(PlanMemory, IndirectModes) {
    const auto s = state_with({{1, 100}, {2, 200}});
    EXPECT_EQ(plan_memory(make_alu(Opcode::ADD, dreg(0), sind(1), sreg(2)), s).load, 100);
    EXPECT_EQ(plan_memory(make_alu(Opcode::ADD, dreg(0), spostinc(1), sreg(2)), s).load, 100);
    EXPECT_EQ(plan_memory(make_alu(Opcode::ADD, dreg(0), spostdec(1), sreg(2)), s).load, 100);
    EXPECT_EQ(plan_memory(make_alu(Opcode::ADD, dreg(0), spreinc(1), sreg(2)), s).load, 101);
    EXPECT_EQ(plan_memory(make_alu(Opcode::ADD, dreg(0), spredec(1), sreg(2)), s).load, 99);
}

TEST(PlanMemory, MovOffset) {
    const auto s = state_with({{2, 500}});
    EXPECT_EQ(plan_memory(make_mov(dreg(1), soff(2), 7), s).load, 507);
    EXPECT_EQ(plan_memory(make_mov(dreg(1), soff(2), -7), s).load, 493);
    EXPECT_EQ(plan_memory(make_mov(doff(2), sreg(1), 3), s).store, 503);
}

TEST(PlanMemory, HasNoSideEffects) {
    const auto s = state_with({{1, 100}});
    const auto in = make_alu(Opcode::ADD, dreg(0), spostinc(1), sreg(2));
    (void)plan_memory(in, s);
    EXPECT_EQ(s.regs[1], 100); // const: the point is plan is pure
    // And two consecutive plans agree.
    EXPECT_EQ(plan_memory(in, s).load, plan_memory(in, s).load);
}

TEST(PlanMemory, SequentialSideEffectsAcrossOperands) {
    // dst @r1+ with srcA @r1+: srcA EA = r1, dst EA = r1 + 1.
    const auto s = state_with({{1, 10}});
    const auto in = make_mov(dpostinc(1), spostinc(1));
    const auto plan = plan_memory(in, s);
    EXPECT_EQ(plan.load, 10);
    EXPECT_EQ(plan.store, 11);
}

TEST(PlanMemory, BranchesAndMoviPlanNothing) {
    EXPECT_FALSE(plan_memory(make_bra(Cond::AL, BraMode::Rel, 2), CoreState{}).load);
    EXPECT_FALSE(plan_memory(make_movi(1, 99), CoreState{}).load);
    EXPECT_FALSE(plan_memory(make_jal(14, BraMode::Abs, 3), CoreState{}).store);
}

// ---- execute ----------------------------------------------------------------

TEST(Execute, AluRegisterForm) {
    const auto s = state_with({{1, 7}, {2, 5}});
    const auto fx = execute(make_alu(Opcode::SUB, dreg(3), sreg(1), sreg(2)), s, std::nullopt);
    EXPECT_EQ(fx.next.regs[3], 2);
    EXPECT_EQ(fx.next.pc, 1);
    EXPECT_TRUE(fx.next.flags.c);
    EXPECT_FALSE(fx.halt);
}

TEST(Execute, LoadedValueFeedsMemoryOperand) {
    const auto s = state_with({{1, 100}, {2, 1}});
    const auto fx = execute(make_alu(Opcode::ADD, dreg(3), sind(1), sreg(2)), s, Word{41});
    EXPECT_EQ(fx.next.regs[3], 42);
}

TEST(Execute, MissingLoadIsContractViolation) {
    const auto s = state_with({{1, 100}});
    EXPECT_THROW(execute(make_alu(Opcode::ADD, dreg(3), sind(1), sreg(2)), s, std::nullopt),
                 contract_violation);
}

TEST(Execute, PostIncrementUpdatesRegister) {
    const auto s = state_with({{1, 100}});
    const auto fx = execute(make_mov(dreg(3), spostinc(1)), s, Word{5});
    EXPECT_EQ(fx.next.regs[1], 101);
    EXPECT_EQ(fx.next.regs[3], 5);
}

TEST(Execute, PreDecrementUpdatesRegister) {
    const auto s = state_with({{1, 100}});
    const auto fx = execute(make_mov(dreg(3), spredec(1)), s, Word{5});
    EXPECT_EQ(fx.next.regs[1], 99);
}

TEST(Execute, StoreValueProduced) {
    const auto s = state_with({{1, 7}, {2, 200}});
    const auto fx = execute(make_mov(dpostinc(2), sreg(1)), s, std::nullopt);
    ASSERT_TRUE(fx.store_value.has_value());
    EXPECT_EQ(*fx.store_value, 7);
    EXPECT_EQ(fx.next.regs[2], 201);
}

TEST(Execute, AluCanStoreToMemory) {
    const auto s = state_with({{1, 3}, {2, 4}, {5, 300}});
    const auto fx = execute(make_alu(Opcode::MULL, dind(5), sreg(1), sreg(2)), s, std::nullopt);
    ASSERT_TRUE(fx.store_value.has_value());
    EXPECT_EQ(*fx.store_value, 12);
}

TEST(Execute, SideEffectVisibleToLaterOperand) {
    // srcB reads r1 AFTER srcA's post-increment (sequential semantics).
    const auto s = state_with({{1, 10}});
    const auto fx = execute(make_alu(Opcode::ADD, dreg(2), spostinc(1), sreg(1)), s, Word{100});
    EXPECT_EQ(fx.next.regs[2], 111); // 100 + (10+1)
}

TEST(Execute, ResultWriteWinsOverAddressSideEffect) {
    // dst r1 while srcA post-increments r1: the ALU result lands last.
    const auto s = state_with({{1, 10}});
    const auto fx = execute(make_alu(Opcode::ADD, dreg(1), spostinc(1), simm(1)), s, Word{5});
    EXPECT_EQ(fx.next.regs[1], 6);
}

TEST(Execute, MovDoesNotTouchFlags) {
    auto s = state_with({{1, 0}});
    s.flags.z = true;
    s.flags.c = true;
    const auto fx = execute(make_mov(dreg(2), sreg(1)), s, std::nullopt);
    EXPECT_TRUE(fx.next.flags.z);
    EXPECT_TRUE(fx.next.flags.c);
}

TEST(Execute, MoviLoadsImmediate) {
    const auto fx = execute(make_movi(4, 0xCAFE), CoreState{}, std::nullopt);
    EXPECT_EQ(fx.next.regs[4], 0xCAFE);
}

TEST(Execute, SftImmediateIsSigned) {
    const auto s = state_with({{1, 0x00F0}});
    // simm(-2) in srcB of SFT means arithmetic right by 2.
    const auto fx = execute(make_alu(Opcode::SFT, dreg(2), sreg(1), simm(-2)), s, std::nullopt);
    EXPECT_EQ(fx.next.regs[2], 0x003C);
    // The same 4-bit pattern (0xE) in an ADD is unsigned 14.
    const auto fx2 = execute(make_alu(Opcode::ADD, dreg(2), sreg(0), simm(14)), s, std::nullopt);
    EXPECT_EQ(fx2.next.regs[2], 14);
}

TEST(Execute, BranchTakenAndNotTaken) {
    auto s = state_with({}, 10);
    s.flags.z = true;
    EXPECT_EQ(execute(make_bra(Cond::EQ, BraMode::Rel, 5), s, std::nullopt).next.pc, 15);
    EXPECT_EQ(execute(make_bra(Cond::NE, BraMode::Rel, 5), s, std::nullopt).next.pc, 11);
}

TEST(Execute, BranchModes) {
    auto s = state_with({{3, 123}}, 10);
    EXPECT_EQ(execute(make_bra(Cond::AL, BraMode::Abs, 77), s, std::nullopt).next.pc, 77);
    EXPECT_EQ(execute(make_bra(Cond::AL, BraMode::RegInd, 3), s, std::nullopt).next.pc, 123);
}

TEST(Execute, HaltDetection) {
    const auto s = state_with({}, 10);
    EXPECT_TRUE(execute(make_bra(Cond::AL, BraMode::Rel, 0), s, std::nullopt).halt);
    // A conditional self-branch is a spin, not an architectural halt.
    auto sz = s;
    sz.flags.z = true;
    EXPECT_FALSE(execute(make_bra(Cond::EQ, BraMode::Rel, 0), sz, std::nullopt).halt);
    // An absolute branch to the own address also halts.
    EXPECT_TRUE(execute(make_bra(Cond::AL, BraMode::Abs, 10), s, std::nullopt).halt);
}

TEST(Execute, JalLinksReturnAddress) {
    const auto s = state_with({}, 10);
    const auto fx = execute(make_jal(14, BraMode::Abs, 100), s, std::nullopt);
    EXPECT_EQ(fx.next.regs[14], 11);
    EXPECT_EQ(fx.next.pc, 100);
}

TEST(Execute, JalRegIndUsesPreLinkValue) {
    // jal r3, @r3 — the target is read before the link write.
    const auto s = state_with({{3, 50}}, 10);
    const auto fx = execute(make_jal(3, BraMode::RegInd, 3), s, std::nullopt);
    EXPECT_EQ(fx.next.pc, 50);
    EXPECT_EQ(fx.next.regs[3], 11);
}

TEST(Execute, NopChangesOnlyPc) {
    const auto s = state_with({{1, 5}}, 3);
    const auto fx = execute(make_nop(), s, std::nullopt);
    EXPECT_EQ(fx.next.pc, 4);
    EXPECT_EQ(fx.next.regs, s.regs);
    EXPECT_EQ(fx.next.flags, s.flags);
}

} // namespace
} // namespace ulpmc::core
