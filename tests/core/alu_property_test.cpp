// Parameterized algebraic property sweeps over the ALU (TEST_P style, as
// hardware verification would script them): commutativity, identities,
// annihilators, involution, and flag consistency — each checked across a
// randomized operand cloud per opcode.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/alu.hpp"
#include "isa/mnemonics.hpp"

namespace ulpmc::core {
namespace {

using isa::Opcode;

class CommutativeOps : public ::testing::TestWithParam<Opcode> {};

TEST_P(CommutativeOps, OrderIrrelevantIncludingFlags) {
    Rng rng(100 + static_cast<int>(GetParam()));
    for (int i = 0; i < 5000; ++i) {
        const Word a = static_cast<Word>(rng.next_u32());
        const Word b = static_cast<Word>(rng.next_u32());
        const auto ab = alu_exec(GetParam(), a, b);
        const auto ba = alu_exec(GetParam(), b, a);
        EXPECT_EQ(ab.value, ba.value);
        EXPECT_EQ(ab.flags, ba.flags);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CommutativeOps,
                         ::testing::Values(Opcode::ADD, Opcode::AND, Opcode::OR, Opcode::XOR,
                                           Opcode::MULL, Opcode::MULH),
                         [](const auto& info) {
                             return std::string(isa::opcode_name(info.param));
                         });

struct IdentityCase {
    Opcode op;
    Word identity;
};

class IdentityOps : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(IdentityOps, RightIdentityPreservesValue) {
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const Word a = static_cast<Word>(rng.next_u32());
        EXPECT_EQ(alu_exec(GetParam().op, a, GetParam().identity).value, a);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IdentityOps,
                         ::testing::Values(IdentityCase{Opcode::ADD, 0},
                                           IdentityCase{Opcode::SUB, 0},
                                           IdentityCase{Opcode::OR, 0},
                                           IdentityCase{Opcode::XOR, 0},
                                           IdentityCase{Opcode::AND, 0xFFFF},
                                           IdentityCase{Opcode::MULL, 1},
                                           IdentityCase{Opcode::SFT, 0}),
                         [](const auto& info) {
                             return std::string(isa::opcode_name(info.param.op));
                         });

TEST(AluProperties, AnnihilatorsAndAbsorbers) {
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        const Word a = static_cast<Word>(rng.next_u32());
        EXPECT_EQ(alu_exec(Opcode::AND, a, 0).value, 0);
        EXPECT_EQ(alu_exec(Opcode::MULL, a, 0).value, 0);
        EXPECT_EQ(alu_exec(Opcode::MULH, a, 0).value, 0);
        EXPECT_EQ(alu_exec(Opcode::OR, a, 0xFFFF).value, 0xFFFF);
        EXPECT_EQ(alu_exec(Opcode::XOR, a, a).value, 0);
        EXPECT_TRUE(alu_exec(Opcode::XOR, a, a).flags.z);
        EXPECT_TRUE(alu_exec(Opcode::SUB, a, a).flags.z);
    }
}

TEST(AluProperties, XorIsInvolutionAddSubInverse) {
    Rng rng(13);
    for (int i = 0; i < 5000; ++i) {
        const Word a = static_cast<Word>(rng.next_u32());
        const Word b = static_cast<Word>(rng.next_u32());
        EXPECT_EQ(alu_exec(Opcode::XOR, alu_exec(Opcode::XOR, a, b).value, b).value, a);
        EXPECT_EQ(alu_exec(Opcode::SUB, alu_exec(Opcode::ADD, a, b).value, b).value, a);
    }
}

TEST(AluProperties, ShiftComposesWithinRange) {
    // sft(sft(a, i), j) == sft(a, i+j) for left shifts within 16 bits.
    Rng rng(17);
    for (int i = 0; i < 3000; ++i) {
        const Word a = static_cast<Word>(rng.next_u32());
        const int s1 = static_cast<int>(rng.below(8));
        const int s2 = static_cast<int>(rng.below(8));
        const Word once =
            alu_exec(Opcode::SFT, a, static_cast<Word>(s1 + s2)).value;
        const Word twice = alu_exec(Opcode::SFT, alu_exec(Opcode::SFT, a, static_cast<Word>(s1)).value,
                                    static_cast<Word>(s2))
                               .value;
        EXPECT_EQ(once, twice);
    }
}

TEST(AluProperties, ZnFlagsAlwaysDescribeResult) {
    Rng rng(19);
    for (int i = 0; i < 5000; ++i) {
        const Word a = static_cast<Word>(rng.next_u32());
        const Word b = static_cast<Word>(rng.next_u32());
        for (int op = 0; op < 8; ++op) {
            const auto r = alu_exec(static_cast<Opcode>(op), a, b);
            EXPECT_EQ(r.flags.z, r.value == 0);
            EXPECT_EQ(r.flags.n, (r.value & 0x8000) != 0);
        }
    }
}

TEST(AluProperties, LogicOpsNeverSetCarryOrOverflow) {
    Rng rng(23);
    for (int i = 0; i < 3000; ++i) {
        const Word a = static_cast<Word>(rng.next_u32());
        const Word b = static_cast<Word>(rng.next_u32());
        for (const Opcode op : {Opcode::AND, Opcode::OR, Opcode::XOR, Opcode::MULL, Opcode::MULH}) {
            const auto r = alu_exec(op, a, b);
            EXPECT_FALSE(r.flags.c);
            EXPECT_FALSE(r.flags.v);
        }
    }
}

} // namespace
} // namespace ulpmc::core
