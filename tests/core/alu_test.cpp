#include "core/alu.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ulpmc::core {
namespace {

using isa::Opcode;

TEST(Alu, AddBasicAndFlags) {
    auto r = alu_exec(Opcode::ADD, 1, 2);
    EXPECT_EQ(r.value, 3);
    EXPECT_FALSE(r.flags.c);
    EXPECT_FALSE(r.flags.z);
    EXPECT_FALSE(r.flags.n);
    EXPECT_FALSE(r.flags.v);

    r = alu_exec(Opcode::ADD, 0xFFFF, 1);
    EXPECT_EQ(r.value, 0);
    EXPECT_TRUE(r.flags.c);
    EXPECT_TRUE(r.flags.z);
    EXPECT_FALSE(r.flags.v); // -1 + 1 = 0: no signed overflow

    r = alu_exec(Opcode::ADD, 0x7FFF, 1);
    EXPECT_EQ(r.value, 0x8000);
    EXPECT_TRUE(r.flags.v); // positive + positive -> negative
    EXPECT_TRUE(r.flags.n);
}

TEST(Alu, SubBorrowConvention) {
    auto r = alu_exec(Opcode::SUB, 5, 3);
    EXPECT_EQ(r.value, 2);
    EXPECT_TRUE(r.flags.c); // no borrow

    r = alu_exec(Opcode::SUB, 3, 5);
    EXPECT_EQ(r.value, 0xFFFE);
    EXPECT_FALSE(r.flags.c); // borrow
    EXPECT_TRUE(r.flags.n);

    r = alu_exec(Opcode::SUB, 0x8000, 1);
    EXPECT_TRUE(r.flags.v); // negative - positive -> positive overflow
}

TEST(Alu, SubEqualGivesZero) {
    const auto r = alu_exec(Opcode::SUB, 0xABCD, 0xABCD);
    EXPECT_TRUE(r.flags.z);
    EXPECT_TRUE(r.flags.c);
}

TEST(Alu, ShiftLeft) {
    auto r = alu_exec(Opcode::SFT, 0x0001, 3);
    EXPECT_EQ(r.value, 8);
    r = alu_exec(Opcode::SFT, 0x8001, 1);
    EXPECT_EQ(r.value, 0x0002);
    EXPECT_TRUE(r.flags.c); // bit 15 shifted out
}

TEST(Alu, ShiftRightIsArithmetic) {
    auto r = alu_exec(Opcode::SFT, 0x8000, static_cast<Word>(-3));
    EXPECT_EQ(r.value, 0xF000);
    r = alu_exec(Opcode::SFT, 0x4000, static_cast<Word>(-3));
    EXPECT_EQ(r.value, 0x0800);
    r = alu_exec(Opcode::SFT, 0x0005, static_cast<Word>(-1));
    EXPECT_EQ(r.value, 2);
    EXPECT_TRUE(r.flags.c); // last bit out was 1
}

TEST(Alu, ShiftByZeroIsIdentity) {
    const auto r = alu_exec(Opcode::SFT, 0xBEEF, 0);
    EXPECT_EQ(r.value, 0xBEEF);
    EXPECT_FALSE(r.flags.c);
}

TEST(Alu, ShiftSaturatesBeyond16) {
    EXPECT_EQ(alu_exec(Opcode::SFT, 0xFFFF, 16).value, 0);
    EXPECT_EQ(alu_exec(Opcode::SFT, 0xFFFF, 100).value, 0);
    EXPECT_EQ(alu_exec(Opcode::SFT, 0x8000, static_cast<Word>(-16)).value, 0xFFFF);
    EXPECT_EQ(alu_exec(Opcode::SFT, 0x7FFF, static_cast<Word>(-16)).value, 0);
    EXPECT_EQ(alu_exec(Opcode::SFT, 0x8000, static_cast<Word>(-100)).value, 0xFFFF);
}

TEST(Alu, SignExtractIdiom) {
    // The CS kernel's sign trick: sft(x, -15) is 0xFFFF for negative x.
    EXPECT_EQ(alu_exec(Opcode::SFT, 0x8123, static_cast<Word>(-15)).value, 0xFFFF);
    EXPECT_EQ(alu_exec(Opcode::SFT, 0x7123, static_cast<Word>(-15)).value, 0x0000);
}

TEST(Alu, Logic) {
    EXPECT_EQ(alu_exec(Opcode::AND, 0xF0F0, 0xFF00).value, 0xF000);
    EXPECT_EQ(alu_exec(Opcode::OR, 0xF0F0, 0x0F00).value, 0xFFF0);
    EXPECT_EQ(alu_exec(Opcode::XOR, 0xFFFF, 0x00FF).value, 0xFF00);
    EXPECT_TRUE(alu_exec(Opcode::AND, 0xAAAA, 0x5555).flags.z);
    EXPECT_TRUE(alu_exec(Opcode::OR, 0x8000, 0).flags.n);
}

TEST(Alu, MullIsLow16) {
    EXPECT_EQ(alu_exec(Opcode::MULL, 3, 5).value, 15);
    EXPECT_EQ(alu_exec(Opcode::MULL, 0x1234, 0x5678).value,
              static_cast<Word>(0x1234u * 0x5678u));
}

TEST(Alu, MulhIsSignedHigh16) {
    // -2 * 3 = -6 -> high word 0xFFFF.
    EXPECT_EQ(alu_exec(Opcode::MULH, 0xFFFE, 3).value, 0xFFFF);
    // 0x4000 * 0x4000 = 0x10000000 -> high 0x1000.
    EXPECT_EQ(alu_exec(Opcode::MULH, 0x4000, 0x4000).value, 0x1000);
    // Full product reconstruction: (hi << 16) | lo == signed product.
    const std::int32_t a = -12345;
    const std::int32_t b = 321;
    const Word lo = alu_exec(Opcode::MULL, static_cast<Word>(a), static_cast<Word>(b)).value;
    const Word hi = alu_exec(Opcode::MULH, static_cast<Word>(a), static_cast<Word>(b)).value;
    EXPECT_EQ((static_cast<std::int32_t>(static_cast<std::int16_t>(hi)) << 16) | lo, a * b);
}

/// Property: MULL/MULH always reconstruct the exact 32-bit signed product.
TEST(Alu, FullMultiplyProperty) {
    Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        const auto a = static_cast<SWord>(rng.next_u32());
        const auto b = static_cast<SWord>(rng.next_u32());
        const Word lo = alu_exec(Opcode::MULL, static_cast<Word>(a), static_cast<Word>(b)).value;
        const Word hi = alu_exec(Opcode::MULH, static_cast<Word>(a), static_cast<Word>(b)).value;
        const std::int32_t expect = static_cast<std::int32_t>(a) * b;
        const std::int32_t got =
            static_cast<std::int32_t>((static_cast<std::uint32_t>(hi) << 16) | lo);
        EXPECT_EQ(got, expect) << a << " * " << b;
    }
}

/// Property: ADD/SUB agree with 32-bit reference arithmetic including
/// carry and overflow flags.
TEST(Alu, AddSubFlagProperty) {
    Rng rng(23);
    for (int i = 0; i < 20000; ++i) {
        const Word a = static_cast<Word>(rng.next_u32());
        const Word b = static_cast<Word>(rng.next_u32());

        const auto add = alu_exec(Opcode::ADD, a, b);
        EXPECT_EQ(add.value, static_cast<Word>(a + b));
        EXPECT_EQ(add.flags.c, static_cast<std::uint32_t>(a) + b > 0xFFFF);
        const std::int32_t sadd = static_cast<SWord>(a) + static_cast<SWord>(b);
        EXPECT_EQ(add.flags.v, sadd > 32767 || sadd < -32768);

        const auto sub = alu_exec(Opcode::SUB, a, b);
        EXPECT_EQ(sub.value, static_cast<Word>(a - b));
        EXPECT_EQ(sub.flags.c, a >= b);
        const std::int32_t ssub = static_cast<SWord>(a) - static_cast<SWord>(b);
        EXPECT_EQ(sub.flags.v, ssub > 32767 || ssub < -32768);
    }
}

TEST(Alu, NonAluOpcodeIsContractViolation) {
    EXPECT_THROW(alu_exec(Opcode::BRA, 1, 2), contract_violation);
}

} // namespace
} // namespace ulpmc::core
