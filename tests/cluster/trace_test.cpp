#include "cluster/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster.hpp"
#include "common/assert.hpp"
#include "isa/assembler.hpp"

namespace ulpmc::cluster {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 64, .private_words_per_core = 128};

TEST(RingTraceTest, KeepsChronologicalOrder) {
    RingTrace t(8);
    for (Cycle c = 1; c <= 5; ++c) t.on_event({c, 0, EventKind::Commit, 0, 0});
    const auto ev = t.events();
    ASSERT_EQ(ev.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ev[i].cycle, i + 1);
}

TEST(RingTraceTest, EvictsOldestBeyondCapacity) {
    RingTrace t(4);
    for (Cycle c = 1; c <= 10; ++c) t.on_event({c, 0, EventKind::Commit, 0, 0});
    const auto ev = t.events();
    ASSERT_EQ(ev.size(), 4u);
    EXPECT_EQ(ev.front().cycle, 7u);
    EXPECT_EQ(ev.back().cycle, 10u);
    EXPECT_EQ(t.total(), 10u);
}

TEST(RingTraceTest, RendersReadably) {
    EXPECT_EQ(RingTrace::render({12, 3, EventKind::Commit, 45, 0}), "[12] core3 commit pc=45");
    EXPECT_EQ(RingTrace::render({7, 1, EventKind::Fetch, 5, 2}), "[7] core1 fetch pc=5 bank=2");
    EXPECT_EQ(RingTrace::render({9, 0xFF, EventKind::BarrierRelease, 0, 0}),
              "[9] all    barrier-release");
}

TEST(RingTraceTest, ZeroCapacityIsContractViolation) {
    EXPECT_THROW(RingTrace(0), contract_violation);
}

TEST(ClusterTrace, CapturesCommitsAndFetches) {
    const auto prog = isa::assemble("nop\nnop\nhlt\n");
    Cluster cl(make_config(ArchKind::UlpmcInt, kLayout), prog);
    CountingTrace counts;
    cl.set_trace(&counts);
    cl.run();
    // 3 instructions x 8 cores, fetches merged: 3 owners + 21 riders.
    EXPECT_EQ(counts.count(EventKind::Commit), 3u * kNumCores);
    EXPECT_EQ(counts.count(EventKind::Fetch), 3u);
    EXPECT_EQ(counts.count(EventKind::FetchBroadcast), 3u * (kNumCores - 1));
    EXPECT_EQ(counts.count(EventKind::Halt), kNumCores);
    EXPECT_EQ(counts.count(EventKind::Trap), 0u);
}

TEST(ClusterTrace, CapturesStallsUnderContention) {
    const auto prog = isa::assemble(R"(
        movi r1, 0
        mov  r2, @r1
        hlt
    )");
    auto cfg = make_config(ArchKind::McRef, kLayout);
    cfg.stagger_start = false; // force the 8-way shared-read conflict
    Cluster cl(cfg, prog);
    CountingTrace counts;
    cl.set_trace(&counts);
    cl.run();
    EXPECT_GE(counts.count(EventKind::DataStall), 28u);
}

TEST(ClusterTrace, CapturesBarrierProtocol) {
    const auto prog = isa::assemble(R"(
        movi r3, 0xFFFF
        mov  @r3, r0
        hlt
    )");
    auto cfg = make_config(ArchKind::UlpmcInt, kLayout);
    cfg.barrier_enabled = true;
    Cluster cl(cfg, prog);
    CountingTrace counts;
    cl.set_trace(&counts);
    cl.run();
    EXPECT_EQ(counts.count(EventKind::BarrierArrive), kNumCores);
    EXPECT_EQ(counts.count(EventKind::BarrierRelease), 1u);
}

TEST(ClusterTrace, CapturesTraps) {
    isa::Program prog;
    prog.text = {0xF00000u};
    Cluster cl(make_config(ArchKind::UlpmcInt, kLayout), prog);
    RingTrace ring(64);
    cl.set_trace(&ring);
    cl.run();
    bool saw_trap = false;
    for (const auto& e : ring.events())
        if (e.kind == EventKind::Trap) saw_trap = true;
    EXPECT_TRUE(saw_trap);
}

TEST(ClusterTrace, PrintProducesOneLinePerEvent) {
    RingTrace t(8);
    t.on_event({1, 0, EventKind::Fetch, 0, 0});
    t.on_event({1, 0, EventKind::Commit, 0, 0});
    std::ostringstream os;
    t.print(os);
    int lines = 0;
    for (const char ch : os.str())
        if (ch == '\n') ++lines;
    EXPECT_EQ(lines, 2);
}

TEST(ClusterTrace, DetachedSinkCostsNothingObservable) {
    const auto prog = isa::assemble("nop\nhlt\n");
    Cluster a(make_config(ArchKind::UlpmcBank, kLayout), prog);
    Cluster b(make_config(ArchKind::UlpmcBank, kLayout), prog);
    CountingTrace counts;
    a.set_trace(&counts);
    a.run();
    b.run();
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
    EXPECT_EQ(a.stats().im_bank_accesses, b.stats().im_bank_accesses);
}

} // namespace
} // namespace ulpmc::cluster
