// CheckpointStorage unit coverage (DESIGN.md §9.6): keyframe and delta
// records round-trip bit-exactly, an unchanged snapshot deltas to (near)
// nothing, an everything-dirty snapshot is never stored worse than a full
// keyframe, CRC32 verification catches single-bit and adjacent-burst
// storage strikes and falls back along the keyframe chain, corruption
// flows through restore when verification is off (the SDC contrast arm),
// and a stored record is portable across simulator engine tiers. The
// CheckpointRunner half: a storage-backed rollback restores DECODED
// payload bytes, falls back to an older recovery point past a corrupt
// delta, and fail-stops when every record is lost.
#include <gtest/gtest.h>

#include "cluster/checkpoint.hpp"
#include "cluster/ckpt_store.hpp"
#include "cluster/cluster.hpp"
#include "isa/assembler.hpp"

namespace ulpmc::cluster {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 64, .private_words_per_core = 256};

ClusterConfig single_core(ArchKind arch = ArchKind::UlpmcBank) {
    auto cfg = make_config(arch, kLayout);
    cfg.cores = 1;
    return cfg;
}

// ~200-iteration countdown reading @70 every iteration, then hlt.
const char* kLoadLoop = R"(
    movi r1, 70
    movi r2, 200
loop:
    mov  r3, @r1
    sub  r2, r2, #1
    bra  ne, loop
    hlt
)";

TEST(CkptStore, KeyframeRoundTripsBitExactly) {
    const auto prog = isa::assemble(kLoadLoop);
    Cluster cl(single_core(), prog);
    cl.run(57); // mid-loop: live registers, flags, DM traffic

    Cluster::Snapshot snap;
    cl.save(snap);
    CheckpointStorage store;
    store.reset({});
    store.store(snap);

    cl.run(500); // diverge well past the stored state
    Cluster::Snapshot out;
    ASSERT_TRUE(store.load(out));
    cl.restore(out);
    EXPECT_TRUE(cl.state_equals(snap)) << "decoded payload must rebuild the exact state";
    EXPECT_EQ(out.saved_cycle(), snap.saved_cycle());
    EXPECT_EQ(store.stats().keyframes, 1u);
    EXPECT_EQ(store.stats().crc_failures, 0u);
}

TEST(CkptStore, UnchangedSnapshotDeltasToNothing) {
    const auto prog = isa::assemble(kLoadLoop);
    Cluster cl(single_core(), prog);
    cl.run(57);
    Cluster::Snapshot snap;
    cl.save(snap);

    CheckpointStorage store;
    store.reset({});
    store.store(snap); // keyframe
    const std::uint64_t after_key = store.stats().stored_bytes;
    store.store(snap); // identical state: the delta carries zero dirty words

    EXPECT_EQ(store.stats().delta_saves, 1u);
    EXPECT_EQ(store.stats().dirty_words, 0u);
    EXPECT_LT(store.stats().stored_bytes - after_key, 64u) << "empty delta ~= framing only";

    Cluster::Snapshot out;
    ASSERT_TRUE(store.load(out));
    cl.restore(out);
    EXPECT_TRUE(cl.state_equals(snap));
}

TEST(CkptStore, SparseDeltaIsSmallAndRoundTrips) {
    const auto prog = isa::assemble(kLoadLoop);
    Cluster cl(single_core(), prog);
    cl.run(57);
    Cluster::Snapshot base;
    cl.save(base);

    CheckpointStorage store;
    store.reset({});
    store.store(base); // keyframe
    const std::uint64_t after_key = store.stats().stored_bytes;

    cl.run(cl.stats().cycles + 40); // a few registers + loop counter move
    Cluster::Snapshot snap;
    cl.save(snap);
    store.store(snap); // delta vs the keyframe

    ASSERT_EQ(store.stats().delta_saves, 1u);
    EXPECT_GT(store.stats().dirty_words, 0u);
    const std::uint64_t delta_bytes = store.stats().stored_bytes - after_key;
    EXPECT_LT(delta_bytes * 4, after_key) << "a sparse delta must be far below a keyframe";

    cl.run(2'000);
    Cluster::Snapshot out;
    ASSERT_TRUE(store.load(out));
    cl.restore(out);
    EXPECT_TRUE(cl.state_equals(snap));
    EXPECT_EQ(out.saved_cycle(), snap.saved_cycle());
}

TEST(CkptStore, EverythingDirtyIsStoredNoWorseThanAKeyframe) {
    const auto prog = isa::assemble(kLoadLoop);
    Cluster cl(single_core(), prog);
    cl.run(57);
    Cluster::Snapshot base;
    cl.save(base);

    CheckpointStorage store;
    store.reset({});
    store.store(base);
    const std::uint64_t stored1 = store.stats().stored_bytes;
    const std::uint64_t full1 = store.stats().full_equiv_bytes;

    // Dirty every reachable DM word and every register file bit column.
    for (Addr a = 0; a < 64 + 256; ++a)
        cl.dm_poke(0, a, static_cast<Word>(a * 7 + 1));
    for (unsigned r = 0; r < kNumRegisters; ++r)
        cl.inject_reg_fault(0, r, 0xFFFF);
    Cluster::Snapshot snap;
    cl.save(snap);
    store.store(snap);

    const std::uint64_t stored2 = store.stats().stored_bytes - stored1;
    const std::uint64_t full2 = store.stats().full_equiv_bytes - full1;
    EXPECT_LE(stored2, full2) << "an all-dirty save must not exceed a full keyframe";

    Cluster::Snapshot out;
    ASSERT_TRUE(store.load(out));
    cl.restore(out);
    EXPECT_TRUE(cl.state_equals(snap));
}

TEST(CkptStore, CrcCatchesASingleBitStrikeAndFallsBackToTheKeyframe) {
    const auto prog = isa::assemble(kLoadLoop);
    Cluster cl(single_core(), prog);
    cl.run(57);
    Cluster::Snapshot key;
    cl.save(key);

    CheckpointStorage store;
    store.reset({});
    store.store(key); // keyframe
    cl.run(cl.stats().cycles + 40);
    Cluster::Snapshot snap;
    cl.save(snap);
    store.store(snap); // newest record: the delta

    ASSERT_EQ(store.record_count(), 2u);
    store.corrupt(0, 3, 0x1); // single-bit upset in the newest (delta) record

    Cluster::Snapshot out;
    ASSERT_TRUE(store.load(out));
    EXPECT_EQ(store.stats().crc_failures, 1u);
    EXPECT_EQ(store.stats().keyframe_fallbacks, 1u);
    EXPECT_EQ(out.saved_cycle(), key.saved_cycle()) << "served by the older keyframe";
    cl.restore(out);
    EXPECT_TRUE(cl.state_equals(key));
}

TEST(CkptStore, CrcCatchesAnAdjacentBurstStrike) {
    const auto prog = isa::assemble(kLoadLoop);
    Cluster cl(single_core(), prog);
    cl.run(57);
    Cluster::Snapshot key;
    cl.save(key);

    CheckpointStorage store;
    store.reset({});
    store.store(key);
    cl.run(cl.stats().cycles + 40);
    Cluster::Snapshot snap;
    cl.save(snap);
    store.store(snap);

    store.corrupt(0, 7, 0x7 << 9); // 3 adjacent bits: odd parity, defeats SEC-DED
    Cluster::Snapshot out;
    ASSERT_TRUE(store.load(out));
    EXPECT_EQ(store.stats().crc_failures, 1u);
    cl.restore(out);
    EXPECT_TRUE(cl.state_equals(key));
}

TEST(CkptStore, AllRecordsCorruptIsADetectedUnrecoverableLoss) {
    const auto prog = isa::assemble(kLoadLoop);
    Cluster cl(single_core(), prog);
    cl.run(57);
    Cluster::Snapshot snap;
    cl.save(snap);

    CheckpointStorage store;
    store.reset({});
    store.store(snap);
    cl.run(cl.stats().cycles + 40);
    cl.save(snap);
    store.store(snap);

    const unsigned records = store.record_count();
    for (unsigned s = 0; s < records; ++s) store.corrupt(s, 1, 0x10);

    Cluster::Snapshot out;
    EXPECT_FALSE(store.load(out)) << "nothing intact: load must refuse, not guess";
    EXPECT_EQ(store.stats().crc_failures, records);
}

TEST(CkptStore, WithVerificationOffCorruptionFlowsThroughRestore) {
    const auto prog = isa::assemble(kLoadLoop);
    Cluster cl(single_core(), prog);
    cl.run(57);
    Cluster::Snapshot snap;
    cl.save(snap);

    CheckpointStorage store;
    store.reset({.delta = true, .keyframe_interval = 8, .crc_verify = false});
    store.store(snap);
    // Payload layout: the record opens with core 0's 16-bit architectural
    // words, two per 32-bit payload word — r1 (the firmware's @70
    // pointer) is the upper half of payload word 0.
    store.corrupt(0, 0, 0x1u << 16);

    Cluster::Snapshot out;
    ASSERT_TRUE(store.load(out)) << "no verification: the corrupt record is accepted";
    EXPECT_EQ(store.stats().crc_failures, 0u);
    cl.restore(out);
    EXPECT_FALSE(cl.state_equals(snap)) << "the flipped bit silently entered the state";
    EXPECT_EQ(cl.core_state(0).regs[1], 70u ^ 0x1u);
}

TEST(CkptStore, StoredRecordIsPortableAcrossEngineTiers) {
    const auto prog = isa::assemble(kLoadLoop);
    auto trace_cfg = single_core();
    trace_cfg.engine = SimEngine::Trace;
    auto ref_cfg = single_core();
    ref_cfg.engine = SimEngine::Reference;

    Cluster tr(trace_cfg, prog);
    tr.run(57);
    Cluster::Snapshot snap;
    tr.save(snap);
    CheckpointStorage store;
    store.reset({});
    store.store(snap);

    // Decode the stored bytes into a Reference-tier cluster and let both
    // tiers finish: the tiers are cycle-for-cycle identical, so the
    // restored run must land on the same final state.
    Cluster ref(ref_cfg, prog);
    Cluster::Snapshot out;
    ASSERT_TRUE(store.load(out));
    ref.restore(out);
    const Cycle tr_end = tr.run(100'000);
    const Cycle ref_end = ref.run(100'000);
    EXPECT_EQ(tr_end, ref_end);
    EXPECT_TRUE(ref.core_halted(0));
    EXPECT_EQ(ref.core_state(0).regs[3], tr.core_state(0).regs[3]);
    EXPECT_EQ(ref.core_state(0).regs[2], tr.core_state(0).regs[2]);
}

TEST(CkptStore, RunnerRollbackFallsBackPastACorruptDelta) {
    // Two recovery points; the newest (delta) record is struck in storage.
    // The rollback must detect it, restore the OLDER keyframe, and replay
    // from there to a clean finish.
    const auto prog = isa::assemble(kLoadLoop);
    auto cfg = single_core();
    cfg.ecc_enabled = true;
    Cluster cl(cfg, prog);
    cl.dm_poke(0, 70, 5);

    CheckpointRunner runner(cl);
    runner.reset({.interval = 0, .max_retries = 2, .parity_guard = true, .delta_store = true});
    ASSERT_TRUE(runner.checkpoint()); // keyframe at cycle 0
    const Cycle key_cycle = runner.checkpoint_cycle();
    runner.run(60);
    ASSERT_TRUE(runner.checkpoint()); // delta at cycle 60
    runner.run(100);

    runner.storage().corrupt(0, 4, 0x2); // strike the newest (delta) record
    cl.inject_dm_fault(0, 70, 0b11);     // double-bit: detectable, uncorrectable
    runner.run(100'000);

    EXPECT_TRUE(cl.core_halted(0));
    EXPECT_EQ(cl.core_trap(0), core::Trap::None);
    EXPECT_EQ(cl.core_state(0).regs[3], 5u) << "replay reads the clean value";
    EXPECT_EQ(runner.stats().rollbacks, 1u);
    EXPECT_FALSE(runner.stats().gave_up);
    EXPECT_EQ(runner.storage().stats().crc_failures, 1u);
    EXPECT_EQ(runner.storage().stats().keyframe_fallbacks, 1u);
    // The fallback restored the keyframe's cycle, so the whole span since
    // then was charged as re-execution.
    EXPECT_GE(runner.stats().reexec_cycles, 100u - key_cycle);
}

TEST(CkptStore, RunnerFailStopsWhenEveryRecordIsLost) {
    const auto prog = isa::assemble(kLoadLoop);
    auto cfg = single_core();
    cfg.ecc_enabled = true;
    Cluster cl(cfg, prog);
    cl.dm_poke(0, 70, 5);

    CheckpointRunner runner(cl);
    runner.reset({.interval = 0, .max_retries = 2, .parity_guard = true, .delta_store = true});
    ASSERT_TRUE(runner.checkpoint());
    runner.run(50);

    runner.storage().corrupt(0, 2, 0x8); // the only record
    cl.inject_dm_fault(0, 70, 0b11);
    runner.run(100'000);

    EXPECT_TRUE(runner.stats().gave_up);
    EXPECT_TRUE(runner.stats().storage_exhausted);
    EXPECT_EQ(cl.core_trap(0), core::Trap::EccFault)
        << "fail stop leaves the trapped state for the caller to classify";
    EXPECT_EQ(runner.stats().rollbacks, 0u) << "no restore happened";
}

} // namespace
} // namespace ulpmc::cluster
