// Trap-path coverage (DESIGN.md §9 satellite): out-of-bounds fetch,
// illegal encodings, functional-vs-pipeline trap agreement, and the
// watchdog's stuck-core detection (including its no-false-positive
// obligation on clean staggered runs).
#include <gtest/gtest.h>

#include "app/benchmark.hpp"
#include "cluster/cluster.hpp"
#include "core/functional_core.hpp"
#include "isa/assembler.hpp"

namespace ulpmc::cluster {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 64, .private_words_per_core = 256};

isa::Program assemble(const char* src) { return isa::assemble(src); }

TEST(Traps, RunningOffTheEndOfTextFetchFaults) {
    // No hlt: after the last instruction the PC leaves the loaded program.
    const auto prog = assemble(R"(
        movi r1, 1
        add  r1, r1, #1
    )");
    auto cfg = make_config(ArchKind::UlpmcBank, kLayout);
    cfg.cores = 1;
    Cluster cl(cfg, prog);
    cl.run(1'000);
    EXPECT_EQ(cl.core_trap(0), core::Trap::FetchFault);
    EXPECT_STREQ(core::trap_name(cl.core_trap(0)), "fetch-fault");
    EXPECT_EQ(cl.stats().core[0].instret, 2u) << "both real instructions commit first";
}

TEST(Traps, IllegalEncodingTraps) {
    const auto prog = assemble(R"(
        movi r1, 5
        nop
        hlt
    )");
    for (const auto engine : {SimEngine::Reference, SimEngine::Fast, SimEngine::Trace}) {
        auto cfg = make_config(ArchKind::UlpmcBank, kLayout);
        cfg.cores = 1;
        cfg.engine = engine;
        Cluster cl(cfg, prog);
        cl.im_poke(1, 0x00FFFFFFu); // overwrite the nop with a reserved encoding
        cl.run(1'000);
        EXPECT_EQ(cl.core_trap(0), core::Trap::IllegalInstruction) << engine_name(engine);
        EXPECT_STREQ(core::trap_name(cl.core_trap(0)), "illegal-instruction");
        EXPECT_EQ(cl.stats().core[0].instret, 1u) << engine_name(engine);
    }
}

TEST(Traps, FunctionalAndPipelineAgreeOnTrapAndCommitCount) {
    // The same faulting programs must trap identically (same trap, same
    // number of committed instructions) on the 1-instruction-at-a-time
    // functional core and the cycle-accurate pipeline.
    const char* faulty[] = {
        // MemoryFault: store far outside the mapped space
        R"(
            movi r1, 40000
            add  r2, r2, #3
            mov  @r1, r2
            hlt
        )",
        // FetchFault: run off the end
        R"(
            movi r1, 3
            sub  r1, r1, #1
        )",
    };
    for (const char* src : faulty) {
        const auto prog = assemble(src);
        const auto fun = core::run_program(prog);
        ASSERT_NE(fun.trap, core::Trap::None);

        auto cfg = make_config(ArchKind::UlpmcBank, kLayout);
        cfg.cores = 1;
        Cluster cl(cfg, prog);
        cl.run(1'000);
        EXPECT_EQ(cl.core_trap(0), fun.trap);
        EXPECT_EQ(cl.stats().core[0].instret, fun.instret);
    }
}

TEST(Watchdog, TripsOnlyTheStuckCore) {
    // Core 0 reaches the barrier; core 1 spins forever (its private flag,
    // poked below, routes it past the barrier). Core 0 stops committing
    // while parked, so only it watchdog-trips; core 1 keeps committing.
    const auto prog = assemble(R"(
        .equ FLAG, 64
        .equ BARRIER, 0xFFFF
        movi r1, FLAG
        mov  r2, @r1
        or   r2, r2, #0
        bra  ne, spin
        movi r3, BARRIER
        mov  @r3, r0        ; parks: core 1 never arrives
        hlt
    spin:
        add  r4, r4, #1
        bra  al, spin
    )");
    auto cfg = make_config(ArchKind::UlpmcBank, kLayout);
    cfg.cores = 2;
    cfg.barrier_enabled = true;
    cfg.watchdog_cycles = 2'000;
    Cluster cl(cfg, prog);
    cl.dm_poke(1, 64, 1);
    cl.run(10'000);

    EXPECT_EQ(cl.core_trap(0), core::Trap::Watchdog);
    EXPECT_STREQ(core::trap_name(cl.core_trap(0)), "watchdog");
    EXPECT_EQ(cl.core_trap(1), core::Trap::None) << "a committing core is never stuck";
    EXPECT_EQ(cl.stats().watchdog_trips, 1u);
}

TEST(Watchdog, NoFalsePositiveOnCleanRuns) {
    // Regression guard: staggered cores start later than cycle 0; the
    // watchdog window must open at start_cycle, not underflow.
    const app::EcgBenchmark bench{};
    for (const auto arch : {ArchKind::McRef, ArchKind::UlpmcInt, ArchKind::UlpmcBank}) {
        auto cfg = make_config(arch, bench.layout().dm_layout());
        cfg.watchdog_cycles = 20'000;
        const auto out = bench.run(cfg);
        EXPECT_TRUE(out.verified) << arch_name(arch);
        EXPECT_EQ(out.stats.watchdog_trips, 0u) << arch_name(arch);
    }
}

} // namespace
} // namespace ulpmc::cluster
