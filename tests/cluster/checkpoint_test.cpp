// CheckpointRunner unit coverage (DESIGN.md §9): interval checkpoints on
// a clean run are invisible, a transient trap re-executes from the last
// snapshot, a deterministic trap exhausts the retry budget and reports
// gave_up, and the parity detect-before-save guard refuses to immortalize
// a latched register upset in a recovery point. The adaptive half: the
// upset-rate estimator smooths inter-event gaps (silence only bounds the
// rate, it never enters the EWMA), the controller parks at max_interval
// on a quiet run and shortens the interval under a sustained event
// stream, and detect-before-save rollbacks are reported to the estimator
// even though no protection counter ever sees them.
#include <gtest/gtest.h>

#include "cluster/checkpoint.hpp"
#include "cluster/cluster.hpp"
#include "fault/estimator.hpp"
#include "isa/assembler.hpp"

namespace ulpmc::cluster {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 64, .private_words_per_core = 256};

ClusterConfig single_core(ArchKind arch = ArchKind::UlpmcBank) {
    auto cfg = make_config(arch, kLayout);
    cfg.cores = 1;
    return cfg;
}

// ~200-iteration countdown reading @70 every iteration, then hlt.
const char* kLoadLoop = R"(
    movi r1, 70
    movi r2, 200
loop:
    mov  r3, @r1
    sub  r2, r2, #1
    bra  ne, loop
    hlt
)";

TEST(Checkpoint, IntervalCheckpointsDoNotPerturbACleanRun) {
    const auto prog = isa::assemble(kLoadLoop);
    const auto cfg = single_core();

    Cluster plain(cfg, prog);
    const Cycle plain_cycles = plain.run(100'000);

    Cluster cl(cfg, prog);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 100, .max_retries = 2, .parity_guard = true});
    const Cycle cycles = runner.run(100'000);

    EXPECT_EQ(cycles, plain_cycles);
    EXPECT_TRUE(cl.core_halted(0));
    EXPECT_EQ(cl.core_state(0).regs[3], plain.core_state(0).regs[3]);
    EXPECT_GE(runner.stats().checkpoints, plain_cycles / 100);
    EXPECT_EQ(runner.stats().rollbacks, 0u);
    EXPECT_EQ(runner.stats().reexec_cycles, 0u);
    EXPECT_FALSE(runner.stats().gave_up);
}

TEST(Checkpoint, TransientEccTrapRollsBackAndReexecutes) {
    // A double-bit DM upset traps on the next read; restoring the pre-fault
    // snapshot erases the deposited corruption, so the replay verifies.
    const auto prog = isa::assemble(kLoadLoop);
    auto cfg = single_core();
    cfg.ecc_enabled = true;

    Cluster cl(cfg, prog);
    cl.dm_poke(0, 70, 5);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 0, .max_retries = 2, .parity_guard = true});
    ASSERT_TRUE(runner.checkpoint());

    runner.run(50); // mid-loop, past the recovery point
    cl.inject_dm_fault(0, 70, 0b11); // double-bit: detectable, uncorrectable
    const Cycle cycles = runner.run(100'000);

    EXPECT_TRUE(cl.core_halted(0));
    EXPECT_EQ(cl.core_trap(0), core::Trap::None);
    EXPECT_EQ(cl.core_state(0).regs[3], 5u) << "replayed read sees the clean value";
    EXPECT_EQ(runner.stats().rollbacks, 1u);
    EXPECT_GT(runner.stats().reexec_cycles, 0u);
    EXPECT_FALSE(runner.stats().gave_up);
    EXPECT_GT(cycles, 0u);
}

TEST(Checkpoint, DeterministicTrapExhaustsRetriesAndGivesUp) {
    // The program itself faults (store far outside the mapped space): every
    // replay re-traps, so the runner must stop after max_retries rollbacks
    // and leave the trapped state for the caller to classify.
    const auto prog = isa::assemble(R"(
        movi r1, 40000
        mov  @r1, r1
        hlt
    )");
    Cluster cl(single_core(), prog);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 0, .max_retries = 2, .parity_guard = true});
    ASSERT_TRUE(runner.checkpoint());

    runner.run(100'000);

    EXPECT_TRUE(runner.stats().gave_up);
    EXPECT_EQ(runner.stats().rollbacks, 2u);
    EXPECT_EQ(cl.core_trap(0), core::Trap::MemoryFault);
}

TEST(Checkpoint, ParityGuardRefusesToSaveCorruptState) {
    // A latched (parity-detectable) register upset at checkpoint time
    // means the CURRENT state is corrupt: checkpoint() must roll back to
    // the previous good snapshot instead of saving, clearing the upset.
    const auto prog = isa::assemble(R"(
        movi r2, 50
    loop:
        sub  r2, r2, #1
        bra  ne, loop
        hlt
    )");
    auto cfg = single_core();
    cfg.reg_protection = core::RegProtection::Parity;
    Cluster cl(cfg, prog);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 0, .max_retries = 2, .parity_guard = true});
    ASSERT_TRUE(runner.checkpoint());

    cl.run(10);
    cl.inject_reg_fault(0, 7, 0x4); // r7 is never read: stays latched
    ASSERT_TRUE(cl.reg_parity_pending());

    EXPECT_FALSE(runner.checkpoint()) << "detect-before-save must reject corrupt state";
    EXPECT_FALSE(cl.reg_parity_pending()) << "rollback restored the clean snapshot";
    EXPECT_EQ(runner.stats().rollbacks, 1u);
    EXPECT_TRUE(runner.checkpoint()) << "clean state checkpoints normally";
}

TEST(Checkpoint, TmrScrubRepairsAtCheckpointTime) {
    const auto prog = isa::assemble(R"(
        movi r2, 50
    loop:
        sub  r2, r2, #1
        bra  ne, loop
        hlt
    )");
    auto cfg = single_core();
    cfg.reg_protection = core::RegProtection::Tmr;
    Cluster cl(cfg, prog);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 0, .max_retries = 2, .parity_guard = true});
    ASSERT_TRUE(runner.checkpoint());

    cl.run(10);
    cl.inject_reg_fault(0, 7, 0x4);
    EXPECT_EQ(cl.pending_reg_faults(), 1u);

    EXPECT_TRUE(runner.checkpoint()) << "TMR vote-repairs, nothing to reject";
    EXPECT_EQ(cl.pending_reg_faults(), 0u);
    EXPECT_EQ(cl.stats().reg_tmr_votes, 1u);
    EXPECT_EQ(runner.stats().rollbacks, 0u);
}

TEST(UpsetRateEstimator, PrimesOnTheFirstEventBearingWindow) {
    fault::UpsetRateEstimator est(0.5);
    EXPECT_FALSE(est.primed());
    EXPECT_DOUBLE_EQ(est.lambda_hat(), 0.0);
    est.observe(2, 300); // mean gap 150
    EXPECT_TRUE(est.primed());
    EXPECT_DOUBLE_EQ(est.gap_hat(), 150.0);
    EXPECT_DOUBLE_EQ(est.lambda_hat(), 1.0 / 150.0);
    EXPECT_EQ(est.updates(), 1u);
}

TEST(UpsetRateEstimator, SmoothsInterEventGapsNotWindowRates) {
    fault::UpsetRateEstimator est(0.5);
    est.observe(1, 100);
    est.observe(1, 300); // gap EWMA: 0.5 * 300 + 0.5 * 100
    EXPECT_DOUBLE_EQ(est.gap_hat(), 200.0);
    EXPECT_EQ(est.updates(), 2u);
}

TEST(UpsetRateEstimator, SilentWindowsBoundTheRateWithoutEnteringTheEwma) {
    fault::UpsetRateEstimator est(0.5);
    est.observe(1, 100); // gap_hat = 100
    est.observe(0, 40);  // silence 40 < gap_hat: the bound is inactive
    EXPECT_DOUBLE_EQ(est.lambda_hat(), 1.0 / 100.0);
    est.observe(0, 360); // silence 400 > gap_hat: the rate decays as 1/t
    EXPECT_DOUBLE_EQ(est.lambda_hat(), 1.0 / 400.0);
    EXPECT_DOUBLE_EQ(est.gap_hat(), 100.0) << "the EWMA itself must not move";
    EXPECT_EQ(est.updates(), 1u);
    // When the event finally lands, the accumulated silence is that gap's
    // lead-in — counted exactly once.
    est.observe(1, 100); // gap = (400 + 100) / 1
    EXPECT_DOUBLE_EQ(est.gap_hat(), 0.5 * 500.0 + 0.5 * 100.0);
    EXPECT_DOUBLE_EQ(est.lambda_hat(), 1.0 / est.gap_hat());
}

TEST(UpsetRateEstimator, SilenceSplitDoesNotChangeTheEstimate) {
    // Three silent windows followed by an event-bearing one must produce
    // the same estimate as one long window: the no-double-count property
    // that keeps lambda_hat unbiased across window-boundary placement.
    fault::UpsetRateEstimator split(0.3), whole(0.3);
    split.observe(1, 50);
    whole.observe(1, 50);
    split.observe(0, 100);
    split.observe(0, 100);
    split.observe(0, 100);
    split.observe(1, 100);
    whole.observe(1, 400);
    EXPECT_DOUBLE_EQ(split.gap_hat(), whole.gap_hat());
    EXPECT_DOUBLE_EQ(split.lambda_hat(), whole.lambda_hat());
    EXPECT_EQ(split.updates(), whole.updates());
}

TEST(UpsetRateEstimator, ResetRestoresTheUnprimedState) {
    fault::UpsetRateEstimator est(0.3);
    est.observe(3, 900);
    est.observe(0, 50);
    est.reset(0.7);
    EXPECT_FALSE(est.primed());
    EXPECT_DOUBLE_EQ(est.lambda_hat(), 0.0);
    EXPECT_DOUBLE_EQ(est.gap_hat(), 0.0);
    EXPECT_EQ(est.updates(), 0u);
    EXPECT_DOUBLE_EQ(est.alpha(), 0.7);
    est.observe(1, 200); // silence from before the reset must be gone
    EXPECT_DOUBLE_EQ(est.gap_hat(), 200.0);
}

// Long countdown (~9k cycles): spans many adaptive observation windows.
const char* kLongLoop = R"(
    movi r1, 70
    movi r2, 3000
loop:
    mov  r3, @r1
    sub  r2, r2, #1
    bra  ne, loop
    hlt
)";

TEST(Checkpoint, AdaptiveQuietRunParksAtMaxIntervalUntouched) {
    const auto prog = isa::assemble(kLongLoop);
    const auto cfg = single_core();

    Cluster plain(cfg, prog);
    const Cycle plain_cycles = plain.run(200'000);

    Cluster cl(cfg, prog);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 0, .max_retries = 2, .parity_guard = true,
                  .adaptive = true, .min_interval = 100, .max_interval = 2'000});
    const Cycle cycles = runner.run(200'000);

    EXPECT_EQ(cycles, plain_cycles) << "the adaptive controller must not perturb a clean run";
    EXPECT_EQ(cl.core_state(0).regs[3], plain.core_state(0).regs[3]);
    EXPECT_EQ(runner.effective_interval(), 2'000u) << "interval 0 parks at max_interval";
    EXPECT_EQ(runner.stats().interval_updates, 0u) << "no events, no re-solves";
    EXPECT_DOUBLE_EQ(runner.stats().lambda_hat, 0.0);
    EXPECT_GE(runner.stats().checkpoints, plain_cycles / 2'000);
    EXPECT_EQ(runner.stats().rollbacks, 0u);
}

TEST(Checkpoint, AdaptiveControllerShortensTheIntervalUnderFire) {
    // A TMR-repairable upset lands in every slice; each checkpoint scrub
    // turns it into a counted vote event, so the estimator sees a dense
    // event stream and the controller re-solves the interval downward
    // from its oversized start.
    const auto prog = isa::assemble(kLongLoop);
    auto cfg = single_core();
    cfg.reg_protection = core::RegProtection::Tmr;
    Cluster cl(cfg, prog);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 2'000, .max_retries = 2, .parity_guard = true,
                  .adaptive = true, .min_interval = 100, .max_interval = 4'000,
                  .alpha = 0.5});
    while (!cl.core_halted(0) && cl.stats().cycles < 10'000) {
        cl.inject_reg_fault(0, 9, 0x4); // dead register: repaired by the scrub
        runner.run(cl.stats().cycles + 120);
    }
    EXPECT_GT(cl.stats().reg_tmr_votes, 0u) << "the scrub must emit countable events";
    EXPECT_GT(runner.stats().interval_updates, 0u);
    EXPECT_GT(runner.stats().lambda_hat, 0.0);
    EXPECT_LT(runner.stats().current_interval, 2'000u);
    EXPECT_GE(runner.stats().current_interval, 100u);
}

TEST(Checkpoint, DetectBeforeSaveReportsTheUpsetToTheEstimator) {
    // A latched parity upset found at save time costs a rollback that no
    // protection counter ever records (the trap would only fire on a
    // read); the adaptive controller must still hear about it, or
    // detect-before-save-heavy environments are systematically
    // underestimated.
    const auto prog = isa::assemble(kLongLoop);
    auto cfg = single_core();
    cfg.reg_protection = core::RegProtection::Parity;
    Cluster cl(cfg, prog);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 500, .max_retries = 4, .parity_guard = true,
                  .adaptive = true, .min_interval = 100, .max_interval = 600});
    runner.run(1'200); // a few clean windows: the estimator is still unprimed
    EXPECT_DOUBLE_EQ(runner.stats().lambda_hat, 0.0);

    cl.inject_reg_fault(0, 9, 0x4); // never read: latched until save time
    runner.run(4'000);
    EXPECT_GE(runner.stats().rollbacks, 1u) << "detect-before-save refused the state";
    EXPECT_EQ(cl.stats().reg_parity_traps, 0u) << "no counter saw the upset...";
    EXPECT_GT(runner.stats().lambda_hat, 0.0) << "...yet the estimator was primed by it";
}

} // namespace
} // namespace ulpmc::cluster
