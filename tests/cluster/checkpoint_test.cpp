// CheckpointRunner unit coverage (DESIGN.md §9): interval checkpoints on
// a clean run are invisible, a transient trap re-executes from the last
// snapshot, a deterministic trap exhausts the retry budget and reports
// gave_up, and the parity detect-before-save guard refuses to immortalize
// a latched register upset in a recovery point.
#include <gtest/gtest.h>

#include "cluster/checkpoint.hpp"
#include "cluster/cluster.hpp"
#include "isa/assembler.hpp"

namespace ulpmc::cluster {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 64, .private_words_per_core = 256};

ClusterConfig single_core(ArchKind arch = ArchKind::UlpmcBank) {
    auto cfg = make_config(arch, kLayout);
    cfg.cores = 1;
    return cfg;
}

// ~200-iteration countdown reading @70 every iteration, then hlt.
const char* kLoadLoop = R"(
    movi r1, 70
    movi r2, 200
loop:
    mov  r3, @r1
    sub  r2, r2, #1
    bra  ne, loop
    hlt
)";

TEST(Checkpoint, IntervalCheckpointsDoNotPerturbACleanRun) {
    const auto prog = isa::assemble(kLoadLoop);
    const auto cfg = single_core();

    Cluster plain(cfg, prog);
    const Cycle plain_cycles = plain.run(100'000);

    Cluster cl(cfg, prog);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 100, .max_retries = 2, .parity_guard = true});
    const Cycle cycles = runner.run(100'000);

    EXPECT_EQ(cycles, plain_cycles);
    EXPECT_TRUE(cl.core_halted(0));
    EXPECT_EQ(cl.core_state(0).regs[3], plain.core_state(0).regs[3]);
    EXPECT_GE(runner.stats().checkpoints, plain_cycles / 100);
    EXPECT_EQ(runner.stats().rollbacks, 0u);
    EXPECT_EQ(runner.stats().reexec_cycles, 0u);
    EXPECT_FALSE(runner.stats().gave_up);
}

TEST(Checkpoint, TransientEccTrapRollsBackAndReexecutes) {
    // A double-bit DM upset traps on the next read; restoring the pre-fault
    // snapshot erases the deposited corruption, so the replay verifies.
    const auto prog = isa::assemble(kLoadLoop);
    auto cfg = single_core();
    cfg.ecc_enabled = true;

    Cluster cl(cfg, prog);
    cl.dm_poke(0, 70, 5);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 0, .max_retries = 2, .parity_guard = true});
    ASSERT_TRUE(runner.checkpoint());

    runner.run(50); // mid-loop, past the recovery point
    cl.inject_dm_fault(0, 70, 0b11); // double-bit: detectable, uncorrectable
    const Cycle cycles = runner.run(100'000);

    EXPECT_TRUE(cl.core_halted(0));
    EXPECT_EQ(cl.core_trap(0), core::Trap::None);
    EXPECT_EQ(cl.core_state(0).regs[3], 5u) << "replayed read sees the clean value";
    EXPECT_EQ(runner.stats().rollbacks, 1u);
    EXPECT_GT(runner.stats().reexec_cycles, 0u);
    EXPECT_FALSE(runner.stats().gave_up);
    EXPECT_GT(cycles, 0u);
}

TEST(Checkpoint, DeterministicTrapExhaustsRetriesAndGivesUp) {
    // The program itself faults (store far outside the mapped space): every
    // replay re-traps, so the runner must stop after max_retries rollbacks
    // and leave the trapped state for the caller to classify.
    const auto prog = isa::assemble(R"(
        movi r1, 40000
        mov  @r1, r1
        hlt
    )");
    Cluster cl(single_core(), prog);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 0, .max_retries = 2, .parity_guard = true});
    ASSERT_TRUE(runner.checkpoint());

    runner.run(100'000);

    EXPECT_TRUE(runner.stats().gave_up);
    EXPECT_EQ(runner.stats().rollbacks, 2u);
    EXPECT_EQ(cl.core_trap(0), core::Trap::MemoryFault);
}

TEST(Checkpoint, ParityGuardRefusesToSaveCorruptState) {
    // A latched (parity-detectable) register upset at checkpoint time
    // means the CURRENT state is corrupt: checkpoint() must roll back to
    // the previous good snapshot instead of saving, clearing the upset.
    const auto prog = isa::assemble(R"(
        movi r2, 50
    loop:
        sub  r2, r2, #1
        bra  ne, loop
        hlt
    )");
    auto cfg = single_core();
    cfg.reg_protection = core::RegProtection::Parity;
    Cluster cl(cfg, prog);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 0, .max_retries = 2, .parity_guard = true});
    ASSERT_TRUE(runner.checkpoint());

    cl.run(10);
    cl.inject_reg_fault(0, 7, 0x4); // r7 is never read: stays latched
    ASSERT_TRUE(cl.reg_parity_pending());

    EXPECT_FALSE(runner.checkpoint()) << "detect-before-save must reject corrupt state";
    EXPECT_FALSE(cl.reg_parity_pending()) << "rollback restored the clean snapshot";
    EXPECT_EQ(runner.stats().rollbacks, 1u);
    EXPECT_TRUE(runner.checkpoint()) << "clean state checkpoints normally";
}

TEST(Checkpoint, TmrScrubRepairsAtCheckpointTime) {
    const auto prog = isa::assemble(R"(
        movi r2, 50
    loop:
        sub  r2, r2, #1
        bra  ne, loop
        hlt
    )");
    auto cfg = single_core();
    cfg.reg_protection = core::RegProtection::Tmr;
    Cluster cl(cfg, prog);
    CheckpointRunner runner(cl);
    runner.reset({.interval = 0, .max_retries = 2, .parity_guard = true});
    ASSERT_TRUE(runner.checkpoint());

    cl.run(10);
    cl.inject_reg_fault(0, 7, 0x4);
    EXPECT_EQ(cl.pending_reg_faults(), 1u);

    EXPECT_TRUE(runner.checkpoint()) << "TMR vote-repairs, nothing to reject";
    EXPECT_EQ(cl.pending_reg_faults(), 0u);
    EXPECT_EQ(cl.stats().reg_tmr_votes, 1u);
    EXPECT_EQ(runner.stats().rollbacks, 0u);
}

} // namespace
} // namespace ulpmc::cluster
