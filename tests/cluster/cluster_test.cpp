#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "core/functional_core.hpp"
#include "isa/assembler.hpp"

namespace ulpmc::cluster {
namespace {

constexpr mmu::DmLayout kTinyLayout{.shared_words = 64, .private_words_per_core = 128};

/// A program exercising every instruction class; reads shared word 0,
/// works in its private scratch at 64.., and halts.
const char* kMiniProgram = R"(
        .equ PRIV, 64
        movi r1, PRIV
        movi r2, 0          ; shared base
        mov  r3, @r2        ; shared read
        add  r4, r3, #5
        mull r5, r4, r4
        mulh r6, r4, r4
        sft  r7, r5, #-3
        xor  r8, r5, r6
        mov  @r1+, r4       ; private writes
        mov  @r1+, r5
        mov  r9, @r1-2      ; read back with offset
        jal  r14, sub1
        hlt
sub1:   or   r10, r9, #1
        ret  r14
)";

ClusterConfig tiny_config(ArchKind k) { return make_config(k, kTinyLayout); }

class ClusterArchTest : public ::testing::TestWithParam<ArchKind> {};

TEST_P(ClusterArchTest, MiniProgramMatchesFunctionalISS) {
    const auto prog = isa::assemble(kMiniProgram);

    // Golden: the functional ISS on a flat view of the virtual space.
    core::FlatMemory flat(kTinyLayout.limit());
    flat.poke(0, 1234); // the shared word
    core::FunctionalCore gold(prog.text, flat);
    gold.state().pc = prog.entry;
    gold.run();
    ASSERT_TRUE(gold.halted());

    Cluster cl(tiny_config(GetParam()), prog);
    for (unsigned p = 0; p < kNumCores; ++p) cl.dm_poke(static_cast<CoreId>(p), 0, 1234);
    cl.run();

    for (unsigned p = 0; p < kNumCores; ++p) {
        ASSERT_EQ(cl.core_trap(static_cast<CoreId>(p)), core::Trap::None);
        ASSERT_TRUE(cl.core_halted(static_cast<CoreId>(p)));
        const auto& st = cl.core_state(static_cast<CoreId>(p));
        EXPECT_EQ(st.regs, gold.state().regs) << "core " << p;
        EXPECT_EQ(st.pc, gold.state().pc);
        EXPECT_EQ(cl.dm_peek(static_cast<CoreId>(p), 64), flat.peek(64));
        EXPECT_EQ(cl.dm_peek(static_cast<CoreId>(p), 65), flat.peek(65));
        EXPECT_EQ(cl.stats().core[p].instret, gold.instret());
    }
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ClusterArchTest,
                         ::testing::Values(ArchKind::McRef, ArchKind::UlpmcInt,
                                           ArchKind::UlpmcBank),
                         [](const auto& info) {
                             std::string n = arch_name(info.param);
                             n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
                             return n;
                         });

TEST(Cluster, PrivateSectionsAreIsolatedPerCore) {
    const auto prog = isa::assemble("hlt");
    Cluster cl(tiny_config(ArchKind::UlpmcBank), prog);
    for (unsigned p = 0; p < kNumCores; ++p)
        cl.dm_poke(static_cast<CoreId>(p), 100, static_cast<Word>(p * 11));
    for (unsigned p = 0; p < kNumCores; ++p)
        EXPECT_EQ(cl.dm_peek(static_cast<CoreId>(p), 100), p * 11);
}

TEST(Cluster, SharedSectionIsCommon) {
    const auto prog = isa::assemble("hlt");
    Cluster cl(tiny_config(ArchKind::UlpmcBank), prog);
    cl.dm_poke(0, 5, 999);
    for (unsigned p = 0; p < kNumCores; ++p) EXPECT_EQ(cl.dm_peek(static_cast<CoreId>(p), 5), 999);
}

TEST(Cluster, StaggeredStartOffsetsHaltTimes) {
    // Conflict-free program => core p halts exactly p cycles after core 0.
    const auto prog = isa::assemble(R"(
        movi r1, 10
    l:  sub r1, r1, #1
        bra ne, l
        hlt
    )");
    auto cfg = tiny_config(ArchKind::McRef);
    ASSERT_TRUE(cfg.stagger_start);
    Cluster cl(cfg, prog);
    cl.run();
    const Cycle base = cl.stats().core[0].halted_at;
    for (unsigned p = 0; p < kNumCores; ++p)
        EXPECT_EQ(cl.stats().core[p].halted_at, base + p) << "core " << p;
}

TEST(Cluster, LockstepStartWithoutStagger) {
    const auto prog = isa::assemble("nop\nnop\nhlt\n");
    Cluster cl(tiny_config(ArchKind::UlpmcInt), prog);
    cl.run();
    for (unsigned p = 1; p < kNumCores; ++p)
        EXPECT_EQ(cl.stats().core[p].halted_at, cl.stats().core[0].halted_at);
}

TEST(Cluster, DedicatedImCountsPerCoreStreams) {
    const auto prog = isa::assemble("nop\nnop\nnop\nhlt\n");
    Cluster cl(tiny_config(ArchKind::McRef), prog);
    cl.run();
    std::uint64_t fetches = 0;
    for (const auto& c : cl.stats().core) fetches += c.im_fetches;
    // Every fetch in mc-ref is a physical access to the core's own bank.
    EXPECT_EQ(cl.stats().im_bank_accesses, fetches);
    EXPECT_EQ(fetches, 4u * kNumCores);
}

TEST(Cluster, BroadcastMergesLockstepFetches) {
    const auto prog = isa::assemble("nop\nnop\nnop\nnop\nhlt\n");
    Cluster cl(tiny_config(ArchKind::UlpmcInt), prog);
    cl.run();
    // All 8 cores fetch the same PC each cycle: one bank access per cycle.
    EXPECT_EQ(cl.stats().im_bank_accesses, 5u);
    EXPECT_EQ(cl.stats().ixbar.broadcast_riders, 5u * (kNumCores - 1));
}

TEST(Cluster, UlpmcBankGatesUnusedImBanks) {
    const auto prog = isa::assemble("hlt");
    Cluster cl(tiny_config(ArchKind::UlpmcBank), prog);
    EXPECT_EQ(cl.stats().im_banks_used, 1u);
    EXPECT_EQ(cl.stats().im_banks_gated, 7u);
}

TEST(Cluster, UlpmcIntCannotGate) {
    const auto prog = isa::assemble("nop\nnop\nhlt\n");
    Cluster cl(tiny_config(ArchKind::UlpmcInt), prog);
    EXPECT_EQ(cl.stats().im_banks_gated, 0u);
}

TEST(Cluster, JumpIntoGatedBankTraps) {
    // ulpmc-bank gates banks 1..7; branching to address 4096 (bank 1)
    // must fault rather than silently fetch garbage.
    const auto prog = isa::assemble("bra al, =4096\nhlt\n");
    Cluster cl(tiny_config(ArchKind::UlpmcBank), prog);
    cl.run();
    for (unsigned p = 0; p < kNumCores; ++p)
        EXPECT_EQ(cl.core_trap(static_cast<CoreId>(p)), core::Trap::FetchFault);
}

TEST(Cluster, MemoryFaultOnUnmappedAddress) {
    const auto prog = isa::assemble(R"(
        movi r1, 0x4000     ; far beyond shared+private
        mov  r2, @r1
        hlt
    )");
    Cluster cl(tiny_config(ArchKind::UlpmcBank), prog);
    cl.run();
    EXPECT_EQ(cl.core_trap(0), core::Trap::MemoryFault);
}

TEST(Cluster, IllegalInstructionTraps) {
    isa::Program prog;
    prog.text = {0xF00000u};
    Cluster cl(tiny_config(ArchKind::UlpmcInt), prog);
    cl.run();
    EXPECT_EQ(cl.core_trap(0), core::Trap::IllegalInstruction);
    EXPECT_EQ(cl.stats().core[0].trap, core::Trap::IllegalInstruction);
}

TEST(Cluster, RunIsIdempotentAfterQuiescence) {
    const auto prog = isa::assemble("hlt");
    Cluster cl(tiny_config(ArchKind::UlpmcInt), prog);
    const Cycle c1 = cl.run();
    const Cycle c2 = cl.run();
    EXPECT_EQ(c1, c2);
    EXPECT_FALSE(cl.step());
}

TEST(Cluster, TotalOpsSumsCores) {
    const auto prog = isa::assemble("nop\nnop\nhlt\n");
    Cluster cl(tiny_config(ArchKind::UlpmcInt), prog);
    cl.run();
    EXPECT_EQ(cl.stats().total_ops(), 3u * kNumCores);
}

TEST(Cluster, RunsWithNonPaperGeometry) {
    // 32 small DM banks, 16 small IM banks: everything still verifies.
    const auto prog = isa::assemble(kMiniProgram);
    auto cfg = tiny_config(ArchKind::UlpmcBank);
    cfg.dm_banks = 32;
    cfg.dm_bank_words = kDmWordsTotal / 32;
    cfg.im_banks = 16;
    cfg.im_bank_words = kImWordsTotal / 16;
    Cluster cl(cfg, prog);
    for (unsigned p = 0; p < kNumCores; ++p) cl.dm_poke(static_cast<CoreId>(p), 0, 1234);
    cl.run();
    for (unsigned p = 0; p < kNumCores; ++p) {
        EXPECT_EQ(cl.core_trap(static_cast<CoreId>(p)), core::Trap::None);
        EXPECT_TRUE(cl.core_halted(static_cast<CoreId>(p)));
    }
    EXPECT_EQ(cl.stats().im_banks_total, 16u);
    EXPECT_EQ(cl.stats().im_banks_gated, 15u);
}

TEST(Cluster, SharedLoadContendedWithoutBroadcastSerializes) {
    // All cores read shared word 0 in lockstep; without broadcast (and
    // without stagger) they serialize 8-ways on the bank.
    const auto prog = isa::assemble(R"(
        movi r1, 0
        mov  r2, @r1
        hlt
    )");
    auto cfg = tiny_config(ArchKind::McRef);
    cfg.stagger_start = false; // force the pathological case
    Cluster cl(cfg, prog);
    cl.run();
    EXPECT_GT(cl.stats().dxbar.denied, 20u); // 7+6+...+1 = 28 denials
    std::uint64_t stalls = 0;
    for (const auto& c : cl.stats().core) stalls += c.stall_cycles;
    EXPECT_GE(stalls, 28u);
}

TEST(Cluster, BroadcastEliminatesThatContention) {
    const auto prog = isa::assemble(R"(
        movi r1, 0
        mov  r2, @r1
        hlt
    )");
    Cluster cl(tiny_config(ArchKind::UlpmcInt), prog);
    cl.run();
    EXPECT_EQ(cl.stats().dxbar.denied, 0u);
    EXPECT_EQ(cl.stats().dxbar.broadcast_riders, kNumCores - 1u);
}

} // namespace
} // namespace ulpmc::cluster
