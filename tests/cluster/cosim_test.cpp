// Randomized co-simulation: the cycle-accurate cluster against the
// functional ISS — our analogue of the paper's LISA-vs-HDL regression
// flow (Fig. 4). Hundreds of random straight-line programs with random
// addressing modes run on all three architectures; architectural state,
// data memory and instruction counts must match the ISS exactly.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/functional_core.hpp"
#include "isa/asm_builder.hpp"

namespace ulpmc::cluster {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 256, .private_words_per_core = 512};

/// Generates a terminating random program: MOVI preamble pinning the
/// address registers (r12, r13) to safe bases, then `len` random
/// ALU/MOV/MOVI instructions whose memory operands only use r12/r13
/// (drift < len stays mapped), then HLT.
isa::Program random_program(Rng& rng, unsigned len) {
    using namespace ulpmc::isa;
    AsmBuilder b;
    b.movi(12, static_cast<Word>(64 + rng.below(64)));                   // shared-ish base
    b.movi(13, static_cast<Word>(kLayout.shared_words + 128 + rng.below(64))); // private base
    for (unsigned r = 0; r < 12; ++r) b.movi(r, static_cast<Word>(rng.next_u32()));

    const auto rand_src = [&](bool allow_mem) -> SrcOperand {
        switch (allow_mem ? rng.below(4) : rng.below(2)) {
        case 0:
            return sreg(rng.below(12));
        case 1:
            return simm(static_cast<int>(rng.below(16)));
        default: {
            const unsigned reg = 12 + rng.below(2);
            switch (rng.below(6)) {
            case 0:
                return sind(reg);
            case 1:
                return spostinc(reg);
            case 2:
                return spostdec(reg);
            case 3:
                return spreinc(reg);
            case 4:
                return spredec(reg);
            default:
                return soff(reg); // MOV only; caller filters
            }
        }
        }
    };

    for (unsigned i = 0; i < len; ++i) {
        switch (rng.below(8)) {
        case 0: { // MOV (may use the offset mode)
            SrcOperand s = rand_src(true);
            int off = 0;
            if (s.mode == SrcMode::IndOff) off = rng.range(-8, 8);
            if (rng.below(3) == 0) {
                // Memory destinations only ever target the private base
                // (r13): concurrent same-address shared writes would make
                // the multi-core outcome order-dependent and the ISS
                // comparison meaningless.
                const unsigned reg = 13;
                const DstOperand d = rng.below(2) ? dind(reg) : dpostinc(reg);
                if (s.mode == SrcMode::IndOff) s = sreg(rng.below(12)); // one mem op max kept simple
                b.mov(d, s, 0);
            } else {
                b.mov(dreg(rng.below(12)), s, off);
            }
            break;
        }
        case 1:
            b.movi(rng.below(12), static_cast<Word>(rng.next_u32()));
            break;
        default: { // ALU
            const auto op = static_cast<Opcode>(rng.below(8));
            SrcOperand a = rand_src(true);
            if (a.mode == SrcMode::IndOff) a = sind(12 + rng.below(2));
            SrcOperand s2 = rand_src(false);
            DstOperand d = dreg(rng.below(12));
            if (rng.below(4) == 0) {
                d = rng.below(2) ? dind(13) : dpostinc(13); // private only
            }
            b.alu(op, d, a, s2);
            break;
        }
        }
    }
    b.hlt();
    return b.finish();
}

TEST(CoSimulation, RandomProgramsMatchFunctionalISS) {
    Rng rng(2024);
    for (int iter = 0; iter < 150; ++iter) {
        const isa::Program prog = random_program(rng, 40);

        core::FlatMemory flat(kLayout.limit());
        core::FunctionalCore gold(prog.text, flat);
        gold.run();
        ASSERT_TRUE(gold.halted()) << "iteration " << iter;

        for (const ArchKind arch : {ArchKind::McRef, ArchKind::UlpmcInt, ArchKind::UlpmcBank}) {
            Cluster cl(make_config(arch, kLayout), prog);
            cl.run();
            for (unsigned p = 0; p < kNumCores; ++p) {
                ASSERT_EQ(cl.core_trap(static_cast<CoreId>(p)), core::Trap::None)
                    << "iter " << iter << " arch " << arch_name(arch) << " core " << p;
                ASSERT_TRUE(cl.core_halted(static_cast<CoreId>(p)));
                const auto& st = cl.core_state(static_cast<CoreId>(p));
                ASSERT_EQ(st.regs, gold.state().regs)
                    << "iter " << iter << " arch " << arch_name(arch) << " core " << p;
                ASSERT_EQ(st.flags, gold.state().flags);
                ASSERT_EQ(cl.stats().core[p].instret, gold.instret());
            }
            // Spot-check the touched memory window on core 0 and core 5.
            for (Addr v = 0; v < 256; v += 7)
                ASSERT_EQ(cl.dm_peek(0, v), flat.peek(v)) << "shared @" << v;
            for (Addr v = kLayout.shared_words; v < kLayout.limit(); v += 11) {
                ASSERT_EQ(cl.dm_peek(0, v), flat.peek(v)) << "priv @" << v;
                ASSERT_EQ(cl.dm_peek(5, v), flat.peek(v)) << "priv5 @" << v;
            }
        }
    }
}

/// The same sweep but asserting cycle-level sanity: the cluster can never
/// need fewer cycles than instructions, and a conflict-free single-stream
/// section commits one instruction per cycle.
TEST(CoSimulation, CyclesBoundedByInstructions) {
    Rng rng(77);
    for (int iter = 0; iter < 30; ++iter) {
        const isa::Program prog = random_program(rng, 40);
        Cluster cl(make_config(ArchKind::UlpmcInt, kLayout), prog);
        cl.run();
        const auto& s = cl.stats();
        for (const auto& c : s.core) {
            EXPECT_GE(s.cycles, c.instret);
            EXPECT_LE(c.instret, 60u);
        }
    }
}

} // namespace
} // namespace ulpmc::cluster
