// Equivalence tests for the zero-allocation reuse layer: Cluster::reset()
// must be indistinguishable from fresh construction (across geometry and
// engine changes, and after fault injection), Cluster save()/restore()
// must replay runs bit-exactly (including undoing faults and patches),
// and cluster::pooled_cluster() must hand back the same re-initialized
// instance per thread.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "cluster/pool.hpp"
#include "isa/assembler.hpp"
#include "isa/program_image.hpp"

namespace ulpmc {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 512, .private_words_per_core = 2048};

isa::Program loop_program() {
    return isa::assemble(R"(
            movi r1, 700
            movi r2, 30
    loop:   add  r3, r3, #1
            mov  @r1+, r3
            sub  r2, r2, #1
            bra  ne, loop
    done:   bra  al, done
    )");
}

cluster::ClusterConfig cfg_of(cluster::ArchKind arch, unsigned cores,
                              cluster::SimEngine engine = cluster::SimEngine::Trace) {
    auto cfg = cluster::make_config(arch, kLayout);
    cfg.cores = cores;
    cfg.engine = engine;
    return cfg;
}

void expect_identical(cluster::Cluster& a, cluster::Cluster& b, unsigned cores,
                      const std::string& ctx) {
    ASSERT_EQ(a.stats(), b.stats()) << ctx;
    for (unsigned p = 0; p < cores; ++p) {
        const auto pid = static_cast<CoreId>(p);
        ASSERT_EQ(a.core_state(pid), b.core_state(pid)) << ctx << " core " << p;
        ASSERT_EQ(a.core_halted(pid), b.core_halted(pid)) << ctx << " core " << p;
        ASSERT_EQ(a.core_trap(pid), b.core_trap(pid)) << ctx << " core " << p;
        for (Addr v = 0; v < kLayout.limit(); ++v)
            ASSERT_EQ(a.dm_peek(pid, v), b.dm_peek(pid, v))
                << ctx << " core " << p << " vaddr " << v;
    }
}

TEST(ClusterReuse, ResetMatchesFreshConstruction) {
    const auto prog = loop_program();
    // Exercise a full geometry + engine change: the reused instance was
    // built as a 4-core banked trace cluster, the target is a 2-core
    // dedicated-IM reference cluster with ECC.
    const auto first = cfg_of(cluster::ArchKind::UlpmcBank, 4);
    auto target = cfg_of(cluster::ArchKind::McRef, 2, cluster::SimEngine::Reference);
    target.ecc_enabled = true;

    cluster::Cluster reused(first, prog);
    reused.run(100); // park mid-run so reset() has real state to erase
    reused.reset(target, prog);

    cluster::Cluster fresh(target, prog);
    ASSERT_EQ(reused.run(100'000), fresh.run(100'000));
    expect_identical(reused, fresh, target.cores, "reset vs fresh");
}

TEST(ClusterReuse, ResetErasesFaultsAndPatches) {
    const auto prog = loop_program();
    const auto cfg = cfg_of(cluster::ArchKind::UlpmcBank, 2);

    cluster::Cluster reused(cfg, prog);
    reused.run(20);
    reused.inject_im_fault(2, 0x1); // corrupt a loop-body word
    reused.dm_poke(0, 700, 0xBEEF);
    reused.run(500);
    reused.reset(cfg, prog);

    cluster::Cluster fresh(cfg, prog);
    ASSERT_EQ(reused.run(100'000), fresh.run(100'000));
    expect_identical(reused, fresh, cfg.cores, "reset after faults");
}

TEST(ClusterReuse, SnapshotRoundTripReplaysIdentically) {
    const auto prog = loop_program();
    const auto cfg = cfg_of(cluster::ArchKind::UlpmcBank, 2);

    cluster::Cluster cl(cfg, prog);
    cl.run(60); // mid-block, mid-run
    cluster::Cluster::Snapshot snap;
    cl.save(snap);

    const Cycle end1 = cl.run(100'000);
    const auto stats1 = cl.stats();
    std::vector<core::CoreState> states1;
    std::vector<Word> dm1;
    for (unsigned p = 0; p < cfg.cores; ++p) {
        states1.push_back(cl.core_state(static_cast<CoreId>(p)));
        for (Addr v = 0; v < kLayout.limit(); ++v)
            dm1.push_back(cl.dm_peek(static_cast<CoreId>(p), v));
    }

    cl.restore(snap);
    ASSERT_EQ(cl.run(100'000), end1);
    ASSERT_EQ(cl.stats(), stats1);
    std::size_t di = 0;
    for (unsigned p = 0; p < cfg.cores; ++p) {
        ASSERT_EQ(cl.core_state(static_cast<CoreId>(p)), states1[p]) << "core " << p;
        for (Addr v = 0; v < kLayout.limit(); ++v)
            ASSERT_EQ(cl.dm_peek(static_cast<CoreId>(p), v), dm1[di++]) << "vaddr " << v;
    }
}

TEST(ClusterReuse, SnapshotRestoreUndoesFaultAndTextPatch) {
    const auto prog = loop_program();
    const auto patched = isa::assemble(R"(
            movi r1, 700
            movi r2, 30
    loop:   add  r3, r3, #7
            mov  @r1+, r3
            sub  r2, r2, #1
            bra  ne, loop
    done:   bra  al, done
    )");
    const auto cfg = cfg_of(cluster::ArchKind::UlpmcBank, 1);

    cluster::Cluster ref(cfg, prog);
    const Cycle clean = ref.run(100'000);

    cluster::Cluster cl(cfg, prog);
    cl.run(40);
    cluster::Cluster::Snapshot snap;
    cl.save(snap);
    cl.im_poke(2, patched.text[2]); // text patch invalidates the memo
    cl.inject_im_fault(3, 0x3);     // plus a raw double-bit upset
    cl.dm_poke(0, 710, 0xDEAD);
    cl.run(300);

    cl.restore(snap); // must undo the faults, the patch, and the run
    ASSERT_EQ(cl.run(100'000), clean);
    expect_identical(cl, ref, cfg.cores, "restore undoes faults");
}

TEST(ClusterReuse, SnapshotPortableAcrossInstances) {
    // The batched tier's peel restores a snapshot of the REPRESENTATIVE
    // into a DIFFERENT cluster instance — one that may carry its own IM
    // dirt from a previous injection. The restore must erase the target's
    // dirt (dirt-union repair), apply the source's, and land bit-exactly.
    const auto prog = loop_program();
    const auto image = isa::ProgramImage::build(prog);
    const auto cfg = cfg_of(cluster::ArchKind::UlpmcBank, 2);

    cluster::Cluster a(cfg, image);
    a.run(60);
    cluster::Cluster::Snapshot snap;
    a.save(snap);

    cluster::Cluster b(cfg, image);
    b.run(33);
    b.inject_im_fault(4, 0x1); // dirt at a PC clean in a's snapshot
    b.inject_dm_fault(0, 700, 0xFF);
    b.run(100);

    b.restore(snap);
    ASSERT_TRUE(b.state_equals(snap));
    ASSERT_EQ(b.run(100'000), a.run(100'000));
    expect_identical(a, b, cfg.cores, "cross-instance restore");
}

TEST(ClusterReuse, SnapshotStoresOnlyDirtyImCells) {
    // Memory-dedup contract: the IM is captured as (per-bank stats +
    // raw cells of the dirty PCs), never the full kImWordsTotal image —
    // what keeps a 12-rung campaign ladder affordable per thread.
    const auto prog = loop_program();
    const auto cfg = cfg_of(cluster::ArchKind::UlpmcBank, 2);

    cluster::Cluster cl(cfg, prog);
    cl.run(50);
    cluster::Cluster::Snapshot clean;
    cl.save(clean);
    ASSERT_EQ(clean.saved_im_cells(), 0u) << "clean IM captures zero cells";

    cl.inject_im_fault(2, 0x1);
    cl.inject_im_fault(5, 0x3);
    cluster::Cluster::Snapshot dirty;
    cl.save(dirty);
    ASSERT_GE(dirty.saved_im_cells(), 2u) << "both dirty PCs captured";
    ASSERT_LE(dirty.saved_im_cells(), std::size_t{2} * cfg.cores)
        << "only dirty-PC replicas, not the whole IM";

    // Restore-identity: the dirty snapshot replays the faulted execution,
    // the clean one undoes the dirt entirely.
    cluster::Cluster ref(cfg, prog);
    const Cycle clean_cycles = ref.run(100'000);
    cl.restore(clean);
    ASSERT_EQ(cl.run(100'000), clean_cycles);
    expect_identical(cl, ref, cfg.cores, "clean snapshot undoes IM dirt");
}

TEST(ClusterReuse, StateEqualsTracksDivergence) {
    const auto prog = loop_program();
    const auto cfg = cfg_of(cluster::ArchKind::UlpmcInt, 2);

    cluster::Cluster cl(cfg, prog);
    cl.run(60);
    cluster::Cluster::Snapshot snap;
    cl.save(snap);
    ASSERT_TRUE(cl.state_equals(snap)) << "reflexive at the save point";

    cl.run(65);
    ASSERT_FALSE(cl.state_equals(snap)) << "mid-loop progress diverges";

    cl.restore(snap);
    ASSERT_TRUE(cl.state_equals(snap));
    cl.inject_dm_fault(0, 705, 0xF0);
    ASSERT_FALSE(cl.state_equals(snap)) << "DM upset is future-determining";
}

TEST(ClusterReuse, PooledClusterReinitializesSameInstance) {
    const auto prog = loop_program();
    const auto cfg = cfg_of(cluster::ArchKind::UlpmcBank, 2);

    cluster::Cluster& a = cluster::pooled_cluster(cfg, prog);
    const Cycle cy = a.run(100'000);
    const auto stats = a.stats();

    cluster::Cluster& b = cluster::pooled_cluster(cfg, prog);
    ASSERT_EQ(&a, &b) << "one instance per thread";
    ASSERT_EQ(b.stats().cycles, 0u) << "handed back re-initialized";
    ASSERT_EQ(b.run(100'000), cy);
    ASSERT_EQ(b.stats(), stats);
}

TEST(ClusterReuse, PooledClusterKeepsOneBucketPerShape) {
    const auto prog = loop_program();
    cluster::pooled_cluster_clear();
    const auto before = cluster::pooled_cluster_stats();

    // Two distinct shapes (core count differs): each gets its own bucket,
    // and alternating between them re-uses both instances.
    const auto cfg2 = cfg_of(cluster::ArchKind::UlpmcBank, 2);
    const auto cfg4 = cfg_of(cluster::ArchKind::UlpmcBank, 4);
    cluster::Cluster* c2 = &cluster::pooled_cluster(cfg2, prog);
    cluster::Cluster* c4 = &cluster::pooled_cluster(cfg4, prog);
    ASSERT_NE(c2, c4) << "distinct shapes must not share a bucket";
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(&cluster::pooled_cluster(cfg2, prog), c2);
        ASSERT_EQ(&cluster::pooled_cluster(cfg4, prog), c4);
    }

    const auto after = cluster::pooled_cluster_stats();
    EXPECT_EQ(after.buckets, 2u);
    EXPECT_EQ(after.misses - before.misses, 2u) << "one construction per shape";
    EXPECT_EQ(after.hits - before.hits, 6u) << "every revisit is a bucket hit";
    EXPECT_EQ(after.evictions - before.evictions, 0u);

    // Protection-flag changes share the shape bucket: reset() handles them
    // without re-construction (the fleet ladder path).
    auto prot = cfg2;
    prot.ecc_enabled = true;
    prot.reg_protection = core::RegProtection::Tmr;
    ASSERT_EQ(&cluster::pooled_cluster(prot, prog), c2);
    EXPECT_EQ(cluster::pooled_cluster_stats().hits - before.hits, 7u);
}

TEST(ClusterReuse, PooledClusterEvictsColdestShape) {
    const auto prog = loop_program();
    cluster::pooled_cluster_clear();
    const auto before = cluster::pooled_cluster_stats();

    // Walk more shapes than the pool can hold (vary core count): the live
    // bucket count stays bounded and the overflow evicts.
    for (unsigned n = 0; n < cluster::kPoolMaxBuckets + 2; ++n) {
        const auto cfg = cfg_of(n < 8 ? cluster::ArchKind::UlpmcBank : cluster::ArchKind::McRef,
                                1 + (n % 8));
        cluster::pooled_cluster(cfg, prog);
    }
    const auto after = cluster::pooled_cluster_stats();
    EXPECT_EQ(after.buckets, cluster::kPoolMaxBuckets);
    EXPECT_EQ(after.misses - before.misses, cluster::kPoolMaxBuckets + 2);
    EXPECT_EQ(after.evictions - before.evictions, 2u) << "overflow evicts the coldest";
    cluster::pooled_cluster_clear();
    EXPECT_EQ(cluster::pooled_cluster_stats().buckets, 0u);
}

} // namespace
} // namespace ulpmc
