// Zero-allocation guarantees for the reuse layer (own binary: it replaces
// the global allocator with a counting one). After warm-up, steady-state
// Cluster::step()/run() must not touch the heap, and neither must the
// shapes the sweep runner and fault campaigns execute per point: reset()
// with unchanged geometry, save() into a warm snapshot, and restore().
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "cluster/batched.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "cluster/pool.hpp"
#include "isa/assembler.hpp"
#include "isa/program_image.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
std::uint64_t alloc_count() { return g_news.load(std::memory_order_relaxed); }
} // namespace

void* operator new(std::size_t sz) {
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(sz ? sz : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, const std::nothrow_t&) noexcept {
    g_news.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(sz ? sz : 1);
}
void* operator new[](std::size_t sz, const std::nothrow_t& t) noexcept {
    return ::operator new(sz, t);
}
void* operator new(std::size_t sz, std::align_val_t al) {
    g_news.fetch_add(1, std::memory_order_relaxed);
    const auto a = static_cast<std::size_t>(al);
    if (void* p = std::aligned_alloc(a, (sz + a - 1) / a * a)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t sz, std::align_val_t al) { return ::operator new(sz, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace ulpmc {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 512, .private_words_per_core = 2048};

isa::Program loop_program() {
    return isa::assemble(R"(
            movi r1, 700
            movi r2, 2000
    loop:   add  r3, r3, #1
            mov  @r1, r3
            sub  r2, r2, #1
            bra  ne, loop
    done:   bra  al, done
    )");
}

cluster::ClusterConfig make_cfg(unsigned cores) {
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcBank, kLayout);
    cfg.cores = cores;
    return cfg;
}

TEST(ZeroAlloc, SteadyStateStepIsHeapFree) {
    const auto prog = loop_program();
    const auto cfg = make_cfg(8);
    cluster::Cluster cl(cfg, prog);
    cl.run(200); // warm-up: scratch buffers and decode caches settle

    const std::uint64_t before = alloc_count();
    for (int i = 0; i < 2'000; ++i) cl.step();
    EXPECT_EQ(alloc_count(), before) << "Cluster::step() allocated on the heap";
}

TEST(ZeroAlloc, SteadyStateRunBurstIsHeapFree) {
    const auto prog = loop_program();
    const auto cfg = make_cfg(1); // single active core: the memo-lane path
    cluster::Cluster cl(cfg, prog);
    cl.run(100);

    const std::uint64_t before = alloc_count();
    cl.run(6'000); // trace bursts + memoized lanes
    EXPECT_EQ(alloc_count(), before) << "Cluster::run() burst allocated on the heap";
}

TEST(ZeroAlloc, SweepAndCampaignInnerLoopIsHeapFree) {
    const auto prog = loop_program();
    const auto cfg = make_cfg(4);

    // Warm-up: one full pass through every reuse shape so each buffer and
    // snapshot reaches its steady-state capacity.
    cluster::Cluster cl(cfg, prog);
    cluster::Cluster::Snapshot snap;
    cl.run(60);
    cl.save(snap);
    cl.restore(snap);
    cl.run(100'000);
    cl.reset(cfg, prog);
    cl.run(60);
    cl.save(snap);

    const std::uint64_t before = alloc_count();
    // Campaign shape: restore a ladder rung, run the injection to the end.
    for (int i = 0; i < 4; ++i) {
        cl.restore(snap);
        cl.run(100'000);
    }
    // Sweep shape: re-launch the same geometry from scratch.
    for (int i = 0; i < 4; ++i) {
        cl.reset(cfg, prog);
        cl.run(100'000);
        cl.save(snap); // campaigns re-snapshot per ladder rebuild
    }
    EXPECT_EQ(alloc_count(), before) << "reuse inner loop allocated on the heap";
}

TEST(ZeroAlloc, BatchedCampaignInnerLoopIsHeapFree) {
    const auto prog = loop_program();
    const auto image = isa::ProgramImage::build(prog);
    auto cfg = make_cfg(4);
    cfg.engine = cluster::SimEngine::Batched;

    // Campaign shape: the representative runs the clean schedule once and
    // snapshots a rung; every injection group then resets the lanes, peels
    // one lane from the rung, runs it, attempts a rejoin and materializes
    // its statistics. DM faults only, so the snapshot's IM dirt list stays
    // at its warm capacity.
    cluster::BatchedCluster bc(cfg, image, 4);
    cluster::Cluster::Snapshot rung, final_snap;
    bc.rep().run(60);
    bc.rep().save(rung);
    bc.rep().run(100'000);
    bc.rep().save(final_snap);
    cluster::ClusterStats stats_buf;

    // Warm-up pass: every lane's private cluster gets built once.
    for (unsigned l = 0; l < bc.lanes(); ++l) {
        bc.reset_lanes();
        cluster::Cluster& lane = bc.peel_at(l, rung, cluster::PeelReason::FaultStrike);
        lane.inject_dm_fault(0, 700, 0xFF);
        lane.run(100'000);
        if (!bc.try_rejoin(l, final_snap)) bc.add_peel_reason(l, cluster::PeelReason::MemoBail);
        bc.lane_stats_into(l, stats_buf);
    }

    const std::uint64_t before = alloc_count();
    for (int i = 0; i < 4; ++i) {
        bc.reset_lanes();
        for (unsigned l = 0; l < bc.lanes(); ++l) {
            cluster::Cluster& lane = bc.peel_at(l, rung, cluster::PeelReason::FaultStrike);
            lane.run(80);
            lane.inject_dm_fault(0, 700, 0x0F);
            lane.run(100'000);
            if (!bc.try_rejoin(l, final_snap))
                bc.add_peel_reason(l, cluster::PeelReason::MemoBail);
            bc.lane_stats_into(l, stats_buf);
        }
    }
    EXPECT_EQ(alloc_count(), before) << "batched campaign inner loop allocated on the heap";
}

TEST(ZeroAlloc, FleetHeterogeneousPoolLoopIsHeapFree) {
    // Fleet shape (DESIGN.md §13): one worker interleaves devices of
    // DIFFERENT shapes — e.g. an 8-core banked device's calibration run
    // followed by a 2-core reference one — through pooled_cluster(). The
    // per-shape buckets must make the alternating loop heap-free once
    // every shape in the working set has been constructed.
    const auto prog = loop_program();
    const auto image = isa::ProgramImage::build(prog);
    auto cfg_a = make_cfg(8);
    auto cfg_b = cluster::make_config(cluster::ArchKind::McRef, kLayout);
    cfg_b.cores = 2;
    cfg_b.ecc_enabled = true;

    cluster::pooled_cluster_clear();
    // Warm-up: construct both shape buckets and let their buffers settle.
    cluster::pooled_cluster(cfg_a, image).run(100'000);
    cluster::pooled_cluster(cfg_b, image).run(100'000);
    const auto warm = cluster::pooled_cluster_stats();

    const std::uint64_t before = alloc_count();
    for (int i = 0; i < 4; ++i) {
        cluster::pooled_cluster(cfg_a, image).run(100'000);
        // Ladder rung on the same shape: protection flags flip in place.
        auto rung = cfg_a;
        rung.reg_protection = core::RegProtection::Parity;
        cluster::pooled_cluster(rung, image).run(100'000);
        cluster::pooled_cluster(cfg_b, image).run(100'000);
    }
    EXPECT_EQ(alloc_count(), before) << "heterogeneous pool loop allocated on the heap";
    const auto after = cluster::pooled_cluster_stats();
    EXPECT_EQ(after.misses, warm.misses) << "warm shapes must never re-construct";
    EXPECT_EQ(after.evictions, 0u);
    cluster::pooled_cluster_clear();
}

} // namespace
} // namespace ulpmc
