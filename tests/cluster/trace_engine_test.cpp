// Directed edge-case tests for the trace-compiled engine (DESIGN.md §10),
// complementing the randomized differential coverage in
// fastpath_diff_test.cpp: self-loop blocks, register-indirect branches
// into the middle of a block (served by the suffix run, not a static
// split), poke-invalidation of a memoized block, the text-boundary
// FetchFault inside a superblock, and a double-bit ECC upset consumed by
// the memo lane. Every test pins the trace engine cycle- and stat-exact
// against the reference engine on the same inputs.
#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "isa/assembler.hpp"

namespace ulpmc {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 512, .private_words_per_core = 2048};

cluster::ClusterConfig single_core_cfg(cluster::SimEngine engine) {
    auto cfg = cluster::make_config(cluster::ArchKind::UlpmcBank, kLayout);
    cfg.cores = 1;
    cfg.engine = engine;
    return cfg;
}

void expect_identical(cluster::Cluster& trace, cluster::Cluster& ref, const std::string& ctx) {
    ASSERT_EQ(trace.stats(), ref.stats()) << ctx;
    ASSERT_EQ(trace.core_state(0), ref.core_state(0)) << ctx;
    ASSERT_EQ(trace.core_halted(0), ref.core_halted(0)) << ctx;
    ASSERT_EQ(trace.core_trap(0), ref.core_trap(0)) << ctx;
    for (Addr v = 0; v < kLayout.limit(); ++v)
        ASSERT_EQ(trace.dm_peek(0, v), ref.dm_peek(0, v)) << ctx << " vaddr " << v;
}

TEST(TraceEngine, SelfLoopBlockHaltsAtIdenticalCycle) {
    const auto prog = isa::assemble(R"(
            movi r1, 600
            add  r3, r3, #1
            mov  @r1+, r3
    done:   bra  al, done
    )");
    cluster::Cluster ref(single_core_cfg(cluster::SimEngine::Reference), prog);
    cluster::Cluster trace(single_core_cfg(cluster::SimEngine::Trace), prog);
    const Cycle cy = ref.run(1'000);
    ASSERT_EQ(trace.run(1'000), cy);
    EXPECT_TRUE(trace.core_halted(0));
    expect_identical(trace, ref, "self-loop halt");
}

TEST(TraceEngine, RegIndBranchIntoMidBlockUsesSuffixRun) {
    // `bra ne, @r5` re-enters at pc 5, the middle of the straight-line
    // block [2..8]: no static leader exists there, so the trace engine
    // must run the block suffix — and produce the exact architectural
    // state and cycle count of the reference engine.
    const auto prog = isa::assemble(R"(
            movi r1, 3
            movi r5, 5
            add  r2, r2, #1
            add  r3, r3, #1
            add  r3, r3, #2
            add  r3, r3, #3
            add  r4, r4, #1
            sub  r1, r1, #1
            bra  ne, @r5
    done:   bra  al, done
    )");
    cluster::Cluster ref(single_core_cfg(cluster::SimEngine::Reference), prog);
    cluster::Cluster trace(single_core_cfg(cluster::SimEngine::Trace), prog);
    const Cycle cy = ref.run(1'000);
    ASSERT_EQ(trace.run(1'000), cy);
    EXPECT_EQ(trace.core_state(0).regs[2], 1) << "prefix executed once";
    EXPECT_EQ(trace.core_state(0).regs[4], 3) << "suffix executed every pass";
    expect_identical(trace, ref, "reg-indirect mid-block entry");
}

TEST(TraceEngine, ImPokeInvalidatesMemoizedBlock) {
    // Patch a word inside a memoized (mem-free) loop body mid-run: the
    // block map must be rebuilt and the new instruction must take effect
    // on the next fetch, exactly as on the reference engine.
    const auto prog = isa::assemble(R"(
            movi r1, 40
    loop:   add  r3, r3, #1
            add  r4, r4, #2
            sub  r1, r1, #1
            bra  ne, loop
    done:   bra  al, done
    )");
    const auto patched = isa::assemble(R"(
            movi r1, 40
    loop:   add  r3, r3, #5
            add  r4, r4, #2
            sub  r1, r1, #1
            bra  ne, loop
    done:   bra  al, done
    )");
    cluster::Cluster ref(single_core_cfg(cluster::SimEngine::Reference), prog);
    cluster::Cluster trace(single_core_cfg(cluster::SimEngine::Trace), prog);
    for (auto* cl : {&ref, &trace}) {
        cl->run(10); // park mid-lane, inside the memoized loop
        cl->im_poke(1, patched.text[1]);
        cl->run(1'000);
    }
    EXPECT_TRUE(trace.core_halted(0));
    EXPECT_GT(trace.core_state(0).regs[3], 40) << "patched add #5 took effect";
    expect_identical(trace, ref, "poke-invalidated memoized block");
}

TEST(TraceEngine, TextBoundaryFetchFaultInsideSuperblock) {
    // The final block has no terminator: the memo lane runs to the last
    // instruction and the next fetch crosses text_size — FetchFault, at
    // the same cycle and with the same commit count as the reference.
    const auto prog = isa::assemble(R"(
            movi r1, 1
            add  r3, r3, #1
            add  r3, r3, #2
            add  r3, r3, #3
            add  r3, r3, #4
    )");
    cluster::Cluster ref(single_core_cfg(cluster::SimEngine::Reference), prog);
    cluster::Cluster trace(single_core_cfg(cluster::SimEngine::Trace), prog);
    const Cycle cy = ref.run(1'000);
    ASSERT_EQ(trace.run(1'000), cy);
    EXPECT_EQ(trace.core_trap(0), core::Trap::FetchFault);
    EXPECT_EQ(trace.stats().core[0].instret, 5u) << "all real instructions commit first";
    expect_identical(trace, ref, "text-boundary fault in superblock");
}

TEST(TraceEngine, EccUncorrectableInsideMemoizedLane) {
    // A double-bit upset in a loop-body word that still decodes legally:
    // the block stays memoized, so the lane's own fetch consumes the
    // sticky uncorrectable flag and must trap at the reference's cycle.
    const auto prog = isa::assemble(R"(
            movi r1, 30
    loop:   add  r3, r3, #1
            add  r4, r4, #2
            sub  r1, r1, #1
            bra  ne, loop
    done:   bra  al, done
    )");
    auto make = [&](cluster::SimEngine e) {
        auto cfg = single_core_cfg(e);
        cfg.ecc_enabled = true;
        return cluster::Cluster(cfg, prog);
    };
    cluster::Cluster ref = make(cluster::SimEngine::Reference);
    cluster::Cluster trace = make(cluster::SimEngine::Trace);
    for (auto* cl : {&ref, &trace}) {
        cl->run(10);
        cl->inject_im_fault(1, 0x6); // two bits inside the imm4 field
        cl->run(1'000);
    }
    EXPECT_EQ(trace.core_trap(0), core::Trap::EccFault);
    expect_identical(trace, ref, "double-bit upset in memo lane");
}

TEST(TraceEngine, StepAndRunInterleavingStaysExact) {
    // Mixing generic step() cycles with run() bursts must land on the
    // same states as pure per-cycle stepping: the burst resumes from any
    // cycle boundary (including mid-block).
    const auto prog = isa::assemble(R"(
            movi r1, 700
            movi r2, 25
    loop:   add  r3, r3, #1
            mov  @r1+, r3
            sub  r2, r2, #1
            bra  ne, loop
    done:   bra  al, done
    )");
    cluster::Cluster ref(single_core_cfg(cluster::SimEngine::Reference), prog);
    cluster::Cluster trace(single_core_cfg(cluster::SimEngine::Trace), prog);
    ref.run(1'000);
    for (int i = 0; i < 7; ++i) trace.step(); // generic cycles mid-block
    trace.run(53);                            // burst up to an odd boundary
    for (int i = 0; i < 3; ++i) trace.step();
    trace.run(1'000);
    expect_identical(trace, ref, "step/run interleaving");
}

} // namespace
} // namespace ulpmc
