// Differential tests for the batched lockstep engine (DESIGN.md §11):
// every lane of a BatchedCluster must be cycle- and stat-identical to a
// standalone Trace-tier run of that lane — clean lanes ride the shared
// representative, a struck lane peels into private simulation while its
// siblings stay in lockstep, and a converged lane rejoins with its
// statistics materialized as base + representative tail. The sweep covers
// all three IM policies, 1/2/4/8 cores and batch widths 1/4/16.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/batched.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "isa/program_image.hpp"

namespace ulpmc {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 512, .private_words_per_core = 2048};

constexpr cluster::ArchKind kArchs[] = {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                                        cluster::ArchKind::UlpmcBank};
constexpr unsigned kCoreCounts[] = {1, 2, 4, 8};
constexpr unsigned kBatchSizes[] = {1, 4, 16};

isa::Program loop_program() {
    return isa::assemble(R"(
            movi r1, 700
            movi r2, 30
    loop:   add  r3, r3, #1
            mov  @r1+, r3
            sub  r2, r2, #1
            bra  ne, loop
    done:   bra  al, done
    )");
}

/// Stores every iteration to the SAME address, so a DM upset there is
/// overwritten within one iteration — the divergence a rejoin can prove out.
isa::Program overwrite_program() {
    return isa::assemble(R"(
            movi r2, 200
    loop:   movi r1, 700
            add  r3, r3, #1
            mov  @r1+, r3
            sub  r2, r2, #1
            bra  ne, loop
    done:   bra  al, done
    )");
}

cluster::ClusterConfig cfg_of(cluster::ArchKind arch, unsigned cores, cluster::SimEngine engine) {
    auto cfg = cluster::make_config(arch, kLayout);
    cfg.cores = cores;
    cfg.engine = engine;
    return cfg;
}

/// Lane stats with the batch observability counters cleared — the part
/// that must be bit-identical to a standalone Trace run.
cluster::ClusterStats sans_batch(cluster::ClusterStats s) {
    s.batch_lockstep_cycles = 0;
    s.batch_lane_peels = 0;
    s.batch_peel_reasons = {};
    return s;
}

void expect_lane_matches(const cluster::BatchedCluster& bc, unsigned lane,
                         const cluster::Cluster& ref, const std::string& ctx) {
    ASSERT_EQ(sans_batch(bc.lane_stats(lane)), ref.stats()) << ctx << " lane " << lane;
    const cluster::Cluster& view = bc.lane_view(lane);
    const unsigned cores = bc.config().cores;
    for (unsigned p = 0; p < cores; ++p) {
        const auto pid = static_cast<CoreId>(p);
        ASSERT_EQ(view.core_state(pid), ref.core_state(pid)) << ctx << " lane " << lane;
        ASSERT_EQ(view.core_halted(pid), ref.core_halted(pid)) << ctx << " lane " << lane;
        ASSERT_EQ(view.core_trap(pid), ref.core_trap(pid)) << ctx << " lane " << lane;
        for (Addr v = 690; v < 740; ++v)
            ASSERT_EQ(view.dm_peek(pid, v), ref.dm_peek(pid, v))
                << ctx << " lane " << lane << " vaddr " << v;
        // The SoA mirror must agree with the embodying cluster.
        ASSERT_EQ(bc.lane_pc(lane, p), ref.core_state(pid).pc) << ctx << " lane " << lane;
        const auto regs = bc.lane_regs(lane);
        for (unsigned r = 0; r < kNumRegisters; ++r)
            ASSERT_EQ(regs[p * kNumRegisters + r], ref.core_state(pid).regs[r])
                << ctx << " lane " << lane << " r" << r;
    }
}

TEST(BatchedDiff, CleanLockstepMatchesTracePerLane) {
    const auto prog = loop_program();
    const auto image = isa::ProgramImage::build(prog);
    for (const auto arch : kArchs) {
        for (const unsigned cores : kCoreCounts) {
            for (const unsigned batch : kBatchSizes) {
                const std::string ctx = cluster::arch_name(arch) + "/c" + std::to_string(cores) +
                                        "/b" + std::to_string(batch);
                cluster::Cluster ref(cfg_of(arch, cores, cluster::SimEngine::Trace), image);
                ref.run(100'000);

                cluster::BatchedCluster bc(cfg_of(arch, cores, cluster::SimEngine::Batched),
                                           image, batch);
                bc.run_lockstep(100'000);
                for (unsigned l = 0; l < batch; ++l) {
                    ASSERT_TRUE(bc.in_lockstep(l)) << ctx;
                    ASSERT_EQ(bc.lane_cycle(l), ref.stats().cycles) << ctx;
                    expect_lane_matches(bc, l, ref, ctx);
                    const auto st = bc.lane_stats(l);
                    ASSERT_EQ(st.batch_lane_peels, 0u) << ctx;
                    ASSERT_EQ(st.batch_lockstep_cycles, ref.stats().cycles) << ctx;
                }
            }
        }
    }
}

TEST(BatchedDiff, RandomFaultPeelsOneLaneSiblingsStayLockstep) {
    const auto prog = loop_program();
    const auto image = isa::ProgramImage::build(prog);
    Rng rng(0xBA7C4ED0);
    for (const auto arch : kArchs) {
        for (const unsigned cores : kCoreCounts) {
            for (const unsigned batch : kBatchSizes) {
                const std::string ctx = cluster::arch_name(arch) + "/c" + std::to_string(cores) +
                                        "/b" + std::to_string(batch);
                const auto tcfg = cfg_of(arch, cores, cluster::SimEngine::Trace);
                cluster::Cluster clean(tcfg, image);
                const Cycle clean_cycles = clean.run(100'000);

                const Cycle strike = 10 + rng.below(static_cast<std::uint32_t>(clean_cycles / 2));
                const unsigned victim = rng.below(batch);
                const CoreId vcore = static_cast<CoreId>(rng.below(cores));
                const unsigned kind = rng.below(3);

                const auto apply = [&](cluster::Cluster& cl) {
                    switch (kind) {
                    case 0: cl.inject_reg_fault(vcore, 3, 0x5); break;
                    case 1: cl.inject_dm_fault(vcore, 705, 0xFF); break;
                    default: cl.inject_im_fault(2, 0x1); break;
                    }
                };

                // Standalone Trace reference of the struck lane.
                cluster::Cluster ref(tcfg, image);
                ref.run(strike);
                apply(ref);
                ref.run(200'000);

                cluster::BatchedCluster bc(cfg_of(arch, cores, cluster::SimEngine::Batched),
                                           image, batch);
                bc.run_lockstep(strike);
                cluster::Cluster& lane = bc.peel(victim, cluster::PeelReason::FaultStrike);
                apply(lane);
                bc.run_lockstep(200'000);

                ASSERT_FALSE(bc.in_lockstep(victim)) << ctx;
                expect_lane_matches(bc, victim, ref, ctx + " struck");
                const auto vs = bc.lane_stats(victim);
                ASSERT_EQ(vs.batch_lane_peels, 1u) << ctx;
                ASSERT_EQ(vs.batch_peel_reasons[static_cast<unsigned>(
                              cluster::PeelReason::FaultStrike)],
                          1u)
                    << ctx;
                ASSERT_EQ(vs.batch_lockstep_cycles, strike) << ctx;

                clean.run(200'000); // match the second dispatch's bound
                for (unsigned l = 0; l < batch; ++l) {
                    if (l == victim) continue;
                    ASSERT_TRUE(bc.in_lockstep(l)) << ctx;
                    expect_lane_matches(bc, l, clean, ctx + " sibling");
                }
            }
        }
    }
}

TEST(BatchedDiff, ConvergedLaneRejoinsWithExactStats) {
    const auto prog = overwrite_program();
    const auto image = isa::ProgramImage::build(prog);
    const auto arch = cluster::ArchKind::UlpmcBank;
    const unsigned cores = 4, batch = 4, victim = 1;
    const auto tcfg = cfg_of(arch, cores, cluster::SimEngine::Trace);

    cluster::Cluster clean(tcfg, image);
    const Cycle clean_cycles = clean.run(100'000);

    const Cycle strike = 120;
    const Cycle boundary = clean_cycles / 2; // fault long overwritten by then
    cluster::Cluster ref(tcfg, image);
    ref.run(strike);
    ref.inject_dm_fault(0, 700, 0x3C);
    ref.run(200'000);
    ASSERT_EQ(ref.stats().cycles, clean_cycles) << "fault must converge for this test";

    cluster::BatchedCluster bc(cfg_of(arch, cores, cluster::SimEngine::Batched), image, batch);
    bc.run_lockstep(strike);
    cluster::Cluster& lane = bc.peel(victim, cluster::PeelReason::FaultStrike);
    lane.inject_dm_fault(0, 700, 0x3C);
    bc.run_lockstep(boundary);

    cluster::Cluster::Snapshot at;
    bc.rep().save(at);
    ASSERT_TRUE(bc.try_rejoin(victim, at)) << "overwritten upset must rejoin";
    ASSERT_TRUE(bc.in_lockstep(victim));
    bc.run_lockstep(200'000);

    expect_lane_matches(bc, victim, ref, "rejoined");
    const auto vs = bc.lane_stats(victim);
    ASSERT_EQ(vs.batch_lane_peels, 1u);
    // Shared cycles = prefix up to the peel + everything after the rejoin.
    ASSERT_EQ(vs.batch_lockstep_cycles, strike + (clean_cycles - boundary));
    for (unsigned l = 0; l < batch; ++l) {
        if (l == victim) continue;
        expect_lane_matches(bc, l, clean, "sibling");
    }
}

TEST(BatchedDiff, PeelAtEarlierSnapshotBackCreditsPrefix) {
    const auto prog = loop_program();
    const auto image = isa::ProgramImage::build(prog);
    const auto arch = cluster::ArchKind::UlpmcInt;
    const unsigned cores = 2, batch = 4, victim = 2;
    const auto tcfg = cfg_of(arch, cores, cluster::SimEngine::Trace);

    // Campaign shape: the representative runs the whole clean run first;
    // lanes then re-seed from saved rungs.
    cluster::BatchedCluster bc(cfg_of(arch, cores, cluster::SimEngine::Batched), image, batch);
    cluster::Cluster::Snapshot rung;
    bc.rep().run(80);
    bc.rep().save(rung);
    const Cycle clean_cycles = bc.rep().run(100'000);
    cluster::Cluster::Snapshot final_snap;
    bc.rep().save(final_snap);

    bc.reset_lanes();
    cluster::Cluster& lane = bc.peel_at(victim, rung, cluster::PeelReason::FaultStrike);
    ASSERT_EQ(bc.lane_stats(victim).batch_lockstep_cycles, 80u) << "prefix back-credit";
    lane.run(100);
    lane.inject_dm_fault(0, 705, 0xF0);
    lane.run(100'000);

    // Standalone reference of the same schedule.
    cluster::Cluster ref(tcfg, image);
    ref.run(100);
    ref.inject_dm_fault(0, 705, 0xF0);
    ref.run(100'000);
    expect_lane_matches(bc, victim, ref, "peel_at");

    // A converging lane instead: no fault at all — rejoins at the final
    // snapshot and rides a zero-length tail.
    bc.reset_lanes();
    cluster::Cluster& lane2 = bc.peel_at(0, rung, cluster::PeelReason::MemoBail);
    lane2.run(clean_cycles);
    ASSERT_TRUE(bc.try_rejoin(0, final_snap));
    ASSERT_EQ(sans_batch(bc.lane_stats(0)), bc.rep().stats());
    ASSERT_EQ(bc.lane_stats(0).batch_lockstep_cycles, 80u);
}

} // namespace
} // namespace ulpmc
