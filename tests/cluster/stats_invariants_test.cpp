// Randomized cross-counter invariants: the cluster's statistics are the
// power model's only input, so their internal consistency is checked over
// random programs and all architectures. Any accounting bug (double
// counting, missed riders, grant/access mismatch) trips these.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "isa/asm_builder.hpp"

namespace ulpmc::cluster {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 128, .private_words_per_core = 256};

/// Small random terminating program (reads shared, writes private).
isa::Program random_program(Rng& rng) {
    using namespace ulpmc::isa;
    AsmBuilder b;
    b.movi(12, static_cast<Word>(rng.below(64)));                  // shared base
    b.movi(13, static_cast<Word>(128 + 64 + rng.below(32)));       // private base
    for (unsigned r = 0; r < 8; ++r) b.movi(r, static_cast<Word>(rng.next_u32()));
    const unsigned len = 10 + rng.below(30);
    for (unsigned i = 0; i < len; ++i) {
        switch (rng.below(5)) {
        case 0:
            b.mov(dreg(rng.below(8)), spostinc(12));
            break;
        case 1:
            b.mov(dpostinc(13), sreg(rng.below(8)));
            break;
        case 2:
            b.alu(static_cast<Opcode>(rng.below(8)), dreg(rng.below(8)), sreg(rng.below(8)),
                  simm(static_cast<int>(rng.below(16))));
            break;
        case 3:
            b.mov(dreg(rng.below(8)), sind(13));
            break;
        default:
            b.alu(Opcode::ADD, dreg(rng.below(8)), sind(12), sreg(rng.below(8)));
            break;
        }
    }
    b.hlt();
    return b.finish();
}

void check_invariants(const ClusterStats& s, ArchKind arch) {
    // 1. Fetches served == I-Xbar grants (every fetch routes through it).
    std::uint64_t fetches = 0;
    std::uint64_t instret = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    for (const auto& c : s.core) {
        fetches += c.im_fetches;
        instret += c.instret;
        loads += c.dm_loads;
        stores += c.dm_stores;
    }
    EXPECT_EQ(fetches, s.ixbar.grants);

    // 2. Physical IM accesses + broadcast riders == fetches served.
    EXPECT_EQ(s.im_bank_accesses + s.ixbar.broadcast_riders, fetches);

    // 3. One fetch per committed instruction (no wrong-path fetches).
    EXPECT_EQ(fetches, instret);

    // 4. DM bank write count equals committed stores exactly; reads can
    //    only be saved by broadcast, never created.
    EXPECT_EQ(s.dm_bank_writes, stores);
    EXPECT_LE(s.dm_bank_reads, loads);
    EXPECT_EQ(s.dm_bank_reads + s.dxbar.broadcast_riders, loads);

    // 5. Grants + denials == requests on both interconnects.
    EXPECT_EQ(s.ixbar.grants + s.ixbar.denied, s.ixbar.requests);
    EXPECT_EQ(s.dxbar.grants + s.dxbar.denied, s.dxbar.requests);

    // 6. mc-ref has no broadcast anywhere.
    if (arch == ArchKind::McRef) {
        EXPECT_EQ(s.ixbar.broadcast_riders, 0u);
        EXPECT_EQ(s.dxbar.broadcast_riders, 0u);
    }

    // 7. Cycle count bounds: at least the per-core instruction count, at
    //    most instret summed (full serialization) plus slack.
    for (const auto& c : s.core) EXPECT_GE(s.cycles, c.instret);
    EXPECT_LE(s.cycles, instret + 16);
}

TEST(StatsInvariants, HoldOverRandomProgramsAndArchitectures) {
    Rng rng(4242);
    for (int iter = 0; iter < 60; ++iter) {
        const isa::Program prog = random_program(rng);
        for (const ArchKind arch : {ArchKind::McRef, ArchKind::UlpmcInt, ArchKind::UlpmcBank}) {
            Cluster cl(make_config(arch, kLayout), prog);
            cl.run();
            for (unsigned p = 0; p < kNumCores; ++p)
                ASSERT_EQ(cl.core_trap(static_cast<CoreId>(p)), core::Trap::None)
                    << "iter " << iter << " " << arch_name(arch);
            check_invariants(cl.stats(), arch);
        }
    }
}

TEST(StatsInvariants, HoldUnderHeavyContention) {
    // The worst case: lockstep cores hammering one shared bank without
    // broadcast (denials dominate) — the counters must still balance,
    // except the cycle upper bound, which serialization legitimately
    // breaks.
    using namespace ulpmc::isa;
    AsmBuilder b;
    b.movi(12, 0);
    for (int i = 0; i < 20; ++i) b.mov(dreg(1), sind(12)); // same shared word
    b.hlt();
    const Program prog = b.finish();

    auto cfg = make_config(ArchKind::McRef, kLayout);
    cfg.stagger_start = false;
    Cluster cl(cfg, prog);
    cl.run();

    const auto& s = cl.stats();
    EXPECT_GT(s.dxbar.denied, 100u); // contention actually happened
    std::uint64_t fetches = 0;
    std::uint64_t instret = 0;
    std::uint64_t loads = 0;
    for (const auto& c : s.core) {
        fetches += c.im_fetches;
        instret += c.instret;
        loads += c.dm_loads;
    }
    EXPECT_EQ(fetches, instret);
    EXPECT_EQ(s.dm_bank_reads, loads); // no broadcast: every load is physical
    EXPECT_EQ(s.dxbar.grants + s.dxbar.denied, s.dxbar.requests);
}

} // namespace
} // namespace ulpmc::cluster
