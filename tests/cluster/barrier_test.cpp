// Tests for the memory-mapped barrier/event unit — our extension beyond
// the paper (DESIGN.md §7) used to resynchronize the cores after
// data-dependent sections in streaming workloads.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "core/functional_core.hpp"
#include "isa/assembler.hpp"

namespace ulpmc::cluster {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 64, .private_words_per_core = 128};

ClusterConfig barrier_config(ArchKind k) {
    auto cfg = make_config(k, kLayout);
    cfg.barrier_enabled = true;
    cfg.stagger_start = false;
    return cfg;
}

TEST(Barrier, ResynchronizesSkewedCores) {
    // Each core spins PID-proportionally (read its private skew counter),
    // then hits the barrier; all cores must leave it in the same cycle.
    const auto prog = isa::assemble(R"(
        .equ SKEW, 64
        .equ BARRIER, 0xFFFF
        movi r1, SKEW
        mov  r2, @r1         ; per-core skew count (poked by the test)
        or   r2, r2, #0      ; set flags (Z when zero skew)
        bra  eq, sync
    spin:
        sub  r2, r2, #1
        bra  ne, spin
    sync:
        movi r3, BARRIER
        mov  @r3, r0         ; barrier arrive
        nop
        hlt
    )");

    Cluster cl(barrier_config(ArchKind::UlpmcInt), prog);
    for (unsigned p = 0; p < kNumCores; ++p)
        cl.dm_poke(static_cast<CoreId>(p), 64, static_cast<Word>(10 * p));
    cl.run();

    for (unsigned p = 0; p < kNumCores; ++p) {
        ASSERT_EQ(cl.core_trap(static_cast<CoreId>(p)), core::Trap::None);
        ASSERT_TRUE(cl.core_halted(static_cast<CoreId>(p)));
    }
    // Despite wildly different pre-barrier work, every core halts in the
    // same cycle: the barrier re-established lockstep.
    const Cycle h0 = cl.stats().core[0].halted_at;
    for (unsigned p = 1; p < kNumCores; ++p) EXPECT_EQ(cl.stats().core[p].halted_at, h0);
}

TEST(Barrier, DisabledBarrierAddressFaults) {
    const auto prog = isa::assemble(R"(
        movi r3, 0xFFFF
        mov  @r3, r0
        hlt
    )");
    auto cfg = make_config(ArchKind::UlpmcInt, kLayout); // barrier NOT enabled
    Cluster cl(cfg, prog);
    cl.run();
    EXPECT_EQ(cl.core_trap(0), core::Trap::MemoryFault);
}

TEST(Barrier, HaltedCoresDoNotBlockRelease) {
    // Core-dependent control flow: cores with zero skew halt immediately
    // WITHOUT reaching the barrier; the rest must still be released.
    const auto prog = isa::assemble(R"(
        .equ FLAG, 64
        .equ BARRIER, 0xFFFF
        movi r1, FLAG
        mov  r2, @r1
        or   r2, r2, #0
        bra  eq, out        ; flag==0: halt without the barrier
        movi r3, BARRIER
        mov  @r3, r0
    out:
        hlt
    )");
    Cluster cl(barrier_config(ArchKind::UlpmcBank), prog);
    for (unsigned p = 0; p < kNumCores; ++p)
        cl.dm_poke(static_cast<CoreId>(p), 64, static_cast<Word>(p % 2)); // half participate
    cl.run(200000);
    for (unsigned p = 0; p < kNumCores; ++p) {
        EXPECT_TRUE(cl.core_halted(static_cast<CoreId>(p))) << "core " << p;
        EXPECT_EQ(cl.core_trap(static_cast<CoreId>(p)), core::Trap::None);
    }
}

TEST(Barrier, BarrierCostIsSmall) {
    // A lockstep barrier crossing costs only the store + release cycle.
    const auto prog = isa::assemble(R"(
        movi r3, 0xFFFF
        mov  @r3, r0
        hlt
    )");
    Cluster cl(barrier_config(ArchKind::UlpmcInt), prog);
    cl.run();
    EXPECT_LE(cl.stats().cycles, 6u);
}

} // namespace
} // namespace ulpmc::cluster
