// Differential test of the simulation engine tiers. The optimized engines
// (fast: pre-decoded IM, PC-indexed fetch table, claim-bitmask crossbar
// arbitration, in-place execute; trace: superblock dispatch with memoized
// timing) must be cycle-for-cycle identical to the reference engine: same
// ClusterStats, same architectural core state, same data-memory contents —
// for every IM policy and core count, on randomized SPMD programs that mix
// private/shared loads and stores (so broadcast rides, bank conflicts,
// stalls, and denials all occur).
#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "common/rng.hpp"
#include "isa/assembler.hpp"

namespace ulpmc {
namespace {

constexpr mmu::DmLayout kLayout{.shared_words = 512, .private_words_per_core = 2048};

constexpr cluster::SimEngine kAllEngines[] = {
    cluster::SimEngine::Reference, cluster::SimEngine::Fast, cluster::SimEngine::Trace};

/// A random but well-formed SPMD kernel: pointer setup, a loop of
/// ALU/load/store work, and a branch-to-self halt. Addresses stay inside
/// the layout by construction (worst case: every body slot a post-inc
/// private store).
std::string random_program(Rng& rng) {
    const int priv = 512 + static_cast<int>(rng.range(0, 800));
    const int shared = static_cast<int>(rng.range(0, 400));
    const int iters = static_cast<int>(rng.range(8, 50));
    std::string s;
    s += "        movi r1, " + std::to_string(priv) + "\n";
    s += "        movi r2, " + std::to_string(shared) + "\n";
    s += "        movi r4, " + std::to_string(iters) + "\n";
    s += "loop:\n";
    const int body = static_cast<int>(rng.range(3, 8));
    for (int i = 0; i < body; ++i) {
        switch (rng.below(8)) {
        case 0:
            s += "        add r3, r3, #" + std::to_string(rng.range(1, 7)) + "\n";
            break;
        case 1:
            s += "        sub r3, r3, #" + std::to_string(rng.range(1, 7)) + "\n";
            break;
        case 2:
            s += "        xor r3, r3, r5\n";
            break;
        case 3:
            s += "        mov @r1+, r3\n"; // private store (conflict-free)
            break;
        case 4:
            s += "        mov r5, @r2\n"; // shared load: broadcast / conflicts
            break;
        case 5:
            s += "        mov r6, @r1\n"; // private load
            break;
        case 6:
            s += "        mov @r2, r3\n"; // shared store: write conflicts
            break;
        case 7:
            s += "        sft r3, r3, #1\n";
            break;
        }
    }
    s += "        sub r4, r4, #1\n";
    s += "        bra ne, loop\n";
    s += "done:   bra al, done\n";
    return s;
}

/// Asserts `got` (an optimized engine) is observably identical to `ref`
/// (the reference engine) after both ran to completion.
void expect_same_observable_state(cluster::Cluster& got, cluster::Cluster& ref,
                                  unsigned cores, const std::string& context) {
    ASSERT_EQ(got.stats(), ref.stats()) << context;
    for (unsigned p = 0; p < cores; ++p) {
        const auto pid = static_cast<CoreId>(p);
        ASSERT_EQ(got.core_state(pid), ref.core_state(pid)) << context << " core " << p;
        ASSERT_EQ(got.core_halted(pid), ref.core_halted(pid)) << context << " core " << p;
        ASSERT_EQ(got.core_trap(pid), ref.core_trap(pid)) << context << " core " << p;
        for (Addr v = 0; v < kLayout.limit(); ++v) {
            ASSERT_EQ(got.dm_peek(pid, v), ref.dm_peek(pid, v))
                << context << " core " << p << " vaddr " << v;
        }
    }
}

/// Runs `prog` under `cfg` on all three engine tiers and asserts they are
/// observably identical (the reference engine is the golden model).
void expect_engines_identical(cluster::ClusterConfig cfg, const isa::Program& prog,
                              Cycle max_cycles, const std::string& context) {
    cfg.engine = cluster::SimEngine::Reference;
    cluster::Cluster ref(cfg, prog);
    const Cycle cycles_ref = ref.run(max_cycles);

    for (const auto engine : {cluster::SimEngine::Fast, cluster::SimEngine::Trace}) {
        cfg.engine = engine;
        cluster::Cluster opt(cfg, prog);
        const std::string ctx = context + " engine=" + cluster::engine_name(engine);
        ASSERT_EQ(opt.run(max_cycles), cycles_ref) << ctx;
        expect_same_observable_state(opt, ref, cfg.cores, ctx);
    }
}

TEST(FastpathDiff, RandomProgramsAllPoliciesAllCoreCounts) {
    Rng rng(0xD1FFu);
    const cluster::ArchKind archs[] = {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                                       cluster::ArchKind::UlpmcBank};
    const unsigned core_counts[] = {1, 2, 4, 8};
    for (const auto arch : archs) {
        for (const unsigned n : core_counts) {
            for (int i = 0; i < 3; ++i) {
                const auto prog = isa::assemble(random_program(rng));
                auto cfg = cluster::make_config(arch, kLayout);
                cfg.cores = n;
                cfg.stagger_start = (i % 2) == 1;
                const std::string context = cluster::arch_name(arch) + " cores=" +
                                            std::to_string(n) + " prog=" + std::to_string(i);
                expect_engines_identical(cfg, prog, 200'000, context);
            }
        }
    }
}

TEST(FastpathDiff, MaxCyclesTimeoutReportsIdenticalLiveCycleCount) {
    // A program that never halts: the run is bounded by max_cycles while
    // every core still executes, and every engine must report the bound
    // (the cycle counter stays live, not stuck at the last halt/trap).
    const auto prog = isa::assemble(R"(
            movi r1, 512
    loop:   add  r3, r3, #1
            mov  @r1, r3
            bra  al, loop
    )");
    for (const auto arch : {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt}) {
        auto cfg = cluster::make_config(arch, kLayout);
        cfg.stagger_start = true;
        cfg.engine = cluster::SimEngine::Reference;
        cluster::Cluster ref(cfg, prog);
        EXPECT_EQ(ref.run(5'000), 5'000u);
        for (const auto engine : {cluster::SimEngine::Fast, cluster::SimEngine::Trace}) {
            cfg.engine = engine;
            cluster::Cluster opt(cfg, prog);
            EXPECT_EQ(opt.run(5'000), 5'000u);
            EXPECT_EQ(opt.stats(), ref.stats())
                << cluster::arch_name(arch) << " engine=" << cluster::engine_name(engine);
        }
    }
}

TEST(FastpathDiff, ImPokeRefreshesPredecodedEntry) {
    // Patching IM must re-decode exactly the patched word, so the next
    // fetch executes the new instruction on the optimized engines too.
    const auto prog = isa::assemble("        movi r1, 5\ndone:   bra al, done\n");
    const auto patched = isa::assemble("        movi r1, 7\ndone:   bra al, done\n");
    for (const auto arch : {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                            cluster::ArchKind::UlpmcBank}) {
        for (const auto engine : kAllEngines) {
            auto cfg = cluster::make_config(arch, kLayout);
            cfg.engine = engine;
            cluster::Cluster cl(cfg, prog);
            cl.im_poke(0, patched.text[0]);
            cl.run(1'000);
            for (unsigned p = 0; p < cfg.cores; ++p) {
                const auto pid = static_cast<CoreId>(p);
                EXPECT_EQ(cl.im_peek(0, pid), patched.text[0])
                    << cluster::arch_name(arch) << " " << cluster::engine_name(engine);
                EXPECT_EQ(cl.core_state(pid).regs[1], 7)
                    << cluster::arch_name(arch) << " " << cluster::engine_name(engine);
            }
        }
    }
}

TEST(FastpathDiff, ImPokeAfterFetchExecutesLatchedInstruction) {
    // A word already fetched into EX executes as latched, even if IM is
    // patched between the fetch and the commit — on every engine (the
    // hardware latches the fetched word; the optimized engines must not
    // observe the patch through their pre-decode pointers).
    const auto prog = isa::assemble("        movi r1, 5\ndone:   bra al, done\n");
    const auto patched = isa::assemble("        movi r1, 7\ndone:   bra al, done\n");
    for (const auto engine : kAllEngines) {
        auto cfg = cluster::make_config(cluster::ArchKind::UlpmcInt, kLayout);
        cfg.cores = 1;
        cfg.engine = engine;
        cluster::Cluster cl(cfg, prog);
        ASSERT_TRUE(cl.step()); // cycle 1: the movi is fetched into EX
        cl.im_poke(0, patched.text[0]);
        cl.run(1'000);
        EXPECT_EQ(cl.core_state(0).regs[1], 5) << cluster::engine_name(engine);
    }
}

TEST(FastpathDiff, InjectedFaultsKeepEnginesCycleIdentical) {
    // Mid-run SEU injections (IM/DM bit flips, register upsets) go through
    // the same coherence path as im_poke; every engine must stay
    // cycle-for-cycle identical afterwards — with and without SEC-DED, on
    // every IM policy.
    Rng rng(0xFA17u);
    const cluster::ArchKind archs[] = {cluster::ArchKind::McRef, cluster::ArchKind::UlpmcInt,
                                       cluster::ArchKind::UlpmcBank};
    for (const auto arch : archs) {
        for (const bool ecc : {false, true}) {
            const auto prog = isa::assemble(random_program(rng));
            auto cfg = cluster::make_config(arch, kLayout);
            cfg.ecc_enabled = ecc;
            cfg.engine = cluster::SimEngine::Reference;
            cluster::Cluster ref(cfg, prog);
            cfg.engine = cluster::SimEngine::Fast;
            cluster::Cluster fast(cfg, prog);
            cfg.engine = cluster::SimEngine::Trace;
            cluster::Cluster trace(cfg, prog);
            const std::string context =
                cluster::arch_name(arch) + std::string(ecc ? " ecc" : " raw");

            // Park all engines mid-flight, deposit identical upsets.
            const PAddr pc = rng.below(static_cast<std::uint32_t>(prog.text.size()));
            const InstrWord im_flip = 1u << rng.below(24);
            const Addr vaddr = rng.below(kLayout.limit());
            const Word dm_flip = static_cast<Word>(1u << rng.below(16));
            for (auto* cl : {&ref, &fast, &trace}) {
                cl->run(40);
                cl->inject_im_fault(pc, im_flip);
                cl->inject_dm_fault(1, vaddr, dm_flip);
                cl->inject_reg_fault(0, 3, 0x0010);
            }
            const Cycle cycles_ref = ref.run(200'000);
            ASSERT_EQ(fast.run(200'000), cycles_ref) << context;
            ASSERT_EQ(trace.run(200'000), cycles_ref) << context;
            expect_same_observable_state(fast, ref, cfg.cores, context + " fast");
            expect_same_observable_state(trace, ref, cfg.cores, context + " trace");
        }
    }
}

} // namespace
} // namespace ulpmc
