// CRC-framed run journal + atomic file replacement (DESIGN.md §9.6):
// frames round-trip, a torn tail (the signature a SIGKILL mid-append
// leaves) is truncated to the clean prefix instead of poisoning the
// resume, a corrupt frame stops the replay at the last durable point,
// re-opening at clean_bytes drops the tail so append continues the
// chain, and write_file_atomic never exposes a half-written artifact.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/atomic_file.hpp"
#include "common/journal.hpp"

namespace ulpmc {
namespace {

class JournalTest : public ::testing::Test {
protected:
    void SetUp() override {
        path_ = (std::filesystem::temp_directory_path() /
                 ("ulpmc_journal_test_" +
                  std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                  ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                    .string();
        std::remove(path_.c_str());
    }
    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
    std::vector<std::uint8_t> out;
    for (const int b : v) out.push_back(static_cast<std::uint8_t>(b));
    return out;
}

std::uint64_t file_size(const std::string& p) {
    return static_cast<std::uint64_t>(std::filesystem::file_size(p));
}

TEST_F(JournalTest, FramesRoundTrip) {
    {
        JournalWriter w(path_);
        w.append(1, bytes({0xAA, 0xBB}));
        w.append(2, {});
        w.append(7, bytes({1, 2, 3, 4, 5}));
    }
    const JournalContents c = read_journal(path_);
    EXPECT_FALSE(c.torn_tail);
    EXPECT_EQ(c.clean_bytes, file_size(path_));
    ASSERT_EQ(c.frames.size(), 3u);
    EXPECT_EQ(c.frames[0].kind, 1u);
    EXPECT_EQ(c.frames[0].payload, bytes({0xAA, 0xBB}));
    EXPECT_EQ(c.frames[1].kind, 2u);
    EXPECT_TRUE(c.frames[1].payload.empty());
    EXPECT_EQ(c.frames[2].kind, 7u);
    EXPECT_EQ(c.frames[2].payload.size(), 5u);
}

TEST_F(JournalTest, MissingJournalThrows) {
    EXPECT_THROW(read_journal(path_), JournalError);
}

TEST_F(JournalTest, TornTailIsReportedAndTheCleanPrefixSurvives) {
    {
        JournalWriter w(path_);
        w.append(1, bytes({0xAA}));
        w.append(2, bytes({0xBB, 0xCC}));
    }
    const std::uint64_t full = file_size(path_);
    // SIGKILL mid-append: the last frame loses its tail bytes.
    std::filesystem::resize_file(path_, full - 3);
    const JournalContents c = read_journal(path_);
    EXPECT_TRUE(c.torn_tail);
    ASSERT_EQ(c.frames.size(), 1u);
    EXPECT_EQ(c.frames[0].kind, 1u);
    EXPECT_EQ(c.clean_bytes, full - (4 + 4 + 2 + 4)) << "prefix ends before frame 2";
}

TEST_F(JournalTest, CorruptFrameStopsTheReplayAtTheLastDurablePoint) {
    {
        JournalWriter w(path_);
        w.append(1, bytes({0xAA}));
        w.append(2, bytes({0xBB}));
        w.append(3, bytes({0xCC}));
    }
    // Flip one payload bit inside the SECOND frame.
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    const std::uint64_t frame1 = 4 + 4 + 1 + 4;
    f.seekp(static_cast<std::streamoff>(frame1 + 8));
    const char corrupt = static_cast<char>(0xBB ^ 0x04);
    f.write(&corrupt, 1);
    f.close();

    const JournalContents c = read_journal(path_);
    EXPECT_TRUE(c.torn_tail);
    ASSERT_EQ(c.frames.size(), 1u) << "frame 3 is unreachable past the corrupt frame";
    EXPECT_EQ(c.clean_bytes, frame1);
}

TEST_F(JournalTest, ReopenAtCleanBytesDropsTheTailAndContinuesTheChain) {
    {
        JournalWriter w(path_);
        w.append(1, bytes({0xAA}));
        w.append(2, bytes({0xBB}));
    }
    std::filesystem::resize_file(path_, file_size(path_) - 1); // torn tail
    const JournalContents before = read_journal(path_);
    ASSERT_TRUE(before.torn_tail);
    ASSERT_EQ(before.frames.size(), 1u);
    {
        JournalWriter w(path_, before.clean_bytes); // resume: drop the tail
        w.append(5, bytes({0xDD}));
    }
    const JournalContents after = read_journal(path_);
    EXPECT_FALSE(after.torn_tail);
    ASSERT_EQ(after.frames.size(), 2u);
    EXPECT_EQ(after.frames[0].kind, 1u);
    EXPECT_EQ(after.frames[1].kind, 5u);
    EXPECT_EQ(after.frames[1].payload, bytes({0xDD}));
}

TEST_F(JournalTest, TruncationAtEveryByteOfTheFinalFrameKeepsTheSameCleanPrefix) {
    // A crash can cut the in-flight frame at ANY byte — mid-header,
    // mid-payload, mid-CRC. Whatever the cut point, the reader must
    // report exactly the same clean prefix (never more, never less) and
    // JournalWriter(path, clean_bytes) must round-trip: drop the stump,
    // append, and leave a journal with no torn tail.
    {
        JournalWriter w(path_);
        w.append(1, bytes({0xAA, 0xBB, 0xCC}));
        w.append(2, bytes({0x10, 0x20}));
        w.append(9, bytes({1, 2, 3, 4, 5, 6, 7}));
    }
    const std::uint64_t full = file_size(path_);
    const std::uint64_t final_frame = 4 + 4 + 7 + 4;
    const std::uint64_t prefix = full - final_frame;
    // Keep the original bytes so every truncation starts from the same file.
    std::vector<char> original(full);
    {
        std::ifstream f(path_, std::ios::binary);
        f.read(original.data(), static_cast<std::streamsize>(full));
    }
    for (std::uint64_t cut = prefix; cut < full; ++cut) {
        {
            std::ofstream f(path_, std::ios::binary | std::ios::trunc);
            f.write(original.data(), static_cast<std::streamsize>(cut));
        }
        const JournalContents c = read_journal(path_);
        EXPECT_EQ(c.clean_bytes, prefix) << "cut at byte " << cut;
        EXPECT_EQ(c.torn_tail, cut != prefix) << "cut at byte " << cut;
        ASSERT_EQ(c.frames.size(), 2u) << "cut at byte " << cut;
        // Round-trip: reopen at the clean prefix and append a new frame.
        {
            JournalWriter w(path_, c.clean_bytes);
            w.append(5, bytes({0xEE}));
        }
        const JournalContents after = read_journal(path_);
        EXPECT_FALSE(after.torn_tail) << "cut at byte " << cut;
        ASSERT_EQ(after.frames.size(), 3u) << "cut at byte " << cut;
        EXPECT_EQ(after.frames[2].kind, 5u) << "cut at byte " << cut;
        EXPECT_EQ(after.frames[2].payload, bytes({0xEE})) << "cut at byte " << cut;
    }
}

TEST_F(JournalTest, TrailingGarbageAfterIntactFramesIsATornTail) {
    {
        JournalWriter w(path_);
        w.append(1, bytes({0xAA}));
    }
    std::ofstream f(path_, std::ios::app | std::ios::binary);
    f.write("\x01\x02", 2);
    f.close();
    const JournalContents c = read_journal(path_);
    EXPECT_TRUE(c.torn_tail);
    EXPECT_EQ(c.frames.size(), 1u);
}

TEST_F(JournalTest, AtomicWriteReplacesTheTargetWithoutATempResidue) {
    write_file_atomic(path_, "first\n");
    {
        std::ifstream f(path_);
        std::string s((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
        EXPECT_EQ(s, "first\n");
    }
    write_file_atomic(path_, "second version\n");
    {
        std::ifstream f(path_);
        std::string s((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
        EXPECT_EQ(s, "second version\n");
    }
    EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(JournalTest, AtomicWriteToAnUnwritablePathThrows) {
    EXPECT_THROW(write_file_atomic("/nonexistent-dir/x/y", "data"), AtomicFileError);
}

} // namespace
} // namespace ulpmc
