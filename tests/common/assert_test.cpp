#include "common/assert.hpp"

#include <gtest/gtest.h>

namespace ulpmc {
namespace {

TEST(Contracts, ExpectsPassesOnTrue) { EXPECT_NO_THROW(ULPMC_EXPECTS(1 + 1 == 2)); }

TEST(Contracts, ExpectsThrowsOnFalse) { EXPECT_THROW(ULPMC_EXPECTS(false), contract_violation); }

TEST(Contracts, MessageNamesKindExpressionAndLocation) {
    try {
        ULPMC_ENSURES(2 > 3);
        FAIL() << "should have thrown";
    } catch (const contract_violation& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("postcondition"), std::string::npos);
        EXPECT_NE(msg.find("2 > 3"), std::string::npos);
        EXPECT_NE(msg.find("assert_test.cpp"), std::string::npos);
    }
}

TEST(Contracts, AssertIsInvariantKind) {
    try {
        ULPMC_ASSERT(false);
        FAIL() << "should have thrown";
    } catch (const contract_violation& e) {
        EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
    }
}

} // namespace
} // namespace ulpmc
