#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace ulpmc {
namespace {

TEST(Bits, ExtractBasic) {
    EXPECT_EQ(bits(0xABCDEFu, 0, 4), 0xFu);
    EXPECT_EQ(bits(0xABCDEFu, 4, 4), 0xEu);
    EXPECT_EQ(bits(0xABCDEFu, 20, 4), 0xAu);
    EXPECT_EQ(bits(0xFFFFFFFFu, 0, 32), 0xFFFFFFFFu);
}

TEST(Bits, InsertBasic) {
    EXPECT_EQ(insert_bits(0, 0, 4, 0xF), 0xFu);
    EXPECT_EQ(insert_bits(0, 20, 4, 0xA), 0xA00000u);
    EXPECT_EQ(insert_bits(0xFFFFFFu, 8, 8, 0x00), 0xFF00FFu);
}

TEST(Bits, InsertMasksExcessFieldBits) {
    // Field wider than `width` must be truncated, not smeared.
    EXPECT_EQ(insert_bits(0, 0, 4, 0x123), 0x3u);
}

TEST(Bits, InsertExtractRoundTrip) {
    for (unsigned lo : {0u, 3u, 7u, 14u, 20u}) {
        for (unsigned width : {1u, 3u, 4u, 7u}) {
            const std::uint32_t v = insert_bits(0xDEADBEEFu, lo, width, 0x5u);
            EXPECT_EQ(bits(v, lo, width), 0x5u & ((1u << width) - 1));
        }
    }
}

TEST(Bits, SignExtend) {
    EXPECT_EQ(sign_extend(0x7, 4), 7);
    EXPECT_EQ(sign_extend(0x8, 4), -8);
    EXPECT_EQ(sign_extend(0xF, 4), -1);
    EXPECT_EQ(sign_extend(0x1FFF, 14), 8191);
    EXPECT_EQ(sign_extend(0x2000, 14), -8192);
    EXPECT_EQ(sign_extend(0x3FFF, 14), -1);
    EXPECT_EQ(sign_extend(0x0, 14), 0);
}

TEST(Bits, FitsUnsigned) {
    EXPECT_TRUE(fits_unsigned(15, 4));
    EXPECT_FALSE(fits_unsigned(16, 4));
    EXPECT_TRUE(fits_unsigned(0, 1));
    EXPECT_TRUE(fits_unsigned(0xFFFFFFFF, 32));
}

TEST(Bits, FitsSigned) {
    EXPECT_TRUE(fits_signed(7, 4));
    EXPECT_TRUE(fits_signed(-8, 4));
    EXPECT_FALSE(fits_signed(8, 4));
    EXPECT_FALSE(fits_signed(-9, 4));
    EXPECT_TRUE(fits_signed(8191, 14));
    EXPECT_FALSE(fits_signed(8192, 14));
}

TEST(Bits, NarrowOk) { EXPECT_EQ(narrow<std::uint16_t>(65535u), 65535u); }

TEST(Bits, NarrowThrowsOnLoss) {
    EXPECT_THROW(narrow<std::uint16_t>(65536u), contract_violation);
    EXPECT_THROW(narrow<std::uint8_t>(-1), contract_violation);
}

} // namespace
} // namespace ulpmc
