#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"

namespace ulpmc {
namespace {

TEST(Table, RendersAlignedColumns) {
    Table t({"a", "bb"});
    t.add_row({"xxxx", "y"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("| a    | bb |"), std::string::npos);
    EXPECT_NE(s.find("| xxxx | y  |"), std::string::npos);
}

TEST(Table, RowCountExcludesSeparators) {
    Table t({"a"});
    t.add_row({"1"});
    t.add_separator();
    t.add_row({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, WrongArityIsContractViolation) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), contract_violation);
}

TEST(Format, Fixed) {
    EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
    EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(Format, SiPrefixes) {
    EXPECT_EQ(format_si(0.397, "W"), "397 mW");
    EXPECT_EQ(format_si(3.97e-6, "W"), "3.97 uW");
    EXPECT_EQ(format_si(1.5e9, "Ops/s"), "1.5 GOps/s");
    EXPECT_EQ(format_si(15.6e-12, "J"), "15.6 pJ");
    EXPECT_EQ(format_si(0.0, "W"), "0 W");
}

TEST(Format, Percent) {
    EXPECT_EQ(format_percent(0.395), "39.5%");
    EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Format, CountGrouping) {
    EXPECT_EQ(format_count(0), "0");
    EXPECT_EQ(format_count(999), "999");
    EXPECT_EQ(format_count(1000), "1,000");
    EXPECT_EQ(format_count(720800), "720,800");
    EXPECT_EQ(format_count(1234567890ull), "1,234,567,890");
}

} // namespace
} // namespace ulpmc
