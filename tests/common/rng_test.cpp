#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/serial.hpp"

namespace ulpmc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u32() == b.next_u32()) ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, BelowCoversRange) {
    Rng r(7);
    std::array<int, 8> hits{};
    for (int i = 0; i < 8000; ++i) ++hits[r.below(8)];
    for (const int h : hits) EXPECT_GT(h, 700); // roughly uniform
}

TEST(Rng, RangeInclusive) {
    Rng r(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
    Rng r(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
    Rng r(11);
    double sum = 0;
    double sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = r.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BelowZeroBoundIsContractViolation) {
    Rng r(1);
    EXPECT_THROW(r.below(0), contract_violation);
}

TEST(Rng, EncodeDecodeResumesTheExactDrawSequence) {
    // Durable-execution contract (DESIGN.md §9.6): a decoded generator
    // continues the same sequence, including the Box-Muller spare the
    // gaussian path banks between calls.
    Rng a(99);
    for (int i = 0; i < 17; ++i) a.next_u32();
    a.gaussian(); // leaves a spare pending
    std::vector<std::uint8_t> state;
    a.encode(state);

    Rng b(1); // different seed: decode must overwrite everything
    ByteReader in(state);
    ASSERT_TRUE(b.decode(in));
    EXPECT_FALSE(in.fail());
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(a.next_u32(), b.next_u32());
        EXPECT_EQ(a.gaussian(), b.gaussian());
    }
}

TEST(Rng, DecodeRejectsShortAndAllZeroState) {
    std::vector<std::uint8_t> state;
    Rng(5).encode(state);

    Rng victim(2);
    const std::uint32_t before = Rng(victim).next_u32();
    ByteReader short_in(state.data(), state.size() - 1);
    EXPECT_FALSE(victim.decode(short_in));
    EXPECT_EQ(Rng(victim).next_u32(), before) << "a failed decode must not touch state";

    std::vector<std::uint8_t> zeros(state.size(), 0);
    ByteReader zero_in(zeros);
    EXPECT_FALSE(victim.decode(zero_in)) << "all-zero lanes would wedge xoshiro";
}

} // namespace
} // namespace ulpmc
