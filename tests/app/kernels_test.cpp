#include "app/kernels.hpp"

#include <gtest/gtest.h>

#include "app/benchmark.hpp"
#include "app/ecg.hpp"
#include "core/functional_core.hpp"

namespace ulpmc::app {
namespace {

/// Runs the benchmark program for ONE lead on the functional ISS over a
/// flat view of the virtual address space (the MMU-less golden platform).
struct SingleLeadRun {
    core::CoreState state;
    core::Trap trap;
    std::uint64_t instret;
    std::vector<Word> y;
    std::vector<Word> out;
    Word out_count;
};

SingleLeadRun run_single_lead(const isa::Program& prog, const BenchmarkLayout& lay,
                              std::span<const std::int16_t> x) {
    core::FlatMemory mem(lay.shared_words() + BenchmarkLayout::kPrivateWords);
    mem.load(0, prog.data);
    for (std::size_t i = 0; i < x.size(); ++i)
        mem.poke(static_cast<Addr>(lay.x_base() + i), static_cast<Word>(x[i]));

    core::FunctionalCore core(prog.text, mem);
    core.state().pc = prog.entry;
    core.run();

    SingleLeadRun r{.state = core.state(),
                    .trap = core.trap(),
                    .instret = core.instret(),
                    .y = {},
                    .out = {},
                    .out_count = mem.peek(lay.out_count())};
    for (std::size_t i = 0; i < kCsOutputLen; ++i)
        r.y.push_back(mem.peek(static_cast<Addr>(lay.y_base() + i)));
    for (Word i = 0; i < r.out_count; ++i)
        r.out.push_back(mem.peek(static_cast<Addr>(lay.out_base() + i)));
    return r;
}

class KernelVariants : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(KernelVariants, SingleLeadMatchesGoldenPipeline) {
    const auto [luts_shared, spills] = GetParam();
    BenchmarkOptions opt;
    opt.luts_shared = luts_shared;
    opt.compiler_spills = spills;
    const EcgBenchmark bench(opt);

    for (const unsigned lead : {0u, 3u, 7u}) {
        const auto r = run_single_lead(bench.program(), bench.layout(), bench.lead_samples(lead));
        ASSERT_EQ(r.trap, core::Trap::None);
        EXPECT_EQ(r.y, bench.golden_measurements(lead)) << "lead " << lead;
        EXPECT_EQ(r.out, bench.golden_bitstream(lead).words) << "lead " << lead;
        EXPECT_EQ(r.out_count, bench.golden_bitstream(lead).words.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, KernelVariants,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()),
                         [](const auto& info) {
                             return std::string(std::get<0>(info.param) ? "SharedLuts" : "PrivLuts") +
                                    (std::get<1>(info.param) ? "Spills" : "Tight");
                         });

TEST(Kernels, ProgramFootprintIsPaperScale) {
    const EcgBenchmark bench{};
    // The paper's program is 552 bytes (184 instructions); ours is the
    // same order of magnitude and must fit one IM bank with room to spare.
    EXPECT_LT(bench.program().text.size(), 184u);
    EXPECT_GT(bench.program().text.size(), 40u);
    EXPECT_LT(bench.program().text_bytes(), 552u);
}

TEST(Kernels, CompilerSpillsReproducePaperInstructionCount) {
    BenchmarkOptions spilled;
    spilled.compiler_spills = true;
    BenchmarkOptions tight;
    tight.compiler_spills = false;
    const EcgBenchmark b1(spilled);
    const EcgBenchmark b2(tight);
    const auto r1 = run_single_lead(b1.program(), b1.layout(), b1.lead_samples(0));
    const auto r2 = run_single_lead(b2.program(), b2.layout(), b2.lead_samples(0));
    // The paper's benchmark executes ~90.1k instructions per core.
    EXPECT_NEAR(static_cast<double>(r1.instret), 90100.0, 6000.0);
    // The hand-optimal variant is meaningfully leaner.
    EXPECT_LT(r2.instret + 15000, r1.instret);
    // Both compute identical results.
    EXPECT_EQ(r1.y, r2.y);
    EXPECT_EQ(r1.out, r2.out);
}

TEST(Kernels, LayoutSectionsDoNotOverlap) {
    for (const bool shared : {false, true}) {
        BenchmarkLayout lay;
        lay.luts_shared = shared;
        EXPECT_LT(lay.x_base(), lay.y_base());
        EXPECT_LT(lay.y_base(), lay.out_base());
        EXPECT_LT(lay.out_base(), lay.out_count());
        EXPECT_LT(lay.out_count(), lay.frame_base());
        EXPECT_LT(lay.frame_base(), lay.private_code_lut());
        EXPECT_LE(lay.private_len_lut() + 512, lay.private_base() + lay.kPrivateWords);
        if (shared) {
            EXPECT_LT(lay.code_lut(), lay.private_base());
            EXPECT_EQ(lay.shared_words(), 6144u + 1024u);
        } else {
            EXPECT_GE(lay.code_lut(), lay.private_base());
            EXPECT_EQ(lay.shared_words(), 6144u);
        }
    }
}

TEST(Kernels, DataImageFootprintsMatchPaperScale) {
    const EcgBenchmark bench{};
    // Shared matrix: 12288 bytes; per-lead working+LUT data lives in the
    // 3072-word private section.
    EXPECT_EQ(bench.matrix().bytes(), 12288u);
    EXPECT_EQ(BenchmarkLayout::kPrivateWords * 2, 6144u);
}

TEST(Kernels, ProgramHasEntrySymbol) {
    const EcgBenchmark bench{};
    EXPECT_EQ(bench.program().entry, bench.program().text_addr("entry"));
    EXPECT_TRUE(bench.program().symbol("cs_tap").has_value());
    EXPECT_TRUE(bench.program().symbol("hf_sym").has_value());
}

TEST(Kernels, BarrierVariantEmitsBarrierStore) {
    BenchmarkOptions opt;
    opt.use_barrier = true;
    const EcgBenchmark with(opt);
    const EcgBenchmark without{};
    EXPECT_EQ(with.program().text.size(), without.program().text.size() + 2);
}

} // namespace
} // namespace ulpmc::app
