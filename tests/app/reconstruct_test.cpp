#include "app/reconstruct.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "app/ecg.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ulpmc::app {
namespace {

TEST(Haar, ForwardInverseRoundTripProperty) {
    Rng rng(8);
    for (const std::size_t n : {2u, 8u, 64u, 512u}) {
        std::vector<double> x(n);
        for (auto& v : x) v = rng.gaussian() * 100.0;
        std::vector<double> orig = x;
        haar_forward(x);
        haar_inverse(x);
        for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], orig[i], 1e-9);
    }
}

TEST(Haar, PreservesEnergy) {
    // Orthonormal transform: Parseval.
    Rng rng(9);
    std::vector<double> x(256);
    for (auto& v : x) v = rng.gaussian();
    double e_time = 0;
    for (const double v : x) e_time += v * v;
    haar_forward(x);
    double e_coef = 0;
    for (const double v : x) e_coef += v * v;
    EXPECT_NEAR(e_time, e_coef, 1e-9);
}

TEST(Haar, ConstantSignalIsOneCoefficient) {
    std::vector<double> x(64, 3.0);
    haar_forward(x);
    EXPECT_NEAR(x[0], 3.0 * 8.0, 1e-9); // 3 * sqrt(64)
    for (std::size_t i = 1; i < x.size(); ++i) EXPECT_NEAR(x[i], 0.0, 1e-9);
}

TEST(Haar, RejectsNonPowerOfTwo) {
    std::vector<double> x(6, 0.0);
    EXPECT_THROW(haar_forward(x), contract_violation);
    EXPECT_THROW(haar_inverse(x), contract_violation);
}

TEST(Dequantize, InvertsTheKernelQuantizer) {
    // Within the 9-bit symbol's unambiguous range (|y| < 2^14 — the
    // benchmark's measurements are bounded by 24 x 500 << 2^14),
    // |dequantize(quantize(y)) - y| <= 32.
    for (const int y : {0, 63, 64, 1000, -1000, 12345, -16384, 16383}) {
        const Word sym = cs_quantize_symbol(static_cast<Word>(y));
        const auto back = dequantize_symbols(std::vector<Word>{sym});
        EXPECT_NEAR(back[0], static_cast<double>(y), 32.001) << y;
    }
}

TEST(Omp, RecoversExactlySparseSignals) {
    // Synthesize x with 8 nonzero Haar coefficients; OMP must nail it.
    Rng rng(21);
    const CsMatrix matrix(77);
    std::vector<double> s(512, 0.0);
    for (int k = 0; k < 8; ++k) s[rng.below(512)] = rng.range(-400, 400);
    std::vector<double> x = s;
    haar_inverse(x);

    // Exact (unquantized) measurements.
    std::vector<double> y(matrix.rows(), 0.0);
    for (std::size_t r = 0; r < matrix.rows(); ++r) {
        double acc = 0;
        for (std::size_t t = 0; t < matrix.taps(); ++t) {
            const Word e = matrix.entry(r, t);
            const double v = x[e & kCsIndexMask];
            acc += (e & kCsSignBit) ? -v : v;
        }
        y[r] = acc;
    }

    const auto recon = cs_reconstruct(matrix, y);
    double worst = 0;
    for (std::size_t i = 0; i < x.size(); ++i) worst = std::max(worst, std::fabs(recon[i] - x[i]));
    EXPECT_LT(worst, 1e-6);
}

TEST(Omp, ReconstructsEcgWithReasonableFidelity) {
    const EcgGenerator gen;
    const CsMatrix matrix(1);
    const auto x = gen.block(0);

    // The node's exact measurements (no wrap occurs: |sum| < 2^15).
    const auto yw = cs_compress(matrix, x);
    std::vector<double> y(yw.size());
    for (std::size_t i = 0; i < yw.size(); ++i) y[i] = static_cast<double>(static_cast<SWord>(yw[i]));

    const auto recon = cs_reconstruct(matrix, y);
    const double prd = prd_percent(x, recon);
    EXPECT_LT(prd, 40.0); // usable morphology at 50% compression
    // And vastly better than the trivial all-zero "reconstruction".
    std::vector<double> zeros(x.size(), 0.0);
    EXPECT_LT(prd, 0.5 * prd_percent(x, zeros));
}

TEST(Omp, QuantizationCostsFidelityButNotMuch) {
    const EcgGenerator gen;
    const CsMatrix matrix(1);
    const auto x = gen.block(2);
    const auto yw = cs_compress(matrix, x);

    std::vector<double> y_exact(yw.size());
    for (std::size_t i = 0; i < yw.size(); ++i)
        y_exact[i] = static_cast<double>(static_cast<SWord>(yw[i]));
    const auto y_q = dequantize_symbols(cs_quantize(yw));

    const double prd_exact = prd_percent(x, cs_reconstruct(matrix, y_exact));
    const double prd_q = prd_percent(x, cs_reconstruct(matrix, y_q));
    EXPECT_GE(prd_q, prd_exact - 1.0); // quantization cannot help
    EXPECT_LT(prd_q, prd_exact + 20.0); // ...and costs only moderately
}

TEST(Omp, MoreMeasurementsImproveFidelity) {
    const EcgGenerator gen;
    const auto x = gen.block(1);
    double prd_small = 0;
    double prd_large = 0;
    for (const std::size_t m : {96u, 256u}) {
        const CsMatrix matrix(5, m, 512, 24);
        std::vector<std::int16_t> xs(x.begin(), x.end());
        const auto yw = cs_compress(matrix, xs);
        std::vector<double> y(yw.size());
        for (std::size_t i = 0; i < yw.size(); ++i)
            y[i] = static_cast<double>(static_cast<SWord>(yw[i]));
        OmpConfig cfg;
        cfg.max_support = static_cast<unsigned>(m / 4);
        const double prd = prd_percent(x, cs_reconstruct(matrix, y, cfg));
        (m == 96 ? prd_small : prd_large) = prd;
    }
    EXPECT_LT(prd_large, prd_small);
}

TEST(Omp, ConfigValidation) {
    const CsMatrix matrix(1);
    std::vector<double> y(matrix.rows(), 0.0);
    OmpConfig bad;
    bad.max_support = 0;
    EXPECT_THROW(cs_reconstruct(matrix, y, bad), contract_violation);
    std::vector<double> wrong(10, 0.0);
    EXPECT_THROW(cs_reconstruct(matrix, wrong), contract_violation);
}

TEST(Prd, Basics) {
    const std::vector<std::int16_t> x = {100, -100, 50};
    const std::vector<double> same = {100.0, -100.0, 50.0};
    EXPECT_NEAR(prd_percent(x, same), 0.0, 1e-9);
    const std::vector<double> zeros = {0.0, 0.0, 0.0};
    EXPECT_NEAR(prd_percent(x, zeros), 100.0, 1e-9);
}

} // namespace
} // namespace ulpmc::app
