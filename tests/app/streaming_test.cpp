#include "app/streaming.hpp"

#include <gtest/gtest.h>

namespace ulpmc::app {
namespace {

using cluster::ArchKind;

BenchmarkOptions with_barrier(bool barrier) {
    BenchmarkOptions opt;
    opt.use_barrier = barrier;
    return opt;
}

TEST(Streaming, SingleBlockMatchesPlainBenchmarkScale) {
    const StreamingBenchmark s(with_barrier(false), 1);
    const EcgBenchmark plain{};
    const auto stream_out = s.run(ArchKind::UlpmcBank);
    const auto plain_out = plain.run(ArchKind::UlpmcBank);
    EXPECT_TRUE(stream_out.verified);
    // Identical work modulo the tiny loop preamble.
    EXPECT_NEAR(stream_out.cycles_per_block, static_cast<double>(plain_out.stats.cycles),
                0.01 * static_cast<double>(plain_out.stats.cycles));
}

TEST(Streaming, MultiBlockVerifiesOnAllArchitectures) {
    const StreamingBenchmark s(with_barrier(true), 3);
    for (const auto arch : {ArchKind::McRef, ArchKind::UlpmcInt, ArchKind::UlpmcBank}) {
        const auto out = s.run(arch);
        EXPECT_TRUE(out.verified) << cluster::arch_name(arch);
    }
}

TEST(Streaming, CyclesScaleLinearlyWithBlocks) {
    const StreamingBenchmark one(with_barrier(true), 1);
    const StreamingBenchmark four(with_barrier(true), 4);
    const auto o1 = one.run(ArchKind::UlpmcBank);
    const auto o4 = four.run(ArchKind::UlpmcBank);
    EXPECT_NEAR(o4.cycles_per_block, o1.cycles_per_block, 0.02 * o1.cycles_per_block);
}

TEST(Streaming, BarrierRestoresBroadcastEfficiencyEveryBlock) {
    // Without the barrier, the Huffman desync persists into the next
    // block's CS phase and the fetch-merge ratio decays; with it, the
    // cores re-enter lockstep at each boundary and the ratio stays near
    // the 7/8 optimum.
    const StreamingBenchmark without(with_barrier(false), 4);
    const StreamingBenchmark with(with_barrier(true), 4);
    const auto o_without = without.run(ArchKind::UlpmcBank);
    const auto o_with = with.run(ArchKind::UlpmcBank);
    ASSERT_TRUE(o_without.verified);
    ASSERT_TRUE(o_with.verified);
    EXPECT_GT(o_with.fetch_merge_ratio, 0.85);
    EXPECT_GT(o_with.fetch_merge_ratio, o_without.fetch_merge_ratio);
    // ...and it pays off in time as well on the conflict-prone banked IM.
    EXPECT_LT(o_with.cycles_per_block, o_without.cycles_per_block);
}

TEST(Streaming, BankedImSuffersWithoutResyncButIntDoesNot) {
    const StreamingBenchmark s(with_barrier(false), 4);
    const auto bank = s.run(ArchKind::UlpmcBank);
    const auto inter = s.run(ArchKind::UlpmcInt);
    ASSERT_TRUE(bank.verified);
    ASSERT_TRUE(inter.verified);
    // Interleaved bank selection tolerates desync (different PCs usually
    // map to different banks); the packed organization serializes.
    EXPECT_GT(bank.cycles_per_block, inter.cycles_per_block * 1.02);
}

} // namespace
} // namespace ulpmc::app
