#include "app/huffman.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ulpmc::app {
namespace {

std::vector<std::uint64_t> geometric_freqs(std::size_t n, double ratio = 0.97) {
    std::vector<std::uint64_t> f(n);
    double w = 1e6;
    for (std::size_t i = 0; i < n; ++i) {
        f[i] = static_cast<std::uint64_t>(w) + 1;
        w *= ratio;
    }
    return f;
}

TEST(Huffman, KraftEqualityProperty) {
    // A complete prefix code has Kraft sum exactly 1 (scaled: 2^max_len).
    for (const std::size_t n : {2u, 3u, 17u, 100u, 512u}) {
        const HuffmanTable t(geometric_freqs(n));
        EXPECT_EQ(t.kraft_scaled(), 1ull << kHuffMaxLen) << "n=" << n;
    }
}

TEST(Huffman, LengthLimitHonored) {
    // Extremely skewed distribution would want >15-bit codes unlimited.
    std::vector<std::uint64_t> f(512, 1);
    f[0] = 1ull << 40;
    const HuffmanTable t(f);
    for (std::size_t s = 0; s < t.size(); ++s) {
        EXPECT_GE(t.length(s), 1u);
        EXPECT_LE(t.length(s), kHuffMaxLen);
    }
}

TEST(Huffman, CodesArePrefixFree) {
    const HuffmanTable t(geometric_freqs(64));
    for (std::size_t a = 0; a < t.size(); ++a) {
        for (std::size_t b = 0; b < t.size(); ++b) {
            if (a == b) continue;
            const unsigned la = t.length(a);
            const unsigned lb = t.length(b);
            if (la > lb) continue;
            // a's code must not prefix b's code.
            EXPECT_NE(t.code(b) >> (lb - la), t.code(a)) << a << " prefixes " << b;
        }
    }
}

TEST(Huffman, FrequentSymbolsGetShortCodes) {
    const HuffmanTable t(geometric_freqs(512));
    EXPECT_LE(t.length(0), t.length(511));
    EXPECT_LT(t.length(0), 8u);
}

TEST(Huffman, CodeFitsBitFifteenClear) {
    // The TamaRISC packer's arithmetic-shift trick needs bit 15 == 0.
    const HuffmanTable t(geometric_freqs(512));
    for (std::size_t s = 0; s < t.size(); ++s) {
        EXPECT_EQ(t.code(s) & 0x8000u, 0u);
        EXPECT_LT(t.code(s), 1u << t.length(s));
    }
}

TEST(Huffman, LutImagesMatchAccessors) {
    const HuffmanTable t(geometric_freqs(512));
    const auto code = t.code_lut();
    const auto len = t.len_lut();
    ASSERT_EQ(code.size(), 512u);
    ASSERT_EQ(len.size(), 512u);
    for (std::size_t s = 0; s < 512; ++s) {
        EXPECT_EQ(code[s], t.code(s));
        EXPECT_EQ(len[s], t.length(s));
    }
}

TEST(Huffman, EncodeKnownSmallCase) {
    // Two symbols -> 1-bit codes; canonical: sym0 -> 0, sym1 -> 1.
    const std::vector<std::uint64_t> f = {10, 1};
    const HuffmanTable t(f);
    EXPECT_EQ(t.length(0), 1u);
    EXPECT_EQ(t.code(0), 0u);
    EXPECT_EQ(t.code(1), 1u);
    const std::vector<Word> syms = {0, 1, 1, 0};
    const auto bs = huffman_encode(t, syms);
    EXPECT_EQ(bs.bits, 4u);
    ASSERT_EQ(bs.words.size(), 1u);
    EXPECT_EQ(bs.words[0], 0b0110u << 12); // MSB-first fill
}

TEST(Huffman, RoundTripProperty) {
    Rng rng(31);
    const auto freqs = geometric_freqs(512);
    const HuffmanTable t(freqs);
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<Word> syms(256);
        for (auto& s : syms) s = static_cast<Word>(rng.below(512));
        const auto bs = huffman_encode(t, syms);
        const auto back = huffman_decode(t, bs, syms.size());
        ASSERT_TRUE(back.has_value()) << "iter " << iter;
        EXPECT_EQ(*back, syms);
    }
}

class HuffmanAlphabetRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HuffmanAlphabetRoundTrip, AllSymbolsSurvive) {
    const std::size_t n = GetParam();
    const HuffmanTable t(geometric_freqs(n));
    std::vector<Word> syms(n);
    std::iota(syms.begin(), syms.end(), 0);
    const auto bs = huffman_encode(t, syms);
    const auto back = huffman_decode(t, bs, n);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, syms);
}

INSTANTIATE_TEST_SUITE_P(Alphabets, HuffmanAlphabetRoundTrip,
                         ::testing::Values(2, 3, 5, 16, 64, 257, 512));

TEST(Huffman, CompressionBeatsFixedWidthOnSkewedData) {
    Rng rng(5);
    const auto freqs = geometric_freqs(512, 0.9);
    const HuffmanTable t(freqs);
    // Draw symbols from (roughly) the training distribution.
    std::vector<Word> syms;
    for (int i = 0; i < 4096; ++i)
        syms.push_back(static_cast<Word>(std::min<std::uint32_t>(511, rng.below(64))));
    const auto bs = huffman_encode(t, syms);
    EXPECT_LT(bs.bits, syms.size() * 9); // better than 9-bit fixed width
}

TEST(Huffman, DecodeTruncatedStreamFails) {
    const HuffmanTable t(geometric_freqs(512));
    const std::vector<Word> syms = {1, 2, 3, 4, 5};
    auto bs = huffman_encode(t, syms);
    bs.bits /= 2;
    bs.words.resize((bs.bits + 15) / 16);
    EXPECT_FALSE(huffman_decode(t, bs, syms.size()).has_value());
}

TEST(Huffman, EncodeEmptyInput) {
    const HuffmanTable t(geometric_freqs(16));
    const auto bs = huffman_encode(t, {});
    EXPECT_EQ(bs.bits, 0u);
    EXPECT_TRUE(bs.words.empty());
    const auto back = huffman_decode(t, bs, 0);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

TEST(Huffman, ZeroFrequenciesStayEncodable) {
    std::vector<std::uint64_t> f(512, 0);
    f[3] = 100;
    const HuffmanTable t(f);
    const std::vector<Word> syms = {511, 0, 3};
    const auto back = huffman_decode(t, huffman_encode(t, syms), 3);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, syms);
}

TEST(Huffman, PaperLutFootprint) {
    const HuffmanTable t(geometric_freqs(512));
    // Two LUTs of 512 x 16-bit entries = 1024 bytes each (paper §II).
    EXPECT_EQ(t.code_lut().size() * 2, 1024u);
    EXPECT_EQ(t.len_lut().size() * 2, 1024u);
}

TEST(Huffman, InvalidConstruction) {
    const std::vector<std::uint64_t> one = {5};
    EXPECT_THROW(HuffmanTable{one}, contract_violation);
    const std::vector<std::uint64_t> many(512, 1);
    EXPECT_THROW(HuffmanTable(many, 8), contract_violation); // 2^8 < 512
    EXPECT_THROW(HuffmanTable(many, 16), contract_violation); // > kHuffMaxLen
}

} // namespace
} // namespace ulpmc::app
