#include "app/cs.hpp"

#include <gtest/gtest.h>

#include <set>

#include "app/ecg.hpp"
#include "common/assert.hpp"

namespace ulpmc::app {
namespace {

TEST(CsMatrix, PaperFootprint) {
    const CsMatrix m(1);
    EXPECT_EQ(m.rows(), 256u);
    EXPECT_EQ(m.cols(), 512u);
    EXPECT_EQ(m.taps(), 24u);
    EXPECT_EQ(m.entries().size(), 6144u);
    EXPECT_EQ(m.bytes(), 12288u); // the paper's "random vector" size
}

TEST(CsMatrix, Deterministic) {
    const CsMatrix a(7);
    const CsMatrix b(7);
    EXPECT_TRUE(std::equal(a.entries().begin(), a.entries().end(), b.entries().begin()));
    const CsMatrix c(8);
    EXPECT_FALSE(std::equal(a.entries().begin(), a.entries().end(), c.entries().begin()));
}

TEST(CsMatrix, IndicesInRangeAndDistinctPerRow) {
    const CsMatrix m(3);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        std::set<Word> cols;
        for (std::size_t t = 0; t < m.taps(); ++t) {
            const Word idx = m.entry(r, t) & kCsIndexMask;
            EXPECT_LT(idx, m.cols());
            EXPECT_TRUE(cols.insert(idx).second) << "dup col in row " << r;
        }
    }
}

TEST(CsMatrix, RowsSortedByColumn) {
    const CsMatrix m(3);
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t t = 1; t < m.taps(); ++t)
            EXPECT_LT(m.entry(r, t - 1) & kCsIndexMask, m.entry(r, t) & kCsIndexMask);
}

TEST(CsMatrix, SignsRoughlyBalanced) {
    const CsMatrix m(5);
    int neg = 0;
    for (const Word e : m.entries()) neg += (e & kCsSignBit) != 0;
    EXPECT_NEAR(static_cast<double>(neg) / m.entries().size(), 0.5, 0.05);
}

TEST(CsMatrix, EntryOnlyUsesDefinedBits) {
    const CsMatrix m(5);
    for (const Word e : m.entries()) EXPECT_EQ(e & ~(kCsIndexMask | kCsSignBit), 0u);
}

TEST(CsCompress, MatchesNaiveReference) {
    const CsMatrix m(11);
    const EcgGenerator gen;
    const auto x = gen.block(0);
    const auto y = cs_compress(m, x);
    ASSERT_EQ(y.size(), m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        std::int32_t acc32 = 0; // independent wide reference, wrapped at end
        Word acc16 = 0;
        for (std::size_t t = 0; t < m.taps(); ++t) {
            const Word e = m.entry(r, t);
            const auto v = x[e & kCsIndexMask];
            acc32 += (e & kCsSignBit) ? -v : v;
            acc16 = (e & kCsSignBit) ? static_cast<Word>(acc16 - static_cast<Word>(v))
                                     : static_cast<Word>(acc16 + static_cast<Word>(v));
        }
        EXPECT_EQ(y[r], acc16);
        EXPECT_EQ(y[r], static_cast<Word>(acc32)); // wrap-equivalence
    }
}

TEST(CsCompress, LinearityProperty) {
    // y(x) computed on 2x equals 2*y(x) in wrap arithmetic when amplitudes
    // stay small; verifies the operator is linear as CS requires.
    const CsMatrix m(13, 32, 64, 4);
    std::vector<std::int16_t> x(64);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<std::int16_t>((i % 17) - 8);
    std::vector<std::int16_t> x2(64);
    for (std::size_t i = 0; i < x.size(); ++i) x2[i] = static_cast<std::int16_t>(2 * x[i]);
    const auto y1 = cs_compress(m, x);
    const auto y2 = cs_compress(m, x2);
    for (std::size_t r = 0; r < y1.size(); ++r)
        EXPECT_EQ(y2[r], static_cast<Word>(2 * y1[r]));
}

TEST(CsCompress, FiftyPercentCompression) {
    const CsMatrix m(1);
    EXPECT_EQ(m.rows() * 2, m.cols()); // the paper's 50% block compression
}

TEST(CsCompress, WrongInputSizeIsContractViolation) {
    const CsMatrix m(1);
    std::vector<std::int16_t> x(100);
    EXPECT_THROW(cs_compress(m, x), contract_violation);
}

TEST(CsQuantize, SymbolRangeAndShift) {
    EXPECT_LT(cs_quantize_symbol(0xFFFF), kCsSymbolCount);
    EXPECT_EQ(cs_quantize_symbol(0), 0u);
    EXPECT_EQ(cs_quantize_symbol(64), 1u);             // 64 >> 6 = 1
    EXPECT_EQ(cs_quantize_symbol(static_cast<Word>(-64)), 511u); // -1 & 0x1FF
    for (std::uint32_t y = 0; y <= 0xFFFF; y += 97)
        EXPECT_LT(cs_quantize_symbol(static_cast<Word>(y)), kCsSymbolCount);
}

TEST(CsQuantize, VectorForm) {
    const std::vector<Word> y = {0, 64, 128, static_cast<Word>(-64)};
    const auto s = cs_quantize(y);
    EXPECT_EQ(s, (std::vector<Word>{0, 1, 2, 511}));
}

TEST(CsMatrix, CustomDimensionsValidated) {
    EXPECT_THROW(CsMatrix(1, 4, 8, 9), contract_violation);  // taps > cols
    EXPECT_THROW(CsMatrix(1, 4, 1024, 2), contract_violation); // cols > index space
    EXPECT_NO_THROW(CsMatrix(1, 4, 8, 8));
}

} // namespace
} // namespace ulpmc::app
